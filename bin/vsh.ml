(* vsh — the V executive, as a command interpreter over a simulated
   V domain.

   Commands are read from a script file (or a built-in demo) and
   executed by a client process on a workstation of a freshly built
   standard installation. Every command goes through the same run-time
   library a V program would use, so the executive exercises exactly
   the uniform naming machinery the paper describes.

   Usage:
     dune exec bin/vsh.exe                      # run the built-in demo
     dune exec bin/vsh.exe -- --script FILE     # run a command script
     dune exec bin/vsh.exe -- --list-commands   # show the command set *)

module K = Vkernel.Kernel
module Scenario = Vworkload.Scenario
module Runtime = Vruntime.Runtime
module File_server = Vservices.File_server
module Domain_server = Vdomains.Domain_server
module Resolver = Vdomains.Resolver
open Vnaming

(* An interactive federated name tree: the chain of domain servers, the
   per-host resolver wired into the run-time, and the TTLs it was
   created with (the resolver does not expose them). *)
type domains_state = {
  chain : Domain_server.t array;
  resolver : Resolver.t;
  d_ttl_ms : float;
  d_neg_ttl_ms : float;
  d_stale_window_ms : float;
}

type shell = {
  env : Runtime.env;
  scenario : Scenario.t;
  mutable failed : int;
  mutable injector : Vfault.Injector.t option;
  mutable replicas : Vservices.Replica.t option;
  mutable domains : domains_state option;
  mutable admission_on : bool;
}

let pr fmt = Fmt.pr (fmt ^^ "@.")

let report_error what e =
  pr "vsh: %s: %a" what Vio.Verr.pp e;
  `Failed

let run_or_report sh what = function
  | Ok () -> ()
  | Error e ->
      (match report_error what e with `Failed -> ());
      sh.failed <- sh.failed + 1

(* --- commands --- *)

let cmd_ls sh args =
  let name = match args with [] -> "" | n :: _ -> n in
  match Runtime.list_directory sh.env name with
  | Error e -> Error e
  | Ok records ->
      List.iter (fun r -> pr "  %a" Descriptor.pp r) records;
      Ok ()

let cmd_cat sh = function
  | [ name ] ->
      Result.map
        (fun data -> pr "%s" (Bytes.to_string data))
        (Runtime.read_file sh.env name)
  | _ -> Error (Vio.Verr.Protocol "usage: cat NAME")

let cmd_write sh = function
  | name :: words ->
      Runtime.write_file sh.env name (Bytes.of_string (String.concat " " words))
  | _ -> Error (Vio.Verr.Protocol "usage: write NAME TEXT...")

let cmd_append sh = function
  | name :: words ->
      Runtime.append_file sh.env name (Bytes.of_string (String.concat " " words))
  | _ -> Error (Vio.Verr.Protocol "usage: append NAME TEXT...")

let cmd_cp sh = function
  | [ src; dst ] -> Runtime.copy sh.env ~src ~dst
  | _ -> Error (Vio.Verr.Protocol "usage: cp SRC DST")

let cmd_tree sh args =
  let root = match args with [] -> "" | r :: _ -> r in
  Vruntime.Walker.pp_tree ~max_depth:6 sh.env ~root Fmt.stdout ();
  Ok ()

let cmd_find sh = function
  | [ root; needle ] ->
      let hits =
        Vruntime.Walker.find sh.env ~root (fun v ->
            let name = v.Vruntime.Walker.v_descriptor.Descriptor.name in
            let n = String.length needle and h = String.length name in
            let rec has i = i + n <= h && (String.sub name i n = needle || has (i + 1)) in
            n = 0 || has 0)
      in
      List.iter (fun name -> pr "  %s" name) hits;
      pr "(%d match(es))" (List.length hits);
      Ok ()
  | _ -> Error (Vio.Verr.Protocol "usage: find ROOT SUBSTRING")

let cmd_du sh args =
  let root = match args with [] -> "" | r :: _ -> r in
  pr "%d bytes under %s" (Vruntime.Walker.disk_usage sh.env ~root)
    (if root = "" then "(current context)" else root);
  Ok ()

let cmd_rm sh = function
  | [ name ] -> Runtime.remove sh.env name
  | _ -> Error (Vio.Verr.Protocol "usage: rm NAME")

let cmd_mkdir sh = function
  | [ name ] -> Runtime.create sh.env ~directory:true name
  | _ -> Error (Vio.Verr.Protocol "usage: mkdir NAME")

let cmd_mv sh = function
  | [ old_name; new_name ] -> Runtime.rename sh.env old_name ~new_name
  | _ -> Error (Vio.Verr.Protocol "usage: mv OLD NEW(relative)")

let cmd_query sh = function
  | [ name ] ->
      Result.map (fun d -> pr "  %a" Descriptor.pp d) (Runtime.query sh.env name)
  | _ -> Error (Vio.Verr.Protocol "usage: query NAME")

let cmd_chmod sh = function
  | [ flag; name ] when flag = "+w" || flag = "-w" -> (
      match Runtime.query sh.env name with
      | Error e -> Error e
      | Ok d ->
          Runtime.modify sh.env name { d with Descriptor.writable = flag = "+w" })
  | _ -> Error (Vio.Verr.Protocol "usage: chmod +w|-w NAME")

let cmd_cd sh = function
  | [ name ] ->
      Result.map
        (fun (spec : Context.spec) ->
          pr "current context: %a" Context.pp_spec spec)
        (Runtime.change_context sh.env name)
  | _ -> Error (Vio.Verr.Protocol "usage: cd NAME")

let cmd_pwd sh _args =
  Result.map (fun name -> pr "%s" name) (Runtime.current_context_name sh.env)

let cmd_resolve sh = function
  | [ name ] ->
      Result.map
        (fun (spec : Context.spec) -> pr "%s -> %a" name Context.pp_spec spec)
        (Runtime.resolve sh.env name)
  | _ -> Error (Vio.Verr.Protocol "usage: resolve NAME")

let cmd_prefixes sh _args =
  let ws = Scenario.workstation sh.scenario 0 in
  List.iter
    (fun (name, target) -> pr "  [%s] -> %a" name Prefix_server.pp_target target)
    (Prefix_server.bindings ws.Scenario.ws_prefix);
  Ok ()

let cmd_bind sh = function
  | [ prefix; target ] -> (
      (* target is another name that must denote a context. *)
      match Runtime.resolve sh.env target with
      | Error e -> Error e
      | Ok spec -> Runtime.add_prefix sh.env prefix (`Static spec))
  | _ -> Error (Vio.Verr.Protocol "usage: bind PREFIX TARGET-NAME")

let cmd_unbind sh = function
  | [ prefix ] -> Runtime.delete_prefix sh.env prefix
  | _ -> Error (Vio.Verr.Protocol "usage: unbind PREFIX")

let cmd_link sh = function
  | [ name; target ] -> (
      match Runtime.resolve sh.env target with
      | Error e -> Error e
      | Ok spec -> Runtime.link sh.env name ~target:spec)
  | _ -> Error (Vio.Verr.Protocol "usage: link NAME TARGET-NAME")

let cmd_mail sh = function
  | "send" :: box :: words ->
      Runtime.append_file sh.env ("[mail]" ^ box)
        (Bytes.of_string ("From: vsh\n" ^ String.concat " " words))
  | [ "read"; box ] ->
      Result.map
        (fun data -> pr "%s" (Bytes.to_string data))
        (Runtime.read_file sh.env ("[mail]" ^ box))
  | _ -> Error (Vio.Verr.Protocol "usage: mail send BOX TEXT... | mail read BOX")

let cmd_print sh = function
  | name :: words ->
      Runtime.write_file sh.env ("[printer]" ^ name)
        (Bytes.of_string (String.concat " " words))
  | _ -> Error (Vio.Verr.Protocol "usage: print JOB TEXT...")

let cmd_tell sh = function
  | term :: words ->
      Runtime.append_file sh.env ("[terminals]" ^ term)
        (Bytes.of_string (String.concat " " words))
  | _ -> Error (Vio.Verr.Protocol "usage: tell TERMINAL TEXT...")

let cmd_time sh _args =
  Result.map
    (fun t -> pr "simulated time: %.2f ms" t)
    (Vservices.Time_server.get_time (Runtime.self sh.env))

let cmd_crash sh = function
  | [ which ] -> (
      match int_of_string_opt which with
      | Some i when i < Array.length sh.scenario.Scenario.file_servers ->
          K.crash_host
            (Option.get
               (K.host_of_addr sh.scenario.Scenario.domain (Scenario.fs_addr i)));
          pr "crashed file server %d's host" i;
          Ok ()
      | _ -> Error (Vio.Verr.Protocol "usage: crash FS-INDEX"))
  | _ -> Error (Vio.Verr.Protocol "usage: crash FS-INDEX")

let cmd_restart sh = function
  | [ which ] -> (
      match int_of_string_opt which with
      | Some i when i < Array.length sh.scenario.Scenario.file_servers ->
          let addr = Scenario.fs_addr i in
          let host =
            Option.get (K.host_of_addr sh.scenario.Scenario.domain addr)
          in
          K.restart_host host;
          (* A replica-set member must come back through [Replica.revive]
             — catch up on the group write log, then re-enroll — or the
             set would keep balancing reads onto the dead pid. *)
          (match
             Option.bind sh.replicas (fun r -> Vservices.Replica.revive r addr)
           with
          | Some fresh ->
              sh.scenario.Scenario.file_servers.(i) <- fresh;
              pr "restarted host; replica member catching up before rejoining"
          | None ->
              ignore
                (File_server.start host ~name:(Fmt.str "fs%d'" i)
                   ~owner:"system" ());
              pr "restarted host and started a fresh file server process");
          Ok ()
      | _ -> Error (Vio.Verr.Protocol "usage: restart FS-INDEX"))
  | _ -> Error (Vio.Verr.Protocol "usage: restart FS-INDEX")

let cmd_netstat sh _args =
  let c = Vnet.Ethernet.counters sh.scenario.Scenario.net in
  pr "frames sent %d, delivered %d, dropped %d; %d bytes on the wire"
    c.Vnet.Ethernet.frames_sent c.Vnet.Ethernet.frames_delivered
    c.Vnet.Ethernet.frames_dropped c.Vnet.Ethernet.bytes_sent;
  pr "message transactions: %d" (K.ipc_transaction_count sh.scenario.Scenario.domain);
  Ok ()

(* Fabric introspection: what the installation is wired as, and what
   each segment has carried. On the shared medium there are no links to
   list — netstat's wire-wide counters are the whole story. *)
let cmd_net sh args =
  let net = sh.scenario.Scenario.net in
  let topo = Vnet.Ethernet.topology net in
  match args with
  | [] | [ "topo" ] ->
      pr "fabric: %a" Vnet.Topology.pp topo;
      (match topo with
      | Vnet.Topology.Shared_medium -> ()
      | Vnet.Topology.Switched { fan_in } ->
          let edges = Hashtbl.create 8 in
          List.iter
            (fun a ->
              let e = Vnet.Topology.edge_of ~fan_in a in
              Hashtbl.replace edges e (1 + Option.value ~default:0 (Hashtbl.find_opt edges e)))
            (Vnet.Ethernet.hosts net);
          Hashtbl.fold (fun e n acc -> (e, n) :: acc) edges []
          |> List.sort compare
          |> List.iter (fun (e, n) -> pr "  edge%d: %d host(s)" e n);
          match Vnet.Ethernet.queue_capacity net with
          | Some cap -> pr "  per-port output queue bound: %d frames" cap
          | None -> ());
      Ok ()
  | [ "stats" ] ->
      (match topo with
      | Vnet.Topology.Shared_medium ->
          pr "shared medium: one wire, no per-segment state (see netstat)"
      | Vnet.Topology.Switched _ -> (
          Vnet.Ethernet.export_link_metrics net;
          match Vnet.Ethernet.link_stats net with
          | [] -> pr "switched fabric: no segment has carried a frame yet"
          | stats ->
              pr "%-22s %5s %8s %6s %6s %9s %6s" "segment" "up" "frames"
                "drops" "queue" "busy ms" "util%";
              let now = Vsim.Engine.now sh.scenario.Scenario.engine in
              List.iter
                (fun s ->
                  pr "%-22s %5s %8d %6d %3d/%-3d %9.1f %5.1f%%"
                    s.Vnet.Ethernet.ls_label
                    (if s.Vnet.Ethernet.ls_up then "yes" else "NO")
                    s.Vnet.Ethernet.ls_frames s.Vnet.Ethernet.ls_drops
                    s.Vnet.Ethernet.ls_queued s.Vnet.Ethernet.ls_queue_peak
                    s.Vnet.Ethernet.ls_busy_ms
                    (if now > 0.0 then s.Vnet.Ethernet.ls_busy_ms /. now *. 100.0
                     else 0.0))
                stats));
      Ok ()
  | _ -> Error (Vio.Verr.Protocol "usage: net [topo|stats]")

let cmd_echo _sh args =
  pr "%s" (String.concat " " args);
  Ok ()

(* Dump the span tree of the most recent traced request — by default the
   last naming operation the shell itself issued (the `trace` command
   creates no trace of its own). *)
let cmd_trace sh args =
  let hub = sh.scenario.Scenario.obs in
  let id =
    match args with
    | [] -> (
        match Vobs.Hub.last_trace hub with
        | Some id -> Ok id
        | None -> Error "no traced request yet")
    | [ n ] -> (
        match int_of_string_opt n with
        | Some id -> Ok id
        | None -> Error (Fmt.str "bad trace id %S" n))
    | _ -> Error "usage: trace [ID]"
  in
  match id with
  | Error e -> Error (Vio.Verr.Protocol e)
  | Ok id -> (
      match Vobs.Hub.trace_spans hub id with
      | [] -> Error (Vio.Verr.Protocol (Fmt.str "no spans for trace %d" id))
      | spans ->
          pr "trace %d (%d spans):" id (List.length spans);
          Vobs.Export.pp_timeline Fmt.stdout spans;
          Ok ())

let cmd_cache sh args =
  let stats () =
    let s = Runtime.name_cache_stats sh.env in
    pr "name cache: %s, %d/%d entries"
      (if Runtime.cache_hit_count sh.env + s.Name_cache.misses > 0
          || s.Name_cache.size > 0
       then "in use"
       else "idle")
      s.Name_cache.size
      (Name_cache.capacity (Runtime.name_cache sh.env));
    pr "  hits %d  misses %d  stale %d  evictions %d  insertions %d"
      s.Name_cache.hits s.Name_cache.misses s.Name_cache.stale
      s.Name_cache.evictions s.Name_cache.insertions;
    List.iter
      (fun (key, spec) ->
        pr "  %-24s -> pid %d ctx %d" key
          (Vkernel.Pid.to_int spec.Context.server)
          spec.Context.context)
      (Name_cache.to_list (Runtime.name_cache sh.env))
  in
  match args with
  | [ "on" ] ->
      Runtime.enable_name_cache sh.env true;
      pr "name cache enabled";
      Ok ()
  | [ "off" ] ->
      Runtime.enable_name_cache sh.env false;
      pr "name cache disabled";
      Ok ()
  | [] | [ "stats" ] ->
      stats ();
      Ok ()
  | _ -> Error (Vio.Verr.Protocol "usage: cache [on|off|stats]")

(* Scheduler introspection: how much event-queue work this run has done
   so far. The events/s figure reads the process CPU clock (the one
   non-simulated number vsh prints); everything else is deterministic. *)
let cmd_engine sh args =
  let eng = sh.scenario.Scenario.engine in
  match args with
  | [] | [ "stats" ] ->
      pr "engine: %s backend"
        (match Vsim.Engine.backend eng with
        | Vsim.Engine.Wheel_queue -> "timer-wheel"
        | Vsim.Engine.Heap_queue -> "binary-heap");
      pr "  events executed %d  pending %d  timers cancelled %d"
        (Vsim.Engine.executed eng)
        (Vsim.Engine.pending eng)
        (Vsim.Engine.cancelled_timers eng);
      pr "  %.0f events/s over this run" (Vsim.Engine.events_per_sec eng);
      Ok ()
  | _ -> Error (Vio.Verr.Protocol "usage: engine [stats]")

(* Fault injection from the shell: generate a seeded plan against the
   installation's address layout, shift it to start "now" (plan times
   are relative to generation time zero), and install it with a revive
   hook that reboots a crashed file server as a successor process —
   the same recovery story E9 measures. *)
let cmd_fault sh args =
  let t = sh.scenario in
  let fs_addrs =
    List.init (Array.length t.Scenario.file_servers) Scenario.fs_addr
  in
  let make_plan seed duration_ms =
    (* Short interactive horizons: start faulting early and pack several
       episodes in, where a soak benchmark would use the defaults. *)
    Vfault.Plan.generate ~seed ~duration_ms ~warmup_ms:(duration_ms /. 20.0)
      ~mean_gap_ms:(duration_ms /. 8.0) ~crashable:fs_addrs
      ~partitionable:
        (List.init (Array.length t.Scenario.workstations) Scenario.ws_addr
        @ [ Scenario.printer_addr; Scenario.mail_addr ])
      ~slowable:(fs_addrs @ [ Scenario.printer_addr ])
      ()
  in
  let revive addr =
    Array.iteri
      (fun i fs ->
        if Scenario.fs_addr i = addr then
          match K.host_of_addr t.Scenario.domain addr with
          | Some host ->
              t.Scenario.file_servers.(i) <- File_server.restart_from fs host ()
          | None -> ())
      t.Scenario.file_servers
  in
  let parse_seed s = int_of_string_opt s in
  let parse_duration = function
    | [] -> Some 30_000.0
    | [ d ] -> float_of_string_opt d
    | _ -> None
  in
  match args with
  | "plan" :: seed :: rest -> (
      match (parse_seed seed, parse_duration rest) with
      | Some seed, Some duration_ms ->
          pr "%a" Vfault.Plan.pp (make_plan seed duration_ms);
          Ok ()
      | _ -> Error (Vio.Verr.Protocol "usage: fault plan SEED [DURATION-MS]"))
  | "inject" :: seed :: rest -> (
      match (parse_seed seed, parse_duration rest) with
      | Some seed, Some duration_ms ->
          let now = Vsim.Engine.now t.Scenario.engine in
          let plan = make_plan seed duration_ms in
          let shifted =
            Vfault.Plan.of_events ~seed
              (List.map
                 (fun e -> { e with Vfault.Plan.at = now +. e.Vfault.Plan.at })
                 plan.Vfault.Plan.events)
          in
          sh.injector <- Some (Vfault.Injector.install ~on_restart:revive t shifted);
          pr "installed fault plan (seed %d): %d events over %.0f ms" seed
            (List.length shifted.Vfault.Plan.events)
            duration_ms;
          Ok ()
      | _ -> Error (Vio.Verr.Protocol "usage: fault inject SEED [DURATION-MS]"))
  | [] | [ "status" ] ->
      pr "%a" Vnet.Ethernet.pp t.Scenario.net;
      (match sh.injector with
      | None -> pr "no fault plan installed"
      | Some inj -> pr "%a" Vfault.Injector.pp inj);
      Ok ()
  | _ ->
      Error
        (Vio.Verr.Protocol
           "usage: fault plan SEED [DURATION-MS] | fault inject SEED \
            [DURATION-MS] | fault status")

(* Replicated storage from the shell: join the first N file servers into
   a replica set under one logical service id and bind [rstore] to it on
   every workstation — reads balance across members, CSNH writes fan out
   from the coordinating prefix server. The same machinery E10
   benchmarks, made interactive. *)
let cmd_replicas sh args =
  let t = sh.scenario in
  let module Replica = Vservices.Replica in
  let fs_count = Array.length t.Scenario.file_servers in
  match args with
  | "on" :: rest -> (
      let parse = function
        | [] -> Some (fs_count, Vkernel.Balancer.Round_robin)
        | [ n ] ->
            Option.map
              (fun n -> (n, Vkernel.Balancer.Round_robin))
              (int_of_string_opt n)
        | [ n; pol ] -> (
            match (int_of_string_opt n, Vkernel.Balancer.policy_of_string pol)
            with
            | Some n, Some p -> Some (n, p)
            | _ -> None)
        | _ -> None
      in
      match (sh.replicas, parse rest) with
      | Some _, _ ->
          Error
            (Vio.Verr.Protocol
               "a replica set is already installed (replicas off first)")
      | None, None -> Error (Vio.Verr.Protocol "usage: replicas on [N] [rr|nearest]")
      | None, Some (n, _) when n < 1 || n > fs_count ->
          Error (Vio.Verr.Protocol (Fmt.str "N must be 1..%d" fs_count))
      | None, Some (n, policy) ->
          let members =
            List.init n (fun i ->
                match K.host_of_addr t.Scenario.domain (Scenario.fs_addr i) with
                | Some host -> (host, t.Scenario.file_servers.(i))
                | None -> assert false)
          in
          let r = Replica.install t.Scenario.domain ~policy ~members () in
          Array.iter
            (fun ws ->
              ignore
                (Prefix_server.add_binding ws.Scenario.ws_prefix "rstore"
                   (Replica.target r)))
            t.Scenario.workstations;
          sh.replicas <- Some r;
          pr "replica set installed: %d member(s), [rstore] bound on every \
              workstation" n;
          Ok ())
  | [ "off" ] -> (
      match sh.replicas with
      | None -> Error (Vio.Verr.Protocol "no replica set installed")
      | Some r ->
          Replica.uninstall r;
          Array.iter
            (fun ws ->
              ignore (Prefix_server.delete_binding ws.Scenario.ws_prefix "rstore"))
            t.Scenario.workstations;
          sh.replicas <- None;
          pr "replica set removed; [rstore] unbound";
          Ok ())
  | [] | [ "status" ] ->
      (match sh.replicas with
      | None -> pr "no replica set installed"
      | Some r ->
          pr "replica set: service %s (group %d), factor %d, policy %a"
            (Vkernel.Service.Id.to_string (Replica.service r))
            (Replica.group r) (Replica.factor r) Vkernel.Balancer.pp_policy
            (Replica.policy r);
          List.iter
            (fun (addr, fs) ->
              pr "  host %d: %s (pid %d)" addr (File_server.name fs)
                (Vkernel.Pid.to_int (File_server.pid fs)))
            (Replica.members r));
      Ok ()
  | _ ->
      Error
        (Vio.Verr.Protocol
           "usage: replicas on [N] [rr|nearest] | replicas off | replicas \
            status")

(* Federated name domains from the shell: boot a chain of domain
   servers under "[dom]" — each delegating one named sub-context to the
   next, the last binding "leaf" into fs0's root — and wire a caching
   resolver into the run-time, so every "[dom]..." name the shell
   touches resolves iteratively, referral by referral. The same
   machinery E11 benchmarks, made interactive. *)
let domains_prefix = "dom"
let domains_addr i = 50 + i

let cmd_domains sh args =
  let t = sh.scenario in
  let fail_ds what = function
    | Ok v -> v
    | Error code -> failwith (Fmt.str "%s: %s" what (Reply.to_string code))
  in
  let with_tree f =
    match sh.domains with
    | Some st -> f st
    | None -> Error (Vio.Verr.Protocol "no domain tree installed (domains on first)")
  in
  match args with
  | "on" :: rest -> (
      let depth = match rest with [] -> Some 3 | [ d ] -> int_of_string_opt d | _ -> None in
      match (sh.domains, depth) with
      | Some _, _ ->
          Error (Vio.Verr.Protocol "a domain tree is already installed (domains off first)")
      | None, Some depth when depth >= 1 ->
          let chain =
            Array.init depth (fun i ->
                let name = Fmt.str "dom%d" i in
                let host =
                  match K.host_of_addr t.Scenario.domain (domains_addr i) with
                  | Some host -> host
                  | None -> K.boot_host t.Scenario.domain ~name (domains_addr i)
                in
                Domain_server.start host ~name ())
          in
          for i = 0 to depth - 2 do
            fail_ds "delegate"
              (Domain_server.delegate chain.(i)
                 (Fmt.str "d%d" (i + 1))
                 (Domain_server.spec chain.(i + 1) ()))
          done;
          fail_ds "bind"
            (Domain_server.bind chain.(depth - 1) "leaf"
               (File_server.spec (Scenario.file_server t 0)
                  ~context:Context.Well_known.default));
          let d_ttl_ms = Resolver.default_ttl_ms
          and d_neg_ttl_ms = Resolver.default_neg_ttl_ms
          and d_stale_window_ms = 10_000.0 in
          let resolver =
            Resolver.create ~ttl_ms:d_ttl_ms ~neg_ttl_ms:d_neg_ttl_ms
              ~stale_window_ms:d_stale_window_ms ~prefix:domains_prefix
              ~root:(Domain_server.spec chain.(0) ())
              ()
          in
          Runtime.set_resolver sh.env resolver;
          sh.domains <-
            Some { chain; resolver; d_ttl_ms; d_neg_ttl_ms; d_stale_window_ms };
          pr "domain tree up: %d server(s), [%s] names resolve iteratively \
              (leaf -> fs0)"
            depth domains_prefix;
          Ok ()
      | None, _ -> Error (Vio.Verr.Protocol "usage: domains on [DEPTH>=1]"))
  | [ "off" ] ->
      with_tree (fun _ ->
          Runtime.clear_resolver sh.env;
          sh.domains <- None;
          pr "resolver unwired; [%s] names no longer resolve" domains_prefix;
          Ok ())
  | [ "tree" ] ->
      with_tree (fun st ->
          let server_of spec =
            Array.to_seq st.chain
            |> Seq.find (fun ds ->
                   Vkernel.Pid.to_int (Domain_server.pid ds)
                   = Vkernel.Pid.to_int spec.Context.server)
          in
          let rec print_node ds ctx indent =
            List.iter
              (fun (component, entry) ->
                match entry with
                | Domain_server.Subcontext id ->
                    pr "%s%s/ (subcontext %d)" indent component id;
                    print_node ds id (indent ^ "  ")
                | Domain_server.Child spec -> (
                    match server_of spec with
                    | Some child ->
                        pr "%s%s/ -> domain %s (pid %d)" indent component
                          (Domain_server.name child)
                          (Vkernel.Pid.to_int spec.Context.server);
                        print_node child Domain_server.apex (indent ^ "  ")
                    | None ->
                        pr "%s%s/ -> foreign domain pid %d" indent component
                          (Vkernel.Pid.to_int spec.Context.server))
                | Domain_server.Bound spec ->
                    pr "%s%s -> pid %d ctx %d (object server)" indent component
                      (Vkernel.Pid.to_int spec.Context.server)
                      spec.Context.context)
              (Domain_server.entries ds ~ctx ())
          in
          pr "[%s] root = domain %s (pid %d)" domains_prefix
            (Domain_server.name st.chain.(0))
            (Vkernel.Pid.to_int (Domain_server.pid st.chain.(0)));
          print_node st.chain.(0) Domain_server.apex "  ";
          Ok ())
  | [ "resolve"; name ] ->
      with_tree (fun st ->
          match Resolver.resolve st.resolver (Runtime.self sh.env) name with
          | Error e -> Error e
          | Ok o ->
              pr "%s -> pid %d ctx %d at index %d (%d query(ies)%s)" name
                (Vkernel.Pid.to_int o.Resolver.spec.Context.server)
                o.Resolver.spec.Context.context o.Resolver.index
                o.Resolver.queries
                (if o.Resolver.served_stale then ", served stale"
                 else if o.Resolver.queries = 0 then ", from cache"
                 else "");
              Ok ())
  | [ "ttl" ] ->
      with_tree (fun st ->
          pr "resolver TTLs: positive %.0f ms, negative %.0f ms, stale window \
              %.0f ms"
            st.d_ttl_ms st.d_neg_ttl_ms st.d_stale_window_ms;
          let s = Resolver.stats st.resolver in
          pr "  walks %d  cache answers %d  negative answers %d  stale serves \
              %d  queries %d  referrals %d  loops %d  failures %d"
            s.Resolver.walks s.Resolver.cache_answers s.Resolver.neg_answers
            s.Resolver.stale_serves s.Resolver.queries s.Resolver.referrals
            s.Resolver.loops s.Resolver.failures;
          let now = Vsim.Engine.now t.Scenario.engine in
          List.iter
            (fun (key, value, expires) ->
              pr "  %-28s %a%s" key Name_cache.pp_value value
                (match expires with
                | None -> "  (no ttl)"
                | Some at when at >= now -> Fmt.str "  expires in %.0f ms" (at -. now)
                | Some at -> Fmt.str "  expired %.0f ms ago" (now -. at)))
            (Name_cache.dump (Resolver.cache st.resolver));
          Ok ())
  | _ ->
      Error
        (Vio.Verr.Protocol
           "usage: domains on [DEPTH] | domains off | domains tree | domains \
            resolve NAME | domains ttl")

(* Aligned-column rendering for the metrics tables: first column
   left-aligned, the rest right-aligned, widths fitted to content so
   the output is stable and diffable across runs. *)
let print_rows ~header rows =
  let all = header :: rows in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init (List.length header) width in
  let render row =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let w = List.nth widths c in
           if c = 0 then Fmt.str "%-*s" w cell else Fmt.str "%*s" w cell)
         row)
  in
  pr "%s" (render header);
  List.iter (fun row -> pr "%s" (render row)) rows

(* Overload protection from the shell: install the calibrated admission
   policies on every server of the installation — file servers shed
   against a disk-page budget, prefix and domain servers against a
   name-lookup budget — and read back the admitted/shed/queue-depth
   counters. The kernel's admit/shed counters also land in `metrics`
   under (host, kernel, admit|shed); `admission status` additionally
   samples per-server queue depths as gauges so they show there too. *)
let admission_targets sh =
  let t = sh.scenario in
  let fs =
    Array.to_list t.Scenario.file_servers
    |> List.map (fun f -> (File_server.name f, `Fs f))
  in
  let ws =
    Array.to_list t.Scenario.workstations
    |> List.map (fun w ->
           (w.Scenario.ws_name ^ "-prefix", `Prefix w.Scenario.ws_prefix))
  in
  let ds =
    match sh.domains with
    | None -> []
    | Some st ->
        Array.to_list st.chain
        |> List.map (fun d -> (Domain_server.name d, `Domain d))
  in
  fs @ ws @ ds

let target_pid = function
  | `Fs f -> File_server.pid f
  | `Prefix p -> Prefix_server.pid p
  | `Domain d -> Domain_server.pid d

let cmd_admission sh args =
  let t = sh.scenario in
  let d = t.Scenario.domain in
  let module Admission = Vservices.Admission in
  match args with
  | [ "on" ] ->
      List.iter
        (fun (_, tgt) ->
          match tgt with
          | `Fs f -> File_server.enable_admission f d ()
          | `Prefix p -> Admission.protect_prefix_server d p ()
          | `Domain ds -> Domain_server.enable_admission ds d ())
        (admission_targets sh);
      sh.admission_on <- true;
      pr "admission control on: file, prefix and domain servers protected";
      Ok ()
  | [ "off" ] ->
      List.iter
        (fun (_, tgt) ->
          match tgt with
          | `Fs f -> File_server.disable_admission f d
          | `Prefix p -> Admission.uninstall d (Prefix_server.pid p)
          | `Domain ds -> Domain_server.disable_admission ds d)
        (admission_targets sh);
      sh.admission_on <- false;
      pr "admission control off";
      Ok ()
  | [] | [ "status" ] ->
      pr "admission control %s" (if sh.admission_on then "on" else "off");
      if sh.admission_on then begin
        let m = Vobs.Hub.metrics t.Scenario.obs in
        print_rows
          ~header:[ "server"; "pid"; "queue"; "admitted"; "shed" ]
          (List.map
             (fun (label, tgt) ->
               let pid = target_pid tgt in
               let depth = Admission.queue_depth d pid in
               let admitted, shed = Admission.counters d pid in
               Vobs.Metrics.set_gauge m ~host:label ~server:"admission"
                 ~op:"queue-depth" (float_of_int depth);
               [
                 label;
                 string_of_int (Vkernel.Pid.to_int pid);
                 string_of_int depth;
                 string_of_int admitted;
                 string_of_int shed;
               ])
             (admission_targets sh))
      end;
      Ok ()
  | _ -> Error (Vio.Verr.Protocol "usage: admission on | off | status")

(* Row shapes shared by `metrics` and `top`, so the two views stay
   column-compatible. *)
let hist_header = [ "histogram"; "n"; "mean"; "p50"; "p95"; "p99"; "max" ]

let hist_row name h =
  let module H = Vobs.Metrics.Histogram in
  [
    name;
    string_of_int (H.count h);
    Fmt.str "%.3f" (H.mean h);
    Fmt.str "%.3f" (H.quantile h 0.5);
    Fmt.str "%.3f" (H.quantile h 0.95);
    Fmt.str "%.3f" (H.quantile h 0.99);
    Fmt.str "%.3f" (H.max_ h);
  ]

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  m = 0
  ||
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let take n l = List.filteri (fun i _ -> i < n) l

(* Counters, gauges and histograms as stable tables: rows sorted by
   (host, server, op) — the registry guarantees the order — histograms
   carrying their quantile columns so a latency regression is visible
   without the JSON dump. With hundreds of keys the full dump is
   unreadable, hence [FILTER] (substring over "host/server/op") and
   [--top N] (sort by count/value, keep the N hottest). *)
let cmd_metrics sh args =
  let hub = sh.scenario.Scenario.obs in
  (* Per-op counters accumulate on host/port records; scrape them into
     the registry before reading it. *)
  K.flush_metrics sh.scenario.Scenario.domain;
  let m = Vobs.Hub.metrics hub in
  let key (k : Vobs.Metrics.key) = Fmt.str "%s/%s/%s" k.host k.server k.op in
  let usage = "usage: metrics [FILTER] [--top N] | metrics json | metrics prom" in
  let rec parse filter top = function
    | [] -> Ok (filter, top)
    | "--top" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n > 0 -> parse filter (Some n) rest
        | _ -> Error (Vio.Verr.Protocol usage))
    | s :: rest when filter = None && s <> "--top" -> parse (Some s) top rest
    | _ -> Error (Vio.Verr.Protocol usage)
  in
  match args with
  | [ "json" ] ->
      pr "%s" (Vobs.Json.to_string (Vobs.Metrics.to_json m));
      Ok ()
  | [ "prom" ] ->
      print_string (Vobs.Export.prometheus hub);
      Ok ()
  | args -> (
      match parse None None args with
      | Error e -> Error e
      | Ok (filter, top) ->
          let keep name =
            match filter with
            | None -> true
            | Some f -> contains_substring name f
          in
          let select weight rows =
            let rows = List.filter (fun (name, _) -> keep name) rows in
            match top with
            | None -> rows
            | Some n ->
                List.stable_sort
                  (fun (_, a) (_, b) -> compare (weight b) (weight a))
                  rows
                |> take n
          in
          (match
             select Fun.id
               (List.map (fun (k, v) -> (key k, v)) (Vobs.Metrics.counters m))
           with
          | [] -> ()
          | counters ->
              print_rows ~header:[ "counter"; "value" ]
                (List.map
                   (fun (name, v) -> [ name; string_of_int v ])
                   counters));
          (match
             select Fun.id
               (List.map (fun (k, v) -> (key k, v)) (Vobs.Metrics.gauges m))
           with
          | [] -> ()
          | gauges ->
              pr "";
              print_rows ~header:[ "gauge"; "value" ]
                (List.map (fun (name, v) -> [ name; Fmt.str "%.3f" v ]) gauges));
          (match
             select Vobs.Metrics.Histogram.count
               (List.map
                  (fun (k, h) -> (key k, h))
                  (Vobs.Metrics.histograms m))
           with
          | [] -> ()
          | histograms ->
              pr "";
              print_rows ~header:hist_header
                (List.map (fun (name, h) -> hist_row name h) histograms));
          Ok ())

(* The live view at scale: the N hottest instruments (rollup leaves
   when a rollup is attached, the flat registry otherwise) plus the
   time-series sparklines — one screen that says where the load and the
   latency are right now. *)
let cmd_top sh args =
  let hub = sh.scenario.Scenario.obs in
  let n =
    match args with
    | [] -> Some 10
    | [ n ] -> (
        match int_of_string_opt n with
        | Some n when n > 0 -> Some n
        | _ -> None)
    | _ -> None
  in
  match n with
  | None -> Error (Vio.Verr.Protocol "usage: top [N]")
  | Some n ->
      K.flush_metrics sh.scenario.Scenario.domain;
      Vobs.Hub.sync_health_metrics hub;
      let counter_rows, hist_rows =
        match Vobs.Hub.rollup hub with
        | Some r ->
            let key (k : Vobs.Rollup.key) =
              Fmt.str "%s/%s/%s" k.scope k.server k.op
            in
            ( List.map
                (fun (k, v) -> (key k, v))
                (Vobs.Rollup.counters r Vobs.Rollup.Leaf),
              List.map
                (fun (k, h) -> (key k, h))
                (Vobs.Rollup.histograms r Vobs.Rollup.Leaf) )
        | None ->
            let m = Vobs.Hub.metrics hub in
            let key (k : Vobs.Metrics.key) =
              Fmt.str "%s/%s/%s" k.host k.server k.op
            in
            ( List.map (fun (k, v) -> (key k, v)) (Vobs.Metrics.counters m),
              List.map (fun (k, h) -> (key k, h)) (Vobs.Metrics.histograms m)
            )
      in
      let hottest weight rows =
        List.stable_sort (fun (_, a) (_, b) -> compare (weight b) (weight a)) rows
        |> take n
      in
      (match hottest Fun.id counter_rows with
      | [] -> pr "(no counters yet)"
      | rows ->
          print_rows ~header:[ "hottest"; "count" ]
            (List.map (fun (name, v) -> [ name; string_of_int v ]) rows));
      (match hottest Vobs.Metrics.Histogram.count hist_rows with
      | [] -> ()
      | rows ->
          pr "";
          print_rows ~header:hist_header
            (List.map (fun (name, h) -> hist_row name h) rows));
      (match Vobs.Hub.timeseries hub with
      | None -> ()
      | Some ts -> (
          let series =
            List.map
              (fun (name, kind) ->
                let last =
                  match List.rev (Vobs.Timeseries.points ts name) with
                  | (_, v) :: _ -> v
                  | [] -> 0.0
                in
                (name, kind, last))
              (Vobs.Timeseries.names ts)
            |> List.stable_sort (fun (_, _, a) (_, _, b) -> compare b a)
            |> take n
          in
          match series with
          | [] -> ()
          | series ->
              pr "";
              print_rows
                ~header:[ "series"; "kind"; "last"; "trend" ]
                (List.map
                   (fun (name, kind, last) ->
                     [
                       name;
                       Vobs.Timeseries.kind_to_string kind;
                       Fmt.str "%.3f" last;
                       Vobs.Timeseries.sparkline ts name;
                     ])
                   series)));
      Ok ()

(* Scale telemetry from the shell: attach a rollup tree (grouped by the
   kernel's topology mapping), a time-series store and 1-in-N head
   sampling, and arm the kernel pump. Everything detaches cleanly with
   `telemetry off`. *)
let cmd_telemetry sh args =
  let t = sh.scenario in
  let hub = t.Scenario.obs in
  let d = t.Scenario.domain in
  let enable every =
    let rollup =
      Vobs.Rollup.create ~exemplar_slots:2
        ~group_of:(fun name -> K.telemetry_group_of d name)
        ()
    in
    Vobs.Hub.set_rollup hub (Some rollup);
    Vobs.Hub.set_timeseries hub
      (Some (Vobs.Timeseries.create ~bucket_ms:100.0 ()));
    Vobs.Hub.set_head_sampling hub ~every ~seed:47;
    K.enable_telemetry d ~interval_ms:50.0;
    pr "telemetry on: rollups + time series attached, tracing 1-in-%d" every;
    Ok ()
  in
  match args with
  | [ "on" ] -> enable 1
  | [ "on"; every ] -> (
      match int_of_string_opt every with
      | Some every when every >= 1 -> enable every
      | _ -> Error (Vio.Verr.Protocol "usage: telemetry on [EVERY]"))
  | [ "off" ] ->
      Vobs.Hub.set_rollup hub None;
      Vobs.Hub.set_timeseries hub None;
      Vobs.Hub.set_head_sampling hub ~every:1 ~seed:47;
      K.disable_telemetry d;
      pr "telemetry off";
      Ok ()
  | [] | [ "status" ] ->
      (match Vobs.Hub.rollup hub with
      | None -> pr "telemetry off (flat metrics only)"
      | Some r ->
          pr
            "telemetry on: tracing 1-in-%d (%d sampled out), rollup %d \
             key(s), %d observation(s) dropped by the leaf cap"
            (Vobs.Hub.sample_every hub)
            (Vobs.Hub.sampled_out hub) (Vobs.Rollup.key_count r)
            (Vobs.Rollup.keys_dropped r));
      (match Vobs.Hub.timeseries hub with
      | None -> ()
      | Some ts ->
          pr "time series: %d series, %d refused by the cap"
            (Vobs.Timeseries.series_count ts)
            (Vobs.Timeseries.series_dropped ts));
      Ok ()
  | _ -> Error (Vio.Verr.Protocol "usage: telemetry on [EVERY] | off | status")

(* The flight recorder from the shell: newest events (oldest first, so
   the narrative reads downward), dropped-count trailer included. *)
let cmd_events sh args =
  let log = Vobs.Hub.events sh.scenario.Scenario.obs in
  match args with
  | [] ->
      pr "%a" (Vobs.Eventlog.pp ~limit:20) log;
      Ok ()
  | [ n ] -> (
      match int_of_string_opt n with
      | Some limit when limit > 0 ->
          pr "%a" (Vobs.Eventlog.pp ~limit) log;
          Ok ()
      | _ -> Error (Vio.Verr.Protocol "usage: events [N]"))
  | _ -> Error (Vio.Verr.Protocol "usage: events [N]")

let cmd_slo sh _args =
  match Vobs.Hub.slo sh.scenario.Scenario.obs with
  | None ->
      pr "no SLO engine attached";
      Ok ()
  | Some slo ->
      pr "%a" Vobs.Slo.pp_summary (Vobs.Slo.summary slo);
      Ok ()

(* Toggle the recorder or dump the whole flight — events, spans, SLO
   summary and metrics — as one JSON document. *)
let cmd_record sh args =
  let hub = sh.scenario.Scenario.obs in
  let log = Vobs.Hub.events hub in
  match args with
  | [ "on" ] ->
      Vobs.Eventlog.set_enabled log true;
      pr "flight recorder on";
      Ok ()
  | [ "off" ] ->
      Vobs.Eventlog.set_enabled log false;
      pr "flight recorder off";
      Ok ()
  | [] | [ "status" ] ->
      pr "flight recorder %s: %d event(s) held, %d dropped, %d span(s) evicted"
        (if Vobs.Eventlog.enabled log then "on" else "off")
        (Vobs.Eventlog.count log) (Vobs.Eventlog.dropped log)
        (Vobs.Hub.spans_dropped hub);
      Ok ()
  | "dump" :: rest -> (
      let file = match rest with [] -> "vsh-flight.json" | f :: _ -> f in
      let json = Vobs.Export.flight_to_json ~reason:"manual" hub in
      match
        Out_channel.with_open_bin file (fun oc ->
            output_string oc (Vobs.Json.to_string json);
            output_char oc '\n')
      with
      | () ->
          pr "flight dumped to %s" file;
          Ok ()
      | exception Sys_error msg -> Error (Vio.Verr.Protocol msg))
  | _ -> Error (Vio.Verr.Protocol "usage: record [on|off|status] | record dump [FILE]")

let commands :
    (string * string * (shell -> string list -> (unit, Vio.Verr.t) result)) list =
  [
    ("ls", "[NAME] — list a context directory", cmd_ls);
    ("cat", "NAME — print a file", cmd_cat);
    ("write", "NAME TEXT... — (over)write a file", cmd_write);
    ("append", "NAME TEXT... — append to a file-like object", cmd_append);
    ("cp", "SRC DST — copy (possibly across servers)", cmd_cp);
    ("tree", "[NAME] — recursive context listing", cmd_tree);
    ("find", "ROOT SUBSTRING — search names recursively", cmd_find);
    ("du", "[NAME] — total file bytes under a context", cmd_du);
    ("rm", "NAME — remove object and name atomically", cmd_rm);
    ("mkdir", "NAME — create a directory (context)", cmd_mkdir);
    ("mv", "OLD NEW — rename within a server", cmd_mv);
    ("query", "NAME — uniform object description", cmd_query);
    ("chmod", "+w|-w NAME — modify the description", cmd_chmod);
    ("cd", "NAME — change the current context", cmd_cd);
    ("pwd", "— name of the current context (inverse map)", cmd_pwd);
    ("resolve", "NAME — map a context name to (pid, ctx)", cmd_resolve);
    ("prefixes", "— show this user's prefix bindings", cmd_prefixes);
    ("bind", "PREFIX TARGET — define a prefix", cmd_bind);
    ("unbind", "PREFIX — remove a prefix", cmd_unbind);
    ("link", "NAME TARGET — cross-server context pointer", cmd_link);
    ("mail", "send BOX TEXT... | read BOX", cmd_mail);
    ("print", "JOB TEXT... — spool a printer job", cmd_print);
    ("tell", "TERMINAL TEXT... — write a terminal line", cmd_tell);
    ("time", "— ask the time service", cmd_time);
    ("crash", "FS-INDEX — crash a file server host", cmd_crash);
    ("restart", "FS-INDEX — restart host + fresh server", cmd_restart);
    ("netstat", "— wire and transaction counters", cmd_netstat);
    ("net", "[topo|stats] — fabric topology and per-segment counters", cmd_net);
    ("engine", "[stats] — event-queue scheduler statistics", cmd_engine);
    ("fault", "plan|inject SEED [MS] | status — seeded fault injection", cmd_fault);
    ("replicas", "on [N] [rr|nearest] | off | status — replicated [rstore]", cmd_replicas);
    ("domains", "on [DEPTH] | off | tree | resolve NAME | ttl — federated name domains", cmd_domains);
    ("trace", "[ID] — span tree of the last (or given) traced request", cmd_trace);
    ("cache", "[on|off|stats] — the name-resolution cache", cmd_cache);
    ("admission", "on | off | status — server overload protection", cmd_admission);
    ("metrics", "[FILTER] [--top N] | json | prom — counters and histograms", cmd_metrics);
    ("top", "[N] — hottest servers/links with time-series sparklines", cmd_top);
    ("telemetry", "on [EVERY] | off | status — rollups, time series, sampling", cmd_telemetry);
    ("events", "[N] — newest flight-recorder events (default 20)", cmd_events);
    ("slo", "— availability/latency objective summary", cmd_slo);
    ("record", "[on|off|status] | dump [FILE] — the flight recorder", cmd_record);
    ("echo", "TEXT... — print", cmd_echo);
  ]

let execute sh line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then ()
  else begin
    pr "vsh> %s" line;
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [] -> ()
    | cmd :: args -> (
        match List.find_opt (fun (n, _, _) -> n = cmd) commands with
        | Some (_, _, f) -> run_or_report sh line (f sh args)
        | None ->
            pr "vsh: unknown command %S (try --list-commands)" cmd;
            sh.failed <- sh.failed + 1)
  end

let demo_script =
  [
    "echo -- files and contexts --";
    "write [home]hello.txt Hello from the V executive";
    "cat [home]hello.txt";
    "mkdir [home]papers";
    "write [home]papers/naming.mss Uniform access to distributed name interpretation";
    "ls [home]";
    "cd [home]papers";
    "pwd";
    "cat naming.mss";
    "query naming.mss";
    "chmod -w naming.mss";
    "query naming.mss";
    "echo -- prefixes and cross-server names --";
    "prefixes";
    "bind papers [home]papers";
    "cat [papers]naming.mss";
    "link [fs1]borrowed [home]papers";
    "cat [fs1]borrowed/naming.mss";
    "trace";
    "tree [home]";
    "find [home] naming";
    "du [home]";
    "echo -- the name-resolution cache --";
    "cache on";
    "cat [fs1]borrowed/naming.mss";
    "cat [fs1]borrowed/naming.mss";
    "cache stats";
    "cache off";
    "echo -- federated name domains --";
    "domains on 3";
    "domains tree";
    "write [fs0]tmp/fed.txt reached through the domain tree";
    "cat [dom]d1/d2/leaf/tmp/fed.txt";
    "domains resolve [dom]d1/d2/leaf/tmp/fed.txt";
    "cat [dom]d1/d2/leaf/tmp/fed.txt";
    "domains ttl";
    "domains off";
    "echo -- diverse objects, one interface --";
    "print naming.ps A4 output of the naming paper";
    "tell console executive started";
    "mail send cheriton@su-score.ARPA the demo script works";
    "mail read cheriton@su-score.ARPA";
    "ls [printer]";
    "ls [terminals]";
    "ls [mail]";
    "echo -- replicated storage --";
    "replicas on 2";
    "replicas status";
    "mkdir [rstore]repl";
    "resolve [rstore]repl";
    "resolve [rstore]repl";
    "cd [rstore]repl";
    "write a.txt written through a pinned replica context";
    "cat a.txt";
    "cd [home]";
    "replicas off";
    "echo -- overload protection --";
    "admission on";
    "write [home]burst.txt survives under admission control";
    "cat [home]burst.txt";
    "admission status";
    "admission off";
    "echo -- failure and recovery --";
    "crash 0";
    "cat [storage]hello.txt";
    "restart 0";
    "write [storage]tmp/after.txt written after restart";
    "cat [storage]tmp/after.txt";
    "netstat";
    "net topo";
    "net stats";
    "engine stats";
    "metrics";
    "time";
    "echo -- scale telemetry --";
    "telemetry on 4";
    "write [home]tele.txt feeding the rollup tree";
    "cat [home]tele.txt";
    "cat [home]tele.txt";
    "top 8";
    "metrics runtime --top 3";
    "telemetry status";
    "telemetry off";
    "echo -- the flight recorder and the SLO --";
    "record status";
    "events 12";
    "slo";
    "record dump";
    "echo -- seeded fault injection --";
    "fault plan 42 10000";
    "fault status";
    "fault inject 7 5000";
  ]

let run_shell script =
  let t = Scenario.build ~workstations:2 ~file_servers:2 ~tracing:true () in
  (* The interactive shell flies with the recorder on and an SLO engine
     attached, so `events`, `slo` and `record dump` have data; both are
     pure bookkeeping and leave simulated timings untouched. *)
  Vobs.Eventlog.set_enabled (Vobs.Hub.events t.Scenario.obs) true;
  Vobs.Hub.set_slo t.Scenario.obs (Some (Vobs.Slo.create ()));
  let exit_code = ref 0 in
  ignore
    (Scenario.spawn_client t ~ws:0 ~name:"vsh" (fun _self env ->
         let sh =
           {
             env;
             scenario = t;
             failed = 0;
             injector = None;
             replicas = None;
             domains = None;
             admission_on = false;
           }
         in
         List.iter (execute sh) script;
         if sh.failed > 0 then begin
           pr "vsh: %d command(s) failed" sh.failed;
           (* Failures are part of some demos (reads after a crash); the
              exit code only reflects unexpected breakage when a script
              was supplied. *)
           exit_code := 0
         end));
  Scenario.run t;
  pr "vsh: done at %.2f simulated ms" (Vsim.Engine.now t.Scenario.engine);
  !exit_code

(* --- command line --- *)

let main script_file list_commands =
  if list_commands then begin
    List.iter (fun (n, help, _) -> pr "  %-9s %s" n help) commands;
    0
  end
  else
    match script_file with
    | None -> run_shell demo_script
    | Some path ->
        let ic = open_in path in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> close_in ic);
        run_shell (List.rev !lines)

let () =
  let open Cmdliner in
  let script =
    Arg.(
      value
      & opt (some file) None
      & info [ "script" ] ~docv:"FILE" ~doc:"Command script to execute.")
  in
  let list_commands =
    Arg.(value & flag & info [ "list-commands" ] ~doc:"List available commands.")
  in
  let term = Term.(const main $ script $ list_commands) in
  let info =
    Cmd.info "vsh" ~doc:"The V executive over a simulated V-System domain."
  in
  exit (Cmd.eval' (Cmd.v info term))
