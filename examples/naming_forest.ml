(* The V naming forest (Figure 4): each server implements its own name
   tree; a per-user context prefix server names the roots; a directory
   entry on one server may point at a context on another (the curved
   arrow), which the name-mapping procedure follows by forwarding.

   Run with: dune exec examples/naming_forest.exe *)

module Scenario = Vworkload.Scenario
module Runtime = Vruntime.Runtime
module File_server = Vservices.File_server
module Fs = Vservices.Fs
open Vnaming

let ok = function
  | Ok v -> v
  | Error e -> failwith (Fmt.str "operation failed: %a" Vio.Verr.pp e)

(* Render one server's tree, marking cross-server pointers. *)
let render_tree fs_server =
  let fs = File_server.fs fs_server in
  let rec walk indent dir =
    List.iter
      (fun (name, entry) ->
        match entry with
        | Fs.Dir_entry ino ->
            Fmt.pr "%s%s/@." indent name;
            walk (indent ^ "   ") ino
        | Fs.File_entry _ -> Fmt.pr "%s%s@." indent name
        | Fs.Remote_link spec ->
            Fmt.pr "%s%s  ~~curved arrow~~>  %a@." indent name Context.pp_spec spec)
      (Fs.entries fs ~dir)
  in
  Fmt.pr "%s (root context):@." (File_server.name fs_server);
  walk "   " Fs.root_ino

let () =
  let t = Scenario.build ~workstations:1 ~file_servers:3 () in
  ignore
    (Scenario.spawn_client t ~ws:0 ~name:"forester" (fun _self env ->
         (* Populate distinct trees on the three servers. *)
         ok (Runtime.write_file env "[fs0]users/system/naming.mss" (Bytes.of_string "ms"));
         ok (Runtime.create env ~directory:true "[fs1]projects");
         ok (Runtime.write_file env "[fs1]projects/kernel.c" (Bytes.of_string "c"));
         ok (Runtime.write_file env "[fs2]tmp/scratch" (Bytes.of_string "s"));

         (* The curved arrow: fs0:/shared points into fs1's projects. *)
         let fs1_projects = ok (Runtime.resolve env "[fs1]projects") in
         ok (Runtime.link env "[fs0]shared" ~target:fs1_projects);

         (* A name interpreted across two servers: fs0 parses "shared",
            hits the pointer, rewrites the standard fields and forwards;
            fs1 replies directly to us. *)
         let data = ok (Runtime.read_file env "[fs0]shared/kernel.c") in
         Fmt.pr "read [fs0]shared/kernel.c across the arrow: %S@.@."
           (Bytes.to_string data);

         (* Show the forest. *)
         let ws = Scenario.workstation t 0 in
         Fmt.pr "context prefix server of %s:@." ws.Scenario.ws_name;
         List.iter
           (fun (name, target) ->
             Fmt.pr "   [%s] -> %a@." name Prefix_server.pp_target target)
           (Prefix_server.bindings ws.Scenario.ws_prefix);
         Fmt.pr "@.";
         Array.iter render_tree t.Scenario.file_servers;

         (* Forwarding statistics prove the interpretation was
            distributed. *)
         Fmt.pr "@.forwards performed by fs0: %d@."
           (Vsim.Stats.Counter.value
              (File_server.stats (Scenario.file_server t 0)).Csnh.forwards)));
  Scenario.run t
