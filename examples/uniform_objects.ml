(* Uniform access to diverse objects: files, printer jobs, terminals and
   mailboxes are all named, listed and accessed with the same
   operations — the paper's "single list-directory command lists ...
   disk files, virtual terminals, TCP connections, and context
   prefixes" (§6).

   Run with: dune exec examples/uniform_objects.exe *)

module Scenario = Vworkload.Scenario
module Runtime = Vruntime.Runtime
open Vnaming

let ok = function
  | Ok v -> v
  | Error e -> failwith (Fmt.str "operation failed: %a" Vio.Verr.pp e)

(* One routine lists ANY context, whatever the server behind it. *)
let list_context env label name =
  Fmt.pr "@.contents of %s (%s):@." name label;
  match Runtime.list_directory env name with
  | Ok records -> List.iter (fun r -> Fmt.pr "   %a@." Descriptor.pp r) records
  | Error e -> Fmt.pr "   (listing failed: %a)@." Vio.Verr.pp e

let () =
  let t = Scenario.build ~workstations:1 ~file_servers:1 () in
  ignore
    (Scenario.spawn_client t ~ws:0 ~name:"lister" (fun _self env ->
         (* Create one object of each kind, through the same Open/Write
            interface. *)
         ok (Runtime.write_file env "[home]report.tex" (Bytes.of_string "\\documentclass..."));
         ok (Runtime.write_file env "[printer]report.ps" (Bytes.make 1500 'P'));
         ok (Runtime.append_file env "[terminals]console" (Bytes.of_string "login: mann"));
         ok (Runtime.append_file env "[mail]cheriton@su-score.ARPA"
               (Bytes.of_string "From: mann\nThe listing demo works."));

         (* And list every kind of context with the same routine. *)
         list_context env "program manager" "[programs]";
         list_context env "storage server" "[home]";
         list_context env "printer spooler" "[printer]";
         list_context env "virtual terminal server" "[terminals]";
         list_context env "mail server" "[mail]";

         (* Query is equally uniform: the type tag tells the client what
            it found (§5.5). *)
         Fmt.pr "@.uniform Query on four different servers:@.";
         List.iter
           (fun name ->
             let d = ok (Runtime.query env name) in
             Fmt.pr "   %-32s -> %s@." name
               (Descriptor.obj_type_to_string d.Descriptor.obj_type))
           [
             "[home]report.tex"; "[printer]report.ps"; "[terminals]console";
             "[mail]cheriton@su-score.ARPA";
           ]));
  Scenario.run t;
  Fmt.pr "@.printer state after the run: %s@."
    (match
       Vservices.Printer_server.job_state t.Scenario.printer "report.ps"
     with
    | Some s -> Vservices.Printer_server.state_to_string s
    | None -> "no job")
