(* A diskless workstation loading programs from a network file server
   via MoveTo (§3.1): all file access and program loading run over IPC,
   and the 64 KB program load lands at the paper's ~338 ms on 3 Mbit
   Ethernet (host-limited, not wire-limited).

   Run with: dune exec examples/diskless_workstation.exe *)

module Scenario = Vworkload.Scenario
module Runtime = Vruntime.Runtime
module Program_manager = Vservices.Program_manager
module File_server = Vservices.File_server
open Vnaming

let ok = function
  | Ok v -> v
  | Error e -> failwith (Fmt.str "operation failed: %a" Vio.Verr.pp e)

let () =
  let t = Scenario.build ~workstations:1 ~file_servers:1 () in
  let fs0 = Scenario.file_server t 0 in
  (* Install program images in the server's /bin ([bin] context). *)
  List.iter
    (fun (name, kb) ->
      match
        Program_manager.install_image fs0 ~name
          ~image:(Bytes.init (kb * 1024) (fun i -> Char.chr (i mod 256)))
      with
      | Ok () -> ()
      | Error code -> failwith (Reply.to_string code))
    [ ("editor", 64); ("compiler", 128); ("shell", 16) ];

  ignore
    (Scenario.spawn_client t ~ws:0 ~name:"loader" (fun self env ->
         let eng = Runtime.engine env in
         Fmt.pr "program loading from %s over the V IPC (3 Mbit Ethernet):@."
           (File_server.name fs0);
         List.iter
           (fun (name, kb) ->
             let t0 = Vsim.Engine.now eng in
             let image =
               ok
                 (Program_manager.load self ~storage:(File_server.pid fs0)
                    ~context:Context.Well_known.programs ~name ~size:(kb * 1024))
             in
             let elapsed = Vsim.Engine.now eng -. t0 in
             Fmt.pr "   %-10s %4d KB loaded in %7.1f ms (%.0f KB/s)@." name kb
               elapsed
               (float_of_int (Bytes.length image) /. elapsed))
           [ ("shell", 16); ("editor", 64); ("compiler", 128) ];
         Fmt.pr "@.(paper: 64 KB in 338 ms, within 13%% of the host's max packet rate)@.";

         (* The same workstation also reads files block by block. *)
         ok (Runtime.write_file env "[home]data.log" (Bytes.make 4096 'd'));
         let t0 = Vsim.Engine.now eng in
         ignore (ok (Runtime.read_file env "[home]data.log"));
         Fmt.pr "@.4 KB sequential file read: %.1f ms@." (Vsim.Engine.now eng -. t0)));
  Scenario.run t
