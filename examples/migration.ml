(* Migrating a user between storage servers: copy the home tree with the
   recursive walker, then rebind the [home] prefix — every program keeps
   using the same names, which is the point of symbolic per-user
   bindings (§5.8). Includes the crash-durability story: a server
   restarted over its surviving disk keeps serving the same files under
   a new pid.

   Run with: dune exec examples/migration.exe *)

module K = Vkernel.Kernel
module Scenario = Vworkload.Scenario
module Runtime = Vruntime.Runtime
module Walker = Vruntime.Walker
module File_server = Vservices.File_server
open Vnaming

let ok = function
  | Ok v -> v
  | Error e -> failwith (Fmt.str "operation failed: %a" Vio.Verr.pp e)

let () =
  let t = Scenario.build ~workstations:1 ~file_servers:2 () in
  ignore
    (Scenario.spawn_client t ~ws:0 ~name:"mover" (fun _self env ->
         (* A working home on fs0. *)
         let fs0_home =
           File_server.spec (Scenario.file_server t 0)
             ~context:Context.Well_known.home
         in
         ok (Runtime.delete_prefix env "home");
         ok (Runtime.add_prefix env "home" (`Static fs0_home));
         ok (Runtime.create env ~directory:true "[home]thesis");
         ok (Runtime.write_file env "[home]thesis/ch1.tex" (Bytes.of_string "Chapter 1"));
         ok (Runtime.write_file env "[home]thesis/ch2.tex" (Bytes.of_string "Chapter 2"));
         ok (Runtime.write_file env "[home]notes.txt" (Bytes.of_string "remember the demo"));
         Fmt.pr "before migration, [home] lives on fs0:@.";
         Walker.pp_tree env ~root:"[home]" Fmt.stdout ();

         (* Copy the tree to fs1 and swing the prefix. *)
         let copied = ok (Walker.copy_tree env ~src:"[home]" ~dst:"[fs1]users/system") in
         Fmt.pr "@.copied %d files to fs1@." copied;
         let fs1_home =
           File_server.spec (Scenario.file_server t 1)
             ~context:Context.Well_known.home
         in
         ok (Runtime.delete_prefix env "home");
         ok (Runtime.add_prefix env "home" (`Static fs1_home));
         Fmt.pr "@.[home] rebound to fs1; the same names keep working:@.";
         Fmt.pr "  [home]thesis/ch1.tex -> %S@."
           (Bytes.to_string (ok (Runtime.read_file env "[home]thesis/ch1.tex")));

         (* The old server can now crash; our names never notice. *)
         K.crash_host
           (Option.get (K.host_of_addr t.Scenario.domain (Scenario.fs_addr 0)));
         Fmt.pr "@.fs0 crashed; [home] is unaffected: %S@."
           (Bytes.to_string (ok (Runtime.read_file env "[home]notes.txt")));

         (* And fs0's disk survived: restart a fresh server over it. *)
         let fs0_host =
           Option.get (K.host_of_addr t.Scenario.domain (Scenario.fs_addr 0))
         in
         K.restart_host fs0_host;
         let fs0' = File_server.restart_from (Scenario.file_server t 0) fs0_host () in
         ok (Runtime.delete_prefix env "fs0");
         ok
           (Runtime.add_prefix env "fs0"
              (`Static (File_server.spec fs0' ~context:Context.Well_known.default)));
         Fmt.pr "@.fs0 restarted over its surviving disk (new pid %a):@."
           Vkernel.Pid.pp (File_server.pid fs0');
         Fmt.pr "  [fs0]users/system/notes.txt -> %S@."
           (Bytes.to_string (ok (Runtime.read_file env "[fs0]users/system/notes.txt")))));
  Scenario.run t
