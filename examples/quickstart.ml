(* Quickstart: boot a standard V installation, then use the run-time
   library the way a V program would — prefixes, the current context,
   uniform query, and context directories.

   Run with: dune exec examples/quickstart.exe *)

module Scenario = Vworkload.Scenario
module Runtime = Vruntime.Runtime
open Vnaming

let ok = function
  | Ok v -> v
  | Error e -> failwith (Fmt.str "operation failed: %a" Vio.Verr.pp e)

let () =
  (* Three diskless workstations, two file servers, printer, mail. *)
  let t = Scenario.build ~workstations:3 ~file_servers:2 () in
  ignore
    (Scenario.spawn_client t ~ws:0 ~name:"quickstart" (fun _self env ->
         Fmt.pr "== Writing and reading through context prefixes ==@.";
         ok (Runtime.write_file env "[home]hello.txt" (Bytes.of_string "Hello, V-System!"));
         let back = ok (Runtime.read_file env "[home]hello.txt") in
         Fmt.pr "read back from [home]hello.txt: %S@." (Bytes.to_string back);

         Fmt.pr "@.== The same name in different contexts (§5.2) ==@.";
         ok (Runtime.write_file env "[fs0]tmp/naming.mss" (Bytes.of_string "draft on fs0"));
         ok (Runtime.write_file env "[fs1]tmp/naming.mss" (Bytes.of_string "draft on fs1"));
         Fmt.pr "[fs0]tmp/naming.mss -> %S@."
           (Bytes.to_string (ok (Runtime.read_file env "[fs0]tmp/naming.mss")));
         Fmt.pr "[fs1]tmp/naming.mss -> %S@."
           (Bytes.to_string (ok (Runtime.read_file env "[fs1]tmp/naming.mss")));

         Fmt.pr "@.== Uniform object descriptions (§5.5) ==@.";
         let d = ok (Runtime.query env "[home]hello.txt") in
         Fmt.pr "%a@." Descriptor.pp d;

         Fmt.pr "@.== Current context (§6) ==@.";
         ignore (ok (Runtime.change_context env "[fs0]users/system"));
         Fmt.pr "current context is now %s@." (ok (Runtime.current_context_name env));
         ok (Runtime.write_file env "relative.txt" (Bytes.of_string "resolved relatively"));
         Fmt.pr "relative open: %S@."
           (Bytes.to_string (ok (Runtime.read_file env "relative.txt")));

         Fmt.pr "@.== Context directories (§5.6) ==@.";
         let records = ok (Runtime.list_directory env "[home]") in
         List.iter (fun r -> Fmt.pr "  %a@." Descriptor.pp r) records;

         Fmt.pr "@.== The per-user prefix table ==@.";
         let ws = Scenario.workstation t 0 in
         List.iter
           (fun (name, target) ->
             Fmt.pr "  [%s] -> %a@." name Prefix_server.pp_target target)
           (Prefix_server.bindings ws.Scenario.ws_prefix)));
  Scenario.run t;
  Fmt.pr "@.simulated time at quiescence: %.2f ms@." (Vsim.Engine.now t.Scenario.engine)
