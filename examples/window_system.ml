(* The multiple-window workstation: windows are named objects on the
   virtual graphics terminal server, created, written, listed, moved and
   resized entirely through the uniform naming operations — then the
   server paints the screen.

   Run with: dune exec examples/window_system.exe *)

module Scenario = Vworkload.Scenario
module Runtime = Vruntime.Runtime
module Vgts = Vservices.Vgts
open Vnaming

let ok = function
  | Ok v -> v
  | Error e -> failwith (Fmt.str "operation failed: %a" Vio.Verr.pp e)

let () =
  let t = Scenario.build ~workstations:1 ~file_servers:1 () in
  ignore
    (Scenario.spawn_client t ~ws:0 ~name:"session" (fun _self env ->
         (* An executive, an editor and a clock, like a V screen. *)
         ok (Runtime.append_file env "[windows]executive" (Bytes.of_string "% ls [home]"));
         ok (Runtime.append_file env "[windows]executive" (Bytes.of_string "% run editor"));
         ok (Runtime.append_file env "[windows]editor"
               (Bytes.of_string "Uniform Access to Distributed"));
         ok (Runtime.append_file env "[windows]editor"
               (Bytes.of_string "Name Interpretation in V"));
         ok (Runtime.append_file env "[windows]clock" (Bytes.of_string "16:25"));

         (* Window management through the uniform Modify operation. *)
         let d = ok (Runtime.query env "[windows]clock") in
         ok
           (Runtime.modify env "[windows]clock"
              {
                d with
                Descriptor.attrs = [ ("x", "36"); ("y", "0"); ("w", "12"); ("h", "3") ];
              });
         let d = ok (Runtime.query env "[windows]editor") in
         ok
           (Runtime.modify env "[windows]editor"
              {
                d with
                Descriptor.attrs = [ ("x", "14"); ("y", "4"); ("w", "34"); ("h", "6") ];
              });

         Fmt.pr "windows on this workstation (one list-directory call):@.";
         List.iter
           (fun r -> Fmt.pr "   %a@." Descriptor.pp r)
           (ok (Runtime.list_directory env "[windows]"))));
  Scenario.run t;
  let ws = Scenario.workstation t 0 in
  Fmt.pr "@.the screen (windows overlap in z-order; '.' is desktop):@.@.";
  Fmt.pr "%s@." (Vgts.render ws.Scenario.ws_vgts ~width:50 ~height:12)
