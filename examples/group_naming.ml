(* Group-based name resolution (§7, future work made real): instead of
   the broadcast GetPid, a context can be implemented transparently by a
   GROUP of servers — a multicast Send reaches every member, and the
   first reply wins.

   Run with: dune exec examples/group_naming.exe *)

module K = Vkernel.Kernel
module Service = Vkernel.Service
module Scenario = Vworkload.Scenario
module Runtime = Vruntime.Runtime
module File_server = Vservices.File_server
module E = Vnet.Ethernet
open Vnaming

let () =
  let t = Scenario.build ~workstations:1 ~file_servers:3 () in
  (* All storage servers join one process group. *)
  let group = K.create_group t.Scenario.domain in
  Array.iteri
    (fun i fs ->
      let host =
        Option.get (K.host_of_addr t.Scenario.domain (Scenario.fs_addr i))
      in
      K.join_group host ~group (File_server.pid fs))
    t.Scenario.file_servers;

  ignore
    (Scenario.spawn_client t ~ws:0 ~name:"group-client" (fun self env ->
         let eng = Runtime.engine env in
         let frames () = (E.counters t.Scenario.net).E.frames_sent in

         (* 1. Classic service binding: broadcast GetPid. *)
         let f0 = frames () in
         let t0 = Vsim.Engine.now eng in
         let pid = Option.get (K.get_pid self ~service:Service.Id.storage Service.Both) in
         Fmt.pr "broadcast GetPid: resolved to %a in %.2f ms, %d frames@."
           Vkernel.Pid.pp pid
           (Vsim.Engine.now eng -. t0)
           (frames () - f0);

         (* 2. Group-based resolution: multicast a MapContext to the
            storage group; the first member's reply binds the name. *)
         let f0 = frames () in
         let t0 = Vsim.Engine.now eng in
         let msg =
           Vmsg.request ~name:(Csname.make_req "") Vmsg.Op.map_context
         in
         (match K.send_group self ~group msg with
         | Ok (reply, replier) ->
             let target =
               match reply.Vmsg.payload with
               | Vmsg.P_context_spec spec -> Fmt.str "%a" Context.pp_spec spec
               | _ -> "?"
             in
             Fmt.pr "group MapContext:  first reply from %a -> %s in %.2f ms, %d frames@."
               Vkernel.Pid.pp replier target
               (Vsim.Engine.now eng -. t0)
               (frames () - f0)
         | Error e -> Fmt.pr "group send failed: %a@." K.pp_error e);

         (* 3. A prefix bound to the GROUP: the context is implemented
            transparently by all three servers (§7's closing idea). *)
         Array.iter
           (fun fs ->
             let fsys = File_server.fs fs in
             match
               Vservices.Fs.create_file fsys ~dir:Vservices.Fs.root_ino
                 ~owner:"repl" "motd.txt"
             with
             | Ok ino ->
                 ignore
                   (Vservices.Fs.write_file fsys ~ino
                      (Bytes.of_string "replicated message of the day"))
             | Error _ -> ())
           t.Scenario.file_servers;
         let ws = Scenario.workstation t 0 in
         (match
            Prefix_server.add_binding ws.Scenario.ws_prefix "anyfs"
              (Prefix_server.Replicated
                 { group; context = Context.Well_known.default })
          with
         | Ok () -> ()
         | Error _ -> failwith "bind anyfs");
         (match Runtime.read_file env "[anyfs]motd.txt" with
         | Ok data ->
             Fmt.pr "@.open via the group-bound prefix [anyfs]: %S@."
               (Bytes.to_string data)
         | Error e -> Fmt.pr "group-bound open failed: %a@." Vio.Verr.pp e);

         (* 4. The group survives one member's death transparently. *)
         K.crash_host
           (Option.get (K.host_of_addr t.Scenario.domain (Scenario.fs_addr 0)));
         (match K.send_group self ~group msg with
         | Ok (_, replier) ->
             Fmt.pr "after crashing fs0: group still answers, via %a@."
               Vkernel.Pid.pp replier
         | Error e -> Fmt.pr "group send failed after crash: %a@." K.pp_error e);
         (match Runtime.read_file env "[anyfs]motd.txt" with
         | Ok _ -> Fmt.pr "[anyfs] still resolves after the crash@."
         | Error e -> Fmt.pr "[anyfs] failed after crash: %a@." Vio.Verr.pp e)));
  Scenario.run t
