(* Protocol conformance: run the CSNH battery against every server in
   the installation — files, prefixes, terminals, printer jobs,
   mailboxes and TCP connections all present the same client interface,
   which is the paper's uniformity claim made mechanical.

   Run with: dune exec examples/protocol_conformance.exe *)

module Scenario = Vworkload.Scenario
module Conformance = Vworkload.Conformance
module File_server = Vservices.File_server
module Prefix_server = Vnaming.Prefix_server

let () =
  let t = Scenario.build ~workstations:1 ~file_servers:1 () in
  let ws = Scenario.workstation t 0 in
  let servers =
    [
      ("file server", File_server.pid (Scenario.file_server t 0));
      ("prefix server", Prefix_server.pid ws.Scenario.ws_prefix);
      ("terminal server", Vservices.Terminal_server.pid ws.Scenario.ws_terminal);
      ("printer server", Vservices.Printer_server.pid t.Scenario.printer);
      ("mail server", Vservices.Mail_server.pid t.Scenario.mail);
      ("internet server", Vservices.Internet_server.pid t.Scenario.internet);
    ]
  in
  let all_passed = ref true in
  ignore
    (Scenario.spawn_client t ~ws:0 ~name:"conformance" (fun self _env ->
         List.iter
           (fun (label, server) ->
             let report = Conformance.check self ~label server in
             if not (Conformance.passed report) then all_passed := false;
             Fmt.pr "%a@." Conformance.pp_report report)
           servers));
  Scenario.run t;
  Fmt.pr "%s@."
    (if !all_passed then
       "every server speaks the same name-handling protocol: uniform access"
     else "CONFORMANCE FAILURES FOUND");
  exit (if !all_passed then 0 else 1)
