(* Service naming (§4.2): processes register as providing a numbered
   service within a scope, and clients bind service to server pid at
   time of use via GetPid. *)

type scope = Local | Remote | Both

let pp_scope ppf = function
  | Local -> Fmt.string ppf "local"
  | Remote -> Fmt.string ppf "remote"
  | Both -> Fmt.string ppf "both"

(* Does a registration with scope [registered] answer a lookup with
   scope [wanted] arriving from the given origin? *)
let visible ~registered ~origin =
  match (registered, origin) with
  | (Local | Both), `Local_query -> true
  | Remote, `Local_query -> false
  | (Remote | Both), `Remote_query -> true
  | Local, `Remote_query -> false

(* Well-known service identifiers used by the reproduction's standard
   installation. Nothing in the kernel depends on these values; they are
   the moral equivalent of the constants in V's <Vnaming.h>. *)
module Id = struct
  let storage = 1
  let context_prefix = 2
  let time = 3
  let printer = 4
  let terminal = 5
  let mail = 6
  let exception_handler = 7
  let program_manager = 8
  let name_server = 9 (* centralized baseline, §2.1 *)
  let internet = 10
  let vgts = 11
  let replica_storage = 12 (* replicated directory service, §7 *)

  let to_string = function
    | 1 -> "storage"
    | 2 -> "context-prefix"
    | 3 -> "time"
    | 4 -> "printer"
    | 5 -> "terminal"
    | 6 -> "mail"
    | 7 -> "exception"
    | 8 -> "program-manager"
    | 9 -> "name-server"
    | 10 -> "internet"
    | 11 -> "vgts"
    | 12 -> "replica-storage"
    | n -> Fmt.str "service%d" n
end
