(** Deterministic replica selection for service groups (§7): when a
    logical service is implemented by a process group, GetPid returns
    one member chosen here. Selection is a pure function of the policy,
    a round-robin cursor and the requester's address, so a seeded run
    replays the identical choices. *)

type policy =
  | Round_robin  (** cycle through the live members in address order *)
  | Nearest_host
      (** the live member whose network address is closest to the
          requester's *)

val pp_policy : Format.formatter -> policy -> unit

(** Accepts "rr"/"round-robin" and "nearest"/"nearest-host". *)
val policy_of_string : string -> policy option

(** [pick policy ~cursor ~origin members] chooses among [members] —
    (pid, address) pairs sorted by address. [None] iff the list is
    empty. *)
val pick :
  policy -> cursor:int -> origin:int -> (Pid.t * int) list -> Pid.t option
