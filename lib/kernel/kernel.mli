(** The distributed V kernel (paper §3–§4).

    A [domain] is a set of logical hosts on one simulated Ethernet over
    which the IPC primitives are transparent — one V-System
    installation. Every V process is a simulated fiber; [send] blocks
    until the reply arrives (the message transaction of Figure 1).

    The kernel is parametric in the message type ['m]; it charges
    wire/CPU costs through a {!cost_model} but never inspects message
    contents, mirroring the real kernel's independence from the message
    standards built above it. *)

type error =
  | Timeout  (** destination unreachable (crash, partition) *)
  | Nonexistent_process  (** the pid names no live process *)
  | Not_awaiting_reply  (** Reply/Forward/Move for a process not being served *)
  | Bad_buffer  (** Move outside the buffer the sender exposed *)
  | No_reply  (** group Send that no member answered *)

val pp_error : Format.formatter -> error -> unit

exception Ipc_error of error

(** Raised by [spawn] on a crashed host. *)
exception Host_is_down of string

type 'm cost_model = {
  payload_bytes : 'm -> int;
      (** bytes carried on the wire beyond the 32-byte message proper *)
  segment_bytes : 'm -> int;
      (** portion that must be copied into the receiver's space (e.g. an
          appended CSname); charged segment-copy CPU on remote legs *)
}

type 'm domain
type 'm host

(** A process's own handle; required by every blocking primitive and
    valid only inside the fiber [spawn] started. *)
type 'm self

(** {1 Domain and hosts} *)

type 'm packet

(** [hosts_hint] presizes the domain-wide host tables for large soaks
    (per-host tables are unaffected); purely a capacity hint, never
    behaviour. *)
val create_domain :
  ?seed:int ->
  ?hosts_hint:int ->
  cost:'m cost_model ->
  Vsim.Engine.t ->
  'm packet Vnet.Ethernet.t ->
  'm domain

(** Attach a new logical host at a network address and start its kernel. *)
val boot_host : 'm domain -> name:string -> Vnet.Ethernet.addr -> 'm host

val host_of_addr : 'm domain -> Vnet.Ethernet.addr -> 'm host option
val hosts : 'm domain -> 'm host list
val host_addr : 'm host -> Vnet.Ethernet.addr
val host_logical : 'm host -> int
val host_name : 'm host -> string
val host_is_up : 'm host -> bool
val domain_of_host : 'm host -> 'm domain
val engine_of_domain : 'm domain -> Vsim.Engine.t
val net_of_domain : 'm domain -> 'm packet Vnet.Ethernet.t
val set_trace : 'm domain -> Vsim.Trace.t -> unit

(** Attach an observability hub to the domain: kernel primitives count
    per-host operations against it, and the naming layers above use it
    for spans. Bookkeeping only — never advances simulated time. *)
val set_obs : 'm domain -> Vobs.Hub.t -> unit

val obs : 'm domain -> Vobs.Hub.t option

(** Per-transaction IPC counters (send/receive/reply) and per-frame
    wire counters accumulate on the host and port records; this moves
    their deltas since the previous flush into the attached hub's
    registry (host rollup groups apply as usual). Call at scrape
    points — before exporting, dumping or rendering metrics — never
    per operation. No-op without a hub; never perturbs simulation. *)
val flush_metrics : 'm domain -> unit

(** Install the accessor extracting the obs trace id riding inside a
    message (0 = untraced), used to stamp flight-recorder events. The
    kernel never inspects messages itself; the deployment, which knows
    the message type, provides the accessor. Default: everything
    untraced. *)
val set_trace_of : 'm domain -> ('m -> int) -> unit

(** Completed + in-flight Send/group-Send transactions, for the
    messages-per-operation benchmarks. *)
val ipc_transaction_count : 'm domain -> int

(** {1 The telemetry pump}

    Scale telemetry rides the IPC hot path: with a hub attached and the
    pump armed, the first kernel send at or after each [interval_ms] of
    simulated time snapshots fleet counters, the fabric's interior
    links and every admission-protected server queue into the hub's
    time-series store ({!Vobs.Hub.timeseries}). The pump only records —
    it schedules nothing and advances nothing, so the engine executes
    an identical event sequence with telemetry on or off. *)

(** [enable_telemetry d ~interval_ms] arms the pump and registers every
    booted host's rollup group (later boots register themselves).
    @raise Invalid_argument on a non-positive interval. *)
val enable_telemetry : 'm domain -> interval_ms:float -> unit

val disable_telemetry : 'm domain -> unit
val telemetry_enabled : 'm domain -> bool

(** The {!Vobs.Rollup.group_of} function for this domain: kernel host
    names group by edge switch (switched fabric) or 1024-host address
    shard (shared medium); net-layer labels ("host3", "edge0->spine")
    resolve through {!Vnet.Topology.rollup_scope}; anything else is
    fleet-only ([None]). *)
val telemetry_group_of : 'm domain -> string -> string option

(** Kill a host: processes die, tables clear, the wire stops delivering.
    Pids minted there become permanently invalid. *)
val crash_host : 'm host -> unit

(** Bring a crashed host back with a fresh logical-host id (old pids
    stay dead). Servers must re-register their services. *)
val restart_host : 'm host -> unit

(** {1 Processes} *)

(** [spawn host ~name body] creates a process and runs [body] as a
    fiber. The process ends when [body] returns or raises. *)
val spawn : 'm host -> ?name:string -> ('m self -> unit) -> Pid.t

val self_pid : 'm self -> Pid.t

(** The name the process was spawned with. *)
val self_name : 'm self -> string

val self_host_name : 'm self -> string
val host_of_self : 'm self -> 'm host
val domain_of_self : 'm self -> 'm domain
val alive : 'm domain -> Pid.t -> bool
val find_process : 'm domain -> Pid.t -> 'm self option

(** Kill one process (its fiber unwinds with [Vsim.Proc.Killed] at its
    next suspension point). [false] if the pid names no live process. *)
val destroy_process : 'm domain -> Pid.t -> bool

(** {1 Message transactions (Figure 1)} *)

(** [send self target msg] blocks until the reply, returning it together
    with the replier's pid — which, after forwarding, may differ from
    [target]; this is how a client learns which server actually
    implements an object it opened. [buffer] is memory exposed to the
    receiver's MoveTo/MoveFrom for the transaction. *)
val send : 'm self -> ?buffer:bytes -> Pid.t -> 'm -> ('m * Pid.t, error) result

(** Block until any message arrives; returns (message, sender). *)
val receive : 'm self -> 'm * Pid.t

(** Block until a message whose sender satisfies [from] arrives; other
    messages stay queued. *)
val receive_where : 'm self -> from:(Pid.t -> bool) -> 'm * Pid.t

(** Complete the transaction of blocked sender [to_]. *)
val reply : 'm self -> to_:Pid.t -> 'm -> (unit, error) result

(** Pass the transaction on: [to_] sees [msg] as sent by [from_] and
    replies directly to [from_] — the mechanism multi-server name
    interpretation rides on (§5.4). *)
val forward : 'm self -> from_:Pid.t -> to_:Pid.t -> 'm -> (unit, error) result

(** {1 Admission control (overload protection)}

    Off by default: a process without a hook pays one extra word test
    on the request path and behaves exactly as before. The kernel owns
    the {e mechanism} — two queues per protected process (interactive
    ahead of bulk), a counter pair, and a kernel-level rejection reply
    sent on the server's behalf without scheduling its fiber. The
    {e policy} (queue caps, deadline-aware drop, lane classification,
    retry-after hints) lives above the kernel in [Vservices.Admission],
    where the message type is understood.

    Group (multicast) deliveries bypass admission deliberately: a
    fan-out member that silently shed a group write would diverge from
    its peers. *)

(** What the admission hook decided about an incoming request. *)
type 'm admission_verdict =
  | Admit  (** enqueue on the interactive lane *)
  | Admit_bulk  (** enqueue on the bulk lane, served after interactive *)
  | Shed of 'm
      (** reject now: the kernel replies with this message on the
          server's behalf, without scheduling the server's fiber *)

(** [set_admission d pid decide] installs (or replaces) the admission
    hook on [pid]. [decide ~now ~depth msg] sees the simulated time and
    the total queued depth (both lanes) {e before} [msg] is enqueued.
    Replacing a live hook keeps the bulk queue and counters. No-op for
    unknown pids. *)
val set_admission :
  'm domain ->
  Pid.t ->
  (now:float -> depth:int -> 'm -> 'm admission_verdict) ->
  unit

(** Remove the hook; queued bulk work drains back into the main queue. *)
val clear_admission : 'm domain -> Pid.t -> unit

(** Undelivered requests queued at [pid] (both lanes); 0 for unknown
    pids. *)
val queue_depth : 'm domain -> Pid.t -> int

(** [(admitted, shed)] since the hook was installed; [(0, 0)] without
    one. *)
val admission_counters : 'm domain -> Pid.t -> int * int

(** {1 Bulk transfer} *)

(** Read [len] bytes from the buffer the blocked [sender] exposed. *)
val move_from : 'm self -> sender:Pid.t -> len:int -> (bytes, error) result

(** Write [data] into the blocked [sender]'s exposed buffer. *)
val move_to : 'm self -> sender:Pid.t -> bytes -> (unit, error) result

(** {1 Service naming (§4.2)} *)

(** Register [pid] as providing [service] in the given scope on this
    host. A later registration with the same scope replaces the old;
    Local and Remote registrations coexist. *)
val set_pid : 'm host -> service:int -> Pid.t -> Service.scope -> unit

(** Remove [pid]'s registrations for [service] on this host. *)
val clear_pid : 'm host -> service:int -> Pid.t -> unit

(** Look up a service: the local table first, then (unless scope is
    [Local]) a broadcast query answered by the first kernel with a
    Remote/Both registration. With the GetPid cache enabled, a prior
    broadcast result for the service is returned instead of
    re-broadcasting — deliberately without a liveness check, since the
    cache is validated on use (see {!drop_cached_pid}). *)
val get_pid : 'm self -> service:int -> Service.scope -> Pid.t option

(** Enable or disable the per-host cache of broadcast GetPid results
    (default off). Disabling flushes every host's cache, reverting
    behaviour exactly to the uncached kernel. *)
val set_getpid_cache : 'm domain -> bool -> unit

val getpid_cache_enabled : 'm domain -> bool

(** On-use invalidation of the GetPid cache: call when a send or
    forward to a cached pid failed. The next [get_pid] for the service
    broadcasts afresh. Counts (host, "kernel", "get-pid-stale") when an
    entry was dropped. *)
val drop_cached_pid : 'm self -> service:int -> unit

(** {1 Process groups and multicast Send (§7)} *)

val create_group : 'm domain -> int
val join_group : 'm host -> group:int -> Pid.t -> unit
val leave_group : 'm host -> group:int -> Pid.t -> unit

(** Multicast to the group; blocks for the first reply, which is
    returned with the replier's pid. Later replies are discarded. *)
val send_group : 'm self -> group:int -> 'm -> ('m * Pid.t, error) result

(** Forward the transaction of blocked sender [from_] to every member of
    a group; the first member to reply completes it (§7: a context
    implemented transparently by a group of servers). *)
val forward_group :
  'm self -> from_:Pid.t -> group:int -> 'm -> (unit, error) result

(** {1 Replicated services (§7: a service implemented by a group)}

    A logical service id may be bound, domain-wide, to a process group.
    While the binding is in place, [get_pid] for that service returns
    one live reachable member, chosen by a deterministic balancer
    ({!Balancer.policy}) — ahead of the GetPid cache and the broadcast
    path, but after the local service table. The round-robin cursor is
    seeded from the domain PRNG once at registration, so a run that
    never registers a group draws nothing and replays bit-identically. *)

val register_service_group :
  'm domain -> service:int -> group:int -> Balancer.policy -> unit

(** Remove the service→group binding; [get_pid] reverts to the ordinary
    cache/broadcast path. *)
val clear_service_group : 'm domain -> service:int -> unit

val service_group : 'm domain -> service:int -> int option
val service_group_policy : 'm domain -> service:int -> Balancer.policy option

(** All (service, group) bindings, sorted. *)
val registered_service_groups : 'm domain -> (int * int) list

(** The live members of [service]'s group visible from [requester]: on
    an up host, not partitioned away from it, process alive — sorted by
    (address, local pid) so every host enumerates them identically.
    Empty when the service has no group. *)
val service_group_members :
  'm domain -> requester:Vnet.Ethernet.addr -> service:int -> Pid.t list

(** Append a PENDING write to the service's ordered write-all log,
    keyed by the coordinator's (origin, seq), before the fan-out's
    first send — so a concurrent catch-up can see (and wait out) the
    in-flight write. Resolve it with {!commit_group_write} once some
    member may have applied it, or {!abort_group_write} when the
    fan-out failed definitively everywhere. The log keeps at most a
    bounded number of committed entries; the oldest are trimmed with
    their per-origin high-water mark retained ({!group_write_trimmed}).
    No-ops when the service has no group. *)
val log_group_write :
  'm domain -> service:int -> origin:int -> seq:int -> 'm -> unit

(** Mark a pending entry committed: some member answered the write, or
    a send failed ambiguously (the member may have applied it with the
    reply frame lost), so replay must eventually deliver it to every
    member. *)
val commit_group_write :
  'm domain -> service:int -> origin:int -> seq:int -> unit

(** Remove a pending entry whose fan-out failed definitively on every
    member: no replica saw it, so nothing may ever replay it (the
    coordinator is then free to reuse the sequence number). *)
val abort_group_write :
  'm domain -> service:int -> origin:int -> seq:int -> unit

(** The committed entries, oldest first. *)
val group_write_log : 'm domain -> service:int -> (int * int * 'm) list

(** Is any logged write still pending (fan-out in flight)? A catch-up
    must not declare itself complete while this holds. *)
val group_write_pending : 'm domain -> service:int -> bool

(** Per-origin highest sequence number trimmed out of the capped log,
    sorted by origin. A member whose durable applied mark for an origin
    is below that origin's trim mark cannot catch up by replay. *)
val group_write_trimmed : 'm domain -> service:int -> (int * int) list
