(* Deterministic replica selection for service groups (§7).

   When a logical service is implemented by a process group, GetPid
   must still return a single pid. The choice is made here, as a pure
   function of the policy, a round-robin cursor and the requester's
   address — no clock, no per-call PRNG draw — so a seeded run replays
   the identical sequence of choices. The cursor itself is seeded once
   at registration time (see [Kernel.register_service_group]), which is
   the only randomness replica selection consumes. *)

type policy =
  | Round_robin  (** cycle through the live members in address order *)
  | Nearest_host
      (** the live member whose network address is closest to the
          requester's — a stand-in for topology-aware selection *)

let pp_policy ppf = function
  | Round_robin -> Fmt.string ppf "round-robin"
  | Nearest_host -> Fmt.string ppf "nearest-host"

let policy_of_string = function
  | "rr" | "round-robin" -> Some Round_robin
  | "nearest" | "nearest-host" -> Some Nearest_host
  | _ -> None

(* [pick policy ~cursor ~origin members] chooses one of [members] —
   (pid, address) pairs, expected sorted by address for determinism.
   [cursor] only matters for [Round_robin]; [origin] only for
   [Nearest_host]. *)
let pick policy ~cursor ~origin members =
  match members with
  | [] -> None
  | _ -> (
      match policy with
      | Round_robin ->
          let n = List.length members in
          let i = ((cursor mod n) + n) mod n in
          Some (fst (List.nth members i))
      | Nearest_host ->
          let distance addr = abs (addr - origin) in
          let best =
            List.fold_left
              (fun acc (pid, addr) ->
                match acc with
                | None -> Some (pid, addr)
                | Some (_, best_addr) ->
                    if distance addr < distance best_addr then Some (pid, addr)
                    else acc)
              None members
          in
          Option.map fst best)
