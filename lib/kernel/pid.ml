(* V process identifiers: values structured as (logical host, local
   process identifier) subfields — Figure 2 of the paper. The structure
   lets a kernel locate a process from its pid alone and lets each
   logical host allocate pids independently.

   The paper packs both fields into 16 bits of a 32-bit pid. The
   simulator keeps the paper's packing formula (host << 16 | local) but
   widens the host field to 24 bits so the nightly 100k-host soak fits:
   every pid a 16-bit installation can mint keeps its exact numeric
   value, only the ceiling moves. *)

type t = int

let logical_host_bits = 24
let local_pid_bits = 16
let max_logical_host = (1 lsl logical_host_bits) - 1
let max_local_pid = (1 lsl local_pid_bits) - 1

exception Invalid_field of string

let make ~logical_host ~local_pid =
  if logical_host < 1 || logical_host > max_logical_host then
    raise (Invalid_field "logical_host");
  if local_pid < 1 || local_pid > max_local_pid then
    raise (Invalid_field "local_pid");
  (logical_host lsl local_pid_bits) lor local_pid

let logical_host t = (t lsr local_pid_bits) land max_logical_host

let local_pid t = t land max_local_pid

let to_int t = t

let of_int i =
  if i < 0 || i > ((max_logical_host lsl local_pid_bits) lor max_local_pid) then
    raise (Invalid_field "pid");
  if logical_host i = 0 || local_pid i = 0 then raise (Invalid_field "pid");
  i

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash

let pp ppf t = Fmt.pf ppf "%d.%d" (logical_host t) (local_pid t)

let to_string t = Fmt.str "%a" pp t
