(** V process identifiers.

    A pid packs two subfields, (logical host, local process identifier)
    — Figure 2 of the paper. The paper's pids are 32-bit with 16-bit
    fields; the simulator keeps the same packing formula but widens the
    host field to 24 bits so 100k-host soaks fit (every 16-bit-era pid
    keeps its exact numeric value). Both subfields are non-zero for
    valid pids. Pids are the only absolute names in a V domain. *)

type t = private int

exception Invalid_field of string

val max_logical_host : int
val max_local_pid : int

(** Both fields must lie in [\[1, 65535\]]. *)
val make : logical_host:int -> local_pid:int -> t

val logical_host : t -> int
val local_pid : t -> int
val to_int : t -> int

(** Inverse of [to_int]; raises {!Invalid_field} on malformed values. *)
val of_int : int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
