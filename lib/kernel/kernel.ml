(* The distributed V kernel (paper §3, §4).

   One [domain] is a set of logical hosts on one simulated Ethernet,
   over which the IPC primitives are transparent. Each simulated V
   process is a [Vsim.Proc] fiber; Send blocks the fiber until the
   Reply arrives, exactly mirroring the paper's message-transaction
   semantics (Figure 1), including Forward, MoveTo/MoveFrom bulk
   transfer, SetPid/GetPid service naming with broadcast lookup, and
   process groups with multicast Send.

   The kernel is parametric in the message type ['m]: it never inspects
   messages, only charges wire/CPU costs through a caller-supplied
   {!cost_model} — the same separation the real kernel has from the
   message standards built above it (§3.2). *)

module Calibration = Vnet.Calibration
module Ethernet = Vnet.Ethernet
module Topology = Vnet.Topology
module Engine = Vsim.Engine
module Proc = Vsim.Proc

type error =
  | Timeout  (** retransmission budget exhausted; destination unreachable *)
  | Nonexistent_process  (** the pid names no live process *)
  | Not_awaiting_reply  (** Reply/Forward/Move for a process we are not serving *)
  | Bad_buffer  (** Move beyond the buffer the sender exposed *)
  | No_reply  (** group Send that no member answered *)

let pp_error ppf = function
  | Timeout -> Fmt.string ppf "timeout"
  | Nonexistent_process -> Fmt.string ppf "nonexistent process"
  | Not_awaiting_reply -> Fmt.string ppf "not awaiting reply"
  | Bad_buffer -> Fmt.string ppf "bad buffer"
  | No_reply -> Fmt.string ppf "no reply"

exception Ipc_error of error

type 'm cost_model = {
  payload_bytes : 'm -> int;
      (* bytes carried beyond the 32-byte message proper *)
  segment_bytes : 'm -> int;
      (* portion of the payload that must be copied into the receiver
         (e.g. an appended CSname); charges segment-copy CPU remotely *)
}

(* --- wire packets between kernels --- *)

type 'm packet =
  | Request of { txn : int; sender : Pid.t; target : Pid.t; msg : 'm }
  | Reply_pkt of { txn : int; replier : Pid.t; msg : 'm }
  | Nack of { txn : int; reason : error }
  | Getpid_query of { txn : int; requester_addr : int; service : int }
  | Getpid_reply of { txn : int; pid : Pid.t }
  | Move_request of { txn : int; mv : int; mover_addr : int; len : int }
  | Move_data of { mv : int; last : bool; data : bytes }
  | Move_to_data of { txn : int; mv : int; mover_addr : int; seq : int; last : bool; data : bytes }
  | Move_ack of { mv : int; outcome : (unit, error) result }
  | Group_request of { txn : int; sender : Pid.t; group : int; msg : 'm }

type 'm delivery = { d_sender : Pid.t; d_msg : 'm }

(* What a per-process admission hook decided about an incoming request.
   The kernel supplies the mechanism (bounded queues, priority lanes, a
   kernel-level rejection reply); the policy — caps, deadline-aware
   drop, retry-after hints — lives above, in the layer that understands
   the message type (see [Vservices.Admission]). *)
type 'm admission_verdict =
  | Admit  (** enqueue on the interactive lane *)
  | Admit_bulk  (** enqueue on the bulk lane, served after interactive *)
  | Shed of 'm
      (** reject now: the kernel replies with this message on the
          server's behalf, without scheduling the server's fiber *)

(* Cached metric handles for the per-transaction kernel ops — bound
   per host on first use so the IPC hot path records through pointer
   work, not keyed lookups (see Vobs.Metrics handles). *)
type hot_ops = {
  ho_send : Vobs.Metrics.counter;
  ho_receive : Vobs.Metrics.counter;
  ho_reply : Vobs.Metrics.counter;
  ho_admit : Vobs.Metrics.counter;
  ho_shed : Vobs.Metrics.counter;
}

type 'm process = {
  pid : Pid.t;
  proc_name : string;
  proc_host : 'm host;
  queue : 'm delivery Queue.t;
  mutable recv_waiter :
    (('m delivery, exn) result -> unit) option;
  mutable recv_filter : (Pid.t -> bool) option;
  mutable abort : (exn -> unit) option;
  mutable proc_alive : bool;
  (* Overload protection, off ([None]) by default: with no hook
     installed the request path costs exactly one extra word test. *)
  mutable admission : 'm admission option;
}

and 'm admission = {
  mutable ad_decide : now:float -> depth:int -> 'm -> 'm admission_verdict;
  (* The bulk lane: requests classified [Admit_bulk] wait here and are
     dequeued only when the interactive queue is empty, so cheap
     resolution traffic overtakes queued bulk work. *)
  ad_bulk : 'm delivery Queue.t;
  mutable ad_admitted : int;
  mutable ad_shed : int;
}

and 'm pending = {
  p_fire : ('m * Pid.t, exn) result -> unit;
  p_buffer : bytes option;
  (* Handles on the transaction's retransmission and timeout timers, so
     completion cancels them in O(1) instead of leaving no-op events to
     percolate through the queue (the common case: every successful
     remote SRR arms both and needs neither). *)
  mutable p_retransmit : Engine.timer option;
  mutable p_timeout : Engine.timer option;
}

and 'm move_op = {
  mv_fire : (bytes, exn) result -> unit;
  mv_buf : Buffer.t;
  mutable mv_timer : Engine.timer option;
}

and 'm host = {
  domain : 'm domain;
  addr : Ethernet.addr;
  host_name : string;
  mutable logical_host : int;
  mutable host_up : bool;
  processes : (int, 'm process) Hashtbl.t; (* by local pid *)
  services : (int, (Pid.t * Service.scope) list) Hashtbl.t;
  serving : (Pid.t * Pid.t, int) Hashtbl.t;
      (* (sender, receiver) -> txn being served by receiver *)
  pendings : (int, 'm pending) Hashtbl.t; (* txn -> blocked local sender *)
  moves : (int, 'm move_op) Hashtbl.t;
  getpid_waits : (int, Pid.t option -> unit) Hashtbl.t;
  (* Optional service -> pid cache for broadcast GetPid results, shared
     by the host's processes (the prefix server's logical bindings are
     the intended user). Gated by [getpid_cache_on]; entries are
     validated on use — a failed send/forward to a cached pid is the
     invalidation signal (see [drop_cached_pid]). *)
  getpid_cache : (int, Pid.t) Hashtbl.t;
  (* At-most-once machinery for retransmitted requests: transactions
     already delivered to a process here, and cached replies to replay
     when the reply frame itself was lost. *)
  delivered_txns : (int, unit) Hashtbl.t;
  completed_replies : (int, Ethernet.addr * 'm packet * int) Hashtbl.t;
  group_members : (int, Pid.t list) Hashtbl.t;
  host_prng : Vsim.Prng.t;
  mutable host_hot : hot_ops option;
  (* The per-transaction IPC counters accumulate right here — the
     host record is already in cache on every send/receive/reply and
     on every admission verdict, so counting is one register add with
     no branch. [flush_metrics] moves the deltas into the registry at
     scrape time. *)
  mutable h_sends : int;
  mutable h_receives : int;
  mutable h_replies : int;
  mutable h_admits : int;
  mutable h_sheds : int;
  mutable h_sends_flushed : int;
  mutable h_receives_flushed : int;
  mutable h_replies_flushed : int;
  mutable h_admits_flushed : int;
  mutable h_sheds_flushed : int;
}

(* A logical service implemented by a whole process group (§7): GetPid
   for the service returns one member, chosen by the balancer; naming
   writes are fanned out write-all by the coordinating prefix server and
   logged here so a member that missed some (it was down, or partitioned
   away) can catch up by replay. The kernel never inspects the logged
   messages, only stores them — the same separation it keeps everywhere
   else.

   An entry is PENDING from the moment the coordinator starts its
   fan-out and becomes COMMITTED once some member may have applied it
   (a member answered, or a send failed ambiguously — the request may
   have been delivered with the reply frame lost). A fan-out that fails
   definitively everywhere is ABORTED: the entry is removed before any
   replay can see it. Catch-up readers see committed entries only, and
   [group_write_pending] lets them wait out in-flight fan-outs before
   declaring themselves caught up. *)
and 'm sg_entry = {
  le_origin : int;
  le_seq : int;
  le_msg : 'm;
  mutable le_committed : bool;
}

and 'm service_group = {
  sg_group : int;  (* the process group implementing the service *)
  sg_policy : Balancer.policy;
  mutable sg_cursor : int;  (* round-robin position, seeded at registration *)
  mutable sg_log : 'm sg_entry list;  (* newest first *)
  mutable sg_log_len : int;
  (* origin -> highest seq trimmed out of the capped log; a member whose
     durable applied mark is below this cannot catch up by replay. *)
  sg_trim_hw : (int, int) Hashtbl.t;
}

and 'm domain = {
  engine : Engine.t;
  net : 'm packet Ethernet.t;
  cost : 'm cost_model;
  mutable next_txn : int;
  mutable next_mv : int;
  mutable next_logical_host : int;
  mutable next_group : int;
  logical_hosts : (int, 'm host) Hashtbl.t;
  (* Logical-host ids retired by a crash, mapped to the network address
     they lived at. A send to a pid of a retired incarnation is not
     failed omnisciently: the kernel has no liveness oracle, so the
     request goes on the wire to the last-known address and runs the
     probe machinery until it times out (or the restarted incarnation
     nacks it). *)
  retired_logical_hosts : (int, Ethernet.addr) Hashtbl.t;
  all_hosts : (Ethernet.addr, 'm host) Hashtbl.t;
  service_groups : (int, 'm service_group) Hashtbl.t;  (* by service id *)
  domain_prng : Vsim.Prng.t;
  mutable trace : Vsim.Trace.t option;
  mutable domain_obs : Vobs.Hub.t option;
  (* Extract the obs trace id riding inside a message, for stamping
     flight-recorder events. The kernel is parametric in ['m] and never
     inspects messages itself; the deployment (which knows the message
     type) installs the accessor. Default: everything untraced. *)
  mutable trace_of : 'm -> int;
  mutable getpid_cache_on : bool;
  ipc_transactions : Vsim.Stats.Counter.t;
  (* The telemetry pump: every [tel_interval] simulated ms (0 = off)
     the send path's next kernel operation snapshots fleet counters,
     fabric links and watched server queues into the hub's time-series
     store. Piggybacked on the hot path rather than self-scheduled so
     the pump adds zero engine events — obs-on and obs-off runs execute
     identical event sequences. *)
  mutable tel_interval : float;
  mutable tel_next : float;
  (* host name -> rollup group scope, fed to Rollup.group_of. *)
  tel_groups : (string, string) Hashtbl.t;
  (* (series label, pid) of servers whose queue depth is traced:
     every pid with an admission hook installed. *)
  mutable tel_watched : (string * Pid.t) list;
}

type 'm self = 'm process

(* --- small helpers --- *)

let engine_of_domain d = d.engine
let net_of_domain d = d.net

let trace d fmt =
  match d.trace with
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  | Some tr -> Vsim.Trace.emit tr ~category:"ipc" fmt

(* Allocation guards for the IPC hot path: applying [trace]/[event_log]
   to a format string builds continuation closures even when the sink is
   off, so the hottest call sites test these one-word predicates first
   and skip the application (and any eager arguments like
   [d.trace_of msg]) entirely. *)
let tracing d = d.trace <> None
let obs_on host = host.domain.domain_obs <> None

(* The flight-recorder guard: [event_log] itself is a no-op when the
   recorder is off, but applying it to a format string still builds the
   continuation closures — this predicate lets call sites skip that. *)
let obs_events_on host =
  match host.domain.domain_obs with
  | Some hub -> Vobs.Eventlog.enabled (Vobs.Hub.events hub)
  | None -> false

let set_trace d tr = d.trace <- Some tr

let set_obs d hub =
  d.domain_obs <- Some hub;
  (* Cached metric handles belong to the previous hub's registry. *)
  Hashtbl.iter (fun _ host -> host.host_hot <- None) d.all_hosts

let obs d = d.domain_obs
let set_trace_of d f = d.trace_of <- f

(* Flight-recorder events, mirroring [trace]: the label is only built
   when an attached hub's recorder is enabled, so a disabled recorder
   costs one test per site. Reading the clock for the time stamp never
   advances it. *)
let event_log host ~cat ?(trace = 0) fmt =
  match host.domain.domain_obs with
  | Some hub when Vobs.Eventlog.enabled (Vobs.Hub.events hub) ->
      Format.kasprintf
        (fun label ->
          Vobs.Hub.event hub
            ~at:(Engine.now host.domain.engine)
            ~cat ~host:host.host_name ~trace label)
        fmt
  | Some _ | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

(* Count one kernel operation against (host, "kernel", op) if a hub is
   attached. Pure bookkeeping: never touches the simulation clock. *)
let count_op host op =
  match host.domain.domain_obs with
  | None -> ()
  | Some hub ->
      Vobs.Metrics.incr (Vobs.Hub.metrics hub) ~host:host.host_name
        ~server:"kernel" ~op

(* The three per-transaction ops go through cached handles instead:
   send/receive/reply fire on every IPC transaction, and the keyed
   path's hashing is what the E15 overhead gate would choke on. *)
let host_hot_ops host hub =
  match host.host_hot with
  | Some h -> h
  | None ->
      let m = Vobs.Hub.metrics hub in
      let mk op =
        Vobs.Metrics.counter m ~host:host.host_name ~server:"kernel" ~op
      in
      let h =
        {
          ho_send = mk "send";
          ho_receive = mk "receive";
          ho_reply = mk "reply";
          ho_admit = mk "admit";
          ho_shed = mk "shed";
        }
      in
      host.host_hot <- Some h;
      h

let count_send host = host.h_sends <- host.h_sends + 1
let count_receive host = host.h_receives <- host.h_receives + 1
let count_reply host = host.h_replies <- host.h_replies + 1
let count_admit host = host.h_admits <- host.h_admits + 1
let count_shed host = host.h_sheds <- host.h_sheds + 1

(* Move every host's IPC-counter deltas since the previous flush into
   the registry (through the cached handles), then flush the wire
   layer. Called at scrape points — exports, dumps, vsh — never per
   transaction; pure bookkeeping, so a flush at any instant leaves
   simulated behaviour untouched. *)
let flush_metrics d =
  (match d.domain_obs with
  | None -> ()
  | Some hub ->
      Hashtbl.iter
        (fun _ host ->
          if
            host.h_sends > host.h_sends_flushed
            || host.h_receives > host.h_receives_flushed
            || host.h_replies > host.h_replies_flushed
            || host.h_admits > host.h_admits_flushed
            || host.h_sheds > host.h_sheds_flushed
          then begin
            let h = host_hot_ops host hub in
            Vobs.Metrics.add ~by:(host.h_sends - host.h_sends_flushed) h.ho_send;
            Vobs.Metrics.add
              ~by:(host.h_receives - host.h_receives_flushed)
              h.ho_receive;
            Vobs.Metrics.add
              ~by:(host.h_replies - host.h_replies_flushed)
              h.ho_reply;
            Vobs.Metrics.add
              ~by:(host.h_admits - host.h_admits_flushed)
              h.ho_admit;
            Vobs.Metrics.add ~by:(host.h_sheds - host.h_sheds_flushed) h.ho_shed;
            host.h_sends_flushed <- host.h_sends;
            host.h_receives_flushed <- host.h_receives;
            host.h_replies_flushed <- host.h_replies;
            host.h_admits_flushed <- host.h_admits;
            host.h_sheds_flushed <- host.h_sheds
          end)
        d.all_hosts);
  Ethernet.flush_metrics d.net

let fresh_txn d =
  let t = d.next_txn in
  d.next_txn <- t + 1;
  t

let fresh_mv d =
  let t = d.next_mv in
  d.next_mv <- t + 1;
  t

let message_payload_bytes d m = 32 + d.cost.payload_bytes m
let control_payload_bytes = 16

(* Exception-style lookups: [Hashtbl.find_opt] allocates an option per
   probe, and pid resolution runs on every Send/Reply/Forward; matching
   on [exception Not_found] keeps the miss path allocation-free. *)
let find_process d pid =
  match Hashtbl.find d.logical_hosts (Pid.logical_host pid) with
  | host when host.host_up -> (
      match Hashtbl.find host.processes (Pid.local_pid pid) with
      | proc when proc.proc_alive -> Some proc
      | _ -> None
      | exception Not_found -> None)
  | _ -> None
  | exception Not_found -> None

let alive d pid = find_process d pid <> None

let self_pid proc = proc.pid
let self_name proc = proc.proc_name
let self_host_name proc = proc.proc_host.host_name
let host_of_self proc = proc.proc_host
let domain_of_host h = h.domain
let domain_of_self proc = proc.proc_host.domain
let host_addr h = h.addr
let host_logical h = h.logical_host
let host_name h = h.host_name
let host_is_up h = h.host_up

let check_alive proc =
  if not proc.proc_alive then raise (Proc.Killed "process destroyed")

(* --- the telemetry pump --- *)

(* The rollup group of one host: its edge switch on a switched fabric,
   a 1024-host address shard on the shared medium (which has no
   segments, but fleet-minus-one granularity is still wanted). *)
let telemetry_scope_of_host d host =
  match Ethernet.topology d.net with
  | Topology.Switched { fan_in } ->
      Topology.node_to_string (Topology.Edge (Topology.edge_of ~fan_in host.addr))
  | Topology.Shared_medium -> Printf.sprintf "shard%d" (host.addr / 1024)

let register_telemetry_host d host =
  let scope = telemetry_scope_of_host d host in
  Hashtbl.replace d.tel_groups host.host_name scope;
  (* The net layer labels the same host "host<addr>"; registering that
     alias keeps its handle binds off the topology-parsing fallback. *)
  Hashtbl.replace d.tel_groups (Printf.sprintf "host%d" host.addr) scope

(* The [Rollup.group_of] function for this domain: kernel host names
   map through the registration table, net-layer labels ("host3",
   "edge0->spine") through the topology; anything else is fleet-only. *)
let telemetry_group_of d name =
  match Hashtbl.find_opt d.tel_groups name with
  | Some g -> Some g
  | None -> Topology.rollup_scope (Ethernet.topology d.net) name

let telemetry_enabled d = d.tel_interval > 0.0

(* [enable_telemetry d ~interval_ms] arms the pump and maps every
   booted host to its rollup group (hosts booted later register as they
   boot). The pump itself runs from the send path — see
   [telemetry_tick]. *)
let enable_telemetry d ~interval_ms =
  if interval_ms <= 0.0 then
    invalid_arg "Kernel.enable_telemetry: interval must be positive";
  d.tel_interval <- interval_ms;
  d.tel_next <- Engine.now d.engine;
  Hashtbl.iter (fun _ host -> register_telemetry_host d host) d.all_hosts

let disable_telemetry d = d.tel_interval <- 0.0

(* One pump firing: fleet-wide counters, the fabric's interior links,
   and every watched server queue, stamped at the current simulated
   instant. Records only — never schedules, never advances the clock,
   so the engine's event sequence is identical with the pump on or
   off. *)
let telemetry_sample d hub ~now =
  match Vobs.Hub.timeseries hub with
  | None -> ()
  | Some ts ->
      Vobs.Timeseries.sample ts "kernel/ipc-transactions"
        Vobs.Timeseries.Counter ~now
        (float_of_int (Vsim.Stats.Counter.value d.ipc_transactions));
      let c = Ethernet.counters d.net in
      Vobs.Timeseries.sample ts "net/frames-sent" Vobs.Timeseries.Counter ~now
        (float_of_int c.Ethernet.frames_sent);
      Vobs.Timeseries.sample ts "net/frames-dropped" Vobs.Timeseries.Counter
        ~now
        (float_of_int c.Ethernet.frames_dropped);
      Ethernet.sample_timeseries d.net ts ~now;
      List.iter
        (fun (label, pid) ->
          let depth =
            match find_process d pid with
            | None -> 0
            | Some proc ->
                Queue.length proc.queue
                + (match proc.admission with
                  | Some ad -> Queue.length ad.ad_bulk
                  | None -> 0)
          in
          Vobs.Timeseries.sample ts label Vobs.Timeseries.Gauge ~now
            (float_of_int depth))
        d.tel_watched

(* The hot-path hook: two float compares when armed but not yet due,
   nothing at all when disabled (callers guard on [obs_on]). *)
let telemetry_tick host =
  let d = host.domain in
  if d.tel_interval > 0.0 then begin
    let now = Engine.now d.engine in
    if now >= d.tel_next then begin
      d.tel_next <- now +. d.tel_interval;
      match d.domain_obs with
      | Some hub -> telemetry_sample d hub ~now
      | None -> ()
    end
  end

(* Suspend the current fiber in a crash-abortable, fire-once way. *)
let block proc register =
  Proc.suspend (fun resume ->
      let fired = ref false in
      let fire result =
        if not !fired then begin
          fired := true;
          proc.abort <- None;
          resume result
        end
      in
      proc.abort <- Some (fun e -> fire (Error e));
      register fire)

let charge proc ms =
  check_alive proc;
  if ms > 0.0 then Proc.delay proc.proc_host.domain.engine ms;
  check_alive proc

(* --- process lifecycle --- *)

exception Host_is_down of string

let alloc_local_pid host =
  let rec loop attempts =
    if attempts > 1_000_000 then failwith "Kernel: local pid space exhausted";
    let lp = 1 + Vsim.Prng.int host.host_prng Pid.max_local_pid in
    if Hashtbl.mem host.processes lp then loop (attempts + 1) else lp
  in
  loop 0

let destroy_process_record proc =
  proc.proc_alive <- false;
  Hashtbl.remove proc.proc_host.processes (Pid.local_pid proc.pid)

let spawn host ?(name = "process") body =
  if not host.host_up then raise (Host_is_down host.host_name);
  let lp = alloc_local_pid host in
  let pid = Pid.make ~logical_host:host.logical_host ~local_pid:lp in
  let proc =
    {
      pid;
      proc_name = name;
      proc_host = host;
      queue = Queue.create ();
      recv_waiter = None;
      recv_filter = None;
      abort = None;
      proc_alive = true;
      admission = None;
    }
  in
  Hashtbl.replace host.processes lp proc;
  Proc.spawn ~name host.domain.engine (fun () ->
      match body proc with
      | () -> destroy_process_record proc
      | exception e ->
          destroy_process_record proc;
          raise e);
  pid

(* Kill one process: its fiber is torn down at its next suspension
   point (it is blocked now, or will block at its next kernel call). *)
let destroy_process d pid =
  match find_process d pid with
  | None -> false
  | Some proc ->
      trace d "Destroy %a" Pid.pp pid;
      destroy_process_record proc;
      (match proc.abort with
      | Some abort -> abort (Proc.Killed "destroyed")
      | None -> ());
      true

(* --- delivery --- *)

let deliver proc delivery =
  if proc.proc_alive then begin
    let matches =
      match proc.recv_filter with
      | None -> true
      | Some f -> f delivery.d_sender
    in
    match proc.recv_waiter with
    | Some fire when matches ->
        proc.recv_waiter <- None;
        proc.recv_filter <- None;
        fire (Ok delivery)
    | Some _ | None -> Queue.add delivery proc.queue
  end

(* Bulk-lane delivery (admission-controlled processes only): an idle
   receiver is fired directly, otherwise the message waits behind every
   queued interactive one. *)
let deliver_bulk proc ad delivery =
  if proc.proc_alive then begin
    let matches =
      match proc.recv_filter with
      | None -> true
      | Some f -> f delivery.d_sender
    in
    match proc.recv_waiter with
    | Some fire when matches ->
        proc.recv_waiter <- None;
        proc.recv_filter <- None;
        fire (Ok delivery)
    | Some _ | None -> Queue.add delivery ad.ad_bulk
  end

(* Dequeue order: all interactive traffic first, then bulk. With no
   admission hook this is exactly the single-queue take it always was. *)
let take_delivery proc =
  match Queue.take_opt proc.queue with
  | Some _ as d -> d
  | None -> (
      match proc.admission with
      | Some ad -> Queue.take_opt ad.ad_bulk
      | None -> None)

let register_serving host ~sender ~receiver ~txn =
  Hashtbl.replace host.serving (sender, receiver) txn

let cancel_pending_timers host pending =
  let eng = host.domain.engine in
  (match pending.p_retransmit with
  | Some tm -> Engine.cancel eng tm
  | None -> ());
  (match pending.p_timeout with Some tm -> Engine.cancel eng tm | None -> ());
  pending.p_retransmit <- None;
  pending.p_timeout <- None

(* Resume a blocked sender with its reply (or error). Safe to call from
   event context; no-op if the transaction already completed. Cancels
   the transaction's probe timers, so a satisfied SRR leaves no residue
   in the event queue. *)
let fill_pending host ~txn result =
  match Hashtbl.find_opt host.pendings txn with
  | None -> () (* timed out, crashed, or duplicate reply: drop *)
  | Some pending ->
      Hashtbl.remove host.pendings txn;
      cancel_pending_timers host pending;
      pending.p_fire result

(* Retire a transaction without firing it: the cleanup for abnormal
   exits (the blocked fiber was aborted by destroy/crash) where the
   pending record may still be armed. *)
let drop_pending host ~txn =
  match Hashtbl.find_opt host.pendings txn with
  | None -> ()
  | Some pending ->
      Hashtbl.remove host.pendings txn;
      cancel_pending_timers host pending

(* Take a move operation out of flight, cancelling its timeout. *)
let take_move host ~mv =
  match Hashtbl.find_opt host.moves mv with
  | None -> None
  | Some op ->
      Hashtbl.remove host.moves mv;
      (match op.mv_timer with
      | Some tm -> Engine.cancel host.domain.engine tm
      | None -> ());
      op.mv_timer <- None;
      Some op

let transmit host ~dst ~payload_bytes packet =
  Ethernet.transmit host.domain.net
    { Ethernet.src = host.addr; dst; payload = packet; payload_bytes }

(* Receive-side CPU for a message-bearing packet arriving off the wire. *)
let remote_recv_cost d msg =
  Calibration.small_packet_recv_cpu
  +. (if d.cost.segment_bytes msg > 0 then Calibration.segment_copy_remote_cpu else 0.0)

(* --- request dispatch (Send and Forward share this) --- *)

(* Complete a shed transaction on the server's behalf: resume a local
   sender directly, or put the rejection on the wire towards a remote
   one (cached for replay exactly like an ordinary reply). No server
   fiber runs and no service time is charged — rejection is the cheap
   path, which is the entire point of shedding early. *)
let shed_reply host ~txn ~sender ~replier msg =
  let d = host.domain in
  match find_process d sender with
  | Some sender_proc when sender_proc.proc_host == host ->
      fill_pending host ~txn (Ok (msg, replier))
  | Some sender_proc ->
      let packet = Reply_pkt { txn; replier; msg } in
      let bytes = message_payload_bytes d msg in
      let dst = sender_proc.proc_host.addr in
      if Hashtbl.length host.completed_replies > 4096 then
        Hashtbl.reset host.completed_replies;
      Hashtbl.replace host.completed_replies txn (dst, packet, bytes);
      transmit host ~dst:(Ethernet.Unicast dst) ~payload_bytes:bytes packet
  | None -> () (* sender died while blocked; nothing to resume *)

let dispatch_local_request host ~txn ~sender ~target_proc msg =
  match target_proc.admission with
  | None ->
      register_serving host ~sender ~receiver:target_proc.pid ~txn;
      deliver target_proc { d_sender = sender; d_msg = msg }
  | Some ad -> (
      let depth = Queue.length target_proc.queue + Queue.length ad.ad_bulk in
      match ad.ad_decide ~now:(Engine.now host.domain.engine) ~depth msg with
      | Admit ->
          ad.ad_admitted <- ad.ad_admitted + 1;
          count_admit host;
          register_serving host ~sender ~receiver:target_proc.pid ~txn;
          deliver target_proc { d_sender = sender; d_msg = msg }
      | Admit_bulk ->
          ad.ad_admitted <- ad.ad_admitted + 1;
          count_admit host;
          register_serving host ~sender ~receiver:target_proc.pid ~txn;
          deliver_bulk target_proc ad { d_sender = sender; d_msg = msg }
      | Shed reply_msg ->
          ad.ad_shed <- ad.ad_shed + 1;
          count_shed host;
          if obs_events_on host then
            event_log host ~cat:Vobs.Eventlog.Admission
              ~trace:(host.domain.trace_of msg)
              "shed %a -> %a (depth %d)" Pid.pp sender Pid.pp target_proc.pid
              depth;
          shed_reply host ~txn ~sender ~replier:target_proc.pid reply_msg)

let dispatch_remote_request src_host ~dst_addr ~txn ~sender ~target msg =
  transmit src_host ~dst:(Ethernet.Unicast dst_addr)
    ~payload_bytes:(message_payload_bytes src_host.domain msg)
    (Request { txn; sender; target; msg })

(* Arm the unreachable-destination timeout for a remote transaction.
   Like the real kernel's retransmission/probe machinery, the timeout
   renews while the destination host remains reachable — a server
   legitimately busy serving the transaction (e.g. a long MoveTo) does
   not abort the sender. A bounded number of probes caps transactions
   whose forwarded target silently disappeared. *)
let max_timeout_probes = 60

let arm_timeout host ~txn pending ~dst_addr =
  let d = host.domain in
  let rec probe attempts () =
    if Hashtbl.mem host.pendings txn then begin
      let target_host_reachable =
        match Hashtbl.find_opt d.all_hosts dst_addr with
        | Some h ->
            h.host_up && Ethernet.reachable d.net host.addr dst_addr
        | None -> false
      in
      if target_host_reachable && attempts < max_timeout_probes then
        pending.p_timeout <-
          Some
            (Engine.timer ~delay:Calibration.ipc_timeout_ms d.engine
               (probe (attempts + 1)))
      else fill_pending host ~txn (Error (Ipc_error Timeout))
    end
  in
  pending.p_timeout <-
    Some (Engine.timer ~delay:Calibration.ipc_timeout_ms d.engine (probe 1))

(* Recovery for a locally-submitted transaction that a server forwarded
   to a remote host. The local send path arms no retransmission — local
   delivery cannot lose frames — but the forward makes the reply leg
   lossy: if the remote reply frame is dropped, nothing would ever
   resend and the sender blocks forever. Probe at the timeout pace (not
   the retransmission pace): each probe resends the forwarded request —
   the target's completed-reply cache replays a lost reply, its
   duplicate suppression absorbs the rest — and the transaction fails
   with Timeout once the target host is unreachable or the probe budget
   is spent. Fault-free forwarded transactions complete well before the
   first probe fires, so loss-free runs see no extra frames. *)
let arm_forward_recovery host ~txn pending ~dst_addr resend =
  let d = host.domain in
  let rec probe attempts () =
    if Hashtbl.mem host.pendings txn && host.host_up then begin
      let target_host_reachable =
        match Hashtbl.find_opt d.all_hosts dst_addr with
        | Some h ->
            h.host_up && Ethernet.reachable d.net host.addr dst_addr
        | None -> false
      in
      if target_host_reachable && attempts < max_timeout_probes then begin
        if obs_events_on host then
          event_log host ~cat:Vobs.Eventlog.Kernel
            "forward-recovery-probe txn %d (attempt %d)" txn attempts;
        resend ();
        pending.p_timeout <-
          Some
            (Engine.timer ~delay:Calibration.ipc_timeout_ms d.engine
               (probe (attempts + 1)))
      end
      else fill_pending host ~txn (Error (Ipc_error Timeout))
    end
  in
  pending.p_timeout <-
    Some (Engine.timer ~delay:Calibration.ipc_timeout_ms d.engine (probe 1))

(* Periodically resend a request packet while its transaction is still
   pending; the receiving kernel suppresses duplicates. Rides under the
   timeout above, which bounds the total wait. *)
let arm_retransmit host ~txn pending resend =
  let d = host.domain in
  let rec tick () =
    if Hashtbl.mem host.pendings txn && host.host_up then begin
      if obs_events_on host then
        event_log host ~cat:Vobs.Eventlog.Kernel "retransmit-probe txn %d" txn;
      resend ();
      pending.p_retransmit <-
        Some
          (Engine.timer ~delay:Calibration.retransmit_interval_ms d.engine tick)
    end
  in
  pending.p_retransmit <-
    Some (Engine.timer ~delay:Calibration.retransmit_interval_ms d.engine tick)

(* --- the IPC primitives --- *)

(* The remote leg of Send: put the request on the wire towards
   [dst_addr] and block with retransmission and timeout armed. *)
let send_remote proc ?buffer ~dst_addr ~target msg =
  let host = proc.proc_host in
  let d = host.domain in
  charge proc Calibration.small_packet_send_cpu;
  let txn = fresh_txn d in
  (* One packet and one payload-size computation serve the initial
     transmission and every retransmission. *)
  let packet = Request { txn; sender = proc.pid; target; msg } in
  let bytes = message_payload_bytes d msg in
  let send_it () =
    transmit host ~dst:(Ethernet.Unicast dst_addr) ~payload_bytes:bytes packet
  in
  let result =
    try
      Ok
        (block proc (fun fire ->
             let pending =
               {
                 p_fire = fire;
                 p_buffer = buffer;
                 p_retransmit = None;
                 p_timeout = None;
               }
             in
             Hashtbl.replace host.pendings txn pending;
             send_it ();
             arm_retransmit host ~txn pending send_it;
             arm_timeout host ~txn pending ~dst_addr))
    with Ipc_error e -> Error e
  in
  drop_pending host ~txn;
  result

(* [send proc target msg] implements the Send primitive: blocks the
   calling fiber until the target (or whoever the message is forwarded
   to) replies. [buffer], if given, is the memory the sender exposes to
   MoveTo/MoveFrom for the duration of the transaction. *)
let send proc ?buffer target msg =
  check_alive proc;
  let host = proc.proc_host in
  let d = host.domain in
  Vsim.Stats.Counter.incr d.ipc_transactions;
  count_send host;
  if tracing d then trace d "Send %a -> %a" Pid.pp proc.pid Pid.pp target;
  if obs_on host then begin
    telemetry_tick host;
    if obs_events_on host then
      event_log host ~cat:Vobs.Eventlog.Kernel ~trace:(d.trace_of msg)
        "send %a -> %a" Pid.pp proc.pid Pid.pp target
  end;
  match find_process d target with
  | Some target_proc when target_proc.proc_host == host ->
      charge proc Calibration.local_ipc_leg_cpu;
      if not target_proc.proc_alive then Error Nonexistent_process
      else begin
        let txn = fresh_txn d in
        let result =
          try
            Ok
              (block proc (fun fire ->
                   Hashtbl.replace host.pendings txn
                     {
                       p_fire = fire;
                       p_buffer = buffer;
                       p_retransmit = None;
                       p_timeout = None;
                     };
                   dispatch_local_request host ~txn ~sender:proc.pid ~target_proc msg))
          with Ipc_error e -> Error e
        in
        drop_pending host ~txn;
        result
      end
  | Some target_proc ->
      send_remote proc ?buffer ~dst_addr:target_proc.proc_host.addr ~target msg
  | None -> (
      (* No live process under this pid. If its logical host was retired
         by a crash, the kernel cannot know that authoritatively (no
         liveness oracle): the request goes on the wire to the pid's
         last-known address and fails by timeout or by a Nack from the
         restarted incarnation. A pid of the local host's own history —
         or of a never-issued logical host — is refused directly. *)
      match Hashtbl.find_opt d.retired_logical_hosts (Pid.logical_host target) with
      | Some dst_addr when dst_addr <> host.addr ->
          send_remote proc ?buffer ~dst_addr ~target msg
      | Some _ | None -> Error Nonexistent_process)

(* [receive proc] blocks until a message arrives; returns it with the
   sender's pid. *)
let receive proc =
  check_alive proc;
  let d =
    match take_delivery proc with
    | Some delivery -> delivery
    | None ->
        block proc (fun fire ->
            proc.recv_filter <- None;
            proc.recv_waiter <- Some fire)
  in
  count_receive proc.proc_host;
  if tracing proc.proc_host.domain then
    trace proc.proc_host.domain "Receive %a <- %a" Pid.pp proc.pid Pid.pp
      d.d_sender;
  (d.d_msg, d.d_sender)

(* Blocks until a message from a sender satisfying [from] arrives.
   Other messages stay queued. *)
let receive_where proc ~from =
  check_alive proc;
  let find_queued_in q =
    let rec go acc =
      match Queue.take_opt q with
      | None ->
          List.iter (fun x -> Queue.add x q) (List.rev acc);
          None
      | Some delivery when from delivery.d_sender ->
          List.iter (fun x -> Queue.add x q) (List.rev acc);
          Some delivery
      | Some other -> go (other :: acc)
    in
    go []
  in
  let find_queued () =
    match find_queued_in proc.queue with
    | Some _ as d -> d
    | None -> (
        match proc.admission with
        | Some ad -> find_queued_in ad.ad_bulk
        | None -> None)
  in
  let d =
    match find_queued () with
    | Some delivery -> delivery
    | None ->
        block proc (fun fire ->
            proc.recv_filter <- Some from;
            proc.recv_waiter <- Some fire)
  in
  (d.d_msg, d.d_sender)

(* [reply proc ~to_ msg] completes the transaction with blocked sender
   [to_]. *)
let reply proc ~to_ msg =
  check_alive proc;
  let host = proc.proc_host in
  let d = host.domain in
  match Hashtbl.find_opt host.serving (to_, proc.pid) with
  | None -> Error Not_awaiting_reply
  | Some txn -> (
      Hashtbl.remove host.serving (to_, proc.pid);
      count_reply host;
      if tracing d then trace d "Reply %a -> %a" Pid.pp proc.pid Pid.pp to_;
      match find_process d to_ with
      | None -> Ok () (* sender died while blocked; nothing to resume *)
      | Some sender_proc when sender_proc.proc_host == host ->
          charge proc Calibration.local_ipc_leg_cpu;
          fill_pending host ~txn (Ok (msg, proc.pid));
          Ok ()
      | Some sender_proc ->
          charge proc Calibration.small_packet_send_cpu;
          let packet = Reply_pkt { txn; replier = proc.pid; msg } in
          let bytes = message_payload_bytes d msg in
          let dst = sender_proc.proc_host.addr in
          (* Keep the reply for replay if the frame is lost and the
             sender retransmits (bounded cache: duplicate suppression is
             only needed within the retransmission window). *)
          if Hashtbl.length host.completed_replies > 4096 then
            Hashtbl.reset host.completed_replies;
          Hashtbl.replace host.completed_replies txn (dst, packet, bytes);
          transmit host ~dst:(Ethernet.Unicast dst) ~payload_bytes:bytes packet;
          Ok ())

(* [forward proc ~from_ ~to_ msg] passes the transaction on: [to_] sees
   [msg] as if [from_] had sent it directly, and will reply straight to
   [from_]. This is the kernel mechanism the name-handling protocol's
   multi-server name interpretation rides on (§5.4). *)
let forward proc ~from_ ~to_ msg =
  check_alive proc;
  let host = proc.proc_host in
  let d = host.domain in
  match Hashtbl.find_opt host.serving (from_, proc.pid) with
  | None -> Error Not_awaiting_reply
  | Some txn -> (
      Hashtbl.remove host.serving (from_, proc.pid);
      count_op host "forward";
      if tracing d then
        trace d "Forward %a: %a -> %a" Pid.pp proc.pid Pid.pp from_ Pid.pp to_;
      if obs_events_on host then
        event_log host ~cat:Vobs.Eventlog.Kernel ~trace:(d.trace_of msg)
          "forward %a: %a -> %a" Pid.pp proc.pid Pid.pp from_ Pid.pp to_;
      match find_process d to_ with
      | None ->
          (* Target gone: fail the original sender's transaction. *)
          (match find_process d from_ with
          | Some sender_proc ->
              fill_pending sender_proc.proc_host ~txn
                (Error (Ipc_error Nonexistent_process))
          | None -> ());
          Error Nonexistent_process
      | Some target_proc when target_proc.proc_host == host ->
          charge proc Calibration.local_ipc_leg_cpu;
          dispatch_local_request host ~txn ~sender:from_ ~target_proc msg;
          Ok ()
      | Some target_proc ->
          charge proc Calibration.small_packet_send_cpu;
          let dst_addr = target_proc.proc_host.addr in
          let resend () =
            dispatch_remote_request host ~dst_addr ~txn ~sender:from_
              ~target:to_ msg
          in
          resend ();
          (* A sender on this very host submitted the transaction via
             the local path, which arms no retransmission or timeout;
             now that the transaction has left the host, give it the
             slow recovery chain. Remote-origin senders already
             retransmit and time out from their own host. *)
          (match Hashtbl.find_opt host.pendings txn with
          | Some pending -> arm_forward_recovery host ~txn pending ~dst_addr resend
          | None -> ());
          Ok ())

(* --- admission control (overload protection) --- *)

(* Install (or replace) the admission hook on [pid]. The kernel owns
   the mechanism only: every local-dispatch request to [pid] is put to
   [decide], which sorts it onto the interactive or bulk lane or sheds
   it with a kernel-level reply. Replacing a live hook keeps the bulk
   queue and counters — a policy change mid-run does not lose admitted
   work. *)
let set_admission d pid decide =
  match find_process d pid with
  | None -> ()
  | Some proc -> (
      match proc.admission with
      | Some ad -> ad.ad_decide <- decide
      | None ->
          proc.admission <-
            Some
              {
                ad_decide = decide;
                ad_bulk = Queue.create ();
                ad_admitted = 0;
                ad_shed = 0;
              };
          (* A server worth admission-protecting is a server whose
             queue depth is worth a trace. *)
          let label =
            Fmt.str "server/%s/%a/queue" proc.proc_host.host_name Pid.pp pid
          in
          d.tel_watched <- (label, pid) :: d.tel_watched)

(* Remove the hook; admitted bulk work drains back into the main queue
   so nothing already accepted is lost. *)
let clear_admission d pid =
  match find_process d pid with
  | None -> ()
  | Some proc -> (
      match proc.admission with
      | None -> ()
      | Some ad ->
          Queue.transfer ad.ad_bulk proc.queue;
          proc.admission <- None;
          d.tel_watched <- List.filter (fun (_, p) -> p <> pid) d.tel_watched)

(* Undelivered requests queued at [pid], both lanes. *)
let queue_depth d pid =
  match find_process d pid with
  | None -> 0
  | Some proc ->
      Queue.length proc.queue
      + (match proc.admission with
        | Some ad -> Queue.length ad.ad_bulk
        | None -> 0)

(* [(admitted, shed)] since the hook was installed; [(0, 0)] without
   one. *)
let admission_counters d pid =
  match find_process d pid with
  | Some { admission = Some ad; _ } -> (ad.ad_admitted, ad.ad_shed)
  | _ -> ((0, 0) : int * int)

(* --- MoveTo / MoveFrom --- *)

let pages_of_bytes len =
  let page = Calibration.bulk_packet_bytes in
  max 1 ((len + page - 1) / page)

(* Stream [data] from [src_host] as paced bulk packets; [mk_packet]
   builds each wire packet from (seq, last, chunk). The per-packet send
   CPU paces the stream, reproducing the host-limited MoveTo throughput
   of §3.1. *)
let stream_chunks src_host ~dst_addr data mk_packet =
  let d = src_host.domain in
  let page = Calibration.bulk_packet_bytes in
  let len = Bytes.length data in
  let n = pages_of_bytes len in
  let now = Engine.now d.engine in
  for i = 0 to n - 1 do
    let at = now +. (float_of_int (i + 1) *. Calibration.bulk_packet_send_cpu) in
    Engine.schedule_at d.engine at (fun () ->
        if src_host.host_up then begin
          let off = i * page in
          let chunk_len = min page (len - off) in
          let chunk = Bytes.sub data off chunk_len in
          transmit src_host ~dst:(Ethernet.Unicast dst_addr)
            ~payload_bytes:(control_payload_bytes + chunk_len)
            (mk_packet ~seq:i ~last:(i = n - 1) ~chunk)
        end)
  done

(* [move_from proc ~sender ~len] reads [len] bytes from the buffer the
   blocked sender exposed. The caller must currently be serving
   [sender]. *)
let move_from proc ~sender ~len =
  check_alive proc;
  let host = proc.proc_host in
  let d = host.domain in
  match Hashtbl.find_opt host.serving (sender, proc.pid) with
  | None -> Error Not_awaiting_reply
  | Some txn -> (
      count_op host "move-from";
      trace d "MoveFrom %a <- %a (%dB)" Pid.pp proc.pid Pid.pp sender len;
      match find_process d sender with
      | None -> Error Nonexistent_process
      | Some sender_proc when sender_proc.proc_host == host -> (
          match Hashtbl.find_opt host.pendings txn with
          | None -> Error Not_awaiting_reply
          | Some { p_buffer = None; _ } -> Error Bad_buffer
          | Some { p_buffer = Some buf; _ } ->
              if len > Bytes.length buf then Error Bad_buffer
              else begin
                charge proc
                  (float_of_int (pages_of_bytes len) *. Calibration.local_move_page_cpu);
                Ok (Bytes.sub buf 0 len)
              end)
      | Some sender_proc -> (
          let remote = sender_proc.proc_host in
          let mv = fresh_mv d in
          charge proc Calibration.small_packet_send_cpu;
          try
            Ok
              (block proc (fun fire ->
                   let op =
                     { mv_fire = fire; mv_buf = Buffer.create len; mv_timer = None }
                   in
                   Hashtbl.replace host.moves mv op;
                   transmit host ~dst:(Ethernet.Unicast remote.addr)
                     ~payload_bytes:control_payload_bytes
                     (Move_request { txn; mv; mover_addr = host.addr; len });
                   op.mv_timer <-
                     Some
                       (Engine.timer ~delay:Calibration.ipc_timeout_ms d.engine
                          (fun () ->
                            match take_move host ~mv with
                            | None -> ()
                            | Some op -> op.mv_fire (Error (Ipc_error Timeout))))))
          with Ipc_error e ->
            ignore (take_move host ~mv : 'm move_op option);
            Error e))

(* [move_to proc ~sender data] writes [data] into the blocked sender's
   exposed buffer. *)
let move_to proc ~sender data =
  check_alive proc;
  let host = proc.proc_host in
  let d = host.domain in
  match Hashtbl.find_opt host.serving (sender, proc.pid) with
  | None -> Error Not_awaiting_reply
  | Some txn -> (
      count_op host "move-to";
      trace d "MoveTo %a -> %a (%dB)" Pid.pp proc.pid Pid.pp sender
        (Bytes.length data);
      match find_process d sender with
      | None -> Error Nonexistent_process
      | Some sender_proc when sender_proc.proc_host == host -> (
          match Hashtbl.find_opt host.pendings txn with
          | None -> Error Not_awaiting_reply
          | Some { p_buffer = None; _ } -> Error Bad_buffer
          | Some { p_buffer = Some buf; _ } ->
              if Bytes.length data > Bytes.length buf then Error Bad_buffer
              else begin
                charge proc
                  (float_of_int (pages_of_bytes (Bytes.length data))
                  *. Calibration.local_move_page_cpu);
                Bytes.blit data 0 buf 0 (Bytes.length data);
                Ok ()
              end)
      | Some sender_proc ->
          let remote = sender_proc.proc_host in
          let mv = fresh_mv d in
          let page = Calibration.bulk_packet_bytes in
          let len = Bytes.length data in
          let n = pages_of_bytes len in
          (* The mover's own fiber paces the outgoing packets (it is the
             mover's CPU that limits throughput), then blocks for the
             completion ack. *)
          let rec push i =
            if i < n then begin
              charge proc Calibration.bulk_packet_send_cpu;
              let off = i * page in
              let chunk_len = min page (len - off) in
              transmit host ~dst:(Ethernet.Unicast remote.addr)
                ~payload_bytes:(control_payload_bytes + chunk_len)
                (Move_to_data
                   {
                     txn;
                     mv;
                     mover_addr = host.addr;
                     seq = i;
                     last = i = n - 1;
                     data = Bytes.sub data off chunk_len;
                   });
              push (i + 1)
            end
          in
          (try
             push 0;
             let (_ : bytes) =
               block proc (fun fire ->
                   let op =
                     { mv_fire = fire; mv_buf = Buffer.create 0; mv_timer = None }
                   in
                   Hashtbl.replace host.moves mv op;
                   op.mv_timer <-
                     Some
                       (Engine.timer ~delay:Calibration.ipc_timeout_ms d.engine
                          (fun () ->
                            match take_move host ~mv with
                            | None -> ()
                            | Some op -> op.mv_fire (Error (Ipc_error Timeout)))))
             in
             Ok ()
           with Ipc_error e ->
             ignore (take_move host ~mv : 'm move_op option);
             Error e))

(* --- service naming: SetPid / GetPid (§4.2) --- *)

let set_pid host ~service pid scope =
  let entries =
    match Hashtbl.find_opt host.services service with Some l -> l | None -> []
  in
  (* A new registration for the same (service, scope) replaces the old
     one; Local and Remote registrations may coexist (§4.2). *)
  let entries = List.filter (fun (_, sc) -> sc <> scope) entries in
  Hashtbl.replace host.services service ((pid, scope) :: entries)

let clear_pid host ~service pid =
  match Hashtbl.find_opt host.services service with
  | None -> ()
  | Some entries ->
      Hashtbl.replace host.services service
        (List.filter (fun (p, _) -> not (Pid.equal p pid)) entries)

let local_service_lookup host ~service ~origin =
  match Hashtbl.find_opt host.services service with
  | None -> None
  | Some entries ->
      List.find_opt (fun (_, sc) -> Service.visible ~registered:sc ~origin) entries
      |> Option.map fst

(* --- replicated services: a logical service id bound to a group --- *)

let register_service_group d ~service ~group policy =
  (* The only randomness replica selection consumes: the round-robin
     cursor's starting point. Drawn here, once, so a domain that never
     registers a group draws nothing and replays bit-identically. *)
  let cursor = Vsim.Prng.int d.domain_prng 1024 in
  Hashtbl.replace d.service_groups service
    {
      sg_group = group;
      sg_policy = policy;
      sg_cursor = cursor;
      sg_log = [];
      sg_log_len = 0;
      sg_trim_hw = Hashtbl.create 4;
    }

let clear_service_group d ~service = Hashtbl.remove d.service_groups service

let service_group d ~service =
  Option.map (fun sg -> sg.sg_group) (Hashtbl.find_opt d.service_groups service)

let service_group_policy d ~service =
  Option.map (fun sg -> sg.sg_policy) (Hashtbl.find_opt d.service_groups service)

let registered_service_groups d =
  Hashtbl.fold (fun service sg acc -> (service, sg.sg_group) :: acc)
    d.service_groups []
  |> List.sort compare

let local_group_members host ~group =
  match Hashtbl.find_opt host.group_members group with Some l -> l | None -> []

(* The live members of a group visible from [requester]: on an up host,
   not partitioned away, process alive — sorted by (address, local pid)
   so every host enumerates them identically. *)
let reachable_group_members d ~requester ~group =
  Hashtbl.fold
    (fun addr h acc ->
      if h.host_up && Ethernet.reachable d.net requester addr then
        List.fold_left
          (fun acc pid ->
            match Hashtbl.find_opt h.processes (Pid.local_pid pid) with
            | Some p when p.proc_alive -> (pid, addr) :: acc
            | Some _ | None -> acc)
          acc
          (local_group_members h ~group)
      else acc)
    d.all_hosts []
  |> List.sort (fun (p1, a1) (p2, a2) ->
         compare (a1, Pid.local_pid p1) (a2, Pid.local_pid p2))

let service_group_members d ~requester ~service =
  match Hashtbl.find_opt d.service_groups service with
  | None -> []
  | Some sg ->
      List.map fst (reachable_group_members d ~requester ~group:sg.sg_group)

(* Ordered write-all log for a replicated service: appended pending at
   fan-out start, committed or aborted when the fan-out resolves, read
   back (committed entries, oldest first) by a member catching up. The
   log is capped: once it exceeds [sg_log_cap] committed entries the
   oldest are trimmed, with the per-origin trim high-water mark kept so
   a catch-up can detect that replay alone can no longer cover it. *)
let sg_log_cap = 1024

let sg_trim sg =
  if sg.sg_log_len > sg_log_cap then begin
    let rec split n = function
      | [] -> ([], [])
      | e :: rest ->
          if n = 0 then ([], e :: rest)
          else
            let kept, dropped = split (n - 1) rest in
            (e :: kept, dropped)
    in
    let kept, dropped = split sg_log_cap sg.sg_log in
    (* A pending entry is always recent (a fan-out resolves within one
       coordinator request), so only committed entries can age into the
       dropped tail; keep any pending stragglers regardless. *)
    let stragglers = List.filter (fun e -> not e.le_committed) dropped in
    List.iter
      (fun e ->
        if e.le_committed then
          let prev =
            match Hashtbl.find_opt sg.sg_trim_hw e.le_origin with
            | Some s -> s
            | None -> 0
          in
          Hashtbl.replace sg.sg_trim_hw e.le_origin (max prev e.le_seq))
      dropped;
    sg.sg_log <- kept @ stragglers;
    sg.sg_log_len <- List.length sg.sg_log
  end

let log_group_write d ~service ~origin ~seq msg =
  match Hashtbl.find_opt d.service_groups service with
  | None -> ()
  | Some sg ->
      sg.sg_log <-
        { le_origin = origin; le_seq = seq; le_msg = msg; le_committed = false }
        :: sg.sg_log;
      sg.sg_log_len <- sg.sg_log_len + 1;
      sg_trim sg

let commit_group_write d ~service ~origin ~seq =
  match Hashtbl.find_opt d.service_groups service with
  | None -> ()
  | Some sg ->
      List.iter
        (fun e ->
          if e.le_origin = origin && e.le_seq = seq then e.le_committed <- true)
        sg.sg_log

let abort_group_write d ~service ~origin ~seq =
  match Hashtbl.find_opt d.service_groups service with
  | None -> ()
  | Some sg ->
      sg.sg_log <-
        List.filter
          (fun e ->
            not (e.le_origin = origin && e.le_seq = seq && not e.le_committed))
          sg.sg_log;
      sg.sg_log_len <- List.length sg.sg_log

let group_write_log d ~service =
  match Hashtbl.find_opt d.service_groups service with
  | None -> []
  | Some sg ->
      List.rev
        (List.filter_map
           (fun e ->
             if e.le_committed then Some (e.le_origin, e.le_seq, e.le_msg)
             else None)
           sg.sg_log)

let group_write_pending d ~service =
  match Hashtbl.find_opt d.service_groups service with
  | None -> false
  | Some sg -> List.exists (fun e -> not e.le_committed) sg.sg_log

let group_write_trimmed d ~service =
  match Hashtbl.find_opt d.service_groups service with
  | None -> []
  | Some sg ->
      Hashtbl.fold (fun origin seq acc -> (origin, seq) :: acc) sg.sg_trim_hw []
      |> List.sort compare

(* GetPid against the service-group registry: the service has a
   registered group with at least one live reachable member. Split into
   an availability check and the choice itself so only the choice
   advances the round-robin cursor (a guard must not). *)
let balanced_lookup_available host ~service =
  let d = host.domain in
  match Hashtbl.find_opt d.service_groups service with
  | None -> false
  | Some sg ->
      reachable_group_members d ~requester:host.addr ~group:sg.sg_group <> []

let balanced_choice host ~service =
  let d = host.domain in
  match Hashtbl.find_opt d.service_groups service with
  | None -> None
  | Some sg -> (
      match reachable_group_members d ~requester:host.addr ~group:sg.sg_group with
      | [] -> None
      | members ->
          let choice =
            Balancer.pick sg.sg_policy ~cursor:sg.sg_cursor ~origin:host.addr
              members
          in
          (match sg.sg_policy with
          | Balancer.Round_robin -> sg.sg_cursor <- sg.sg_cursor + 1
          | Balancer.Nearest_host -> ());
          (match choice with
          | Some pid ->
              if obs_events_on host then
                event_log host ~cat:Vobs.Eventlog.Balancer
                  "pick service %d -> %a (%d reachable)" service Pid.pp pid
                  (List.length members)
          | None -> ());
          choice)

let get_pid proc ~service scope =
  check_alive proc;
  let host = proc.proc_host in
  let d = host.domain in
  count_op host "get-pid";
  charge proc Calibration.getpid_check_cpu;
  match local_service_lookup host ~service ~origin:`Local_query with
  | Some pid when alive d pid -> Some pid
  | _ when scope = Service.Local -> None
  | _ when balanced_lookup_available host ~service ->
      count_op host "get-pid-balanced";
      balanced_choice host ~service
  | _ when d.getpid_cache_on && Hashtbl.mem host.getpid_cache service ->
      (* Cached broadcast result. Deliberately no liveness check: the
         cache is validated on use — the failure of the send or forward
         that follows is what invalidates it (drop_cached_pid). *)
      count_op host "get-pid-cached";
      Some (Hashtbl.find host.getpid_cache service)
  | _ ->
      (* Broadcast query; first responder wins (§4.2). *)
      charge proc Calibration.small_packet_send_cpu;
      let txn = fresh_txn d in
      let answer =
        block proc (fun fire ->
            let deadline = ref None in
            let settle pid_opt =
              if Hashtbl.mem host.getpid_waits txn then begin
                Hashtbl.remove host.getpid_waits txn;
                (match !deadline with
                | Some tm -> Engine.cancel d.engine tm
                | None -> ());
                fire (Ok pid_opt)
              end
            in
            Hashtbl.replace host.getpid_waits txn settle;
            transmit host ~dst:Ethernet.Broadcast
              ~payload_bytes:control_payload_bytes
              (Getpid_query { txn; requester_addr = host.addr; service });
            deadline :=
              Some
                (Engine.timer ~delay:Calibration.getpid_timeout_ms d.engine
                   (fun () -> settle None)))
      in
      (if d.getpid_cache_on then
         match answer with
         | Some pid -> Hashtbl.replace host.getpid_cache service pid
         | None -> ());
      answer

(* Enable or disable the GetPid result cache; disabling flushes every
   host's cache so behaviour reverts exactly to the uncached kernel. *)
let set_getpid_cache d flag =
  d.getpid_cache_on <- flag;
  if not flag then
    Hashtbl.iter (fun _ host -> Hashtbl.reset host.getpid_cache) d.all_hosts

let getpid_cache_enabled d = d.getpid_cache_on

(* On-use invalidation: a send or forward to the cached pid failed, so
   the binding is stale. The caller's client sees that failure and
   retries; the retry's GetPid broadcasts afresh. *)
let drop_cached_pid proc ~service =
  let host = proc.proc_host in
  if Hashtbl.mem host.getpid_cache service then begin
    Hashtbl.remove host.getpid_cache service;
    count_op host "get-pid-stale"
  end

(* --- process groups and multicast Send (§2.3, §7) --- *)

let create_group d =
  let g = d.next_group in
  d.next_group <- g + 1;
  g

let join_group host ~group pid =
  let members =
    match Hashtbl.find_opt host.group_members group with Some l -> l | None -> []
  in
  if not (List.exists (Pid.equal pid) members) then begin
    Hashtbl.replace host.group_members group (pid :: members);
    Ethernet.join_group host.domain.net ~group ~addr:host.addr
  end

let leave_group host ~group pid =
  match Hashtbl.find_opt host.group_members group with
  | None -> ()
  | Some members ->
      let members = List.filter (fun p -> not (Pid.equal p pid)) members in
      if members = [] then begin
        Hashtbl.remove host.group_members group;
        Ethernet.leave_group host.domain.net ~group ~addr:host.addr
      end
      else Hashtbl.replace host.group_members group members

(* [send_group proc ~group msg] multicasts to every member of the group
   and blocks for the first reply, V's group-send semantics. Members on
   the sender's own host are delivered directly (the wire does not loop
   frames back). *)
let send_group proc ~group msg =
  check_alive proc;
  let host = proc.proc_host in
  let d = host.domain in
  Vsim.Stats.Counter.incr d.ipc_transactions;
  count_op host "group-send";
  if tracing d then trace d "GroupSend %a -> group%d" Pid.pp proc.pid group;
  charge proc Calibration.small_packet_send_cpu;
  let txn = fresh_txn d in
  let result =
    try
      Ok
        (block proc (fun fire ->
             let pending =
               {
                 p_fire = fire;
                 p_buffer = None;
                 p_retransmit = None;
                 p_timeout = None;
               }
             in
             Hashtbl.replace host.pendings txn pending;
             (* local members *)
             List.iter
               (fun member_pid ->
                 match find_process d member_pid with
                 | Some member when member.proc_host == host ->
                     Engine.schedule ~delay:Calibration.local_ipc_leg_cpu d.engine
                       (fun () ->
                         register_serving host ~sender:proc.pid
                           ~receiver:member.pid ~txn;
                         deliver member { d_sender = proc.pid; d_msg = msg })
                 | Some _ | None -> ())
               (local_group_members host ~group);
             transmit host ~dst:(Ethernet.Multicast group)
               ~payload_bytes:(message_payload_bytes d msg)
               (Group_request { txn; sender = proc.pid; group; msg });
             pending.p_timeout <-
               Some
                 (Engine.timer ~delay:Calibration.getpid_timeout_ms d.engine
                    (fun () ->
                      fill_pending host ~txn (Error (Ipc_error No_reply))))))
    with Ipc_error e -> Error e
  in
  drop_pending host ~txn;
  result

(* [forward_group proc ~from_ ~group msg] forwards the transaction of
   blocked sender [from_] to every member of a process group; whichever
   member replies first completes the transaction (later replies are
   dropped at the sender). This is the §7 mechanism by which "a single
   context could be implemented transparently by a group of servers". *)
let forward_group proc ~from_ ~group msg =
  check_alive proc;
  let host = proc.proc_host in
  let d = host.domain in
  match Hashtbl.find_opt host.serving (from_, proc.pid) with
  | None -> Error Not_awaiting_reply
  | Some txn ->
      Hashtbl.remove host.serving (from_, proc.pid);
      count_op host "forward-group";
      if tracing d then
        trace d "ForwardGroup %a: %a -> group%d" Pid.pp proc.pid Pid.pp from_
          group;
      charge proc Calibration.small_packet_send_cpu;
      (* Members on this host are delivered directly (no wire loopback). *)
      List.iter
        (fun member_pid ->
          match find_process d member_pid with
          | Some member when member.proc_host == host ->
              Engine.schedule ~delay:Calibration.local_ipc_leg_cpu d.engine
                (fun () ->
                  register_serving host ~sender:from_ ~receiver:member.pid ~txn;
                  deliver member { d_sender = from_; d_msg = msg })
          | Some _ | None -> ())
        (local_group_members host ~group);
      transmit host ~dst:(Ethernet.Multicast group)
        ~payload_bytes:(message_payload_bytes d msg)
        (Group_request { txn; sender = from_; group; msg });
      Ok ()

(* --- packet handling --- *)

let handle_packet host (frame : 'm packet Ethernet.frame) =
  let d = host.domain in
  match frame.Ethernet.payload with
  | Request { txn; sender; target; msg } ->
      Engine.schedule ~delay:(remote_recv_cost d msg) d.engine (fun () ->
          if host.host_up then
            match Hashtbl.find_opt host.completed_replies txn with
            | Some (reply_addr, reply_packet, reply_bytes) ->
                (* Duplicate of a completed transaction: the reply frame
                   was lost; replay it. *)
                transmit host ~dst:(Ethernet.Unicast reply_addr)
                  ~payload_bytes:reply_bytes reply_packet
            | None -> (
                let live_target =
                  match Hashtbl.find_opt host.processes (Pid.local_pid target) with
                  | Some p
                    when p.proc_alive
                         && Pid.logical_host target = host.logical_host ->
                      Some p
                  | Some _ | None -> None
                in
                match (Hashtbl.mem host.delivered_txns txn, live_target) with
                | false, Some target_proc ->
                    Hashtbl.replace host.delivered_txns txn ();
                    dispatch_local_request host ~txn ~sender ~target_proc msg
                | true, Some _ ->
                    () (* duplicate; the server is still working on it *)
                | _, None ->
                    (* Never deliverable — or the serving process died
                       mid-transaction and a retransmission probed it:
                       tell the sender. A request addressed to a previous
                       incarnation of this host nacks Timeout, not
                       Nonexistent_process: this incarnation knows
                       nothing about the old one's pids, only that the
                       transaction can never complete (satellites of the
                       crash were lost with it). *)
                    let reason =
                      if Pid.logical_host target <> host.logical_host then
                        Timeout
                      else Nonexistent_process
                    in
                    transmit host ~dst:(Ethernet.Unicast frame.Ethernet.src)
                      ~payload_bytes:control_payload_bytes
                      (Nack { txn; reason })))
  | Reply_pkt { txn; replier; msg } ->
      Engine.schedule ~delay:(remote_recv_cost d msg) d.engine (fun () ->
          if host.host_up then fill_pending host ~txn (Ok (msg, replier)))
  | Nack { txn; reason } ->
      Engine.schedule ~delay:Calibration.small_packet_recv_cpu d.engine (fun () ->
          if host.host_up then fill_pending host ~txn (Error (Ipc_error reason)))
  | Getpid_query { txn; requester_addr; service } ->
      Engine.schedule
        ~delay:(Calibration.small_packet_recv_cpu +. Calibration.getpid_check_cpu)
        d.engine
        (fun () ->
          if host.host_up then
            match local_service_lookup host ~service ~origin:`Remote_query with
            | Some pid when alive d pid ->
                transmit host ~dst:(Ethernet.Unicast requester_addr)
                  ~payload_bytes:control_payload_bytes
                  (Getpid_reply { txn; pid })
            | Some _ | None -> ())
  | Getpid_reply { txn; pid } ->
      Engine.schedule ~delay:Calibration.small_packet_recv_cpu d.engine (fun () ->
          if host.host_up then
            match Hashtbl.find_opt host.getpid_waits txn with
            | None -> () (* already answered or timed out *)
            | Some settle -> settle (Some pid))
  | Move_request { txn; mv; mover_addr; len } ->
      Engine.schedule ~delay:Calibration.small_packet_recv_cpu d.engine (fun () ->
          if host.host_up then
            match Hashtbl.find_opt host.pendings txn with
            | Some { p_buffer = Some buf; _ } when len <= Bytes.length buf ->
                stream_chunks host ~dst_addr:mover_addr (Bytes.sub buf 0 len)
                  (fun ~seq:_ ~last ~chunk -> Move_data { mv; last; data = chunk })
            | Some _ | None ->
                transmit host ~dst:(Ethernet.Unicast mover_addr)
                  ~payload_bytes:control_payload_bytes
                  (Move_ack { mv; outcome = Error Bad_buffer }))
  | Move_data { mv; last; data } -> (
      match Hashtbl.find_opt host.moves mv with
      | None -> ()
      | Some op ->
          Buffer.add_bytes op.mv_buf data;
          if last then begin
            ignore (take_move host ~mv : 'm move_op option);
            Engine.schedule ~delay:Calibration.bulk_packet_recv_cpu d.engine
              (fun () ->
                if host.host_up then op.mv_fire (Ok (Buffer.to_bytes op.mv_buf)))
          end)
  | Move_to_data { txn; mv; mover_addr; seq; last; data } -> (
      match Hashtbl.find_opt host.pendings txn with
      | Some { p_buffer = Some buf; _ }
        when (seq * Calibration.bulk_packet_bytes) + Bytes.length data
             <= Bytes.length buf ->
          Bytes.blit data 0 buf (seq * Calibration.bulk_packet_bytes)
            (Bytes.length data);
          if last then
            Engine.schedule ~delay:Calibration.bulk_packet_recv_cpu d.engine
              (fun () ->
                if host.host_up then
                  transmit host ~dst:(Ethernet.Unicast mover_addr)
                    ~payload_bytes:control_payload_bytes
                    (Move_ack { mv; outcome = Ok () }))
      | Some _ | None ->
          if last then
            transmit host ~dst:(Ethernet.Unicast mover_addr)
              ~payload_bytes:control_payload_bytes
              (Move_ack { mv; outcome = Error Bad_buffer }))
  | Move_ack { mv; outcome } ->
      Engine.schedule ~delay:Calibration.small_packet_recv_cpu d.engine (fun () ->
          match take_move host ~mv with
          | None -> ()
          | Some op -> (
              match outcome with
              | Ok () -> op.mv_fire (Ok Bytes.empty)
              | Error e -> op.mv_fire (Error (Ipc_error e))))
  | Group_request { txn; sender; group; msg } ->
      Engine.schedule ~delay:(remote_recv_cost d msg) d.engine (fun () ->
          if host.host_up then begin
            List.iter
              (fun member_pid ->
                match Hashtbl.find_opt host.processes (Pid.local_pid member_pid) with
                | Some member when member.proc_alive ->
                    register_serving host ~sender ~receiver:member.pid ~txn;
                    deliver member { d_sender = sender; d_msg = msg }
                | Some _ | None -> ())
              (local_group_members host ~group)
          end)

(* --- domain and host lifecycle --- *)

(* [hosts_hint] presizes the domain-wide host tables (only — per-host
   tables keep their defaults, since a hashtable's initial bucket count
   shapes its fold order and the experiments' replay depends on it).
   Every domain-level fold sorts its result before use, so the hint is
   pure capacity; large soaks (e12's 10k hosts) pass it to avoid
   rehash-storms at boot. *)
let create_domain ?(seed = 42) ?(hosts_hint = 16) ~cost engine net =
  let d =
    {
      engine;
      net;
      cost;
      next_txn = 1;
      next_mv = 1;
      next_logical_host = 1;
      next_group = 1;
      logical_hosts = Hashtbl.create hosts_hint;
      retired_logical_hosts = Hashtbl.create 16;
      all_hosts = Hashtbl.create hosts_hint;
      service_groups = Hashtbl.create 8;
      domain_prng = Vsim.Prng.create ~seed;
      trace = None;
      domain_obs = None;
      trace_of = (fun _ -> 0);
      getpid_cache_on = false;
      ipc_transactions = Vsim.Stats.Counter.create "ipc-transactions";
      tel_interval = 0.0;
      tel_next = 0.0;
      tel_groups = Hashtbl.create 64;
      tel_watched = [];
    }
  in
  d

let ipc_transaction_count d = Vsim.Stats.Counter.value d.ipc_transactions

let fresh_logical_host d =
  let lh = d.next_logical_host in
  if lh > Pid.max_logical_host then failwith "Kernel: logical host space exhausted";
  d.next_logical_host <- lh + 1;
  lh

let boot_host d ~name addr =
  if Hashtbl.mem d.all_hosts addr then
    invalid_arg "Kernel.boot_host: address in use";
  let host =
    {
      domain = d;
      addr;
      host_name = name;
      logical_host = fresh_logical_host d;
      host_up = true;
      processes = Hashtbl.create 16;
      services = Hashtbl.create 8;
      serving = Hashtbl.create 16;
      pendings = Hashtbl.create 16;
      moves = Hashtbl.create 8;
      getpid_waits = Hashtbl.create 8;
      getpid_cache = Hashtbl.create 8;
      delivered_txns = Hashtbl.create 64;
      completed_replies = Hashtbl.create 64;
      group_members = Hashtbl.create 8;
      host_prng = Vsim.Prng.split d.domain_prng;
      host_hot = None;
      h_sends = 0;
      h_receives = 0;
      h_replies = 0;
      h_admits = 0;
      h_sheds = 0;
      h_sends_flushed = 0;
      h_receives_flushed = 0;
      h_replies_flushed = 0;
      h_admits_flushed = 0;
      h_sheds_flushed = 0;
    }
  in
  Hashtbl.replace d.all_hosts addr host;
  Hashtbl.replace d.logical_hosts host.logical_host host;
  Ethernet.attach d.net addr (fun frame -> handle_packet host frame);
  if telemetry_enabled d then register_telemetry_host d host;
  host

let host_of_addr d addr = Hashtbl.find_opt d.all_hosts addr

let hosts d =
  Hashtbl.fold (fun _ h acc -> h :: acc) d.all_hosts []
  |> List.sort (fun a b -> compare a.addr b.addr)

(* Crash a host: every process dies, every table is cleared, the wire
   stops delivering to it. Pids minted on the dead logical host become
   permanently invalid (a restarted host gets a fresh logical host id,
   modelling V's avoidance of pid reuse). *)
let crash_host host =
  if host.host_up then begin
    let d = host.domain in
    trace d "Crash host %s" host.host_name;
    host.host_up <- false;
    Ethernet.set_host_up d.net host.addr false;
    Hashtbl.remove d.logical_hosts host.logical_host;
    Hashtbl.replace d.retired_logical_hosts host.logical_host host.addr;
    let procs = Hashtbl.fold (fun _ p acc -> p :: acc) host.processes [] in
    List.iter
      (fun proc ->
        proc.proc_alive <- false;
        match proc.abort with
        | Some abort -> abort (Proc.Killed "host crash")
        | None -> ())
      procs;
    Hashtbl.reset host.processes;
    Hashtbl.reset host.services;
    Hashtbl.reset host.serving;
    (* Disarm the dead transactions' probe timers so the crash leaves no
       machinery ticking for a table that no longer exists. *)
    Hashtbl.iter (fun _ p -> cancel_pending_timers host p) host.pendings;
    Hashtbl.reset host.pendings;
    Hashtbl.iter
      (fun _ op ->
        match op.mv_timer with
        | Some tm -> Engine.cancel d.engine tm
        | None -> ())
      host.moves;
    Hashtbl.reset host.moves;
    Hashtbl.reset host.getpid_waits;
    Hashtbl.reset host.getpid_cache;
    Hashtbl.reset host.delivered_txns;
    Hashtbl.reset host.completed_replies;
    Hashtbl.iter
      (fun group _ -> Ethernet.leave_group d.net ~group ~addr:host.addr)
      host.group_members;
    Hashtbl.reset host.group_members
  end

let restart_host host =
  if host.host_up then invalid_arg "Kernel.restart_host: host is up";
  let d = host.domain in
  trace d "Restart host %s" host.host_name;
  host.logical_host <- fresh_logical_host d;
  host.host_up <- true;
  Hashtbl.replace d.logical_hosts host.logical_host host;
  Ethernet.set_host_up d.net host.addr true

