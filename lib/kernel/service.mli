(** Service naming (paper §4.2): processes register as providing a
    numbered service within a scope; clients bind service to server pid
    at time of use via GetPid. *)

(** Visibility of a registration: [Local] to this machine, [Remote]
    (network-visible only), or [Both]. A machine may run a Local server
    and advertise a different public one for the same service. *)
type scope = Local | Remote | Both

val pp_scope : Format.formatter -> scope -> unit

(** Does a registration answer a lookup arriving from the given
    origin? *)
val visible :
  registered:scope -> origin:[ `Local_query | `Remote_query ] -> bool

(** Well-known service identifiers used by the standard installation
    (the kernel itself does not interpret these values). *)
module Id : sig
  val storage : int
  val context_prefix : int
  val time : int
  val printer : int
  val terminal : int
  val mail : int
  val exception_handler : int
  val program_manager : int

  (** The §2.1 centralized baseline. *)
  val name_server : int

  val internet : int

  (** The virtual graphics terminal (window) server. *)
  val vgts : int

  (** A directory service implemented by a replica group (§7). *)
  val replica_storage : int

  val to_string : int -> string
end
