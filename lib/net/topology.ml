(* Fabric topology: how hosts are wired together.

   [Shared_medium] is the paper's single 3 Mbit Ethernet — every frame
   serializes on one wire. [Switched] is a two-tier switched fabric:
   hosts attach to edge switches ([fan_in] hosts per edge, by address
   range), and every edge switch uplinks to one spine. Each cable is a
   full-duplex pair of directed links that carry traffic independently,
   so segments transmit concurrently and aggregate throughput scales
   with the edge count instead of being pinned to one wire.

   This module is pure data and arithmetic: which edge a host hangs
   off, which nodes a frame visits between two hosts, which directed
   links that path crosses. The queueing and timing live in
   {!Ethernet}. *)

type t = Shared_medium | Switched of { fan_in : int }

type node = Host of int | Edge of int | Spine

let switched ~fan_in =
  if fan_in < 1 then invalid_arg "Topology.switched: fan_in must be >= 1";
  Switched { fan_in }

let equal_node a b =
  match (a, b) with
  | Host x, Host y | Edge x, Edge y -> x = y
  | Spine, Spine -> true
  | _ -> false

let pp_node ppf = function
  | Host a -> Fmt.pf ppf "host%d" a
  | Edge e -> Fmt.pf ppf "edge%d" e
  | Spine -> Fmt.string ppf "spine"

let node_to_string n = Fmt.str "%a" pp_node n

(* Parse what [pp_node] prints; the vsh `net` command round-trips
   through this. *)
let node_of_string s =
  let prefixed p =
    let n = String.length p in
    if String.length s > n && String.sub s 0 n = p then
      int_of_string_opt (String.sub s n (String.length s - n))
    else None
  in
  if s = "spine" then Some Spine
  else
    match prefixed "host" with
    | Some a -> Some (Host a)
    | None -> (
        match prefixed "edge" with Some e -> Some (Edge e) | None -> None)

let pp ppf = function
  | Shared_medium -> Fmt.string ppf "shared medium (single wire)"
  | Switched { fan_in } ->
      Fmt.pf ppf "switched fabric (%d hosts per edge switch, one spine)"
        fan_in

(* Which edge switch serves a host address. Addresses are arbitrary
   non-negative ints (the installation's address plan), so the mapping
   is a plain range partition. *)
let edge_of ~fan_in addr =
  if addr < 0 then invalid_arg "Topology.edge_of: negative address";
  addr / fan_in

(* The nodes a frame visits from [src] to [dst], endpoints included.
   Same edge: host -> edge -> host. Across edges: host -> edge ->
   spine -> edge -> host. [Shared_medium] has no interior nodes. *)
let path t ~src ~dst =
  match t with
  | Shared_medium -> [ Host src; Host dst ]
  | Switched { fan_in } ->
      let ea = edge_of ~fan_in src and eb = edge_of ~fan_in dst in
      if ea = eb then [ Host src; Edge ea; Host dst ]
      else [ Host src; Edge ea; Spine; Edge eb; Host dst ]

(* Directed links crossed by a node path, in traversal order. *)
let rec links_of_path = function
  | a :: (b :: _ as rest) -> (a, b) :: links_of_path rest
  | [ _ ] | [] -> []

let links t ~src ~dst = links_of_path (path t ~src ~dst)

(* Store-and-forward hops between two hosts: the number of directed
   links a frame is serialized onto. 1 on the shared wire. *)
let hop_count t ~src ~dst = List.length (links t ~src ~dst)

let pp_link ppf (a, b) = Fmt.pf ppf "%a->%a" pp_node a pp_node b
let link_label l = Fmt.str "%a" pp_link l

(* Split a [link_label] back into its nodes; [None] for anything that
   is not "a->b" with two parseable nodes. *)
let link_of_label s =
  let n = String.length s in
  let rec find i =
    if i + 1 >= n then None
    else if s.[i] = '-' && s.[i + 1] = '>' then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i -> (
      match
        ( node_of_string (String.sub s 0 i),
          node_of_string (String.sub s (i + 2) (n - i - 2)) )
      with
      | Some a, Some b -> Some (a, b)
      | _ -> None)

(* The rollup group for a telemetry leaf scope named after this
   topology's nodes or links: hosts group under their edge switch, and
   a link groups under the edge it touches — so per-edge rollup rows
   aggregate a whole segment (the edge's hosts, their access links and
   its uplink). Labels that are not topology-shaped (kernel host
   names, "obs", ...) and the shared medium (no segments to group by)
   yield [None]: the leaf still reaches the fleet level. *)
let rollup_scope t label =
  match t with
  | Shared_medium -> None
  | Switched { fan_in } -> (
      let edge_scope e = Some (node_to_string (Edge e)) in
      let node_scope = function
        | Host h -> if h >= 0 then edge_scope (edge_of ~fan_in h) else None
        | Edge e -> edge_scope e
        | Spine -> None
      in
      match link_of_label label with
      | Some (a, b) -> (
          match (a, b) with
          | (Edge e, _ | _, Edge e) -> edge_scope e
          | _ -> None)
      | None -> (
          match node_of_string label with
          | Some node -> node_scope node
          | None -> None))

(* Is [(a, b)] a directed link of the topology's graph? Both directions
   of a cable are valid, independent links. The shared medium has no
   links at all. *)
let is_link t (a, b) =
  match t with
  | Shared_medium -> false
  | Switched { fan_in } -> (
      match (a, b) with
      | Host h, Edge e | Edge e, Host h -> h >= 0 && edge_of ~fan_in h = e
      | Edge e, Spine | Spine, Edge e -> e >= 0
      | _ -> false)
