(* Cost-model constants, in simulated milliseconds.

   The constants are calibrated ONCE against the kernel IPC figures the
   paper reports for 10 MHz SUN workstations on 3 Mbit Ethernet
   (Cheriton & Mann §3.1 and §6, and the SOSP'83 V kernel paper for the
   local message transaction):

     - local Send-Receive-Reply                        0.77 ms
     - remote Send-Receive-Reply, 32-byte messages     2.56 ms
     - MoveTo of 64 KB (data already buffered)         338  ms
     - Open, current context, server local             1.21 ms
     - Open, current context, server remote            3.70 ms
     - Open via context prefix, server local           5.14 ms
     - Open via context prefix, server remote          7.69 ms

   Every other number the benchmark harness prints is then a prediction
   of the model, not a separate fit. EXPERIMENTS.md records the derivation
   of each constant. *)

type network = {
  name : string;
  bandwidth_bps : float;  (** raw signalling rate *)
  header_bytes : int;  (** Ethernet + inter-kernel protocol header *)
  propagation_ms : float;  (** end-to-end propagation + preamble *)
}

let ethernet_3mbit =
  { name = "3Mb Ethernet"; bandwidth_bps = 3.0e6; header_bytes = 64; propagation_ms = 0.01 }

let ethernet_10mbit =
  { name = "10Mb Ethernet"; bandwidth_bps = 1.0e7; header_bytes = 64; propagation_ms = 0.01 }

(* Time on the wire for a frame carrying [payload_bytes]. *)
let transmission_ms net ~payload_bytes =
  float_of_int ((net.header_bytes + payload_bytes) * 8) /. net.bandwidth_bps *. 1000.0

(* Store-and-forward latency charged each time a switch takes a frame
   off one link and queues it on the next: header inspection plus the
   output-port table walk. Only the switched fabric (Topology.Switched)
   pays it — the shared medium has no switches. The figure is an
   early-1990s cut-through LAN switch, scaled to the same 68000-class
   era as the host CPU charges. *)
let switch_forward_ms = 0.02

(* --- Host CPU charges (68000-class processors) --- *)

(* Kernel send-path CPU per small (message-sized) packet. *)
let small_packet_send_cpu = 0.51

(* Kernel receive-path CPU per small packet, including scheduling the
   destination process. *)
let small_packet_recv_cpu = 0.504

(* One leg (request or reply) of a purely local message transaction:
   0.77 ms round trip. *)
let local_ipc_leg_cpu = 0.385

(* Copying an appended segment (e.g. a CSname) into the receiving
   server: across the network / between local address spaces. *)
let segment_copy_remote_cpu = 0.66

(* Local delivery passes segments within one machine; the cost is
   already inside the 0.77 ms local transaction figure. *)
let segment_copy_local_cpu = 0.0

(* Local MoveTo/MoveFrom memcpy per 512-byte page. *)
let local_move_page_cpu = 0.05

(* Bulk-transfer (MoveTo/MoveFrom) CPU per 512-byte data packet. The
   sender cost dominates the wire on 3 Mbit Ethernet, reproducing the
   paper's observation that program loading runs at host speed. *)
let bulk_packet_send_cpu = 2.64
let bulk_packet_recv_cpu = 2.0
let bulk_packet_bytes = 512

(* --- Naming-path CPU charges --- *)

(* Client stub: building the request message and processing the reply. *)
let client_stub_cpu = 0.20

(* Server-side common CSname header processing (the part of Open that is
   not server-specific). *)
let csname_common_cpu = 0.24

(* Context prefix server: parsing the '[prefix]' and rewriting the
   request before forwarding. Dominates the 3.94-3.99 ms additive cost
   the paper measures for prefixed Opens. *)
let prefix_parse_cpu = 3.55

(* Hash/table lookup of one name component in a directory that is
   already buffered. *)
let component_lookup_cpu = 0.12

(* GetPid broadcast: responder-side table check. *)
let getpid_check_cpu = 0.05

(* Fabricating one context-directory description record on demand
   (§5.6). *)
let descriptor_fabricate_cpu = 0.02

(* --- Storage --- *)

(* The paper's stream measurement assumes "a disk delivering a 512 byte
   page every 15 milliseconds". *)
let disk_page_ms = 15.0
let disk_page_bytes = 512

(* Kernel timeout used to detect unreachable hosts (retransmission
   budget exhausted). Value is generous; only failure paths see it. *)
let ipc_timeout_ms = 500.0

(* How long a broadcast GetPid (or group Send) waits for the first
   responder before giving up. *)
let getpid_timeout_ms = 20.0

(* How long a sending kernel waits before retransmitting an unanswered
   request packet. Receivers suppress duplicates and replay cached
   replies, so transactions are at-most-once even under loss. *)
let retransmit_interval_ms = 40.0
