(** Cost-model constants, in simulated milliseconds.

    Calibrated once against the kernel IPC figures the paper reports for
    10 MHz SUN workstations on 3 Mbit Ethernet (Cheriton & Mann §3.1 and
    §6); every other number the benchmark harness prints is a prediction
    of the model. EXPERIMENTS.md records the derivation of each
    constant. *)

type network = {
  name : string;
  bandwidth_bps : float;  (** raw signalling rate *)
  header_bytes : int;  (** Ethernet + inter-kernel protocol header *)
  propagation_ms : float;  (** end-to-end propagation + preamble *)
}

val ethernet_3mbit : network
val ethernet_10mbit : network

(** Time on the wire for a frame carrying [payload_bytes]. *)
val transmission_ms : network -> payload_bytes:int -> float

(** Store-and-forward latency charged per switch hop in a
    {!Topology.Switched} fabric (header inspection + output-port
    lookup). The shared medium has no switches and never pays it. *)
val switch_forward_ms : float

(** {1 Host CPU charges (68000-class processors)} *)

(** Kernel send-path CPU per small (message-sized) packet. *)
val small_packet_send_cpu : float

(** Kernel receive-path CPU per small packet, including scheduling the
    destination process. *)
val small_packet_recv_cpu : float

(** One leg (request or reply) of a purely local message transaction. *)
val local_ipc_leg_cpu : float

(** Copying an appended segment (e.g. a CSname) into the receiving
    server, across the network / between local address spaces. *)
val segment_copy_remote_cpu : float

(** Local delivery passes segments within one machine; the cost is
    already inside the local transaction figure. *)
val segment_copy_local_cpu : float

(** Local MoveTo/MoveFrom memcpy per 512-byte page. *)
val local_move_page_cpu : float

(** Bulk-transfer (MoveTo/MoveFrom) CPU per data packet. *)
val bulk_packet_send_cpu : float

val bulk_packet_recv_cpu : float
val bulk_packet_bytes : int

(** {1 Naming-path CPU charges} *)

(** Client stub: building the request message and processing the
    reply. *)
val client_stub_cpu : float

(** Server-side common CSname header processing. *)
val csname_common_cpu : float

(** Context prefix server: parsing the ['[prefix]'] and rewriting the
    request before forwarding. *)
val prefix_parse_cpu : float

(** Lookup of one name component in a buffered directory. *)
val component_lookup_cpu : float

(** GetPid broadcast: responder-side table check. *)
val getpid_check_cpu : float

(** Fabricating one context-directory description record on demand
    (§5.6). *)
val descriptor_fabricate_cpu : float

(** {1 Storage and timeouts} *)

val disk_page_ms : float
val disk_page_bytes : int

(** Kernel timeout used to detect unreachable hosts. *)
val ipc_timeout_ms : float

(** How long a broadcast GetPid (or group Send) waits for the first
    responder. *)
val getpid_timeout_ms : float

(** Interval before a sending kernel retransmits an unanswered request
    packet. *)
val retransmit_interval_ms : float
