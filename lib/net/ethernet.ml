(* Simulated shared-medium Ethernet.

   The wire is a single resource: transmissions serialize (a frame waits
   until the medium is free), then propagate to the destination host(s),
   where the attached receive handler runs. Host CPU costs for building
   and consuming packets are charged by the kernel layer, not here; the
   network charges only queueing + transmission + propagation.

   The payload type is a parameter so this library sits below the
   kernel: the kernel instantiates ['a t] with its packet type. *)

type addr = int

type dest = Unicast of addr | Broadcast | Multicast of int

let pp_dest ppf = function
  | Unicast a -> Fmt.pf ppf "host%d" a
  | Broadcast -> Fmt.string ppf "broadcast"
  | Multicast g -> Fmt.pf ppf "group%d" g

type 'a frame = { src : addr; dst : dest; payload : 'a; payload_bytes : int }

type counters = {
  mutable frames_sent : int;
  mutable frames_delivered : int;
  mutable frames_dropped : int;
  mutable bytes_sent : int;
}

type 'a host_port = {
  host_addr : addr;
  mutable up : bool;
  mutable handler : 'a frame -> unit;
  mutable extra_latency_ms : float;
      (* slow-host fault injection: added to every frame's arrival *)
}

type 'a t = {
  engine : Vsim.Engine.t;
  config : Calibration.network;
  prng : Vsim.Prng.t;
  hosts : (addr, 'a host_port) Hashtbl.t;
  groups : (int, (addr, unit) Hashtbl.t) Hashtbl.t;
  mutable wire_free_at : float;
  mutable loss_probability : float;
  (* Unordered host pairs that cannot exchange frames. *)
  mutable partitions : (addr * addr) list;
  counters : counters;
  mutable trace : Vsim.Trace.t option;
  mutable obs : Vobs.Hub.t option;
}

let create ?(seed = 1) ~config engine =
  {
    engine;
    config;
    prng = Vsim.Prng.create ~seed;
    hosts = Hashtbl.create 16;
    groups = Hashtbl.create 16;
    wire_free_at = 0.0;
    loss_probability = 0.0;
    partitions = [];
    counters =
      { frames_sent = 0; frames_delivered = 0; frames_dropped = 0; bytes_sent = 0 };
    trace = None;
    obs = None;
  }

let set_trace t trace = t.trace <- Some trace
let set_obs t hub = t.obs <- Some hub

(* Per-host wire metrics, keyed under server "net". The address stands
   in for the host name — this layer sits below the kernel and has no
   better label. *)
let net_metric ?(by = 1) t addr op =
  match t.obs with
  | None -> ()
  | Some hub ->
      Vobs.Metrics.incr (Vobs.Hub.metrics hub) ~by
        ~host:(Printf.sprintf "host%d" addr)
        ~server:"net" ~op

(* Flight-recorder events for the wire: frames lost or dropped,
   partitions cut and healed, loss-rate and slow-host changes. The
   label is only built when an attached hub's recorder is enabled;
   [host] is "host<addr>" for per-host events, "net" for wire-wide
   ones. *)
let net_event t host fmt =
  match t.obs with
  | Some hub when Vobs.Eventlog.enabled (Vobs.Hub.events hub) ->
      Format.kasprintf
        (fun label ->
          Vobs.Hub.event hub
            ~at:(Vsim.Engine.now t.engine)
            ~cat:Vobs.Eventlog.Net ~host label)
        fmt
  | Some _ | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let host_label addr = Printf.sprintf "host%d" addr

let config t = t.config

let counters t = t.counters

let engine t = t.engine

exception Duplicate_host of addr

let attach t addr handler =
  if Hashtbl.mem t.hosts addr then raise (Duplicate_host addr);
  Hashtbl.replace t.hosts addr
    { host_addr = addr; up = true; handler; extra_latency_ms = 0.0 }

let set_handler t addr handler =
  match Hashtbl.find_opt t.hosts addr with
  | None -> invalid_arg "Ethernet.set_handler: unknown host"
  | Some port -> port.handler <- handler

let host_up t addr =
  match Hashtbl.find_opt t.hosts addr with Some p -> p.up | None -> false

let set_host_up t addr up =
  match Hashtbl.find_opt t.hosts addr with
  | None -> invalid_arg "Ethernet.set_host_up: unknown host"
  | Some port -> port.up <- up

let hosts t = Hashtbl.fold (fun addr _ acc -> addr :: acc) t.hosts [] |> List.sort compare

(* --- multicast groups --- *)

let group_members t group =
  match Hashtbl.find_opt t.groups group with
  | None -> []
  | Some members ->
      Hashtbl.fold (fun a () acc -> a :: acc) members [] |> List.sort compare

let join_group t ~group ~addr =
  let members =
    match Hashtbl.find_opt t.groups group with
    | Some m -> m
    | None ->
        let m = Hashtbl.create 4 in
        Hashtbl.replace t.groups group m;
        m
  in
  Hashtbl.replace members addr ()

let leave_group t ~group ~addr =
  match Hashtbl.find_opt t.groups group with
  | None -> ()
  | Some members -> Hashtbl.remove members addr

(* --- fault injection --- *)

let trace_emit t fmt =
  match t.trace with
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  | Some tr -> Vsim.Trace.emit tr ~category:"net" fmt

let set_loss_probability t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Ethernet.set_loss_probability";
  t.loss_probability <- p;
  (* Audit trail: fault plans that flip the loss rate leave a record in
     the trace stream, the flight recorder and the metrics gauge. *)
  trace_emit t "loss probability := %.3f" p;
  net_event t "net" "loss probability := %.3f" p;
  match t.obs with
  | None -> ()
  | Some hub ->
      Vobs.Metrics.set_gauge (Vobs.Hub.metrics hub) ~host:"net" ~server:"net"
        ~op:"loss-probability" p

let loss_probability t = t.loss_probability

let set_extra_latency t addr ms =
  if ms < 0.0 then invalid_arg "Ethernet.set_extra_latency";
  match Hashtbl.find_opt t.hosts addr with
  | None -> invalid_arg "Ethernet.set_extra_latency: unknown host"
  | Some port ->
      port.extra_latency_ms <- ms;
      trace_emit t "host%d extra receive latency := %.3fms" addr ms;
      net_event t (host_label addr) "extra receive latency := %.3fms" ms

let extra_latency t addr =
  match Hashtbl.find_opt t.hosts addr with
  | Some port -> port.extra_latency_ms
  | None -> 0.0

let partition t a b =
  let pair = if a < b then (a, b) else (b, a) in
  if not (List.mem pair t.partitions) then begin
    t.partitions <- pair :: t.partitions;
    net_event t "net" "partition host%d <-> host%d" (fst pair) (snd pair)
  end

let heal t a b =
  let pair = if a < b then (a, b) else (b, a) in
  if List.mem pair t.partitions then begin
    t.partitions <- List.filter (fun p -> p <> pair) t.partitions;
    net_event t "net" "heal host%d <-> host%d" (fst pair) (snd pair)
  end

let heal_all t = t.partitions <- []

let partitioned t a b =
  let pair = if a < b then (a, b) else (b, a) in
  List.mem pair t.partitions

let pp ppf t =
  let slow =
    Hashtbl.fold
      (fun addr port acc ->
        if port.extra_latency_ms > 0.0 then (addr, port.extra_latency_ms) :: acc
        else acc)
      t.hosts []
    |> List.sort compare
  in
  Fmt.pf ppf
    "net: %d hosts, loss %.3f, %d partitions%a, sent %d delivered %d dropped \
     %d (%dB)"
    (Hashtbl.length t.hosts) t.loss_probability
    (List.length t.partitions)
    Fmt.(
      list ~sep:nop (fun ppf (a, ms) -> pf ppf ", host%d slow +%.1fms" a ms))
    slow t.counters.frames_sent t.counters.frames_delivered
    t.counters.frames_dropped t.counters.bytes_sent

(* --- transmission --- *)

(* Addresses a frame is aimed at, before liveness/partition checks
   (those happen at arrival time, counting drops). *)
let intended_destinations t frame =
  let not_self a = a <> frame.src in
  match frame.dst with
  | Unicast a -> if not_self a then [ a ] else []
  | Broadcast -> List.filter not_self (hosts t)
  | Multicast g -> List.filter not_self (group_members t g)

(* Queue a frame for transmission. The sending host must exist and be
   up; otherwise the frame vanishes (its kernel is dead anyway). *)
let transmit t frame =
  let src_ok =
    match Hashtbl.find_opt t.hosts frame.src with
    | Some port -> port.up
    | None -> false
  in
  if src_ok then begin
    let now = Vsim.Engine.now t.engine in
    let start = Float.max now t.wire_free_at in
    let duration =
      Calibration.transmission_ms t.config ~payload_bytes:frame.payload_bytes
    in
    t.wire_free_at <- start +. duration;
    t.counters.frames_sent <- t.counters.frames_sent + 1;
    t.counters.bytes_sent <-
      t.counters.bytes_sent + t.config.header_bytes + frame.payload_bytes;
    net_metric t frame.src "frames-sent";
    net_metric t frame.src "bytes-sent"
      ~by:(t.config.header_bytes + frame.payload_bytes);
    let arrival = start +. duration +. t.config.propagation_ms in
    trace_emit t "host%d -> %a (%dB payload)" frame.src pp_dest frame.dst
      frame.payload_bytes;
    Vsim.Engine.schedule_at t.engine arrival (fun () ->
        let lost =
          t.loss_probability > 0.0 && Vsim.Prng.float t.prng < t.loss_probability
        in
        if lost then begin
          t.counters.frames_dropped <- t.counters.frames_dropped + 1;
          net_metric t frame.src "frames-lost";
          net_event t (host_label frame.src) "frame lost -> %a (%dB)" pp_dest
            frame.dst frame.payload_bytes
        end
        else
          List.iter
            (fun addr ->
              (* Check liveness and partitions at arrival time: the
                 destination may have crashed while the frame was in
                 flight. *)
              match Hashtbl.find_opt t.hosts addr with
              | Some port when port.up && not (partitioned t frame.src addr) ->
                  let deliver () =
                    t.counters.frames_delivered <-
                      t.counters.frames_delivered + 1;
                    net_metric t addr "frames-delivered";
                    port.handler frame
                  in
                  if port.extra_latency_ms > 0.0 then
                    (* Slow-host injection: the NIC holds the frame. The
                       host may crash while it sits there, so re-check
                       liveness at the deferred delivery time. *)
                    Vsim.Engine.schedule_at t.engine
                      (Vsim.Engine.now t.engine +. port.extra_latency_ms)
                      (fun () ->
                        if port.up then deliver ()
                        else begin
                          t.counters.frames_dropped <-
                            t.counters.frames_dropped + 1;
                          net_metric t addr "frames-dropped"
                        end)
                  else deliver ()
              | Some _ | None ->
                  t.counters.frames_dropped <- t.counters.frames_dropped + 1;
                  net_metric t addr "frames-dropped";
                  net_event t (host_label addr)
                    "frame dropped from host%d (down or partitioned)" frame.src)
            (intended_destinations t frame))
  end
