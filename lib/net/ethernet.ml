(* Simulated network fabric.

   Two topologies share one interface (see {!Topology}):

   - [Shared_medium] (the default): the paper's single wire. A
     transmission waits until the medium is free, then propagates to
     the destination host(s). This path is kept bit-for-bit identical
     to the pre-fabric model: one [wire_free_at], one PRNG draw per
     frame, the same event schedule.

   - [Switched { fan_in }]: hosts hang off edge switches, edges uplink
     to one spine, and every directed link owns its own [l_free_at] —
     independent segments carry traffic concurrently. Each hop is
     store-and-forward: the frame serializes onto the link, propagates,
     pays {!Calibration.switch_forward_ms} on entering a switch, and is
     replicated at switches for broadcast/multicast fan-out (one copy
     per link, not per destination). Each link has a bounded output
     queue: a frame arriving at a full port is tail-dropped and
     counted, per link and globally.

   Host CPU costs for building and consuming packets are charged by the
   kernel layer, not here; the network charges only queueing +
   transmission + propagation (+ per-switch forwarding in the switched
   fabric).

   The payload type is a parameter so this library sits below the
   kernel: the kernel instantiates ['a t] with its packet type. *)

type addr = int

type dest = Unicast of addr | Broadcast | Multicast of int

let pp_dest ppf = function
  | Unicast a -> Fmt.pf ppf "host%d" a
  | Broadcast -> Fmt.string ppf "broadcast"
  | Multicast g -> Fmt.pf ppf "group%d" g

type 'a frame = { src : addr; dst : dest; payload : 'a; payload_bytes : int }

type counters = {
  mutable frames_sent : int;
  mutable frames_delivered : int;
  mutable frames_dropped : int;
  mutable bytes_sent : int;
}

type 'a host_port = {
  host_addr : addr;
  mutable up : bool;
  mutable handler : 'a frame -> unit;
  mutable extra_latency_ms : float;
      (* slow-host fault injection: added to every frame's arrival *)
  (* Per-frame wire counters accumulate in place — the port record is
     already in cache on every transmit/delivery, so counting costs one
     register add and no branch. [flush_metrics] moves the deltas into
     the registry at scrape time (the Prometheus model: instrument
     locally, aggregate on scrape). *)
  mutable p_sent : int;
  mutable p_bytes : int;
  mutable p_delivered : int;
  mutable p_sent_flushed : int;
  mutable p_bytes_flushed : int;
  mutable p_delivered_flushed : int;
  mutable hot : Vobs.Metrics.counter array;
      (* cached flush handles: [|sent; bytes; delivered|], bound on
         first flush with a hub attached, cleared by set_obs *)
}

(* One directed link of the switched fabric. [l_queued] counts frames
   occupying the port — queued, serializing or in flight — and is what
   the bounded-queue admission check reads; [l_busy_ms] accumulates
   serialization time for utilization accounting. *)
type link = {
  link_id : Topology.node * Topology.node;
  mutable l_up : bool;
  mutable l_free_at : float;
  mutable l_queued : int;
  mutable l_queue_peak : int;
  mutable l_frames : int;
  mutable l_drops : int;  (* tail drops + frames dying on a down link *)
  mutable l_busy_ms : float;
  mutable l_extra_ms : float;  (* slow-link fault injection, per hop *)
  mutable l_busy_sampled : float;  (* l_busy_ms at the last ts sample *)
}

type link_stat = {
  ls_label : string;
  ls_up : bool;
  ls_frames : int;
  ls_drops : int;
  ls_queued : int;
  ls_queue_peak : int;
  ls_busy_ms : float;
  ls_extra_ms : float;
}

type 'a t = {
  engine : Vsim.Engine.t;
  config : Calibration.network;
  topology : Topology.t;
  queue_cap : int;
  prng : Vsim.Prng.t;
  hosts : (addr, 'a host_port) Hashtbl.t;
  groups : (int, (addr, unit) Hashtbl.t) Hashtbl.t;
  mutable wire_free_at : float;  (* Shared_medium only *)
  links : (Topology.node * Topology.node, link) Hashtbl.t;  (* Switched only *)
  mutable loss_probability : float;
  (* Unordered host pairs that cannot exchange frames. *)
  mutable partitions : (addr * addr) list;
  counters : counters;
  mutable trace : Vsim.Trace.t option;
  mutable obs : Vobs.Hub.t option;
  mutable last_ts_sample : float;  (* when sample_timeseries last ran *)
  (* Interior (switch-to-switch) links with their three prebuilt series
     names, so a pump firing walks ~O(edges) records and allocates no
     strings. Links materialize lazily, so [get_link] invalidates. *)
  mutable ts_interior : (string * string * string * link) list option;
}

let create ?(seed = 1) ?(topology = Topology.Shared_medium) ?(queue_cap = 256)
    ~config engine =
  if queue_cap < 1 then invalid_arg "Ethernet.create: queue_cap must be >= 1";
  {
    engine;
    config;
    topology;
    queue_cap;
    prng = Vsim.Prng.create ~seed;
    hosts = Hashtbl.create 16;
    groups = Hashtbl.create 16;
    wire_free_at = 0.0;
    links = Hashtbl.create 64;
    loss_probability = 0.0;
    partitions = [];
    counters =
      { frames_sent = 0; frames_delivered = 0; frames_dropped = 0; bytes_sent = 0 };
    trace = None;
    obs = None;
    last_ts_sample = 0.0;
    ts_interior = None;
  }

let set_trace t trace = t.trace <- Some trace
let set_obs t hub =
  t.obs <- Some hub;
  (* Cached per-frame handles belong to the previous hub's registry. *)
  Hashtbl.iter (fun _ port -> port.hot <- [||]) t.hosts

(* Per-host wire metrics, keyed under server "net". The address stands
   in for the host name — this layer sits below the kernel and has no
   better label. *)
let net_metric ?(by = 1) t addr op =
  match t.obs with
  | None -> ()
  | Some hub ->
      Vobs.Metrics.incr (Vobs.Hub.metrics hub) ~by
        ~host:(Printf.sprintf "host%d" addr)
        ~server:"net" ~op

(* The per-frame counters (sent, bytes, delivered — every frame pays
   them) accumulate on the port record itself; [flush_metrics] moves
   the deltas into the registry through handles cached on the port.
   Rarer paths (drops, losses) stay on the keyed [net_metric]. *)
let hot_sent = 0

let hot_bytes = 1
let hot_delivered = 2

let port_handles t port =
  if Array.length port.hot > 0 then port.hot
  else begin
    match t.obs with
    | None -> [||]
    | Some hub ->
        let m = Vobs.Hub.metrics hub in
        let host = Printf.sprintf "host%d" port.host_addr in
        let mk op = Vobs.Metrics.counter m ~host ~server:"net" ~op in
        let hot =
          [| mk "frames-sent"; mk "bytes-sent"; mk "frames-delivered" |]
        in
        port.hot <- hot;
        hot
  end

(* Move each port's wire-counter deltas since the previous flush into
   the registry. Called at scrape points (exports, the kernel pump's
   owner), never per frame; pure bookkeeping, so a flush at any instant
   leaves simulated behaviour untouched. *)
let flush_metrics t =
  match t.obs with
  | None -> ()
  | Some _ ->
      Hashtbl.iter
        (fun _ port ->
          if
            port.p_sent > port.p_sent_flushed
            || port.p_bytes > port.p_bytes_flushed
            || port.p_delivered > port.p_delivered_flushed
          then begin
            let hot = port_handles t port in
            if Array.length hot > 0 then begin
              Vobs.Metrics.add ~by:(port.p_sent - port.p_sent_flushed)
                hot.(hot_sent);
              Vobs.Metrics.add ~by:(port.p_bytes - port.p_bytes_flushed)
                hot.(hot_bytes);
              Vobs.Metrics.add
                ~by:(port.p_delivered - port.p_delivered_flushed)
                hot.(hot_delivered);
              port.p_sent_flushed <- port.p_sent;
              port.p_bytes_flushed <- port.p_bytes;
              port.p_delivered_flushed <- port.p_delivered
            end
          end)
        t.hosts

(* Flight-recorder events for the wire: frames lost or dropped,
   partitions cut and healed, loss-rate and slow-host changes. The
   label is only built when an attached hub's recorder is enabled;
   [host] is "host<addr>" for per-host events, "net" for wire-wide
   ones. *)
let net_event t host fmt =
  match t.obs with
  | Some hub when Vobs.Eventlog.enabled (Vobs.Hub.events hub) ->
      Format.kasprintf
        (fun label ->
          Vobs.Hub.event hub
            ~at:(Vsim.Engine.now t.engine)
            ~cat:Vobs.Eventlog.Net ~host label)
        fmt
  | Some _ | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let host_label addr = Printf.sprintf "host%d" addr

let config t = t.config

let topology t = t.topology

let queue_capacity t =
  match t.topology with
  | Topology.Shared_medium -> None
  | Topology.Switched _ -> Some t.queue_cap

let counters t = t.counters

let engine t = t.engine

exception Duplicate_host of addr

let attach t addr handler =
  if Hashtbl.mem t.hosts addr then raise (Duplicate_host addr);
  Hashtbl.replace t.hosts addr
    {
      host_addr = addr;
      up = true;
      handler;
      extra_latency_ms = 0.0;
      p_sent = 0;
      p_bytes = 0;
      p_delivered = 0;
      p_sent_flushed = 0;
      p_bytes_flushed = 0;
      p_delivered_flushed = 0;
      hot = [||];
    }

let set_handler t addr handler =
  match Hashtbl.find_opt t.hosts addr with
  | None -> invalid_arg "Ethernet.set_handler: unknown host"
  | Some port -> port.handler <- handler

let host_up t addr =
  match Hashtbl.find_opt t.hosts addr with Some p -> p.up | None -> false

let set_host_up t addr up =
  match Hashtbl.find_opt t.hosts addr with
  | None -> invalid_arg "Ethernet.set_host_up: unknown host"
  | Some port -> port.up <- up

let hosts t = Hashtbl.fold (fun addr _ acc -> addr :: acc) t.hosts [] |> List.sort compare

(* --- multicast groups --- *)

let group_members t group =
  match Hashtbl.find_opt t.groups group with
  | None -> []
  | Some members ->
      Hashtbl.fold (fun a () acc -> a :: acc) members [] |> List.sort compare

let join_group t ~group ~addr =
  let members =
    match Hashtbl.find_opt t.groups group with
    | Some m -> m
    | None ->
        let m = Hashtbl.create 4 in
        Hashtbl.replace t.groups group m;
        m
  in
  Hashtbl.replace members addr ()

let leave_group t ~group ~addr =
  match Hashtbl.find_opt t.groups group with
  | None -> ()
  | Some members -> Hashtbl.remove members addr

(* --- the switched fabric's links --- *)

(* Links materialize on first use: the host population is dynamic, so
   the fabric cannot enumerate its ports up front. *)
let get_link t key =
  match Hashtbl.find_opt t.links key with
  | Some l -> l
  | None ->
      let l =
        {
          link_id = key;
          l_up = true;
          l_free_at = 0.0;
          l_queued = 0;
          l_queue_peak = 0;
          l_frames = 0;
          l_drops = 0;
          l_busy_ms = 0.0;
          l_extra_ms = 0.0;
          l_busy_sampled = 0.0;
        }
      in
      Hashtbl.replace t.links key l;
      (* Keep the pump's interior-link cache coherent incrementally:
         host links (the overwhelming majority) never touch it, and a
         fresh interior link appends rather than forcing a rebuild. *)
      (match (key, t.ts_interior) with
      | ((Topology.Host _, _ | _, Topology.Host _), _) | _, None -> ()
      | _, Some cached ->
          let label = Topology.link_label key in
          t.ts_interior <-
            Some
              (( "link/" ^ label ^ "/utilization-pct",
                 "link/" ^ label ^ "/queue",
                 "link/" ^ label ^ "/drops",
                 l )
              :: cached));
      l

let require_link t what (a, b) =
  (match t.topology with
  | Topology.Switched _ -> ()
  | Topology.Shared_medium ->
      invalid_arg (what ^ ": the shared medium has no links"));
  if not (Topology.is_link t.topology (a, b)) then
    invalid_arg
      (Fmt.str "%s: %a is not a link of this topology" what Topology.pp_link
         (a, b));
  get_link t (a, b)

let set_link_up t a b up =
  let l = require_link t "Ethernet.set_link_up" (a, b) in
  if l.l_up <> up then begin
    l.l_up <- up;
    net_event t "net" "link %a %s" Topology.pp_link (a, b)
      (if up then "up" else "down")
  end

let link_up t a b =
  match t.topology with
  | Topology.Shared_medium -> true
  | Topology.Switched _ ->
      if not (Topology.is_link t.topology (a, b)) then false
      else
        (* An untouched link is up; only materialized links can be
           down. *)
        (match Hashtbl.find_opt t.links (a, b) with
        | Some l -> l.l_up
        | None -> true)

let set_link_extra_latency t a b ms =
  if ms < 0.0 then invalid_arg "Ethernet.set_link_extra_latency";
  let l = require_link t "Ethernet.set_link_extra_latency" (a, b) in
  l.l_extra_ms <- ms;
  net_event t "net" "link %a extra latency := %.3fms" Topology.pp_link (a, b) ms

let link_extra_latency t a b =
  match Hashtbl.find_opt t.links (a, b) with
  | Some l -> l.l_extra_ms
  | None -> 0.0

let link_stats t =
  Hashtbl.fold
    (fun key l acc ->
      {
        ls_label = Topology.link_label key;
        ls_up = l.l_up;
        ls_frames = l.l_frames;
        ls_drops = l.l_drops;
        ls_queued = l.l_queued;
        ls_queue_peak = l.l_queue_peak;
        ls_busy_ms = l.l_busy_ms;
        ls_extra_ms = l.l_extra_ms;
      }
      :: acc)
    t.links []
  |> List.sort (fun a b -> compare a.ls_label b.ls_label)

(* Per-segment utilization into the metrics registry, as gauges keyed
   (link label, "net", op): utilization is serialization time over the
   clock so far, in percent. Gauges are idempotent — call at sampling
   points (vsh `net stats`, the E14 harness), not per frame. *)
let export_link_metrics t =
  match t.obs with
  | None -> ()
  | Some hub ->
      let m = Vobs.Hub.metrics hub in
      let now = Vsim.Engine.now t.engine in
      List.iter
        (fun s ->
          let pct = if now > 0.0 then s.ls_busy_ms /. now *. 100.0 else 0.0 in
          Vobs.Metrics.set_gauge m ~host:s.ls_label ~server:"net"
            ~op:"utilization-pct" pct;
          Vobs.Metrics.set_gauge m ~host:s.ls_label ~server:"net"
            ~op:"queue-peak"
            (float_of_int s.ls_queue_peak);
          Vobs.Metrics.set_gauge m ~host:s.ls_label ~server:"net" ~op:"drops"
            (float_of_int s.ls_drops))
        (link_stats t)

(* Feed the fabric's interior links (edge<->spine — the segments whose
   saturation explains a fleet-wide stall) into a time-series store:
   utilization over the interval since the previous sample (a gauge —
   this is the heatmap row), instantaneous queue occupancy (gauge), and
   cumulative drops (counter). Interior-only keeps the series count
   O(edges) instead of O(hosts); access-link health still reaches the
   rollup via {!export_link_metrics}. Call at sampling points (the
   kernel telemetry pump), never per frame. *)
let interior_links t =
  match t.ts_interior with
  | Some cached -> cached
  | None ->
      let cached =
        Hashtbl.fold
          (fun key l acc ->
            match key with
            | Topology.Host _, _ | _, Topology.Host _ -> acc
            | _ ->
                let label = Topology.link_label key in
                ( "link/" ^ label ^ "/utilization-pct",
                  "link/" ^ label ^ "/queue",
                  "link/" ^ label ^ "/drops",
                  l )
                :: acc)
          t.links []
      in
      t.ts_interior <- Some cached;
      cached

let sample_timeseries t ts ~now =
  let interval = now -. t.last_ts_sample in
  List.iter
    (fun (s_util, s_queue, s_drops, l) ->
      let busy = l.l_busy_ms -. l.l_busy_sampled in
      l.l_busy_sampled <- l.l_busy_ms;
      let pct = if interval > 0.0 then busy /. interval *. 100.0 else 0.0 in
      Vobs.Timeseries.sample ts s_util Vobs.Timeseries.Gauge ~now pct;
      Vobs.Timeseries.sample ts s_queue Vobs.Timeseries.Gauge ~now
        (float_of_int l.l_queued);
      Vobs.Timeseries.sample ts s_drops Vobs.Timeseries.Counter ~now
        (float_of_int l.l_drops))
    (interior_links t);
  t.last_ts_sample <- now

(* --- fault injection --- *)

let trace_emit t fmt =
  match t.trace with
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  | Some tr -> Vsim.Trace.emit tr ~category:"net" fmt

let set_loss_probability t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Ethernet.set_loss_probability";
  t.loss_probability <- p;
  (* Audit trail: fault plans that flip the loss rate leave a record in
     the trace stream, the flight recorder and the metrics gauge. *)
  trace_emit t "loss probability := %.3f" p;
  net_event t "net" "loss probability := %.3f" p;
  match t.obs with
  | None -> ()
  | Some hub ->
      Vobs.Metrics.set_gauge (Vobs.Hub.metrics hub) ~host:"net" ~server:"net"
        ~op:"loss-probability" p

let loss_probability t = t.loss_probability

let set_extra_latency t addr ms =
  if ms < 0.0 then invalid_arg "Ethernet.set_extra_latency";
  match Hashtbl.find_opt t.hosts addr with
  | None -> invalid_arg "Ethernet.set_extra_latency: unknown host"
  | Some port ->
      port.extra_latency_ms <- ms;
      trace_emit t "host%d extra receive latency := %.3fms" addr ms;
      net_event t (host_label addr) "extra receive latency := %.3fms" ms

let extra_latency t addr =
  match Hashtbl.find_opt t.hosts addr with
  | Some port -> port.extra_latency_ms
  | None -> 0.0

let partition t a b =
  let pair = if a < b then (a, b) else (b, a) in
  if not (List.mem pair t.partitions) then begin
    t.partitions <- pair :: t.partitions;
    net_event t "net" "partition host%d <-> host%d" (fst pair) (snd pair)
  end

let heal t a b =
  let pair = if a < b then (a, b) else (b, a) in
  if List.mem pair t.partitions then begin
    t.partitions <- List.filter (fun p -> p <> pair) t.partitions;
    net_event t "net" "heal host%d <-> host%d" (fst pair) (snd pair)
  end

let heal_all t = t.partitions <- []

let partitioned t a b =
  let pair = if a < b then (a, b) else (b, a) in
  List.mem pair t.partitions

(* Can frames flow from [a] to [b]? Host-pair partitions apply in both
   topologies; the switched fabric additionally requires every directed
   link on the path to be up. The kernel's reachability probes ask this
   instead of [partitioned], so a cut uplink times transactions out the
   same way a partition does. *)
let reachable t a b =
  (not (partitioned t a b))
  &&
  match t.topology with
  | Topology.Shared_medium -> true
  | Topology.Switched _ ->
      List.for_all
        (fun (x, y) -> link_up t x y)
        (Topology.links t.topology ~src:a ~dst:b)

let pp ppf t =
  let slow =
    Hashtbl.fold
      (fun addr port acc ->
        if port.extra_latency_ms > 0.0 then (addr, port.extra_latency_ms) :: acc
        else acc)
      t.hosts []
    |> List.sort compare
  in
  let down_links =
    Hashtbl.fold (fun _ l acc -> if l.l_up then acc else acc + 1) t.links 0
  in
  Fmt.pf ppf
    "net: %a, %d hosts, loss %.3f, %d partitions%a%a, sent %d delivered %d \
     dropped %d (%dB)"
    Topology.pp t.topology (Hashtbl.length t.hosts) t.loss_probability
    (List.length t.partitions)
    Fmt.(
      list ~sep:nop (fun ppf (a, ms) -> pf ppf ", host%d slow +%.1fms" a ms))
    slow
    Fmt.(
      fun ppf n -> if n > 0 then pf ppf ", %d link(s) down" n)
    down_links t.counters.frames_sent t.counters.frames_delivered
    t.counters.frames_dropped t.counters.bytes_sent

(* --- transmission --- *)

(* Addresses a frame is aimed at, before liveness/partition checks
   (those happen at arrival time, counting drops). *)
let intended_destinations t frame =
  let not_self a = a <> frame.src in
  match frame.dst with
  | Unicast a -> if not_self a then [ a ] else []
  | Broadcast -> List.filter not_self (hosts t)
  | Multicast g -> List.filter not_self (group_members t g)

(* Hand one frame copy to a destination port: liveness and host-pair
   partitions are checked now — arrival time — so a host that crashed
   while the frame was in flight never sees it. Shared by both
   topologies; must be called from an event at the frame's arrival
   instant. *)
let deliver_at_arrival t frame addr =
  match Hashtbl.find_opt t.hosts addr with
  | Some port when port.up && not (partitioned t frame.src addr) ->
      let deliver () =
        t.counters.frames_delivered <- t.counters.frames_delivered + 1;
        port.p_delivered <- port.p_delivered + 1;
        port.handler frame
      in
      if port.extra_latency_ms > 0.0 then
        (* Slow-host injection: the NIC holds the frame. The host may
           crash while it sits there, so re-check liveness at the
           deferred delivery time. *)
        Vsim.Engine.schedule_at t.engine
          (Vsim.Engine.now t.engine +. port.extra_latency_ms)
          (fun () ->
            if port.up then deliver ()
            else begin
              t.counters.frames_dropped <- t.counters.frames_dropped + 1;
              net_metric t addr "frames-dropped"
            end)
      else deliver ()
  | Some _ | None ->
      t.counters.frames_dropped <- t.counters.frames_dropped + 1;
      net_metric t addr "frames-dropped";
      net_event t (host_label addr)
        "frame dropped from host%d (down or partitioned)" frame.src

(* The frame-wide loss draw, one per transmitted frame in both
   topologies. Returns true when the frame is lost (accounted). *)
let frame_lost t frame =
  let lost =
    t.loss_probability > 0.0 && Vsim.Prng.float t.prng < t.loss_probability
  in
  if lost then begin
    t.counters.frames_dropped <- t.counters.frames_dropped + 1;
    net_metric t frame.src "frames-lost";
    net_event t (host_label frame.src) "frame lost -> %a (%dB)" pp_dest
      frame.dst frame.payload_bytes
  end;
  lost

(* The single-wire path, bit-for-bit the pre-fabric model: one
   [wire_free_at], transmission then propagation, one loss draw per
   frame at arrival time. *)
let transmit_shared t frame =
  let now = Vsim.Engine.now t.engine in
  let start = Float.max now t.wire_free_at in
  let duration =
    Calibration.transmission_ms t.config ~payload_bytes:frame.payload_bytes
  in
  t.wire_free_at <- start +. duration;
  let arrival = start +. duration +. t.config.propagation_ms in
  Vsim.Engine.schedule_at t.engine arrival (fun () ->
      if not (frame_lost t frame) then
        List.iter
          (fun addr -> deliver_at_arrival t frame addr)
          (intended_destinations t frame))

(* One store-and-forward hop of the switched fabric: admission-check
   the port's bounded queue, serialize behind [l_free_at], propagate,
   then run [k] at the instant the frame is available at the far node.
   [k] must add {!Calibration.switch_forward_ms} itself when the far
   node is a switch (final host delivery pays no forwarding cost). *)
let hop t frame key ~at k =
  let l = get_link t key in
  if not l.l_up then begin
    l.l_drops <- l.l_drops + 1;
    t.counters.frames_dropped <- t.counters.frames_dropped + 1;
    net_metric t frame.src "frames-dropped";
    net_event t (host_label frame.src) "frame dropped on down link %a"
      Topology.pp_link key
  end
  else if l.l_queued >= t.queue_cap then begin
    l.l_drops <- l.l_drops + 1;
    t.counters.frames_dropped <- t.counters.frames_dropped + 1;
    net_metric t frame.src "frames-dropped";
    net_event t (host_label frame.src) "frame tail-dropped at full port %a"
      Topology.pp_link key
  end
  else begin
    l.l_queued <- l.l_queued + 1;
    if l.l_queued > l.l_queue_peak then l.l_queue_peak <- l.l_queued;
    let start = Float.max at l.l_free_at in
    let duration =
      Calibration.transmission_ms t.config ~payload_bytes:frame.payload_bytes
    in
    l.l_free_at <- start +. duration;
    l.l_busy_ms <- l.l_busy_ms +. duration;
    l.l_frames <- l.l_frames + 1;
    let arrival = start +. duration +. t.config.propagation_ms +. l.l_extra_ms in
    Vsim.Engine.schedule_at t.engine arrival (fun () ->
        l.l_queued <- l.l_queued - 1;
        k arrival)
  end

(* The switched path. The first hop (source uplink) carries one copy
   regardless of fan-out; switches replicate — one copy per outgoing
   link, never per destination — so a broadcast costs O(links touched),
   not O(hosts) transmissions on any single segment. The loss draw
   happens once per frame as it clears the source uplink, mirroring the
   shared medium's one-draw-per-frame accounting. *)
let transmit_switched t fan_in frame =
  let now = Vsim.Engine.now t.engine in
  let dests = intended_destinations t frame in
  let src_edge = Topology.edge_of ~fan_in frame.src in
  hop t frame (Topology.Host frame.src, Topology.Edge src_edge) ~at:now
    (fun at ->
      if not (frame_lost t frame) then begin
        let at = at +. Calibration.switch_forward_ms in
        let local, remote =
          List.partition (fun a -> Topology.edge_of ~fan_in a = src_edge) dests
        in
        List.iter
          (fun a ->
            hop t frame (Topology.Edge src_edge, Topology.Host a) ~at
              (fun at ->
                ignore at;
                deliver_at_arrival t frame a))
          local;
        if remote <> [] then
          hop t frame (Topology.Edge src_edge, Topology.Spine) ~at (fun at ->
              let at = at +. Calibration.switch_forward_ms in
              let edges =
                List.sort_uniq compare
                  (List.map (Topology.edge_of ~fan_in) remote)
              in
              List.iter
                (fun eb ->
                  hop t frame (Topology.Spine, Topology.Edge eb) ~at (fun at ->
                      let at = at +. Calibration.switch_forward_ms in
                      List.iter
                        (fun a ->
                          if Topology.edge_of ~fan_in a = eb then
                            hop t frame (Topology.Edge eb, Topology.Host a) ~at
                              (fun at ->
                                ignore at;
                                deliver_at_arrival t frame a))
                        remote))
                edges)
      end)

(* Queue a frame for transmission. The sending host must exist and be
   up; otherwise the frame vanishes (its kernel is dead anyway). *)
let transmit t frame =
  let src_port =
    match Hashtbl.find_opt t.hosts frame.src with
    | Some port when port.up -> Some port
    | Some _ | None -> None
  in
  match src_port with
  | None -> ()
  | Some port ->
    t.counters.frames_sent <- t.counters.frames_sent + 1;
    t.counters.bytes_sent <-
      t.counters.bytes_sent + t.config.header_bytes + frame.payload_bytes;
    port.p_sent <- port.p_sent + 1;
    port.p_bytes <- port.p_bytes + t.config.header_bytes + frame.payload_bytes;
    trace_emit t "host%d -> %a (%dB payload)" frame.src pp_dest frame.dst
      frame.payload_bytes;
    match t.topology with
    | Topology.Shared_medium -> transmit_shared t frame
    | Topology.Switched { fan_in } -> transmit_switched t fan_in frame
