(** Fabric topology: how hosts are wired together.

    [Shared_medium] is the paper's single Ethernet — every frame
    serializes on one wire, exactly the pre-fabric model.

    [Switched] is a two-tier switched fabric: hosts attach to edge
    switches by address range ([fan_in] hosts per edge), and every edge
    uplinks to one spine. Each cable is a full-duplex pair of directed
    links carrying traffic independently, so segments transmit
    concurrently.

    This module is pure data and arithmetic — which edge serves a host,
    which nodes a frame visits, which directed links a path crosses.
    Queueing and timing live in {!Ethernet}. *)

type t = Shared_medium | Switched of { fan_in : int }

(** A vertex of the fabric graph. *)
type node = Host of int | Edge of int | Spine

(** [switched ~fan_in] is [Switched { fan_in }]. Raises
    [Invalid_argument] when [fan_in < 1]. *)
val switched : fan_in:int -> t

val equal_node : node -> node -> bool
val pp_node : Format.formatter -> node -> unit
val node_to_string : node -> string

(** Parse what [pp_node] prints ("host3", "edge0", "spine"). *)
val node_of_string : string -> node option

val pp : Format.formatter -> t -> unit

(** The edge switch serving a host address ([addr / fan_in]). Raises
    [Invalid_argument] on a negative address. *)
val edge_of : fan_in:int -> int -> int

(** Nodes a frame visits from [src] to [dst], endpoints included. Same
    edge: host-edge-host; across edges: host-edge-spine-edge-host; on
    the shared medium just [host; host]. *)
val path : t -> src:int -> dst:int -> node list

(** Directed links crossed by a node path, in traversal order. *)
val links_of_path : node list -> (node * node) list

val links : t -> src:int -> dst:int -> (node * node) list

(** Number of directed links between two hosts (1 on the shared
    wire). *)
val hop_count : t -> src:int -> dst:int -> int

val pp_link : Format.formatter -> node * node -> unit
val link_label : node * node -> string

(** Parse what {!link_label} prints ("host3->edge0"). *)
val link_of_label : string -> (node * node) option

(** [rollup_scope t label] is the rollup group for a telemetry leaf
    scope named after this topology's nodes or links: "hostN" and any
    link touching edge [e] group under "edge<e>"; the spine, labels
    that are not topology-shaped, and everything on the shared medium
    yield [None] (the leaf still reaches the fleet level). *)
val rollup_scope : t -> string -> string option

(** Is the pair a directed link of this topology's graph? Always
    [false] on the shared medium. *)
val is_link : t -> node * node -> bool
