(** Simulated shared-medium Ethernet.

    Transmissions serialize on the wire, then propagate to the
    destination host(s). The payload type is abstract so the network
    layer sits below the kernel, which instantiates it with its own
    packet type. Host CPU costs are charged by the kernel; this layer
    charges queueing + transmission + propagation only. *)

type addr = int

type dest = Unicast of addr | Broadcast | Multicast of int

val pp_dest : Format.formatter -> dest -> unit

type 'a frame = { src : addr; dst : dest; payload : 'a; payload_bytes : int }

type counters = {
  mutable frames_sent : int;
  mutable frames_delivered : int;
  mutable frames_dropped : int;
  mutable bytes_sent : int;
}

type 'a t

exception Duplicate_host of addr

(** [create ~config engine] is a network with no attached hosts. [seed]
    drives loss-injection draws only. *)
val create : ?seed:int -> config:Calibration.network -> Vsim.Engine.t -> 'a t

(** Record frame transmissions into a trace. *)
val set_trace : 'a t -> Vsim.Trace.t -> unit

(** Count per-host frame and byte metrics (server "net", hosts keyed
    ["host<addr>"]) against an observability hub. *)
val set_obs : 'a t -> Vobs.Hub.t -> unit

val config : 'a t -> Calibration.network
val counters : 'a t -> counters
val engine : 'a t -> Vsim.Engine.t

(** [attach t addr handler] connects a host; [handler] runs at frame
    arrival time. Raises {!Duplicate_host} if [addr] is taken. *)
val attach : 'a t -> addr -> ('a frame -> unit) -> unit

val set_handler : 'a t -> addr -> ('a frame -> unit) -> unit

(** A crashed ([false]) host neither sends nor receives. *)
val host_up : 'a t -> addr -> bool

val set_host_up : 'a t -> addr -> bool -> unit

(** Attached host addresses, ascending. *)
val hosts : 'a t -> addr list

(** Hosts subscribed to a multicast group, ascending. *)
val group_members : 'a t -> int -> addr list

val join_group : 'a t -> group:int -> addr:addr -> unit
val leave_group : 'a t -> group:int -> addr:addr -> unit

(** Probability that an arriving frame is dropped. Raises
    [Invalid_argument] outside [0, 1]. Changes are recorded in the
    attached trace and exported as the ("net", "net",
    "loss-probability") metrics gauge so fault plans can be audited. *)
val set_loss_probability : 'a t -> float -> unit

val loss_probability : 'a t -> float

(** Slow-host fault injection: every frame arriving at [addr] is held
    [ms] extra simulated milliseconds before the host's handler runs
    (liveness is re-checked at the deferred time). [0.0] — the default —
    restores the undelayed path. Raises [Invalid_argument] on a negative
    value or an unknown host. *)
val set_extra_latency : 'a t -> addr -> float -> unit

(** Current extra receive latency of a host (0.0 if unknown). *)
val extra_latency : 'a t -> addr -> float

(** Block frames between two hosts (both directions). *)
val partition : 'a t -> addr -> addr -> unit

val heal : 'a t -> addr -> addr -> unit
val heal_all : 'a t -> unit
val partitioned : 'a t -> addr -> addr -> bool

(** One-line audit summary: host count, loss probability, partition
    count, per-host slow-host latencies, frame counters. *)
val pp : Format.formatter -> 'a t -> unit

(** Queue a frame for transmission. Broadcast frames are not delivered
    back to the sender. Delivery respects liveness at arrival time,
    partitions, and the loss probability. *)
val transmit : 'a t -> 'a frame -> unit
