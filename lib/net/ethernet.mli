(** Simulated network fabric.

    Two topologies behind one interface: the paper's single shared wire
    ({!Topology.Shared_medium}, the default — transmissions serialize on
    one medium), and a two-tier switched fabric ({!Topology.Switched} —
    each directed link carries traffic independently, switches
    store-and-forward with bounded per-port output queues).

    The payload type is abstract so the network layer sits below the
    kernel, which instantiates it with its own packet type. Host CPU
    costs are charged by the kernel; this layer charges queueing +
    transmission + propagation (+ per-switch forwarding in the switched
    fabric) only. *)

type addr = int

type dest = Unicast of addr | Broadcast | Multicast of int

val pp_dest : Format.formatter -> dest -> unit

type 'a frame = { src : addr; dst : dest; payload : 'a; payload_bytes : int }

type counters = {
  mutable frames_sent : int;
  mutable frames_delivered : int;
  mutable frames_dropped : int;
  mutable bytes_sent : int;
}

(** Per-link snapshot of the switched fabric (see {!link_stats}). *)
type link_stat = {
  ls_label : string;  (** {!Topology.link_label} of the directed link *)
  ls_up : bool;
  ls_frames : int;  (** frames serialized onto the link *)
  ls_drops : int;  (** tail drops at a full port + drops on a down link *)
  ls_queued : int;  (** frames currently occupying the port *)
  ls_queue_peak : int;
  ls_busy_ms : float;  (** cumulative serialization time *)
  ls_extra_ms : float;  (** slow-link injected latency per hop *)
}

type 'a t

exception Duplicate_host of addr

(** [create ~config engine] is a network with no attached hosts. [seed]
    drives loss-injection draws only. [topology] defaults to
    {!Topology.Shared_medium}, which reproduces the single-wire model
    exactly. [queue_cap] bounds each directed link's output queue in the
    switched fabric (default 256 frames; ignored on the shared medium).
    Raises [Invalid_argument] when [queue_cap < 1]. *)
val create :
  ?seed:int ->
  ?topology:Topology.t ->
  ?queue_cap:int ->
  config:Calibration.network ->
  Vsim.Engine.t ->
  'a t

(** Record frame transmissions into a trace. *)
val set_trace : 'a t -> Vsim.Trace.t -> unit

(** Count per-host frame and byte metrics (server "net", hosts keyed
    ["host<addr>"]) against an observability hub. Per-frame counters
    accumulate on the port and reach the registry at the next
    {!flush_metrics}. *)
val set_obs : 'a t -> Vobs.Hub.t -> unit

(** Move every port's wire-counter deltas (frames-sent, bytes-sent,
    frames-delivered) since the previous flush into the attached hub's
    registry. Call at scrape points — exports, dumps, the telemetry
    pump's owner — never per frame. No-op without a hub; pure
    bookkeeping, so flushing never perturbs simulated behaviour. *)
val flush_metrics : 'a t -> unit

val config : 'a t -> Calibration.network
val topology : 'a t -> Topology.t

(** Per-link output-queue bound; [None] on the shared medium. *)
val queue_capacity : 'a t -> int option

val counters : 'a t -> counters
val engine : 'a t -> Vsim.Engine.t

(** [attach t addr handler] connects a host; [handler] runs at frame
    arrival time. Raises {!Duplicate_host} if [addr] is taken. *)
val attach : 'a t -> addr -> ('a frame -> unit) -> unit

val set_handler : 'a t -> addr -> ('a frame -> unit) -> unit

(** A crashed ([false]) host neither sends nor receives. *)
val host_up : 'a t -> addr -> bool

val set_host_up : 'a t -> addr -> bool -> unit

(** Attached host addresses, ascending. *)
val hosts : 'a t -> addr list

(** Hosts subscribed to a multicast group, ascending. *)
val group_members : 'a t -> int -> addr list

val join_group : 'a t -> group:int -> addr:addr -> unit
val leave_group : 'a t -> group:int -> addr:addr -> unit

(** Probability that an arriving frame is dropped. Raises
    [Invalid_argument] outside [0, 1]. Changes are recorded in the
    attached trace and exported as the ("net", "net",
    "loss-probability") metrics gauge so fault plans can be audited. *)
val set_loss_probability : 'a t -> float -> unit

val loss_probability : 'a t -> float

(** Slow-host fault injection: every frame arriving at [addr] is held
    [ms] extra simulated milliseconds before the host's handler runs
    (liveness is re-checked at the deferred time). [0.0] — the default —
    restores the undelayed path. Raises [Invalid_argument] on a negative
    value or an unknown host. *)
val set_extra_latency : 'a t -> addr -> float -> unit

(** Current extra receive latency of a host (0.0 if unknown). *)
val extra_latency : 'a t -> addr -> float

(** Block frames between two hosts (both directions). *)
val partition : 'a t -> addr -> addr -> unit

val heal : 'a t -> addr -> addr -> unit
val heal_all : 'a t -> unit
val partitioned : 'a t -> addr -> addr -> bool

(** {1 Link faults (switched fabric only)}

    Links are directed: cutting [a -> b] leaves [b -> a] carrying
    traffic. These raise [Invalid_argument] on the shared medium or when
    the pair is not a link of the configured topology. *)

(** Cut ([false]) or restore ([true]) a directed link. Frames hopping
    onto a down link are dropped and counted. *)
val set_link_up : 'a t -> Topology.node -> Topology.node -> bool -> unit

(** Is the directed link up? [true] for every link of the shared medium
    and for valid links never touched by {!set_link_up}; [false] for
    pairs that are not links of the topology. *)
val link_up : 'a t -> Topology.node -> Topology.node -> bool

(** Slow-link fault injection: add [ms] to every frame's traversal of
    the directed link. [0.0] restores the clean link. Raises
    [Invalid_argument] on a negative value. *)
val set_link_extra_latency :
  'a t -> Topology.node -> Topology.node -> float -> unit

val link_extra_latency : 'a t -> Topology.node -> Topology.node -> float

(** Can frames currently flow from [a] to [b]? Host-pair partitions
    apply on both topologies; the switched fabric additionally requires
    every directed link on the path to be up. The kernel's reachability
    probes use this, so a cut uplink looks like a partition to IPC. *)
val reachable : 'a t -> addr -> addr -> bool

(** Snapshot of every materialized link (a link materializes the first
    time a frame hops onto it or a fault touches it), sorted by label.
    Empty on the shared medium. *)
val link_stats : 'a t -> link_stat list

(** Export per-segment gauges — ("<link>", "net", "utilization-pct" /
    "queue-peak" / "drops") — to the attached hub. Idempotent; call at
    sampling points. No-op without a hub or on the shared medium. *)
val export_link_metrics : 'a t -> unit

(** [sample_timeseries t ts ~now] feeds the fabric's interior
    (edge<->spine) links into a time-series store: per-link utilization
    over the interval since the previous sample (gauge, the heatmap
    row), instantaneous queue occupancy (gauge) and cumulative drops
    (counter), under "link/<label>/..." names. Interior-only keeps the
    series count O(edges). Call at sampling points (the kernel
    telemetry pump); no-op on the shared medium. *)
val sample_timeseries : 'a t -> Vobs.Timeseries.t -> now:float -> unit

(** One-line audit summary: topology, host count, loss probability,
    partition count, per-host slow-host latencies, down links, frame
    counters. *)
val pp : Format.formatter -> 'a t -> unit

(** Queue a frame for transmission. Broadcast frames are not delivered
    back to the sender. Delivery respects liveness at arrival time,
    partitions, the loss probability, link liveness and per-port queue
    bounds. On the switched fabric the frame is replicated at switches
    (one copy per outgoing link), and the loss draw happens once per
    frame as it clears the source uplink. *)
val transmit : 'a t -> 'a frame -> unit
