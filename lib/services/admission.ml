(* Server overload protection: the policy half of admission control.

   The kernel owns the mechanism (two queues per protected process, a
   rejection reply sent on the server's behalf — see
   [Vkernel.Kernel.set_admission]); this module owns everything that
   needs to understand V messages:

   - lane classification: name-resolution traffic rides the interactive
     lane, bulk mutation (writes, MoveTo-backed loads) the bulk lane,
     so cheap lookups overtake queued bulk work;
   - queue caps, bulk lower than interactive, so bulk is shed first as
     load rises;
   - deadline-aware drop: a request stamped with a client deadline that
     the queue wait alone would already blow is rejected immediately —
     queueing it would burn service time on an answer nobody waits for;
   - the retry-after hint: each Busy reply carries the server's own
     estimate of its queue drain time, which the client's resilience
     policy trusts over its computed backoff.

   Replicated writes stamped with a coordinator (origin, seq) are
   admitted unconditionally: a member that silently shed one would
   refuse every later write as a sequence gap until a log replay, so
   backpressure on replicated traffic belongs at the coordinator —
   which is exactly where [coordinator] profiles install it.

   Everything here is pure except [install]/[uninstall]; service-time
   budgets come from the calibrated cost model, so the policy's idea of
   "queue wait" tracks what the simulation actually charges. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Calibration = Vnet.Calibration
open Vnaming

type config = {
  queue_cap : int;
      (* total queued requests beyond which even interactive traffic is
         shed *)
  bulk_cap : int;
      (* total queued requests beyond which bulk traffic is shed; lower
         than [queue_cap], so bulk goes first *)
  service_ms : float;
      (* modelled per-request service time: the queue-wait estimate is
         [depth * service_ms] *)
  retry_floor_ms : float;  (* no retry-after hint below this *)
}

let pp_config ppf c =
  Fmt.pf ppf "caps %d/%d (bulk/all), service %.2fms, floor %.0fms" c.bulk_cap
    c.queue_cap c.service_ms c.retry_floor_ms

(* --- profiles, budgeted from the calibrated cost model --- *)

let make ?(queue_cap = 16) ?(bulk_cap = 8) ?(retry_floor_ms = 5.0) ~service_ms
    () =
  if bulk_cap > queue_cap then
    invalid_arg "Admission.make: bulk_cap > queue_cap";
  { queue_cap; bulk_cap; service_ms; retry_floor_ms }

(* A disk-backed storage server: each queued request is worth roughly a
   disk page. *)
let file_server () = make ~service_ms:Calibration.disk_page_ms ()

(* A pure name server (context prefix or administrative domain server):
   requests cost a prefix parse or a component walk — cheap, so the
   queue drains fast and hints are short. *)
let name_server () =
  make
    ~service_ms:
      (Calibration.prefix_parse_cpu +. Calibration.csname_common_cpu
     +. Calibration.component_lookup_cpu)
    ()

(* A replica-set write coordinator: every bulk request fans out to all
   [replicas] members and waits a disk page plus a packet round-trip at
   each. This is where replicated-write backpressure belongs (members
   must apply every stamped write they are sent). *)
let coordinator ~replicas () =
  let per_member =
    Calibration.disk_page_ms +. Calibration.small_packet_send_cpu
    +. Calibration.small_packet_recv_cpu
  in
  make ~service_ms:(float_of_int (max 1 replicas) *. per_member) ()

(* --- classification --- *)

type lane = Interactive | Bulk

(* Bulk is what moves or mutates data in quantity: CSNH writes, the
   I/O-protocol write path, and whole-file loads (MoveTo fan-in).
   Everything else — resolution, opens, reads, queries — is the cheap
   interactive traffic the caps protect. *)
let classify (msg : Vmsg.t) =
  let code = msg.Vmsg.code in
  if
    Vmsg.Op.is_csname_write code
    || code = Vmsg.Op.write_instance
    || code = Vmsg.Op.set_instance_size
    || code = Vmsg.Op.load_file
  then Bulk
  else Interactive

let lane_to_string = function Interactive -> "interactive" | Bulk -> "bulk"

(* --- the decision --- *)

(* The server's own estimate of when capacity frees: the time to drain
   what is queued ahead, floored so clients never hammer a momentarily
   full queue. *)
let retry_after_ms config ~depth =
  Float.max config.retry_floor_ms (float_of_int depth *. config.service_ms)

let shed config ~depth =
  Kernel.Shed (Vmsg.busy ~retry_after_ms:(retry_after_ms config ~depth) ())

(* [decide config ~now ~depth msg] — the hook installed on a protected
   server. [depth] is the total queued (both lanes) before [msg]. *)
let decide config ~now ~depth (msg : Vmsg.t) =
  match msg.Vmsg.wseq with
  | Some _ ->
      (* Coordinator-stamped replicated write: always apply (in-order
         guarantee); shed at the coordinator instead. *)
      Kernel.Admit
  | None -> (
      (* Deadline-aware drop: if the queue wait alone already blows the
         client's stamped deadline, serving it is wasted work. *)
      let doomed =
        match msg.Vmsg.deadline with
        | Some d -> now +. (float_of_int (depth + 1) *. config.service_ms) > d
        | None -> false
      in
      if doomed then shed config ~depth
      else
        match classify msg with
        | Bulk ->
            if depth >= config.bulk_cap then shed config ~depth
            else Kernel.Admit_bulk
        | Interactive ->
            if depth >= config.queue_cap then shed config ~depth
            else Kernel.Admit)

(* --- installation --- *)

let install domain pid config = Kernel.set_admission domain pid (decide config)
let uninstall domain pid = Kernel.clear_admission domain pid

(* A context prefix server is a pure name server; protect it as one.
   (It lives below this library, so the adoption helper is here.) *)
let protect_prefix_server domain ps ?(config = name_server ()) () =
  install domain (Prefix_server.pid ps) config

(* [(admitted, shed)] since installation. *)
let counters domain pid = Kernel.admission_counters domain pid

let queue_depth domain pid = Kernel.queue_depth domain pid
