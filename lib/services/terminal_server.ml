(* The virtual terminal server: transient objects named in a flat
   per-server context (§2.2: "servers that provide a small number of
   transient objects ... can store names and attributes of the objects
   in memory"), accessed uniformly through the naming and I/O
   protocols. Writing a line to an open terminal session appends it;
   reading returns the terminal's accumulated output. *)

module Kernel = Vkernel.Kernel
module Service = Vkernel.Service
open Vnaming

type terminal = {
  term_name : string;
  mutable lines : string list; (* newest first *)
  created : float;
  instance_id : int;  (* the temporary object's instance identifier (§4.3) *)
}

type session =
  | Terminal_session of { term : terminal; readonly : bool; snapshot : bytes }
  | Directory_session of bytes

type t = {
  terminals : (string, terminal) Hashtbl.t;
  sessions : (int, session) Hashtbl.t;
  mutable next_instance : int;
  stats : Csnh.server_stats;
  mutable pid : Vkernel.Pid.t option;
}

let block_size = 512

let pid t = Option.get t.pid
let stats t = t.stats

let terminal_names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.terminals [] |> List.sort compare

let lines t name =
  match Hashtbl.find_opt t.terminals name with
  | Some term -> List.rev term.lines
  | None -> []

let fresh_instance t =
  let id = t.next_instance in
  t.next_instance <- id + 1;
  id

let describe ~now (term : terminal) =
  Descriptor.make ~obj_type:Descriptor.Terminal
    ~size:(List.length term.lines) ~created:term.created ~modified:now
    ~instance:term.instance_id term.term_name

let create_terminal t ~now name =
  if name = "" then Error Reply.Illegal_name
  else if Hashtbl.mem t.terminals name then Error Reply.Duplicate_name
  else begin
    let term =
      { term_name = name; lines = []; created = now; instance_id = fresh_instance t }
    in
    Hashtbl.replace t.terminals name term;
    Ok term
  end

let image_of_lines term =
  match term.lines with
  | [] -> Bytes.empty
  | lines -> Bytes.of_string (String.concat "\n" (List.rev lines) ^ "\n")

let open_session t session ~size =
  let id = fresh_instance t in
  Hashtbl.replace t.sessions id session;
  Vmsg.ok
    ~payload:(Vmsg.P_instance { instance = id; file_size = size; block_size })
    ()

let handle_csname t ~now ~sender:_ (msg : Vmsg.t) _req _ctx remaining =
  let open Vmsg in
  match remaining with
  | [] ->
      if msg.code = Op.open_instance then begin
        let records =
          terminal_names t
          |> List.map (fun n -> describe ~now (Hashtbl.find t.terminals n))
        in
        let image = Descriptor.directory_to_bytes records in
        open_session t (Directory_session image) ~size:(Bytes.length image)
      end
      else if msg.code = Op.map_context then
        ok
          ~payload:
            (P_context_spec
               (Context.spec ~server:(pid t) ~context:Context.Well_known.default))
          ()
      else if msg.code = Op.query_name then
        ok
          ~payload:
            (P_descriptor
               (Descriptor.make ~obj_type:Descriptor.Directory
                  ~size:(Hashtbl.length t.terminals) "[terminals]"))
          ()
      else reply Reply.Bad_operation
  | [ name ] ->
      if msg.code = Op.open_instance then
        match msg.payload with
        | P_open { mode } -> (
            let term =
              match Hashtbl.find_opt t.terminals name with
              | Some term -> Ok term
              | None -> (
                  match mode with
                  | Write | Append -> create_terminal t ~now name
                  | Read | Directory_listing -> Error Reply.Not_found)
            in
            match term with
            | Error code -> reply code
            | Ok term ->
                let snapshot = image_of_lines term in
                open_session t
                  (Terminal_session { term; readonly = (mode = Read); snapshot })
                  ~size:(Bytes.length snapshot))
        | _ -> reply Reply.Bad_operation
      else if msg.code = Op.query_name then
        match Hashtbl.find_opt t.terminals name with
        | Some term -> ok ~payload:(P_descriptor (describe ~now term)) ()
        | None -> reply Reply.Not_found
      else if msg.code = Op.create_object then (
        match create_terminal t ~now name with
        | Ok _ -> ok ()
        | Error code -> reply code)
      else if msg.code = Op.remove_object then
        if Hashtbl.mem t.terminals name then begin
          Hashtbl.remove t.terminals name;
          ok ()
        end
        else reply Reply.Not_found
      else reply Reply.Bad_operation
  | _ :: _ -> Vmsg.reply Reply.Not_found

let read_image image ~block =
  let off = block * block_size in
  if block < 0 then Error Reply.Invalid_instance
  else if off >= Bytes.length image then Error Reply.End_of_file
  else Ok (Bytes.sub image off (min block_size (Bytes.length image - off)))

let handle_other t ~now ~sender:_ (msg : Vmsg.t) =
  let open Vmsg in
  match msg.payload with
  | P_read { instance; block } when msg.code = Op.read_instance -> (
      match Hashtbl.find_opt t.sessions instance with
      | None -> Some (reply Reply.Invalid_instance)
      | Some (Directory_session image) | Some (Terminal_session { snapshot = image; _ })
        -> (
          match read_image image ~block with
          | Ok data -> Some (ok ~extra_bytes:(Bytes.length data) ~payload:(P_data data) ())
          | Error code -> Some (reply code)))
  | P_write { instance; data; _ } when msg.code = Op.write_instance -> (
      match Hashtbl.find_opt t.sessions instance with
      | None -> Some (reply Reply.Invalid_instance)
      | Some (Directory_session _) -> Some (reply Reply.No_permission)
      | Some (Terminal_session { readonly = true; _ }) ->
          Some (reply Reply.No_permission)
      | Some (Terminal_session { term; _ }) ->
          term.lines <- Bytes.to_string data :: term.lines;
          Some (ok ~payload:(P_count (Bytes.length data)) ()))
  | P_instance_arg instance when msg.code = Op.query_instance -> (
      match Hashtbl.find_opt t.sessions instance with
      | Some (Terminal_session { term; _ }) ->
          Some (ok ~payload:(P_descriptor (describe ~now term)) ())
      | Some (Directory_session image) ->
          Some
            (ok
               ~payload:
                 (P_descriptor
                    (Descriptor.make ~obj_type:Descriptor.Directory
                       ~size:(Bytes.length image) ~instance "[terminals]"))
               ())
      | None -> Some (reply Reply.Invalid_instance))
  | P_instance_arg instance when msg.code = Op.release_instance ->
      if Hashtbl.mem t.sessions instance then begin
        Hashtbl.remove t.sessions instance;
        Some (ok ())
      end
      else Some (reply Reply.Invalid_instance)
  | _ -> None

(* Boot the per-workstation virtual terminal server. *)
let start host =
  let engine = Kernel.engine_of_domain (Kernel.domain_of_host host) in
  let now () = Vsim.Engine.now engine in
  let t =
    {
      terminals = Hashtbl.create 8;
      sessions = Hashtbl.create 8;
      next_instance = 1;
      stats = Csnh.make_stats "terminal";
      pid = None;
    }
  in
  let handlers =
    {
      Csnh.valid_context = (fun ctx -> ctx = Context.Well_known.default);
      lookup = (fun _ _ -> Csnh.Stop); (* flat name space *)
      handle_csname = (fun ~sender msg req ctx remaining ->
          handle_csname t ~now:(now ()) ~sender msg req ctx remaining);
      handle_other = (fun ~sender msg -> handle_other t ~now:(now ()) ~sender msg);
    }
  in
  let server_pid =
    Kernel.spawn host ~name:"terminal-server" (fun self ->
        Csnh.serve self ~stats:t.stats handlers)
  in
  t.pid <- Some server_pid;
  Kernel.set_pid host ~service:Service.Id.terminal server_pid Service.Local;
  t
