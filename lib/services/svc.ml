(* Service-specific operation codes and payloads (codes >= 200).

   These are the request formats individual servers define on top of the
   common message standards; nothing below the services layer knows
   them. *)

module Pid = Vkernel.Pid
open Vnaming

module Op = struct
  let get_time = 200
  let run_program = 210
  let report_exception = 230

  (* Open a file by its low-level identifier, bypassing name
     interpretation: the operation a §2.1-style centralized name server
     needs every object server to expose. *)
  let open_by_low_id = 240

  let () =
    List.iter
      (fun (c, n) -> Vmsg.Op.register c n)
      [ (get_time, "GetTime"); (run_program, "RunProgram");
        (report_exception, "ReportException"); (open_by_low_id, "OpenByLowId") ]
end

type Vmsg.payload +=
  | P_time of float  (** GetTime reply: simulated ms since boot *)
  | P_run of { program : string; argument : string }  (** RunProgram *)
  | P_exit_status of int  (** RunProgram reply *)
  | P_exception_report of { culprit : Pid.t; what : string }
  | P_low_id of { low_id : int; mode : Vmsg.open_mode }  (** OpenByLowId *)
