(** The virtual terminal server: transient objects in a flat per-server
    context (§2.2), accessed uniformly through the naming and I/O
    protocols. Writing to an open terminal session appends one line;
    reading returns the terminal's accumulated output; the context
    directory lists the live terminals with their instance ids. *)

module Kernel = Vkernel.Kernel

type t

(** Boot the per-workstation terminal server (Local-scope service). *)
val start : Vnaming.Vmsg.t Kernel.host -> t

val pid : t -> Vkernel.Pid.t
val stats : t -> Vnaming.Csnh.server_stats

(** Names of live terminals, sorted. *)
val terminal_names : t -> string list

(** Accumulated lines of a terminal, oldest first. *)
val lines : t -> string -> string list
