(** The Virtual Graphics Terminal Server: the workstations' multiple-
    window system (§6), with windows as named temporary objects.

    Create makes a window; the I/O protocol writes text lines into it;
    QueryName/ModifyName read and change its geometry through the
    description attributes ([x]/[y]/[w]/[h]) — window management through
    the uniform modify operation; the context directory lists windows;
    Remove closes one. Opening a window raises it in z-order. *)

module Kernel = Vkernel.Kernel

type geometry = { x : int; y : int; w : int; h : int }

type t

(** Boot this workstation's window server (Local-scope service). *)
val start : Vnaming.Vmsg.t Kernel.host -> t

val pid : t -> Vkernel.Pid.t
val stats : t -> Vnaming.Csnh.server_stats

(** Window names, sorted. *)
val window_names : t -> string list

val geometry : t -> string -> geometry option

(** Content lines of a window, oldest first. *)
val window_lines : t -> string -> string list

(** Paint the screen: window frames and contents, overlapping in
    z-order, on a [width]x[height] character matrix. *)
val render : t -> width:int -> height:int -> string
