(** The time service: the paper's example of a simple service where the
    client binds service to server pid on every call (§4.2). *)

module Kernel = Vkernel.Kernel

(** Boot the time server (network-visible); returns its pid. *)
val start : Vnaming.Vmsg.t Kernel.host -> Vkernel.Pid.t

(** Ask the time service for the simulated time; performs GetPid on each
    call, as §4.2 describes for simple services. *)
val get_time : Vnaming.Vmsg.t Kernel.self -> (float, Vio.Verr.t) result
