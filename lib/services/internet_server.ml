(* The internet server: a V-kernel-based IP/TCP gateway (§6) whose TCP
   connections are temporary named objects — they appear in a context
   directory next to files and terminals, queried and read through the
   same protocols.

   Connections are simulated loopback endpoints: written data is
   acknowledged and echoed back by the "remote" after a configurable
   round-trip, enough to exercise the naming and I/O paths the paper
   cares about. *)

module Kernel = Vkernel.Kernel
module Service = Vkernel.Service
open Vnaming

(* Simulated WAN round-trip for the echo. *)
let wan_rtt_ms = 80.0

type conn_state = Syn_sent | Established | Closed

let state_to_string = function
  | Syn_sent -> "syn-sent"
  | Established -> "established"
  | Closed -> "closed"

type conn = {
  conn_name : string; (* "host:port" *)
  mutable state : conn_state;
  mutable sent_bytes : int;
  mutable inbound : Buffer.t; (* echoed data awaiting the reader *)
  opened : float;
  conn_instance : int;
}

type t = {
  conns : (string, conn) Hashtbl.t;
  sessions : (int, [ `Conn of conn | `Dir of bytes ]) Hashtbl.t;
  mutable next_instance : int;
  engine : Vsim.Engine.t;
  stats : Csnh.server_stats;
  mutable pid : Vkernel.Pid.t option;
}

let block_size = 512

let pid t = Option.get t.pid
let stats t = t.stats

let connections t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []
  |> List.sort (fun a b -> compare a.conn_name b.conn_name)

let connection_state t name =
  Option.map (fun c -> c.state) (Hashtbl.find_opt t.conns name)

(* Names follow the external host:port convention. *)
let valid_conn_name name =
  match String.index_opt name ':' with
  | Some i -> (
      i > 0
      && i < String.length name - 1
      &&
      match
        int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1))
      with
      | Some port -> port > 0 && port < 65536
      | None -> false)
  | None -> false

let describe c =
  Descriptor.make ~obj_type:Descriptor.Tcp_connection ~size:c.sent_bytes
    ~created:c.opened ~instance:c.conn_instance
    ~attrs:[ ("state", state_to_string c.state) ]
    c.conn_name

let fresh_instance t =
  let id = t.next_instance in
  t.next_instance <- id + 1;
  id

let open_connection t ~now name =
  if Hashtbl.mem t.conns name then Error Reply.Duplicate_name
  else begin
    let c =
      {
        conn_name = name;
        state = Syn_sent;
        sent_bytes = 0;
        inbound = Buffer.create 64;
        opened = now;
        conn_instance = fresh_instance t;
      }
    in
    Hashtbl.replace t.conns name c;
    (* The handshake completes after one WAN round trip. *)
    Vsim.Engine.schedule ~delay:wan_rtt_ms t.engine (fun () ->
        if c.state = Syn_sent then c.state <- Established);
    Ok c
  end

let handle_csname t ~sender:_ (msg : Vmsg.t) _req _ctx remaining =
  let open Vmsg in
  let now = Vsim.Engine.now t.engine in
  match remaining with
  | [] ->
      if msg.code = Op.open_instance then begin
        let image =
          Descriptor.directory_to_bytes (List.map describe (connections t))
        in
        let id = fresh_instance t in
        Hashtbl.replace t.sessions id (`Dir image);
        ok
          ~payload:
            (P_instance
               { instance = id; file_size = Bytes.length image; block_size })
          ()
      end
      else if msg.code = Op.map_context then
        ok
          ~payload:
            (P_context_spec
               (Context.spec ~server:(pid t) ~context:Context.Well_known.default))
          ()
      else reply Reply.Bad_operation
  | [ name ] ->
      if not (valid_conn_name name) then reply Reply.Illegal_name
      else if msg.code = Op.open_instance then
        match msg.payload with
        | P_open { mode = Write | Append } -> (
            match
              match Hashtbl.find_opt t.conns name with
              | Some c when c.state <> Closed -> Ok c
              | Some _ -> Error Reply.Retry (* closing; name not yet reusable *)
              | None -> open_connection t ~now name
            with
            | Error code -> reply code
            | Ok c ->
                let id = fresh_instance t in
                Hashtbl.replace t.sessions id (`Conn c);
                ok
                  ~payload:
                    (P_instance { instance = id; file_size = 0; block_size })
                  ())
        | P_open { mode = Read } -> (
            match Hashtbl.find_opt t.conns name with
            | None -> reply Reply.Not_found
            | Some c ->
                let id = fresh_instance t in
                Hashtbl.replace t.sessions id (`Conn c);
                ok
                  ~payload:
                    (P_instance
                       {
                         instance = id;
                         file_size = Buffer.length c.inbound;
                         block_size;
                       })
                  ())
        | _ -> reply Reply.Bad_operation
      else if msg.code = Op.query_name then
        match Hashtbl.find_opt t.conns name with
        | Some c -> ok ~payload:(P_descriptor (describe c)) ()
        | None -> reply Reply.Not_found
      else if msg.code = Op.remove_object then
        match Hashtbl.find_opt t.conns name with
        | Some c ->
            c.state <- Closed;
            Hashtbl.remove t.conns name;
            ok ()
        | None -> reply Reply.Not_found
      else reply Reply.Bad_operation
  | _ :: _ -> Vmsg.reply Reply.Not_found

let handle_other t ~sender:_ (msg : Vmsg.t) =
  let open Vmsg in
  match msg.payload with
  | P_write { instance; data; _ } when msg.code = Op.write_instance -> (
      match Hashtbl.find_opt t.sessions instance with
      | Some (`Conn c) when c.state <> Closed ->
          c.sent_bytes <- c.sent_bytes + Bytes.length data;
          (* The far end echoes after a WAN round trip. *)
          Vsim.Engine.schedule ~delay:wan_rtt_ms t.engine (fun () ->
              if c.state <> Closed then Buffer.add_bytes c.inbound data);
          Some (ok ~payload:(P_count (Bytes.length data)) ())
      | Some (`Conn _) -> Some (reply Reply.No_permission)
      | Some (`Dir _) -> Some (reply Reply.No_permission)
      | None -> Some (reply Reply.Invalid_instance))
  | P_read { instance; block } when msg.code = Op.read_instance -> (
      match Hashtbl.find_opt t.sessions instance with
      | None -> Some (reply Reply.Invalid_instance)
      | Some (`Dir image) ->
          let off = block * block_size in
          if block < 0 then Some (reply Reply.Invalid_instance)
          else if off >= Bytes.length image then Some (reply Reply.End_of_file)
          else begin
            let data =
              Bytes.sub image off (min block_size (Bytes.length image - off))
            in
            Some (ok ~extra_bytes:(Bytes.length data) ~payload:(P_data data) ())
          end
      | Some (`Conn c) ->
          let image = Buffer.to_bytes c.inbound in
          let off = block * block_size in
          if block < 0 then Some (reply Reply.Invalid_instance)
          else if off >= Bytes.length image then Some (reply Reply.End_of_file)
          else begin
            let data =
              Bytes.sub image off (min block_size (Bytes.length image - off))
            in
            Some (ok ~extra_bytes:(Bytes.length data) ~payload:(P_data data) ())
          end)
  | P_instance_arg instance when msg.code = Op.query_instance -> (
      match Hashtbl.find_opt t.sessions instance with
      | Some (`Conn c) -> Some (ok ~payload:(P_descriptor (describe c)) ())
      | Some (`Dir image) ->
          Some
            (ok
               ~payload:
                 (P_descriptor
                    (Descriptor.make ~obj_type:Descriptor.Directory
                       ~size:(Bytes.length image) "[internet]"))
               ())
      | None -> Some (reply Reply.Invalid_instance))
  | P_instance_arg instance when msg.code = Op.release_instance ->
      if Hashtbl.mem t.sessions instance then begin
        Hashtbl.remove t.sessions instance;
        Some (ok ())
      end
      else Some (reply Reply.Invalid_instance)
  | _ -> None

let start host =
  let engine = Kernel.engine_of_domain (Kernel.domain_of_host host) in
  let t =
    {
      conns = Hashtbl.create 8;
      sessions = Hashtbl.create 8;
      next_instance = 1;
      engine;
      stats = Csnh.make_stats "internet";
      pid = None;
    }
  in
  let handlers =
    {
      Csnh.valid_context = (fun ctx -> ctx = Context.Well_known.default);
      lookup = (fun _ _ -> Csnh.Stop);
      handle_csname = (fun ~sender msg req ctx remaining ->
          handle_csname t ~sender msg req ctx remaining);
      handle_other = (fun ~sender msg -> handle_other t ~sender msg);
    }
  in
  let server_pid =
    Kernel.spawn host ~name:"internet-server" (fun self ->
        Csnh.serve self ~stats:t.stats handlers)
  in
  t.pid <- Some server_pid;
  Kernel.set_pid host ~service:Service.Id.internet server_pid Service.Both;
  t
