(* The exception server: collects exception reports from processes on
   its workstation and exposes the recent ones as a context directory,
   one more object type under the uniform listing machinery (§6). *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Service = Vkernel.Service
open Vnaming

type report = { culprit : Pid.t; what : string; at : float }

type t = {
  mutable reports : report list; (* newest first *)
  mutable kept : int;
  instances : Instance_server.t;
  stats : Csnh.server_stats;
  mutable pid : Pid.t option;
}

let keep_max = 64

let pid t = Option.get t.pid
let reports t = List.rev t.reports

let describe r =
  Descriptor.make ~obj_type:Descriptor.Process ~created:r.at
    ~attrs:[ ("exception", r.what) ]
    (Pid.to_string r.culprit)

let record t ~now ~culprit what =
  t.reports <- { culprit; what; at = now } :: t.reports;
  t.kept <- t.kept + 1;
  if t.kept > keep_max then begin
    t.reports <- List.filteri (fun i _ -> i < keep_max) t.reports;
    t.kept <- keep_max
  end

let start host =
  let engine = Kernel.engine_of_domain (Kernel.domain_of_host host) in
  let now () = Vsim.Engine.now engine in
  let t =
    {
      reports = [];
      kept = 0;
      instances = Instance_server.create ~name:"exception-dirs" ();
      stats = Csnh.make_stats "exception";
      pid = None;
    }
  in
  let handlers =
    {
      Csnh.valid_context = (fun ctx -> ctx = Context.Well_known.default);
      lookup = (fun _ _ -> Csnh.Stop);
      handle_csname =
        (fun ~sender:_ msg _req _ctx remaining ->
          let open Vmsg in
          match remaining with
          | [] when msg.code = Op.open_instance ->
              let image =
                Descriptor.directory_to_bytes (List.map describe (reports t))
              in
              let info =
                Instance_server.open_image t.instances ~now:(now ())
                  ~describe:(fun () ->
                    Descriptor.make ~obj_type:Descriptor.Directory
                      ~size:(List.length t.reports) "[exceptions]")
                  image
              in
              ok ~payload:(P_instance info) ()
          | _ -> reply Reply.Bad_operation);
      handle_other =
        (fun ~sender:_ msg ->
          match Instance_server.handle_io t.instances msg with
          | Some r -> Some r
          | None ->
              if msg.Vmsg.code = Svc.Op.report_exception then
                match msg.Vmsg.payload with
                | Svc.P_exception_report { culprit; what } ->
                    record t ~now:(now ()) ~culprit what;
                    Some (Vmsg.ok ())
                | _ -> Some (Vmsg.reply Reply.Bad_operation)
              else None);
    }
  in
  let server_pid =
    Kernel.spawn host ~name:"exception-server" (fun self ->
        Csnh.serve self ~stats:t.stats handlers)
  in
  t.pid <- Some server_pid;
  Kernel.set_pid host ~service:Service.Id.exception_handler server_pid Service.Local;
  t

(* Client stub used by run-time error paths. *)
let report self ~culprit what =
  match
    Kernel.get_pid self ~service:Service.Id.exception_handler Service.Local
  with
  | None -> ()
  | Some server ->
      ignore
        (Kernel.send self server
           (Vmsg.request
              ~payload:(Svc.P_exception_report { culprit; what })
              Svc.Op.report_exception))
