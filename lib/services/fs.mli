(** An inode filesystem on the simulated disk.

    Directories are files on the same storage as the files they name —
    the arrangement §2.2 calls the natural fit for distributed name
    interpretation: deleting an object and its name is one single-server
    operation. Directory contents are cached in core (write-behind to
    their pages); file data moves through the disk and a buffer cache
    that supports read-ahead.

    A directory entry may be a pointer to a context on another server
    ({!Remote_link}) — the cross-server arrows of Figure 4. *)

module Context = Vnaming.Context
module Reply = Vnaming.Reply

type entry =
  | File_entry of int
  | Dir_entry of int
  | Remote_link of Context.spec

type inode = {
  ino : int;
  kind : [ `File | `Dir ];
  mutable size : int;
  blocks : (int, int) Hashtbl.t;  (** block index -> disk page *)
  dir_entries : (string, entry) Hashtbl.t;  (** directories only *)
  mutable owner : string;
  mutable writable : bool;
  mutable created : float;
  mutable modified : float;
  mutable parent : int;
  mutable name_in_parent : string;
}

type t

val root_ino : int

(** [create disk engine] makes a filesystem with an empty root. *)
val create : ?owner:string -> Disk.t -> Vsim.Engine.t -> t

val find : t -> int -> inode option

(** Like {!find} but raises on unknown inodes. *)
val get : t -> int -> inode

val is_dir : t -> int -> bool
val cache_hit_count : t -> int
val cache_miss_count : t -> int

(** Forget every buffered page (for cold-read benchmarks). *)
val drop_caches : t -> unit

(** Unallocated pages remaining (a large value on unbounded media). *)
val free_page_count : t -> int

(** {1 Directory operations} *)

val lookup : t -> dir:int -> string -> entry option

(** Entries sorted by name. *)
val entries : t -> dir:int -> (string * entry) list

val valid_name : string -> bool
val create_file : t -> dir:int -> owner:string -> string -> (int, Reply.code) result
val mkdir : t -> dir:int -> owner:string -> string -> (int, Reply.code) result

(** Add a pointer to a context on another server. *)
val add_remote_link :
  t -> dir:int -> string -> Context.spec -> (unit, Reply.code) result

(** Remove a name and, for files and empty directories, the object
    itself: one atomic single-server operation (§2.2). *)
val unlink : t -> dir:int -> string -> (unit, Reply.code) result

val rename :
  t -> dir:int -> string -> new_dir:int -> string -> (unit, Reply.code) result

(** Resolve an absolute slash-separated path (setup/test convenience;
    protocol traffic goes through the CSNH walk). *)
val resolve_path : t -> string -> entry option

(** Full path from the root — the server-local half of inverse name
    mapping (§6). *)
val path_of_ino : t -> int -> string option

(** {1 File data} *)

val block_size : t -> int
val file_blocks : t -> inode -> int

(** Blocking read of one block through the buffer cache. *)
val read_block : t -> ino:int -> block:int -> (bytes, Reply.code) result

(** Queue an asynchronous read into the cache (read-ahead). *)
val prefetch_block : t -> ino:int -> block:int -> unit

(** Write one block. [behind] skips waiting for the platter (setup
    paths; the default charges the caller). *)
val write_block :
  ?behind:bool -> t -> ino:int -> block:int -> bytes -> (int, Reply.code) result

val truncate : t -> ino:int -> (unit, Reply.code) result

(** Change a file's size: shrinking frees whole pages beyond the new
    end; growing leaves a sparse (zero-read) tail. *)
val set_size : t -> ino:int -> int -> (unit, Reply.code) result

(** Store a whole byte image, page by page. [behind] defaults to [true]
    (scenario setup outside any fiber). *)
val write_file : ?behind:bool -> t -> ino:int -> bytes -> (unit, Reply.code) result

(** Read a whole file through the cache. *)
val read_file : t -> ino:int -> (bytes, Reply.code) result

(** {1 Descriptions} *)

val describe_entry : t -> name:string -> entry -> Vnaming.Descriptor.t
val describe_ino : t -> int -> Vnaming.Descriptor.t option

(** Apply a §5.5 modification record: writable bit and owner. *)
val modify_entry :
  t -> entry -> Vnaming.Descriptor.t -> (unit, Reply.code) result
