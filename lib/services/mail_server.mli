(** The mail server: a name space whose user\@host syntax is imposed
    from outside the system, accessed through the same name-handling
    protocol — the extensibility argument of §2.2. The server interprets
    the whole uninterpreted remainder itself (the protocol places no
    restriction on interpretation), so it bypasses the component walk.

    Delivery and reading ride the standard I/O protocol: Append-open a
    mailbox and each Write delivers one message; Read-open returns the
    rendered mailbox. *)

module Kernel = Vkernel.Kernel

type message = { m_from : string; m_body : string; m_at : float }

type t

val start : Vnaming.Vmsg.t Kernel.host -> t
val pid : t -> Vkernel.Pid.t
val stats : t -> Vnaming.Csnh.server_stats

(** Does the name follow the external user\@host convention? *)
val valid_mailbox_name : string -> bool

(** Mailbox names, sorted. *)
val mailboxes : t -> string list

(** Messages in a mailbox, oldest first. *)
val messages : t -> string -> message list
