(* Replicated directory service management (§7).

   A replica set is N file servers joined into one process group and
   registered, domain-wide, under one logical service id. Clients name
   the service through a logical prefix binding; GetPid then returns one
   live member via the kernel's deterministic balancer (read-one), and
   the coordinating prefix server fans CSNH writes out to every member
   (write-all, see {!Prefix_server}).

   This module only wires the pieces together: it owns no protocol
   state. Members register the service with [Remote] scope so a GetPid
   issued on a member's own host still goes through the balancer rather
   than short-circuiting in the local service table. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Service = Vkernel.Service
module Balancer = Vkernel.Balancer
module Ethernet = Vnet.Ethernet
open Vnaming

type t = {
  domain : Vmsg.t Kernel.domain;
  service : int;
  group : int;
  policy : Balancer.policy;
  mutable members : (Ethernet.addr * File_server.t) list;
}

let service t = t.service
let group t = t.group
let policy t = t.policy
let factor t = List.length t.members

let members t =
  List.sort (fun (a, _) (b, _) -> compare a b) t.members

let member_pids t = List.map (fun (_, fs) -> File_server.pid fs) (members t)

let find_member t addr =
  List.assoc_opt addr t.members

(* The prefix-binding target clients should use for this replica set:
   logical, so every use re-resolves through GetPid (§6) and therefore
   through the balancer. *)
let target t =
  Prefix_server.Logical
    { service = t.service; context = Context.Well_known.default }

let enroll t host fs =
  let p = File_server.pid fs in
  Kernel.set_pid host ~service:t.service p Service.Remote;
  Kernel.join_group host ~group:t.group p

let install domain ?(service = Service.Id.replica_storage)
    ?(policy = Balancer.Round_robin) ~members () =
  let group = Kernel.create_group domain in
  let t =
    {
      domain;
      service;
      group;
      policy;
      members =
        List.map (fun (host, fs) -> (Kernel.host_addr host, fs)) members;
    }
  in
  List.iter (fun (host, fs) -> enroll t host fs) members;
  Kernel.register_service_group domain ~service ~group policy;
  t

let uninstall t = Kernel.clear_service_group t.domain ~service:t.service

(* Overload-protect the whole replica set. Each member gets the
   file-server policy — under which coordinator-stamped fan-out writes
   are always admitted, so write-all ordering is never broken by a
   member shedding — and the coordinating prefix server [ps] gets the
   coordinator policy sized to the replication factor: the one place
   replicated-write backpressure is applied. Members protect their
   replacements automatically across [revive] (the config rides the
   file-server record through [restart_from]). *)
let protect t ?config ps =
  let cfg =
    match config with
    | Some c -> c
    | None -> Admission.coordinator ~replicas:(factor t) ()
  in
  List.iter
    (fun (_, fs) -> File_server.enable_admission fs t.domain ())
    t.members;
  Admission.install t.domain (Prefix_server.pid ps) cfg

let unprotect t ps =
  List.iter (fun (_, fs) -> File_server.disable_admission fs t.domain) t.members;
  Admission.uninstall t.domain (Prefix_server.pid ps)

let metric t host op =
  match Kernel.obs t.domain with
  | None -> ()
  | Some hub ->
      Vobs.Metrics.incr (Vobs.Hub.metrics hub) ~host:(Kernel.host_name host)
        ~server:"replica" ~op

(* Retries per logged entry before a catch-up gives up: the sends are
   host-local, so a failure means the host is going down again and the
   rejoin should be abandoned, not papered over. *)
let replay_attempts = 5

(* Replay the committed group write log to member process [p] from a
   process on its own host (local sends are immune to partitions), then
   run [on_caught_up] — atomically with the check that there is nothing
   left to replay.

   The loop matters: writes keep fanning out while the replay runs, so
   one pass over a snapshot of the log is not enough. Each round
   re-reads the log and replays the tail this process has not sent yet
   (the member's {!Seq_guard} deduplicates, so overlap with the live
   fan-out is harmless); committed entries are append-only, making the
   replayed count a valid cursor. The final round finds no new entries
   AND no write still pending (a fan-out in flight has logged its entry
   pending before its first send), and [on_caught_up] runs in that same
   event step — no send or delay intervenes — so no write can slip
   between the check and it. A replay send that still fails after
   {!replay_attempts} aborts the catch-up without running
   [on_caught_up]: the member has a known gap and must not rejoin. *)
let catch_up t host p ~label ~on_caught_up =
  let d = t.domain in
  let engine = Kernel.engine_of_domain d in
  ignore
    (Kernel.spawn host ~name:label (fun self ->
         let replay (_origin, _seq, msg) =
           let rec go attempt =
             match Kernel.send self p msg with
             | Ok (_ : Vmsg.t * Pid.t) -> true
             | Error _ when attempt < replay_attempts ->
                 metric t host "replay-retry";
                 Vsim.Proc.delay engine 1.0;
                 go (attempt + 1)
             | Error _ -> false
           in
           go 1
         in
         let rec drain replayed =
           let log = Kernel.group_write_log d ~service:t.service in
           let n = List.length log in
           if n = replayed then
             if Kernel.group_write_pending d ~service:t.service then begin
               Vsim.Proc.delay engine 1.0;
               drain replayed
             end
             else on_caught_up ()
           else
             let tail = List.filteri (fun i _ -> i >= replayed) log in
             if List.for_all replay tail then drain n
             else metric t host "catchup-abort"
         in
         drain 0))

(* Revive the member on [addr] after a crash: boot a fresh server over
   the surviving disk, replay the group's write log to it — the member's
   {!Seq_guard} skips everything already applied (durable marks) and
   applies the writes it missed while down, in order — and only then
   rejoin the group, so the balancer and the write fan-out never see a
   member that has not caught up. The rejoin is abandoned (and counted
   under the "replica" metrics) if the capped log has trimmed writes
   this member never applied, or if the replay itself fails: enrolling
   a member with a known gap would serve stale reads as fresh. *)
let revive t addr =
  match (find_member t addr, Kernel.host_of_addr t.domain addr) with
  | None, _ | _, None -> None
  | Some fs, Some host ->
      let fresh = File_server.restart_from fs host () in
      t.members <-
        (addr, fresh) :: List.remove_assoc addr t.members;
      let covered =
        List.for_all
          (fun (origin, trimmed) ->
            File_server.applied_wseq fresh ~origin >= trimmed)
          (Kernel.group_write_trimmed t.domain ~service:t.service)
      in
      if covered then
        catch_up t host (File_server.pid fresh) ~label:"replica-catchup"
          ~on_caught_up:(fun () -> enroll t host fresh)
      else metric t host "catchup-uncovered";
      Some fresh

(* Replay the committed write log to every live member: the convergence
   pass run when a partition heals. A member that was partitioned from
   the coordinator missed its fan-outs silently — and its in-order
   {!Seq_guard} has been refusing every later write since — so replay
   is what brings it back in step; members that missed nothing answer
   every entry from their guards at no cost to consistency. *)
let sync t =
  List.iter
    (fun (addr, fs) ->
      match Kernel.host_of_addr t.domain addr with
      | None -> ()
      | Some host ->
          if Kernel.host_is_up host then
            catch_up t host (File_server.pid fs) ~label:"replica-sync"
              ~on_caught_up:(fun () -> ()))
    (members t)
