(* Replicated directory service management (§7).

   A replica set is N file servers joined into one process group and
   registered, domain-wide, under one logical service id. Clients name
   the service through a logical prefix binding; GetPid then returns one
   live member via the kernel's deterministic balancer (read-one), and
   the coordinating prefix server fans CSNH writes out to every member
   (write-all, see {!Prefix_server}).

   This module only wires the pieces together: it owns no protocol
   state. Members register the service with [Remote] scope so a GetPid
   issued on a member's own host still goes through the balancer rather
   than short-circuiting in the local service table. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Service = Vkernel.Service
module Balancer = Vkernel.Balancer
module Ethernet = Vnet.Ethernet
open Vnaming

type t = {
  domain : Vmsg.t Kernel.domain;
  service : int;
  group : int;
  policy : Balancer.policy;
  mutable members : (Ethernet.addr * File_server.t) list;
}

let service t = t.service
let group t = t.group
let policy t = t.policy
let factor t = List.length t.members

let members t =
  List.sort (fun (a, _) (b, _) -> compare a b) t.members

let member_pids t = List.map (fun (_, fs) -> File_server.pid fs) (members t)

let find_member t addr =
  List.assoc_opt addr t.members

(* The prefix-binding target clients should use for this replica set:
   logical, so every use re-resolves through GetPid (§6) and therefore
   through the balancer. *)
let target t =
  Prefix_server.Logical
    { service = t.service; context = Context.Well_known.default }

let enroll t host fs =
  let p = File_server.pid fs in
  Kernel.set_pid host ~service:t.service p Service.Remote;
  Kernel.join_group host ~group:t.group p

let install domain ?(service = Service.Id.replica_storage)
    ?(policy = Balancer.Round_robin) ~members () =
  let group = Kernel.create_group domain in
  let t =
    {
      domain;
      service;
      group;
      policy;
      members =
        List.map (fun (host, fs) -> (Kernel.host_addr host, fs)) members;
    }
  in
  List.iter (fun (host, fs) -> enroll t host fs) members;
  Kernel.register_service_group domain ~service ~group policy;
  t

let uninstall t = Kernel.clear_service_group t.domain ~service:t.service

(* Revive the member on [addr] after a crash: boot a fresh server over
   the surviving disk, replay the group's write log to it — the member's
   {!Seq_guard} skips everything already applied (durable marks) and
   applies the writes it missed while down — and only then rejoin the
   group, so the balancer and the write fan-out never see a member that
   has not caught up. *)
let revive t addr =
  match (find_member t addr, Kernel.host_of_addr t.domain addr) with
  | None, _ | _, None -> None
  | Some fs, Some host ->
      let fresh = File_server.restart_from fs host () in
      t.members <-
        (addr, fresh) :: List.remove_assoc addr t.members;
      let p = File_server.pid fresh in
      let log = Kernel.group_write_log t.domain ~service:t.service in
      ignore
        (Kernel.spawn host ~name:"replica-catchup" (fun self ->
             List.iter
               (fun (_origin, _seq, msg) -> ignore (Kernel.send self p msg))
               log;
             enroll t host fresh));
      Some fresh
