(* An inode filesystem on the simulated disk.

   Directories are files on the same storage as the files they name —
   the arrangement the paper calls the natural fit for distributed name
   interpretation (§2.2): deleting an object and its name is one
   single-server operation. Directory contents are kept in an in-core
   cache (write-behind to their disk pages), modelling a storage server
   whose name-lookup path runs from memory while file data moves through
   the disk.

   A directory entry may also be a pointer to a context on another
   server ({!Remote_link}) — the cross-server arrows of Figure 4, which
   the file server turns into request forwarding. *)

module Context = Vnaming.Context
module Reply = Vnaming.Reply

type entry =
  | File_entry of int
  | Dir_entry of int
  | Remote_link of Context.spec

type inode = {
  ino : int;
  kind : [ `File | `Dir ];
  mutable size : int;  (* bytes (files) *)
  blocks : (int, int) Hashtbl.t;  (* block index -> disk page *)
  dir_entries : (string, entry) Hashtbl.t;  (* directories only *)
  mutable owner : string;
  mutable writable : bool;
  mutable created : float;
  mutable modified : float;
  mutable parent : int;
  mutable name_in_parent : string;
}

type t = {
  disk : Disk.t;
  engine : Vsim.Engine.t;
  inodes : (int, inode) Hashtbl.t;
  mutable next_ino : int;
  mutable next_page : int;
  mutable free_pages : int list; (* recycled by unlink/truncate *)
  (* Buffer cache: pages present in server memory, and when they are
     (or will be) available — the basis of read-ahead. *)
  cache : (int * int, float) Hashtbl.t;
  cache_hits : Vsim.Stats.Counter.t;
  cache_misses : Vsim.Stats.Counter.t;
}

let root_ino = 1

let now t = Vsim.Engine.now t.engine

let mkino t ~kind ~owner ~parent ~name =
  let ino = t.next_ino in
  t.next_ino <- ino + 1;
  let node =
    {
      ino;
      kind;
      size = 0;
      blocks = Hashtbl.create 4;
      dir_entries = Hashtbl.create 8;
      owner;
      writable = true;
      created = now t;
      modified = now t;
      parent;
      name_in_parent = name;
    }
  in
  Hashtbl.replace t.inodes ino node;
  node

let create ?(owner = "system") disk engine =
  let t =
    {
      disk;
      engine;
      inodes = Hashtbl.create 64;
      next_ino = root_ino;
      next_page = 0;
      free_pages = [];
      cache = Hashtbl.create 256;
      cache_hits = Vsim.Stats.Counter.create "fs.cache-hits";
      cache_misses = Vsim.Stats.Counter.create "fs.cache-misses";
    }
  in
  let root = mkino t ~kind:`Dir ~owner ~parent:root_ino ~name:"/" in
  assert (root.ino = root_ino);
  t

let find t ino = Hashtbl.find_opt t.inodes ino

let get t ino =
  match find t ino with
  | Some node -> node
  | None -> invalid_arg (Fmt.str "Fs: no inode %d" ino)

let is_dir t ino = match find t ino with Some n -> n.kind = `Dir | None -> false

let cache_hit_count t = Vsim.Stats.Counter.value t.cache_hits
let cache_miss_count t = Vsim.Stats.Counter.value t.cache_misses

(* Forget every buffered page (benchmarks use this to measure cold
   reads; directory entries stay in core). *)
let drop_caches t = Hashtbl.reset t.cache

(* --- directory operations (in-core, write-behind to disk) --- *)

(* Allocate a page, reusing freed ones; [None] when the medium is
   full. *)
let alloc_page t =
  match t.free_pages with
  | p :: rest ->
      t.free_pages <- rest;
      Some p
  | [] -> (
      match Disk.capacity_pages t.disk with
      | Some cap when t.next_page >= cap -> None
      | Some _ | None ->
          let p = t.next_page in
          t.next_page <- p + 1;
          Some p)

let free_page_count t =
  List.length t.free_pages
  + (match Disk.capacity_pages t.disk with
    | Some cap -> max 0 (cap - t.next_page)
    | None -> max_int / 2)

(* Charge a directory mutation: its directory file page is updated
   write-behind (does not block the request path). *)
let charge_dir_update t (dir : inode) =
  dir.modified <- now t;
  match Hashtbl.find_opt dir.blocks 0 with
  | Some page -> Disk.write_page_behind t.disk page Bytes.empty
  | None -> (
      match alloc_page t with
      | Some page ->
          Hashtbl.replace dir.blocks 0 page;
          Disk.write_page_behind t.disk page Bytes.empty
      | None ->
          (* A full medium cannot persist the directory update; the
             in-core state stays authoritative in this model. *)
          ())

let lookup t ~dir name =
  match find t dir with
  | Some node when node.kind = `Dir -> Hashtbl.find_opt node.dir_entries name
  | Some _ | None -> None

let entries t ~dir =
  match find t dir with
  | Some node when node.kind = `Dir ->
      Hashtbl.fold (fun name e acc -> (name, e) :: acc) node.dir_entries []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  | Some _ | None -> []

let valid_name name =
  name <> "" && name <> "." && name <> ".."
  && (not (String.contains name '/'))
  && (not (String.contains name '['))
  && not (String.contains name '\000')

let add_entry t ~dir name entry =
  match find t dir with
  | Some node when node.kind = `Dir ->
      if not (valid_name name) then Error Reply.Illegal_name
      else if Hashtbl.mem node.dir_entries name then Error Reply.Duplicate_name
      else begin
        Hashtbl.replace node.dir_entries name entry;
        charge_dir_update t node;
        Ok ()
      end
  | Some _ | None -> Error Reply.Bad_context

let create_file t ~dir ~owner name =
  match find t dir with
  | Some node when node.kind = `Dir ->
      if not (valid_name name) then Error Reply.Illegal_name
      else if Hashtbl.mem node.dir_entries name then Error Reply.Duplicate_name
      else begin
        let file = mkino t ~kind:`File ~owner ~parent:dir ~name in
        Hashtbl.replace node.dir_entries name (File_entry file.ino);
        charge_dir_update t node;
        Ok file.ino
      end
  | Some _ | None -> Error Reply.Bad_context

let mkdir t ~dir ~owner name =
  match find t dir with
  | Some node when node.kind = `Dir ->
      if not (valid_name name) then Error Reply.Illegal_name
      else if Hashtbl.mem node.dir_entries name then Error Reply.Duplicate_name
      else begin
        let child = mkino t ~kind:`Dir ~owner ~parent:dir ~name in
        Hashtbl.replace node.dir_entries name (Dir_entry child.ino);
        charge_dir_update t node;
        Ok child.ino
      end
  | Some _ | None -> Error Reply.Bad_context

(* Add a pointer to a context on another server. *)
let add_remote_link t ~dir name spec = add_entry t ~dir name (Remote_link spec)

let free_file_pages t (node : inode) =
  Hashtbl.iter
    (fun block page ->
      Hashtbl.remove t.cache (node.ino, block);
      t.free_pages <- page :: t.free_pages)
    node.blocks;
  Hashtbl.reset node.blocks

(* Remove a name and, for files/empty directories, the object itself:
   one atomic single-server operation — the consistency property of
   §2.2. *)
let unlink t ~dir name =
  match find t dir with
  | Some node when node.kind = `Dir -> (
      match Hashtbl.find_opt node.dir_entries name with
      | None -> Error Reply.Not_found
      | Some (Remote_link _) ->
          Hashtbl.remove node.dir_entries name;
          charge_dir_update t node;
          Ok ()
      | Some (File_entry ino) ->
          (match find t ino with
          | Some file ->
              free_file_pages t file;
              Hashtbl.remove t.inodes ino
          | None -> ());
          Hashtbl.remove node.dir_entries name;
          charge_dir_update t node;
          Ok ()
      | Some (Dir_entry ino) -> (
          match find t ino with
          | Some child when Hashtbl.length child.dir_entries > 0 ->
              Error Reply.No_permission
          | Some _ | None ->
              Hashtbl.remove t.inodes ino;
              Hashtbl.remove node.dir_entries name;
              charge_dir_update t node;
              Ok ()))
  | Some _ | None -> Error Reply.Bad_context

let rename t ~dir name ~new_dir new_name =
  match (find t dir, find t new_dir) with
  | Some src, Some dst when src.kind = `Dir && dst.kind = `Dir -> (
      match Hashtbl.find_opt src.dir_entries name with
      | None -> Error Reply.Not_found
      | Some entry ->
          if not (valid_name new_name) then Error Reply.Illegal_name
          else if Hashtbl.mem dst.dir_entries new_name then
            Error Reply.Duplicate_name
          else begin
            Hashtbl.remove src.dir_entries name;
            Hashtbl.replace dst.dir_entries new_name entry;
            (match entry with
            | File_entry ino | Dir_entry ino -> (
                match find t ino with
                | Some node ->
                    node.parent <- new_dir;
                    node.name_in_parent <- new_name
                | None -> ())
            | Remote_link _ -> ());
            charge_dir_update t src;
            if new_dir <> dir then charge_dir_update t dst;
            Ok ()
          end)
  | _ -> Error Reply.Bad_context

(* Resolve an absolute slash-separated path to an entry (setup and
   test convenience; protocol traffic goes through the walk). *)
let resolve_path t path =
  let components =
    String.split_on_char '/' path |> List.filter (fun c -> c <> "")
  in
  let rec loop dir = function
    | [] -> Some (Dir_entry dir)
    | c :: rest -> (
        match lookup t ~dir c with
        | Some (Dir_entry ino) -> loop ino rest
        | Some entry when rest = [] -> Some entry
        | Some _ | None -> None)
  in
  loop root_ino components

(* Full path of an inode from the root — the server-local part of
   inverse name mapping (§6). *)
let path_of_ino t ino =
  let rec loop ino acc =
    match find t ino with
    | None -> None
    | Some node ->
        if node.ino = root_ino then Some ("/" ^ String.concat "/" acc)
        else loop node.parent (node.name_in_parent :: acc)
  in
  loop ino []

(* --- file data --- *)

let page_of_block t (node : inode) block ~allocate =
  match Hashtbl.find_opt node.blocks block with
  | Some page -> Some page
  | None ->
      if allocate then
        match alloc_page t with
        | Some page ->
            Hashtbl.replace node.blocks block page;
            Some page
        | None -> None
      else None

let block_size t = Disk.page_bytes t.disk

let file_blocks t (node : inode) =
  if node.size = 0 then 0 else ((node.size - 1) / block_size t) + 1

(* Blocking read of one block, through the buffer cache. *)
let read_block t ~ino ~block =
  match find t ino with
  | None -> Error Reply.Not_found
  | Some node when node.kind <> `File -> Error Reply.No_permission
  | Some node ->
      let off = block * block_size t in
      if block < 0 then Error Reply.Invalid_instance
      else if off >= node.size then Error Reply.End_of_file
      else begin
        let len = min (block_size t) (node.size - off) in
        let page =
          match page_of_block t node block ~allocate:false with
          | Some p -> p
          | None -> -1
        in
        (match Hashtbl.find_opt t.cache (ino, block) with
        | Some ready_at ->
            (* In memory (possibly still arriving from a read-ahead). *)
            Vsim.Stats.Counter.incr t.cache_hits;
            Disk.wait_until t.disk ready_at
        | None ->
            Vsim.Stats.Counter.incr t.cache_misses;
            if page >= 0 then ignore (Disk.read_page t.disk page : bytes)
            else Disk.wait_until t.disk (Disk.read_page_async t.disk 0);
            Hashtbl.replace t.cache (ino, block) (now t));
        let data =
          if page >= 0 then Bytes.sub (Disk.peek t.disk page) 0 len
          else Bytes.make len '\000'
        in
        Ok data
      end

(* Queue an asynchronous read of a block into the cache (read-ahead). *)
let prefetch_block t ~ino ~block =
  match find t ino with
  | Some node when node.kind = `File ->
      let off = block * block_size t in
      if off < node.size && not (Hashtbl.mem t.cache (ino, block)) then begin
        match page_of_block t node block ~allocate:false with
        | Some page ->
            let ready_at = Disk.read_page_async t.disk page in
            ignore page;
            Hashtbl.replace t.cache (ino, block) ready_at
        | None -> ()
      end
  | Some _ | None -> ()

(* Write of one block; [behind] skips waiting for the platter (used by
   scenario setup, which is not on any client's latency path). *)
let write_block ?(behind = false) t ~ino ~block data =
  match find t ino with
  | None -> Error Reply.Not_found
  | Some node when node.kind <> `File -> Error Reply.No_permission
  | Some node when not node.writable -> Error Reply.No_permission
  | Some node ->
      if block < 0 || Bytes.length data > block_size t then
        Error Reply.Invalid_instance
      else begin
        match page_of_block t node block ~allocate:true with
        | None -> Error Reply.No_space
        | Some page ->
            if behind then Disk.write_page_behind t.disk page data
            else Disk.write_page t.disk page data;
            Hashtbl.replace t.cache (ino, block) (now t);
            let end_off = (block * block_size t) + Bytes.length data in
            if end_off > node.size then node.size <- end_off;
            node.modified <- now t;
            Ok (Bytes.length data)
      end

(* Change a file's size: shrinking frees whole pages beyond the new
   end; growing leaves a sparse (zero-read) tail. *)
let set_size t ~ino size =
  if size < 0 then Error Reply.Invalid_instance
  else
    match find t ino with
    | None -> Error Reply.Not_found
    | Some node when node.kind <> `File -> Error Reply.No_permission
    | Some node when not node.writable -> Error Reply.No_permission
    | Some node ->
        let bs = block_size t in
        let keep_blocks = if size = 0 then 0 else ((size - 1) / bs) + 1 in
        let doomed =
          Hashtbl.fold
            (fun block page acc ->
              if block >= keep_blocks then (block, page) :: acc else acc)
            node.blocks []
        in
        List.iter
          (fun (block, page) ->
            Hashtbl.remove node.blocks block;
            Hashtbl.remove t.cache (ino, block);
            t.free_pages <- page :: t.free_pages)
          doomed;
        node.size <- size;
        node.modified <- now t;
        Ok ()

let truncate t ~ino =
  match find t ino with
  | None -> Error Reply.Not_found
  | Some node when node.kind <> `File -> Error Reply.No_permission
  | Some node ->
      free_file_pages t node;
      node.size <- 0;
      node.modified <- now t;
      Ok ()

(* Store a whole byte image into a file, page by page. With
   [behind:true] (the default, for scenario setup outside any fiber) the
   writes do not block on the platter. *)
let write_file ?(behind = true) t ~ino data =
  match truncate t ~ino with
  | Error _ as e -> e
  | Ok () ->
      let bs = block_size t in
      let len = Bytes.length data in
      let blocks = if len = 0 then 0 else ((len - 1) / bs) + 1 in
      let rec loop block =
        if block >= blocks then Ok ()
        else begin
          let off = block * bs in
          let chunk = Bytes.sub data off (min bs (len - off)) in
          match write_block ~behind t ~ino ~block chunk with
          | Ok _ -> loop (block + 1)
          | Error _ as e -> e
        end
      in
      loop 0

(* Read a whole file through the cache. *)
let read_file t ~ino =
  match find t ino with
  | None -> Error Reply.Not_found
  | Some node when node.kind <> `File -> Error Reply.No_permission
  | Some node ->
      let out = Buffer.create node.size in
      let blocks = file_blocks t node in
      let rec loop block =
        if block >= blocks then Ok (Buffer.to_bytes out)
        else
          match read_block t ~ino ~block with
          | Ok data ->
              Buffer.add_bytes out data;
              loop (block + 1)
          | Error _ as e -> e
      in
      loop 0

(* --- descriptions --- *)

let describe_entry t ~name entry =
  let module D = Vnaming.Descriptor in
  match entry with
  | Remote_link spec ->
      D.make ~obj_type:D.Context_pointer
        ~attrs:[ ("target", Fmt.str "%a" Context.pp_spec spec) ]
        name
  | File_entry ino | Dir_entry ino -> (
      match find t ino with
      | None -> D.make ~obj_type:D.File name
      | Some node ->
          D.make
            ~obj_type:(if node.kind = `Dir then D.Directory else D.File)
            ~size:
              (if node.kind = `Dir then Hashtbl.length node.dir_entries
               else node.size)
            ~owner:node.owner ~created:node.created ~modified:node.modified
            ~writable:node.writable name)

let describe_ino t ino =
  match find t ino with
  | None -> None
  | Some node ->
      Some (describe_entry t ~name:node.name_in_parent (
        if node.kind = `Dir then Dir_entry ino else File_entry ino))

(* Apply a modification record (§5.5): writable bit and owner. *)
let modify_entry t entry (requested : Vnaming.Descriptor.t) =
  match entry with
  | Remote_link _ -> Error Reply.No_permission
  | File_entry ino | Dir_entry ino -> (
      match find t ino with
      | None -> Error Reply.Not_found
      | Some node ->
          node.writable <- requested.Vnaming.Descriptor.writable;
          node.owner <- requested.Vnaming.Descriptor.owner;
          node.modified <- now t;
          charge_dir_update t (get t node.parent);
          Ok ())
