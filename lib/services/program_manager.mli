(** The team/program manager: loads program images from a storage server
    into workstation memory with MoveTo (the diskless-workstation path
    of §3.1) and runs registered program bodies. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
open Vnaming

(** What a named program does when run; returns its exit status. *)
type program_body = Vmsg.t Kernel.self -> argument:string -> int

(** A program in execution, listed as a temporary object in the
    manager's context (§6's "programs in execution"). *)
type execution = {
  exec_id : int;
  exec_program : string;
  exec_argument : string;
  started : float;
  mutable finished : float option;
  mutable status : int option;
}

type t

(** Boot the per-workstation program manager (Local-scope service). It
    also serves a CSNH context whose directory lists executions. *)
val start : Vmsg.t Kernel.host -> t

val pid : t -> Pid.t

(** Past and present executions, oldest first. *)
val executions : t -> execution list

(** Per-load elapsed times (ms), for the E2 measurements. *)
val load_times : t -> Vsim.Stats.Series.t

(** Make a program body runnable under a name. Its image must also be
    installed in a storage server's program directory. *)
val register : t -> string -> program_body -> unit

(** Pull a program image from a storage server into a fresh buffer via
    MoveTo. [size] bounds the transfer (usually from QueryName). *)
val load :
  Vmsg.t Kernel.self ->
  storage:Pid.t ->
  context:Context.id ->
  name:string ->
  size:int ->
  (bytes, Vio.Verr.t) result

(** Load a program from the public storage service and execute its
    registered body (no body registered: status 0). *)
val run_program :
  t ->
  Vmsg.t Kernel.self ->
  program:string ->
  argument:string ->
  (int, Vio.Verr.t) result

(** Install a program image into a file server's /bin (setup). *)
val install_image :
  File_server.t -> name:string -> image:bytes -> (unit, Reply.code) result
