(* The time service: the paper's example of a simple service where the
   client binds service to server pid on each operation. *)

module Kernel = Vkernel.Kernel
module Service = Vkernel.Service
open Vnaming

let start host =
  let engine = Kernel.engine_of_domain (Kernel.domain_of_host host) in
  let server_pid =
    Kernel.spawn host ~name:"time-server" (fun self ->
        let rec loop () =
          let msg, sender = Kernel.receive self in
          let reply =
            if msg.Vmsg.code = Svc.Op.get_time then
              Vmsg.ok ~payload:(Svc.P_time (Vsim.Engine.now engine)) ()
            else Vmsg.reply Reply.Bad_operation
          in
          ignore (Kernel.reply self ~to_:sender reply);
          loop ()
        in
        loop ())
  in
  Kernel.set_pid host ~service:Service.Id.time server_pid Service.Both;
  server_pid

(* Client stub: service-to-pid binding happens on every call (§4.2). *)
let get_time self =
  match Kernel.get_pid self ~service:Service.Id.time Vkernel.Service.Both with
  | None -> Error (Vio.Verr.Denied Reply.No_server)
  | Some server -> (
      match Kernel.send self server (Vmsg.request Svc.Op.get_time) with
      | Error e -> Error (Vio.Verr.Ipc e)
      | Ok (reply, _) -> (
          match (Vmsg.reply_code reply, reply.Vmsg.payload) with
          | Some Reply.Ok, Svc.P_time t -> Ok t
          | Some Reply.Ok, _ -> Error (Vio.Verr.Protocol "GetTime reply")
          | Some code, _ -> Error (Vio.Verr.Denied code)
          | None, _ -> Error (Vio.Verr.Protocol "expected reply")))
