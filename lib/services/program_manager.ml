(* The team/program manager: loads program images from a storage server
   into workstation memory with MoveTo (the diskless-workstation path
   whose 64 KB / 338 ms figure §3.1 reports) and runs registered program
   bodies. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Service = Vkernel.Service
open Vnaming

type program_body = Vmsg.t Kernel.self -> argument:string -> int

(* A program in execution: a temporary object listed in the manager's
   context (§6's "programs in execution" under the uniform
   list-directory command). *)
type execution = {
  exec_id : int;
  exec_program : string;
  exec_argument : string;
  started : float;
  mutable finished : float option;
  mutable status : int option;
}

type t = {
  host : Vmsg.t Kernel.host;
  programs : (string, program_body) Hashtbl.t;
  executions : (int, execution) Hashtbl.t;
  mutable next_execution : int;
  instances : Instance_server.t;
  loads : Vsim.Stats.Series.t;  (* per-load elapsed ms *)
  mutable pid : Pid.t option;
}

let pid t = Option.get t.pid
let load_times t = t.loads

let executions t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.executions []
  |> List.sort (fun a b -> compare a.exec_id b.exec_id)

let describe_execution e =
  Descriptor.make ~obj_type:Descriptor.Process ~created:e.started
    ~modified:(Option.value ~default:e.started e.finished)
    ~instance:e.exec_id
    ~attrs:
      [
        ("argument", e.exec_argument);
        ( "status",
          match e.status with
          | None -> "running"
          | Some code -> Fmt.str "exited %d" code );
      ]
    e.exec_program

(* Make a program body available under a name; its image must also be
   installed in the storage server's program directory for loading. *)
let register t name body = Hashtbl.replace t.programs name body

(* [load self ~storage ~context ~name ~size] pulls a program image from
   a storage server into a fresh local buffer via MoveTo. *)
let load self ~storage ~context ~name ~size =
  let buffer = Bytes.create size in
  let req = Csname.make_req ~context name in
  let msg = Vmsg.request ~name:req Vmsg.Op.load_file in
  match Kernel.send self ~buffer storage msg with
  | Error e -> Error (Vio.Verr.Ipc e)
  | Ok (reply, _) -> (
      match (Vmsg.reply_code reply, reply.Vmsg.payload) with
      | Some Reply.Ok, Vmsg.P_count n -> Ok (Bytes.sub buffer 0 n)
      | Some Reply.Ok, _ -> Error (Vio.Verr.Protocol "LoadFile reply")
      | Some code, _ -> Error (Vio.Verr.Denied code)
      | None, _ -> Error (Vio.Verr.Protocol "expected reply"))

let record_execution t ~now ~program ~argument =
  let e =
    {
      exec_id = t.next_execution;
      exec_program = program;
      exec_argument = argument;
      started = now;
      finished = None;
      status = None;
    }
  in
  t.next_execution <- t.next_execution + 1;
  Hashtbl.replace t.executions e.exec_id e;
  e

(* Run a named program: load its image from the program directory of the
   public storage service, then execute the registered body. The
   execution appears in the manager's context for its duration and as a
   finished record afterwards. *)
let run_program t self ~program ~argument =
  match Kernel.get_pid self ~service:Service.Id.storage Service.Both with
  | None -> Error (Vio.Verr.Denied Reply.No_server)
  | Some storage -> (
      let engine = Kernel.engine_of_domain (Kernel.domain_of_self self) in
      (* Size is discovered by querying the name first. *)
      let query =
        Vmsg.request
          ~name:(Csname.make_req ~context:Context.Well_known.programs program)
          Vmsg.Op.query_name
      in
      match Kernel.send self storage query with
      | Error e -> Error (Vio.Verr.Ipc e)
      | Ok (reply, _) -> (
          match (Vmsg.reply_code reply, reply.Vmsg.payload) with
          | Some Reply.Ok, Vmsg.P_descriptor d ->
              let t0 = Vsim.Engine.now engine in
              let size = max 1 d.Descriptor.size in
              (match
                 load self ~storage ~context:Context.Well_known.programs
                   ~name:program ~size
               with
              | Error e -> Error e
              | Ok (_image : bytes) ->
                  Vsim.Stats.Series.add t.loads (Vsim.Engine.now engine -. t0);
                  let execution =
                    record_execution t ~now:(Vsim.Engine.now engine) ~program
                      ~argument
                  in
                  let status =
                    match Hashtbl.find_opt t.programs program with
                    | Some body -> body self ~argument
                    | None -> 0
                  in
                  execution.finished <- Some (Vsim.Engine.now engine);
                  execution.status <- Some status;
                  Ok status)
          | Some Reply.Ok, _ -> Error (Vio.Verr.Protocol "QueryName reply")
          | Some code, _ -> Error (Vio.Verr.Denied code)
          | None, _ -> Error (Vio.Verr.Protocol "expected reply")))

(* Boot the per-workstation program manager: serves RunProgram and a
   CSNH context listing programs in execution. *)
let start host =
  let engine = Kernel.engine_of_domain (Kernel.domain_of_host host) in
  let now () = Vsim.Engine.now engine in
  let t =
    {
      host;
      programs = Hashtbl.create 8;
      executions = Hashtbl.create 8;
      next_execution = 1;
      instances = Instance_server.create ~name:"execution-dirs" ();
      loads = Vsim.Stats.Series.create "program-load-ms";
      pid = None;
    }
  in
  let find_by_name name =
    List.find_opt (fun e -> e.exec_program = name) (List.rev (executions t))
  in
  let handlers =
    {
      Csnh.valid_context = (fun ctx -> ctx = Context.Well_known.default);
      lookup = (fun _ _ -> Csnh.Stop);
      handle_csname =
        (fun ~sender:_ msg _req _ctx remaining ->
          let open Vmsg in
          match remaining with
          | [] when msg.code = Op.open_instance ->
              let image =
                Descriptor.directory_to_bytes
                  (List.map describe_execution (executions t))
              in
              let info =
                Instance_server.open_image t.instances ~now:(now ())
                  ~describe:(fun () ->
                    Descriptor.make ~obj_type:Descriptor.Directory
                      ~size:(Hashtbl.length t.executions) "[programs]")
                  image
              in
              ok ~payload:(P_instance info) ()
          | [] when msg.code = Op.map_context ->
              ok
                ~payload:
                  (P_context_spec
                     (Context.spec ~server:(pid t)
                        ~context:Context.Well_known.default))
                ()
          | [ name ] when msg.code = Op.query_name -> (
              match find_by_name name with
              | Some e -> ok ~payload:(P_descriptor (describe_execution e)) ()
              | None -> reply Reply.Not_found)
          | _ -> reply Reply.Bad_operation);
      handle_other =
        (fun ~sender:_ msg ->
          match Instance_server.handle_io t.instances msg with
          | Some r -> Some r
          | None -> None);
    }
  in
  let server_pid =
    Kernel.spawn host ~name:"program-manager" (fun self ->
        let rec loop () =
          let msg, sender = Kernel.receive self in
          if msg.Vmsg.code = Svc.Op.run_program then begin
            let reply =
              match msg.Vmsg.payload with
              | Svc.P_run { program; argument } -> (
                  match run_program t self ~program ~argument with
                  | Ok status -> Vmsg.ok ~payload:(Svc.P_exit_status status) ()
                  | Error (Vio.Verr.Denied code) -> Vmsg.reply code
                  | Error _ -> Vmsg.reply Reply.Server_error)
              | _ -> Vmsg.reply Reply.Bad_operation
            in
            ignore (Kernel.reply self ~to_:sender reply)
          end
          else Csnh.handle_request self handlers (Csnh.make_stats "pm") ~sender msg;
          loop ()
        in
        loop ())
  in
  t.pid <- Some server_pid;
  Kernel.set_pid host ~service:Service.Id.program_manager server_pid Service.Local;
  t

(* Install a program image into a file server's /bin (scenario setup). *)
let install_image file_server ~name ~image =
  let fs = File_server.fs file_server in
  let bin =
    match Fs.lookup fs ~dir:Fs.root_ino "bin" with
    | Some (Fs.Dir_entry ino) -> ino
    | _ -> failwith "file server has no /bin"
  in
  match Fs.create_file fs ~dir:bin ~owner:"system" name with
  | Error code -> Error code
  | Ok ino -> (
      match Fs.write_file fs ~ino image with
      | Ok () -> Ok ()
      | Error code -> Error code)
