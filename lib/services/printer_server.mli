(** The laser printer spooler: jobs are created by opening a name in the
    printer's context for writing; releasing the instance queues the
    job; the context directory lists the queue (§6). *)

module Kernel = Vkernel.Kernel

type job_state = Spooling | Queued | Printing | Done

val state_to_string : job_state -> string

type job = {
  job_name : string;
  mutable content : Buffer.t;
  mutable state : job_state;
  submitted : float;
  mutable completed : float option;
}

type t

(** Boot the printer server (network-visible service). *)
val start : Vnaming.Vmsg.t Kernel.host -> t

val pid : t -> Vkernel.Pid.t
val stats : t -> Vnaming.Csnh.server_stats

(** All jobs, oldest first. *)
val jobs : t -> job list

val job_state : t -> string -> job_state option
