(* The simulated disk behind a storage server: 512-byte pages delivered
   every 15 ms (the figure the paper's stream measurement assumes), with
   accesses serialized on the single arm.

   Synchronous reads/writes block the calling fiber; [read_async]
   supports the file server's read-ahead, queueing the transfer and
   reporting when the page will be in memory. *)

module Calibration = Vnet.Calibration

type t = {
  engine : Vsim.Engine.t;
  pages : (int, bytes) Hashtbl.t;
  page_ms : float;
  page_bytes : int;
  capacity_pages : int option;
  mutable busy_until : float;
  reads : Vsim.Stats.Counter.t;
  writes : Vsim.Stats.Counter.t;
}

let create ?(page_ms = Calibration.disk_page_ms)
    ?(page_bytes = Calibration.disk_page_bytes) ?capacity_pages engine =
  {
    engine;
    pages = Hashtbl.create 256;
    page_ms;
    page_bytes;
    capacity_pages;
    busy_until = 0.0;
    reads = Vsim.Stats.Counter.create "disk.reads";
    writes = Vsim.Stats.Counter.create "disk.writes";
  }

let capacity_pages t = t.capacity_pages

let page_bytes t = t.page_bytes

(* Forget queued setup traffic: the arm is idle from now on. Benchmarks
   call this after populating the disk outside measured time. *)
let reset_arm t = t.busy_until <- Vsim.Engine.now t.engine
let read_count t = Vsim.Stats.Counter.value t.reads
let write_count t = Vsim.Stats.Counter.value t.writes

(* Claim the arm for one page transfer; returns its completion time. *)
let enqueue_transfer t =
  let now = Vsim.Engine.now t.engine in
  let start = Float.max now t.busy_until in
  t.busy_until <- start +. t.page_ms;
  t.busy_until

(* Wait until [time] (no-op if past). *)
let wait_until t time =
  let now = Vsim.Engine.now t.engine in
  if time > now then Vsim.Proc.delay t.engine (time -. now)

let peek t page =
  match Hashtbl.find_opt t.pages page with
  | Some data -> Bytes.copy data
  | None -> Bytes.make t.page_bytes '\000'

(* Blocking read of one page (missing pages read as zeroes). *)
let read_page t page =
  Vsim.Stats.Counter.incr t.reads;
  wait_until t (enqueue_transfer t);
  peek t page

(* Start reading a page without blocking; the result is the time at
   which the page will be in memory. *)
let read_page_async t page =
  Vsim.Stats.Counter.incr t.reads;
  ignore page;
  enqueue_transfer t

let write_page t page data =
  if Bytes.length data > t.page_bytes then invalid_arg "Disk.write_page: too large";
  Vsim.Stats.Counter.incr t.writes;
  wait_until t (enqueue_transfer t);
  let stored = Bytes.make t.page_bytes '\000' in
  Bytes.blit data 0 stored 0 (Bytes.length data);
  Hashtbl.replace t.pages page stored

(* Write without waiting for the platter (write-behind, used for
   directory updates whose latency the paper's figures do not charge to
   the client path). *)
let write_page_behind t page data =
  if Bytes.length data > t.page_bytes then
    invalid_arg "Disk.write_page_behind: too large";
  Vsim.Stats.Counter.incr t.writes;
  ignore (enqueue_transfer t);
  let stored = Bytes.make t.page_bytes '\000' in
  Bytes.blit data 0 stored 0 (Bytes.length data);
  Hashtbl.replace t.pages page stored
