(** The simulated disk behind a storage server: 512-byte pages delivered
    every 15 ms (the paper's stream-measurement assumption), with all
    accesses serialized on the single arm. *)

type t

(** [capacity_pages] bounds the medium; unbounded by default. *)
val create :
  ?page_ms:float -> ?page_bytes:int -> ?capacity_pages:int -> Vsim.Engine.t -> t

val page_bytes : t -> int
val capacity_pages : t -> int option
val read_count : t -> int
val write_count : t -> int

(** Forget queued setup traffic: the arm is idle from now on. Used by
    benchmarks after out-of-band population. *)
val reset_arm : t -> unit

(** Claim the arm for one page transfer; returns its completion time.
    Building block for asynchronous transfers (read-ahead). *)
val enqueue_transfer : t -> float

(** Block the calling fiber until [time] (no-op if past). *)
val wait_until : t -> float -> unit

(** Current contents of a page, without touching the arm (the page must
    already be in memory — used under the buffer cache). Missing pages
    read as zeroes. *)
val peek : t -> int -> bytes

(** Blocking read of one page. *)
val read_page : t -> int -> bytes

(** Start reading a page without blocking; returns the time at which it
    will be in memory. *)
val read_page_async : t -> int -> float

(** Blocking write of one page. *)
val write_page : t -> int -> bytes -> unit

(** Write-behind: the data is durable immediately, the arm time is
    accounted for, but the caller does not wait. *)
val write_page_behind : t -> int -> bytes -> unit
