(** Replicated directory service management (§7).

    A replica set is N file servers joined into one process group and
    registered, domain-wide, under one logical service id: GetPid
    returns one live member via the kernel balancer (read-one), the
    coordinating prefix server fans CSNH writes out to every member
    (write-all). This module wires the pieces together; the protocol
    lives in {!Vkernel.Kernel}, {!Vnaming.Prefix_server} and
    {!Vnaming.Seq_guard}. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Service = Vkernel.Service
module Balancer = Vkernel.Balancer
module Ethernet = Vnet.Ethernet
open Vnaming

type t

(** Join [members] into a fresh process group and bind it to [service]
    (default {!Service.Id.replica_storage}) with the given balancer
    policy. Members register the service with [Remote] scope so lookups
    on their own hosts still balance. *)
val install :
  Vmsg.t Kernel.domain ->
  ?service:int ->
  ?policy:Balancer.policy ->
  members:(Vmsg.t Kernel.host * File_server.t) list ->
  unit ->
  t

(** Drop the service→group binding; GetPid reverts to broadcast. *)
val uninstall : t -> unit

val service : t -> int
val group : t -> int
val policy : t -> Balancer.policy
val factor : t -> int

(** Members sorted by host address. *)
val members : t -> (Ethernet.addr * File_server.t) list

val member_pids : t -> Pid.t list
val find_member : t -> Ethernet.addr -> File_server.t option

(** The prefix-binding target clients should use: logical, so every use
    re-resolves through GetPid and the balancer. *)
val target : t -> Prefix_server.target

(** Revive the member on [addr] after a crash: restart it over the
    surviving disk, replay the group write log to it (its {!Seq_guard}
    skips already-applied writes), then rejoin it to the group — the
    balancer never sees a member that has not caught up. Returns the
    fresh server, or [None] if [addr] holds no member. *)
val revive : t -> Ethernet.addr -> File_server.t option
