(** Replicated directory service management (§7).

    A replica set is N file servers joined into one process group and
    registered, domain-wide, under one logical service id: GetPid
    returns one live member via the kernel balancer (read-one), the
    coordinating prefix server fans CSNH writes out to every member
    (write-all). This module wires the pieces together; the protocol
    lives in {!Vkernel.Kernel}, {!Vnaming.Prefix_server} and
    {!Vnaming.Seq_guard}. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Service = Vkernel.Service
module Balancer = Vkernel.Balancer
module Ethernet = Vnet.Ethernet
open Vnaming

type t

(** Join [members] into a fresh process group and bind it to [service]
    (default {!Service.Id.replica_storage}) with the given balancer
    policy. Members register the service with [Remote] scope so lookups
    on their own hosts still balance. *)
val install :
  Vmsg.t Kernel.domain ->
  ?service:int ->
  ?policy:Balancer.policy ->
  members:(Vmsg.t Kernel.host * File_server.t) list ->
  unit ->
  t

(** Drop the service→group binding; GetPid reverts to broadcast. *)
val uninstall : t -> unit

(** [protect t ps] overload-protects the replica set: every member gets
    the {!Admission.file_server} policy (stamped fan-out writes always
    admitted) and the coordinating prefix server [ps] gets
    {!Admission.coordinator} sized to the replication factor — the one
    place replicated-write backpressure is applied. Survives
    {!revive}. [?config] overrides the coordinator policy. *)
val protect : t -> ?config:Admission.config -> Prefix_server.t -> unit

(** Undo {!protect} on members and coordinator. *)
val unprotect : t -> Prefix_server.t -> unit

val service : t -> int
val group : t -> int
val policy : t -> Balancer.policy
val factor : t -> int

(** Members sorted by host address. *)
val members : t -> (Ethernet.addr * File_server.t) list

val member_pids : t -> Pid.t list
val find_member : t -> Ethernet.addr -> File_server.t option

(** The prefix-binding target clients should use: logical, so every use
    re-resolves through GetPid and the balancer. *)
val target : t -> Prefix_server.target

(** Revive the member on [addr] after a crash: restart it over the
    surviving disk, replay the committed group write log to it (its
    {!Seq_guard} skips already-applied writes and applies the rest in
    order), looping until nothing remains to replay and no fan-out is
    still in flight, and only then — atomically with that check —
    rejoin it to the group: the balancer never sees a member that has
    not caught up, and no write can land between the last replay and
    the rejoin. The rejoin is abandoned if the capped log has trimmed
    writes this member never applied, or if a replay send fails
    persistently. Returns the fresh server, or [None] if [addr] holds
    no member. *)
val revive : t -> Ethernet.addr -> File_server.t option

(** Replay the committed write log to every live member — the
    convergence pass to run when a partition heals. A member that was
    partitioned from a coordinator missed that coordinator's fan-outs
    (and has been refusing all later writes as out-of-order since);
    replay from a process on its own host delivers the missed writes in
    order. Members that missed nothing answer every entry from their
    dedup guards. *)
val sync : t -> unit
