(* The Virtual Graphics Terminal Server (VGTS): the multiple-window
   system the paper's workstations run ("virtual graphics terminal
   server", §6; "the functionality matches well with our multiple window
   and executive system", §7).

   Windows are named temporary objects in the server's context. Every
   interaction uses the uniform machinery: Create makes a window, the
   I/O protocol writes text into it, QueryName/ModifyName read and
   change its geometry through description attributes, the context
   directory lists the windows, Remove closes one. The server can render
   the resulting screen as text, windows overlapping in z-order. *)

module Kernel = Vkernel.Kernel
module Service = Vkernel.Service
open Vnaming

type geometry = { x : int; y : int; w : int; h : int }

type window = {
  win_name : string;
  mutable geo : geometry;
  mutable z : int; (* higher is on top *)
  mutable lines : string list; (* newest first *)
  created : float;
  win_instance : int;
}

type t = {
  windows : (string, window) Hashtbl.t;
  sessions : (int, [ `Window of window | `Dir of bytes ]) Hashtbl.t;
  mutable next_instance : int;
  mutable next_z : int;
  engine : Vsim.Engine.t;
  stats : Csnh.server_stats;
  mutable pid : Vkernel.Pid.t option;
}

let block_size = 512

let pid t = Option.get t.pid
let stats t = t.stats

let window_names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.windows [] |> List.sort compare

let geometry t name = Option.map (fun w -> w.geo) (Hashtbl.find_opt t.windows name)

let window_lines t name =
  match Hashtbl.find_opt t.windows name with
  | Some w -> List.rev w.lines
  | None -> []

(* Geometry rides in the description's attributes, so the standard
   modify operation is the window-management interface. *)
let geometry_attrs g =
  [
    ("x", string_of_int g.x); ("y", string_of_int g.y);
    ("w", string_of_int g.w); ("h", string_of_int g.h);
  ]

let geometry_of_attrs ~current attrs =
  let field key fallback =
    match List.assoc_opt key attrs with
    | Some v -> ( match int_of_string_opt v with Some n -> n | None -> fallback)
    | None -> fallback
  in
  {
    x = field "x" current.x;
    y = field "y" current.y;
    w = max 8 (field "w" current.w);
    h = max 3 (field "h" current.h);
  }

let describe w =
  Descriptor.make ~obj_type:Descriptor.Device ~size:(List.length w.lines)
    ~created:w.created ~instance:w.win_instance ~attrs:(geometry_attrs w.geo)
    w.win_name

let fresh_instance t =
  let id = t.next_instance in
  t.next_instance <- id + 1;
  id

let raise_window t w =
  t.next_z <- t.next_z + 1;
  w.z <- t.next_z

let create_window t ~now name =
  if name = "" then Error Reply.Illegal_name
  else if Hashtbl.mem t.windows name then Error Reply.Duplicate_name
  else begin
    (* Cascade new windows so they do not pile on one spot. *)
    let n = Hashtbl.length t.windows in
    let win =
      {
        win_name = name;
        geo = { x = 2 + (3 * n); y = 1 + (2 * n); w = 28; h = 7 };
        z = 0;
        lines = [];
        created = now;
        win_instance = fresh_instance t;
      }
    in
    raise_window t win;
    Hashtbl.replace t.windows name win;
    Ok win
  end

(* --- the screen --- *)

(* Paint windows bottom-up into a character matrix: frames, a title bar,
   and the newest lines of content clipped to the interior. *)
let render t ~width ~height =
  let screen = Array.make_matrix height width '.' in
  let put y x c =
    if y >= 0 && y < height && x >= 0 && x < width then screen.(y).(x) <- c
  in
  let paint (w : window) =
    let { x; y; w = ww; h = hh } = w.geo in
    for row = y to y + hh - 1 do
      for col = x to x + ww - 1 do
        let c =
          if row = y || row = y + hh - 1 then '-'
          else if col = x || col = x + ww - 1 then '|'
          else ' '
        in
        put row col c
      done
    done;
    put y x '+';
    put y (x + ww - 1) '+';
    put (y + hh - 1) x '+';
    put (y + hh - 1) (x + ww - 1) '+';
    (* Title on the top border. *)
    String.iteri
      (fun i c -> if i < ww - 4 then put y (x + 2 + i) c)
      w.win_name;
    (* Newest content lines in the interior. *)
    let interior = hh - 2 in
    let lines = List.filteri (fun i _ -> i < interior) w.lines |> List.rev in
    List.iteri
      (fun i line ->
        String.iteri
          (fun j c -> if j < ww - 2 then put (y + 1 + i) (x + 1 + j) c)
          line)
      lines
  in
  Hashtbl.fold (fun _ w acc -> w :: acc) t.windows []
  |> List.sort (fun a b -> compare a.z b.z)
  |> List.iter paint;
  String.concat "\n"
    (Array.to_list (Array.map (fun row -> String.init width (Array.get row)) screen))

(* --- protocol handlers --- *)

let handle_csname t ~sender:_ (msg : Vmsg.t) _req _ctx remaining =
  let open Vmsg in
  let now = Vsim.Engine.now t.engine in
  match remaining with
  | [] ->
      if msg.code = Op.open_instance then begin
        let image =
          Descriptor.directory_to_bytes
            (List.map (fun n -> describe (Hashtbl.find t.windows n)) (window_names t))
        in
        let id = fresh_instance t in
        Hashtbl.replace t.sessions id (`Dir image);
        ok
          ~payload:
            (P_instance { instance = id; file_size = Bytes.length image; block_size })
          ()
      end
      else if msg.code = Op.map_context then
        ok
          ~payload:
            (P_context_spec
               (Context.spec ~server:(pid t) ~context:Context.Well_known.default))
          ()
      else if msg.code = Op.query_name then
        ok
          ~payload:
            (P_descriptor
               (Descriptor.make ~obj_type:Descriptor.Directory
                  ~size:(Hashtbl.length t.windows) "[windows]"))
          ()
      else reply Reply.Bad_operation
  | [ name ] ->
      if msg.code = Op.create_object then (
        match create_window t ~now name with
        | Ok _ -> ok ()
        | Error code -> reply code)
      else if msg.code = Op.open_instance then
        match msg.payload with
        | P_open { mode } -> (
            let window =
              match Hashtbl.find_opt t.windows name with
              | Some w -> Ok w
              | None -> (
                  match mode with
                  | Write | Append -> create_window t ~now name
                  | Read | Directory_listing -> Error Reply.Not_found)
            in
            match window with
            | Error code -> reply code
            | Ok w ->
                (* Opening a window raises it, like selecting it. *)
                raise_window t w;
                let id = fresh_instance t in
                Hashtbl.replace t.sessions id (`Window w);
                ok
                  ~payload:
                    (P_instance
                       {
                         instance = id;
                         file_size = List.length w.lines;
                         block_size;
                       })
                  ())
        | _ -> reply Reply.Bad_operation
      else if msg.code = Op.query_name then
        match Hashtbl.find_opt t.windows name with
        | Some w -> ok ~payload:(P_descriptor (describe w)) ()
        | None -> reply Reply.Not_found
      else if msg.code = Op.modify_name then
        match (Hashtbl.find_opt t.windows name, msg.payload) with
        | Some w, P_descriptor requested ->
            (* Window management via the uniform modify operation: the
               geometry attributes move and resize. *)
            w.geo <-
              geometry_of_attrs ~current:w.geo requested.Descriptor.attrs;
            raise_window t w;
            ok ()
        | None, _ -> reply Reply.Not_found
        | Some _, _ -> reply Reply.Bad_operation
      else if msg.code = Op.remove_object then
        if Hashtbl.mem t.windows name then begin
          Hashtbl.remove t.windows name;
          ok ()
        end
        else reply Reply.Not_found
      else reply Reply.Bad_operation
  | _ :: _ -> Vmsg.reply Reply.Not_found

let image_of_window w =
  match w.lines with
  | [] -> Bytes.empty
  | lines -> Bytes.of_string (String.concat "\n" (List.rev lines) ^ "\n")

let handle_other t ~sender:_ (msg : Vmsg.t) =
  let open Vmsg in
  match msg.payload with
  | P_write { instance; data; _ } when msg.code = Op.write_instance -> (
      match Hashtbl.find_opt t.sessions instance with
      | Some (`Window w) ->
          w.lines <- Bytes.to_string data :: w.lines;
          Some (ok ~payload:(P_count (Bytes.length data)) ())
      | Some (`Dir _) -> Some (reply Reply.No_permission)
      | None -> Some (reply Reply.Invalid_instance))
  | P_read { instance; block } when msg.code = Op.read_instance -> (
      match Hashtbl.find_opt t.sessions instance with
      | None -> Some (reply Reply.Invalid_instance)
      | Some session ->
          let image =
            match session with
            | `Dir image -> image
            | `Window w -> image_of_window w
          in
          let off = block * block_size in
          if block < 0 then Some (reply Reply.Invalid_instance)
          else if off >= Bytes.length image then Some (reply Reply.End_of_file)
          else begin
            let data =
              Bytes.sub image off (min block_size (Bytes.length image - off))
            in
            Some (ok ~extra_bytes:(Bytes.length data) ~payload:(P_data data) ())
          end)
  | P_instance_arg instance when msg.code = Op.query_instance -> (
      match Hashtbl.find_opt t.sessions instance with
      | Some (`Window w) -> Some (ok ~payload:(P_descriptor (describe w)) ())
      | Some (`Dir image) ->
          Some
            (ok
               ~payload:
                 (P_descriptor
                    (Descriptor.make ~obj_type:Descriptor.Directory
                       ~size:(Bytes.length image) ~instance "[windows]"))
               ())
      | None -> Some (reply Reply.Invalid_instance))
  | P_instance_arg instance when msg.code = Op.release_instance ->
      if Hashtbl.mem t.sessions instance then begin
        Hashtbl.remove t.sessions instance;
        Some (ok ())
      end
      else Some (reply Reply.Invalid_instance)
  | _ -> None

let start host =
  let engine = Kernel.engine_of_domain (Kernel.domain_of_host host) in
  let t =
    {
      windows = Hashtbl.create 8;
      sessions = Hashtbl.create 8;
      next_instance = 1;
      next_z = 0;
      engine;
      stats = Csnh.make_stats "vgts";
      pid = None;
    }
  in
  let handlers =
    {
      Csnh.valid_context = (fun ctx -> ctx = Context.Well_known.default);
      lookup = (fun _ _ -> Csnh.Stop);
      handle_csname = (fun ~sender msg req ctx remaining ->
          handle_csname t ~sender msg req ctx remaining);
      handle_other = (fun ~sender msg -> handle_other t ~sender msg);
    }
  in
  let server_pid =
    Kernel.spawn host ~name:"vgts" (fun self -> Csnh.serve self ~stats:t.stats handlers)
  in
  t.pid <- Some server_pid;
  (* The VGTS is this workstation's graphics service; reuse the terminal
     service id with Local scope would clash with the line-terminal
     server, so it registers under its own id. *)
  Kernel.set_pid host ~service:Service.Id.vgts server_pid Service.Local;
  t
