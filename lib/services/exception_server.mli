(** The exception server: collects exception reports from processes on
    its workstation and exposes the recent ones as a context directory —
    one more object type under the uniform listing machinery (§6). *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid

type report = { culprit : Pid.t; what : string; at : float }

type t

(** Boot the per-workstation exception server (Local-scope service). *)
val start : Vnaming.Vmsg.t Kernel.host -> t

val pid : t -> Pid.t

(** Recent reports, oldest first (bounded history). *)
val reports : t -> report list

(** Client stub: report an exception to this workstation's server.
    Silently a no-op when none is registered. *)
val report : Vnaming.Vmsg.t Kernel.self -> culprit:Pid.t -> string -> unit
