(** The V storage server: a CSNH server over the inode filesystem.

    Context identifiers map onto directories, which act as starting
    points for interpreting relative pathnames (§6) — well-known ids
    name the root, the owner's home directory and the standard program
    directory; every other directory has an ordinary context id derived
    from its inode. Cross-server links in directories become request
    forwarding; file access runs over the I/O protocol with optional
    read-ahead. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Service = Vkernel.Service
open Vnaming

type t

(** Boot a storage server on [host] with the standard layout (/bin as
    the program directory, /users/<owner> as the home directory) and
    register the storage service in the given scope. *)
val start :
  Vmsg.t Kernel.host ->
  name:string ->
  ?owner:string ->
  ?scope:Service.scope ->
  unit ->
  t

val pid : t -> Pid.t
val name : t -> string

(** {1 Overload protection}

    Off by default. Enabling stores the policy on the server record and
    installs it on the live serving process; [restart_from] re-installs
    it on the replacement process automatically. *)

(** [enable_admission t domain ()] — default config
    {!Admission.file_server}. *)
val enable_admission :
  t -> Vmsg.t Kernel.domain -> ?config:Admission.config -> unit -> unit

val disable_admission : t -> Vmsg.t Kernel.domain -> unit
val admission_config : t -> Admission.config option

(** Boot a fresh server process over the state of a crashed one: the
    disk and directory structure survive, buffered pages and open
    instances do not. The new process has a new pid and re-registers the
    storage service (what logical prefix bindings re-resolve to). *)
val restart_from : t -> Vmsg.t Kernel.host -> ?scope:Service.scope -> unit -> t

(** Direct access to the underlying filesystem and disk, for scenario
    setup and benchmarks. Live traffic uses the protocols. *)
val fs : t -> Fs.t

val disk : t -> Disk.t
val stats : t -> Csnh.server_stats

(** Highest replicated-write sequence number this member has durably
    applied from [origin] (see {!Vnaming.Seq_guard}); 0 if none. Used
    by a catch-up to decide whether the trimmed group log still covers
    this member. *)
val applied_wseq : t -> origin:int -> int

(** Currently open instances — 0 once every client has released (the
    no-orphan-instances invariant fault injection checks). *)
val open_instance_count : t -> int

(** How many blocks to prefetch past each sequential read (0 disables;
    the default is 1). *)
val set_read_ahead : t -> int -> unit

(** A fully specified context on this server. *)
val spec : t -> context:Context.id -> Context.spec

(** The low-level identifier (inode number) of a path — what a §2.1
    centralized name server hands out. *)
val low_id_of_path : t -> string -> int option

(** {1 The accounts context (§5.2)}

    The server's second object type: user accounts, in their own
    well-known context ({!Vnaming.Context.Well_known.accounts}).
    Creating an account also creates its home directory. *)

val account_names : t -> string list
