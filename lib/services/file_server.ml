(* The V storage server: a CSNH server over the inode filesystem.

   Context identifiers map onto directories, which act as starting
   points for interpreting relative pathnames (§6) — the well-known ids
   name the root, the owner's home directory and the standard program
   directory; every other directory gets an ordinary context id derived
   from its inode. Cross-server links in directories become request
   forwarding. File access runs over the I/O protocol, with optional
   read-ahead. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Service = Vkernel.Service
module Calibration = Vnet.Calibration
open Vnaming

(* Ordinary context ids are inode numbers displaced past the well-known
   range. *)
let ctx_base = Context.Well_known.first_ordinary
let ctx_of_ino ino = ino + ctx_base

type open_file = {
  of_ino : int;
  of_name : string;
  of_mode : Vmsg.open_mode;
  of_base_block : int;  (* nonzero for append mode *)
  mutable of_last_block : int;
}

type instance_kind = Open_file of open_file | Dir_image of bytes * string

(* A user account: the second object type this server implements
   (§5.2: "a file server may implement both files and user accounts"),
   living in its own context. *)
type account = { acct_name : string; acct_created : float; acct_home : int }

type t = {
  server_name : string;
  owner : string;
  fs : Fs.t;
  disk : Disk.t;
  engine : Vsim.Engine.t;
  instances : (int, instance_kind) Hashtbl.t;
  mutable next_instance : int;
  mutable read_ahead : int; (* blocks prefetched past a sequential read *)
  mutable home_ino : int;
  mutable programs_ino : int;
  mutable users_ino : int;
  accounts : (string, account) Hashtbl.t;
  stats : Csnh.server_stats;
  guard : Seq_guard.t;
      (* dedupe of replicated writes on (origin, seq); the applied marks
         are durable like the disk, the reply cache is not *)
  mutable pid : Pid.t option;
  (* Hub and host name for byte-count metrics, set at spawn. *)
  mutable obs : (Vobs.Hub.t * string) option;
  (* Overload-protection policy; [None] = admission off. Survives
     [restart_from] (the record is copied), so a protected server
     rebooted over its disk comes back protected. *)
  mutable admission_cfg : Admission.config option;
}

let pid t = match t.pid with Some p -> p | None -> failwith "file server not started"

(* Overload protection: store the policy on the record and install it
   on the live serving process; [spawn_server] re-installs on every
   (re)boot, so protection survives [restart_from]. *)
let enable_admission t domain ?(config = Admission.file_server ()) () =
  t.admission_cfg <- Some config;
  match t.pid with
  | Some p -> Admission.install domain p config
  | None -> ()

let disable_admission t domain =
  t.admission_cfg <- None;
  match t.pid with Some p -> Admission.uninstall domain p | None -> ()

let admission_config t = t.admission_cfg
let fs t = t.fs
let applied_wseq t ~origin = Seq_guard.applied_seq t.guard ~origin
let disk t = t.disk
let stats t = t.stats
(* How many blocks to prefetch past each sequential read (0 disables). *)
let set_read_ahead t depth = t.read_ahead <- max 0 depth
let name t = t.server_name

let spec t ~context = Context.spec ~server:(pid t) ~context

(* The low-level identifier of a path: the inode number — what a
   centralized name server would hand out (§2.2 "fewer levels of
   naming"). *)
let low_id_of_path t path =
  match Fs.resolve_path t.fs path with
  | Some (Fs.File_entry ino) | Some (Fs.Dir_entry ino) -> Some ino
  | Some (Fs.Remote_link _) | None -> None

let charge t ms = if ms > 0.0 then Vsim.Proc.delay t.engine ms

let ino_of_ctx t ctx =
  if ctx = Context.Well_known.default then Some Fs.root_ino
  else if ctx = Context.Well_known.home then Some t.home_ino
  else if ctx = Context.Well_known.programs then Some t.programs_ino
  else if ctx >= ctx_base && Fs.is_dir t.fs (ctx - ctx_base) then Some (ctx - ctx_base)
  else None

(* --- the accounts context --- *)

let account_names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.accounts [] |> List.sort compare

let describe_account t (a : account) =
  Descriptor.make ~obj_type:Descriptor.User_account ~owner:a.acct_name
    ~created:a.acct_created
    ~attrs:
      [ ("home", Option.value ~default:"?" (Fs.path_of_ino t.fs a.acct_home)) ]
    a.acct_name

(* Creating an account also creates its home directory: one atomic
   single-server operation covering both object types. *)
let create_account t ~now name =
  if Hashtbl.mem t.accounts name then Error Reply.Duplicate_name
  else
    match Fs.mkdir t.fs ~dir:t.users_ino ~owner:name name with
    | Error code -> Error code
    | Ok home ->
        let a = { acct_name = name; acct_created = now; acct_home = home } in
        Hashtbl.replace t.accounts name a;
        Ok a

let remove_account t name =
  match Hashtbl.find_opt t.accounts name with
  | None -> Error Reply.Not_found
  | Some a -> (
      (* The home directory must be empty, like any directory removal. *)
      match Fs.unlink t.fs ~dir:t.users_ino a.acct_name with
      | Ok () ->
          Hashtbl.remove t.accounts name;
          Ok ()
      | Error code -> Error code)

(* --- instances --- *)

let open_instance_count t = Hashtbl.length t.instances

let fresh_instance t kind =
  let id = t.next_instance in
  t.next_instance <- id + 1;
  Hashtbl.replace t.instances id kind;
  id

let instance_info t id =
  match Hashtbl.find_opt t.instances id with
  | None -> None
  | Some (Dir_image (image, _)) ->
      Some
        {
          Vmsg.instance = id;
          file_size = Bytes.length image;
          block_size = Fs.block_size t.fs;
        }
  | Some (Open_file f) ->
      let size =
        match Fs.find t.fs f.of_ino with Some node -> node.Fs.size | None -> 0
      in
      Some
        { Vmsg.instance = id; file_size = size; block_size = Fs.block_size t.fs }

(* --- context directories --- *)

let directory_image t ~dir_ino =
  let entries = Fs.entries t.fs ~dir:dir_ino in
  charge t (float_of_int (List.length entries) *. Calibration.descriptor_fabricate_cpu);
  entries
  |> List.map (fun (name, entry) -> Fs.describe_entry t.fs ~name entry)
  |> Descriptor.directory_to_bytes

(* --- the CSNH handlers --- *)

let describe_dir t dir_ino =
  let path = Option.value ~default:"?" (Fs.path_of_ino t.fs dir_ino) in
  Descriptor.make ~obj_type:Descriptor.Directory
    ~size:(List.length (Fs.entries t.fs ~dir:dir_ino))
    ~owner:t.owner path

let open_existing t ~dir_ino ~name ~mode ino =
  match mode with
  | Vmsg.Read ->
      let f =
        { of_ino = ino; of_name = name; of_mode = mode; of_base_block = 0; of_last_block = -1 }
      in
      let id = fresh_instance t (Open_file f) in
      ignore dir_ino;
      Vmsg.ok ~payload:(Vmsg.P_instance (Option.get (instance_info t id))) ()
  | Vmsg.Write -> (
      match Fs.truncate t.fs ~ino with
      | Error code -> Vmsg.reply code
      | Ok () ->
          let f =
            { of_ino = ino; of_name = name; of_mode = mode; of_base_block = 0; of_last_block = -1 }
          in
          let id = fresh_instance t (Open_file f) in
          Vmsg.ok ~payload:(Vmsg.P_instance (Option.get (instance_info t id))) ())
  | Vmsg.Append ->
      let base =
        match Fs.find t.fs ino with
        | Some node -> Fs.file_blocks t.fs node
        | None -> 0
      in
      let f =
        { of_ino = ino; of_name = name; of_mode = mode; of_base_block = base; of_last_block = -1 }
      in
      let id = fresh_instance t (Open_file f) in
      Vmsg.ok ~payload:(Vmsg.P_instance (Option.get (instance_info t id))) ()
  | Vmsg.Directory_listing -> Vmsg.reply Reply.Not_a_context

let handle_open t ~ctx_ino ~remaining ~mode =
  match remaining with
  | [] ->
      (* The context itself: its directory read as a file (§5.6). *)
      let image = directory_image t ~dir_ino:ctx_ino in
      let path = Option.value ~default:"?" (Fs.path_of_ino t.fs ctx_ino) in
      let id = fresh_instance t (Dir_image (image, path)) in
      Vmsg.ok ~payload:(Vmsg.P_instance (Option.get (instance_info t id))) ()
  | [ name ] -> (
      match Fs.lookup t.fs ~dir:ctx_ino name with
      | Some (Fs.File_entry ino) -> open_existing t ~dir_ino:ctx_ino ~name ~mode ino
      | Some (Fs.Dir_entry _) | Some (Fs.Remote_link _) ->
          (* Directories are consumed by the walk; reaching here means a
             stale entry type. *)
          Vmsg.reply Reply.Not_a_context
      | None -> (
          match mode with
          | Vmsg.Write | Vmsg.Append -> (
              match Fs.create_file t.fs ~dir:ctx_ino ~owner:t.owner name with
              | Error code -> Vmsg.reply code
              | Ok ino -> open_existing t ~dir_ino:ctx_ino ~name ~mode ino)
          | Vmsg.Read | Vmsg.Directory_listing -> Vmsg.reply Reply.Not_found))
  | _ :: _ -> Vmsg.reply Reply.Not_found

(* Resolve all-but-last components of a path local to this server
   (used by Rename's second name). *)
let resolve_local_dir t ~ctx_ino components =
  let rec loop dir = function
    | [] -> Error Reply.Illegal_name
    | [ last ] -> Ok (dir, last)
    | c :: rest -> (
        match Fs.lookup t.fs ~dir c with
        | Some (Fs.Dir_entry ino) -> loop ino rest
        | Some (Fs.Remote_link _) -> Error Reply.No_permission
        | Some (Fs.File_entry _) -> Error Reply.Not_a_context
        | None -> Error Reply.Not_found)
  in
  loop ctx_ino components

let handle_load_file t self ~sender ~ctx_ino ~remaining =
  match remaining with
  | [ name ] -> (
      match Fs.lookup t.fs ~dir:ctx_ino name with
      | Some (Fs.File_entry ino) -> (
          match Fs.read_file t.fs ~ino with
          | Error code -> Vmsg.reply code
          | Ok data -> (
              match Kernel.move_to self ~sender data with
              | Ok () -> Vmsg.ok ~payload:(Vmsg.P_count (Bytes.length data)) ()
              | Error Kernel.Bad_buffer -> Vmsg.reply Reply.Invalid_instance
              | Error _ -> Vmsg.reply Reply.Server_error))
      | Some _ -> Vmsg.reply Reply.No_permission
      | None -> Vmsg.reply Reply.Not_found)
  | _ -> Vmsg.reply Reply.Not_found

(* Operations in the accounts context: a flat name space of a different
   object type, served by the same protocol machinery. *)
let handle_accounts t (msg : Vmsg.t) remaining =
  let open Vmsg in
  let now = Vsim.Engine.now t.engine in
  match remaining with
  | [] ->
      if msg.code = Op.open_instance then begin
        let image =
          Descriptor.directory_to_bytes
            (List.map
               (fun n -> describe_account t (Hashtbl.find t.accounts n))
               (account_names t))
        in
        let id = fresh_instance t (Dir_image (image, "[accounts]")) in
        ok ~payload:(P_instance (Option.get (instance_info t id))) ()
      end
      else if msg.code = Op.map_context then
        ok
          ~payload:
            (P_context_spec (spec t ~context:Context.Well_known.accounts))
          ()
      else if msg.code = Op.query_name then
        ok
          ~payload:
            (P_descriptor
               (Descriptor.make ~obj_type:Descriptor.Directory
                  ~size:(Hashtbl.length t.accounts) ~owner:t.owner "[accounts]"))
          ()
      else reply Reply.Bad_operation
  | [ name ] ->
      if msg.code = Op.query_name then
        match Hashtbl.find_opt t.accounts name with
        | Some a -> ok ~payload:(P_descriptor (describe_account t a)) ()
        | None -> reply Reply.Not_found
      else if msg.code = Op.create_object then (
        match create_account t ~now name with
        | Ok _ -> ok ()
        | Error code -> reply code)
      else if msg.code = Op.remove_object then (
        match remove_account t name with
        | Ok () -> ok ()
        | Error code -> reply code)
      else if msg.code = Op.map_context then
        (* An account's home directory is a context: map through it. *)
        match Hashtbl.find_opt t.accounts name with
        | Some a -> ok ~payload:(P_context_spec (spec t ~context:(ctx_of_ino a.acct_home))) ()
        | None -> reply Reply.Not_found
      else reply Reply.Bad_operation
  | _ :: _ -> Vmsg.reply Reply.Not_found

let handle_csname t self ~sender (msg : Vmsg.t) _req ctx remaining =
  let open Vmsg in
  if ctx = Context.Well_known.accounts then handle_accounts t msg remaining
  else
  match ino_of_ctx t ctx with
  | None -> reply Reply.Bad_context
  | Some ctx_ino ->
      if msg.code = Op.open_instance then
        match msg.payload with
        | P_open { mode } -> handle_open t ~ctx_ino ~remaining ~mode
        | _ -> reply Reply.Bad_operation
      else if msg.code = Op.load_file then
        handle_load_file t self ~sender ~ctx_ino ~remaining
      else if msg.code = Op.query_name then
        match remaining with
        | [] -> ok ~payload:(P_descriptor (describe_dir t ctx_ino)) ()
        | [ name ] -> (
            match Fs.lookup t.fs ~dir:ctx_ino name with
            | Some entry ->
                charge t Calibration.descriptor_fabricate_cpu;
                ok ~payload:(P_descriptor (Fs.describe_entry t.fs ~name entry)) ()
            | None -> reply Reply.Not_found)
        | _ -> reply Reply.Not_found
      else if msg.code = Op.modify_name then
        match (remaining, msg.payload) with
        | [ name ], P_descriptor requested -> (
            match Fs.lookup t.fs ~dir:ctx_ino name with
            | Some entry -> (
                match Fs.modify_entry t.fs entry requested with
                | Ok () -> ok ()
                | Error code -> reply code)
            | None -> reply Reply.Not_found)
        | _ -> reply Reply.Bad_operation
      else if msg.code = Op.map_context then
        match remaining with
        | [] -> ok ~payload:(P_context_spec (spec t ~context:(ctx_of_ino ctx_ino))) ()
        | [ name ] ->
            if Fs.lookup t.fs ~dir:ctx_ino name = None then reply Reply.Not_found
            else reply Reply.Not_a_context
        | _ -> reply Reply.Not_found
      else if msg.code = Op.create_object then
        match (remaining, msg.payload) with
        | [ name ], P_create { directory } -> (
            let result =
              if directory then
                Result.map (fun (_ : int) -> ()) (Fs.mkdir t.fs ~dir:ctx_ino ~owner:t.owner name)
              else
                Result.map (fun (_ : int) -> ())
                  (Fs.create_file t.fs ~dir:ctx_ino ~owner:t.owner name)
            in
            match result with Ok () -> ok () | Error code -> reply code)
        | [], P_create _ ->
            (* The name resolved to an existing context: the walk
               consumed it, so this create names something that already
               exists. *)
            reply Reply.Duplicate_name
        | _ -> reply Reply.Bad_operation
      else if msg.code = Op.remove_object then
        match remaining with
        | [ name ] -> (
            match Fs.unlink t.fs ~dir:ctx_ino name with
            | Ok () -> ok ()
            | Error code -> reply code)
        | [] -> (
            (* Removing a directory by name: the walk descended into it;
               unlink it from its parent (well-known contexts are not
               removable). *)
            if
              ctx_ino = Fs.root_ino || ctx_ino = t.home_ino
              || ctx_ino = t.programs_ino || ctx_ino = t.users_ino
            then reply Reply.No_permission
            else
              match Fs.find t.fs ctx_ino with
              | None -> reply Reply.Not_found
              | Some node -> (
                  match
                    Fs.unlink t.fs ~dir:node.Fs.parent node.Fs.name_in_parent
                  with
                  | Ok () -> ok ()
                  | Error code -> reply code))
        | _ -> reply Reply.Not_found
      else if msg.code = Op.rename_object then
        match (remaining, msg.payload) with
        | [ name ], P_name new_path -> (
            match resolve_local_dir t ~ctx_ino (Csname.components new_path) with
            | Error code -> reply code
            | Ok (new_dir, new_name) -> (
                match Fs.rename t.fs ~dir:ctx_ino name ~new_dir new_name with
                | Ok () -> ok ()
                | Error code -> reply code))
        | _ -> reply Reply.Bad_operation
      else if msg.code = Op.add_context_name then
        match (remaining, msg.payload) with
        | [ name ], P_context_spec target -> (
            (* A cross-server pointer: the curved arrow of Figure 4. *)
            match Fs.add_remote_link t.fs ~dir:ctx_ino name target with
            | Ok () -> ok ()
            | Error code -> reply code)
        | _ -> reply Reply.Bad_operation
      else if msg.code = Op.delete_context_name then
        match remaining with
        | [ name ] -> (
            match Fs.lookup t.fs ~dir:ctx_ino name with
            | Some (Fs.Remote_link _) -> (
                match Fs.unlink t.fs ~dir:ctx_ino name with
                | Ok () -> ok ()
                | Error code -> reply code)
            | Some _ -> reply Reply.No_permission
            | None -> reply Reply.Not_found)
        | _ -> reply Reply.Not_found
      else reply Reply.Bad_operation

(* Count bytes served/stored against (host, server-name, op). *)
let io_bytes t op n =
  match t.obs with
  | None -> ()
  | Some (hub, host) ->
      Vobs.Metrics.incr (Vobs.Hub.metrics hub) ~by:n ~host
        ~server:t.server_name ~op

let handle_io t (msg : Vmsg.t) =
  let open Vmsg in
  match msg.payload with
  | P_read { instance; block } when msg.code = Op.read_instance -> (
      match Hashtbl.find_opt t.instances instance with
      | None -> Some (reply Reply.Invalid_instance)
      | Some (Dir_image (image, _)) ->
          let bs = Fs.block_size t.fs in
          let off = block * bs in
          if block < 0 then Some (reply Reply.Invalid_instance)
          else if off >= Bytes.length image then Some (reply Reply.End_of_file)
          else begin
            let len = min bs (Bytes.length image - off) in
            let data = Bytes.sub image off len in
            io_bytes t "read-bytes" len;
            Some (ok ~extra_bytes:len ~payload:(P_data data) ())
          end
      | Some (Open_file f) -> (
          match Fs.read_block t.fs ~ino:f.of_ino ~block with
          | Error code -> Some (reply code)
          | Ok data ->
              f.of_last_block <- block;
              for ahead = 1 to t.read_ahead do
                Fs.prefetch_block t.fs ~ino:f.of_ino ~block:(block + ahead)
              done;
              io_bytes t "read-bytes" (Bytes.length data);
              Some (ok ~extra_bytes:(Bytes.length data) ~payload:(P_data data) ())))
  | P_write { instance; block; data } when msg.code = Op.write_instance -> (
      match Hashtbl.find_opt t.instances instance with
      | None -> Some (reply Reply.Invalid_instance)
      | Some (Dir_image _) -> Some (reply Reply.No_permission)
      | Some (Open_file f) ->
          if f.of_mode = Vmsg.Read then Some (reply Reply.No_permission)
          else begin
            match
              Fs.write_block t.fs ~ino:f.of_ino ~block:(f.of_base_block + block) data
            with
            | Error code -> Some (reply code)
            | Ok n ->
                io_bytes t "write-bytes" n;
                Some (ok ~payload:(P_count n) ())
          end)
  | P_instance_arg instance when msg.code = Op.query_instance -> (
      match Hashtbl.find_opt t.instances instance with
      | None -> Some (reply Reply.Invalid_instance)
      | Some (Dir_image (image, path)) ->
          Some
            (ok
               ~payload:
                 (P_descriptor
                    (Descriptor.make ~obj_type:Descriptor.Directory
                       ~size:(Bytes.length image) ~owner:t.owner ~instance path))
               ())
      | Some (Open_file f) -> (
          match Fs.describe_ino t.fs f.of_ino with
          | Some d ->
              Some (ok ~payload:(P_descriptor { d with Descriptor.instance = Some instance }) ())
          | None -> Some (reply Reply.Not_found)))
  | P_instance_arg instance when msg.code = Op.release_instance ->
      if Hashtbl.mem t.instances instance then begin
        Hashtbl.remove t.instances instance;
        Some (ok ())
      end
      else Some (reply Reply.Invalid_instance)
  | P_set_size { instance; size } when msg.code = Op.set_instance_size -> (
      match Hashtbl.find_opt t.instances instance with
      | None -> Some (reply Reply.Invalid_instance)
      | Some (Dir_image _) -> Some (reply Reply.No_permission)
      | Some (Open_file f) ->
          if f.of_mode = Vmsg.Read then Some (reply Reply.No_permission)
          else begin
            match Fs.set_size t.fs ~ino:f.of_ino size with
            | Ok () -> Some (ok ())
            | Error code -> Some (reply code)
          end)
  | _ -> None

let handle_other t ~sender:_ (msg : Vmsg.t) =
  let open Vmsg in
  match handle_io t msg with
  | Some reply_msg -> Some reply_msg
  | None ->
      if msg.code = Svc.Op.open_by_low_id then
        match msg.payload with
        | Svc.P_low_id { low_id; mode } -> (
            match Fs.find t.fs low_id with
            | Some node when node.Fs.kind = `File ->
                let name =
                  Option.value ~default:"?" (Fs.path_of_ino t.fs low_id)
                in
                Some (open_existing t ~dir_ino:node.Fs.parent ~name ~mode low_id)
            | Some _ | None -> Some (reply Reply.Not_found))
        | _ -> Some (reply Reply.Bad_operation)
      else if msg.code = Op.inverse_map_context then
        match msg.payload with
        | P_context_id ctx -> (
            match ino_of_ctx t ctx with
            | None -> Some (reply Reply.Bad_context)
            | Some ino -> (
                match Fs.path_of_ino t.fs ino with
                | Some path -> Some (ok ~payload:(P_name path) ())
                | None -> Some (reply Reply.Not_found)))
        | _ -> Some (reply Reply.Bad_operation)
      else if msg.code = Op.inverse_map_instance then
        match msg.payload with
        | P_instance_arg instance -> (
            match Hashtbl.find_opt t.instances instance with
            | Some (Open_file f) -> (
                match Fs.path_of_ino t.fs f.of_ino with
                | Some path -> Some (ok ~payload:(P_name path) ())
                | None -> Some (ok ~payload:(P_name f.of_name) ()))
            | Some (Dir_image (_, path)) -> Some (ok ~payload:(P_name path) ())
            | None -> Some (reply Reply.Invalid_instance))
        | _ -> Some (reply Reply.Bad_operation)
      else None

let lookup_for_walk t ctx component =
  if ctx = Context.Well_known.accounts then Csnh.Stop
  else
  match ino_of_ctx t ctx with
  | None -> Csnh.Stop
  | Some dir -> (
      match Fs.lookup t.fs ~dir component with
      | Some (Fs.Dir_entry ino) -> Csnh.Descend (ctx_of_ino ino)
      | Some (Fs.Remote_link spec) -> Csnh.Cross spec
      | Some (Fs.File_entry _) | None -> Csnh.Stop)

(* Register the serving process and handlers for an existing state
   record; shared by cold start and restart-from-disk. *)
let spawn_server host t scope =
  (match Kernel.obs (Kernel.domain_of_host host) with
  | Some hub -> t.obs <- Some (hub, Kernel.host_name host)
  | None -> t.obs <- None);
  let handlers self =
    {
      Csnh.valid_context =
        (fun ctx -> ctx = Context.Well_known.accounts || ino_of_ctx t ctx <> None);
      lookup = lookup_for_walk t;
      handle_csname =
        (fun ~sender msg req ctx remaining ->
          (* Replicated writes arrive stamped with the coordinator's
             (origin, seq): admit each pair once and in order, answer
             retries and replays from the cache (write-all idempotence).
             A gap means this member missed an earlier write: refuse
             with Retry — the out-of-sync rejection the coordinator
             treats as "member did not apply" — and wait for a log
             replay to deliver the missing writes in order. *)
          match msg.Vmsg.wseq with
          | Some { Vmsg.origin; seq } -> (
              match Seq_guard.admit t.guard ~origin ~seq with
              | `Replay (Some cached) -> cached
              | `Replay None -> Vmsg.ok ()
              | `Gap -> Vmsg.reply Reply.Retry
              | `Fresh ->
                  let r = handle_csname t self ~sender msg req ctx remaining in
                  Seq_guard.record t.guard ~origin ~seq r;
                  r)
          | None -> handle_csname t self ~sender msg req ctx remaining);
      handle_other = (fun ~sender msg -> handle_other t ~sender msg);
    }
  in
  let server_pid =
    Kernel.spawn host ~name:t.server_name (fun self ->
        Csnh.serve self ~stats:t.stats (handlers self))
  in
  t.pid <- Some server_pid;
  (match t.admission_cfg with
  | Some cfg -> Admission.install (Kernel.domain_of_host host) server_pid cfg
  | None -> ());
  Kernel.set_pid host ~service:Service.Id.storage server_pid scope

(* [restart_from old host] boots a fresh server process over the state
   of a crashed one — the disk (and the directory structure it holds)
   survived the crash; open instances did not. The new process gets a
   new pid and re-registers the storage service, which is what logical
   prefix bindings re-resolve to (§6). *)
let restart_from old host ?(scope = Service.Both) () =
  let t =
    {
      old with
      instances = Hashtbl.create 16;
      next_instance = 1;
      pid = None;
    }
  in
  (* Anything buffered in the dead server's memory is gone — including
     the cached replies to replicated writes (the applied marks are on
     disk and survive). *)
  Fs.drop_caches t.fs;
  Seq_guard.drop_replies t.guard;
  spawn_server host t scope;
  t

(* [start host ~name ~owner] boots a storage server on [host] with the
   standard layout (/bin as the program directory, /users/<owner> as the
   home directory), and registers the storage service. *)
let start host ~name ?(owner = "system") ?(scope = Service.Both) () =
  let engine = Kernel.engine_of_domain (Kernel.domain_of_host host) in
  let disk = Disk.create engine in
  let filesystem = Fs.create ~owner disk engine in
  let t =
    {
      server_name = name;
      owner;
      fs = filesystem;
      disk;
      engine;
      instances = Hashtbl.create 16;
      next_instance = 1;
      read_ahead = 1;
      home_ino = Fs.root_ino;
      programs_ino = Fs.root_ino;
      users_ino = Fs.root_ino;
      accounts = Hashtbl.create 8;
      stats = Csnh.make_stats name;
      guard = Seq_guard.create ();
      pid = None;
      obs = None;
      admission_cfg = None;
    }
  in
  (* Standard layout. *)
  let bin =
    match Fs.mkdir filesystem ~dir:Fs.root_ino ~owner "bin" with
    | Ok ino -> ino
    | Error _ -> assert false
  in
  let users =
    match Fs.mkdir filesystem ~dir:Fs.root_ino ~owner "users" with
    | Ok ino -> ino
    | Error _ -> assert false
  in
  let home =
    match Fs.mkdir filesystem ~dir:users ~owner owner with
    | Ok ino -> ino
    | Error _ -> assert false
  in
  (match Fs.mkdir filesystem ~dir:Fs.root_ino ~owner "tmp" with
  | Ok _ | Error _ -> ());
  t.programs_ino <- bin;
  t.home_ino <- home;
  t.users_ino <- users;
  Hashtbl.replace t.accounts owner
    { acct_name = owner; acct_created = 0.0; acct_home = home };
  spawn_server host t scope;
  t
