(* The laser printer spooler: jobs are created by opening a name in the
   printer's context for writing; releasing the instance queues the job.
   The context directory lists the queue, so the standard "list
   directory" program shows printer jobs exactly like files (§6). *)

module Kernel = Vkernel.Kernel
module Service = Vkernel.Service
open Vnaming

(* Printing proceeds at one 512-byte page per this many ms. *)
let ms_per_page = 400.0

type job_state = Spooling | Queued | Printing | Done

let state_to_string = function
  | Spooling -> "spooling"
  | Queued -> "queued"
  | Printing -> "printing"
  | Done -> "done"

type job = {
  job_name : string;
  mutable content : Buffer.t;
  mutable state : job_state;
  submitted : float;
  mutable completed : float option;
}

type t = {
  jobs : (string, job) Hashtbl.t;
  sessions : (int, job) Hashtbl.t;
  mutable next_instance : int;
  mutable queue : job list; (* oldest first *)
  mutable printing : bool;
  engine : Vsim.Engine.t;
  stats : Csnh.server_stats;
  mutable pid : Vkernel.Pid.t option;
}

let pid t = Option.get t.pid
let stats t = t.stats

let jobs t =
  Hashtbl.fold (fun _ j acc -> j :: acc) t.jobs []
  |> List.sort (fun a b -> Float.compare a.submitted b.submitted)

let job_state t name =
  Option.map (fun j -> j.state) (Hashtbl.find_opt t.jobs name)

let describe job =
  Descriptor.make ~obj_type:Descriptor.Printer_job
    ~size:(Buffer.length job.content) ~created:job.submitted
    ~attrs:[ ("state", state_to_string job.state) ]
    job.job_name

(* Work the queue: one page per [ms_per_page], one job at a time. *)
let rec pump t =
  if not t.printing then
    match t.queue with
    | [] -> ()
    | job :: rest ->
        t.queue <- rest;
        t.printing <- true;
        job.state <- Printing;
        let pages = max 1 ((Buffer.length job.content + 511) / 512) in
        Vsim.Engine.schedule ~delay:(float_of_int pages *. ms_per_page) t.engine
          (fun () ->
            job.state <- Done;
            job.completed <- Some (Vsim.Engine.now t.engine);
            t.printing <- false;
            pump t)

let submit t job =
  if job.state = Spooling then begin
    job.state <- Queued;
    t.queue <- t.queue @ [ job ];
    pump t
  end

let handle_csname t ~sender:_ (msg : Vmsg.t) _req _ctx remaining =
  let open Vmsg in
  let now = Vsim.Engine.now t.engine in
  match remaining with
  | [] ->
      if msg.code = Op.open_instance then begin
        let image = Descriptor.directory_to_bytes (List.map describe (jobs t)) in
        let id = t.next_instance in
        t.next_instance <- id + 1;
        (* Directory images ride a spooling-free pseudo job. *)
        Hashtbl.replace t.sessions id
          {
            job_name = "[queue]";
            content =
              (let b = Buffer.create (Bytes.length image) in
               Buffer.add_bytes b image;
               b);
            state = Done;
            submitted = now;
            completed = None;
          };
        ok
          ~payload:
            (P_instance
               { instance = id; file_size = Bytes.length image; block_size = 512 })
          ()
      end
      else if msg.code = Op.map_context then
        ok
          ~payload:
            (P_context_spec
               (Context.spec ~server:(pid t) ~context:Context.Well_known.default))
          ()
      else reply Reply.Bad_operation
  | [ name ] ->
      if msg.code = Op.open_instance then
        match msg.payload with
        | P_open { mode = Write | Append } ->
            if Hashtbl.mem t.jobs name then reply Reply.Duplicate_name
            else begin
              let job =
                {
                  job_name = name;
                  content = Buffer.create 512;
                  state = Spooling;
                  submitted = now;
                  completed = None;
                }
              in
              Hashtbl.replace t.jobs name job;
              let id = t.next_instance in
              t.next_instance <- id + 1;
              Hashtbl.replace t.sessions id job;
              ok
                ~payload:
                  (P_instance { instance = id; file_size = 0; block_size = 512 })
                ()
            end
        | P_open _ -> reply Reply.No_permission
        | _ -> reply Reply.Bad_operation
      else if msg.code = Op.query_name then
        match Hashtbl.find_opt t.jobs name with
        | Some job -> ok ~payload:(P_descriptor (describe job)) ()
        | None -> reply Reply.Not_found
      else if msg.code = Op.remove_object then
        match Hashtbl.find_opt t.jobs name with
        | Some job when job.state = Queued ->
            t.queue <- List.filter (fun j -> j != job) t.queue;
            Hashtbl.remove t.jobs name;
            ok ()
        | Some _ -> reply Reply.No_permission
        | None -> reply Reply.Not_found
      else reply Reply.Bad_operation
  | _ :: _ -> Vmsg.reply Reply.Not_found

let handle_other t ~sender:_ (msg : Vmsg.t) =
  let open Vmsg in
  match msg.payload with
  | P_write { instance; data; _ } when msg.code = Op.write_instance -> (
      match Hashtbl.find_opt t.sessions instance with
      | Some job when job.state = Spooling ->
          Buffer.add_bytes job.content data;
          Some (ok ~payload:(P_count (Bytes.length data)) ())
      | Some _ -> Some (reply Reply.No_permission)
      | None -> Some (reply Reply.Invalid_instance))
  | P_read { instance; block } when msg.code = Op.read_instance -> (
      match Hashtbl.find_opt t.sessions instance with
      | None -> Some (reply Reply.Invalid_instance)
      | Some job ->
          let image = Buffer.to_bytes job.content in
          let off = block * 512 in
          if block < 0 then Some (reply Reply.Invalid_instance)
          else if off >= Bytes.length image then Some (reply Reply.End_of_file)
          else begin
            let data = Bytes.sub image off (min 512 (Bytes.length image - off)) in
            Some (ok ~extra_bytes:(Bytes.length data) ~payload:(P_data data) ())
          end)
  | P_instance_arg instance when msg.code = Op.query_instance -> (
      match Hashtbl.find_opt t.sessions instance with
      | Some job -> Some (ok ~payload:(P_descriptor (describe job)) ())
      | None -> Some (reply Reply.Invalid_instance))
  | P_instance_arg instance when msg.code = Op.release_instance -> (
      match Hashtbl.find_opt t.sessions instance with
      | Some job ->
          Hashtbl.remove t.sessions instance;
          (* Closing the spool submits the job. *)
          submit t job;
          Some (ok ())
      | None -> Some (reply Reply.Invalid_instance))
  | _ -> None

let start host =
  let engine = Kernel.engine_of_domain (Kernel.domain_of_host host) in
  let t =
    {
      jobs = Hashtbl.create 8;
      sessions = Hashtbl.create 8;
      next_instance = 1;
      queue = [];
      printing = false;
      engine;
      stats = Csnh.make_stats "printer";
      pid = None;
    }
  in
  let handlers =
    {
      Csnh.valid_context = (fun ctx -> ctx = Context.Well_known.default);
      lookup = (fun _ _ -> Csnh.Stop);
      handle_csname = (fun ~sender msg req ctx remaining ->
          handle_csname t ~sender msg req ctx remaining);
      handle_other = (fun ~sender msg -> handle_other t ~sender msg);
    }
  in
  let server_pid =
    Kernel.spawn host ~name:"printer-server" (fun self ->
        Csnh.serve self ~stats:t.stats handlers)
  in
  t.pid <- Some server_pid;
  Kernel.set_pid host ~service:Service.Id.printer server_pid Service.Both;
  t
