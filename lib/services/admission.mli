(** Server overload protection: the policy half of admission control.

    The kernel supplies the mechanism — two queues per protected
    process, a kernel-level [Busy] rejection — via
    {!Vkernel.Kernel.set_admission}; this module supplies the policy:
    lane classification (resolution traffic vs bulk mutation), queue
    caps with bulk shed first, deadline-aware drop against the
    client-stamped operation deadline, and the retry-after hint each
    [Busy] reply carries.

    Coordinator-stamped replicated writes ([Vmsg.wseq]) are admitted
    unconditionally — shedding one at a member would open a permanent
    sequence gap there; replicated-write backpressure belongs at the
    coordinator ({!coordinator}).

    Everything is pure except {!install}/{!uninstall}. Off by default
    everywhere: nothing changes until a caller installs a config. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid

type config = {
  queue_cap : int;
      (** total queued requests beyond which even interactive traffic
          is shed *)
  bulk_cap : int;
      (** total queued requests beyond which bulk traffic is shed;
          must not exceed [queue_cap] *)
  service_ms : float;
      (** modelled per-request service time; the queue-wait estimate
          is [depth * service_ms] *)
  retry_floor_ms : float;  (** no retry-after hint below this *)
}

val pp_config : Format.formatter -> config -> unit

(** [make ~service_ms ()] — defaults: caps 8 (bulk) / 16 (all),
    5ms hint floor.
    @raise Invalid_argument if [bulk_cap > queue_cap]. *)
val make :
  ?queue_cap:int ->
  ?bulk_cap:int ->
  ?retry_floor_ms:float ->
  service_ms:float ->
  unit ->
  config

(** Disk-backed storage server: a queued request is worth a disk page. *)
val file_server : unit -> config

(** Pure name server (context prefix / administrative domain server):
    a queued request is worth a prefix parse plus a component walk. *)
val name_server : unit -> config

(** Replica-set write coordinator: a queued request is worth a disk
    page plus a packet round-trip {e per member}. *)
val coordinator : replicas:int -> unit -> config

type lane = Interactive | Bulk

(** CSNH writes, I/O-protocol writes and whole-file loads are [Bulk];
    resolution, opens, reads and queries are [Interactive]. *)
val classify : Vnaming.Vmsg.t -> lane

val lane_to_string : lane -> string

(** The hint a shed at queue depth [depth] carries:
    [max retry_floor_ms (depth * service_ms)]. *)
val retry_after_ms : config -> depth:int -> float

(** The pure decision function; [install] wires it into the kernel. *)
val decide :
  config ->
  now:float ->
  depth:int ->
  Vnaming.Vmsg.t ->
  Vnaming.Vmsg.t Kernel.admission_verdict

(** Install the policy on a serving process (idempotent; replacing a
    live hook keeps queue and counters). *)
val install : Vnaming.Vmsg.t Kernel.domain -> Pid.t -> config -> unit

(** Remove the policy; queued bulk work drains back unharmed. *)
val uninstall : Vnaming.Vmsg.t Kernel.domain -> Pid.t -> unit

(** Protect a context prefix server (default config {!name_server}). *)
val protect_prefix_server :
  Vnaming.Vmsg.t Kernel.domain ->
  Vnaming.Prefix_server.t ->
  ?config:config ->
  unit ->
  unit

(** [(admitted, shed)] since installation; [(0, 0)] when none. *)
val counters : Vnaming.Vmsg.t Kernel.domain -> Pid.t -> int * int

(** Undelivered requests queued at the pid, both lanes. *)
val queue_depth : Vnaming.Vmsg.t Kernel.domain -> Pid.t -> int
