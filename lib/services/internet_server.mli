(** The internet server: a V-kernel IP/TCP gateway (§6) whose TCP
    connections are temporary named objects, listed in a context
    directory next to files and terminals.

    Connections are simulated loopback endpoints: written data is echoed
    back by the "remote" after a WAN round trip — enough to exercise the
    naming and I/O paths. Connection names follow the external
    host:port convention. *)

module Kernel = Vkernel.Kernel

(** Simulated WAN round-trip (ms) for handshake and echo. *)
val wan_rtt_ms : float

type conn_state = Syn_sent | Established | Closed

val state_to_string : conn_state -> string

type t

val start : Vnaming.Vmsg.t Kernel.host -> t
val pid : t -> Vkernel.Pid.t
val stats : t -> Vnaming.Csnh.server_stats
val valid_conn_name : string -> bool
val connection_state : t -> string -> conn_state option
