(* The mail server: a name space whose syntax is imposed from outside
   the system ("cheriton@su-score.ARPA") yet accessed through the same
   name-handling protocol — the extensibility argument of §2.2.

   Unlike the hierarchical servers, this server interprets the entire
   uninterpreted remainder of the name itself as one mailbox name (the
   protocol "imposes minimal restrictions on name syntax, and no
   restrictions on name interpretation"), so it bypasses the
   left-to-right component walk entirely. Messages move through the
   standard I/O protocol: Append-open a mailbox and each Write delivers
   one message; Read-open returns the mailbox contents. *)

module Kernel = Vkernel.Kernel
module Service = Vkernel.Service
open Vnaming

type message = { m_from : string; m_body : string; m_at : float }

type mailbox = {
  box_name : string;
  mutable messages : message list; (* newest first *)
  created : float;
}

type session = Deliver of mailbox * string (* sender user *) | Fetch of bytes

type t = {
  boxes : (string, mailbox) Hashtbl.t;
  sessions : (int, session) Hashtbl.t;
  mutable next_instance : int;
  engine : Vsim.Engine.t;
  stats : Csnh.server_stats;
  mutable pid : Vkernel.Pid.t option;
}

let block_size = 2048

let pid t = Option.get t.pid
let stats t = t.stats

(* Mailbox names follow the externally imposed user@host convention. *)
let valid_mailbox_name name =
  match String.index_opt name '@' with
  | Some i -> i > 0 && i < String.length name - 1 && not (String.contains name '/')
  | None -> false

let mailboxes t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.boxes [] |> List.sort compare

let messages t name =
  match Hashtbl.find_opt t.boxes name with
  | Some box -> List.rev box.messages
  | None -> []

let describe box =
  Descriptor.make ~obj_type:Descriptor.Mailbox
    ~size:(List.length box.messages) ~created:box.created box.box_name

let render_mailbox box =
  let render m = Fmt.str "From: %s (at %.1f)\n%s\n" m.m_from m.m_at m.m_body in
  Bytes.of_string (String.concat "\n" (List.rev_map render box.messages))

let find_or_create t ~now name =
  match Hashtbl.find_opt t.boxes name with
  | Some box -> box
  | None ->
      let box = { box_name = name; messages = []; created = now } in
      Hashtbl.replace t.boxes name box;
      box

let fresh_instance t =
  let id = t.next_instance in
  t.next_instance <- id + 1;
  id

(* Handle a CSname request: the whole remainder is the mailbox name. *)
let handle_csname t ~sender:_ (msg : Vmsg.t) req =
  let open Vmsg in
  let now = Vsim.Engine.now t.engine in
  let name = Csname.remaining req in
  if req.Csname.context <> Context.Well_known.default then
    reply Reply.Bad_context
  else if name = "" then
    if msg.code = Op.open_instance then begin
      (* The mail context directory: every mailbox. *)
      let image =
        Descriptor.directory_to_bytes
          (List.map (fun n -> describe (Hashtbl.find t.boxes n)) (mailboxes t))
      in
      let id = fresh_instance t in
      Hashtbl.replace t.sessions id (Fetch image);
      ok
        ~payload:
          (P_instance { instance = id; file_size = Bytes.length image; block_size })
        ()
    end
    else if msg.code = Op.map_context then
      ok
        ~payload:
          (P_context_spec
             (Context.spec ~server:(pid t) ~context:Context.Well_known.default))
        ()
    else reply Reply.Bad_operation
  else if not (valid_mailbox_name name) then reply Reply.Illegal_name
  else if msg.code = Op.open_instance then
    match msg.payload with
    | P_open { mode = Append | Write } ->
        let box = find_or_create t ~now name in
        let id = fresh_instance t in
        Hashtbl.replace t.sessions id (Deliver (box, "unknown"));
        ok ~payload:(P_instance { instance = id; file_size = 0; block_size }) ()
    | P_open { mode = Read } -> (
        match Hashtbl.find_opt t.boxes name with
        | None -> reply Reply.Not_found
        | Some box ->
            let image = render_mailbox box in
            let id = fresh_instance t in
            Hashtbl.replace t.sessions id (Fetch image);
            ok
              ~payload:
                (P_instance
                   { instance = id; file_size = Bytes.length image; block_size })
              ())
    | P_open { mode = Directory_listing } -> reply Reply.Not_a_context
    | _ -> reply Reply.Bad_operation
  else if msg.code = Op.query_name then
    match Hashtbl.find_opt t.boxes name with
    | Some box -> ok ~payload:(P_descriptor (describe box)) ()
    | None -> reply Reply.Not_found
  else if msg.code = Op.remove_object then
    if Hashtbl.mem t.boxes name then begin
      Hashtbl.remove t.boxes name;
      ok ()
    end
    else reply Reply.Not_found
  else reply Reply.Bad_operation

(* Each Write to a delivery session is one message: "From: user\n" head
   optional, rest is the body. *)
let handle_other t ~sender:_ (msg : Vmsg.t) =
  let open Vmsg in
  let now = Vsim.Engine.now t.engine in
  match msg.payload with
  | P_write { instance; data; _ } when msg.code = Op.write_instance -> (
      match Hashtbl.find_opt t.sessions instance with
      | Some (Deliver (box, _)) ->
          let text = Bytes.to_string data in
          let m_from, m_body =
            match String.index_opt text '\n' with
            | Some i when String.length text > 5 && String.sub text 0 5 = "From:"
              ->
                ( String.trim (String.sub text 5 (i - 5)),
                  String.sub text (i + 1) (String.length text - i - 1) )
            | _ -> ("unknown", text)
          in
          box.messages <- { m_from; m_body; m_at = now } :: box.messages;
          Some (ok ~payload:(P_count (Bytes.length data)) ())
      | Some (Fetch _) -> Some (reply Reply.No_permission)
      | None -> Some (reply Reply.Invalid_instance))
  | P_read { instance; block } when msg.code = Op.read_instance -> (
      match Hashtbl.find_opt t.sessions instance with
      | Some (Fetch image) ->
          let off = block * block_size in
          if block < 0 then Some (reply Reply.Invalid_instance)
          else if off >= Bytes.length image then Some (reply Reply.End_of_file)
          else begin
            let data =
              Bytes.sub image off (min block_size (Bytes.length image - off))
            in
            Some (ok ~extra_bytes:(Bytes.length data) ~payload:(P_data data) ())
          end
      | Some (Deliver _) -> Some (reply Reply.No_permission)
      | None -> Some (reply Reply.Invalid_instance))
  | P_instance_arg instance when msg.code = Op.release_instance ->
      if Hashtbl.mem t.sessions instance then begin
        Hashtbl.remove t.sessions instance;
        Some (ok ())
      end
      else Some (reply Reply.Invalid_instance)
  | P_instance_arg instance when msg.code = Op.query_instance -> (
      match Hashtbl.find_opt t.sessions instance with
      | Some (Deliver (box, _)) -> Some (ok ~payload:(P_descriptor (describe box)) ())
      | Some (Fetch image) ->
          Some
            (ok
               ~payload:
                 (P_descriptor
                    (Descriptor.make ~obj_type:Descriptor.Mailbox
                       ~size:(Bytes.length image) ~instance "[mail]"))
               ())
      | None -> Some (reply Reply.Invalid_instance))
  | _ -> None

let start host =
  let engine = Kernel.engine_of_domain (Kernel.domain_of_host host) in
  let t =
    {
      boxes = Hashtbl.create 8;
      sessions = Hashtbl.create 8;
      next_instance = 1;
      engine;
      stats = Csnh.make_stats "mail";
      pid = None;
    }
  in
  let server_pid =
    Kernel.spawn host ~name:"mail-server" (fun self ->
        (* Custom loop: this server's name interpretation is not
           component-wise, so it does not use the generic walk. *)
        let rec loop () =
          let msg, sender = Kernel.receive self in
          Vsim.Stats.Counter.incr t.stats.Csnh.requests;
          let reply_msg =
            match msg.Vmsg.name with
            | Some req when Vmsg.Op.is_csname_request msg.Vmsg.code ->
                Vsim.Proc.delay engine Vnet.Calibration.csname_common_cpu;
                handle_csname t ~sender msg req
            | Some _ | None -> (
                match handle_other t ~sender msg with
                | Some r -> r
                | None -> Vmsg.reply Reply.Bad_operation)
          in
          ignore (Kernel.reply self ~to_:sender reply_msg);
          loop ()
        in
        loop ())
  in
  t.pid <- Some server_pid;
  Kernel.set_pid host ~service:Service.Id.mail server_pid Service.Both;
  t
