(* The V message standards (§3.2, §5.3).

   A request message carries its operation code in the first field; the
   code determines the format of the variant part. Requests that carry a
   CSname additionally contain the standard fields of {!Csname.req},
   always in the same place, so any CSNH server can interpret and
   forward such a request without understanding its operation code.

   The [payload] is an extensible variant: each subsystem (I/O
   protocol, file server, services) adds its own constructors, mirroring
   how V servers define request formats for their own operations on top
   of the common standards. *)

module Kernel = Vkernel.Kernel

type payload = ..
type payload += No_payload

(* The resolution binding a CSNH server stamps into a successful reply:
   how far into the name interpretation reached, and the (server-pid,
   context-id) implementing the context at that point. Clients that keep
   a name-resolution cache learn bindings for free from it; everyone
   else ignores it. Like [Csname.req.trace], it fits the fixed 32-byte
   message proper and contributes nothing to [payload_bytes], so wire
   timings are identical whether any client caches or not. *)
type binding = { upto : int; spec : Context.spec }

(* Write sequencing for replicated services: the coordinating prefix
   server stamps each fanned-out CSNH write with its own pid ([origin])
   and a per-coordinator counter ([seq]). Replicas deduplicate retries
   and replays on (origin, seq). Like [binding], the pair fits the
   32-byte message proper and contributes nothing to [payload_bytes]. *)
type wseq = { origin : int; seq : int }

type t = {
  code : int;  (** request code, or reply code for replies *)
  is_reply : bool;
  name : Csname.req option;  (** the standard CSname fields, if any *)
  payload : payload;
  extra_bytes : int;
      (** wire bytes beyond the 32-byte message and the name segment:
          bulk data, directory records, etc. *)
  binding : binding option;
      (** resolution binding stamped into successful CSname replies *)
  wseq : wseq option;
      (** replicated-write sequence number stamped by the coordinator *)
  deadline : float option;
      (** absolute sim-time (ms) by which the client's operation budget
          expires; stamped by a resilience-enabled runtime so admission
          control can drop requests whose queue wait already exceeds it.
          Rides the 32-byte message proper — no wire bytes. *)
  retry_after : float option;
      (** server-supplied retry-after hint (ms) riding a [Busy] reply:
          the shedding server's own estimate of when capacity frees.
          Rides the 32-byte message proper — no wire bytes. *)
}

(* --- operation codes --- *)

module Op = struct
  (* Standard name-handling operations (§5.7). Codes below 200 are
     CSname requests; the name fields must be present. *)
  let open_instance = 101 (* create an instance of a named object (I/O §3.2) *)
  let query_name = 102 (* object description for a name *)
  let modify_name = 103 (* overwrite modifiable description fields *)
  let map_context = 104 (* name of a context -> (server-pid, context-id) *)
  let add_context_name = 105 (* optional: define a name for a context *)
  let delete_context_name = 106 (* optional: remove such a name *)
  let create_object = 107
  let remove_object = 108
  let rename_object = 109 (* second name travels in the payload *)

  let load_file = 110
  (* read a whole named file, delivered by MoveTo into the buffer the
     sender exposed: the program-loading path (§3.1) *)

  (* Non-CSname standard operations. *)
  let inverse_map_context = 120 (* context-id -> CSname *)
  let inverse_map_instance = 121 (* instance-id -> CSname *)

  (* The V I/O protocol. *)
  let read_instance = 130
  let write_instance = 131
  let query_instance = 132
  let release_instance = 133
  let set_instance_size = 134

  (* Service-specific codes start here. *)
  let first_service_specific = 200

  let is_csname_request code = code >= 100 && code < 120

  (* The CSname requests that mutate the object or name space — the set
     a replicated service must apply at every member (write-all). *)
  let is_csname_write code =
    code = modify_name || code = add_context_name
    || code = delete_context_name || code = create_object
    || code = remove_object || code = rename_object

  let names : (int, string) Hashtbl.t = Hashtbl.create 32

  let register code name = Hashtbl.replace names code name

  let () =
    List.iter
      (fun (c, n) -> register c n)
      [
        (open_instance, "Open");
        (query_name, "QueryName");
        (modify_name, "ModifyName");
        (map_context, "MapContext");
        (add_context_name, "AddContextName");
        (delete_context_name, "DeleteContextName");
        (create_object, "Create");
        (remove_object, "Remove");
        (rename_object, "Rename");
        (load_file, "LoadFile");
        (inverse_map_context, "InverseMapContext");
        (inverse_map_instance, "InverseMapInstance");
        (read_instance, "ReadInstance");
        (write_instance, "WriteInstance");
        (query_instance, "QueryInstance");
        (release_instance, "ReleaseInstance");
        (set_instance_size, "SetInstanceSize");
      ]

  let to_string code =
    match Hashtbl.find_opt names code with
    | Some n -> n
    | None -> Fmt.str "op%d" code
end

(* --- standard payloads --- *)

type instance_info = {
  instance : int;  (** object instance identifier (§4.3) *)
  file_size : int;  (** current size in bytes *)
  block_size : int;  (** preferred transfer unit *)
}

type open_mode = Read | Write | Append | Directory_listing

let pp_open_mode ppf m =
  Fmt.string ppf
    (match m with
    | Read -> "read"
    | Write -> "write"
    | Append -> "append"
    | Directory_listing -> "directory")

type payload +=
  | P_open of { mode : open_mode }
  | P_instance of instance_info  (** reply to Open *)
  | P_descriptor of Descriptor.t  (** QueryName reply / ModifyName request *)
  | P_context_spec of Context.spec
      (** MapContext reply; AddContextName static target *)
  | P_logical_spec of { service : int; context : Context.id }
      (** AddContextName target resolved via GetPid at each use (§6) *)
  | P_name of string  (** inverse-map replies; Rename's second name *)
  | P_context_id of Context.id  (** InverseMapContext request *)
  | P_instance_arg of int  (** InverseMapInstance request *)
  | P_read of { instance : int; block : int }
  | P_data of bytes  (** ReadInstance reply *)
  | P_write of { instance : int; block : int; data : bytes }
  | P_count of int  (** WriteInstance reply: bytes accepted; LoadFile
                        reply: bytes moved *)
  | P_create of { directory : bool }  (** Create request *)
  | P_set_size of { instance : int; size : int }  (** SetInstanceSize *)

(* --- constructors --- *)

let request ?name ?(extra_bytes = 0) ?(payload = No_payload) code =
  { code; is_reply = false; name; payload; extra_bytes; binding = None;
    wseq = None; deadline = None; retry_after = None }

let reply ?(extra_bytes = 0) ?(payload = No_payload) code =
  {
    code = Reply.to_int code;
    is_reply = true;
    name = None;
    payload;
    extra_bytes;
    binding = None;
    wseq = None;
    deadline = None;
    retry_after = None;
  }

let ok ?extra_bytes ?payload () = reply ?extra_bytes ?payload Reply.Ok

let reply_code m =
  if not m.is_reply then None
  else
    match Reply.of_int m.code with
    | Some c -> Some c
    | None -> Some Reply.Server_error

(* Did this reply succeed? Requests are never "successful replies".
   Checked on every reply a server or resolver handles, so compare
   codes directly rather than materialising option values. *)
let ok_code = Reply.to_int Reply.Ok
let succeeded m = m.is_reply && m.code = ok_code

(* [with_name m req] rewrites the standard CSname fields, leaving the
   rest of the (possibly not understood) message intact — the rewrite a
   CSNH server performs before forwarding (§5.4). *)
let with_name m name = { m with name = Some name }

(* Stamp (or overwrite) the resolution binding of a reply. *)
let with_binding m binding = { m with binding = Some binding }

(* Stamp the coordinator's (origin, seq) onto a fanned-out write. *)
let with_wseq m wseq = { m with wseq = Some wseq }

(* Stamp the client's absolute operation deadline onto a request. *)
let with_deadline m deadline = { m with deadline = Some deadline }

(* The overload rejection: a Busy reply carrying the shedding server's
   retry-after estimate. Like [binding] and [wseq], the hint rides the
   32-byte message proper and contributes nothing to [payload_bytes]. *)
let busy ~retry_after_ms () =
  { (reply Reply.Busy) with retry_after = Some retry_after_ms }

(* --- kernel cost model --- *)

let payload_bytes m =
  (match m.name with Some r -> Csname.segment_bytes r | None -> 0) + m.extra_bytes

(* Names and bulk data are appended segments copied into the receiver. *)
let segment_bytes = payload_bytes

let cost_model = { Kernel.payload_bytes; Kernel.segment_bytes }

let pp ppf m =
  if m.is_reply then
    Fmt.pf ppf "reply %s"
      (match Reply.of_int m.code with
      | Some c -> Reply.to_string c
      | None -> string_of_int m.code)
  else
    Fmt.pf ppf "%s%a" (Op.to_string m.code)
      (fun ppf -> function
        | None -> ()
        | Some r -> Fmt.pf ppf " %a" Csname.pp_req r)
      m.name
