(* The standard name-mapping procedure (§5.4) and the generic CSNH
   server loop.

   Any server implementing one or more name spaces conforms to this
   procedure: interpret components of the uninterpreted part of the name
   left-to-right in a running CurrentContext; when a component resolves
   to a context implemented by another server, rewrite the standard
   fields (name index, context id) and forward the request — which the
   server need not otherwise understand — to that server. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Calibration = Vnet.Calibration

(* What one name component means inside a given context. *)
type lookup_result =
  | Descend of Context.id  (** a context on this same server *)
  | Cross of Context.spec  (** a pointer to a context on another server *)
  | Stop  (** not a context here: a leaf object, or absent *)

type outcome =
  | Local of Context.id * string list
      (** interpretation ends here: final context and the components not
          consumed by context resolution (possibly none) *)
  | Forward of Context.spec * Csname.req
      (** crossed into another server's context: forward the request,
          rewritten with the new index and context id *)
  | Fail of Reply.code

(* [walk ~valid_context ~lookup req] runs the §5.4 procedure. Does not
   handle '[prefix]' syntax: the client run-time routes prefixed names
   to the context prefix server, so another server receiving one
   rejects it. *)
let walk ~valid_context ~lookup req =
  match Csname.validate req with
  | Error code -> Fail code
  | Ok () ->
      if Csname.starts_with_prefix req then Fail Reply.Illegal_name
      else if not (valid_context req.Csname.context) then Fail Reply.Bad_context
      else begin
        let rec loop ctx req comps =
          match comps with
          | [] -> Local (ctx, [])
          | component :: rest -> (
              match lookup ctx component with
              | Descend ctx' -> loop ctx' (Csname.advance_past req component) rest
              | Cross spec ->
                  let req = Csname.advance_past req component in
                  Forward (spec, { req with Csname.context = spec.Context.context })
              | Stop -> Local (ctx, comps))
        in
        loop req.Csname.context req (Csname.components (Csname.remaining req))
      end

(* --- the generic server loop --- *)

type handlers = {
  valid_context : Context.id -> bool;
  lookup : Context.id -> string -> lookup_result;
      (** one component in one context; charged [component_lookup_cpu] *)
  handle_csname :
    sender:Pid.t -> Vmsg.t -> Csname.req -> Context.id -> string list -> Vmsg.t;
      (** a CSname request whose interpretation ended on this server:
          [ctx] is the final context and the string list the unconsumed
          components; returns the reply *)
  handle_other : sender:Pid.t -> Vmsg.t -> Vmsg.t option;
      (** non-CSname requests; [None] means not implemented *)
}

(* Statistics a CSNH server keeps about its own processing, used by the
   measurement harness to separate protocol cost from server-specific
   cost (the paper's Open figures exclude "server-specific actions"). *)
type server_stats = {
  requests : Vsim.Stats.Counter.t;
  forwards : Vsim.Stats.Counter.t;
  specific_ms : Vsim.Stats.Series.t;
      (** per-request processing time beyond the common CSname handling *)
}

let make_stats name =
  {
    requests = Vsim.Stats.Counter.create (name ^ ".requests");
    forwards = Vsim.Stats.Counter.create (name ^ ".forwards");
    specific_ms = Vsim.Stats.Series.create (name ^ ".specific-ms");
  }

(* How far into the name this hop's interpretation reached: everything
   up to the components it did not consume. *)
let consumed_index req remaining =
  let total = String.length req.Csname.name in
  let index_to =
    match remaining with
    | [] -> total
    | _ -> total - String.length (Csname.join remaining)
  in
  max req.Csname.index (min index_to total)

(* Handle one request according to the protocol; replies or forwards as
   appropriate. Exposed so servers with custom receive loops (e.g. the
   prefix server) can reuse it.

   Observability (when a hub is attached to the domain): every CSname
   request increments per-operation counters keyed by this server, and
   a traced request gets one span per hop, its parent link following
   the Forward chain. All of it is bookkeeping off the simulation
   clock, so timings are identical with tracing on or off. *)
let handle_request self handlers stats ~sender (msg : Vmsg.t) =
  let domain = Kernel.domain_of_self self in
  let engine = Kernel.engine_of_domain domain in
  let now () = Vsim.Engine.now engine in
  let charge ms = if ms > 0.0 then Vsim.Proc.delay engine ms in
  let hub = Kernel.obs domain in
  let metric op =
    match hub with
    | None -> ()
    | Some h ->
        Vobs.Metrics.incr (Vobs.Hub.metrics h)
          ~host:(Kernel.self_host_name self)
          ~server:(Kernel.self_name self) ~op
  in
  Vsim.Stats.Counter.incr stats.requests;
  let reply_with m = ignore (Kernel.reply self ~to_:sender m) in
  match msg.Vmsg.name with
  | Some req when Vmsg.Op.is_csname_request msg.Vmsg.code ->
      let t0 = now () in
      metric (Vmsg.Op.to_string msg.Vmsg.code);
      let span =
        match hub with
        | None -> None
        | Some h ->
            Vobs.Hub.start_span h ~ctx:req.Csname.trace ~now:t0
              ~op:(Vmsg.Op.to_string msg.Vmsg.code)
              ~host:(Kernel.self_host_name self)
              ~server:(Kernel.self_name self)
              ~pid:(Pid.to_int (Kernel.self_pid self))
              ~context:req.Csname.context ~index_from:req.Csname.index
      in
      let finish ?index_to outcome =
        match (hub, span) with
        | Some h, Some s -> Vobs.Hub.finish h s ~now:(now ()) ?index_to ~outcome ()
        | _ -> ()
      in
      charge Calibration.csname_common_cpu;
      let lookup ctx component =
        metric "lookup";
        charge Calibration.component_lookup_cpu;
        handlers.lookup ctx component
      in
      (match walk ~valid_context:handlers.valid_context ~lookup req with
      | Fail code ->
          finish (Reply.to_string code);
          reply_with (Vmsg.reply code)
      | Forward (spec, req') ->
          Vsim.Stats.Counter.incr stats.forwards;
          metric "forward";
          finish ~index_to:req'.Csname.index "forward";
          (* Re-parent the forwarded request under this hop's span so
             the next server's span links back here. *)
          let req' =
            match span with
            | None -> req'
            | Some s ->
                { req' with Csname.trace = Vobs.Hub.child_ctx s ~now:(now ()) }
          in
          let msg' = Vmsg.with_name msg req' in
          (match
             Kernel.forward self ~from_:sender ~to_:spec.Context.server msg'
           with
          | Ok () -> ()
          | Error _ ->
              (* The kernel already failed the sender's transaction if it
                 could; nothing more to do here. *)
              ())
      | Local (ctx, remaining) ->
          let reply = handlers.handle_csname ~sender msg req ctx remaining in
          Vsim.Stats.Series.add stats.specific_ms
            (now () -. t0 -. Calibration.csname_common_cpu);
          let outcome =
            match Vmsg.reply_code reply with
            | Some code -> Reply.to_string code
            | None -> "reply"
          in
          let index_to = consumed_index req remaining in
          (* Stamp the resolved binding into successful replies so
             caching clients learn (name-prefix -> server, context)
             pairs for free. The stamp fits the 32-byte message proper
             — no wire bytes, no clock, so non-caching clients see
             byte- and time-identical behaviour. *)
          let reply =
            if Vmsg.succeeded reply && index_to > 0 then
              Vmsg.with_binding reply
                {
                  Vmsg.upto = index_to;
                  spec = Context.spec ~server:(Kernel.self_pid self) ~context:ctx;
                }
            else reply
          in
          finish ~index_to outcome;
          reply_with reply)
  | Some _ | None -> (
      metric (Vmsg.Op.to_string msg.Vmsg.code);
      match handlers.handle_other ~sender msg with
      | Some reply -> reply_with reply
      | None -> reply_with (Vmsg.reply Reply.Bad_operation))

(* Run a CSNH server forever. *)
let serve self ?(stats = make_stats "csnh") handlers =
  let rec loop () =
    let msg, sender = Kernel.receive self in
    handle_request self handlers stats ~sender msg;
    loop ()
  in
  loop ()
