(* Server-side object instances over read-only byte images.

   Context directories are "logically files" (§5.6): a client opens and
   reads them through the I/O protocol. This module gives any CSNH
   server a small instance table for serving such dynamically fabricated
   images (directory listings, status reports). Servers with real
   mutable storage (the file server) keep their own richer table. *)

type instance = {
  id : int;
  image : bytes;
  block_size : int;
  created : float;
  describe : unit -> Descriptor.t;
}

type t = {
  name : string;
  mutable next_id : int;
  table : (int, instance) Hashtbl.t;
}

let default_block_size = 512

let create ?(name = "instances") () = { name; next_id = 1; table = Hashtbl.create 8 }

let count t = Hashtbl.length t.table

(* Allocate an instance serving [image]; ids maximize time before
   reuse (§4.3) by monotonically increasing. *)
let open_image t ~now ?(block_size = default_block_size) ~describe image =
  let id = t.next_id in
  t.next_id <- id + 1;
  let inst = { id; image; block_size; created = now; describe } in
  Hashtbl.replace t.table id inst;
  { Vmsg.instance = id; file_size = Bytes.length image; block_size }

let release t id =
  if Hashtbl.mem t.table id then begin
    Hashtbl.remove t.table id;
    true
  end
  else false

let find t id = Hashtbl.find_opt t.table id

let read t ~instance ~block =
  match Hashtbl.find_opt t.table instance with
  | None -> Error Reply.Invalid_instance
  | Some inst ->
      let off = block * inst.block_size in
      if block < 0 then Error Reply.Invalid_instance
      else if off >= Bytes.length inst.image then Error Reply.End_of_file
      else begin
        let len = min inst.block_size (Bytes.length inst.image - off) in
        Ok (Bytes.sub inst.image off len)
      end

(* Handle the I/O-protocol operations this table can serve. Returns
   [None] for requests that are not instance operations. *)
let handle_io t (msg : Vmsg.t) =
  match msg.Vmsg.payload with
  | Vmsg.P_read { instance; block } when msg.Vmsg.code = Vmsg.Op.read_instance -> (
      match read t ~instance ~block with
      | Ok data ->
          Some
            (Vmsg.ok ~extra_bytes:(Bytes.length data) ~payload:(Vmsg.P_data data) ())
      | Error code -> Some (Vmsg.reply code))
  | Vmsg.P_instance_arg instance when msg.Vmsg.code = Vmsg.Op.query_instance -> (
      match find t instance with
      | None -> Some (Vmsg.reply Reply.Invalid_instance)
      | Some inst ->
          Some (Vmsg.ok ~payload:(Vmsg.P_descriptor (inst.describe ())) ()))
  | Vmsg.P_instance_arg instance when msg.Vmsg.code = Vmsg.Op.release_instance ->
      if release t instance then Some (Vmsg.ok ())
      else Some (Vmsg.reply Reply.Invalid_instance)
  | Vmsg.P_write _ when msg.Vmsg.code = Vmsg.Op.write_instance ->
      Some (Vmsg.reply Reply.No_permission)
  | _ -> None
