(* The client-side name-resolution cache.

   A bounded LRU mapping name prefixes — always whole components, cut at
   '/' boundaries or just after a ']' — to what is known about them.
   Three kinds of knowledge coexist:

   - [Bound]: the (server-pid, context-id) implementing the prefix — a
     route target. Learned from the bindings servers stamp into
     successful CSname replies (see {!Csnh}) and from explicit
     MapContext results.
   - [Delegation]: a referral to a domain server responsible for the
     prefix — a point an iterative resolver may resume its walk from,
     but not a route target for the operation itself.
   - [Negative]: an authoritative failure ([Not_found]/[Bad_context])
     for the prefix. Because name interpretation is left-to-right, a
     prefix that authoritatively does not exist dooms every longer name
     under it, so a negative entry answers for its whole subtree.

   Entries may carry an expiry time ([learn_at ~ttl_ms]); entries
   learned through the original TTL-less interface never expire, so the
   pre-TTL users of this module behave bit-identically. Lookups come in
   two flavours: the original [find] (TTL-blind, positive-only — the
   prefix-cache protocol validates on use instead) and [find_at], which
   knows the clock and reports freshness so a resolver can implement
   negative caching and stale-serving. The cache itself never talks to
   the network, and a reply proving a cached binding stale
   ([Bad_context], [Not_found], or an IPC failure) makes the run-time
   call {!invalidate}; the next route falls back to the next-shallower
   cached prefix, or to the prefix server.

   Everything here is pure bookkeeping: no simulated time is charged, so
   enabling the counters perturbs nothing. *)

type value =
  | Bound of Context.spec
  | Delegation of Context.spec
  | Negative of Reply.code

type node = {
  key : string;
  mutable value : value;
  mutable expires_at : float option;  (* [None]: never expires *)
  mutable prev : node option;  (* towards MRU *)
  mutable next : node option;  (* towards LRU *)
}

type stats = {
  hits : int;
  misses : int;
  stale : int;
  evictions : int;
  insertions : int;
  size : int;
  neg_hits : int;
  stale_hits : int;
  neg_size : int;
}

type t = {
  capacity : int;
  table : (string, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable evictions : int;
  mutable insertions : int;
  mutable neg_hits : int;
  mutable stale_hits : int;
  mutable neg_count : int;
}

let default_capacity = 64

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Name_cache.create: capacity < 1";
  {
    capacity;
    table = Hashtbl.create (min capacity 64);
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    stale = 0;
    evictions = 0;
    insertions = 0;
    neg_hits = 0;
    stale_hits = 0;
    neg_count = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    stale = t.stale;
    evictions = t.evictions;
    insertions = t.insertions;
    size = length t;
    neg_hits = t.neg_hits;
    stale_hits = t.stale_hits;
    neg_size = t.neg_count;
  }

let is_negative = function Negative _ -> true | Bound _ | Delegation _ -> false

let note_removed t node =
  if is_negative node.value then t.neg_count <- t.neg_count - 1

let clear t =
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None;
  t.neg_count <- 0

(* --- the intrusive doubly-linked recency list --- *)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.mru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.lru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.mru;
  (match t.mru with Some m -> m.prev <- Some node | None -> t.lru <- Some node);
  t.mru <- Some node

let touch t node =
  if t.mru != Some node then begin
    unlink t node;
    push_front t node
  end

(* --- keys ---

   A key is a name prefix cut at a component boundary, stored without
   trailing separators: "[fs0]", "[fs0]src", "[fs0]src/lib". *)

let normalize_key key =
  let n = String.length key in
  let rec last i = if i > 0 && key.[i - 1] = Csname.separator then last (i - 1) else i in
  let n' = last n in
  if n' = n then key else String.sub key 0 n'

(* Every prefix of [name] that ends at a component boundary, deepest
   first: the whole name, each cut before a '/', and the cut just after
   a ']' (a bare "[prefix]" binds even when no separator follows). *)
let candidate_cuts name =
  let n = String.length name in
  let cuts = ref [] in
  let add i = if i > 0 && not (List.mem i !cuts) then cuts := i :: !cuts in
  add n;
  for i = 0 to n - 1 do
    if name.[i] = Csname.separator then add i;
    if name.[i] = Csname.prefix_close then add (i + 1)
  done;
  List.sort_uniq (fun a b -> compare b a) !cuts

(* The original TTL-blind lookup: the deepest positive binding, whatever
   its age — the prefix-cache protocol validates entries on use, not on
   a clock. Referrals and negative entries are invisible to it. *)
let find t name =
  let rec try_cuts = function
    | [] ->
        t.misses <- t.misses + 1;
        None
    | cut :: rest -> (
        let key = normalize_key (String.sub name 0 cut) in
        match Hashtbl.find_opt t.table key with
        | Some ({ value = Bound spec; _ } as node) ->
            touch t node;
            t.hits <- t.hits + 1;
            Some (key, spec)
        | Some _ | None -> try_cuts rest)
  in
  try_cuts (candidate_cuts name)

let mem t key = Hashtbl.mem t.table (normalize_key key)

let find_exact t key =
  match Hashtbl.find_opt t.table (normalize_key key) with
  | Some { value = Bound spec; _ } -> Some spec
  | Some _ | None -> None

(* --- the TTL-aware lookup --- *)

type hit = {
  hkey : string;
  hvalue : value;
  hfresh : bool;  (** within its TTL (entries without one are always fresh) *)
  hexpires_at : float option;
}

let fresh_at ~now node =
  match node.expires_at with None -> true | Some e -> now < e

let remove_node t node =
  unlink t node;
  Hashtbl.remove t.table node.key;
  note_removed t node

(* [find_at t ~now name]: the deepest cached prefix, with freshness.
   Fresh entries of any kind are returned as-is. An expired [Bound]
   entry is still returned (marked stale) — it is the stale-serving
   candidate when the authoritative walk cannot be refreshed. Expired
   referrals and negative entries carry no salvageable answer, so they
   are dropped on sight and the search falls to the next-shallower
   cut. *)
let find_at t ~now name =
  let rec try_cuts = function
    | [] ->
        t.misses <- t.misses + 1;
        None
    | cut :: rest -> (
        let key = normalize_key (String.sub name 0 cut) in
        match Hashtbl.find_opt t.table key with
        | None -> try_cuts rest
        | Some node ->
            let fresh = fresh_at ~now node in
            if fresh then begin
              touch t node;
              (match node.value with
              | Negative _ -> t.neg_hits <- t.neg_hits + 1
              | Bound _ | Delegation _ -> t.hits <- t.hits + 1);
              Some
                {
                  hkey = key;
                  hvalue = node.value;
                  hfresh = true;
                  hexpires_at = node.expires_at;
                }
            end
            else begin
              match node.value with
              | Bound _ ->
                  touch t node;
                  t.stale_hits <- t.stale_hits + 1;
                  Some
                    {
                      hkey = key;
                      hvalue = node.value;
                      hfresh = false;
                      hexpires_at = node.expires_at;
                    }
              | Delegation _ | Negative _ ->
                  remove_node t node;
                  try_cuts rest
            end)
  in
  try_cuts (candidate_cuts name)

(* --- insertion --- *)

let evict_over_capacity t =
  if Hashtbl.length t.table > t.capacity then (
    match t.lru with
    | Some victim ->
        remove_node t victim;
        t.evictions <- t.evictions + 1;
        Some victim.key
    | None -> None)
  else None

(* [learn_at t ~now ?ttl_ms key value] inserts or refreshes an entry at
   MRU position, expiring [ttl_ms] after [now] (never, when [ttl_ms] is
   omitted), evicting the LRU entry when over capacity. Returns the
   evicted key so the caller can account for it. *)
let learn_at t ~now ?ttl_ms key value =
  let key = normalize_key key in
  if key = "" then None
  else
    let expires_at = Option.map (fun ttl -> now +. ttl) ttl_ms in
    match Hashtbl.find_opt t.table key with
    | Some node ->
        note_removed t node;
        node.value <- value;
        node.expires_at <- expires_at;
        if is_negative value then t.neg_count <- t.neg_count + 1;
        touch t node;
        None
    | None ->
        let node = { key; value; expires_at; prev = None; next = None } in
        Hashtbl.replace t.table key node;
        push_front t node;
        t.insertions <- t.insertions + 1;
        if is_negative value then t.neg_count <- t.neg_count + 1;
        evict_over_capacity t

(* The original TTL-less interface: a positive binding that never
   expires — exactly the pre-TTL behaviour. *)
let learn t key spec = learn_at t ~now:0.0 key (Bound spec)

(* On-use invalidation: a reply proved this entry wrong. *)
let invalidate t key =
  let key = normalize_key key in
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some node ->
      remove_node t node;
      t.stale <- t.stale + 1;
      true

(* Bindings in MRU-to-LRU order, positives only (the original shape,
   for tests and inspection). *)
let to_list t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node ->
        let acc =
          match node.value with
          | Bound spec -> (node.key, spec) :: acc
          | Delegation _ | Negative _ -> acc
        in
        walk acc node.next
  in
  walk [] t.mru

(* Every entry in MRU-to-LRU order with its expiry, for the TTL
   inspection commands. *)
let dump t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk ((node.key, node.value, node.expires_at) :: acc) node.next
  in
  walk [] t.mru

let pp_value ppf = function
  | Bound spec -> Fmt.pf ppf "bound %a" Context.pp_spec spec
  | Delegation spec -> Fmt.pf ppf "delegation %a" Context.pp_spec spec
  | Negative code -> Fmt.pf ppf "negative %a" Reply.pp code
