(* The client-side name-resolution cache.

   A bounded LRU mapping name prefixes — always whole components, cut at
   '/' boundaries or just after a ']' — to the (server-pid, context-id)
   that implements them. Entries are learned from the bindings servers
   stamp into successful CSname replies (see {!Csnh}) and from explicit
   MapContext results, and are validated {e on use}: the cache itself
   never talks to the network. A reply proving a cached binding stale
   ([Bad_context], [Not_found], or an IPC failure) makes the run-time
   call {!invalidate}; the next route falls back to the next-shallower
   cached prefix, or to the prefix server.

   Everything here is pure bookkeeping: no simulated time is charged, so
   enabling the counters perturbs nothing. *)

type node = {
  key : string;
  mutable spec : Context.spec;
  mutable prev : node option;  (* towards MRU *)
  mutable next : node option;  (* towards LRU *)
}

type stats = {
  hits : int;
  misses : int;
  stale : int;
  evictions : int;
  insertions : int;
  size : int;
}

type t = {
  capacity : int;
  table : (string, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable evictions : int;
  mutable insertions : int;
}

let default_capacity = 64

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Name_cache.create: capacity < 1";
  {
    capacity;
    table = Hashtbl.create (min capacity 64);
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    stale = 0;
    evictions = 0;
    insertions = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    stale = t.stale;
    evictions = t.evictions;
    insertions = t.insertions;
    size = length t;
  }

let clear t =
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None

(* --- the intrusive doubly-linked recency list --- *)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.mru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.lru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.mru;
  (match t.mru with Some m -> m.prev <- Some node | None -> t.lru <- Some node);
  t.mru <- Some node

let touch t node =
  if t.mru != Some node then begin
    unlink t node;
    push_front t node
  end

(* --- keys ---

   A key is a name prefix cut at a component boundary, stored without
   trailing separators: "[fs0]", "[fs0]src", "[fs0]src/lib". *)

let normalize_key key =
  let n = String.length key in
  let rec last i = if i > 0 && key.[i - 1] = Csname.separator then last (i - 1) else i in
  let n' = last n in
  if n' = n then key else String.sub key 0 n'

(* Every prefix of [name] that ends at a component boundary, deepest
   first: the whole name, each cut before a '/', and the cut just after
   a ']' (a bare "[prefix]" binds even when no separator follows). *)
let candidate_cuts name =
  let n = String.length name in
  let cuts = ref [] in
  let add i = if i > 0 && not (List.mem i !cuts) then cuts := i :: !cuts in
  add n;
  for i = 0 to n - 1 do
    if name.[i] = Csname.separator then add i;
    if name.[i] = Csname.prefix_close then add (i + 1)
  done;
  List.sort_uniq (fun a b -> compare b a) !cuts

let find t name =
  let rec try_cuts = function
    | [] ->
        t.misses <- t.misses + 1;
        None
    | cut :: rest -> (
        let key = normalize_key (String.sub name 0 cut) in
        match Hashtbl.find_opt t.table key with
        | Some node ->
            touch t node;
            t.hits <- t.hits + 1;
            Some (key, node.spec)
        | None -> try_cuts rest)
  in
  try_cuts (candidate_cuts name)

let mem t key = Hashtbl.mem t.table (normalize_key key)

let find_exact t key =
  Option.map (fun node -> node.spec) (Hashtbl.find_opt t.table (normalize_key key))

(* [learn t key spec] inserts or refreshes a binding at MRU position,
   evicting the LRU entry when over capacity. Returns the evicted key so
   the caller can account for it. *)
let learn t key spec =
  let key = normalize_key key in
  if key = "" then None
  else
    match Hashtbl.find_opt t.table key with
    | Some node ->
        node.spec <- spec;
        touch t node;
        None
    | None ->
        let node = { key; spec; prev = None; next = None } in
        Hashtbl.replace t.table key node;
        push_front t node;
        t.insertions <- t.insertions + 1;
        if Hashtbl.length t.table > t.capacity then (
          match t.lru with
          | Some victim ->
              unlink t victim;
              Hashtbl.remove t.table victim.key;
              t.evictions <- t.evictions + 1;
              Some victim.key
          | None -> None)
        else None

(* On-use invalidation: a reply proved this binding wrong. *)
let invalidate t key =
  let key = normalize_key key in
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table key;
      t.stale <- t.stale + 1;
      true

(* Keys in MRU-to-LRU order, for tests and inspection. *)
let to_list t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk ((node.key, node.spec) :: acc) node.next
  in
  walk [] t.mru
