(* Standard reply codes (§3.2): every reply message begins with one,
   indicating success or the reason for failure. *)

type code =
  | Ok
  | Not_found  (** no such name in the context *)
  | Illegal_name  (** the name violates the server's syntax *)
  | Bad_context  (** the context identifier is not valid on this server *)
  | No_permission
  | Duplicate_name  (** create/add of a name that already exists *)
  | Not_a_context  (** descended into a component that names a leaf *)
  | No_server  (** a logical binding's service has no registered server *)
  | Invalid_instance  (** unknown or released instance identifier *)
  | End_of_file
  | Bad_operation  (** the server does not implement this request code *)
  | No_space  (** storage exhausted *)
  | Server_error
  | Retry  (** transient failure; the client may retry *)
  | Busy
      (** the server shed the request under overload; a retry-after hint
          may ride in the reply message (see {!Vmsg.retry_after}) *)

let to_int = function
  | Ok -> 0
  | Not_found -> 1
  | Illegal_name -> 2
  | Bad_context -> 3
  | No_permission -> 4
  | Duplicate_name -> 5
  | Not_a_context -> 6
  | No_server -> 7
  | Invalid_instance -> 8
  | End_of_file -> 9
  | Bad_operation -> 10
  | No_space -> 11
  | Server_error -> 12
  | Retry -> 13
  | Busy -> 14

let of_int = function
  | 0 -> Some Ok
  | 1 -> Some Not_found
  | 2 -> Some Illegal_name
  | 3 -> Some Bad_context
  | 4 -> Some No_permission
  | 5 -> Some Duplicate_name
  | 6 -> Some Not_a_context
  | 7 -> Some No_server
  | 8 -> Some Invalid_instance
  | 9 -> Some End_of_file
  | 10 -> Some Bad_operation
  | 11 -> Some No_space
  | 12 -> Some Server_error
  | 13 -> Some Retry
  | 14 -> Some Busy
  | _ -> None

let to_string = function
  | Ok -> "OK"
  | Not_found -> "not found"
  | Illegal_name -> "illegal name"
  | Bad_context -> "bad context"
  | No_permission -> "no permission"
  | Duplicate_name -> "duplicate name"
  | Not_a_context -> "not a context"
  | No_server -> "no server"
  | Invalid_instance -> "invalid instance"
  | End_of_file -> "end of file"
  | Bad_operation -> "bad operation"
  | No_space -> "no space"
  | Server_error -> "server error"
  | Retry -> "retry"
  | Busy -> "busy"

let pp ppf c = Fmt.string ppf (to_string c)
