(** Replica-side deduplication of replicated writes.

    A replicated write is stamped with the coordinator's (origin, seq)
    pair ({!Vmsg.wseq}). A member admits each pair at most once: a
    coordinator retry or a catch-up replay of an already-applied write
    is answered from the cached reply instead of being applied again.

    The applied high-water marks are durable (they survive a server
    restart, like the file system); the reply cache is memory and is
    dropped on restart via {!drop_replies}. *)

type t

val create : unit -> t

(** Highest sequence number applied from [origin]; 0 if none. *)
val applied_seq : t -> origin:int -> int

(** [`Fresh] — apply the write, then {!record} it. [`Replay r] — the
    write was already applied; answer with [r] if cached, or a plain
    Ok if the reply cache was lost to a restart. *)
val admit : t -> origin:int -> seq:int -> [ `Fresh | `Replay of Vmsg.t option ]

val record : t -> origin:int -> seq:int -> Vmsg.t -> unit

(** Forget cached replies (a restart loses memory, not the disk). *)
val drop_replies : t -> unit
