(** Replica-side deduplication and ordering of replicated writes.

    A replicated write is stamped with the coordinator's (origin, seq)
    pair ({!Vmsg.wseq}). A member admits each pair at most once and
    strictly in order: a coordinator retry or a catch-up replay of an
    already-applied write is answered from the cached reply instead of
    being applied again, and a write that would skip past a missed
    sequence number is rejected rather than applied out of order.

    The applied high-water marks are durable (they survive a server
    restart, like the file system); the reply cache is memory, bounded
    to a sliding window per origin, and is dropped on restart via
    {!drop_replies}. *)

type t

val create : unit -> t

(** Highest sequence number applied from [origin]; 0 if none. *)
val applied_seq : t -> origin:int -> int

(** [`Fresh] — the write is the next in sequence: apply it, then
    {!record} it. [`Replay r] — the write was already applied; answer
    with [r] if cached, or a plain Ok if the reply cache was lost to a
    restart. [`Gap] — this member missed at least one earlier write
    from [origin]; it must NOT apply this one (same-name operations
    could invert) and should answer with a rejection the coordinator
    recognizes, staying at its high-water mark until a log replay
    delivers the missing writes in order. *)
val admit :
  t -> origin:int -> seq:int -> [ `Fresh | `Replay of Vmsg.t option | `Gap ]

val record : t -> origin:int -> seq:int -> Vmsg.t -> unit

(** Forget cached replies (a restart loses memory, not the disk). *)
val drop_replies : t -> unit
