(* Typed object description records (§5.5, Figure 3).

   A description is the record returned by the standard query operation
   and the unit of context-directory reads. Its first field is a type
   tag specifying the format of the rest, so clients can handle objects
   whose type they did not know in advance. *)

type obj_type =
  | File
  | Directory
  | Context_pointer  (** a pointer to a context, possibly on another server *)
  | Prefix_binding  (** an entry in a context prefix server *)
  | Process
  | Terminal
  | Printer_job
  | Mailbox
  | Tcp_connection
  | Device
  | User_account

let obj_type_to_int = function
  | File -> 1
  | Directory -> 2
  | Context_pointer -> 3
  | Prefix_binding -> 4
  | Process -> 5
  | Terminal -> 6
  | Printer_job -> 7
  | Mailbox -> 8
  | Tcp_connection -> 9
  | Device -> 10
  | User_account -> 11

let obj_type_of_int = function
  | 1 -> Some File
  | 2 -> Some Directory
  | 3 -> Some Context_pointer
  | 4 -> Some Prefix_binding
  | 5 -> Some Process
  | 6 -> Some Terminal
  | 7 -> Some Printer_job
  | 8 -> Some Mailbox
  | 9 -> Some Tcp_connection
  | 10 -> Some Device
  | 11 -> Some User_account
  | _ -> None

let obj_type_to_string = function
  | File -> "file"
  | Directory -> "directory"
  | Context_pointer -> "context"
  | Prefix_binding -> "prefix"
  | Process -> "process"
  | Terminal -> "terminal"
  | Printer_job -> "printer-job"
  | Mailbox -> "mailbox"
  | Tcp_connection -> "tcp-connection"
  | Device -> "device"
  | User_account -> "account"

type t = {
  obj_type : obj_type;  (** the tag field: format of the rest *)
  name : string;
  size : int;  (** bytes, entries, or other type-appropriate extent *)
  owner : string;
  created : float;  (** simulated ms since boot *)
  modified : float;
  writable : bool;  (** coarse access control, modifiable via [modify] *)
  instance : int option;  (** object instance id, for temporary objects *)
  attrs : (string * string) list;  (** type-specific attributes *)
}

let make ?(size = 0) ?(owner = "system") ?(created = 0.0) ?(modified = 0.0)
    ?(writable = true) ?instance ?(attrs = []) ~obj_type name =
  { obj_type; name; size; owner; created; modified; writable; instance; attrs }

(* Which fields a [modify] request may change; servers ignore the rest
   (§5.5: "servers are free to ignore changes to any fields which it
   makes no sense to change"). *)
let apply_modification ~current ~requested =
  {
    current with
    writable = requested.writable;
    owner = requested.owner;
    attrs = requested.attrs;
  }

(* --- binary marshalling ---

   Context directories are logically files of description records read
   through the I/O protocol, so descriptions need a byte representation.
   Format: u16 total length, u8 tag, then length-prefixed fields. *)

let put_u16 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff))

let put_u32 b v =
  put_u16 b (v land 0xffff);
  put_u16 b ((v lsr 16) land 0xffff)

let put_string b s =
  put_u16 b (String.length s);
  Buffer.add_string b s

let put_float b f = put_u32 b (int_of_float (f *. 1000.0))

let to_bytes t =
  let body = Buffer.create 64 in
  Buffer.add_char body (Char.chr (obj_type_to_int t.obj_type));
  put_string body t.name;
  put_u32 body t.size;
  put_string body t.owner;
  put_float body t.created;
  put_float body t.modified;
  Buffer.add_char body (if t.writable then '\001' else '\000');
  (match t.instance with
  | None -> put_u16 body 0xffff
  | Some i -> put_u16 body (i land 0xffff));
  put_u16 body (List.length t.attrs);
  List.iter
    (fun (k, v) ->
      put_string body k;
      put_string body v)
    t.attrs;
  let out = Buffer.create (Buffer.length body + 2) in
  put_u16 out (Buffer.length body + 2);
  Buffer.add_buffer out body;
  Buffer.to_bytes out

exception Malformed of string

let get_u16 data pos =
  if !pos + 2 > Bytes.length data then raise (Malformed "u16");
  let v =
    Char.code (Bytes.get data !pos)
    lor (Char.code (Bytes.get data (!pos + 1)) lsl 8)
  in
  pos := !pos + 2;
  v

let get_u32 data pos =
  let lo = get_u16 data pos in
  let hi = get_u16 data pos in
  lo lor (hi lsl 16)

let get_string data pos =
  let len = get_u16 data pos in
  if !pos + len > Bytes.length data then raise (Malformed "string");
  let s = Bytes.sub_string data !pos len in
  pos := !pos + len;
  s

let get_float data pos = float_of_int (get_u32 data pos) /. 1000.0

let get_byte data pos =
  if !pos + 1 > Bytes.length data then raise (Malformed "byte");
  let c = Char.code (Bytes.get data !pos) in
  incr pos;
  c

(* [of_bytes data offset] decodes one record, returning it with the
   offset of the next record. *)
let of_bytes data offset =
  let pos = ref offset in
  let total = get_u16 data pos in
  if total < 2 || offset + total > Bytes.length data then
    raise (Malformed "record length");
  let obj_type =
    match obj_type_of_int (get_byte data pos) with
    | Some t -> t
    | None -> raise (Malformed "type tag")
  in
  let name = get_string data pos in
  let size = get_u32 data pos in
  let owner = get_string data pos in
  let created = get_float data pos in
  let modified = get_float data pos in
  let writable = get_byte data pos <> 0 in
  let instance = match get_u16 data pos with 0xffff -> None | i -> Some i in
  let n_attrs = get_u16 data pos in
  let attrs =
    List.init n_attrs (fun _ ->
        let k = get_string data pos in
        let v = get_string data pos in
        (k, v))
  in
  ( { obj_type; name; size; owner; created; modified; writable; instance; attrs },
    offset + total )

(* Decode a whole context-directory image into records. *)
let all_of_bytes data =
  let rec loop offset acc =
    if offset >= Bytes.length data then List.rev acc
    else begin
      let record, next = of_bytes data offset in
      loop next (record :: acc)
    end
  in
  loop 0 []

let directory_to_bytes records =
  let b = Buffer.create 256 in
  List.iter (fun r -> Buffer.add_bytes b (to_bytes r)) records;
  Buffer.to_bytes b

let pp ppf t =
  Fmt.pf ppf "@[<h>%-12s %8d  %-8s %s%s%a@]"
    (obj_type_to_string t.obj_type)
    t.size t.owner t.name
    (if t.writable then "" else " [read-only]")
    (fun ppf attrs ->
      List.iter (fun (k, v) -> Fmt.pf ppf " %s=%s" k v) attrs)
    t.attrs
