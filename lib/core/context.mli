(** Contexts (paper §5.2).

    A context is a set of (name, object) tuples — the environment in
    which a CSname is interpreted. A context is identified system-wide
    by the pair (server pid, context identifier); the identifier itself
    is a numeric value meaningful only to the implementing server,
    except for a handful of well-known values. *)

module Pid = Vkernel.Pid

(** A context identifier, scoped to one server. *)
type id = int

(** A fully specified context: the process that interprets names in it,
    and which of that server's name spaces to start from. *)
type spec = { server : Pid.t; context : id }

val spec : server:Pid.t -> context:id -> spec
val equal_spec : spec -> spec -> bool
val pp_spec : Format.formatter -> spec -> unit

(** Well-known context identifiers: fixed values naming generic name
    spaces (§5.2), so that e.g. "the home directory on whatever storage
    server answers" can be named before any server is contacted. *)
module Well_known : sig
  (** The single/default context of a server. *)
  val default : id

  (** The user's home directory on a storage server. *)
  val home : id

  (** The standard program directory (program loading). *)
  val programs : id

  (** A server's space of temporary object instances. *)
  val instances : id

  (** The user accounts a storage server implements (§5.2). *)
  val accounts : id

  (** Identifiers >= this value are ordinary, server-assigned. *)
  val first_ordinary : id

  val to_string : id -> string
end

val pp_id : Format.formatter -> id -> unit
