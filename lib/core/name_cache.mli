(** The client-side name-resolution cache: a bounded LRU mapping name
    prefixes (cut at component boundaries) to what is known about them —
    a resolved binding, a domain-server referral, or an authoritative
    failure (negative entry).

    Entries learned through the original interface ({!learn}) are
    positive bindings without a TTL, validated {e on use}: the run-time
    evicts an entry when a reply proves it stale ([Bad_context] /
    [Not_found] / IPC failure) and falls back one prefix level. The
    TTL-aware interface ({!learn_at} / {!find_at}) additionally supports
    per-entry expiry, negative caching, and stale-serving (an expired
    binding is still reported, marked stale, so a resolver can serve it
    while the authoritative server is unreachable). The cache itself
    never performs network activity and never touches simulated time. *)

type t

(** What a cached prefix is known to be. *)
type value =
  | Bound of Context.spec  (** the (server, context) implementing it: a route target *)
  | Delegation of Context.spec
      (** a referral to the domain server responsible for it: a resume
          point for an iterative resolver, not a route target *)
  | Negative of Reply.code
      (** an authoritative [Not_found]/[Bad_context]: dooms the whole
          subtree under the prefix while fresh *)

(** Cumulative counters plus the current entry counts. *)
type stats = {
  hits : int;  (** a lookup returned a fresh positive entry *)
  misses : int;  (** a lookup found nothing at any boundary *)
  stale : int;  (** on-use invalidations *)
  evictions : int;  (** capacity evictions (LRU end) *)
  insertions : int;  (** distinct keys inserted *)
  size : int;
  neg_hits : int;  (** [find_at] answered from a fresh negative entry *)
  stale_hits : int;  (** [find_at] returned an expired binding (stale-serving candidate) *)
  neg_size : int;  (** negative entries currently cached *)
}

val default_capacity : int

(** [create ?capacity ()] — raises [Invalid_argument] unless the
    capacity is at least 1. *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int
val length : t -> int
val stats : t -> stats

(** Drop every entry (counters are kept). *)
val clear : t -> unit

(** [find t name] returns the deepest cached positive binding of a
    prefix of [name] ending at a component boundary ('/' or just after
    ']'), promoting the entry to most-recently-used. TTL-blind and blind
    to referrals and negative entries — the original on-use-validated
    protocol. Counts a hit or miss. *)
val find : t -> string -> (string * Context.spec) option

val mem : t -> string -> bool

(** Exact-key lookup of a positive binding, without touching recency or
    counters. *)
val find_exact : t -> string -> Context.spec option

(** What a TTL-aware lookup saw. *)
type hit = {
  hkey : string;  (** the cached prefix matched *)
  hvalue : value;
  hfresh : bool;  (** within its TTL (entries without one are always fresh) *)
  hexpires_at : float option;
}

(** [find_at t ~now name] returns the deepest cached prefix of [name]
    with its freshness. Fresh entries of any kind are returned; an
    expired [Bound] entry is returned marked stale (the stale-serving
    candidate); expired referrals and negative entries are dropped on
    sight and the search continues one level shallower. Counts hits,
    negative hits, stale hits and misses. *)
val find_at : t -> now:float -> string -> hit option

(** [learn_at t ~now ?ttl_ms key value] inserts or refreshes an entry
    (trailing separators of [key] are stripped) expiring [ttl_ms] after
    [now] — never, when [ttl_ms] is omitted. Returns the key evicted to
    make room, if the cache was full. *)
val learn_at : t -> now:float -> ?ttl_ms:float -> string -> value -> string option

(** [learn t key spec] inserts or refreshes a positive binding without a
    TTL — the original interface, byte-identical in behaviour. *)
val learn : t -> string -> Context.spec -> string option

(** [invalidate t key] removes an entry proved stale on use; returns
    whether it was present. Counts towards [stale]. *)
val invalidate : t -> string -> bool

(** Positive bindings in MRU-to-LRU order (tests / inspection — the
    original shape). *)
val to_list : t -> (string * Context.spec) list

(** Every entry in MRU-to-LRU order with its expiry, for TTL
    inspection. *)
val dump : t -> (string * value * float option) list

val pp_value : Format.formatter -> value -> unit
