(** The client-side name-resolution cache: a bounded LRU mapping name
    prefixes (cut at component boundaries) to the (server-pid,
    context-id) implementing them.

    Entries are learned from the bindings servers stamp into successful
    CSname replies and validated {e on use}: the run-time evicts an
    entry when a reply proves it stale ([Bad_context] / [Not_found] /
    IPC failure) and falls back one prefix level. The cache itself never
    performs network activity and never touches simulated time. *)

type t

(** Cumulative counters plus the current entry count. *)
type stats = {
  hits : int;  (** [find] returned a binding *)
  misses : int;  (** [find] found nothing at any boundary *)
  stale : int;  (** on-use invalidations *)
  evictions : int;  (** capacity evictions (LRU end) *)
  insertions : int;  (** distinct keys inserted *)
  size : int;
}

val default_capacity : int

(** [create ?capacity ()] — capacity must be at least 1. *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int
val length : t -> int
val stats : t -> stats

(** Drop every entry (counters are kept). *)
val clear : t -> unit

(** [find t name] returns the deepest cached prefix of [name] that ends
    at a component boundary ('/' or just after ']'), with its binding,
    promoting the entry to most-recently-used. Counts a hit or miss. *)
val find : t -> string -> (string * Context.spec) option

val mem : t -> string -> bool

(** Exact-key lookup without touching recency or counters. *)
val find_exact : t -> string -> Context.spec option

(** [learn t key spec] inserts or refreshes a binding (trailing
    separators of [key] are stripped); returns the key evicted to make
    room, if the cache was full. *)
val learn : t -> string -> Context.spec -> string option

(** [invalidate t key] removes a binding proved stale on use; returns
    whether it was present. Counts towards [stale]. *)
val invalidate : t -> string -> bool

(** Bindings in MRU-to-LRU order (tests / inspection). *)
val to_list : t -> (string * Context.spec) list
