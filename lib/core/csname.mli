(** Character string names (paper §5.1, §5.3).

    A CSname is a byte sequence, usually human-readable. This module
    holds the pure name-syntax operations — component splitting, the
    '[prefix]' syntax of context prefix servers — and the standard
    request fields that travel with every CSname on the wire. *)

val separator : char
val prefix_open : char
val prefix_close : char

(** The standard fields of every CSname request (§5.3): the name, the
    index at which interpretation begins or continues, and the context
    identifier to interpret it in. The server half of the context is
    implicit in the message's destination. Forwarding servers rewrite
    [index] and [context] and leave the rest of the message alone.

    [trace] carries the observability trace context ({!Vobs.Span.ctx})
    alongside the request; it adds nothing to {!segment_bytes}, so wire
    timings are unaffected by tracing. *)
type req = {
  name : string;
  index : int;
  context : Context.id;
  trace : Vobs.Span.ctx;
}

val make_req :
  ?index:int -> ?context:Context.id -> ?trace:Vobs.Span.ctx -> string -> req
val pp_req : Format.formatter -> req -> unit

(** The not-yet-interpreted part of the name. *)
val remaining : req -> string

(** Non-empty ['/']-separated components of a byte string. *)
val components : string -> string list

(** Inverse of {!components} for canonical names. *)
val join : string list -> string

(** Does the uninterpreted part start with ['[']? Such names are routed
    to the context prefix server by the client run-time. *)
val starts_with_prefix : req -> bool

(** Split ["\[prefix\]rest"] into the prefix and a request advanced past
    the closing bracket. [Error Illegal_name] on malformed syntax or a
    non-prefixed name. *)
val parse_prefix : req -> (string * req, Reply.code) result

(** Advance the index past one interpreted component (and surrounding
    separators) — the rewrite performed before forwarding (§5.4). Raises
    [Invalid_argument] if the component does not match the name text at
    the index. *)
val advance_past : req -> string -> req

(** Names may contain any byte except NUL; the index must lie within the
    name. *)
val validate : req -> (unit, Reply.code) result

(** Wire size of the name as an appended segment. *)
val segment_bytes : req -> int
