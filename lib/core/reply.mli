(** Standard reply codes (paper §3.2).

    Every reply message begins with one of these, indicating whether the
    request succeeded and, if not, why. The numeric encoding is part of
    the message standard. *)

type code =
  | Ok
  | Not_found  (** no such name in the context *)
  | Illegal_name  (** the name violates the server's syntax *)
  | Bad_context  (** the context identifier is not valid on this server *)
  | No_permission
  | Duplicate_name  (** create/add of a name that already exists *)
  | Not_a_context  (** descended into a component that names a leaf *)
  | No_server  (** a logical binding's service has no registered server *)
  | Invalid_instance  (** unknown or released instance identifier *)
  | End_of_file
  | Bad_operation  (** the server does not implement this request code *)
  | No_space  (** storage exhausted *)
  | Server_error
  | Retry  (** transient failure; the client may retry *)
  | Busy
      (** the server shed the request under overload (admission control);
          the reply may carry a retry-after hint ({!Vmsg.retry_after}) *)

val to_int : code -> int

(** [None] for values outside the standard set. *)
val of_int : int -> code option

val to_string : code -> string
val pp : Format.formatter -> code -> unit
