(** Read-only object instances over byte images.

    Context directories are logically files (§5.6): a client opens and
    reads them through the I/O protocol. This gives any CSNH server a
    small instance table for serving such dynamically fabricated images
    (directory listings, status reports). Servers with mutable storage
    keep their own richer tables. *)

type t

val create : ?name:string -> unit -> t

(** Instances currently open. *)
val count : t -> int

(** Allocate an instance serving [image]; identifiers increase
    monotonically, maximizing time before reuse (§4.3). [describe] is
    invoked by QueryInstance. *)
val open_image :
  t ->
  now:float ->
  ?block_size:int ->
  describe:(unit -> Descriptor.t) ->
  bytes ->
  Vmsg.instance_info

(** [false] if the instance was not open. *)
val release : t -> int -> bool

(** Read one block. *)
val read : t -> instance:int -> block:int -> (bytes, Reply.code) result

(** Serve the I/O-protocol operations this table understands; [None] for
    requests that are not instance operations. Writes are refused. *)
val handle_io : t -> Vmsg.t -> Vmsg.t option
