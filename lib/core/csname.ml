(* Character string names (§5.1): a CSname is a sequence of bytes,
   usually human-readable. This module holds the pure name-syntax
   operations: component splitting, the '[prefix]' syntax of the context
   prefix servers, and the standard request fields that accompany every
   CSname on the wire. *)

let separator = '/'
let prefix_open = '['
let prefix_close = ']'

(* The standard fields of every CSname request (§5.3): the name, the
   index at which interpretation is to begin or continue, and the
   context identifier it is interpreted in. The server-pid part of the
   context is implicit in the message's destination.

   [trace] piggybacks the observability trace context on the request;
   it contributes nothing to [segment_bytes], so wire timings are
   unchanged whether tracing is on or off. *)
type req = {
  name : string;
  index : int;
  context : Context.id;
  trace : Vobs.Span.ctx;
}

let make_req ?(index = 0) ?(context = Context.Well_known.default)
    ?(trace = Vobs.Span.no_ctx) name =
  { name; index; context; trace }

let pp_req ppf r =
  Fmt.pf ppf "%S[%d..] in %a" r.name r.index Context.pp_id r.context

(* The part of the name not yet interpreted. *)
let remaining r =
  if r.index >= String.length r.name then ""
  else String.sub r.name r.index (String.length r.name - r.index)

(* Split a byte string into non-empty '/'-separated components. *)
let components s =
  String.split_on_char separator s |> List.filter (fun c -> c <> "")

let join = String.concat (String.make 1 separator)

(* Does the uninterpreted part of the name start with a context prefix? *)
let starts_with_prefix r =
  r.index < String.length r.name && r.name.[r.index] = prefix_open

(* [parse_prefix r] splits "[prefix]rest" into the prefix and a request
   advanced past the closing bracket. *)
let parse_prefix r =
  if not (starts_with_prefix r) then Error Reply.Illegal_name
  else
    match String.index_from_opt r.name r.index prefix_close with
    | None -> Error Reply.Illegal_name
    | Some close ->
        let prefix = String.sub r.name (r.index + 1) (close - r.index - 1) in
        if prefix = "" then Error Reply.Illegal_name
        else Ok (prefix, { r with index = close + 1 })

(* [advance_past r component] moves the index past one interpreted
   component (and a following separator, if any), for forwarding a
   partially interpreted request (§5.4). *)
let advance_past r component =
  let skip_separators name i =
    let rec loop i =
      if i < String.length name && name.[i] = separator then loop (i + 1) else i
    in
    loop i
  in
  let start = skip_separators r.name r.index in
  let len = String.length component in
  if
    start + len <= String.length r.name
    && String.sub r.name start len = component
  then { r with index = skip_separators r.name (start + len) }
  else invalid_arg "Csname.advance_past: component does not match name"

(* Valid names may contain any byte except NUL; a '[' is only legal as
   the very first character of the uninterpreted part (prefix syntax). *)
let validate r =
  if String.contains r.name '\000' then Error Reply.Illegal_name
  else if r.index < 0 || r.index > String.length r.name then
    Error Reply.Illegal_name
  else Ok ()

(* Wire size of the name as an appended segment. *)
let segment_bytes r = String.length r.name
