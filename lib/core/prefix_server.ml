(* The context prefix server (§5.8, §6).

   One runs per user (per workstation), holding that user's symbolic
   names for contexts of interest. A CSname beginning '[prefix]' is
   routed here by the client run-time; the server parses the prefix,
   rewrites the standard fields of the request, and forwards it to the
   server implementing the bound context, dropping out of the
   transaction (the target replies directly to the client).

   Bindings are either static (server-pid, context-id) pairs or
   "logical" (service, well-known-context) pairs resolved with GetPid at
   each use, so a service that is re-registered after a server crash
   keeps resolving (§6). *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Service = Vkernel.Service
module Calibration = Vnet.Calibration

type target =
  | Static of Context.spec
  | Logical of { service : int; context : Context.id }
  | Replicated of { group : int; context : Context.id }
      (* a context implemented transparently by a group of servers (§7) *)

let pp_target ppf = function
  | Static spec -> Context.pp_spec ppf spec
  | Logical { service; context } ->
      Fmt.pf ppf "(service %s, %a)" (Service.Id.to_string service)
        Context.pp_id context
  | Replicated { group; context } ->
      Fmt.pf ppf "(group %d, %a)" group Context.pp_id context

type t = {
  owner : string;
  bindings : (string, target) Hashtbl.t;
  instances : Instance_server.t;
  stats : Csnh.server_stats;
  mutable pid : Pid.t option;
  mutable next_wseq : int;
      (* per-coordinator sequence number for replicated writes *)
}

let owner t = t.owner
let stats t = t.stats
let pid t = match t.pid with Some p -> p | None -> failwith "prefix server not started"

let bindings t =
  Hashtbl.fold (fun name target acc -> (name, target) :: acc) t.bindings []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let binding_count t = Hashtbl.length t.bindings

(* Live data bytes held per binding: the name, a one-byte tag, and an
   8-byte target (pid + context id or service + context id). Used by the
   E5 memory-footprint experiment. *)
let binding_bytes name = String.length name + 1 + 8

let data_bytes t =
  Hashtbl.fold (fun name _ acc -> acc + binding_bytes name) t.bindings 0 + 64

(* Accept a prefix name with or without its brackets. *)
let strip_brackets name =
  let n = String.length name in
  if n >= 2 && name.[0] = Csname.prefix_open && name.[n - 1] = Csname.prefix_close
  then String.sub name 1 (n - 2)
  else name

let add_binding t name target =
  let name = strip_brackets name in
  if name = "" || String.contains name '/' then Error Reply.Illegal_name
  else if Hashtbl.mem t.bindings name then Error Reply.Duplicate_name
  else begin
    Hashtbl.replace t.bindings name target;
    Ok ()
  end

let delete_binding t name =
  let name = strip_brackets name in
  if Hashtbl.mem t.bindings name then begin
    Hashtbl.remove t.bindings name;
    Ok ()
  end
  else Error Reply.Not_found

let find_binding t name = Hashtbl.find_opt t.bindings (strip_brackets name)

(* Resolve a binding to a concrete context; logical bindings perform
   GetPid at each use. Replicated bindings have no single concrete
   context — the forwarding path multicasts instead. *)
let resolve self target =
  match target with
  | Static spec -> Ok spec
  | Logical { service; context } -> (
      match Kernel.get_pid self ~service Service.Both with
      | Some server -> Ok (Context.spec ~server ~context)
      | None -> Error Reply.No_server)
  | Replicated _ -> Error Reply.No_server

let describe_binding t ~now name target =
  let target_string = Fmt.str "%a" pp_target target in
  Descriptor.make ~obj_type:Descriptor.Prefix_binding
    ~size:(binding_bytes name) ~owner:t.owner ~created:now ~modified:now
    ~attrs:[ ("target", target_string) ]
    name

let directory_image t ~now =
  bindings t
  |> List.map (fun (name, target) -> describe_binding t ~now name target)
  |> Descriptor.directory_to_bytes

(* --- request handling --- *)

(* Observability helpers: a per-hop span for the prefix server's part of
   a traced request, metrics keyed by this server's name, and the trace
   re-parenting applied to every forwarded request. Bookkeeping only —
   none of it touches simulated time. *)

let obs_metric self op =
  match Kernel.obs (Kernel.domain_of_self self) with
  | None -> ()
  | Some hub ->
      Vobs.Metrics.incr (Vobs.Hub.metrics hub)
        ~host:(Kernel.self_host_name self)
        ~server:(Kernel.self_name self) ~op

(* Flight-recorder events from this server (e.g. replica fan-outs),
   stamped with the request's trace id. The label is only built when
   an attached hub's recorder is enabled. *)
let obs_event self ~cat ?(trace = 0) fmt =
  match Kernel.obs (Kernel.domain_of_self self) with
  | Some hub when Vobs.Eventlog.enabled (Vobs.Hub.events hub) ->
      Format.kasprintf
        (fun label ->
          let engine = Kernel.engine_of_domain (Kernel.domain_of_self self) in
          Vobs.Hub.event hub
            ~at:(Vsim.Engine.now engine)
            ~cat
            ~host:(Kernel.self_host_name self)
            ~trace label)
        fmt
  | Some _ | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

(* A forward to a resolved binding failed: the kernel has already failed
   the sender's transaction, so the client sees the error and retries.
   What must happen here is that the retry resolves afresh — for a
   logical binding whose pid came from the GetPid cache, drop the stale
   entry (on-use invalidation). Bookkeeping only; no simulated time. *)
let forward_failed self target =
  match target with
  | Logical { service; _ }
    when Kernel.getpid_cache_enabled (Kernel.domain_of_self self) ->
      Kernel.drop_cached_pid self ~service;
      obs_metric self "logical-stale"
  | Logical _ | Static _ | Replicated _ -> ()

let obs_start self (msg : Vmsg.t) (req : Csname.req) =
  match Kernel.obs (Kernel.domain_of_self self) with
  | None -> None
  | Some hub ->
      let engine = Kernel.engine_of_domain (Kernel.domain_of_self self) in
      Option.map
        (fun span -> (hub, span))
        (Vobs.Hub.start_span hub ~ctx:req.Csname.trace
           ~now:(Vsim.Engine.now engine)
           ~op:(Vmsg.Op.to_string msg.Vmsg.code)
           ~host:(Kernel.self_host_name self)
           ~server:(Kernel.self_name self)
           ~pid:(Pid.to_int (Kernel.self_pid self))
           ~context:req.Csname.context ~index_from:req.Csname.index)

let obs_finish self span ?index_to outcome =
  match span with
  | None -> ()
  | Some (hub, s) ->
      let engine = Kernel.engine_of_domain (Kernel.domain_of_self self) in
      Vobs.Hub.finish hub s ~now:(Vsim.Engine.now engine) ?index_to ~outcome ()

(* Attach the forwarded request to this hop's span (if traced), so the
   next server's span links back here. *)
let obs_reparent self span (req : Csname.req) =
  match span with
  | None -> req
  | Some (_, s) ->
      let engine = Kernel.engine_of_domain (Kernel.domain_of_self self) in
      {
        req with
        Csname.trace = Vobs.Hub.child_ctx s ~now:(Vsim.Engine.now engine);
      }

(* Write-all fan-out for a logical binding whose service is bound to a
   replica group (read-one/write-all). The prefix server acts as the
   coordinator: it stamps the rewritten request with its own (origin,
   seq), appends it PENDING to the group's ordered write log — before
   the first send, so a concurrent catch-up sees every write whose
   fan-out has begun — then sends it to every live member in turn, with
   one bounded same-seq retransmission per member (the member's
   {!Seq_guard} deduplicates). A member answering Retry to a stamped
   write is reporting a sequence gap (it missed an earlier write and
   refuses to apply out of order): its reply never answers the client.

   The entry's fate follows the fan-out's: once any member answered —
   or any send failed ambiguously (a timeout can lose the reply frame
   of a request the member DID apply) — the entry is committed, so
   replay eventually delivers it to every member and the replicas
   converge; a write the client saw fail may then still land, which is
   exactly the at-most-once contract. Only a fan-out that failed
   definitively everywhere (no member process existed to apply it) is
   aborted: the entry is removed and the sequence number reused, so the
   origin's committed seq stream stays gap-free for the in-order guard.
   Serializing all writes for the service through this one process is
   what gives replicas an identical application order. *)
let replicate_write t self ~sender ~span ~service ~context (msg : Vmsg.t) req =
  let d = Kernel.domain_of_self self in
  obs_metric self "replicate-write";
  let origin = Pid.to_int (pid t) in
  let seq = t.next_wseq in
  t.next_wseq <- seq + 1;
  let req = obs_reparent self span { req with Csname.context } in
  let msg' = Vmsg.with_wseq (Vmsg.with_name msg req) { Vmsg.origin; seq } in
  Kernel.log_group_write d ~service ~origin ~seq msg';
  let requester = Kernel.host_addr (Kernel.host_of_self self) in
  let members = Kernel.service_group_members d ~requester ~service in
  obs_event self ~cat:Vobs.Eventlog.Replica
    ~trace:req.Csname.trace.Vobs.Span.trace
    "fan-out %s (origin %d, seq %d) to %d member(s)"
    (Vmsg.Op.to_string msg.Vmsg.code)
    origin seq (List.length members);
  let send_once member = Kernel.send self member msg' in
  let is_gap r = Vmsg.reply_code r = Some Reply.Retry in
  let outcome member =
    match send_once member with
    | Ok (r, _) when is_gap r ->
        obs_metric self "replicate-out-of-sync";
        `Rejected
    | Ok (r, _) -> `Answered r
    | Error e1 -> (
        obs_metric self "replicate-retry";
        match send_once member with
        | Ok (r, _) when is_gap r ->
            obs_metric self "replicate-out-of-sync";
            `Rejected
        | Ok (r, _) -> `Answered r
        | Error e2 ->
            obs_metric self "replicate-member-lost";
            (* Nonexistent_process is authoritative (a kernel nack: no
               live process, nothing applied); anything else may have
               delivered the request and lost the reply. *)
            if
              e1 = Kernel.Nonexistent_process && e2 = Kernel.Nonexistent_process
            then `Lost_definite
            else `Lost_ambiguous)
  in
  let outcomes = List.map outcome members in
  let answer =
    List.find_map (function `Answered r -> Some r | _ -> None) outcomes
  in
  match answer with
  | Some r ->
      Kernel.commit_group_write d ~service ~origin ~seq;
      (match Vmsg.reply_code r with
      | Some code -> obs_finish self span (Reply.to_string code)
      | None -> obs_finish self span "reply");
      ignore (Kernel.reply self ~to_:sender r)
  | None ->
      if List.exists (function `Lost_ambiguous -> true | _ -> false) outcomes
      then Kernel.commit_group_write d ~service ~origin ~seq
      else begin
        Kernel.abort_group_write d ~service ~origin ~seq;
        if t.next_wseq = seq + 1 then t.next_wseq <- seq
      end;
      obs_finish self span (Reply.to_string Reply.No_server);
      ignore (Kernel.reply self ~to_:sender (Vmsg.reply Reply.No_server))

(* Is this CSname request a write against a logical binding whose
   service is currently replica-bound? *)
let replicated_write_target self (msg : Vmsg.t) = function
  | Logical { service; context }
    when Vmsg.Op.is_csname_write msg.Vmsg.code
         && Kernel.service_group (Kernel.domain_of_self self) ~service <> None
    ->
      Some (service, context)
  | Logical _ | Static _ | Replicated _ -> None

let handle_prefixed t self ~sender (msg : Vmsg.t) req =
  let engine = Kernel.engine_of_domain (Kernel.domain_of_self self) in
  Vsim.Stats.Counter.incr t.stats.Csnh.requests;
  obs_metric self "prefix-lookup";
  let span = obs_start self msg req in
  (* The prefix parse and request rewrite: the processing the paper
     measures as the 3.94-3.99 ms additive cost of prefixed Opens. *)
  Vsim.Proc.delay engine Calibration.prefix_parse_cpu;
  let reply_with code =
    obs_finish self span (Reply.to_string code);
    ignore (Kernel.reply self ~to_:sender (Vmsg.reply code))
  in
  match Csname.parse_prefix req with
  | Error code -> reply_with code
  | Ok (prefix, req') -> (
      match Hashtbl.find_opt t.bindings prefix with
      | None -> reply_with Reply.Not_found
      | Some (Replicated { group; context }) ->
          (* The bound context is implemented by a whole group: multicast
             the rewritten request; the first member to answer serves
             it. *)
          Vsim.Stats.Counter.incr t.stats.Csnh.forwards;
          obs_metric self "forward";
          obs_finish self span ~index_to:req'.Csname.index "forward";
          let req' = obs_reparent self span { req' with Csname.context } in
          ignore
            (Kernel.forward_group self ~from_:sender ~group
               (Vmsg.with_name msg req'))
      | Some target -> (
          match replicated_write_target self msg target with
          | Some (service, context) ->
              Vsim.Stats.Counter.incr t.stats.Csnh.forwards;
              replicate_write t self ~sender ~span ~service ~context msg req'
          | None -> (
              match resolve self target with
              | Error code -> reply_with code
              | Ok spec -> (
                  Vsim.Stats.Counter.incr t.stats.Csnh.forwards;
                  obs_metric self "forward";
                  obs_finish self span ~index_to:req'.Csname.index "forward";
                  let req' =
                    obs_reparent self span
                      { req' with Csname.context = spec.Context.context }
                  in
                  match
                    Kernel.forward self ~from_:sender ~to_:spec.Context.server
                      (Vmsg.with_name msg req')
                  with
                  | Ok () -> ()
                  | Error _ -> forward_failed self target))))

(* Add/delete name operations (§5.7, optional, "ordinarily implemented
   only in context prefix servers"). The subject is the binding itself,
   so these do not walk through it. *)
let handle_binding_op t (msg : Vmsg.t) req =
  let name = Csname.remaining req in
  if msg.Vmsg.code = Vmsg.Op.add_context_name then
    match msg.Vmsg.payload with
    | Vmsg.P_context_spec spec -> (
        match add_binding t name (Static spec) with
        | Ok () -> Vmsg.ok ()
        | Error code -> Vmsg.reply code)
    | Vmsg.P_logical_spec { service; context } -> (
        match add_binding t name (Logical { service; context }) with
        | Ok () -> Vmsg.ok ()
        | Error code -> Vmsg.reply code)
    | _ -> Vmsg.reply Reply.Bad_operation
  else
    match delete_binding t name with
    | Ok () -> Vmsg.ok ()
    | Error code -> Vmsg.reply code

(* Operations on the prefix server's own context and its bindings,
   for unprefixed names. Uniformity rule (§5.6): a final-component name
   denotes the BINDING — Query describes it exactly as the context
   directory lists it; MapContext resolves it. Deeper names and all
   '[bracketed]' names act on the bound TARGET context instead. *)
let handle_own_context t self ~now (msg : Vmsg.t) =
  let open Vmsg in
  if msg.code = Op.map_context then
    ok
      ~payload:
        (P_context_spec
           (Context.spec ~server:(pid t) ~context:Context.Well_known.default))
      ()
  else if msg.code = Op.open_instance then
    match msg.payload with
    | P_open { mode = Directory_listing } ->
        let image = directory_image t ~now:(now ()) in
        let info =
          Instance_server.open_image t.instances ~now:(now ())
            ~describe:(fun () ->
              Descriptor.make ~obj_type:Descriptor.Directory
                ~size:(binding_count t) ~owner:t.owner "[prefixes]")
            image
        in
        ok ~payload:(P_instance info) ()
    | _ -> reply Reply.No_permission
  else if msg.code = Op.query_name then
    ok
      ~payload:
        (P_descriptor
           (Descriptor.make ~obj_type:Descriptor.Directory
              ~size:(binding_count t) ~owner:t.owner "[prefixes]"))
      ()
  else (ignore self; reply Reply.Bad_operation)

let handle_binding_name t self ~now (msg : Vmsg.t) name =
  let open Vmsg in
  match Hashtbl.find_opt t.bindings name with
  | None -> reply Reply.Not_found
  | Some target ->
      if msg.code = Op.query_name then
        ok ~payload:(P_descriptor (describe_binding t ~now:(now ()) name target)) ()
      else if msg.code = Op.map_context then
        match resolve self target with
        | Ok spec -> ok ~payload:(P_context_spec spec) ()
        | Error code -> reply code
      else
        (* Operating INTO the target requires the bracketed syntax. *)
        reply Reply.Not_a_context

(* An unprefixed CSname request interpreted in this server's (flat)
   context. Multi-component names descend through a binding into its
   target server, like any other context pointer. *)
let handle_unprefixed t self ~now ~sender (msg : Vmsg.t) req =
  let engine = Kernel.engine_of_domain (Kernel.domain_of_self self) in
  Vsim.Stats.Counter.incr t.stats.Csnh.requests;
  obs_metric self (Vmsg.Op.to_string msg.Vmsg.code);
  let span = obs_start self msg req in
  Vsim.Proc.delay engine Calibration.csname_common_cpu;
  let reply_with m =
    (match Vmsg.reply_code m with
    | Some code -> obs_finish self span (Reply.to_string code)
    | None -> obs_finish self span "reply");
    ignore (Kernel.reply self ~to_:sender m)
  in
  match Csname.validate req with
  | Error code -> reply_with (Vmsg.reply code)
  | Ok () ->
      if req.Csname.context <> Context.Well_known.default then
        reply_with (Vmsg.reply Reply.Bad_context)
      else begin
        obs_metric self "lookup";
        Vsim.Proc.delay engine Calibration.component_lookup_cpu;
        match Csname.components (Csname.remaining req) with
        | [] -> reply_with (handle_own_context t self ~now msg)
        | [ name ] -> reply_with (handle_binding_name t self ~now msg name)
        | name :: _rest -> (
            match Hashtbl.find_opt t.bindings name with
            | None -> reply_with (Vmsg.reply Reply.Not_found)
            | Some (Replicated { group; context }) ->
                Vsim.Stats.Counter.incr t.stats.Csnh.forwards;
                obs_metric self "forward";
                let req' =
                  { (Csname.advance_past req name) with Csname.context }
                in
                obs_finish self span ~index_to:req'.Csname.index "forward";
                let req' = obs_reparent self span req' in
                ignore
                  (Kernel.forward_group self ~from_:sender ~group
                     (Vmsg.with_name msg req'))
            | Some target -> (
                match replicated_write_target self msg target with
                | Some (service, context) ->
                    Vsim.Stats.Counter.incr t.stats.Csnh.forwards;
                    replicate_write t self ~sender ~span ~service ~context msg
                      (Csname.advance_past req name)
                | None -> (
                    match resolve self target with
                    | Error code -> reply_with (Vmsg.reply code)
                    | Ok spec -> (
                        Vsim.Stats.Counter.incr t.stats.Csnh.forwards;
                        obs_metric self "forward";
                        let req' =
                          {
                            (Csname.advance_past req name) with
                            Csname.context = spec.Context.context;
                          }
                        in
                        obs_finish self span ~index_to:req'.Csname.index
                          "forward";
                        let req' = obs_reparent self span req' in
                        match
                          Kernel.forward self ~from_:sender
                            ~to_:spec.Context.server (Vmsg.with_name msg req')
                        with
                        | Ok () -> ()
                        | Error _ -> forward_failed self target))))
      end

let handle_other t self (msg : Vmsg.t) =
  match Instance_server.handle_io t.instances msg with
  | Some reply -> Some reply
  | None ->
      if msg.Vmsg.code = Vmsg.Op.inverse_map_context then
        match msg.Vmsg.payload with
        | Vmsg.P_context_spec wanted ->
            let found =
              List.find_opt
                (fun (_, target) ->
                  match target with
                  | Static spec -> Context.equal_spec spec wanted
                  | Logical _ -> (
                      match resolve self target with
                      | Ok spec -> Context.equal_spec spec wanted
                      | Error _ -> false)
                  | Replicated _ ->
                      (* Any member could have answered; the inverse map
                         cannot identify one. *)
                      false)
                (bindings t)
            in
            (match found with
            | Some (name, _) ->
                Some (Vmsg.ok ~payload:(Vmsg.P_name ("[" ^ name ^ "]")) ())
            | None -> Some (Vmsg.reply Reply.Not_found))
        | _ -> Some (Vmsg.reply Reply.Bad_operation)
      else None

(* [start host ~owner ~initial] spawns the prefix server and registers
   it as this workstation's (local-scope) context-prefix service. *)
let start host ~owner ?(initial = []) () =
  let t =
    {
      owner;
      bindings = Hashtbl.create 16;
      instances = Instance_server.create ~name:"prefix-dirs" ();
      stats = Csnh.make_stats "prefix";
      pid = None;
      next_wseq = 1;
    }
  in
  List.iter
    (fun (name, target) ->
      match add_binding t name target with
      | Ok () -> ()
      | Error code ->
          invalid_arg
            (Fmt.str "Prefix_server.start: bad initial binding %S: %a" name
               Reply.pp code))
    initial;
  let engine = Kernel.engine_of_domain (Kernel.domain_of_host host) in
  let now () = Vsim.Engine.now engine in
  let server_pid =
    Kernel.spawn host ~name:(owner ^ "-prefix-server") (fun self ->
        let rec loop () =
          let msg, sender = Kernel.receive self in
          (match msg.Vmsg.name with
          | Some req
            when Vmsg.Op.is_csname_request msg.Vmsg.code
                 && Csname.starts_with_prefix req ->
              (* Prefixed names are forwarded wherever they lead, even
                 for add/delete: "[fs0]x" adds a name in fs0's context,
                 not a binding here. *)
              handle_prefixed t self ~sender msg req
          | Some req
            when msg.Vmsg.code = Vmsg.Op.add_context_name
                 || msg.Vmsg.code = Vmsg.Op.delete_context_name ->
              (* Unprefixed: the binding itself is the subject (§5.7's
                 optional operations). *)
              Vsim.Stats.Counter.incr t.stats.Csnh.requests;
              ignore (Kernel.reply self ~to_:sender (handle_binding_op t msg req))
          | Some req when Vmsg.Op.is_csname_request msg.Vmsg.code ->
              handle_unprefixed t self ~now ~sender msg req
          | Some _ | None ->
              Vsim.Stats.Counter.incr t.stats.Csnh.requests;
              let reply_msg =
                match handle_other t self msg with
                | Some m -> m
                | None -> Vmsg.reply Reply.Bad_operation
              in
              ignore (Kernel.reply self ~to_:sender reply_msg));
          loop ()
        in
        loop ())
  in
  t.pid <- Some server_pid;
  Kernel.set_pid host ~service:Service.Id.context_prefix server_pid Service.Local;
  t
