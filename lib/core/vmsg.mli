(** The V message standards (paper §3.2, §5.3).

    A request message carries its operation code first; the code
    determines the format of the variant part. Requests carrying a
    CSname additionally contain the standard {!Csname.req} fields,
    always in the same place, so any name-handling server can interpret
    and forward such a request {e without understanding its operation
    code} — the property multi-server name interpretation rests on.

    [payload] is an extensible variant: each subsystem adds its own
    constructors for its operations, exactly as V servers defined
    message formats on top of the common standards. *)

module Kernel = Vkernel.Kernel

type payload = ..
type payload += No_payload

(** The resolution binding a CSNH server stamps into a successful
    reply: how far into the name interpretation reached ([upto], an
    index into the request's name) and the (server-pid, context-id)
    implementing the context there. Fits the fixed 32-byte message
    proper, so it adds no wire bytes; clients with a name-resolution
    cache learn from it, everyone else ignores it. *)
type binding = { upto : int; spec : Context.spec }

(** Write sequencing for replicated services: the coordinating prefix
    server stamps each fanned-out CSNH write with its own pid
    ([origin]) and a per-coordinator counter ([seq]); replicas
    deduplicate retries and replays on the pair. Fits the 32-byte
    message proper — no wire bytes. *)
type wseq = { origin : int; seq : int }

type t = {
  code : int;  (** request code, or reply code for replies *)
  is_reply : bool;
  name : Csname.req option;  (** the standard CSname fields, if any *)
  payload : payload;
  extra_bytes : int;
      (** wire bytes beyond the 32-byte message and the name segment:
          bulk data, directory records, etc. *)
  binding : binding option;
      (** resolution binding stamped into successful CSname replies *)
  wseq : wseq option;
      (** replicated-write sequence number stamped by the coordinator *)
  deadline : float option;
      (** absolute sim-time (ms) by which the client's operation budget
          expires; stamped by a resilience-enabled runtime, read by
          admission control for deadline-aware drop. No wire bytes. *)
  retry_after : float option;
      (** retry-after hint (ms) riding a [Busy] reply: the shedding
          server's estimate of when capacity frees. No wire bytes. *)
}

(** Operation codes. Codes in [\[100, 120)] are CSname requests and must
    carry the standard name fields. *)
module Op : sig
  val open_instance : int
  val query_name : int
  val modify_name : int
  val map_context : int
  val add_context_name : int
  val delete_context_name : int
  val create_object : int
  val remove_object : int
  val rename_object : int
  val load_file : int
  val inverse_map_context : int
  val inverse_map_instance : int
  val read_instance : int
  val write_instance : int
  val query_instance : int
  val release_instance : int
  val set_instance_size : int

  (** Service-specific codes start at this value. *)
  val first_service_specific : int

  val is_csname_request : int -> bool

  (** The CSname requests that mutate the object or name space — the
      set a replicated service applies at every member (write-all). *)
  val is_csname_write : int -> bool

  (** Register a printable name for a service-specific code. *)
  val register : int -> string -> unit

  val to_string : int -> string
end

(** The reply to a successful Open: the temporary object created. *)
type instance_info = { instance : int; file_size : int; block_size : int }

type open_mode = Read | Write | Append | Directory_listing

val pp_open_mode : Format.formatter -> open_mode -> unit

type payload +=
  | P_open of { mode : open_mode }
  | P_instance of instance_info
  | P_descriptor of Descriptor.t
  | P_context_spec of Context.spec
  | P_logical_spec of { service : int; context : Context.id }
  | P_name of string
  | P_context_id of Context.id
  | P_instance_arg of int
  | P_read of { instance : int; block : int }
  | P_data of bytes
  | P_write of { instance : int; block : int; data : bytes }
  | P_count of int
  | P_create of { directory : bool }
  | P_set_size of { instance : int; size : int }

(** Build a request message. *)
val request : ?name:Csname.req -> ?extra_bytes:int -> ?payload:payload -> int -> t

(** Build a reply message carrying the given code. *)
val reply : ?extra_bytes:int -> ?payload:payload -> Reply.code -> t

(** [reply Ok] with an optional payload. *)
val ok : ?extra_bytes:int -> ?payload:payload -> unit -> t

(** The reply code, if this is a reply message. *)
val reply_code : t -> Reply.code option

(** Is this a successful reply? *)
val succeeded : t -> bool

(** Rewrite the standard CSname fields, leaving the (possibly not
    understood) rest of the message intact — the §5.4 forwarding
    rewrite. *)
val with_name : t -> Csname.req -> t

(** Stamp the resolution binding of a reply. *)
val with_binding : t -> binding -> t

(** Stamp the coordinator's (origin, seq) onto a fanned-out write. *)
val with_wseq : t -> wseq -> t

(** Stamp the client's absolute operation deadline (sim ms) onto a
    request, for deadline-aware admission drop at loaded servers. *)
val with_deadline : t -> float -> t

(** [busy ~retry_after_ms ()] is the overload rejection: a
    [reply Busy] carrying the shedding server's retry-after estimate.
    The hint adds no wire bytes (32-byte message proper). *)
val busy : retry_after_ms:float -> unit -> t

(** Wire bytes beyond the 32-byte message proper. *)
val payload_bytes : t -> int

(** Bytes copied into the receiver (names, bulk data). *)
val segment_bytes : t -> int

(** The kernel cost model for V messages. *)
val cost_model : t Kernel.cost_model

val pp : Format.formatter -> t -> unit
