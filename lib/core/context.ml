(* Contexts (§5.2): a context is a set of (name, object) tuples,
   identified by the pair (server pid, context identifier). The context
   identifier is a numeric id meaningful only to the server that
   implements it, except for a few well-known values. *)

module Pid = Vkernel.Pid

type id = int

(* A fully specified context: which process interprets names, and which
   of its name spaces to start in. *)
type spec = { server : Pid.t; context : id }

let spec ~server ~context = { server; context }

let equal_spec a b = Pid.equal a.server b.server && Int.equal a.context b.context

let pp_spec ppf s = Fmt.pf ppf "(%a, ctx %d)" Pid.pp s.server s.context

(* Well-known context identifiers (§5.2): fixed values naming generic
   name spaces. A server implementing only one context uses [default]. *)
module Well_known = struct
  let default = 0

  (* The user's home directory on a storage server. *)
  let home = 1

  (* The standard program directory used by program loading. *)
  let programs = 2

  (* A per-server space of temporary objects (instances). *)
  let instances = 3

  (* The user accounts implemented by a storage server (§5.2: "a file
     server may implement both files and user accounts"). *)
  let accounts = 4

  let first_ordinary = 16

  let to_string = function
    | 0 -> "default"
    | 1 -> "home"
    | 2 -> "programs"
    | 3 -> "instances"
    | 4 -> "accounts"
    | n -> Fmt.str "ctx%d" n
end

let pp_id ppf id =
  if id < Well_known.first_ordinary then Fmt.string ppf (Well_known.to_string id)
  else Fmt.pf ppf "ctx%d" id
