(** Typed object description records (paper §5.5, Figure 3).

    A description is what the standard query operation returns and what
    context directories (§5.6) are made of. Its first field is a type
    tag specifying the format of the rest, so a client can handle
    objects whose type it did not know in advance — files, terminals,
    printer jobs, mailboxes and TCP connections all describe themselves
    the same way. *)

type obj_type =
  | File
  | Directory
  | Context_pointer  (** a pointer to a context, possibly on another server *)
  | Prefix_binding  (** an entry in a context prefix server *)
  | Process
  | Terminal
  | Printer_job
  | Mailbox
  | Tcp_connection
  | Device
  | User_account

val obj_type_to_int : obj_type -> int
val obj_type_of_int : int -> obj_type option
val obj_type_to_string : obj_type -> string

type t = {
  obj_type : obj_type;  (** the tag field: format of the rest *)
  name : string;
  size : int;  (** bytes, entries, or other type-appropriate extent *)
  owner : string;
  created : float;  (** simulated ms since boot *)
  modified : float;
  writable : bool;  (** coarse access control, changed via modify *)
  instance : int option;  (** object instance id, for temporary objects *)
  attrs : (string * string) list;  (** type-specific attributes *)
}

val make :
  ?size:int ->
  ?owner:string ->
  ?created:float ->
  ?modified:float ->
  ?writable:bool ->
  ?instance:int ->
  ?attrs:(string * string) list ->
  obj_type:obj_type ->
  string ->
  t

(** Merge a modification request into the current description: only the
    modifiable fields (writable, owner, attrs) change; servers ignore
    the rest (§5.5). *)
val apply_modification : current:t -> requested:t -> t

(** Raised by the decoders on corrupt input. *)
exception Malformed of string

(** Marshal one record (length-prefixed binary). *)
val to_bytes : t -> bytes

(** [of_bytes data offset] decodes one record and returns the offset of
    the next. Raises {!Malformed}. *)
val of_bytes : bytes -> int -> t * int

(** Decode a whole context-directory image. Raises {!Malformed}. *)
val all_of_bytes : bytes -> t list

(** Concatenate records into a context-directory image. *)
val directory_to_bytes : t list -> bytes

val pp : Format.formatter -> t -> unit
