(** The context prefix server (paper §5.8, §6).

    One runs per user (per workstation), holding that user's symbolic
    names for contexts of interest. A CSname beginning "[prefix]" is
    routed here by the client run-time; the server parses the prefix,
    rewrites the request's standard fields, and forwards it to the
    server implementing the bound context — dropping out of the
    transaction, so the target replies directly to the client.

    Bindings are {e static} (server-pid, context-id) pairs or {e
    logical} (service, context) pairs resolved with GetPid at each use,
    so a service re-registered after a crash keeps resolving. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid

type target =
  | Static of Context.spec
  | Logical of { service : int; context : Context.id }
  | Replicated of { group : int; context : Context.id }
      (** a context implemented transparently by a process group of
          servers: prefixed requests are multicast and the first member
          to answer serves them (§7) *)

val pp_target : Format.formatter -> target -> unit

type t

(** Spawn the server on a workstation host and register it as the
    (local-scope) context-prefix service. [initial] seeds bindings. *)
val start :
  Vmsg.t Kernel.host -> owner:string -> ?initial:(string * target) list -> unit -> t

val owner : t -> string
val pid : t -> Pid.t
val stats : t -> Csnh.server_stats

(** Bindings sorted by prefix name. *)
val bindings : t -> (string * target) list

val binding_count : t -> int

(** Live bytes held by the binding table (experiment E5). *)
val data_bytes : t -> int

(** Direct binding management (scenario setup; protocol traffic uses the
    add/delete name operations). The prefix may be written with or
    without its brackets. *)
val add_binding : t -> string -> target -> (unit, Reply.code) result

val delete_binding : t -> string -> (unit, Reply.code) result
val find_binding : t -> string -> target option
