(* Replica-side write deduplication.

   A replicated write arrives stamped with the coordinator's (origin,
   seq) — see {!Vmsg.wseq}. Each member keeps, per origin, the highest
   sequence number it has applied plus the replies to recently applied
   writes, so a coordinator retry (same seq resent after a lost frame)
   or a catch-up replay after restart is answered from the cache rather
   than applied twice.

   The applied high-water marks model durable state — like the file
   system itself, they survive a server restart. The reply cache is
   memory and is dropped on restart ({!drop_replies}): a replayed write
   whose seq is already covered is then acknowledged with a plain Ok,
   which is all a catching-up coordinator needs. *)

type t = {
  applied : (int, int) Hashtbl.t;  (* origin -> highest applied seq *)
  replies : (int * int, Vmsg.t) Hashtbl.t;  (* (origin, seq) -> reply *)
}

let create () = { applied = Hashtbl.create 8; replies = Hashtbl.create 32 }

let applied_seq t ~origin =
  match Hashtbl.find_opt t.applied origin with Some s -> s | None -> 0

(* Writes from one origin arrive in seq order (the coordinator
   serializes them), so a single high-water mark per origin suffices. *)
let admit t ~origin ~seq =
  if seq > applied_seq t ~origin then `Fresh
  else `Replay (Hashtbl.find_opt t.replies (origin, seq))

let record t ~origin ~seq reply =
  if seq > applied_seq t ~origin then Hashtbl.replace t.applied origin seq;
  Hashtbl.replace t.replies (origin, seq) reply

let drop_replies t = Hashtbl.reset t.replies
