(* Replica-side write deduplication and ordering.

   A replicated write arrives stamped with the coordinator's (origin,
   seq) — see {!Vmsg.wseq}. Each member keeps, per origin, the highest
   sequence number it has applied plus the replies to recently applied
   writes, so a coordinator retry (same seq resent after a lost frame)
   or a catch-up replay after restart is answered from the cache rather
   than applied twice.

   Admission is strictly in-order per origin: the only admissible fresh
   write is applied+1. A larger seq means this member missed a write
   (lost frame, partition) — applying it anyway would let the member
   skip the missed write forever, and would apply operations on the
   same name out of order (create then remove could invert). Such
   writes are rejected as [`Gap]; the member stays consistent at its
   high-water mark until a log replay (revive, or heal-time sync)
   delivers the missing sequence numbers in order.

   The applied high-water marks model durable state — like the file
   system itself, they survive a server restart. The reply cache is
   memory, bounded to a sliding window of [reply_window] entries per
   origin, and is dropped entirely on restart ({!drop_replies}): a
   replayed write whose seq is already covered is then acknowledged
   with a plain Ok, which is all a catching-up coordinator needs. *)

type t = {
  applied : (int, int) Hashtbl.t;  (* origin -> highest applied seq *)
  replies : (int * int, Vmsg.t) Hashtbl.t;  (* (origin, seq) -> reply *)
}

(* Replies retained per origin. A coordinator retransmits only the
   in-flight seq, so any window covers it; the slack absorbs replays
   arriving while newer writes land. *)
let reply_window = 32

let create () = { applied = Hashtbl.create 8; replies = Hashtbl.create 32 }

let applied_seq t ~origin =
  match Hashtbl.find_opt t.applied origin with Some s -> s | None -> 0

let admit t ~origin ~seq =
  let applied = applied_seq t ~origin in
  if seq <= applied then `Replay (Hashtbl.find_opt t.replies (origin, seq))
  else if seq = applied + 1 then `Fresh
  else `Gap

let record t ~origin ~seq reply =
  if seq > applied_seq t ~origin then Hashtbl.replace t.applied origin seq;
  Hashtbl.replace t.replies (origin, seq) reply;
  Hashtbl.remove t.replies (origin, seq - reply_window)

let drop_replies t = Hashtbl.reset t.replies
