(** The standard name-mapping procedure and the generic CSNH server
    skeleton (paper §5.4).

    Any server implementing one or more name spaces conforms to this
    procedure: interpret components of the uninterpreted part of the
    name left-to-right in a running CurrentContext; when a component
    resolves to a context implemented by another server, rewrite the
    standard fields (name index, context id) and forward the request —
    which the server need not otherwise understand — to that server. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid

(** What one name component means inside a given context. *)
type lookup_result =
  | Descend of Context.id  (** a context on this same server *)
  | Cross of Context.spec  (** a pointer to a context on another server *)
  | Stop  (** not a context here: a leaf object, or absent *)

type outcome =
  | Local of Context.id * string list
      (** interpretation ends here: the final context and the components
          context resolution did not consume (possibly none) *)
  | Forward of Context.spec * Csname.req
      (** crossed into another server's context: forward the request,
          rewritten with the new index and context id *)
  | Fail of Reply.code

(** Run the §5.4 procedure over a request. Rejects '[prefix]' names
    (only prefix servers parse those — the client run-time routes them)
    and invalid starting contexts. *)
val walk :
  valid_context:(Context.id -> bool) ->
  lookup:(Context.id -> string -> lookup_result) ->
  Csname.req ->
  outcome

(** What a specific server plugs into the generic loop. *)
type handlers = {
  valid_context : Context.id -> bool;
  lookup : Context.id -> string -> lookup_result;
      (** one component in one context; the loop charges
          [component_lookup_cpu] around each call *)
  handle_csname :
    sender:Pid.t -> Vmsg.t -> Csname.req -> Context.id -> string list -> Vmsg.t;
      (** a CSname request whose interpretation ended on this server:
          final context, unconsumed components; returns the reply *)
  handle_other : sender:Pid.t -> Vmsg.t -> Vmsg.t option;
      (** non-CSname requests; [None] means not implemented *)
}

(** Counters a CSNH server keeps about its own processing; the harness
    uses [specific_ms] to separate protocol cost from server-specific
    cost (the paper's Open figures exclude the latter). *)
type server_stats = {
  requests : Vsim.Stats.Counter.t;
  forwards : Vsim.Stats.Counter.t;
  specific_ms : Vsim.Stats.Series.t;
}

val make_stats : string -> server_stats

(** Handle one request: reply, or forward it along. Exposed for servers
    with custom receive loops (the prefix server, the mail server). *)
val handle_request :
  Vmsg.t Kernel.self -> handlers -> server_stats -> sender:Pid.t -> Vmsg.t -> unit

(** Run a CSNH server forever. *)
val serve : Vmsg.t Kernel.self -> ?stats:server_stats -> handlers -> unit
