(** The §2.1 centralized baseline: a distinguished name server mapping
    full character-string names to (object server, low-level id) pairs.
    Clients look a name up here, then address the object server directly
    with the low-level identifier.

    This is the comparison system for experiment E6; it exhibits exactly
    the drawbacks §2.2 predicts — an extra transaction per name use, a
    two-server consistency obligation on create/delete, and a central
    availability choke point. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
open Vnaming

module Op : sig
  val register : int
  val unregister : int
  val lookup : int
end

type binding = { object_server : Pid.t; low_id : int }

type Vmsg.payload += P_ns_binding of binding

type t

(** Boot the name server (network-visible service). *)
val start : Vmsg.t Kernel.host -> t

val pid : t -> Pid.t
val stats : t -> Csnh.server_stats
val binding_count : t -> int

(** Direct registration for scenario setup (bypasses the wire). *)
val preload : t -> string -> binding -> unit

(** {1 Client stubs} *)

val register :
  Vmsg.t Kernel.self -> ns:Pid.t -> name:string -> binding -> (unit, Vio.Verr.t) result

val unregister :
  Vmsg.t Kernel.self -> ns:Pid.t -> name:string -> (unit, Vio.Verr.t) result

val lookup :
  Vmsg.t Kernel.self -> ns:Pid.t -> name:string -> (binding, Vio.Verr.t) result

(** Open the centralized way: look up at the name server, then open by
    low-level id at the object server — two transactions where the
    distributed model uses one. *)
val open_via_ns :
  Vmsg.t Kernel.self ->
  ns:Pid.t ->
  name:string ->
  mode:Vmsg.open_mode ->
  (Vio.Client.remote_instance, Vio.Verr.t) result

(** Delete a named object under the centralized model: the object at its
    server, then the name at the name server. [crash_between] stops
    after the first step, leaving the §2.2 stale-name window. *)
val delete_via_ns :
  Vmsg.t Kernel.self ->
  ns:Pid.t ->
  name:string ->
  object_env:Vruntime.Runtime.env ->
  object_name:string ->
  ?crash_between:bool ->
  unit ->
  ([ `Clean | `Interrupted_stale_name_left ], Vio.Verr.t) result
