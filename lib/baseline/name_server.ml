(* The §2.1 centralized baseline: a distinguished name server mapping
   full character-string names to (object server, low-level identifier)
   pairs. Clients look a name up here, then address the object server
   directly with the low-level id.

   This is the comparison system for experiment E6: it exhibits exactly
   the drawbacks §2.2 predicts — an extra transaction per name use, a
   consistency obligation on every create/delete (two-server updates
   that can be interrupted), and a central availability choke point. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Service = Vkernel.Service
module Calibration = Vnet.Calibration
open Vnaming

module Op = struct
  let register = 250
  let unregister = 251
  let lookup = 252

  let () =
    List.iter
      (fun (c, n) -> Vmsg.Op.register c n)
      [ (register, "NsRegister"); (unregister, "NsUnregister"); (lookup, "NsLookup") ]
end

type binding = { object_server : Pid.t; low_id : int }

type Vmsg.payload +=
  | P_ns_binding of binding  (** Register request / Lookup reply *)

type t = {
  table : (string, binding) Hashtbl.t;
  stats : Csnh.server_stats;
  mutable pid : Pid.t option;
}

let pid t = Option.get t.pid
let stats t = t.stats
let binding_count t = Hashtbl.length t.table

(* Direct registration for scenario setup (bypasses the wire). *)
let preload t name binding = Hashtbl.replace t.table name binding

let start host =
  let engine = Kernel.engine_of_domain (Kernel.domain_of_host host) in
  let t = { table = Hashtbl.create 64; stats = Csnh.make_stats "name-server"; pid = None } in
  let server_pid =
    Kernel.spawn host ~name:"name-server" (fun self ->
        let rec loop () =
          let msg, sender = Kernel.receive self in
          Vsim.Stats.Counter.incr t.stats.Csnh.requests;
          let name =
            match msg.Vmsg.name with Some r -> Csname.remaining r | None -> ""
          in
          (* The centralized server still pays per-component
             interpretation cost for hierarchical names: the same
             work a file server does, only here for every object in the
             system. *)
          Vsim.Proc.delay engine
            (Calibration.csname_common_cpu
            +. (float_of_int (List.length (Csname.components name))
               *. Calibration.component_lookup_cpu));
          let reply_msg =
            if msg.Vmsg.code = Op.register then
              match msg.Vmsg.payload with
              | P_ns_binding b ->
                  if Hashtbl.mem t.table name then Vmsg.reply Reply.Duplicate_name
                  else begin
                    Hashtbl.replace t.table name b;
                    Vmsg.ok ()
                  end
              | _ -> Vmsg.reply Reply.Bad_operation
            else if msg.Vmsg.code = Op.unregister then
              if Hashtbl.mem t.table name then begin
                Hashtbl.remove t.table name;
                Vmsg.ok ()
              end
              else Vmsg.reply Reply.Not_found
            else if msg.Vmsg.code = Op.lookup then
              match Hashtbl.find_opt t.table name with
              | Some b -> Vmsg.ok ~payload:(P_ns_binding b) ()
              | None -> Vmsg.reply Reply.Not_found
            else Vmsg.reply Reply.Bad_operation
          in
          ignore (Kernel.reply self ~to_:sender reply_msg);
          loop ()
        in
        loop ())
  in
  t.pid <- Some server_pid;
  Kernel.set_pid host ~service:Service.Id.name_server server_pid Service.Both;
  t

(* --- client stubs --- *)

let transact self target msg =
  match Kernel.send self target msg with
  | Error e -> Error (Vio.Verr.Ipc e)
  | Ok (reply, _) -> (
      match Vmsg.reply_code reply with
      | Some Reply.Ok -> Ok reply
      | Some code -> Error (Vio.Verr.Denied code)
      | None -> Error (Vio.Verr.Protocol "expected reply"))

let named_request code name ?payload () =
  Vmsg.request ~name:(Csname.make_req name) ?payload code

let register self ~ns ~name binding =
  Result.map
    (fun (_ : Vmsg.t) -> ())
    (transact self ns (named_request Op.register name ~payload:(P_ns_binding binding) ()))

let unregister self ~ns ~name =
  Result.map
    (fun (_ : Vmsg.t) -> ())
    (transact self ns (named_request Op.unregister name ()))

let lookup self ~ns ~name =
  match transact self ns (named_request Op.lookup name ()) with
  | Error e -> Error e
  | Ok reply -> (
      match reply.Vmsg.payload with
      | P_ns_binding b -> Ok b
      | _ -> Error (Vio.Verr.Protocol "NsLookup reply carried no binding"))

(* Open a named file the centralized way: look up at the name server,
   then open by low-level id at the object server. Two transactions
   where the distributed model uses one. *)
let open_via_ns self ~ns ~name ~mode =
  match lookup self ~ns ~name with
  | Error e -> Error e
  | Ok { object_server; low_id } -> (
      let msg =
        Vmsg.request
          ~payload:(Vservices.Svc.P_low_id { low_id; mode })
          Vservices.Svc.Op.open_by_low_id
      in
      match Kernel.send self object_server msg with
      | Error e -> Error (Vio.Verr.Ipc e)
      | Ok (reply, replier) -> (
          match (Vmsg.reply_code reply, reply.Vmsg.payload) with
          | Some Reply.Ok, Vmsg.P_instance info ->
              Ok { Vio.Client.server = replier; info }
          | Some Reply.Ok, _ -> Error (Vio.Verr.Protocol "OpenByLowId reply")
          | Some code, _ -> Error (Vio.Verr.Denied code)
          | None, _ -> Error (Vio.Verr.Protocol "expected reply")))

(* Delete a named object under the centralized model: the object at its
   server, then the name at the name server. [crash_between] simulates
   the failure window §2.2 describes — the object dies but its name
   survives, leaving the name service inconsistent. *)
let delete_via_ns self ~ns ~name ~object_env ~object_name ?(crash_between = false) () =
  match Vruntime.Runtime.remove object_env object_name with
  | Error e -> Error e
  | Ok () ->
      if crash_between then Ok `Interrupted_stale_name_left
      else (
        match unregister self ~ns ~name with
        | Ok () -> Ok `Clean
        | Error e -> Error e)
