(** The span/trace model: a trace follows one CSNH request across every
    server it visits; a span is one hop. See {!Hub} for creation and
    storage — this module is the pure data model. *)

(** What travels with a request: trace id, parent span id, and the
    simulated time the request was (re)issued. *)
type ctx = { trace : int; parent : int; sent_at : float }

(** The untraced context (trace id 0), the default on every request. *)
val no_ctx : ctx

val is_traced : ctx -> bool

type t = {
  trace_id : int;
  span_id : int;
  parent_id : int;  (** 0 for a root span *)
  op : string;
  host : string;
  server : string;
  pid : int;
  context : int;
  index_from : int;
  mutable index_to : int;
  queue_wait : float;
      (** sim ms between issue and this hop starting: wire + queueing *)
  started : float;
  mutable finished : float;
  mutable outcome : string;  (** reply code, or "forward" *)
  mutable tags : string list;
      (** free-form annotations, newest first (e.g. "retry:2", "fault") *)
}

(** Annotate a span (e.g. ["retry:2"], ["fault"]); cheap, unordered
    metadata that rides along into [pp]/[to_json]. *)
val add_tag : t -> string -> unit

(** Tags in the order they were added. *)
val tags : t -> string list

(** Time this hop itself spent on the request, in simulated ms. *)
val service_ms : t -> float

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
