(* Fixed-bucket histograms with mergeable state and optional exemplar
   reservoirs.

   [bounds] are strictly increasing bucket upper bounds; [counts] has
   one extra slot for the overflow bucket. Observed extrema are kept so
   quantile interpolation can clamp the open-ended end buckets: the
   overflow bucket's upper edge is *always* reported as the observed
   maximum, never as +inf, in [buckets], [to_json] and [quantile]
   alike. Only the Prometheus exposition format (see {!Export}) prints
   the spec-mandated "+Inf" — that is a wire-format obligation, not a
   different answer.

   Two histograms built with the same bounds can be merged ([merge]),
   which is what lets per-host observations roll up into per-edge and
   fleet aggregates without keeping raw samples.

   Exemplars: when created with [exemplar_slots > 0], each bucket keeps
   a reservoir of up to that many (trace id, value) pairs, maintained
   with Vitter's algorithm R over a caller-supplied {!Srand} stream so
   a p99 outlier in an aggregate links back to a concrete trace. *)

type exemplar = { trace : int; value : float }

type t = {
  bounds : float array;
  counts : int array;
  mutable n : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
  slots : int;  (* exemplar reservoir capacity per bucket; 0 = off *)
  ex : exemplar array array;  (* one row per bucket when slots > 0 *)
  ex_fill : int array;  (* valid prefix length of each reservoir row *)
  ex_seen : int array;  (* exemplar candidates offered per bucket *)
}

(* Default bounds suit simulated-ms latencies: sub-ms locals through
   multi-second bulk transfers. *)
let default_bounds =
  [| 0.1; 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0;
     256.0; 512.0; 1024.0; 4096.0 |]

let no_exemplar = { trace = 0; value = nan }

let create ?(bounds = default_bounds) ?(exemplar_slots = 0) () =
  if Array.length bounds = 0 then invalid_arg "Histogram.create: no bounds";
  Array.iteri
    (fun i b ->
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg "Histogram.create: bounds not increasing")
    bounds;
  if exemplar_slots < 0 then
    invalid_arg "Histogram.create: negative exemplar_slots";
  let nbuckets = Array.length bounds + 1 in
  {
    bounds;
    counts = Array.make nbuckets 0;
    n = 0;
    sum = 0.0;
    lo = infinity;
    hi = neg_infinity;
    slots = exemplar_slots;
    ex =
      (if exemplar_slots = 0 then [||]
       else Array.init nbuckets (fun _ -> Array.make exemplar_slots no_exemplar));
    ex_fill = (if exemplar_slots = 0 then [||] else Array.make nbuckets 0);
    ex_seen = (if exemplar_slots = 0 then [||] else Array.make nbuckets 0);
  }

let bounds t = Array.copy t.bounds
let raw_counts t = Array.copy t.counts

let bucket_of t x =
  (* Linear scan: bucket counts are small and fixed. *)
  let rec find i =
    if i >= Array.length t.bounds then i
    else if x <= t.bounds.(i) then i
    else find (i + 1)
  in
  find 0

(* Reservoir sampling (algorithm R): the b-th bucket keeps each of its
   candidates with probability slots/seen, so the reservoir is a uniform
   sample of every traced observation that landed in that bucket. *)
let offer_exemplar t b ~trace ~rand x =
  t.ex_seen.(b) <- t.ex_seen.(b) + 1;
  let row = t.ex.(b) in
  if t.ex_fill.(b) < t.slots then begin
    row.(t.ex_fill.(b)) <- { trace; value = x };
    t.ex_fill.(b) <- t.ex_fill.(b) + 1
  end
  else
    let j = Srand.int rand t.ex_seen.(b) in
    if j < t.slots then row.(j) <- { trace; value = x }

let observe ?trace ?rand t x =
  let b = bucket_of t x in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x;
  if t.slots > 0 then
    match (trace, rand) with
    | Some trace, Some rand when trace > 0 -> offer_exemplar t b ~trace ~rand x
    | _ -> ()

let count t = t.n
let sum t = t.sum
let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n
let min_ t = if t.n = 0 then nan else t.lo
let max_ t = if t.n = 0 then nan else t.hi

(* Lower edge of bucket [b], clamped to the observed minimum for the
   first occupied bucket; upper edge clamped to the observed maximum
   for the overflow bucket. *)
let bucket_edges t b =
  let lower = if b = 0 then t.lo else t.bounds.(b - 1) in
  let upper = if b >= Array.length t.bounds then t.hi else t.bounds.(b) in
  (Float.max lower t.lo |> Float.min t.hi, Float.min upper t.hi)

(* Quantile by linear interpolation inside the bucket holding the
   target rank — the standard estimate for pre-aggregated samples.
   Error is bounded by the width of that bucket. *)
let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile";
  if t.n = 0 then nan
  else begin
    let target = q *. float_of_int t.n in
    let rec walk b cum =
      if b >= Array.length t.counts then t.hi
      else begin
        let c = t.counts.(b) in
        let cum' = cum +. float_of_int c in
        if c > 0 && cum' >= target then begin
          let lower, upper = bucket_edges t b in
          let frac =
            if c = 0 then 0.0
            else Float.max 0.0 (target -. cum) /. float_of_int c
          in
          lower +. (frac *. (upper -. lower))
        end
        else walk (b + 1) cum'
      end
    in
    walk 0 0.0 |> Float.max t.lo |> Float.min t.hi
  end

(* (lower, upper, count) rows for the occupied range. The overflow
   row's upper edge is the observed maximum — the same clamp
   [quantile] and [to_json] use, so all three representations agree. *)
let buckets t =
  List.init
    (Array.length t.counts)
    (fun b ->
      let lower, upper = bucket_edges t b in
      (lower, upper, t.counts.(b)))
  |> List.filter (fun (_, _, c) -> c > 0)

let exemplars t b =
  if t.slots = 0 || b < 0 || b >= Array.length t.counts then []
  else Array.to_list (Array.sub t.ex.(b) 0 t.ex_fill.(b))

let all_exemplars t =
  if t.slots = 0 then []
  else
    List.concat (List.init (Array.length t.counts) (fun b -> exemplars t b))

(* [merge a b] is a fresh histogram holding both inputs' observations:
   counts, n and sum add; extrema widen; exemplar reservoirs
   concatenate and keep the prefix (prefix-truncation of concatenation
   is associative, so merge order cannot change the result). Both
   inputs must share bucket bounds — aggregation across differently
   shaped histograms has no meaningful bucket-wise sum. *)
let merge a b =
  if a.bounds <> b.bounds then invalid_arg "Histogram.merge: bounds differ";
  let slots = Int.max a.slots b.slots in
  let m = create ~bounds:a.bounds ~exemplar_slots:slots () in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  m.n <- a.n + b.n;
  m.sum <- a.sum +. b.sum;
  m.lo <- Float.min a.lo b.lo;
  m.hi <- Float.max a.hi b.hi;
  if slots > 0 then
    Array.iteri
      (fun bkt _ ->
        List.iter
          (fun e ->
            if m.ex_fill.(bkt) < slots then begin
              m.ex.(bkt).(m.ex_fill.(bkt)) <- e;
              m.ex_fill.(bkt) <- m.ex_fill.(bkt) + 1
            end)
          (exemplars a bkt @ exemplars b bkt);
        m.ex_seen.(bkt) <-
          (if a.slots > 0 then a.ex_seen.(bkt) else 0)
          + (if b.slots > 0 then b.ex_seen.(bkt) else 0))
      m.counts;
  m

let to_json t =
  let nbounds = Array.length t.bounds in
  let bucket_rows =
    List.init
      (Array.length t.counts)
      (fun b ->
        let lower, upper = bucket_edges t b in
        (b, lower, upper, t.counts.(b)))
    |> List.filter (fun (_, _, _, c) -> c > 0)
    |> List.map (fun (b, lower, upper, c) ->
           let base =
             [
               ("le", Json.Float upper);
               ("ge", Json.Float lower);
               ("count", Json.Int c);
             ]
           in
           let overflow =
             (* The open-ended bucket, flagged so readers know its "le"
                is the observed max, not a configured bound. *)
             if b >= nbounds then [ ("overflow", Json.Bool true) ] else []
           in
           let ex =
             match exemplars t b with
             | [] -> []
             | es ->
                 [
                   ( "exemplars",
                     Json.List
                       (List.map
                          (fun e ->
                            Json.Obj
                              [
                                ("trace", Json.Int e.trace);
                                ("value", Json.Float e.value);
                              ])
                          es) );
                 ]
           in
           Json.Obj (base @ overflow @ ex))
  in
  Json.Obj
    [
      ("count", Json.Int t.n);
      ("sum", Json.Float t.sum);
      ("mean", Json.Float (mean t));
      ("min", Json.Float (min_ t));
      ("max", Json.Float (max_ t));
      ("p50", Json.Float (quantile t 0.5));
      ("p95", Json.Float (quantile t 0.95));
      ("p99", Json.Float (quantile t 0.99));
      ("buckets", Json.List bucket_rows);
    ]

let pp ppf t =
  Fmt.pf ppf "n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f" t.n
    (mean t) (quantile t 0.5) (quantile t 0.95) (quantile t 0.99) (max_ t)
