(* Hierarchical metric rollups: the scale answer to the flat registry.

   The flat {!Metrics} registry keys every instrument by a concrete
   (host, server, op) triple, which is perfect at demo scale and fatal
   at 100k hosts — cardinality grows with the host count. A rollup
   keeps three levels instead:

     leaf   one scope per reporting entity (a host, a link), capped
     group  one scope per aggregation group (an edge switch, a shard)
     fleet  exactly one scope ("fleet")

   and every recording lands in all three at once. The caller supplies
   [group_of], the leaf-scope -> group-scope mapping (typically
   Topology.edge identity — but this library sits below the network
   stack, so the function is injected rather than imported). Group and
   fleet cardinality is O(groups + servers), independent of the host
   count; leaf cardinality is bounded by a hard cap. When the cap is
   hit, new leaf keys are refused and counted in [keys_dropped] —
   aggregate levels keep absorbing those observations, so the fleet
   totals stay exact while per-leaf detail saturates. Loud saturation,
   no OOM.

   Aggregation semantics per instrument kind: counters sum, gauges keep
   the running peak (a group's "queue depth" is the worst queue it has
   ever seen — a max, since summing instantaneous depths across
   members is meaningless), histograms merge bucket-wise
   ({!Histogram.merge}). [merge] combines two rollups with the same
   rules and no cap, making it associative — reporting-time machinery
   for combining shards, not a recording path. *)

type level = Leaf | Group | Fleet

let level_to_string = function
  | Leaf -> "leaf"
  | Group -> "group"
  | Fleet -> "fleet"

type key = { scope : string; server : string; op : string }

let pp_key ppf k = Fmt.pf ppf "%s/%s/%s" k.scope k.server k.op

let compare_key a b =
  match String.compare a.scope b.scope with
  | 0 -> (
      match String.compare a.server b.server with
      | 0 -> String.compare a.op b.op
      | c -> c)
  | c -> c

type t = {
  group_of : string -> string option;
  leaf_cap : int;
  bounds : float array;
  slots : int;
  rand : Srand.t;
  (* One table per (instrument kind, level); keys within a level are the
     admitted scopes. *)
  counters : (level * key, int ref) Hashtbl.t;
  gauges : (level * key, float ref) Hashtbl.t;
  histograms : (level * key, Histogram.t) Hashtbl.t;
  seen : (level * key, unit) Hashtbl.t;  (* admitted keys, all kinds *)
  mutable leaf_keys : int;
  mutable keys_dropped : int;
}

let fleet_scope = "fleet"

let create ?(leaf_cap = 4096) ?(bounds = Histogram.default_bounds)
    ?(exemplar_slots = 0) ?(seed = 0x0b5) ~group_of () =
  if leaf_cap < 1 then invalid_arg "Rollup.create: leaf_cap must be >= 1";
  {
    group_of;
    leaf_cap;
    bounds;
    slots = exemplar_slots;
    rand = Srand.create ~seed;
    counters = Hashtbl.create 256;
    gauges = Hashtbl.create 64;
    histograms = Hashtbl.create 128;
    seen = Hashtbl.create 256;
    leaf_keys = 0;
    keys_dropped = 0;
  }

(* Admission: aggregate levels always pass (their cardinality is
   structurally bounded); a new leaf key passes only under the cap.
   [admit_quiet] decides without touching the drop counter — route
   binding uses it, because a refused route counts one drop per
   *recording*, not one per bind. *)
let admit_quiet t level key =
  if Hashtbl.mem t.seen (level, key) then true
  else if level <> Leaf then begin
    Hashtbl.replace t.seen (level, key) ();
    true
  end
  else if t.leaf_keys < t.leaf_cap then begin
    Hashtbl.replace t.seen (level, key) ();
    t.leaf_keys <- t.leaf_keys + 1;
    true
  end
  else false

let admit t level key =
  admit_quiet t level key
  ||
  (t.keys_dropped <- t.keys_dropped + 1;
   false)

(* The three keys one leaf observation fans out to. *)
let targets t ~leaf ~server ~op =
  let fleet = (Fleet, { scope = fleet_scope; server; op }) in
  let group =
    match t.group_of leaf with
    | Some g -> [ (Group, { scope = g; server; op }) ]
    | None -> []
  in
  ((Leaf, { scope = leaf; server; op }) :: group) @ [ fleet ]

let incr ?(by = 1) t ~leaf ~server ~op =
  List.iter
    (fun (level, key) ->
      if admit t level key then
        match Hashtbl.find_opt t.counters (level, key) with
        | Some r -> r := !r + by
        | None -> Hashtbl.replace t.counters (level, key) (ref by))
    (targets t ~leaf ~server ~op)

let set_gauge t ~leaf ~server ~op v =
  List.iter
    (fun (level, key) ->
      if admit t level key then
        match Hashtbl.find_opt t.gauges (level, key) with
        | Some r ->
            (* Leaf keeps the latest reading; aggregates keep the peak —
               summing instantaneous readings across members would be
               meaningless, and the worst member is the alertable one. *)
            if level = Leaf then r := v else if v > !r then r := v
        | None -> Hashtbl.replace t.gauges (level, key) (ref v))
    (targets t ~leaf ~server ~op)

let observe ?trace t ~leaf ~server ~op v =
  List.iter
    (fun (level, key) ->
      if admit t level key then begin
        let h =
          match Hashtbl.find_opt t.histograms (level, key) with
          | Some h -> h
          | None ->
              let h =
                Histogram.create ~bounds:t.bounds ~exemplar_slots:t.slots ()
              in
              Hashtbl.replace t.histograms (level, key) h;
              h
        in
        Histogram.observe ?trace ~rand:t.rand h v
      end)
    (targets t ~leaf ~server ~op)

(* --- pre-resolved routes: the recording hot path --- *)

(* A route binds admission and the level cells once; recording through
   it is then pointer work only — no key construction, no hashing, no
   group lookup. A route whose leaf key the cap refused still carries
   the aggregate cells, and each recording through it counts one
   dropped observation, matching the keyed path's accounting. *)

type counter_route = {
  cr_cells : int ref array;
  cr_owner : t;
  cr_leaf_ok : bool;
}

type observe_route = {
  or_hists : Histogram.t array;
  or_owner : t;
  or_leaf_ok : bool;
}

let counter_cell t level key =
  match Hashtbl.find_opt t.counters (level, key) with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.counters (level, key) r;
      r

let hist_cell t level key =
  match Hashtbl.find_opt t.histograms (level, key) with
  | Some h -> h
  | None ->
      let h = Histogram.create ~bounds:t.bounds ~exemplar_slots:t.slots () in
      Hashtbl.replace t.histograms (level, key) h;
      h

let bind_route t ~leaf ~server ~op cell =
  let leaf_ok = ref true in
  let cells =
    List.filter_map
      (fun (level, key) ->
        if admit_quiet t level key then Some (cell t level key)
        else begin
          leaf_ok := false;
          None
        end)
      (targets t ~leaf ~server ~op)
  in
  (Array.of_list cells, !leaf_ok)

let counter_route t ~leaf ~server ~op =
  let cells, leaf_ok = bind_route t ~leaf ~server ~op counter_cell in
  { cr_cells = cells; cr_owner = t; cr_leaf_ok = leaf_ok }

let route_add ?(by = 1) r =
  if not r.cr_leaf_ok then
    r.cr_owner.keys_dropped <- r.cr_owner.keys_dropped + 1;
  let cells = r.cr_cells in
  for i = 0 to Array.length cells - 1 do
    let c = cells.(i) in
    c := !c + by
  done

let observe_route t ~leaf ~server ~op =
  let hists, leaf_ok = bind_route t ~leaf ~server ~op hist_cell in
  { or_hists = hists; or_owner = t; or_leaf_ok = leaf_ok }

let route_observe ?trace r v =
  if not r.or_leaf_ok then
    r.or_owner.keys_dropped <- r.or_owner.keys_dropped + 1;
  let hists = r.or_hists in
  for i = 0 to Array.length hists - 1 do
    Histogram.observe ?trace ~rand:r.or_owner.rand hists.(i) v
  done

let keys_dropped t = t.keys_dropped
let key_count t = Hashtbl.length t.seen

let key_count_at t level =
  Hashtbl.fold
    (fun (l, _) () acc -> if l = level then acc + 1 else acc)
    t.seen 0

let sorted_bindings tbl level value =
  Hashtbl.fold
    (fun (l, k) v acc -> if l = level then (k, value v) :: acc else acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)

let counters t level = sorted_bindings t.counters level ( ! )
let gauges t level = sorted_bindings t.gauges level ( ! )
let histograms t level = sorted_bindings t.histograms level Fun.id

(* [merge a b]: a fresh rollup holding both inputs' aggregates, built
   by iterating *sorted* keys so the result is independent of hash
   order. No cap is applied — inputs were capped at recording time, and
   re-capping here would break associativity. *)
let merge a b =
  let m =
    create ~leaf_cap:(a.leaf_cap + b.leaf_cap) ~bounds:a.bounds
      ~exemplar_slots:a.slots ~group_of:a.group_of ()
  in
  m.keys_dropped <- a.keys_dropped + b.keys_dropped;
  let note level key = Hashtbl.replace m.seen (level, key) () in
  List.iter
    (fun level ->
      List.iter
        (fun (k, v) ->
          note level k;
          match Hashtbl.find_opt m.counters (level, k) with
          | Some r -> r := !r + v
          | None -> Hashtbl.replace m.counters (level, k) (ref v))
        (counters a level @ counters b level);
      List.iter
        (fun (k, v) ->
          note level k;
          match Hashtbl.find_opt m.gauges (level, k) with
          | Some r -> if v > !r then r := v
          | None -> Hashtbl.replace m.gauges (level, k) (ref v))
        (gauges a level @ gauges b level);
      List.iter
        (fun (k, h) ->
          note level k;
          match Hashtbl.find_opt m.histograms (level, k) with
          | Some existing ->
              Hashtbl.replace m.histograms (level, k)
                (Histogram.merge existing h)
          | None ->
              (* Merge with an empty histogram to copy: the input stays
                 live and must not share mutable state with the result. *)
              Hashtbl.replace m.histograms (level, k)
                (Histogram.merge h
                   (Histogram.create ~bounds:a.bounds
                      ~exemplar_slots:a.slots ())))
        (histograms a level @ histograms b level))
    [ Leaf; Group; Fleet ];
  m.leaf_keys <- key_count_at m Leaf;
  m

let key_json k =
  [
    ("scope", Json.String k.scope);
    ("server", Json.String k.server);
    ("op", Json.String k.op);
  ]

let level_json t level =
  let instrument extra k = Json.Obj (key_json k @ extra) in
  Json.Obj
    [
      ( "counters",
        Json.List
          (List.map
             (fun (k, v) -> instrument [ ("value", Json.Int v) ] k)
             (counters t level)) );
      ( "gauges",
        Json.List
          (List.map
             (fun (k, v) -> instrument [ ("value", Json.Float v) ] k)
             (gauges t level)) );
      ( "histograms",
        Json.List
          (List.map
             (fun (k, h) ->
               instrument [ ("histogram", Histogram.to_json h) ] k)
             (histograms t level)) );
    ]

let to_json t =
  Json.Obj
    [
      ("key_count", Json.Int (key_count t));
      ("keys_dropped", Json.Int t.keys_dropped);
      ("leaf", level_json t Leaf);
      ("group", level_json t Group);
      ("fleet", level_json t Fleet);
    ]

let pp ppf t =
  List.iter
    (fun level ->
      List.iter
        (fun (k, v) ->
          Fmt.pf ppf "%s %a = %d@." (level_to_string level) pp_key k v)
        (counters t level);
      List.iter
        (fun (k, v) ->
          Fmt.pf ppf "%s %a = %.3f@." (level_to_string level) pp_key k v)
        (gauges t level);
      List.iter
        (fun (k, h) ->
          Fmt.pf ppf "%s %a: %a@." (level_to_string level) pp_key k
            Histogram.pp h)
        (histograms t level))
    [ Leaf; Group; Fleet ]
