(** Exporters for traces and metrics: a human-readable timeline tree and
    JSON. *)

(** [pp_timeline ppf spans] renders a span list (e.g. from
    {!Hub.trace_spans}) as an indented parent/child tree, one line per
    hop, in creation order. Spans whose parent is missing from the list
    render as roots. *)
val pp_timeline : Format.formatter -> Span.t list -> unit

val trace_to_json : Span.t list -> Json.t

(** Whole-hub dump: last trace id, all stored spans, and the metrics
    registry. *)
val hub_to_json : Hub.t -> Json.t

(** The flight-recorder dump: event log, spans, metrics, SLO summary
    (when attached) and drop counters, with [reason] stating why the
    dump was cut (default ["manual"]). When a rollup or time-series
    store is attached, their dumps ride along. Health metrics are
    refreshed ({!Hub.sync_health_metrics}) before reading. *)
val flight_to_json : ?reason:string -> Hub.t -> Json.t

(** The scale-telemetry artifact: rollup tree, time series, sampling
    counters and the metrics registry — no spans or events, which at
    soak scale would dwarf the aggregates. *)
val telemetry_to_json : Hub.t -> Json.t

(** The whole hub in Prometheus text exposition format: flat
    instruments labelled (host, server, op), rollup rows labelled
    (level, scope, server, op); histograms as cumulative buckets over
    the configured bounds closed by the mandatory [le="+Inf"] row —
    the only representation where "+Inf" appears. *)
val prometheus : Hub.t -> string
