(* A minimal JSON tree and printer, for the exporters. The subsystem
   keeps its own encoder (rather than a library dependency) because the
   values it emits are small and entirely under its control; the only
   delicate parts are string escaping and float rendering, both handled
   here. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats: JSON has no NaN/Infinity; render them as null. Finite values
   use shortest-round-trip-ish %.12g, with a trailing ".0" forced onto
   integral values so they read back as floats. *)
let float_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_string f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let pp ppf t = Fmt.string ppf (to_string t)

(* [member k j] is the field [k] of an object, if present. *)
let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None
