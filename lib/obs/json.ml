(* A minimal JSON tree and printer, for the exporters. The subsystem
   keeps its own encoder (rather than a library dependency) because the
   values it emits are small and entirely under its control; the only
   delicate parts are string escaping and float rendering, both handled
   here. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats: JSON has no NaN/Infinity; render them as null. Finite values
   use shortest-round-trip-ish %.12g, with a trailing ".0" forced onto
   integral values so they read back as floats. *)
let float_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_string f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let pp ppf t = Fmt.string ppf (to_string t)

(* [member k j] is the field [k] of an object, if present. *)
let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

(* --- parsing ---

   A recursive-descent parser matching the printer above: enough JSON to
   read back what [to_string] wrote (the bench-regression gate compares
   a fresh run against a committed baseline). Accepts standard JSON;
   numbers with '.', 'e' or leading '-'-then-fraction become [Float],
   all-digit forms become [Int]. Errors carry the byte offset. *)

exception Parse_error of int * string

type cursor = { src : string; mutable pos : int }

let parse_fail c msg = raise (Parse_error (c.pos, msg))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    &&
    match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> parse_fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_fail c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | None -> parse_fail c "unterminated escape"
        | Some e ->
            c.pos <- c.pos + 1;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.src then
                  parse_fail c "truncated \\u escape";
                let hex = String.sub c.src c.pos 4 in
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some n -> n
                  | None -> parse_fail c "bad \\u escape"
                in
                c.pos <- c.pos + 4;
                (* The printer only emits \u for control characters; for
                   anything else fall back to UTF-8 encoding. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end
            | _ -> parse_fail c "unknown escape");
            go ())
    | Some ch ->
        c.pos <- c.pos + 1;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let consume () = c.pos <- c.pos + 1 in
  if peek c = Some '-' then consume ();
  while match peek c with Some '0' .. '9' -> true | _ -> false do
    consume ()
  done;
  if peek c = Some '.' then begin
    is_float := true;
    consume ();
    while match peek c with Some '0' .. '9' -> true | _ -> false do
      consume ()
    done
  end;
  (match peek c with
  | Some ('e' | 'E') ->
      is_float := true;
      consume ();
      (match peek c with Some ('+' | '-') -> consume () | _ -> ());
      while match peek c with Some '0' .. '9' -> true | _ -> false do
        consume ()
      done
  | _ -> ());
  let text = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> parse_fail c "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        (* Integer overflow: fall back to float. *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> parse_fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string_body c)
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let items = ref [ parse_value c ] in
        skip_ws c;
        while peek c = Some ',' do
          c.pos <- c.pos + 1;
          items := parse_value c :: !items;
          skip_ws c
        done;
        expect c ']';
        List (List.rev !items)
      end
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          (k, parse_value c)
        in
        let fields = ref [ field () ] in
        skip_ws c;
        while peek c = Some ',' do
          c.pos <- c.pos + 1;
          fields := field () :: !fields;
          skip_ws c
        done;
        expect c '}';
        Obj (List.rev !fields)
      end
  | Some ch -> parse_fail c (Printf.sprintf "unexpected %C" ch)

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "offset %d: trailing garbage" c.pos)
      else Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "offset %d: %s" pos msg)
