(* Exporters: the human-readable timeline view of a trace, and JSON.

   The timeline renders the span tree by parent links, children indented
   under their parent in span-id (creation) order, each line showing
   where the hop ran, what slice of the name it consumed, and how the
   hop's latency split between waiting (wire + queueing) and service. *)

let children spans id =
  List.filter (fun s -> s.Span.parent_id = id) spans

let pp_span_line ppf s =
  let name_slice =
    if s.Span.index_to > s.Span.index_from then
      Printf.sprintf " name[%d..%d]" s.Span.index_from s.Span.index_to
    else if s.Span.index_from > 0 then
      Printf.sprintf " name[%d..]" s.Span.index_from
    else ""
  in
  Fmt.pf ppf "%-28s %s/%s pid %d ctx %d%s  wait %.3fms svc %.3fms -> %s"
    s.Span.op s.Span.host s.Span.server s.Span.pid s.Span.context name_slice
    s.Span.queue_wait (Span.service_ms s) s.Span.outcome

let pp_timeline ppf spans =
  let rec render indent s =
    Fmt.pf ppf "%s%a@." indent pp_span_line s;
    List.iter (render (indent ^ "  ")) (children spans s.Span.span_id)
  in
  match spans with
  | [] -> Fmt.pf ppf "(no spans)@."
  | _ ->
      let roots =
        (* Roots: parent 0, or parent not in the (possibly trimmed)
           store — orphans still render rather than vanish. *)
        List.filter
          (fun s ->
            s.Span.parent_id = 0
            || not
                 (List.exists
                    (fun p -> p.Span.span_id = s.Span.parent_id)
                    spans))
          spans
      in
      List.iter (render "") roots

let trace_to_json spans =
  Json.List (List.map Span.to_json spans)

let hub_to_json hub =
  let last =
    match Hub.last_trace hub with
    | None -> Json.Null
    | Some id -> Json.Int id
  in
  Json.Obj
    [
      ("last_trace", last);
      ("spans", trace_to_json (Hub.all_spans hub));
      ("metrics", Metrics.to_json (Hub.metrics hub));
    ]

(* The flight-recorder dump: everything an incident review needs in one
   artifact — the event log, every surviving span, the metrics
   registry, the SLO summary when an engine is attached, and the drop
   counters that say how complete the recording is. [reason] states why
   the dump was cut (e.g. "invariant-violation", "slo-breach",
   "manual"). *)
let flight_to_json ?(reason = "manual") hub =
  let slo =
    match Hub.slo hub with
    | None -> Json.Null
    | Some engine -> Slo.summary_to_json (Slo.summary engine)
  in
  Json.Obj
    [
      ("reason", Json.String reason);
      ("spans_dropped", Json.Int (Hub.spans_dropped hub));
      ("events", Eventlog.to_json (Hub.events hub));
      ("spans", trace_to_json (Hub.all_spans hub));
      ("slo", slo);
      ("metrics", Metrics.to_json (Hub.metrics hub));
    ]
