(* Exporters: the human-readable timeline view of a trace, and JSON.

   The timeline renders the span tree by parent links, children indented
   under their parent in span-id (creation) order, each line showing
   where the hop ran, what slice of the name it consumed, and how the
   hop's latency split between waiting (wire + queueing) and service. *)

let children spans id =
  List.filter (fun s -> s.Span.parent_id = id) spans

let pp_span_line ppf s =
  let name_slice =
    if s.Span.index_to > s.Span.index_from then
      Printf.sprintf " name[%d..%d]" s.Span.index_from s.Span.index_to
    else if s.Span.index_from > 0 then
      Printf.sprintf " name[%d..]" s.Span.index_from
    else ""
  in
  Fmt.pf ppf "%-28s %s/%s pid %d ctx %d%s  wait %.3fms svc %.3fms -> %s"
    s.Span.op s.Span.host s.Span.server s.Span.pid s.Span.context name_slice
    s.Span.queue_wait (Span.service_ms s) s.Span.outcome

let pp_timeline ppf spans =
  let rec render indent s =
    Fmt.pf ppf "%s%a@." indent pp_span_line s;
    List.iter (render (indent ^ "  ")) (children spans s.Span.span_id)
  in
  match spans with
  | [] -> Fmt.pf ppf "(no spans)@."
  | _ ->
      let roots =
        (* Roots: parent 0, or parent not in the (possibly trimmed)
           store — orphans still render rather than vanish. *)
        List.filter
          (fun s ->
            s.Span.parent_id = 0
            || not
                 (List.exists
                    (fun p -> p.Span.span_id = s.Span.parent_id)
                    spans))
          spans
      in
      List.iter (render "") roots

let trace_to_json spans =
  Json.List (List.map Span.to_json spans)

let hub_to_json hub =
  let last =
    match Hub.last_trace hub with
    | None -> Json.Null
    | Some id -> Json.Int id
  in
  Json.Obj
    [
      ("last_trace", last);
      ("spans", trace_to_json (Hub.all_spans hub));
      ("metrics", Metrics.to_json (Hub.metrics hub));
    ]

(* The flight-recorder dump: everything an incident review needs in one
   artifact — the event log, every surviving span, the metrics
   registry, the SLO summary when an engine is attached, and the drop
   counters that say how complete the recording is. [reason] states why
   the dump was cut (e.g. "invariant-violation", "slo-breach",
   "manual"). *)
let flight_to_json ?(reason = "manual") hub =
  Hub.sync_health_metrics hub;
  let slo =
    match Hub.slo hub with
    | None -> Json.Null
    | Some engine -> Slo.summary_to_json (Slo.summary engine)
  in
  let scale_fields =
    (match Hub.rollup hub with
    | Some r -> [ ("rollup", Rollup.to_json r) ]
    | None -> [])
    @
    match Hub.timeseries hub with
    | Some ts -> [ ("timeseries", Timeseries.to_json ts) ]
    | None -> []
  in
  Json.Obj
    ([
       ("reason", Json.String reason);
       ("spans_dropped", Json.Int (Hub.spans_dropped hub));
       ("events", Eventlog.to_json (Hub.events hub));
       ("spans", trace_to_json (Hub.all_spans hub));
       ("slo", slo);
       ("metrics", Metrics.to_json (Hub.metrics hub));
     ]
    @ scale_fields)

(* The telemetry artifact the nightly soak uploads: rollup tree, time
   series and obs-health metrics — no spans or events, which at 100k
   hosts would dwarf the aggregates the artifact exists to carry. *)
let telemetry_to_json hub =
  Hub.sync_health_metrics hub;
  Json.Obj
    [
      ( "rollup",
        match Hub.rollup hub with
        | Some r -> Rollup.to_json r
        | None -> Json.Null );
      ( "timeseries",
        match Hub.timeseries hub with
        | Some ts -> Timeseries.to_json ts
        | None -> Json.Null );
      ("sampled_out", Json.Int (Hub.sampled_out hub));
      ("sample_every", Json.Int (Hub.sample_every hub));
      ("metrics", Metrics.to_json (Hub.metrics hub));
    ]

(* --- Prometheus text exposition format --- *)

(* Label values escape backslash, double quote and newline per the
   exposition-format spec. *)
let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labels pairs =
  pairs
  |> List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
  |> String.concat ","

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" f

(* One histogram in exposition format: cumulative buckets over the raw
   configured bounds, closed by the mandatory le="+Inf" row. This is
   the only place "+Inf" appears — the JSON/vsh views clamp the
   overflow bucket to the observed max (see {!Histogram}); here the
   wire format mandates the open-ended row. *)
let prom_histogram buf name base_labels h =
  let bounds = Metrics.Histogram.bounds h in
  let counts = Metrics.Histogram.raw_counts h in
  let cum = ref 0 in
  Array.iteri
    (fun i b ->
      cum := !cum + counts.(i);
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{%s} %d\n" name
           (labels (base_labels @ [ ("le", prom_float b) ]))
           !cum))
    bounds;
  cum := !cum + counts.(Array.length counts - 1);
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket{%s} %d\n" name
       (labels (base_labels @ [ ("le", "+Inf") ]))
       !cum);
  Buffer.add_string buf
    (Printf.sprintf "%s_sum{%s} %s\n" name (labels base_labels)
       (prom_float (Metrics.Histogram.sum h)));
  Buffer.add_string buf
    (Printf.sprintf "%s_count{%s} %d\n" name (labels base_labels)
       (Metrics.Histogram.count h))

let prom_family buf name typ help =
  Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ)

(* The whole hub in Prometheus text exposition format. Flat-mode
   instruments carry (host, server, op) labels; rollup rows add
   (level, scope) instead of host, so one scrape covers both modes. *)
let prometheus hub =
  Hub.sync_health_metrics hub;
  let m = Hub.metrics hub in
  let buf = Buffer.create 4096 in
  let flat_key (k : Metrics.key) =
    [
      ("host", k.Metrics.host);
      ("server", k.Metrics.server);
      ("op", k.Metrics.op);
    ]
  in
  let rollup_key level (k : Rollup.key) =
    [
      ("level", Rollup.level_to_string level);
      ("scope", k.Rollup.scope);
      ("server", k.Rollup.server);
      ("op", k.Rollup.op);
    ]
  in
  let levels = [ Rollup.Leaf; Rollup.Group; Rollup.Fleet ] in
  let rollup = Hub.rollup hub in
  prom_family buf "v_ops_total" "counter" "Operation counts";
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "v_ops_total{%s} %d\n" (labels (flat_key k)) v))
    (Metrics.counters m);
  (match rollup with
  | Some r ->
      List.iter
        (fun level ->
          List.iter
            (fun (k, v) ->
              Buffer.add_string buf
                (Printf.sprintf "v_ops_total{%s} %d\n"
                   (labels (rollup_key level k))
                   v))
            (Rollup.counters r level))
        levels
  | None -> ());
  prom_family buf "v_gauge" "gauge" "Instantaneous readings";
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "v_gauge{%s} %s\n" (labels (flat_key k)) (prom_float v)))
    (Metrics.gauges m);
  (match rollup with
  | Some r ->
      List.iter
        (fun level ->
          List.iter
            (fun (k, v) ->
              Buffer.add_string buf
                (Printf.sprintf "v_gauge{%s} %s\n"
                   (labels (rollup_key level k))
                   (prom_float v)))
            (Rollup.gauges r level))
        levels
  | None -> ());
  prom_family buf "v_latency_ms" "histogram" "Operation latency (simulated ms)";
  List.iter
    (fun (k, h) -> prom_histogram buf "v_latency_ms" (flat_key k) h)
    (Metrics.histograms m);
  (match rollup with
  | Some r ->
      List.iter
        (fun level ->
          List.iter
            (fun (k, h) ->
              prom_histogram buf "v_latency_ms" (rollup_key level k) h)
            (Rollup.histograms r level))
        levels
  | None -> ());
  Buffer.contents buf
