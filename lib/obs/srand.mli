(** The sampling-decision PRNG: a private, deterministic splitmix64
    stream for head-sampling verdicts and exemplar reservoirs.

    Kept separate from every workload PRNG so that enabling sampling
    consumes zero draws from the streams that shape simulated behaviour
    — the foundation of the "telemetry on or off, same run" guarantee. *)

type t

val create : seed:int -> t

(** 62 uniformly random bits as a non-negative [int]. *)
val bits : t -> int

(** Uniform integer in [\[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)
val int : t -> int -> int
