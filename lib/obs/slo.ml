(* Windowed service-level objectives with multi-window burn-rate
   alerting.

   Client operations stream in via [observe]; each lands in a sim-time
   bucket of [window_ms]. Two objectives are tracked against a target:
   availability (fraction of ops that succeed) and latency (fraction of
   ops under [latency_ms], which must be at least [latency_quantile]).

   Evaluation follows the SRE burn-rate recipe: the error budget is
   what the target leaves over (1 - availability for the availability
   SLO, 1 - latency_quantile for latency), the burn rate of a window is
   its bad-fraction divided by that budget, and a breach fires only
   when BOTH a short window (one bucket) and a long window
   ([long_windows] buckets ending at the same bucket) burn faster than
   [burn_threshold]. The short window makes the alert fast to clear
   after recovery; the long window keeps one unlucky bucket from
   paging. Evaluation is a pure scan over the buckets — same
   observations, same breaches — and nothing here reads the simulation
   clock, so an attached SLO engine never perturbs a run. *)

type target = {
  availability : float;  (* e.g. 0.99: ≥99% of ops must succeed *)
  latency_ms : float;  (* ops slower than this are "slow" *)
  latency_quantile : float;  (* e.g. 0.95: ≥95% of ops must be fast *)
}

let default_target =
  { availability = 0.99; latency_ms = 250.0; latency_quantile = 0.95 }

type bucket = {
  index : int;
  mutable ops : int;
  mutable errors : int;
  mutable slow : int;
  mutable lat_sum : float;
}

type t = {
  target : target;
  window_ms : float;
  long_windows : int;
  burn_threshold : float;
  buckets : (int, bucket) Hashtbl.t;
}

let create ?(window_ms = 5_000.0) ?(long_windows = 6)
    ?(burn_threshold = 2.0) ?(target = default_target) () =
  if window_ms <= 0.0 then invalid_arg "Slo.create: window_ms <= 0";
  if long_windows < 1 then invalid_arg "Slo.create: long_windows < 1";
  if burn_threshold <= 0.0 then invalid_arg "Slo.create: burn_threshold <= 0";
  if target.availability <= 0.0 || target.availability > 1.0 then
    invalid_arg "Slo.create: availability not in (0, 1]";
  if target.latency_quantile <= 0.0 || target.latency_quantile > 1.0 then
    invalid_arg "Slo.create: latency_quantile not in (0, 1]";
  { target; window_ms; long_windows; burn_threshold; buckets = Hashtbl.create 64 }

let target t = t.target
let window_ms t = t.window_ms

let observe t ~now ~ok ~latency_ms =
  let index = int_of_float (now /. t.window_ms) in
  let b =
    match Hashtbl.find_opt t.buckets index with
    | Some b -> b
    | None ->
        let b = { index; ops = 0; errors = 0; slow = 0; lat_sum = 0.0 } in
        Hashtbl.add t.buckets index b;
        b
  in
  b.ops <- b.ops + 1;
  if not ok then b.errors <- b.errors + 1;
  if latency_ms > t.target.latency_ms then b.slow <- b.slow + 1;
  b.lat_sum <- b.lat_sum +. latency_ms

type breach = {
  at : float;  (* end of the breaching short window, sim ms *)
  dimension : string;  (* "availability" | "latency" *)
  short_burn : float;
  long_burn : float;
}

(* Burn rate of [bad] out of [ops] against a budget. A zero budget
   (target = 1.0) makes any badness an immediate maximal burn; clamp to
   a large finite value so JSON stays well-formed. *)
let burn ~budget ~bad ~ops =
  if ops = 0 then 0.0
  else
    let frac = float_of_int bad /. float_of_int ops in
    if budget > 0.0 then frac /. budget
    else if frac > 0.0 then 1e9
    else 0.0

let sorted_buckets t =
  Hashtbl.fold (fun _ b acc -> b :: acc) t.buckets []
  |> List.sort (fun a b -> compare a.index b.index)

let breaches t =
  let bs = sorted_buckets t in
  let avail_budget = 1.0 -. t.target.availability in
  let lat_budget = 1.0 -. t.target.latency_quantile in
  List.concat_map
    (fun b ->
      (* Long window: the [long_windows] buckets ending at this one.
         Empty buckets contribute nothing, which matches how the ops
         stream defines them. *)
      let lo = b.index - t.long_windows + 1 in
      let ops, errors, slow =
        List.fold_left
          (fun (o, e, s) c ->
            if c.index >= lo && c.index <= b.index then
              (o + c.ops, e + c.errors, s + c.slow)
            else (o, e, s))
          (0, 0, 0) bs
      in
      let at = float_of_int (b.index + 1) *. t.window_ms in
      let check dimension ~short_bad ~long_bad ~budget =
        let short_burn = burn ~budget ~bad:short_bad ~ops:b.ops in
        let long_burn = burn ~budget ~bad:long_bad ~ops in
        if short_burn >= t.burn_threshold && long_burn >= t.burn_threshold
        then Some { at; dimension; short_burn; long_burn }
        else None
      in
      List.filter_map
        (fun x -> x)
        [
          check "availability" ~short_bad:b.errors ~long_bad:errors
            ~budget:avail_budget;
          check "latency" ~short_bad:b.slow ~long_bad:slow ~budget:lat_budget;
        ])
    bs

type summary = {
  window_ms : float;
  ops : int;
  errors : int;
  slow : int;
  availability : float;  (* 1.0 when no ops observed *)
  slow_fraction : float;
  breach_list : breach list;
}

let summary t =
  let bs = sorted_buckets t in
  let ops, errors, slow =
    List.fold_left
      (fun (o, e, s) (b : bucket) -> (o + b.ops, e + b.errors, s + b.slow))
      (0, 0, 0) bs
  in
  let frac bad =
    if ops = 0 then 0.0 else float_of_int bad /. float_of_int ops
  in
  {
    window_ms = t.window_ms;
    ops;
    errors;
    slow;
    availability = 1.0 -. frac errors;
    slow_fraction = frac slow;
    breach_list = breaches t;
  }

let breach_to_json b =
  Json.Obj
    [
      ("at_ms", Json.Float b.at);
      ("dimension", Json.String b.dimension);
      ("short_burn", Json.Float b.short_burn);
      ("long_burn", Json.Float b.long_burn);
    ]

let summary_to_json s =
  Json.Obj
    [
      ("window_ms", Json.Float s.window_ms);
      ("ops", Json.Int s.ops);
      ("errors", Json.Int s.errors);
      ("slow", Json.Int s.slow);
      ("availability", Json.Float s.availability);
      ("slow_fraction", Json.Float s.slow_fraction);
      ("breaches", Json.List (List.map breach_to_json s.breach_list));
    ]

let pp_breach ppf b =
  Fmt.pf ppf "t=%.0f %-12s burn short %.1fx long %.1fx" b.at b.dimension
    b.short_burn b.long_burn

let pp_summary ppf s =
  Fmt.pf ppf
    "@[<v>slo: %d ops, %d errors (availability %.4f), %d slow (%.4f)@,%a@]"
    s.ops s.errors s.availability s.slow s.slow_fraction
    (fun ppf -> function
      | [] -> Fmt.pf ppf "no breaches"
      | bs ->
          Fmt.pf ppf "%d breach(es):@,%a" (List.length bs)
            Fmt.(list ~sep:cut pp_breach)
            bs)
    s.breach_list
