(** The flight recorder: a bounded, structured log of notable events —
    kernel sends/forwards/retransmission probes, frames lost, partitions
    and heals, balancer picks, replica fan-outs, injected faults — each
    stamped with the simulated time and the active trace id where the
    triggering request carried one.

    Disabled by default: when off, {!record} is one boolean test.
    Nothing here reads the simulation clock — callers pass [~at] — so
    runs are bit-identical with the recorder on or off. *)

type cat = Kernel | Net | Fault | Replica | Balancer | Client | Slo | Admission

val cat_to_string : cat -> string

type event = {
  seq : int;  (** monotonic, survives trimming: gaps reveal drops *)
  at : float;  (** simulated ms *)
  cat : cat;
  host : string;
  label : string;
  trace : int;  (** active trace id; 0 = none *)
}

type t

(** [create ()] makes a recorder, disabled, keeping at most [capacity]
    newest events (oldest trimmed in amortised halves).
    @raise Invalid_argument if [capacity < 2]. *)
val create : ?capacity:int -> unit -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** [record t ~at ~cat ~host ?trace label] appends an event. A no-op
    (one boolean test) when disabled. [trace] defaults to 0 (none). *)
val record :
  t -> at:float -> cat:cat -> host:string -> ?trace:int -> string -> unit

(** Stored events, oldest first. *)
val events : t -> event list

(** Events currently stored. *)
val count : t -> int

(** Events discarded by the bounded store's trim. *)
val dropped : t -> int

(** [set_on_drop t f] installs a hook called with each trim's drop
    count — how {!Hub} mirrors flight-recorder loss into a metric so a
    trimmed dump is detectable from the metrics artifact alone. *)
val set_on_drop : t -> (int -> unit) -> unit

val clear : t -> unit
val event_to_json : event -> Json.t

(** [{dropped; events}] — a dump that lost its beginning says so. *)
val to_json : t -> Json.t

val pp_event : Format.formatter -> event -> unit

(** [pp ?limit] renders the newest [limit] (default: all stored) events,
    oldest first, plus a trailer when events have been dropped. *)
val pp : ?limit:int -> Format.formatter -> t -> unit
