(** The metrics registry: counters, gauges and fixed-bucket latency
    histograms keyed by (host, server, operation).

    Recording never touches simulated time, so instrumented and
    uninstrumented runs produce bit-identical results; a disabled
    registry reduces every recording call to one boolean test.
    Instruments are created lazily on first use. *)

type key = { host : string; server : string; op : string }

val pp_key : Format.formatter -> key -> unit

module Histogram : sig
  type t

  (** Bucket upper bounds in simulated ms, suitable for IPC and file
      access latencies. *)
  val default_bounds : float array

  (** [create ~bounds ()] makes an empty histogram. [bounds] must be
      strictly increasing; an overflow bucket is added automatically.
      @raise Invalid_argument on empty or non-increasing bounds. *)
  val create : ?bounds:float array -> unit -> t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  (** [mean], [min_], [max_] are [nan] on an empty histogram. *)
  val mean : t -> float

  val min_ : t -> float
  val max_ : t -> float

  (** [quantile t q] estimates the [q]-quantile by linear interpolation
      inside the bucket holding the target rank, clamped to the observed
      [min_, max_] range. [nan] on an empty histogram.
      @raise Invalid_argument unless [0 <= q <= 1]. *)
  val quantile : t -> float -> float

  (** Occupied buckets as [(lower, upper, count)] rows, edges clamped
      to the observed range. *)
  val buckets : t -> (float * float * int) list

  val to_json : t -> Json.t
  val pp : Format.formatter -> t -> unit
end

type t

val create : ?bounds:float array -> unit -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** Recording. All are no-ops when the registry is disabled. *)

val incr : ?by:int -> t -> host:string -> server:string -> op:string -> unit
val set_gauge : t -> host:string -> server:string -> op:string -> float -> unit
val observe : t -> host:string -> server:string -> op:string -> float -> unit

(** Reading. *)

(** [counter_value] is 0 for a counter never incremented. *)
val counter_value : t -> host:string -> server:string -> op:string -> int

val gauge_value : t -> host:string -> server:string -> op:string -> float option
val histogram : t -> host:string -> server:string -> op:string -> Histogram.t option

(** All instruments, sorted by (host, server, op). *)

val counters : t -> (key * int) list
val gauges : t -> (key * float) list
val histograms : t -> (key * Histogram.t) list

val reset : t -> unit
val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
