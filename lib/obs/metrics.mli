(** The metrics registry: counters, gauges and fixed-bucket latency
    histograms keyed by (host, server, operation).

    Recording never touches simulated time, so instrumented and
    uninstrumented runs produce bit-identical results; a disabled
    registry reduces every recording call to one boolean test.
    Instruments are created lazily on first use.

    Two storage modes share the recording API. Flat mode (the default)
    keeps one instrument per concrete key — unbounded cardinality, fine
    below fleet scale. Attaching a {!Rollup} via {!set_rollup} forwards
    every recording into the rollup's leaf/group/fleet tree (host as
    leaf scope) instead; the flat tables then stay empty and the flat
    readers report zero/absent — at scale, read the rollup. *)

(** The histogram implementation, re-exported so existing
    [Metrics.Histogram] call sites keep working; see {!Histogram}. *)
module Histogram = Histogram

type key = { host : string; server : string; op : string }

val pp_key : Format.formatter -> key -> unit

type t

val create : ?bounds:float array -> unit -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** The attached rollup, if the registry is in scale mode. *)
val rollup : t -> Rollup.t option

(** [set_rollup t (Some r)] switches the registry to scale mode: all
    subsequent recordings land in [r] rather than the flat tables.
    [set_rollup t None] returns to flat mode. *)
val set_rollup : t -> Rollup.t option -> unit

(** [set_exemplars t ~slots ~seed] enables per-bucket trace exemplars
    on histograms created after this call (flat mode; a rollup carries
    its own exemplar configuration). [slots = 0] disables.
    @raise Invalid_argument on negative [slots]. *)
val set_exemplars : t -> slots:int -> seed:int -> unit

(** Recording. All are no-ops when the registry is disabled. *)

val incr : ?by:int -> t -> host:string -> server:string -> op:string -> unit
val set_gauge : t -> host:string -> server:string -> op:string -> float -> unit

(** [observe ?trace t ~host ~server ~op v] records a histogram sample;
    a positive [trace] id is offered to the bucket's exemplar reservoir
    when exemplars are enabled. *)
val observe :
  ?trace:int -> t -> host:string -> server:string -> op:string -> float -> unit

(** {1 Handles — the recording hot path}

    A handle caches where its instrument's data lives (a flat cell or
    a rollup route), so recording through it is pointer work — no key
    construction, no hashing, no group lookup. This is what per-frame
    and per-send call sites use. Handles survive mode changes:
    attaching or detaching a rollup, {!reset} and {!set_exemplars} all
    invalidate cached bindings, and a handle transparently rebinds on
    its next recording. *)

type counter
type observer

val counter : t -> host:string -> server:string -> op:string -> counter

(** [add c] bumps the counter (all rollup levels at once in rollup
    mode). No-op when the registry is disabled. *)
val add : ?by:int -> counter -> unit

val observer : t -> host:string -> server:string -> op:string -> observer

(** [record ?trace o v] records a histogram sample through the handle;
    semantics match {!observe}. *)
val record : ?trace:int -> observer -> float -> unit

(** Reading (flat mode; in rollup mode these report zero/absent). *)

(** [counter_value] is 0 for a counter never incremented. *)
val counter_value : t -> host:string -> server:string -> op:string -> int

val gauge_value : t -> host:string -> server:string -> op:string -> float option
val histogram : t -> host:string -> server:string -> op:string -> Histogram.t option

(** All instruments, sorted by (host, server, op). *)

val counters : t -> (key * int) list
val gauges : t -> (key * float) list
val histograms : t -> (key * Histogram.t) list

val reset : t -> unit
val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
