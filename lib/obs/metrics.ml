(* The metrics registry: named counters, gauges and fixed-bucket latency
   histograms, keyed by (host, server, operation).

   The registry is designed for the simulation's hot paths: recording
   never touches simulated time (so instrumented and uninstrumented runs
   are bit-identical), and a disabled registry reduces every operation
   to one boolean test. Instruments are created lazily on first use, so
   call sites need no setup.

   Two storage modes share this one recording API. The default is the
   original flat mode: one instrument per concrete (host, server, op)
   triple — unbounded cardinality, fine at demo scale. Attaching a
   {!Rollup} ([set_rollup]) switches the registry to scale mode: every
   recording is forwarded to the rollup's leaf/group/fleet tree (host
   as the leaf scope) and the flat tables stay empty, so key count is
   governed by the rollup's cap instead of the host count. The flat
   readers deliberately keep their flat-mode meaning — in rollup mode
   they report zero/absent, and callers read the rollup instead. *)

module Histogram = Histogram

type key = { host : string; server : string; op : string }

let pp_key ppf k = Fmt.pf ppf "%s/%s/%s" k.host k.server k.op

let key_json k =
  [
    ("host", Json.String k.host);
    ("server", Json.String k.server);
    ("op", Json.String k.op);
  ]

type t = {
  mutable enabled : bool;
  bounds : float array;
  counters : (key, int ref) Hashtbl.t;
  gauges : (key, float ref) Hashtbl.t;
  histograms : (key, Histogram.t) Hashtbl.t;
  mutable rollup : Rollup.t option;
  mutable exemplar_slots : int;
  mutable exemplar_rand : Srand.t option;
  (* Bumped whenever the storage mode changes (rollup attach/detach,
     reset, exemplar reconfiguration): handles compare their stamp
     against this and rebind lazily. *)
  mutable generation : int;
}

let create ?(bounds = Histogram.default_bounds) () =
  {
    enabled = true;
    bounds;
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 32;
    rollup = None;
    exemplar_slots = 0;
    exemplar_rand = None;
    generation = 0;
  }

let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag
let rollup t = t.rollup

let set_rollup t r =
  t.rollup <- r;
  t.generation <- t.generation + 1

let set_exemplars t ~slots ~seed =
  if slots < 0 then invalid_arg "Metrics.set_exemplars: negative slots";
  t.exemplar_slots <- slots;
  t.exemplar_rand <- (if slots = 0 then None else Some (Srand.create ~seed));
  t.generation <- t.generation + 1

let incr ?(by = 1) t ~host ~server ~op =
  if t.enabled then
    match t.rollup with
    | Some r -> Rollup.incr ~by r ~leaf:host ~server ~op
    | None -> (
        let k = { host; server; op } in
        match Hashtbl.find_opt t.counters k with
        | Some r -> r := !r + by
        | None -> Hashtbl.replace t.counters k (ref by))

let set_gauge t ~host ~server ~op v =
  if t.enabled then
    match t.rollup with
    | Some r -> Rollup.set_gauge r ~leaf:host ~server ~op v
    | None -> (
        let k = { host; server; op } in
        match Hashtbl.find_opt t.gauges k with
        | Some r -> r := v
        | None -> Hashtbl.replace t.gauges k (ref v))

let observe ?trace t ~host ~server ~op v =
  if t.enabled then
    match t.rollup with
    | Some r -> Rollup.observe ?trace r ~leaf:host ~server ~op v
    | None ->
        let k = { host; server; op } in
        let h =
          match Hashtbl.find_opt t.histograms k with
          | Some h -> h
          | None ->
              let h =
                Histogram.create ~bounds:t.bounds
                  ~exemplar_slots:t.exemplar_slots ()
              in
              Hashtbl.replace t.histograms k h;
              h
        in
        Histogram.observe ?trace ?rand:t.exemplar_rand h v

(* --- handles: the recording hot path --- *)

(* A handle caches where its instrument's data lives — a flat cell, or
   a rollup route — so per-frame call sites pay pointer work instead of
   key hashing. The binding is lazy and generation-stamped: attaching
   or detaching a rollup, resetting, or reconfiguring exemplars bumps
   [generation], and every handle transparently rebinds on its next
   recording. *)

type counter = {
  cn_t : t;
  cn_host : string;
  cn_server : string;
  cn_op : string;
  mutable cn_gen : int;
  mutable cn_flat : int ref option;
  mutable cn_route : Rollup.counter_route option;
}

type observer = {
  ob_t : t;
  ob_host : string;
  ob_server : string;
  ob_op : string;
  mutable ob_gen : int;
  mutable ob_flat : Histogram.t option;
  mutable ob_route : Rollup.observe_route option;
}

let counter t ~host ~server ~op =
  {
    cn_t = t;
    cn_host = host;
    cn_server = server;
    cn_op = op;
    cn_gen = t.generation - 1;
    cn_flat = None;
    cn_route = None;
  }

let observer t ~host ~server ~op =
  {
    ob_t = t;
    ob_host = host;
    ob_server = server;
    ob_op = op;
    ob_gen = t.generation - 1;
    ob_flat = None;
    ob_route = None;
  }

let flat_counter_cell t k =
  match Hashtbl.find_opt t.counters k with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.counters k r;
      r

let flat_histogram_cell t k =
  match Hashtbl.find_opt t.histograms k with
  | Some h -> h
  | None ->
      let h =
        Histogram.create ~bounds:t.bounds ~exemplar_slots:t.exemplar_slots ()
      in
      Hashtbl.replace t.histograms k h;
      h

let bind_counter c =
  let t = c.cn_t in
  c.cn_gen <- t.generation;
  match t.rollup with
  | Some r ->
      c.cn_flat <- None;
      c.cn_route <-
        Some
          (Rollup.counter_route r ~leaf:c.cn_host ~server:c.cn_server
             ~op:c.cn_op)
  | None ->
      c.cn_route <- None;
      c.cn_flat <-
        Some
          (flat_counter_cell t
             { host = c.cn_host; server = c.cn_server; op = c.cn_op })

let bind_observer o =
  let t = o.ob_t in
  o.ob_gen <- t.generation;
  match t.rollup with
  | Some r ->
      o.ob_flat <- None;
      o.ob_route <-
        Some
          (Rollup.observe_route r ~leaf:o.ob_host ~server:o.ob_server
             ~op:o.ob_op)
  | None ->
      o.ob_route <- None;
      o.ob_flat <-
        Some
          (flat_histogram_cell t
             { host = o.ob_host; server = o.ob_server; op = o.ob_op })

let add ?(by = 1) c =
  let t = c.cn_t in
  if t.enabled then begin
    if c.cn_gen <> t.generation then bind_counter c;
    match c.cn_route with
    | Some r -> Rollup.route_add ~by r
    | None -> (
        match c.cn_flat with
        | Some cell -> cell := !cell + by
        | None -> ())
  end

let record ?trace o v =
  let t = o.ob_t in
  if t.enabled then begin
    if o.ob_gen <> t.generation then bind_observer o;
    match o.ob_route with
    | Some r -> Rollup.route_observe ?trace r v
    | None -> (
        match o.ob_flat with
        | Some h -> Histogram.observe ?trace ?rand:t.exemplar_rand h v
        | None -> ())
  end

let counter_value t ~host ~server ~op =
  match Hashtbl.find_opt t.counters { host; server; op } with
  | Some r -> !r
  | None -> 0

let gauge_value t ~host ~server ~op =
  Option.map ( ! ) (Hashtbl.find_opt t.gauges { host; server; op })

let histogram t ~host ~server ~op =
  Hashtbl.find_opt t.histograms { host; server; op }

let compare_key a b =
  match String.compare a.host b.host with
  | 0 -> (
      match String.compare a.server b.server with
      | 0 -> String.compare a.op b.op
      | c -> c)
  | c -> c

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)

let counters t = sorted_bindings t.counters ( ! )
let gauges t = sorted_bindings t.gauges ( ! )
let histograms t = sorted_bindings t.histograms Fun.id

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms;
  t.generation <- t.generation + 1

let to_json t =
  let instrument extra k = Json.Obj (key_json k @ extra) in
  Json.Obj
    [
      ( "counters",
        Json.List
          (List.map
             (fun (k, v) -> instrument [ ("value", Json.Int v) ] k)
             (counters t)) );
      ( "gauges",
        Json.List
          (List.map
             (fun (k, v) -> instrument [ ("value", Json.Float v) ] k)
             (gauges t)) );
      ( "histograms",
        Json.List
          (List.map
             (fun (k, h) ->
               instrument [ ("histogram", Histogram.to_json h) ] k)
             (histograms t)) );
    ]

let pp ppf t =
  List.iter
    (fun (k, v) -> Fmt.pf ppf "%a = %d@." pp_key k v)
    (counters t);
  List.iter
    (fun (k, v) -> Fmt.pf ppf "%a = %.3f@." pp_key k v)
    (gauges t);
  List.iter
    (fun (k, h) -> Fmt.pf ppf "%a: %a@." pp_key k Histogram.pp h)
    (histograms t)
