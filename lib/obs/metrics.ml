(* The metrics registry: named counters, gauges and fixed-bucket latency
   histograms, keyed by (host, server, operation).

   The registry is designed for the simulation's hot paths: recording
   never touches simulated time (so instrumented and uninstrumented runs
   are bit-identical), and a disabled registry reduces every operation
   to one boolean test. Instruments are created lazily on first use, so
   call sites need no setup. *)

type key = { host : string; server : string; op : string }

let pp_key ppf k = Fmt.pf ppf "%s/%s/%s" k.host k.server k.op

let key_json k =
  [
    ("host", Json.String k.host);
    ("server", Json.String k.server);
    ("op", Json.String k.op);
  ]

(* --- fixed-bucket histograms --- *)

module Histogram = struct
  (* [bounds] are strictly increasing bucket upper bounds; counts has
     one extra slot for the overflow bucket. Observed extrema are kept
     so quantile interpolation can clamp the open-ended end buckets. *)
  type t = {
    bounds : float array;
    counts : int array;
    mutable n : int;
    mutable sum : float;
    mutable lo : float;
    mutable hi : float;
  }

  (* Default bounds suit simulated-ms latencies: sub-ms locals through
     multi-second bulk transfers. *)
  let default_bounds =
    [| 0.1; 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0;
       256.0; 512.0; 1024.0; 4096.0 |]

  let create ?(bounds = default_bounds) () =
    if Array.length bounds = 0 then invalid_arg "Histogram.create: no bounds";
    Array.iteri
      (fun i b ->
        if i > 0 && bounds.(i - 1) >= b then
          invalid_arg "Histogram.create: bounds not increasing")
      bounds;
    {
      bounds;
      counts = Array.make (Array.length bounds + 1) 0;
      n = 0;
      sum = 0.0;
      lo = infinity;
      hi = neg_infinity;
    }

  let bucket_of t x =
    (* Linear scan: bucket counts are small and fixed. *)
    let rec find i =
      if i >= Array.length t.bounds then i
      else if x <= t.bounds.(i) then i
      else find (i + 1)
    in
    find 0

  let observe t x =
    t.counts.(bucket_of t x) <- t.counts.(bucket_of t x) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x

  let count t = t.n
  let sum t = t.sum
  let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n
  let min_ t = if t.n = 0 then nan else t.lo
  let max_ t = if t.n = 0 then nan else t.hi

  (* Lower edge of bucket [b], clamped to the observed minimum for the
     first occupied bucket; upper edge clamped to the observed maximum
     for the overflow bucket. *)
  let bucket_edges t b =
    let lower = if b = 0 then t.lo else t.bounds.(b - 1) in
    let upper = if b >= Array.length t.bounds then t.hi else t.bounds.(b) in
    (Float.max lower t.lo |> Float.min t.hi, Float.min upper t.hi)

  (* Quantile by linear interpolation inside the bucket holding the
     target rank — the standard estimate for pre-aggregated samples.
     Error is bounded by the width of that bucket. *)
  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile";
    if t.n = 0 then nan
    else begin
      let target = q *. float_of_int t.n in
      let rec walk b cum =
        if b >= Array.length t.counts then t.hi
        else begin
          let c = t.counts.(b) in
          let cum' = cum +. float_of_int c in
          if c > 0 && cum' >= target then begin
            let lower, upper = bucket_edges t b in
            let frac =
              if c = 0 then 0.0
              else Float.max 0.0 (target -. cum) /. float_of_int c
            in
            lower +. (frac *. (upper -. lower))
          end
          else walk (b + 1) cum'
        end
      in
      walk 0 0.0 |> Float.max t.lo |> Float.min t.hi
    end

  (* (lower, upper, count) rows for the occupied range. *)
  let buckets t =
    List.init
      (Array.length t.counts)
      (fun b ->
        let lower, upper = bucket_edges t b in
        (lower, upper, t.counts.(b)))
    |> List.filter (fun (_, _, c) -> c > 0)

  let to_json t =
    Json.Obj
      [
        ("count", Json.Int t.n);
        ("sum", Json.Float t.sum);
        ("mean", Json.Float (mean t));
        ("min", Json.Float (min_ t));
        ("max", Json.Float (max_ t));
        ("p50", Json.Float (quantile t 0.5));
        ("p95", Json.Float (quantile t 0.95));
        ("p99", Json.Float (quantile t 0.99));
        ( "buckets",
          Json.List
            (List.map
               (fun (lower, upper, c) ->
                 Json.Obj
                   [
                     ("le", Json.Float upper);
                     ("ge", Json.Float lower);
                     ("count", Json.Int c);
                   ])
               (buckets t)) );
      ]

  let pp ppf t =
    Fmt.pf ppf "n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f" t.n
      (mean t) (quantile t 0.5) (quantile t 0.95) (quantile t 0.99) (max_ t)
end

(* --- the registry --- *)

type t = {
  mutable enabled : bool;
  bounds : float array;
  counters : (key, int ref) Hashtbl.t;
  gauges : (key, float ref) Hashtbl.t;
  histograms : (key, Histogram.t) Hashtbl.t;
}

let create ?(bounds = Histogram.default_bounds) () =
  {
    enabled = true;
    bounds;
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 32;
  }

let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag

let incr ?(by = 1) t ~host ~server ~op =
  if t.enabled then begin
    let k = { host; server; op } in
    match Hashtbl.find_opt t.counters k with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace t.counters k (ref by)
  end

let set_gauge t ~host ~server ~op v =
  if t.enabled then begin
    let k = { host; server; op } in
    match Hashtbl.find_opt t.gauges k with
    | Some r -> r := v
    | None -> Hashtbl.replace t.gauges k (ref v)
  end

let observe t ~host ~server ~op v =
  if t.enabled then begin
    let k = { host; server; op } in
    let h =
      match Hashtbl.find_opt t.histograms k with
      | Some h -> h
      | None ->
          let h = Histogram.create ~bounds:t.bounds () in
          Hashtbl.replace t.histograms k h;
          h
    in
    Histogram.observe h v
  end

let counter_value t ~host ~server ~op =
  match Hashtbl.find_opt t.counters { host; server; op } with
  | Some r -> !r
  | None -> 0

let gauge_value t ~host ~server ~op =
  Option.map ( ! ) (Hashtbl.find_opt t.gauges { host; server; op })

let histogram t ~host ~server ~op =
  Hashtbl.find_opt t.histograms { host; server; op }

let compare_key a b =
  match String.compare a.host b.host with
  | 0 -> (
      match String.compare a.server b.server with
      | 0 -> String.compare a.op b.op
      | c -> c)
  | c -> c

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)

let counters t = sorted_bindings t.counters ( ! )
let gauges t = sorted_bindings t.gauges ( ! )
let histograms t = sorted_bindings t.histograms Fun.id

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms

let to_json t =
  let instrument extra k = Json.Obj (key_json k @ extra) in
  Json.Obj
    [
      ( "counters",
        Json.List
          (List.map
             (fun (k, v) -> instrument [ ("value", Json.Int v) ] k)
             (counters t)) );
      ( "gauges",
        Json.List
          (List.map
             (fun (k, v) -> instrument [ ("value", Json.Float v) ] k)
             (gauges t)) );
      ( "histograms",
        Json.List
          (List.map
             (fun (k, h) ->
               instrument [ ("histogram", Histogram.to_json h) ] k)
             (histograms t)) );
    ]

let pp ppf t =
  List.iter
    (fun (k, v) -> Fmt.pf ppf "%a = %d@." pp_key k v)
    (counters t);
  List.iter
    (fun (k, v) -> Fmt.pf ppf "%a = %.3f@." pp_key k v)
    (gauges t);
  List.iter
    (fun (k, h) -> Fmt.pf ppf "%a: %a@." pp_key k Histogram.pp h)
    (histograms t)
