(** Chaos attribution: join applied-fault windows against degraded
    operations and unavailability windows by interval overlap, yielding
    a per-fault impact table. Pure — same inputs, same table — and
    ignorant of plans and injectors: callers render their own types
    down to these records. *)

type fault = {
  at : float;  (** sim ms the fault was applied *)
  until : float;  (** sim ms its recovery landed (or the horizon) *)
  kind : string;  (** ["crash"], ["partition"], ["loss"], ["slow"] *)
  label : string;  (** rendered action, e.g. ["crash host 100"] *)
}

type op = { started : float; finished : float; ok : bool; retries : int }

type impact = {
  fault : fault;
  ops : int;  (** ops overlapping the fault window *)
  failures : int;
  retries : int;  (** retries spent by overlapping ops *)
  unavailable_ms : float;  (** unavailability overlapping the window *)
}

(** [attribute ~faults ~ops ?windows ()] attributes each op (and each
    unavailability window) to every fault whose window it overlaps —
    overlapping faults genuinely compound. Impacts come back sorted by
    fault time then label. *)
val attribute :
  faults:fault list ->
  ops:op list ->
  ?windows:(float * float) list ->
  unit ->
  impact list

val fault_to_json : fault -> Json.t
val impact_to_json : impact -> Json.t
val to_json : impact list -> Json.t

(** Render the impact table, one fault per row. *)
val pp : Format.formatter -> impact list -> unit
