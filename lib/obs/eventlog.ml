(* The flight recorder: a bounded, structured log of notable events.

   Where metrics aggregate and spans follow one request, the event log
   answers "what happened around t=23400?" — kernel sends and forwards,
   retransmission probes, frames lost, partitions cut and healed,
   balancer picks, replica fan-outs, every fault the injector applied
   or skipped. Each event carries the simulated time, a category, the
   host it happened on, a rendered label, and the active trace id when
   the triggering request carried one, so a dump joins against the span
   store by trace id.

   Disabled by default: with [enabled = false], [record] is one boolean
   test, and nothing here ever reads the simulation clock — callers
   pass [~at] — so runs are bit-identical with the recorder on or off.

   The store is bounded like a real flight recorder: newest events
   survive, oldest are trimmed (amortised, half the capacity at a
   time), and [dropped] counts what the trim discarded so a dump that
   lost its beginning says so instead of pretending to be complete. *)

type cat = Kernel | Net | Fault | Replica | Balancer | Client | Slo | Admission

let cat_to_string = function
  | Kernel -> "kernel"
  | Net -> "net"
  | Fault -> "fault"
  | Replica -> "replica"
  | Balancer -> "balancer"
  | Client -> "client"
  | Slo -> "slo"
  | Admission -> "admission"

type event = {
  seq : int;  (* monotonic, survives trimming: gaps reveal drops *)
  at : float;  (* simulated ms *)
  cat : cat;
  host : string;
  label : string;
  trace : int;  (* active trace id; 0 = none *)
}

type t = {
  mutable enabled : bool;
  capacity : int;
  mutable events : event list;  (* newest first, trimmed at capacity *)
  mutable count : int;
  mutable next_seq : int;
  mutable dropped : int;
  mutable on_drop : int -> unit;  (* called with each trim's drop count *)
}

let create ?(capacity = 20_000) () =
  if capacity < 2 then invalid_arg "Eventlog.create: capacity < 2";
  {
    enabled = false;
    capacity;
    events = [];
    count = 0;
    next_seq = 1;
    dropped = 0;
    on_drop = ignore;
  }

let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag
let count t = t.count
let dropped t = t.dropped
let set_on_drop t f = t.on_drop <- f

let clear t =
  t.events <- [];
  t.count <- 0;
  t.dropped <- 0

let record t ~at ~cat ~host ?(trace = 0) label =
  if t.enabled then begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    t.events <- { seq; at; cat; host; label; trace } :: t.events;
    t.count <- t.count + 1;
    if t.count > t.capacity then begin
      (* Drop the oldest half; amortises the O(n) trim. *)
      let keep = t.capacity / 2 in
      let lost = t.count - keep in
      t.dropped <- t.dropped + lost;
      t.events <- List.filteri (fun i _ -> i < keep) t.events;
      t.count <- keep;
      t.on_drop lost
    end
  end

let events t = List.rev t.events

let event_to_json e =
  Json.Obj
    [
      ("seq", Json.Int e.seq);
      ("at_ms", Json.Float e.at);
      ("cat", Json.String (cat_to_string e.cat));
      ("host", Json.String e.host);
      ("label", Json.String e.label);
      ("trace", Json.Int e.trace);
    ]

let to_json t =
  Json.Obj
    [
      ("dropped", Json.Int t.dropped);
      ("events", Json.List (List.map event_to_json (events t)));
    ]

let pp_event ppf e =
  let trace = if e.trace = 0 then "" else Printf.sprintf " trace %d" e.trace in
  Fmt.pf ppf "t=%9.1f %-8s %-10s %s%s" e.at (cat_to_string e.cat) e.host
    e.label trace

(* Newest [limit] events, oldest first — the tail of the recording. *)
let pp ?limit ppf t =
  if not t.enabled then Fmt.pf ppf "(recorder off)@."
  else begin
    let tail =
      match limit with
      | None -> events t
      | Some n -> List.filteri (fun i _ -> i < n) t.events |> List.rev
    in
    (match tail with
    | [] -> Fmt.pf ppf "(no events)@."
    | _ -> List.iter (fun e -> Fmt.pf ppf "%a@." pp_event e) tail);
    if t.dropped > 0 then Fmt.pf ppf "(%d older events dropped)@." t.dropped
  end
