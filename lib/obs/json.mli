(** A minimal JSON tree and printer for the observability exporters.

    NaN and infinite floats render as [null] (JSON has no spelling for
    them); strings are escaped per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** The field [k] of an object, if present ([None] for non-objects). *)
val member : string -> t -> t option

(** Parse a complete JSON document — the inverse of {!to_string}, for
    reading committed baselines back. Numbers containing '.', 'e' or
    'E' parse as [Float], bare integers as [Int]; errors carry the byte
    offset. *)
val parse : string -> (t, string) result
