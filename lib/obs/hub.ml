(* The hub is the per-deployment observability handle: it owns trace and
   span numbering, the bounded span store, and the metrics registry.
   One hub is shared by every host in a simulated internetwork — the
   point of distributed tracing is precisely that spans from different
   hosts land in the same store, keyed by trace id.

   Tracing and metrics are independently switchable. With tracing off,
   [start_trace] hands out [Span.no_ctx] and [start_span] returns [None],
   so instrumented code pays one test per hop. Nothing here ever touches
   the simulation clock: callers pass [~now] in, which keeps simulated
   timings bit-identical whether observability is on or off. *)

type t = {
  mutable tracing : bool;
  mutable next_trace : int;
  mutable next_span : int;
  span_limit : int;
  mutable spans : Span.t list;  (* newest first, trimmed at span_limit *)
  mutable span_count : int;
  mutable last_trace : int;  (* 0 = no trace started yet *)
  metrics : Metrics.t;
}

let create ?(tracing = false) ?(span_limit = 10_000) () =
  {
    tracing;
    next_trace = 1;
    next_span = 1;
    span_limit;
    spans = [];
    span_count = 0;
    last_trace = 0;
    metrics = Metrics.create ();
  }

let tracing t = t.tracing
let set_tracing t flag = t.tracing <- flag
let metrics t = t.metrics

let start_trace t ~now =
  if not t.tracing then Span.no_ctx
  else begin
    let id = t.next_trace in
    t.next_trace <- id + 1;
    t.last_trace <- id;
    { Span.trace = id; parent = 0; sent_at = now }
  end

let record t span =
  t.spans <- span :: t.spans;
  t.span_count <- t.span_count + 1;
  if t.span_count > t.span_limit then begin
    (* Drop the oldest half; amortises the O(n) trim. *)
    let keep = t.span_limit / 2 in
    t.spans <- List.filteri (fun i _ -> i < keep) t.spans;
    t.span_count <- keep
  end

let start_span t ~ctx ~now ~op ~host ~server ~pid ~context ~index_from =
  if not (t.tracing && Span.is_traced ctx) then None
  else begin
    let id = t.next_span in
    t.next_span <- id + 1;
    let span =
      {
        Span.trace_id = ctx.Span.trace;
        span_id = id;
        parent_id = ctx.Span.parent;
        op;
        host;
        server;
        pid;
        context;
        index_from;
        index_to = index_from;
        queue_wait = now -. ctx.Span.sent_at;
        started = now;
        finished = now;
        outcome = "open";
        tags = [];
      }
    in
    record t span;
    Some span
  end

let finish _t span ~now ?index_to ~outcome () =
  span.Span.finished <- now;
  span.Span.outcome <- outcome;
  match index_to with
  | Some i -> span.Span.index_to <- i
  | None -> ()

(* Context a traced hop hands to the request it forwards (or to a fresh
   transaction it issues): same trace, this span as parent, reissued now. *)
let child_ctx span ~now =
  { Span.trace = span.Span.trace_id; parent = span.Span.span_id; sent_at = now }

let last_trace t = if t.last_trace = 0 then None else Some t.last_trace

let trace_spans t id =
  List.filter (fun s -> s.Span.trace_id = id) t.spans
  |> List.sort (fun a b -> compare a.Span.span_id b.Span.span_id)

let all_spans t =
  List.sort (fun a b -> compare a.Span.span_id b.Span.span_id) t.spans
