(* The hub is the per-deployment observability handle: it owns trace and
   span numbering, the bounded span store, the metrics registry, the
   flight recorder, and (when attached) the SLO engine. One hub is
   shared by every host in a simulated internetwork — the point of
   distributed tracing is precisely that spans from different hosts land
   in the same store, keyed by trace id.

   Tracing and metrics are independently switchable. With tracing off,
   [start_trace] hands out [Span.no_ctx] and [start_span] returns [None],
   so instrumented code pays one test per hop. Nothing here ever touches
   the simulation clock: callers pass [~now] in, which keeps simulated
   timings bit-identical whether observability is on or off.

   Span eviction is tail-based: when the store overflows, spans
   belonging to interesting traces — one that errored, retried, failed
   over, hit a fault, or is still open — survive, and boring (clean,
   finished) traces drop first, oldest first. Every evicted span counts
   into [spans_dropped] and the ("obs", "hub", "spans-dropped") metric,
   so a trimmed store is visible instead of silent. *)

type t = {
  mutable tracing : bool;
  mutable next_trace : int;
  mutable next_span : int;
  span_limit : int;
  mutable spans : Span.t list;  (* newest first, trimmed at span_limit *)
  mutable span_count : int;
  mutable spans_dropped : int;
  mutable last_trace : int;  (* 0 = no trace started yet *)
  metrics : Metrics.t;
  events : Eventlog.t;
  mutable slo : Slo.t option;
  (* Head sampling: keep 1-in-[sample_every] traces, decided at
     start_trace by a private Srand stream (zero draws from any
     workload PRNG). 1 = keep everything (the default). *)
  mutable sample_every : int;
  mutable sample_rand : Srand.t;
  mutable sampled_out : int;
  mutable timeseries : Timeseries.t option;
}

let create ?(tracing = false) ?(span_limit = 10_000) ?event_capacity () =
  let t =
    {
      tracing;
      next_trace = 1;
      next_span = 1;
      span_limit;
      spans = [];
      span_count = 0;
      spans_dropped = 0;
      last_trace = 0;
      metrics = Metrics.create ();
      events = Eventlog.create ?capacity:event_capacity ();
      slo = None;
      sample_every = 1;
      sample_rand = Srand.create ~seed:0;
      sampled_out = 0;
      timeseries = None;
    }
  in
  (* Mirror flight-recorder loss into a metric: a soak that silently
     trims its recorder is visible from the metrics artifact alone. *)
  Eventlog.set_on_drop t.events (fun lost ->
      Metrics.incr ~by:lost t.metrics ~host:"obs" ~server:"eventlog"
        ~op:"events-dropped");
  t

let tracing t = t.tracing
let set_tracing t flag = t.tracing <- flag
let metrics t = t.metrics
let events t = t.events
let slo t = t.slo
let set_slo t engine = t.slo <- engine
let spans_dropped t = t.spans_dropped

let set_head_sampling t ~every ~seed =
  if every < 1 then invalid_arg "Hub.set_head_sampling: every must be >= 1";
  t.sample_every <- every;
  t.sample_rand <- Srand.create ~seed

let sample_every t = t.sample_every
let sampled_out t = t.sampled_out
let rollup t = Metrics.rollup t.metrics
let set_rollup t r = Metrics.set_rollup t.metrics r
let timeseries t = t.timeseries
let set_timeseries t ts = t.timeseries <- ts

(* Refresh the obs-health metrics from the hub's own internals. Called
   at export time rather than on every recording so the hot path stays
   cheap; counters below are gauges-in-spirit (monotone totals). *)
let sync_health_metrics t =
  Metrics.set_gauge t.metrics ~host:"obs" ~server:"hub" ~op:"sampled-out"
    (float_of_int t.sampled_out);
  Metrics.set_gauge t.metrics ~host:"obs" ~server:"eventlog"
    ~op:"dropped-total"
    (float_of_int (Eventlog.dropped t.events));
  Metrics.set_gauge t.metrics ~host:"obs" ~server:"hub" ~op:"spans-dropped-total"
    (float_of_int t.spans_dropped);
  (match Metrics.rollup t.metrics with
  | Some r ->
      Metrics.set_gauge t.metrics ~host:"obs" ~server:"rollup"
        ~op:"keys-dropped"
        (float_of_int (Rollup.keys_dropped r));
      Metrics.set_gauge t.metrics ~host:"obs" ~server:"rollup" ~op:"key-count"
        (float_of_int (Rollup.key_count r))
  | None -> ());
  match t.timeseries with
  | Some ts ->
      Metrics.set_gauge t.metrics ~host:"obs" ~server:"timeseries"
        ~op:"series-dropped"
        (float_of_int (Timeseries.series_dropped ts))
  | None -> ()

(* One-call convenience for instrumentation sites: a boolean test when
   the recorder is off. *)
let event t ~at ~cat ~host ?trace label =
  Eventlog.record t.events ~at ~cat ~host ?trace label

(* Head sampling composes with the tail-based eviction below: heads
   decide *which traces exist at all* (1-in-N, cheap, at the root),
   tails decide *which recorded spans survive memory pressure*
   (interesting traces last). A sampled-out request gets [Span.no_ctx]
   and pays nothing downstream — every hop's [start_span] is one test. *)
let start_trace t ~now =
  if not t.tracing then Span.no_ctx
  else if t.sample_every > 1 && Srand.int t.sample_rand t.sample_every <> 0
  then begin
    t.sampled_out <- t.sampled_out + 1;
    Span.no_ctx
  end
  else begin
    let id = t.next_trace in
    t.next_trace <- id + 1;
    t.last_trace <- id;
    { Span.trace = id; parent = 0; sent_at = now }
  end

(* A span worth keeping under eviction pressure: its op failed or is
   still in flight, or the client annotated it with retry/failover/fault
   trouble. Trace-level interest is any interesting span in the trace —
   a clean hop of a retried trace still explains the retry. *)
let interesting_tag tag =
  tag = "fault"
  || (String.length tag >= 6 && String.sub tag 0 6 = "retry:")
  || (String.length tag >= 9 && String.sub tag 0 9 = "failover:")

let interesting_span s =
  (match s.Span.outcome with "OK" | "forward" -> false | _ -> true)
  || List.exists interesting_tag s.Span.tags

(* Tail-based trim: drop down to span_limit/2 (amortising the O(n)
   pass), boring traces first. Interesting-trace spans are kept up to
   3/4 of the limit — under pathological all-interesting load they too
   drop, oldest first, and each trim still frees at least a quarter of
   the store so the amortisation holds. *)
let trim t =
  let interesting = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if interesting_span s then Hashtbl.replace interesting s.Span.trace_id ())
    t.spans;
  let target = t.span_limit / 2 in
  let interesting_limit = t.span_limit * 3 / 4 in
  let kept = ref 0 in
  let keep s =
    let limit =
      if Hashtbl.mem interesting s.Span.trace_id then interesting_limit
      else target
    in
    if !kept < limit then begin
      incr kept;
      true
    end
    else false
  in
  t.spans <- List.filter keep t.spans;
  let dropped = t.span_count - !kept in
  t.span_count <- !kept;
  t.spans_dropped <- t.spans_dropped + dropped;
  Metrics.incr ~by:dropped t.metrics ~host:"obs" ~server:"hub"
    ~op:"spans-dropped"

let record t span =
  t.spans <- span :: t.spans;
  t.span_count <- t.span_count + 1;
  if t.span_count > t.span_limit then trim t

let start_span t ~ctx ~now ~op ~host ~server ~pid ~context ~index_from =
  if not (t.tracing && Span.is_traced ctx) then None
  else begin
    let id = t.next_span in
    t.next_span <- id + 1;
    let span =
      {
        Span.trace_id = ctx.Span.trace;
        span_id = id;
        parent_id = ctx.Span.parent;
        op;
        host;
        server;
        pid;
        context;
        index_from;
        index_to = index_from;
        queue_wait = now -. ctx.Span.sent_at;
        started = now;
        finished = now;
        outcome = "open";
        tags = [];
      }
    in
    record t span;
    Some span
  end

let finish _t span ~now ?index_to ~outcome () =
  span.Span.finished <- now;
  span.Span.outcome <- outcome;
  match index_to with
  | Some i -> span.Span.index_to <- i
  | None -> ()

(* Context a traced hop hands to the request it forwards (or to a fresh
   transaction it issues): same trace, this span as parent, reissued now. *)
let child_ctx span ~now =
  { Span.trace = span.Span.trace_id; parent = span.Span.span_id; sent_at = now }

let last_trace t = if t.last_trace = 0 then None else Some t.last_trace

let trace_spans t id =
  List.filter (fun s -> s.Span.trace_id = id) t.spans
  |> List.sort (fun a b -> compare a.Span.span_id b.Span.span_id)

let all_spans t =
  List.sort (fun a b -> compare a.Span.span_id b.Span.span_id) t.spans
