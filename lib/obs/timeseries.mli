(** Fixed-memory time series over simulated time.

    Each named series is a fixed-size buffer of (bucket start, value)
    points. Samples within one bucket coalesce (counter: latest
    cumulative reading; gauge: peak); a full series downsamples in
    place by merging adjacent point pairs and doubling its bucket
    width, so arbitrarily long runs always fit — recent history stays
    fine-grained while older history coarsens. The series count itself
    is capped; refused series are counted, never silently absorbed.

    Sampling takes the caller's [~now] and never reads a clock. *)

type t

type kind = Counter | Gauge

val kind_to_string : kind -> string

(** [create ()] makes an empty store. [capacity] (default 256) is the
    per-series point budget, [bucket_ms] (default 1000) the initial
    bucket width in simulated ms, [max_series] (default 512) the series
    cap.
    @raise Invalid_argument on a capacity < 4, non-positive bucket
    width, or max_series < 1. *)
val create : ?capacity:int -> ?bucket_ms:float -> ?max_series:int -> unit -> t

(** [sample t name kind ~now v] records one reading. The first sample
    of a name fixes its kind; creating a series beyond [max_series] is
    refused and counted in {!series_dropped}. *)
val sample : t -> string -> kind -> now:float -> float -> unit

(** Points of a series, oldest first; [] for an unknown name. *)
val points : t -> string -> (float * float) list

(** Current bucket width of a series — grows by doubling as the series
    downsamples. *)
val bucket_ms : t -> string -> float option

(** All series names with their kinds, sorted. *)
val names : t -> (string * kind) list

val series_count : t -> int

(** Series creations refused by the [max_series] cap. *)
val series_dropped : t -> int

(** Unicode block sparkline of the last [width] (default 24) points,
    scaled to the window's own range; "" for unknown or empty series. *)
val sparkline : ?width:int -> t -> string -> string

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
