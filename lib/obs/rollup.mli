(** Hierarchical metric rollups: leaf -> group -> fleet aggregation
    with bounded cardinality.

    Every recording fans out to three levels: the leaf scope itself
    (a host, a link), its group (the caller-supplied [group_of] —
    typically edge-switch identity), and the single fleet scope.
    Group/fleet cardinality is O(groups + servers) regardless of host
    count; leaf cardinality is bounded by [leaf_cap], and observations
    against refused leaf keys are counted in {!keys_dropped} while
    still landing in the aggregates — fleet totals stay exact when
    per-leaf detail saturates.

    Counters sum; gauges keep the latest value at leaves and the peak
    at aggregates; histograms merge bucket-wise. Recording never reads
    a clock and draws nothing from any workload PRNG (exemplar
    reservoirs use a private {!Srand} stream). *)

type t

type level = Leaf | Group | Fleet

val level_to_string : level -> string

type key = { scope : string; server : string; op : string }

val pp_key : Format.formatter -> key -> unit
val compare_key : key -> key -> int

(** [create ~group_of ()] makes an empty rollup. [group_of leaf] names
    the leaf's aggregation group, or [None] for leaves with no group
    (they still reach the fleet level). [leaf_cap] (default 4096)
    bounds distinct leaf keys; [exemplar_slots] enables per-bucket
    trace exemplars in all histograms; [seed] fixes the private
    exemplar-reservoir PRNG.
    @raise Invalid_argument when [leaf_cap < 1]. *)
val create :
  ?leaf_cap:int ->
  ?bounds:float array ->
  ?exemplar_slots:int ->
  ?seed:int ->
  group_of:(string -> string option) ->
  unit ->
  t

val incr : ?by:int -> t -> leaf:string -> server:string -> op:string -> unit
val set_gauge : t -> leaf:string -> server:string -> op:string -> float -> unit

(** [observe ?trace t ~leaf ~server ~op v] records a histogram sample
    at all three levels; a positive [trace] id is offered to the target
    bucket's exemplar reservoir when exemplars are enabled. *)
val observe :
  ?trace:int -> t -> leaf:string -> server:string -> op:string -> float -> unit

(** {1 Pre-resolved routes — the recording hot path}

    Binding a route resolves admission, the group lookup and the
    leaf/group/fleet cells once; recording through it is pointer work
    only, cheap enough for per-frame call sites. A route bound while
    the cap refuses its leaf key still reaches the aggregate levels,
    and every recording through it counts in {!keys_dropped} —
    identical accounting to the keyed API. *)

type counter_route
type observe_route

val counter_route :
  t -> leaf:string -> server:string -> op:string -> counter_route

val route_add : ?by:int -> counter_route -> unit

val observe_route :
  t -> leaf:string -> server:string -> op:string -> observe_route

val route_observe : ?trace:int -> observe_route -> float -> unit

(** Observations refused because they would have created a leaf key
    beyond [leaf_cap]. *)
val keys_dropped : t -> int

(** Distinct admitted keys across all levels. *)
val key_count : t -> int

val key_count_at : t -> level -> int

(** Readers, sorted by key. *)

val counters : t -> level -> (key * int) list
val gauges : t -> level -> (key * float) list
val histograms : t -> level -> (key * Histogram.t) list

(** [merge a b] combines two rollups: counters sum, gauges keep the
    peak, histograms merge. Built over sorted keys with no cap, so it
    is deterministic and associative — a reporting-time operation over
    already-capped inputs, not a recording path. *)
val merge : t -> t -> t

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
