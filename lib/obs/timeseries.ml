(* Time-series ring buffers: the time dimension the snapshot-oriented
   registry lacks.

   Each named series holds a fixed-size array of (bucket start time,
   value) points in simulated time. Memory is bounded twice over: the
   per-series point budget is fixed at creation, and the number of
   series is capped ([max_series], refusals counted in
   [series_dropped]) so a runaway caller cannot grow the store.

   Within one time bucket, samples coalesce — a counter keeps the
   latest (cumulative) reading, a gauge keeps the peak. When a series
   fills its point budget it downsamples in place: adjacent point
   pairs merge (counter: the later cumulative value; gauge: the max),
   halving the point count and doubling that series' bucket width. A
   week-long soak therefore always fits, trading resolution for span —
   recent history is fine-grained, a longer run is progressively
   coarser, and nothing is ever reallocated.

   Sampling takes the caller's [~now]; nothing here reads or advances
   the simulation clock, keeping the telemetry-on/off determinism
   guarantee. *)

type kind = Counter | Gauge

let kind_to_string = function Counter -> "counter" | Gauge -> "gauge"

type series = {
  kind : kind;
  mutable bucket_ms : float;
  times : float array;  (* bucket start times; valid prefix [0, len) *)
  values : float array;
  mutable len : int;
}

type t = {
  capacity : int;  (* points per series *)
  base_bucket_ms : float;
  max_series : int;
  series : (string, series) Hashtbl.t;
  mutable series_dropped : int;
}

let create ?(capacity = 256) ?(bucket_ms = 1000.0) ?(max_series = 512) () =
  if capacity < 4 then invalid_arg "Timeseries.create: capacity must be >= 4";
  if bucket_ms <= 0.0 then
    invalid_arg "Timeseries.create: bucket_ms must be positive";
  if max_series < 1 then
    invalid_arg "Timeseries.create: max_series must be >= 1";
  {
    capacity;
    base_bucket_ms = bucket_ms;
    max_series;
    series = Hashtbl.create 64;
    series_dropped = 0;
  }

(* Halve the series in place: pair (2i, 2i+1) becomes point i. The
   surviving time is the pair's first bucket start; the value follows
   the kind's coalescing rule. An odd trailing point survives as is. *)
let compact s =
  let pairs = s.len / 2 in
  for i = 0 to pairs - 1 do
    s.times.(i) <- s.times.(2 * i);
    s.values.(i) <-
      (match s.kind with
      | Counter -> s.values.((2 * i) + 1)
      | Gauge -> Float.max s.values.(2 * i) s.values.((2 * i) + 1))
  done;
  if s.len land 1 = 1 then begin
    s.times.(pairs) <- s.times.(s.len - 1);
    s.values.(pairs) <- s.values.(s.len - 1)
  end;
  s.len <- (s.len / 2) + (s.len land 1);
  s.bucket_ms <- s.bucket_ms *. 2.0

let sample t name kind ~now v =
  match Hashtbl.find_opt t.series name with
  | None ->
      if Hashtbl.length t.series >= t.max_series then
        t.series_dropped <- t.series_dropped + 1
      else begin
        let s =
          {
            kind;
            bucket_ms = t.base_bucket_ms;
            times = Array.make t.capacity 0.0;
            values = Array.make t.capacity 0.0;
            len = 1;
          }
        in
        s.times.(0) <- Float.of_int (int_of_float (now /. s.bucket_ms)) *. s.bucket_ms;
        s.values.(0) <- v;
        Hashtbl.replace t.series name s
      end
  | Some s ->
      let bucket = Float.of_int (int_of_float (now /. s.bucket_ms)) *. s.bucket_ms in
      if s.len > 0 && s.times.(s.len - 1) >= bucket then begin
        (* Same bucket (or late sample): coalesce into the last point. *)
        let last = s.len - 1 in
        s.values.(last) <-
          (match s.kind with
          | Counter -> v
          | Gauge -> Float.max s.values.(last) v)
      end
      else begin
        if s.len >= t.capacity then compact s;
        (* Re-derive the bucket: compaction may have widened it. *)
        let bucket =
          Float.of_int (int_of_float (now /. s.bucket_ms)) *. s.bucket_ms
        in
        if s.len > 0 && s.times.(s.len - 1) >= bucket then
          let last = s.len - 1 in
          s.values.(last) <-
            (match s.kind with
            | Counter -> v
            | Gauge -> Float.max s.values.(last) v)
        else begin
          s.times.(s.len) <- bucket;
          s.values.(s.len) <- v;
          s.len <- s.len + 1
        end
      end

let points t name =
  match Hashtbl.find_opt t.series name with
  | None -> []
  | Some s -> List.init s.len (fun i -> (s.times.(i), s.values.(i)))

let bucket_ms t name =
  Option.map (fun s -> s.bucket_ms) (Hashtbl.find_opt t.series name)

let names t =
  Hashtbl.fold (fun name s acc -> (name, s.kind) :: acc) t.series []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let series_count t = Hashtbl.length t.series
let series_dropped t = t.series_dropped

(* Eight-level block sparkline over the last [width] points, scaled to
   the window's own min..max (a flat series renders as a low bar). *)
let spark_chars = [| "\u{2581}"; "\u{2582}"; "\u{2583}"; "\u{2584}";
                    "\u{2585}"; "\u{2586}"; "\u{2587}"; "\u{2588}" |]

let sparkline ?(width = 24) t name =
  match Hashtbl.find_opt t.series name with
  | None -> ""
  | Some s when s.len = 0 -> ""
  | Some s ->
      let start = Int.max 0 (s.len - width) in
      let window = Array.sub s.values start (s.len - start) in
      let lo = Array.fold_left Float.min window.(0) window in
      let hi = Array.fold_left Float.max window.(0) window in
      let scale v =
        if hi <= lo then 0
        else
          Int.min 7 (int_of_float ((v -. lo) /. (hi -. lo) *. 8.0))
      in
      Array.to_list window
      |> List.map (fun v -> spark_chars.(scale v))
      |> String.concat ""

let to_json t =
  let series_rows =
    Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.series []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, s) ->
           Json.Obj
             [
               ("name", Json.String name);
               ("kind", Json.String (kind_to_string s.kind));
               ("bucket_ms", Json.Float s.bucket_ms);
               ( "points",
                 Json.List
                   (List.init s.len (fun i ->
                        Json.List
                          [ Json.Float s.times.(i); Json.Float s.values.(i) ]))
               );
             ])
  in
  Json.Obj
    [
      ("series_count", Json.Int (series_count t));
      ("series_dropped", Json.Int t.series_dropped);
      ("series", Json.List series_rows);
    ]

let pp ppf t =
  List.iter
    (fun (name, kind) ->
      Fmt.pf ppf "%s (%s): %s@." name (kind_to_string kind)
        (sparkline t name))
    (names t)
