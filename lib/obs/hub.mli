(** The per-deployment observability handle: trace/span numbering, the
    bounded span store, the metrics registry, the flight recorder, and
    (when attached) the SLO engine. One hub is shared by every host in
    a simulated internetwork, so spans from different hosts land in one
    store keyed by trace id.

    Nothing here reads or advances the simulation clock — callers pass
    [~now] — so simulated timings are bit-identical with observability
    on or off. *)

type t

(** [create ()] makes a hub with tracing off (metrics enabled) and the
    flight recorder present but disabled. The span store keeps at most
    [span_limit] spans; eviction is tail-based — see {!spans_dropped}. *)
val create : ?tracing:bool -> ?span_limit:int -> ?event_capacity:int -> unit -> t

val tracing : t -> bool
val set_tracing : t -> bool -> unit
val metrics : t -> Metrics.t

(** The hub's flight recorder (disabled until
    [Eventlog.set_enabled]). *)
val events : t -> Eventlog.t

(** The attached SLO engine, if any; the runtime feeds every finished
    client op to it. *)
val slo : t -> Slo.t option

val set_slo : t -> Slo.t option -> unit

(** [event t ~at ~cat ~host ?trace label] records into the flight
    recorder — one boolean test when it is disabled. *)
val event :
  t ->
  at:float ->
  cat:Eventlog.cat ->
  host:string ->
  ?trace:int ->
  string ->
  unit

(** Spans evicted from the bounded store so far. Eviction is
    tail-based: traces that errored, retried, failed over, hit a fault
    or are still open survive; boring finished traces drop first,
    oldest first. Also counted under the ("obs", "hub",
    "spans-dropped") metric. *)
val spans_dropped : t -> int

(** [set_head_sampling t ~every ~seed] keeps 1-in-[every] traces,
    decided at {!start_trace} by a private deterministic PRNG — zero
    draws from any workload stream, so sampled and unsampled runs are
    behaviourally identical. [every = 1] (the default) keeps all.
    Composes with tail-based span eviction: heads choose which traces
    exist, tails choose which recorded spans survive memory pressure.
    @raise Invalid_argument when [every < 1]. *)
val set_head_sampling : t -> every:int -> seed:int -> unit

val sample_every : t -> int

(** Traces refused by head sampling so far. *)
val sampled_out : t -> int

(** The rollup attached to this hub's metrics registry, if any
    (see {!Metrics.set_rollup}). *)
val rollup : t -> Rollup.t option

val set_rollup : t -> Rollup.t option -> unit

(** The attached time-series store, if any; samplers (the kernel
    telemetry pump) feed it, exporters and [vsh top] read it. *)
val timeseries : t -> Timeseries.t option

val set_timeseries : t -> Timeseries.t option -> unit

(** Refresh the obs-health metrics (eventlog drops, span evictions,
    sampled-out traces, rollup key pressure, time-series refusals)
    from the hub's internals. Exporters call this before reading. *)
val sync_health_metrics : t -> unit

(** [start_trace t ~now] allocates a fresh trace and returns the context
    to attach to the outgoing request. Returns {!Span.no_ctx} when
    tracing is off or head sampling rejects the trace. *)
val start_trace : t -> now:float -> Span.ctx

(** [start_span t ~ctx ...] opens a span for one hop of a traced
    request; [None] when tracing is off or [ctx] is untraced. The span
    is already recorded in the store — mutate it via {!finish}. *)
val start_span :
  t ->
  ctx:Span.ctx ->
  now:float ->
  op:string ->
  host:string ->
  server:string ->
  pid:int ->
  context:int ->
  index_from:int ->
  Span.t option

(** [finish t span ~now ?index_to ~outcome ()] closes a span, recording
    completion time, consumed name index, and outcome (a reply code
    string, or ["forward"]). *)
val finish :
  t -> Span.t -> now:float -> ?index_to:int -> outcome:string -> unit -> unit

(** [child_ctx span ~now] is the context a traced hop attaches to the
    request it forwards: same trace, [span] as parent, reissued at
    [now]. *)
val child_ctx : Span.t -> now:float -> Span.ctx

(** Most recently started trace id, if any trace has been started. *)
val last_trace : t -> int option

(** All stored spans of a trace, ordered by span id (creation order). *)
val trace_spans : t -> int -> Span.t list

val all_spans : t -> Span.t list
