(* The span/trace model.

   A trace is one CSNH request followed across every server it visits;
   a span is one hop — the portion handled by a single process. The
   trace context [ctx] is the part that travels inside the standard
   CSname request fields: the trace id, the span id of the hop that
   (re)issued the request (the parent), and the simulated time it was
   (re)issued at, from which the receiving hop derives its queue wait.

   Spans carry no behaviour: creation, numbering and storage belong to
   [Hub]; this module is the pure data model plus rendering. *)

type ctx = { trace : int; parent : int; sent_at : float }

(* The untraced context: trace id 0 means "no trace attached". It is
   the default on every request, so untraced operation costs one integer
   comparison per hop. *)
let no_ctx = { trace = 0; parent = 0; sent_at = 0.0 }

let is_traced c = c.trace <> 0

type t = {
  trace_id : int;
  span_id : int;
  parent_id : int;  (** 0 for a root span *)
  op : string;  (** operation name, e.g. "Open" *)
  host : string;  (** host the handling process runs on *)
  server : string;  (** name of the handling process *)
  pid : int;  (** its pid, as an integer *)
  context : int;  (** context id interpretation ran in *)
  index_from : int;  (** name index on arrival *)
  mutable index_to : int;  (** name index consumed by this hop *)
  queue_wait : float;
      (** sim ms between the request being (re)issued and this hop
          starting on it: wire time plus queueing behind other work *)
  started : float;  (** sim ms when the hop started processing *)
  mutable finished : float;
  mutable outcome : string;  (** reply code, or "forward" *)
  mutable tags : string list;
      (** free-form annotations, newest first (e.g. "retry:2", "fault") *)
}

(* Annotations accumulate newest-first; [tags] presents them in the
   order they were added. *)
let add_tag s tag = s.tags <- tag :: s.tags
let tags s = List.rev s.tags

(* Time this hop itself spent on the request. *)
let service_ms s = s.finished -. s.started

let pp ppf s =
  Fmt.pf ppf
    "span %d.%d (parent %d) %s on %s/%s pid %d ctx %d name[%d..%d] wait \
     %.3f svc %.3f -> %s"
    s.trace_id s.span_id s.parent_id s.op s.host s.server s.pid s.context
    s.index_from s.index_to s.queue_wait (service_ms s) s.outcome;
  match tags s with
  | [] -> ()
  | ts -> Fmt.pf ppf " [%a]" Fmt.(list ~sep:comma string) ts

let to_json s =
  Json.Obj
    [
      ("trace_id", Json.Int s.trace_id);
      ("span_id", Json.Int s.span_id);
      ("parent_id", Json.Int s.parent_id);
      ("op", Json.String s.op);
      ("host", Json.String s.host);
      ("server", Json.String s.server);
      ("pid", Json.Int s.pid);
      ("context", Json.Int s.context);
      ("index_from", Json.Int s.index_from);
      ("index_to", Json.Int s.index_to);
      ("queue_wait_ms", Json.Float s.queue_wait);
      ("started_ms", Json.Float s.started);
      ("finished_ms", Json.Float s.finished);
      ("service_ms", Json.Float (service_ms s));
      ("outcome", Json.String s.outcome);
      ("tags", Json.List (List.map (fun t -> Json.String t) (tags s)));
    ]
