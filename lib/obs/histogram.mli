(** Fixed-bucket histograms with mergeable state and optional exemplar
    reservoirs.

    One invariant ties the reading APIs together: the overflow bucket's
    upper edge is always the observed maximum — [buckets], [to_json]
    and [quantile] agree on it. "+Inf" exists only in the Prometheus
    wire format (see {!Export}), where the spec mandates it. *)

type t

type exemplar = { trace : int; value : float }

(** Bucket upper bounds in simulated ms, suitable for IPC and file
    access latencies. *)
val default_bounds : float array

(** [create ~bounds ()] makes an empty histogram. [bounds] must be
    strictly increasing; an overflow bucket is added automatically.
    [exemplar_slots] (default 0 = off) is the per-bucket reservoir
    capacity for trace exemplars.
    @raise Invalid_argument on empty or non-increasing bounds, or a
    negative [exemplar_slots]. *)
val create : ?bounds:float array -> ?exemplar_slots:int -> unit -> t

(** [observe ?trace ?rand t x] records one sample. When the histogram
    keeps exemplars and both a positive [trace] id and a [rand] stream
    are supplied, [x] is offered to the target bucket's reservoir
    (algorithm R — a uniform sample of that bucket's traced
    observations). Plain [observe t x] never touches the reservoirs. *)
val observe : ?trace:int -> ?rand:Srand.t -> t -> float -> unit

val count : t -> int
val sum : t -> float

(** [mean], [min_], [max_] are [nan] on an empty histogram. *)
val mean : t -> float

val min_ : t -> float
val max_ : t -> float

(** [quantile t q] estimates the [q]-quantile by linear interpolation
    inside the bucket holding the target rank, clamped to the observed
    [min_, max_] range. [nan] on an empty histogram.
    @raise Invalid_argument unless [0 <= q <= 1]. *)
val quantile : t -> float -> float

(** Occupied buckets as [(lower, upper, count)] rows, edges clamped to
    the observed range (the overflow row's upper edge is [max_]). *)
val buckets : t -> (float * float * int) list

(** The configured bucket upper bounds (a copy, without the overflow
    bucket). *)
val bounds : t -> float array

(** Per-bucket counts (a copy); one slot longer than [bounds] — the
    last slot is the overflow bucket. For exporters that need the raw
    layout rather than the clamped [buckets] view. *)
val raw_counts : t -> int array

(** Exemplars held by bucket [b] (raw index into [raw_counts]); [] when
    reservoirs are off or the bucket is empty. *)
val exemplars : t -> int -> exemplar list

(** All exemplars, in bucket order. *)
val all_exemplars : t -> exemplar list

(** [merge a b] is a fresh histogram holding both inputs' observations:
    counts/n/sum add, extrema widen, exemplar reservoirs concatenate
    prefix-first (associatively). Inputs must share bounds.
    @raise Invalid_argument when the bounds differ. *)
val merge : t -> t -> t

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
