(* Chaos attribution: join fault windows against what degraded.

   A fault is an applied injector action together with the time its
   recovery landed (restart, heal, loss back to zero, slowdown lifted).
   Ops are finished client operations; windows are measured
   unavailability intervals. The join is interval overlap — an op (or
   window) is attributed to every fault whose window it overlaps, since
   overlapping faults genuinely compound — and everything is a pure
   function of its inputs, so the table two same-seed runs print is
   byte-identical.

   This module knows nothing about plans or injectors: callers (the
   fault layer, the chaos benchmarks) render their own types down to
   these records. *)

type fault = {
  at : float;  (* sim ms the fault was applied *)
  until : float;  (* sim ms its recovery was applied (or the horizon) *)
  kind : string;  (* "crash", "partition", "loss", "slow" *)
  label : string;  (* rendered action, e.g. "crash host 100" *)
}

type op = { started : float; finished : float; ok : bool; retries : int }

type impact = {
  fault : fault;
  ops : int;  (* ops overlapping the fault window *)
  failures : int;
  retries : int;  (* retries spent by overlapping ops *)
  unavailable_ms : float;  (* unavailability overlapping the window *)
}

let overlaps ~lo ~hi a b = a <= hi && b >= lo

(* Length of [a, b] ∩ [lo, hi]. *)
let overlap_ms ~lo ~hi a b = Float.max 0.0 (Float.min b hi -. Float.max a lo)

let attribute ~faults ~ops ?(windows = []) () =
  List.map
    (fun f ->
      let hit = overlaps ~lo:f.at ~hi:f.until in
      let n, failures, retries =
        List.fold_left
          (fun (n, fl, r) o ->
            if hit o.started o.finished then
              (n + 1, (if o.ok then fl else fl + 1), r + o.retries)
            else (n, fl, r))
          (0, 0, 0) ops
      in
      let unavailable_ms =
        List.fold_left
          (fun acc (t0, t1) -> acc +. overlap_ms ~lo:f.at ~hi:f.until t0 t1)
          0.0 windows
      in
      { fault = f; ops = n; failures; retries; unavailable_ms })
    (List.sort (fun a b -> compare (a.at, a.label) (b.at, b.label)) faults)

let fault_to_json f =
  Json.Obj
    [
      ("at_ms", Json.Float f.at);
      ("until_ms", Json.Float f.until);
      ("kind", Json.String f.kind);
      ("label", Json.String f.label);
    ]

let impact_to_json i =
  Json.Obj
    [
      ("fault", fault_to_json i.fault);
      ("ops", Json.Int i.ops);
      ("failures", Json.Int i.failures);
      ("retries", Json.Int i.retries);
      ("unavailable_ms", Json.Float i.unavailable_ms);
    ]

let to_json impacts = Json.List (List.map impact_to_json impacts)

let pp ppf impacts =
  match impacts with
  | [] -> Fmt.pf ppf "(no faults applied)@."
  | _ ->
      Fmt.pf ppf "%-34s %-17s %5s %5s %8s %12s@." "fault" "window [ms]" "ops"
        "fail" "retries" "unavail [ms]";
      List.iter
        (fun i ->
          Fmt.pf ppf "%-34s %8.0f..%-8.0f %5d %5d %8d %12.1f@." i.fault.label
            i.fault.at i.fault.until i.ops i.failures i.retries
            i.unavailable_ms)
        impacts
