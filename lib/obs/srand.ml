(* The sampling-decision PRNG: a self-contained splitmix64 stream used
   for head-sampling verdicts and exemplar reservoirs.

   Observability must never perturb the workload, and the workload's
   randomness lives in [Vsim.Prng] streams the obs library cannot (and
   must not) draw from: one extra draw would shift every subsequent
   think time and break the guarantee that runs are bit-identical with
   telemetry on or off. So sampling decisions come from this private
   stream instead — seeded explicitly, deterministic across runs, and
   consuming zero draws from any workload PRNG. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* splitmix64 (Steele, Lea & Flood): one 64-bit add per draw, finalized
   by two xor-shift-multiply rounds. The same generator Vsim.Prng uses,
   re-derived here because this library sits below the simulator. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* 62 uniform bits as a non-negative int (OCaml ints are 63-bit). *)
let bits t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Srand.int: bound must be positive";
  bits t mod bound
