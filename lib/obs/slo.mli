(** Windowed service-level objectives with multi-window burn-rate
    alerting.

    Client operations land in sim-time buckets; availability and
    latency objectives are evaluated against a {!target} using the SRE
    burn-rate recipe — a breach fires only when both a short window
    (one bucket) and a long window burn the error budget faster than a
    threshold. Evaluation is a pure scan over the buckets and nothing
    here reads the simulation clock, so an attached engine never
    perturbs a run. *)

type target = {
  availability : float;  (** e.g. 0.99: at least 99% of ops succeed *)
  latency_ms : float;  (** ops slower than this count as slow *)
  latency_quantile : float;  (** e.g. 0.95: at least 95% of ops fast *)
}

(** 99% availability, 95% of ops under 250 simulated ms. *)
val default_target : target

type t

(** [create ()] makes an engine with 5 s buckets, a 6-bucket long
    window, and a 2.0x burn threshold.
    @raise Invalid_argument on non-positive windows/threshold or
    targets outside (0, 1]. *)
val create :
  ?window_ms:float ->
  ?long_windows:int ->
  ?burn_threshold:float ->
  ?target:target ->
  unit ->
  t

val target : t -> target
val window_ms : t -> float

(** [observe t ~now ~ok ~latency_ms] records one finished client
    operation into the bucket holding [now]. *)
val observe : t -> now:float -> ok:bool -> latency_ms:float -> unit

type breach = {
  at : float;  (** end of the breaching short window, sim ms *)
  dimension : string;  (** ["availability"] or ["latency"] *)
  short_burn : float;
  long_burn : float;
}

(** All breaches, in bucket order. Pure: same observations, same
    breaches. *)
val breaches : t -> breach list

type summary = {
  window_ms : float;
  ops : int;
  errors : int;
  slow : int;
  availability : float;  (** 1.0 when no ops observed *)
  slow_fraction : float;
  breach_list : breach list;
}

val summary : t -> summary
val breach_to_json : breach -> Json.t

(** Totals plus a ["breaches"] list — the object {!val:summary}
    gates on. *)
val summary_to_json : summary -> Json.t

val pp_breach : Format.formatter -> breach -> unit
val pp_summary : Format.formatter -> summary -> unit
