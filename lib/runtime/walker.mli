(** Recursive context traversal built purely on the uniform naming
    operations (context directories + descriptions), so it walks any
    server's name space and follows cross-server pointers without
    knowing what is behind a name — the V analogue of find/du. *)

open Vnaming

type visit = {
  v_name : string;  (** name used to reach the object, from the root *)
  v_depth : int;
  v_descriptor : Descriptor.t;
}

(** Depth-first traversal from the context named [root] (a prefix name,
    a relative name, or [""] for the current context). Descends into
    directories and — when [follow_pointers] (default true) — into
    cross-server context pointers. Listing failures go to [on_error]
    and do not abort the walk. *)
val walk :
  ?max_depth:int ->
  ?follow_pointers:bool ->
  ?on_error:(string -> Vio.Verr.t -> unit) ->
  Runtime.env ->
  root:string ->
  (visit -> unit) ->
  unit

(** Names of objects satisfying the predicate, in visit order. *)
val find :
  ?max_depth:int ->
  ?follow_pointers:bool ->
  Runtime.env ->
  root:string ->
  (visit -> bool) ->
  string list

(** Total bytes of the files under a context. *)
val disk_usage : ?max_depth:int -> Runtime.env -> root:string -> int

(** Recursively copy the files and directories under [src] to [dst]
    (which must already name a context), across servers if the names
    say so. Returns the number of files copied. {e Every} failure —
    listing, directory creation, file copy — is threaded through
    [on_error] (name it failed on, error) as the walk proceeds, so a
    mid-tree crash does not hide the errors after it; the result
    carries the first failure for callers that ignore the rest. *)
val copy_tree :
  ?max_depth:int ->
  ?on_error:(string -> Vio.Verr.t -> unit) ->
  Runtime.env ->
  src:string ->
  dst:string ->
  (int, Vio.Verr.t) result

(** Render the reachable tree. *)
val pp_tree :
  ?max_depth:int -> Runtime.env -> root:string -> Format.formatter -> unit -> unit
