(* Reply checking shared by the run-time stubs. *)

let check (m : Vnaming.Vmsg.t) =
  match Vnaming.Vmsg.reply_code m with
  | Some Vnaming.Reply.Ok -> Ok m
  | Some code -> Error (Vio.Verr.Denied code)
  | None -> Error (Vio.Verr.Protocol "expected a reply message")
