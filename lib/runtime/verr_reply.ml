(* Reply checking shared by the run-time stubs. Delegates to
   [Vio.Verr.of_reply] so a Busy rejection surfaces as [Verr.Busy] with
   its retry-after hint here exactly as it does in the client stubs. *)

let check (m : Vnaming.Vmsg.t) = Vio.Verr.of_reply m
