(** The standard run-time library (paper §6): the procedural interface V
    programs use, hiding the message interface.

    Every CSname routine goes through one common routing routine: a name
    starting with '[' goes to the workstation's context prefix server
    (in its default context); any other name goes directly to the server
    implementing the current context, with the current context id filled
    into the message. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
open Vnaming

(** A program's naming environment: its current context, its
    workstation's prefix server, and the optional client-side
    name-resolution cache (an ablation §2.2 argues against, here made
    safe by on-use validation). *)
type env

(** Build the environment for a program passed its [current] context;
    binds the workstation's (Local-scope) prefix service. *)
val make : Vmsg.t Kernel.self -> current:Context.spec -> (env, Vio.Verr.t) result

val self : env -> Vmsg.t Kernel.self
val engine : env -> Vsim.Engine.t
val current_context : env -> Context.spec
val set_current_context : env -> Context.spec -> unit

(** {1 The client resilience policy}

    With a policy set, every named operation ({!transact_name}-routed
    calls and {!open_}) re-issues retryable failures ([Ipc Timeout],
    stale pids, [Denied Retry] — see {!Vio.Resilience.retryable}) after
    a jittered exponential backoff, within a per-operation deadline.
    Re-issuing routes afresh, so a crashed server's restarted successor
    is found by GetPid re-resolution through the prefix server's
    logical bindings; a current context bound with {!change_context} is
    likewise re-resolved by its name on transport-level retries, so
    relative names fail over too. All attempts run under one obs root
    span, tagged ["fault"]/["retry:n"]. When the policy gives up, the
    caller sees
    {!Vio.Verr.Unavailable} (bounded) rather than an indefinite hang.

    Off by default; with it off, behaviour and PRNG draws are exactly
    the seed's, so fault-free runs stay bit-identical. [seed] drives
    backoff jitter only — a fixed seed replays the exact retry
    schedule. *)

val set_resilience :
  env -> ?policy:Vio.Resilience.policy -> seed:int -> unit -> unit

val clear_resilience : env -> unit
val resilience : env -> Vio.Resilience.policy option

type resilience_stats = {
  mutable retries : int;  (** re-issued attempts *)
  mutable retried_ok : int;  (** operations succeeding after >= 1 retry *)
  mutable unavailable : int;  (** operations surfaced as [Unavailable] *)
}

(** Live counters (also exported as (workstation, "runtime", "retry" |
    "retry-ok" | "unavailable") metrics when a hub is attached). *)
val resilience_stats : env -> resilience_stats

(** {1 Naming operations} *)

(** Map a name denoting a context to its (server-pid, context-id). *)
val resolve : env -> string -> (Context.spec, Vio.Verr.t) result

(** Resolve and make current — the analogue of Unix chdir (§6). *)
val change_context : env -> string -> (Context.spec, Vio.Verr.t) result

(** A printable CSname for the current context (§6 inverse mapping):
    the prefix server's name for it if one matches, otherwise the
    implementing server's local path. *)
val current_context_name : env -> (string, Vio.Verr.t) result

(** {1 File-like access (the I/O protocol over the naming layer)} *)

val open_ :
  env -> mode:Vmsg.open_mode -> string -> (Vio.Client.remote_instance, Vio.Verr.t) result

(** Open, run, release (release errors surface if the body succeeded). *)
val with_instance :
  env ->
  mode:Vmsg.open_mode ->
  string ->
  (Vio.Client.remote_instance -> ('a, Vio.Verr.t) result) ->
  ('a, Vio.Verr.t) result

val read_file : env -> string -> (bytes, Vio.Verr.t) result
val write_file : env -> string -> bytes -> (unit, Vio.Verr.t) result
val append_file : env -> string -> bytes -> (unit, Vio.Verr.t) result

(** Read the context directory of a name (§5.6). *)
val list_directory : env -> string -> (Descriptor.t list, Vio.Verr.t) result

(** {1 Object operations (§5.5, §5.7)} *)

val query : env -> string -> (Descriptor.t, Vio.Verr.t) result
val modify : env -> string -> Descriptor.t -> (unit, Vio.Verr.t) result
val create : env -> ?directory:bool -> string -> (unit, Vio.Verr.t) result
val remove : env -> string -> (unit, Vio.Verr.t) result

(** [new_name] is interpreted relative to the old name's final context,
    within the same server. *)
val rename : env -> string -> new_name:string -> (unit, Vio.Verr.t) result

(** Copy a file by name, possibly across servers. *)
val copy : env -> src:string -> dst:string -> (unit, Vio.Verr.t) result

(** {1 Prefix management} *)

val add_prefix :
  env ->
  string ->
  [ `Static of Context.spec | `Logical of int * Context.id ] ->
  (unit, Vio.Verr.t) result

val delete_prefix : env -> string -> (unit, Vio.Verr.t) result

(** Define a cross-server context pointer: a name in one (storage)
    context pointing at a context on another server (Figure 4). *)
val link : env -> string -> target:Context.spec -> (unit, Vio.Verr.t) result

(** {1 The client-side name-resolution cache}

    A bounded LRU of name-prefix -> (server-pid, context-id) bindings,
    keyed on the deepest prefix of a name that ends at a component
    boundary. Bindings are learned from the stamps servers put into
    successful CSname replies, so forward chains teach the client where
    interpretation landed, for free. Consistency is {e on use}: a
    [Bad_context]/[Not_found]/IPC failure on a cached binding evicts it
    and the operation falls back one prefix level (the next-deepest
    cached prefix, or the prefix server) and retries.

    Off by default — with it off, routing behaviour is exactly the
    paper's (§2.2 argues against client-side name caching; the on-use
    protocol is this repo's answer to the inconsistency objection).

    Hit/miss/stale/eviction counts are exported through [Vobs.Metrics]
    under (workstation, "runtime", "cache-hit" | "cache-miss" |
    "cache-stale" | "cache-evict" | "cache-learn") whenever an
    observability hub is attached, and through {!name_cache_stats}. *)

(** Enable or disable the cache; [?capacity] replaces the cache with a
    fresh one of that capacity (default {!Vnaming.Name_cache.default_capacity}).
    Disabling clears the entries but keeps the counters. *)
val enable_name_cache : env -> ?capacity:int -> bool -> unit

val name_cache_stats : env -> Vnaming.Name_cache.stats

(** The cache itself (inspection: tests, vsh). *)
val name_cache : env -> Vnaming.Name_cache.t

(** Backwards-compatible alias of {!enable_name_cache} (no capacity
    change), from when the cache held only whole '[prefix]' bindings. *)
val enable_prefix_cache : env -> bool -> unit

(** {1 The caching resolver role (federated name domains)}

    With a {!Vdomains.Resolver} installed, '[prefix]'-absolute names
    the resolver {!Vdomains.Resolver.handles} are routed by an
    iterative walk of the federated domain tree — root to leaf,
    following delegation referrals, with TTL / negative / stale-serving
    caching — instead of through the prefix server. All other names
    route exactly as before; with no resolver set, behaviour and PRNG
    draws are bit-identical to the seed. On-use consistency extends to
    the resolver: a binding it supplied that demonstrably failed is
    invalidated and re-derived by a fresh walk (once; then the uncached
    prefix-server route of last resort). Bindings servers stamp into
    successful replies feed the resolver's cache under its TTL.

    Routing counters land under (workstation, "runtime",
    "resolver-hit" | "resolver-walk" | "resolver-stale" |
    "resolver-fallback"). *)

val set_resolver : env -> Vdomains.Resolver.t -> unit
val clear_resolver : env -> unit
val resolver : env -> Vdomains.Resolver.t option

(** Convenience accessors over {!name_cache_stats}; prefer the
    [Vobs.Metrics] counters for new code. *)
val cache_hit_count : env -> int

(** On-use invalidations: retries after a cached binding demonstrably
    failed. *)
val cache_stale_count : env -> int
