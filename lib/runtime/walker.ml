(* Recursive context traversal: a client-side utility built purely on
   the uniform naming operations (list-directory + resolve), so it walks
   any server's name space — and follows cross-server pointers — without
   knowing what is behind a name. The V equivalent of find/du. *)

open Vnaming

type visit = {
  v_name : string;  (** name used to reach the object, from the root *)
  v_depth : int;
  v_descriptor : Descriptor.t;
}

(* Join a walked path onto a root name: "[home]" ^ "a/b" handles the
   bracket form ending without a separator. *)
let join_name root relative =
  if relative = "" then root
  else if root = "" then relative
  else if root.[String.length root - 1] = Csname.prefix_close then root ^ relative
  else root ^ "/" ^ relative

(* [walk env ~root f] applies [f] to every object reachable from the
   context named [root], depth-first, following directories and
   cross-server context pointers up to [max_depth]. Listing failures in
   subcontexts are reported through [on_error] (default: ignored) and do
   not abort the walk. *)
let walk ?(max_depth = 16) ?(follow_pointers = true)
    ?(on_error = fun (_ : string) (_ : Vio.Verr.t) -> ()) env ~root f =
  let rec visit_context name depth =
    if depth <= max_depth then
      match Runtime.list_directory env name with
      | Error e -> on_error name e
      | Ok records ->
          List.iter
            (fun (d : Descriptor.t) ->
              let child = join_name name d.Descriptor.name in
              f { v_name = child; v_depth = depth; v_descriptor = d };
              match d.Descriptor.obj_type with
              | Descriptor.Directory -> visit_context child (depth + 1)
              | Descriptor.Context_pointer ->
                  if follow_pointers then visit_context child (depth + 1)
              | Descriptor.File | Descriptor.Prefix_binding
              | Descriptor.Process | Descriptor.Terminal
              | Descriptor.Printer_job | Descriptor.Mailbox
              | Descriptor.Tcp_connection | Descriptor.Device
              | Descriptor.User_account ->
                  ())
            records
  in
  visit_context root 0

(* [find env ~root predicate] collects the names of matching objects. *)
let find ?max_depth ?follow_pointers env ~root predicate =
  let hits = ref [] in
  walk ?max_depth ?follow_pointers env ~root (fun v ->
      if predicate v then hits := v.v_name :: !hits);
  List.rev !hits

(* Total size of the files under a context, like du. *)
let disk_usage ?max_depth env ~root =
  let total = ref 0 in
  walk ?max_depth env ~root (fun v ->
      if v.v_descriptor.Descriptor.obj_type = Descriptor.File then
        total := !total + v.v_descriptor.Descriptor.size);
  !total

(* Recursively copy a context's files and directories to another
   context, purely through the public operations — works across servers
   and through pointers. Returns the number of files copied. Every
   failure — listing a subcontext, creating a directory, copying a
   file — is reported through [on_error] as it happens and counted, so
   a mid-tree crash does not hide the errors after it; the result
   still carries the first failure for callers that ignore the rest. *)
let copy_tree ?max_depth
    ?(on_error = fun (_ : string) (_ : Vio.Verr.t) -> ()) env ~src ~dst =
  let copied = ref 0 in
  let first_err = ref None in
  let report what e =
    if !first_err = None then first_err := Some e;
    on_error what e
  in
  let must what = function Ok () -> () | Error e -> report what e in
  walk ?max_depth ~follow_pointers:false ~on_error:report env ~root:src (fun v ->
      (* Rebase the visited name from src onto dst. *)
      let suffix =
        let full = v.v_name and root = src in
        let n = String.length root in
        let rest = String.sub full n (String.length full - n) in
        if String.length rest > 0 && rest.[0] = '/' then
          String.sub rest 1 (String.length rest - 1)
        else rest
      in
      let target = join_name dst suffix in
      match v.v_descriptor.Descriptor.obj_type with
      | Descriptor.Directory -> must target (Runtime.create env ~directory:true target)
      | Descriptor.File ->
          incr copied;
          must target (Runtime.copy env ~src:v.v_name ~dst:target)
      | _ -> ());
  match !first_err with None -> Ok !copied | Some e -> Error e

(* Render a tree, like find -print with indentation. *)
let pp_tree ?max_depth env ~root ppf () =
  Fmt.pf ppf "%s@." (if root = "" then "(current context)" else root);
  walk ?max_depth env ~root (fun v ->
      Fmt.pf ppf "%s%s%s@."
        (String.concat "" (List.init (v.v_depth + 1) (fun _ -> "   ")))
        v.v_descriptor.Descriptor.name
        (match v.v_descriptor.Descriptor.obj_type with
        | Descriptor.Directory -> "/"
        | Descriptor.Context_pointer -> " ~~>"
        | _ -> ""))
