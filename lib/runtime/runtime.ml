(* The standard run-time library (§6): the procedural interface programs
   use for system services, hiding the message interface.

   Every CSname-handling routine goes through one common routing
   routine: if the name starts with '[', the request is sent to the
   workstation's context prefix server (in its default context);
   otherwise it is sent directly to the server implementing the current
   context, with the current context identifier filled into the message.
   "The code that checks for the '[' character is localized in a single
   common routine."

   The routing routine optionally consults a client-side
   name-resolution cache ({!Vnaming.Name_cache}): a bounded LRU of
   name-prefix -> (server, context) bindings, learned from the bindings
   servers stamp into successful replies, and validated on use — a
   reply proving a cached binding stale evicts it, falls back one
   prefix level (the next-deepest cached prefix, or the prefix server)
   and retries. Off by default: the paper argues against client-side
   name caching (§2.2) precisely because of the consistency problem the
   on-use protocol addresses. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Service = Vkernel.Service
module Calibration = Vnet.Calibration
open Vnaming

type resilience_stats = {
  mutable retries : int;  (* re-issued attempts *)
  mutable retried_ok : int;  (* operations that succeeded after >= 1 retry *)
  mutable unavailable : int;  (* operations surfaced as [Unavailable] *)
}

type env = {
  self : Vmsg.t Kernel.self;
  prefix_server : Pid.t;
  mutable current : Context.spec;
  (* The name [current] was last bound from ([change_context]); the
     retry loop uses it to re-resolve a pinned context whose server
     crashed, so relative names fail over too. *)
  mutable current_name : string option;
  mutable rebinding : bool;
  (* The client-side name-resolution cache; consulted (and fed) only
     when [name_cache_enabled]. *)
  mutable name_cache_enabled : bool;
  mutable name_cache : Name_cache.t;
  (* The per-host caching resolver role ({!Vdomains.Resolver}); when
     set, '[prefix]'-absolute names it [handles] are resolved by an
     iterative walk of the federated domain tree instead of the prefix
     server, with TTL/negative/stale caching. Off ([None]) by default. *)
  mutable resolver : Vdomains.Resolver.t option;
  (* The resilience policy ([Vio.Resilience]); off ([None]) by default.
     The PRNG drives backoff jitter only, so a seeded run replays the
     exact retry schedule. *)
  mutable resilience : Vio.Resilience.policy option;
  mutable retry_prng : Vsim.Prng.t;
  rstats : resilience_stats;
}

let engine env = Kernel.engine_of_domain (Kernel.domain_of_self env.self)
let self env = env.self
let current_context env = env.current
let set_current_context env spec =
  env.current <- spec;
  env.current_name <- None

let enable_name_cache env ?capacity flag =
  (match capacity with
  | Some c -> env.name_cache <- Name_cache.create ~capacity:c ()
  | None -> ());
  env.name_cache_enabled <- flag;
  if not flag then Name_cache.clear env.name_cache

(* Backwards-compatible alias from when the cache held only whole
   '[prefix]' bindings. *)
let enable_prefix_cache env flag = enable_name_cache env flag

let name_cache env = env.name_cache
let name_cache_stats env = Name_cache.stats env.name_cache

let set_resolver env r = env.resolver <- Some r
let clear_resolver env = env.resolver <- None
let resolver env = env.resolver
let cache_hit_count env = (name_cache_stats env).Name_cache.hits
let cache_stale_count env = (name_cache_stats env).Name_cache.stale

let set_resilience env ?(policy = Vio.Resilience.default) ~seed () =
  env.resilience <- Some policy;
  env.retry_prng <- Vsim.Prng.create ~seed

let clear_resilience env = env.resilience <- None
let resilience env = env.resilience

let resilience_stats env = env.rstats

(* [make self ~current] builds a program environment: the program is
   passed its current context; the workstation's context prefix server
   is bound via the local service table. *)
let make self ~current =
  match Kernel.get_pid self ~service:Service.Id.context_prefix Service.Local with
  | None -> Error (Vio.Verr.Denied Reply.No_server)
  | Some prefix_server ->
      Ok
        {
          self;
          prefix_server;
          current;
          current_name = None;
          rebinding = false;
          name_cache_enabled = false;
          name_cache = Name_cache.create ();
          resolver = None;
          resilience = None;
          retry_prng = Vsim.Prng.create ~seed:1;
          rstats = { retries = 0; retried_ok = 0; unavailable = 0 };
        }

(* --- observability ---

   Every named operation gets (when a hub is attached to the domain) a
   latency histogram sample keyed (workstation, "runtime", op), and —
   when tracing is on — one root span per operation; the request sent
   carries the root's child context, so server-side hops hang under it.
   One root span covers all retry attempts of an operation; when the
   first attempt used a cached binding, the root's op carries a
   "[cached]" tag. Cache counters land under (workstation, "runtime")
   with cache-prefixed op names. All bookkeeping: nothing here touches
   simulated time. *)

let obs_hub env = Kernel.obs (Kernel.domain_of_self env.self)

let obs_runtime_metric env op =
  match obs_hub env with
  | None -> ()
  | Some hub ->
      Vobs.Metrics.incr (Vobs.Hub.metrics hub)
        ~host:(Kernel.self_host_name env.self)
        ~server:"runtime" ~op

let obs_root env ~op ~context =
  match obs_hub env with
  | None -> None
  | Some hub ->
      let t0 = Vsim.Engine.now (engine env) in
      let ctx = Vobs.Hub.start_trace hub ~now:t0 in
      Option.map
        (fun span -> (hub, span))
        (Vobs.Hub.start_span hub ~ctx ~now:t0 ~op:("client:" ^ op)
           ~host:(Kernel.self_host_name env.self)
           ~server:"runtime"
           ~pid:(Pid.to_int (Kernel.self_pid env.self))
           ~context ~index_from:0)

(* Attach the request of one attempt to the root span. *)
let obs_attach env root (req : Csname.req) =
  match root with
  | None -> req
  | Some (_, span) ->
      let now = Vsim.Engine.now (engine env) in
      { req with Csname.trace = Vobs.Hub.child_ctx span ~now }

let obs_done env ~op ~t0 root outcome =
  (match root with
  | None -> ()
  | Some (hub, span) ->
      Vobs.Hub.finish hub span
        ~now:(Vsim.Engine.now (engine env))
        ~outcome ());
  match obs_hub env with
  | None -> ()
  | Some hub ->
      let now = Vsim.Engine.now (engine env) in
      (* The root trace id rides into the latency histogram as an
         exemplar candidate (when exemplars are on), linking an
         aggregate's outlier bucket back to its span tree. *)
      let trace =
        match root with
        | Some (_, span) -> Some span.Vobs.Span.trace_id
        | None -> None
      in
      Vobs.Metrics.observe ?trace (Vobs.Hub.metrics hub)
        ~host:(Kernel.self_host_name env.self)
        ~server:"runtime" ~op (now -. t0);
      (* Every finished client operation feeds the SLO engine when one
         is attached: availability from the outcome, latency from the
         whole-operation wall time (retries included). *)
      (match Vobs.Hub.slo hub with
      | None -> ()
      | Some slo ->
          Vobs.Slo.observe slo ~now
            ~ok:(outcome = Reply.to_string Reply.Ok)
            ~latency_ms:(now -. t0))

let outcome_of_result = function
  | Ok _ -> Reply.to_string Reply.Ok
  | Error e -> Vio.Verr.to_string e

let obs_tag root tag =
  match root with
  | None -> ()
  | Some ((_ : Vobs.Hub.t), span) -> Vobs.Span.add_tag span tag

let root_trace = function
  | None -> 0
  | Some ((_ : Vobs.Hub.t), span) -> span.Vobs.Span.trace_id

(* Flight-recorder events from the client runtime (retries, failovers,
   exhausted budgets), stamped with the operation's root trace. The
   label is only built when an attached hub's recorder is enabled. *)
let obs_event env ?(trace = 0) fmt =
  match obs_hub env with
  | Some hub when Vobs.Eventlog.enabled (Vobs.Hub.events hub) ->
      Format.kasprintf
        (fun label ->
          Vobs.Hub.event hub
            ~at:(Vsim.Engine.now (engine env))
            ~cat:Vobs.Eventlog.Client
            ~host:(Kernel.self_host_name env.self)
            ~trace label)
        fmt
  | Some _ | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

(* The resilience retry loop around one named operation. [run] is a
   whole routed attempt (including the stale-retry cascade); on a
   retryable failure it is re-issued after a jittered exponential
   backoff, within the policy's deadline, all under the same obs root
   span (tagged "fault" on the first retry and "retry:n" per attempt).
   Re-running [run] routes afresh, so a crashed server's successor is
   picked up by GetPid re-resolution through the prefix server's
   logical bindings. When the policy gives up, the caller sees a
   bounded [Unavailable] instead of an indefinite hang. Off by default
   ([env.resilience = None]): behaviour and PRNG draws are then exactly
   as before. *)

(* Forward reference, assigned below [resolve]: re-resolve the pinned
   current context on a transport-level retry. *)
let rebind_current = ref (fun (_ : env) -> ())

let with_resilience env ~root ~t0 run =
  match env.resilience with
  | None -> run ()
  | Some policy ->
      let rec loop attempt =
        match run () with
        | Ok _ as ok ->
            if attempt > 1 then begin
              env.rstats.retried_ok <- env.rstats.retried_ok + 1;
              obs_runtime_metric env "retry-ok"
            end;
            ok
        | Error e -> (
            let elapsed = Vsim.Engine.now (engine env) -. t0 in
            match
              Vio.Resilience.next_step policy env.retry_prng ~attempt
                ~elapsed_ms:elapsed e
            with
            | Vio.Resilience.Retry_after wait ->
                env.rstats.retries <- env.rstats.retries + 1;
                obs_runtime_metric env "retry";
                if attempt = 1 then obs_tag root "fault";
                obs_tag root (Printf.sprintf "retry:%d" attempt);
                obs_event env ~trace:(root_trace root)
                  "retry attempt %d after %a (wait %.1fms)" attempt
                  Vio.Verr.pp e wait;
                Vsim.Proc.delay (engine env) wait;
                (* A transport failure may mean the current context's
                   server died: re-resolve it before routing again. *)
                if Vio.Resilience.rebind_worthy e then !rebind_current env;
                loop (attempt + 1)
            | Vio.Resilience.Give_up ->
                let err = Vio.Resilience.give_up ~attempts:attempt e in
                (match err with
                | Vio.Verr.Unavailable _ ->
                    env.rstats.unavailable <- env.rstats.unavailable + 1;
                    obs_runtime_metric env "unavailable";
                    obs_event env ~trace:(root_trace root)
                      "unavailable after %d attempt(s)" attempt
                | _ -> ());
                Error err)
      in
      loop 1

(* --- the single common routing routine --- *)

type route = { target : Pid.t; req : Csname.req; cached_prefix : string option }

let skip_separators name i =
  let rec loop i =
    if i < String.length name && name.[i] = Csname.separator then loop (i + 1)
    else i
  in
  loop i

(* The prefix-server leg of routing: deepest cached prefix when the
   cache is on, the workstation's prefix server otherwise. *)
let route_prefixed env name req =
  let cached =
    if env.name_cache_enabled then Name_cache.find env.name_cache name
    else None
  in
  match cached with
  | Some (key, spec) ->
      (* Deepest cached prefix: start interpretation just past it, in
         the cached context, directly at the implementing server. *)
      obs_runtime_metric env "cache-hit";
      {
        target = spec.Context.server;
        req =
          {
            req with
            Csname.index = skip_separators name (String.length key);
            context = spec.Context.context;
          };
        cached_prefix = Some key;
      }
  | None ->
      if env.name_cache_enabled then obs_runtime_metric env "cache-miss";
      { target = env.prefix_server; req; cached_prefix = None }

let route env name =
  let req = Csname.make_req name in
  if Csname.starts_with_prefix req then begin
    match env.resolver with
    | Some r when Vdomains.Resolver.handles r name -> (
        (* The resolver role: an iterative walk of the domain tree
           (cached, TTL'd), landing the request directly where
           interpretation continues. On any resolver failure, fall back
           to the prefix-server route so the operation still gets its
           authoritative answer. *)
        match Vdomains.Resolver.resolve r env.self name with
        | Ok o ->
            let open Vdomains.Resolver in
            obs_runtime_metric env
              (if o.queries = 0 then "resolver-hit" else "resolver-walk");
            if o.served_stale then obs_runtime_metric env "resolver-stale";
            {
              target = o.spec.Context.server;
              req =
                {
                  req with
                  Csname.index = o.index;
                  context = o.spec.Context.context;
                };
              cached_prefix = o.cache_key;
            }
        | Error _ ->
            obs_runtime_metric env "resolver-fallback";
            route_prefixed env name req)
    | Some _ | None -> route_prefixed env name req
  end
  else
    {
      target = env.current.Context.server;
      req = { req with Csname.context = env.current.Context.context };
      cached_prefix = None;
    }

(* Routing with the cache bypassed: the fallback of last resort after a
   failure that no cached binding explains. *)
let route_uncached env name =
  let req = Csname.make_req name in
  if Csname.starts_with_prefix req then
    { target = env.prefix_server; req; cached_prefix = None }
  else
    {
      target = env.current.Context.server;
      req = { req with Csname.context = env.current.Context.context };
      cached_prefix = None;
    }

let charge_stub env = Vsim.Proc.delay (engine env) Calibration.client_stub_cpu

(* Failover accounting: when a later resilience attempt routes to a
   different server pid than the one before it — the re-resolution found
   a successor or a surviving replica — tag the operation's root span
   "failover:n" (n counts failovers within this operation) and bump the
   (workstation, "runtime", "failover") counter. Route changes inside
   the stale-cache cascade are not failovers; only cross-attempt changes
   count. *)
let note_failover env ~root ~last_target ~failovers (r : route) =
  (match !last_target with
  | Some p when not (Pid.equal p r.target) ->
      incr failovers;
      obs_runtime_metric env "failover";
      obs_tag root (Printf.sprintf "failover:%d" !failovers);
      obs_event env ~trace:(root_trace root) "failover %d -> pid %d" !failovers
        (Pid.to_int r.target)
  | Some _ | None -> ());
  last_target := Some r.target

(* Learn a binding a server stamped into a successful reply. Only
   '[prefix]'-absolute names are cached: a relative name's meaning moves
   with the current context, so a string-keyed binding for it would be
   wrong the moment the program changed context. *)
let learn_from_reply env name (binding : Vmsg.binding option) =
  if String.length name > 0 && name.[0] = Csname.prefix_open then
    match binding with
    | Some { Vmsg.upto; spec } when upto > 0 && upto <= String.length name ->
        let key = String.sub name 0 upto in
        (* A resolver learns the stamp too (under its TTL): a forward
           chain's landing point short-cuts the next walk. *)
        (match env.resolver with
        | Some r when Vdomains.Resolver.handles r name ->
            Vdomains.Resolver.learn r
              ~now:(Vsim.Engine.now (engine env))
              key spec
        | Some _ | None -> ());
        if env.name_cache_enabled then begin
          (match Name_cache.learn env.name_cache key spec with
          | Some _evicted -> obs_runtime_metric env "cache-evict"
          | None -> ());
          obs_runtime_metric env "cache-learn"
        end
    | _ -> ()

(* Run [attempt] along routes for [name], generalizing the stale-retry
   loop: a failure that suggests a stale cached binding ([Bad_context],
   [Not_found], or an IPC failure) evicts the binding used and re-routes
   — landing on the next-deepest cached prefix, or ultimately on the
   prefix server. A final IPC failure with no cached binding in play
   gets one fresh pass: a server-side cached resolution (the prefix
   server's GetPid cache) invalidates itself on the failed forward, so
   retrying through it can succeed. If every attempt fails, the first
   error is returned, as before. *)
let with_stale_retry env name ~first attempt =
  let resolver_handled =
    match env.resolver with
    | Some r -> Vdomains.Resolver.handles r name
    | None -> false
  in
  let rec go r ~fresh_retried ~resolver_retried ~first_err =
    match attempt r with
    | Ok _ as ok -> ok
    | Error e -> (
        let first_err =
          match first_err with None -> Some e | Some _ -> first_err
        in
        let stale_signal =
          match e with
          | Vio.Verr.Ipc _
          | Vio.Verr.Denied (Reply.Bad_context | Reply.Not_found) ->
              true
          | _ -> false
        in
        match r.cached_prefix with
        | Some key when stale_signal ->
            (* On-use invalidation reaches whichever cache supplied the
               binding: the key lives in the resolver's cache for
               resolver-routed names, in the client name cache
               otherwise. *)
            ignore (Name_cache.invalidate env.name_cache key);
            (match env.resolver with
            | Some res when resolver_handled ->
                ignore (Vdomains.Resolver.invalidate res key)
            | Some _ | None -> ());
            obs_runtime_metric env "cache-stale";
            if resolver_handled && resolver_retried then
              (* A fresh walk already re-derived this binding and it
                 still failed: the tree's answer is wrong (a dead leaf
                 server), not stale. Unlike the name cache there is no
                 shallower level to fall back to, so drop to the
                 uncached prefix-server route of last resort. *)
              go (route_uncached env name) ~fresh_retried:true
                ~resolver_retried ~first_err
            else
              go (route env name) ~fresh_retried ~resolver_retried:true
                ~first_err
        | _ ->
            let ipc = match e with Vio.Verr.Ipc _ -> true | _ -> false in
            if ipc && env.name_cache_enabled && not fresh_retried then
              go (route_uncached env name) ~fresh_retried:true
                ~resolver_retried ~first_err
            else Error (Option.value first_err ~default:e))
  in
  go first ~fresh_retried:false ~resolver_retried:false ~first_err:None

(* Send a CSname request along the route; on a failure that suggests a
   stale cached binding, invalidate, fall back and retry. *)
let transact_name env ~code ?payload ?extra_bytes name =
  charge_stub env;
  let op = Vmsg.Op.to_string code in
  let t0 = Vsim.Engine.now (engine env) in
  let first = route env name in
  let span_op = if first.cached_prefix <> None then op ^ "[cached]" else op in
  let root = obs_root env ~op:span_op ~context:env.current.Context.context in
  let attempt r =
    let req = obs_attach env root r.req in
    let msg = Vmsg.request ~name:req ?payload ?extra_bytes code in
    (* A resilience-enabled client stamps its absolute operation
       deadline so a loaded server's admission control can drop the
       request rather than queue it past the point of usefulness. *)
    let msg =
      match env.resilience with
      | Some p -> Vmsg.with_deadline msg (t0 +. p.Vio.Resilience.deadline_ms)
      | None -> msg
    in
    match Kernel.send env.self r.target msg with
    | Error e -> Error (Vio.Verr.Ipc e)
    | Ok (reply, replier) -> (
        match Verr_reply.check reply with
        | Ok m ->
            learn_from_reply env name m.Vmsg.binding;
            Ok (m, replier)
        | Error e -> Error e)
  in
  let first_route = ref (Some first) in
  let last_target = ref None in
  let failovers = ref 0 in
  let result =
    with_resilience env ~root ~t0 (fun () ->
        (* The first resilience attempt reuses the route already taken
           (whose cache metrics are counted); later ones route afresh so
           re-resolution can land on a successor server. *)
        let r =
          match !first_route with
          | Some r ->
              first_route := None;
              r
          | None -> route env name
        in
        note_failover env ~root ~last_target ~failovers r;
        with_stale_retry env name ~first:r attempt)
  in
  obs_done env ~op ~t0 root (outcome_of_result result);
  result

(* --- naming operations --- *)

(* Map a name that denotes a context to its (server-pid, context-id).
   With the cache enabled, the binding is learned from the stamp the
   answering server put into the reply. *)
let resolve env name =
  match transact_name env ~code:Vmsg.Op.map_context name with
  | Error e -> Error e
  | Ok (reply, _) -> (
      match reply.Vmsg.payload with
      | Vmsg.P_context_spec spec -> Ok spec
      | _ -> Error (Vio.Verr.Protocol "MapContext reply carried no context"))

(* The analogue of Unix chdir (§6). *)
let change_context env name =
  match resolve env name with
  | Error e -> Error e
  | Ok spec ->
      env.current <- spec;
      env.current_name <- Some name;
      Ok spec

(* On a transport-level retry, re-resolve the current context by the
   name it was last bound from: if its server crashed, the prefix
   server's logical bindings (refreshed via GetPid) point at the live
   successor, so relative names recover without a manual rebind. The
   probe is one-shot — the policy is disabled for its duration so it
   cannot recurse into the retry loop. *)
let () =
  rebind_current :=
    fun env ->
      match env.current_name with
      | None -> ()
      | Some name ->
          if not env.rebinding then begin
            env.rebinding <- true;
            let saved = env.resilience in
            env.resilience <- None;
            (match resolve env name with
            | Ok spec when spec <> env.current ->
                env.current <- spec;
                obs_runtime_metric env "rebind"
            | Ok _ | Error _ -> ());
            env.resilience <- saved;
            env.rebinding <- false
          end

(* Determine a printable CSname for the current context (§6 inverse
   mapping): ask the prefix server first, then the implementing server
   for its local path. *)
let current_context_name env =
  charge_stub env;
  let ask target payload =
    match Kernel.send env.self target payload with
    | Error e -> Error (Vio.Verr.Ipc e)
    | Ok (reply, _) -> (
        match (Vmsg.reply_code reply, reply.Vmsg.payload) with
        | Some Reply.Ok, Vmsg.P_name n -> Ok n
        | Some Reply.Ok, _ -> Error (Vio.Verr.Protocol "inverse map reply")
        | Some code, _ -> Error (Vio.Verr.Denied code)
        | None, _ -> Error (Vio.Verr.Protocol "expected reply"))
  in
  let via_prefix =
    ask env.prefix_server
      (Vmsg.request ~payload:(Vmsg.P_context_spec env.current)
         Vmsg.Op.inverse_map_context)
  in
  let via_server () =
    ask env.current.Context.server
      (Vmsg.request
         ~payload:(Vmsg.P_context_id env.current.Context.context)
         Vmsg.Op.inverse_map_context)
  in
  match via_prefix with
  | Ok prefix_name -> (
      (* Append the server-local path when available. *)
      match via_server () with
      | Ok "/" | Error _ -> Ok prefix_name
      | Ok path -> Ok (prefix_name ^ path))
  | Error _ -> via_server ()

(* --- file-like access (the V I/O protocol over the naming layer) --- *)

let open_ env ~mode name =
  (* The stub charge happens inside [Vio.Client.open_at]. *)
  let op = Vmsg.Op.to_string Vmsg.Op.open_instance in
  let t0 = Vsim.Engine.now (engine env) in
  let first = route env name in
  let span_op = if first.cached_prefix <> None then op ^ "[cached]" else op in
  let root = obs_root env ~op:span_op ~context:env.current.Context.context in
  let attempt r =
    let req = obs_attach env root r.req in
    let deadline =
      Option.map
        (fun p -> t0 +. p.Vio.Resilience.deadline_ms)
        env.resilience
    in
    Vio.Client.open_at env.self
      ~learn:(fun b -> learn_from_reply env name (Some b))
      ?deadline ~server:r.target ~req ~mode ()
  in
  let first_route = ref (Some first) in
  let last_target = ref None in
  let failovers = ref 0 in
  let result =
    with_resilience env ~root ~t0 (fun () ->
        let r =
          match !first_route with
          | Some r ->
              first_route := None;
              r
          | None -> route env name
        in
        note_failover env ~root ~last_target ~failovers r;
        with_stale_retry env name ~first:r attempt)
  in
  obs_done env ~op ~t0 root (outcome_of_result result);
  result

let with_instance env ~mode name f =
  match open_ env ~mode name with
  | Error e -> Error e
  | Ok instance ->
      let result = f instance in
      (* Release regardless; surface the first error. *)
      let released = Vio.Client.release env.self instance in
      (match (result, released) with
      | (Error _ as e), _ -> e
      | Ok v, Ok () -> Ok v
      | Ok _, (Error _ as e) -> e)

let read_file env name =
  with_instance env ~mode:Vmsg.Read name (fun instance ->
      Vio.Client.read_all env.self instance)

let write_file env name data =
  with_instance env ~mode:Vmsg.Write name (fun instance ->
      Vio.Client.write_all env.self instance data)

let append_file env name data =
  with_instance env ~mode:Vmsg.Append name (fun instance ->
      Vio.Client.write_all env.self instance data)

(* Read the context directory of [name] (§5.6): open the context as a
   file of description records. *)
let list_directory env name =
  with_instance env ~mode:Vmsg.Directory_listing name (fun instance ->
      Vio.Client.read_directory env.self instance)

(* --- object operations --- *)

let expect_ok = function
  | Error e -> Error e
  | Ok ((_ : Vmsg.t), (_ : Pid.t)) -> Ok ()

let query env name =
  match transact_name env ~code:Vmsg.Op.query_name name with
  | Error e -> Error e
  | Ok (reply, _) -> (
      match reply.Vmsg.payload with
      | Vmsg.P_descriptor d -> Ok d
      | _ -> Error (Vio.Verr.Protocol "QueryName reply carried no descriptor"))

let modify env name descriptor =
  expect_ok
    (transact_name env ~code:Vmsg.Op.modify_name
       ~payload:(Vmsg.P_descriptor descriptor) name)

let create env ?(directory = false) name =
  expect_ok
    (transact_name env ~code:Vmsg.Op.create_object
       ~payload:(Vmsg.P_create { directory }) name)

let remove env name = expect_ok (transact_name env ~code:Vmsg.Op.remove_object name)

let rename env name ~new_name =
  expect_ok
    (transact_name env ~code:Vmsg.Op.rename_object ~payload:(Vmsg.P_name new_name)
       ~extra_bytes:(String.length new_name) name)

(* Copy a file by name, possibly across servers: read through one
   context, write through another. *)
let copy env ~src ~dst =
  match read_file env src with
  | Error e -> Error e
  | Ok data -> write_file env dst data

(* --- prefix management --- *)

let add_prefix env prefix target =
  let payload =
    match target with
    | `Static spec -> Vmsg.P_context_spec spec
    | `Logical (service, context) -> Vmsg.P_logical_spec { service; context }
  in
  charge_stub env;
  let req = Csname.make_req prefix in
  let msg = Vmsg.request ~name:req ~payload Vmsg.Op.add_context_name in
  match Kernel.send env.self env.prefix_server msg with
  | Error e -> Error (Vio.Verr.Ipc e)
  | Ok (reply, _) -> Result.map (fun _ -> ()) (Verr_reply.check reply)

let delete_prefix env prefix =
  charge_stub env;
  let req = Csname.make_req prefix in
  let msg = Vmsg.request ~name:req Vmsg.Op.delete_context_name in
  match Kernel.send env.self env.prefix_server msg with
  | Error e -> Error (Vio.Verr.Ipc e)
  | Ok (reply, _) -> Result.map (fun _ -> ()) (Verr_reply.check reply)

(* Define a cross-server pointer: a name in one (storage) context that
   points at a context on another server (the curved arrow of
   Figure 4). *)
let link env name ~target =
  expect_ok
    (transact_name env ~code:Vmsg.Op.add_context_name
       ~payload:(Vmsg.P_context_spec target) name)
