(* The standard run-time library (§6): the procedural interface programs
   use for system services, hiding the message interface.

   Every CSname-handling routine goes through one common routing
   routine: if the name starts with '[', the request is sent to the
   workstation's context prefix server (in its default context);
   otherwise it is sent directly to the server implementing the current
   context, with the current context identifier filled into the message.
   "The code that checks for the '[' character is localized in a single
   common routine." *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Service = Vkernel.Service
module Calibration = Vnet.Calibration
open Vnaming

type env = {
  self : Vmsg.t Kernel.self;
  prefix_server : Pid.t;
  mutable current : Context.spec;
  (* Optional client-side cache of prefix -> context bindings: the
     ablation the paper argues against ("caching the name in the client
     would introduce inconsistency problems", §2.2). *)
  mutable prefix_cache_enabled : bool;
  prefix_cache : (string, Context.spec) Hashtbl.t;
  cache_hits : Vsim.Stats.Counter.t;
  cache_stale : Vsim.Stats.Counter.t;
}

let engine env = Kernel.engine_of_domain (Kernel.domain_of_self env.self)
let self env = env.self
let current_context env = env.current
let set_current_context env spec = env.current <- spec

let enable_prefix_cache env flag =
  env.prefix_cache_enabled <- flag;
  if not flag then Hashtbl.reset env.prefix_cache

let cache_hit_count env = Vsim.Stats.Counter.value env.cache_hits
let cache_stale_count env = Vsim.Stats.Counter.value env.cache_stale

(* [make self ~current] builds a program environment: the program is
   passed its current context; the workstation's context prefix server
   is bound via the local service table. *)
let make self ~current =
  match Kernel.get_pid self ~service:Service.Id.context_prefix Service.Local with
  | None -> Error (Vio.Verr.Denied Reply.No_server)
  | Some prefix_server ->
      Ok
        {
          self;
          prefix_server;
          current;
          prefix_cache_enabled = false;
          prefix_cache = Hashtbl.create 8;
          cache_hits = Vsim.Stats.Counter.create "prefix-cache.hits";
          cache_stale = Vsim.Stats.Counter.create "prefix-cache.stale";
        }

(* --- the single common routing routine --- *)

type route = { target : Pid.t; req : Csname.req; cached_prefix : string option }

let route env name =
  let req = Csname.make_req name in
  if Csname.starts_with_prefix req then
    if env.prefix_cache_enabled then
      match Csname.parse_prefix req with
      | Ok (prefix, rest) when Hashtbl.mem env.prefix_cache prefix ->
          let spec = Hashtbl.find env.prefix_cache prefix in
          Vsim.Stats.Counter.incr env.cache_hits;
          {
            target = spec.Context.server;
            req = { rest with Csname.context = spec.Context.context };
            cached_prefix = Some prefix;
          }
      | _ -> { target = env.prefix_server; req; cached_prefix = None }
    else { target = env.prefix_server; req; cached_prefix = None }
  else
    {
      target = env.current.Context.server;
      req = { req with Csname.context = env.current.Context.context };
      cached_prefix = None;
    }

let charge_stub env = Vsim.Proc.delay (engine env) Calibration.client_stub_cpu

(* --- observability ---

   Every named operation gets (when a hub is attached to the domain) a
   latency histogram sample keyed (workstation, "runtime", op), and —
   when tracing is on — one root span per operation; the request sent
   carries the root's child context, so server-side hops hang under it.
   One root span covers all retry attempts of an operation. *)

let obs_hub env = Kernel.obs (Kernel.domain_of_self env.self)

let obs_root env ~op ~context =
  match obs_hub env with
  | None -> None
  | Some hub ->
      let t0 = Vsim.Engine.now (engine env) in
      let ctx = Vobs.Hub.start_trace hub ~now:t0 in
      Option.map
        (fun span -> (hub, span))
        (Vobs.Hub.start_span hub ~ctx ~now:t0 ~op:("client:" ^ op)
           ~host:(Kernel.self_host_name env.self)
           ~server:"runtime"
           ~pid:(Pid.to_int (Kernel.self_pid env.self))
           ~context ~index_from:0)

(* Attach the request of one attempt to the root span. *)
let obs_attach env root (req : Csname.req) =
  match root with
  | None -> req
  | Some (_, span) ->
      let now = Vsim.Engine.now (engine env) in
      { req with Csname.trace = Vobs.Hub.child_ctx span ~now }

let obs_done env ~op ~t0 root outcome =
  (match root with
  | None -> ()
  | Some (hub, span) ->
      Vobs.Hub.finish hub span
        ~now:(Vsim.Engine.now (engine env))
        ~outcome ());
  match obs_hub env with
  | None -> ()
  | Some hub ->
      Vobs.Metrics.observe (Vobs.Hub.metrics hub)
        ~host:(Kernel.self_host_name env.self)
        ~server:"runtime" ~op
        (Vsim.Engine.now (engine env) -. t0)

let outcome_of_result = function
  | Ok _ -> Reply.to_string Reply.Ok
  | Error e -> Vio.Verr.to_string e

(* Send a CSname request along the route; on a failure that suggests a
   stale cached binding, invalidate and retry through the prefix
   server. *)
let transact_name env ~code ?payload ?extra_bytes name =
  charge_stub env;
  let op = Vmsg.Op.to_string code in
  let t0 = Vsim.Engine.now (engine env) in
  let root = obs_root env ~op ~context:env.current.Context.context in
  let attempt r =
    let req = obs_attach env root r.req in
    let msg = Vmsg.request ~name:req ?payload ?extra_bytes code in
    match Kernel.send env.self r.target msg with
    | Error e -> Error (Vio.Verr.Ipc e)
    | Ok (reply, replier) -> (
        match Verr_reply.check reply with
        | Ok m -> Ok (m, replier)
        | Error e -> Error e)
  in
  let r = route env name in
  let result =
    match attempt r with
    | Error
        (Vio.Verr.Ipc _ | Vio.Verr.Denied (Reply.Bad_context | Reply.Not_found))
      as first
      when r.cached_prefix <> None -> (
        (* The cached binding may be stale: drop it and go through the
           prefix server. *)
        Vsim.Stats.Counter.incr env.cache_stale;
        (match r.cached_prefix with
        | Some p -> Hashtbl.remove env.prefix_cache p
        | None -> ());
        match attempt { (route env name) with cached_prefix = None } with
        | Ok _ as ok -> ok
        | Error _ -> first)
    | result -> result
  in
  obs_done env ~op ~t0 root (outcome_of_result result);
  result

(* --- naming operations --- *)

(* Map a name that denotes a context to its (server-pid, context-id),
   learning the binding for the cache when enabled. *)
let resolve env name =
  match transact_name env ~code:Vmsg.Op.map_context name with
  | Error e -> Error e
  | Ok (reply, _) -> (
      match reply.Vmsg.payload with
      | Vmsg.P_context_spec spec ->
          (if env.prefix_cache_enabled then
             let req = Csname.make_req name in
             match Csname.parse_prefix req with
             | Ok (prefix, rest) when Csname.remaining rest = "" ->
                 Hashtbl.replace env.prefix_cache prefix spec
             | _ -> ());
          Ok spec
      | _ -> Error (Vio.Verr.Protocol "MapContext reply carried no context"))

(* The analogue of Unix chdir (§6). *)
let change_context env name =
  match resolve env name with
  | Error e -> Error e
  | Ok spec ->
      env.current <- spec;
      Ok spec

(* Determine a printable CSname for the current context (§6 inverse
   mapping): ask the prefix server first, then the implementing server
   for its local path. *)
let current_context_name env =
  charge_stub env;
  let ask target payload =
    match Kernel.send env.self target payload with
    | Error e -> Error (Vio.Verr.Ipc e)
    | Ok (reply, _) -> (
        match (Vmsg.reply_code reply, reply.Vmsg.payload) with
        | Some Reply.Ok, Vmsg.P_name n -> Ok n
        | Some Reply.Ok, _ -> Error (Vio.Verr.Protocol "inverse map reply")
        | Some code, _ -> Error (Vio.Verr.Denied code)
        | None, _ -> Error (Vio.Verr.Protocol "expected reply"))
  in
  let via_prefix =
    ask env.prefix_server
      (Vmsg.request ~payload:(Vmsg.P_context_spec env.current)
         Vmsg.Op.inverse_map_context)
  in
  let via_server () =
    ask env.current.Context.server
      (Vmsg.request
         ~payload:(Vmsg.P_context_id env.current.Context.context)
         Vmsg.Op.inverse_map_context)
  in
  match via_prefix with
  | Ok prefix_name -> (
      (* Append the server-local path when available. *)
      match via_server () with
      | Ok "/" | Error _ -> Ok prefix_name
      | Ok path -> Ok (prefix_name ^ path))
  | Error _ -> via_server ()

(* --- file-like access (the V I/O protocol over the naming layer) --- *)

let open_ env ~mode name =
  (* The stub charge happens inside [Vio.Client.open_at]. *)
  let op = Vmsg.Op.to_string Vmsg.Op.open_instance in
  let t0 = Vsim.Engine.now (engine env) in
  let root = obs_root env ~op ~context:env.current.Context.context in
  let r = route env name in
  let req = obs_attach env root r.req in
  let result = Vio.Client.open_at env.self ~server:r.target ~req ~mode in
  obs_done env ~op ~t0 root (outcome_of_result result);
  result

let with_instance env ~mode name f =
  match open_ env ~mode name with
  | Error e -> Error e
  | Ok instance ->
      let result = f instance in
      (* Release regardless; surface the first error. *)
      let released = Vio.Client.release env.self instance in
      (match (result, released) with
      | (Error _ as e), _ -> e
      | Ok v, Ok () -> Ok v
      | Ok _, (Error _ as e) -> e)

let read_file env name =
  with_instance env ~mode:Vmsg.Read name (fun instance ->
      Vio.Client.read_all env.self instance)

let write_file env name data =
  with_instance env ~mode:Vmsg.Write name (fun instance ->
      Vio.Client.write_all env.self instance data)

let append_file env name data =
  with_instance env ~mode:Vmsg.Append name (fun instance ->
      Vio.Client.write_all env.self instance data)

(* Read the context directory of [name] (§5.6): open the context as a
   file of description records. *)
let list_directory env name =
  with_instance env ~mode:Vmsg.Directory_listing name (fun instance ->
      Vio.Client.read_directory env.self instance)

(* --- object operations --- *)

let expect_ok = function
  | Error e -> Error e
  | Ok ((_ : Vmsg.t), (_ : Pid.t)) -> Ok ()

let query env name =
  match transact_name env ~code:Vmsg.Op.query_name name with
  | Error e -> Error e
  | Ok (reply, _) -> (
      match reply.Vmsg.payload with
      | Vmsg.P_descriptor d -> Ok d
      | _ -> Error (Vio.Verr.Protocol "QueryName reply carried no descriptor"))

let modify env name descriptor =
  expect_ok
    (transact_name env ~code:Vmsg.Op.modify_name
       ~payload:(Vmsg.P_descriptor descriptor) name)

let create env ?(directory = false) name =
  expect_ok
    (transact_name env ~code:Vmsg.Op.create_object
       ~payload:(Vmsg.P_create { directory }) name)

let remove env name = expect_ok (transact_name env ~code:Vmsg.Op.remove_object name)

let rename env name ~new_name =
  expect_ok
    (transact_name env ~code:Vmsg.Op.rename_object ~payload:(Vmsg.P_name new_name)
       ~extra_bytes:(String.length new_name) name)

(* Copy a file by name, possibly across servers: read through one
   context, write through another. *)
let copy env ~src ~dst =
  match read_file env src with
  | Error e -> Error e
  | Ok data -> write_file env dst data

(* --- prefix management --- *)

let add_prefix env prefix target =
  let payload =
    match target with
    | `Static spec -> Vmsg.P_context_spec spec
    | `Logical (service, context) -> Vmsg.P_logical_spec { service; context }
  in
  charge_stub env;
  let req = Csname.make_req prefix in
  let msg = Vmsg.request ~name:req ~payload Vmsg.Op.add_context_name in
  match Kernel.send env.self env.prefix_server msg with
  | Error e -> Error (Vio.Verr.Ipc e)
  | Ok (reply, _) -> Result.map (fun _ -> ()) (Verr_reply.check reply)

let delete_prefix env prefix =
  charge_stub env;
  let req = Csname.make_req prefix in
  let msg = Vmsg.request ~name:req Vmsg.Op.delete_context_name in
  match Kernel.send env.self env.prefix_server msg with
  | Error e -> Error (Vio.Verr.Ipc e)
  | Ok (reply, _) -> Result.map (fun _ -> ()) (Verr_reply.check reply)

(* Define a cross-server pointer: a name in one (storage) context that
   points at a context on another server (the curved arrow of
   Figure 4). *)
let link env name ~target =
  expect_ok
    (transact_name env ~code:Vmsg.Op.add_context_name
       ~payload:(Vmsg.P_context_spec target) name)
