(** Apply a {!Plan} to a live scenario: every event is scheduled on the
    scenario's engine; applied (and skipped) actions are recorded in an
    ordered timeline — the replay-identity artifact — and counted under
    ("fault", "injector", kind) metrics. Events that no longer make
    sense at their fire time (crash of a down host, restart of an up
    one) are skipped, so overlapping generated episodes compose
    safely. *)

module Ethernet = Vnet.Ethernet

type t

(** [install ?on_restart scenario plan] schedules the plan. Call before
    running the engine past the plan's first event. [on_restart addr]
    runs right after a host restart — the hook reboots the services
    that should live there (e.g. [File_server.restart_from]), which
    re-registers them for logical-binding re-resolution. *)
val install :
  ?on_restart:(Ethernet.addr -> unit) -> Vworkload.Scenario.t -> Plan.t -> t

(** Applied and skipped actions, in application order, with simulated
    times. *)
val timeline : t -> (float * string) list

val skipped : t -> int
val plan : t -> Plan.t
val pp : Format.formatter -> t -> unit
