(** Apply a {!Plan} to a live scenario: every event is scheduled on the
    scenario's engine; applied (and skipped) actions are recorded in an
    ordered timeline — the replay-identity artifact — and counted under
    ("fault", "injector", kind) metrics. Events that no longer make
    sense at their fire time (crash of a down host, restart of an up
    one) are skipped, so overlapping generated episodes compose
    safely. *)

module Ethernet = Vnet.Ethernet

type t

(** [install ?on_restart ?on_heal scenario plan] schedules the plan.
    Call before running the engine past the plan's first event.
    [on_restart addr] runs right after a host restart — the hook
    reboots the services that should live there (e.g.
    [File_server.restart_from]), which re-registers them for
    logical-binding re-resolution. [on_heal a b] runs right after a
    partition between [a] and [b] heals — the hook reconverges
    replicated state that the partition let drift (e.g.
    [Replica.sync], replaying the group write log to members that
    missed fan-outs while unreachable). *)
val install :
  ?on_restart:(Ethernet.addr -> unit) ->
  ?on_heal:(Ethernet.addr -> Ethernet.addr -> unit) ->
  Vworkload.Scenario.t ->
  Plan.t ->
  t

(** Applied and skipped actions, in application order, with simulated
    times. *)
val timeline : t -> (float * string) list

val skipped : t -> int
val plan : t -> Plan.t

(** The applied faults as attribution windows: each runs until the
    applied action that recovered it (restart, heal, next loss/latency
    change), or [horizon_ms] if never recovered. Skipped events
    attribute nothing. *)
val attribution_faults :
  t -> horizon_ms:float -> Vobs.Attribution.fault list

val pp : Format.formatter -> t -> unit
