(** A fault plan: pure, seed-deterministic data describing what breaks
    when — host crash/restart, pairwise partition/heal, network loss
    bursts, slow-host latency inflation. {!generate} never touches an
    engine or clock, so a seed replays the identical plan; applying a
    plan is {!Injector}'s job. *)

module Ethernet = Vnet.Ethernet
module Topology = Vnet.Topology

type link = Topology.node * Topology.node
(** One directed link of a {!Topology.Switched} fabric. *)

type action =
  | Crash of Ethernet.addr
  | Restart of Ethernet.addr
  | Partition of Ethernet.addr * Ethernet.addr
  | Heal of Ethernet.addr * Ethernet.addr
  | Loss of float  (** set the network loss probability *)
  | Slow of Ethernet.addr * float  (** extra receive latency ms; 0 restores *)
  | Link_cut of link  (** cut one directed link (switched fabric) *)
  | Link_heal of link
  | Link_slow of link * float  (** extra per-hop latency ms; 0 restores *)

type event = { at : float; action : action }

type t = { seed : int; events : event list }
(** [events] sorted by [at]; simultaneous events keep construction
    order. *)

val pp_action : Format.formatter -> action -> unit
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

(** Render the full plan — the replay-identity artifact two same-seed
    runs must agree on byte-for-byte. *)
val to_string : t -> string

val to_json : t -> Vobs.Json.t

(** Sort loose events into a plan. *)
val of_events : ?seed:int -> event list -> t

(** {1 Episode combinators} — each returns the fault and its recovery. *)

val crash_restart :
  addr:Ethernet.addr -> at:float -> downtime_ms:float -> event list

val partition_heal :
  a:Ethernet.addr -> b:Ethernet.addr -> at:float -> duration_ms:float -> event list

val loss_burst : at:float -> duration_ms:float -> p:float -> event list

val slow_host :
  addr:Ethernet.addr -> at:float -> duration_ms:float -> ms:float -> event list

val link_cut_heal : link:link -> at:float -> duration_ms:float -> event list

val slow_link :
  link:link -> at:float -> duration_ms:float -> ms:float -> event list

(** {1 Seeded generation}

    A randomized sequence of episodes between [warmup_ms] and 90% of
    [duration_ms], with exponential gaps of mean [mean_gap_ms]. Only
    fault kinds whose host lists are non-empty are drawn. Every fault
    is paired with its recovery and every episode completes before the
    horizon, so a generated plan always converges: by [duration_ms]
    all hosts are up, partitions healed, loss zero, no host slowed, all
    links up and clean. With the default empty [cuttable_links] and
    [slowable_links] the PRNG draw sequence is unchanged, so pre-fabric
    seeds replay byte-identical plans. *)
val generate :
  seed:int ->
  duration_ms:float ->
  ?warmup_ms:float ->
  ?mean_gap_ms:float ->
  ?crashable:Ethernet.addr list ->
  ?partitionable:Ethernet.addr list ->
  ?slowable:Ethernet.addr list ->
  ?loss_levels:float list ->
  ?cuttable_links:link list ->
  ?slowable_links:link list ->
  unit ->
  t
