(* The invariant checker: what must still be true after a faulty run.

   Three invariants, from the paper's graceful-degradation claim:

   - At-most-once side effects: the kernel's duplicate suppression and
     the client policy of retrying only non-mutating legs mean a marker
     token appended under faults appears exactly once if its operation
     reported success, and at most once if it reported failure.
   - No orphan instances: once every client has finished, no live file
     server still holds an open instance (crashed incarnations lost
     theirs with the crash; restarted ones start empty).
   - Post-heal convergence: after every fault has healed, the given
     names resolve, from every workstation, to a live server process —
     logical bindings re-resolve to restarted successors for free.

   Checks return violations instead of raising, so a benchmark can
   report all of them in one artifact. *)

module Kernel = Vkernel.Kernel
module Runtime = Vruntime.Runtime
module File_server = Vservices.File_server
module Scenario = Vworkload.Scenario

type violation = { invariant : string; detail : string }

let pp_violation ppf v = Fmt.pf ppf "%s: %s" v.invariant v.detail

let to_json violations =
  Vobs.Json.List
    (List.map
       (fun v ->
         Vobs.Json.Obj
           [
             ("invariant", Vobs.Json.String v.invariant);
             ("detail", Vobs.Json.String v.detail);
           ])
       violations)

(* Count non-overlapping occurrences of [token] in [content]. *)
let occurrences ~token content =
  let n = String.length token and len = String.length content in
  if n = 0 then 0
  else begin
    let count = ref 0 and i = ref 0 in
    while !i + n <= len do
      if String.sub content !i n = token then begin
        incr count;
        i := !i + n
      end
      else incr i
    done;
    !count
  end

(* [at_most_once ~tokens content]: [tokens] is the marker client's log —
   each unique token paired with whether its append reported success.
   Success must appear exactly once; failure at most once (the append
   may or may not have landed before the fault hit). *)
let at_most_once ~tokens content =
  List.filter_map
    (fun (token, succeeded) ->
      let n = occurrences ~token content in
      if succeeded && n <> 1 then
        Some
          {
            invariant = "at-most-once";
            detail =
              Fmt.str "token %S reported success but appears %d times" token n;
          }
      else if (not succeeded) && n > 1 then
        Some
          {
            invariant = "at-most-once";
            detail = Fmt.str "token %S (failed op) appears %d times" token n;
          }
      else None)
    tokens

(* [no_orphan_instances servers]: every live file server has released
   all instances once clients are done. *)
let no_orphan_instances servers =
  List.filter_map
    (fun fs ->
      let n = File_server.open_instance_count fs in
      if n = 0 then None
      else
        Some
          {
            invariant = "no-orphan-instances";
            detail =
              Fmt.str "file server %s still holds %d open instance(s)"
                (File_server.name fs) n;
          })
    servers

(* [convergence t ~names] spawns a probe on every workstation resolving
   each name and runs the simulation until the probes finish: each must
   resolve to a live server process. Call it after the fault plan has
   fully healed (a generated plan always has, by its horizon). *)
let convergence (t : Scenario.t) ~names =
  let violations = ref [] in
  let fail ws name reason =
    violations :=
      {
        invariant = "convergence";
        detail = Fmt.str "ws%d: %S %s" ws name reason;
      }
      :: !violations
  in
  Array.iteri
    (fun ws (_ : Scenario.workstation) ->
      ignore
        (Scenario.spawn_client t ~ws ~name:(Fmt.str "probe%d" ws)
           (fun self env ->
             List.iter
               (fun name ->
                 match Runtime.resolve env name with
                 | Error e -> fail ws name (Fmt.str "failed: %a" Vio.Verr.pp e)
                 | Ok spec ->
                     if not (Kernel.alive (Kernel.domain_of_self self)
                               spec.Vnaming.Context.server)
                     then fail ws name "resolved to a dead server")
               names)))
    Scenario.(t.workstations);
  Scenario.run t;
  List.rev !violations
