(* The invariant checker: what must still be true after a faulty run.

   Three invariants, from the paper's graceful-degradation claim:

   - At-most-once side effects: the kernel's duplicate suppression and
     the client policy of retrying only non-mutating legs mean a marker
     token appended under faults appears exactly once if its operation
     reported success, and at most once if it reported failure.
   - No orphan instances: once every client has finished, no live file
     server still holds an open instance (crashed incarnations lost
     theirs with the crash; restarted ones start empty).
   - Post-heal convergence: after every fault has healed, the given
     names resolve, from every workstation, to a live server process —
     logical bindings re-resolve to restarted successors for free.

   Checks return violations instead of raising, so a benchmark can
   report all of them in one artifact. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Runtime = Vruntime.Runtime
module File_server = Vservices.File_server
module Resolver = Vdomains.Resolver
module Scenario = Vworkload.Scenario
module Vmsg = Vnaming.Vmsg

type violation = { invariant : string; detail : string }

let pp_violation ppf v = Fmt.pf ppf "%s: %s" v.invariant v.detail

let to_json violations =
  Vobs.Json.List
    (List.map
       (fun v ->
         Vobs.Json.Obj
           [
             ("invariant", Vobs.Json.String v.invariant);
             ("detail", Vobs.Json.String v.detail);
           ])
       violations)

(* Count non-overlapping occurrences of [token] in [content]. *)
let occurrences ~token content =
  let n = String.length token and len = String.length content in
  if n = 0 then 0
  else begin
    let count = ref 0 and i = ref 0 in
    while !i + n <= len do
      if String.sub content !i n = token then begin
        incr count;
        i := !i + n
      end
      else incr i
    done;
    !count
  end

(* [at_most_once ~tokens content]: [tokens] is the marker client's log —
   each unique token paired with whether its append reported success.
   Success must appear exactly once; failure at most once (the append
   may or may not have landed before the fault hit). *)
let at_most_once ~tokens content =
  List.filter_map
    (fun (token, succeeded) ->
      let n = occurrences ~token content in
      if succeeded && n <> 1 then
        Some
          {
            invariant = "at-most-once";
            detail =
              Fmt.str "token %S reported success but appears %d times" token n;
          }
      else if (not succeeded) && n > 1 then
        Some
          {
            invariant = "at-most-once";
            detail = Fmt.str "token %S (failed op) appears %d times" token n;
          }
      else None)
    tokens

(* [no_orphan_instances servers]: every live file server has released
   all instances once clients are done. *)
let no_orphan_instances servers =
  List.filter_map
    (fun fs ->
      let n = File_server.open_instance_count fs in
      if n = 0 then None
      else
        Some
          {
            invariant = "no-orphan-instances";
            detail =
              Fmt.str "file server %s still holds %d open instance(s)"
                (File_server.name fs) n;
          })
    servers

(* [replica_divergence t ~members ~names] probes every replica member
   DIRECTLY (bypassing balancer and coordinator) with a MapContext for
   each name and requires identical answers: same reply code and, on
   success, same context id. Server pids necessarily differ between
   members, so they are ignored; context ids are inode-derived, and the
   single write coordinator applies every write in the same order to
   identically-initialized members, so ids must match when the replicas
   have converged. Call after the plan has fully healed and any revived
   member has caught up. *)
let replica_divergence (t : Scenario.t) ~members ~names =
  let violations = ref [] in
  (match members with
  | [] | [ _ ] -> ()
  | _ ->
      ignore
        (Scenario.spawn_client t ~ws:0 ~name:"divergence-probe"
           (fun self (_ : Runtime.env) ->
             List.iter
               (fun name ->
                 let probe fs =
                   let msg =
                     Vmsg.request ~name:(Vnaming.Csname.make_req name)
                       Vmsg.Op.map_context
                   in
                   match Kernel.send self (File_server.pid fs) msg with
                   | Error e ->
                       (File_server.name fs, Fmt.str "ipc %a" Kernel.pp_error e)
                   | Ok (reply, _) ->
                       let ctx =
                         match reply.Vmsg.payload with
                         | Vmsg.P_context_spec spec ->
                             Fmt.str " ctx %a" Vnaming.Context.pp_id
                               spec.Vnaming.Context.context
                         | _ -> ""
                       in
                       ( File_server.name fs,
                         Fmt.str "%s%s"
                           (match Vmsg.reply_code reply with
                           | Some code -> Vnaming.Reply.to_string code
                           | None -> "no-reply")
                           ctx )
                 in
                 match List.map probe members with
                 | [] -> ()
                 | (_, first) :: _ as answers ->
                     List.iter
                       (fun (member, answer) ->
                         if answer <> first then
                           violations :=
                             {
                               invariant = "replica-divergence";
                               detail =
                                 Fmt.str "%S: member %s answered %S, expected %S"
                                   name member answer first;
                             }
                             :: !violations)
                       answers)
               names));
      Scenario.run t);
  List.rev !violations

(* [convergence t ~names] spawns a probe on every workstation resolving
   each name and runs the simulation until the probes finish: each must
   resolve to a live server process. Call it after the fault plan has
   fully healed (a generated plan always has, by its horizon). *)
(* [tree_convergence t ~root ~prefix ~names] is the domain-tree
   analogue of [convergence]: after every fault has healed, a COLD
   resolver (empty cache, stale-serving disabled) on every workstation
   must walk the federated tree from [root] and resolve each name to a
   live server, with no stale answers, and every workstation must get
   the same (server, context) answer — a revived mid-tree domain whose
   parent failed to re-stitch its delegation record, or a partitioned
   view of the tree, shows up here as a disagreement or a dead-server
   resolution. *)
let tree_convergence (t : Scenario.t) ~root ~prefix ~names =
  let violations = ref [] in
  let fail ws name reason =
    violations :=
      {
        invariant = "tree-convergence";
        detail = Fmt.str "ws%d: %S %s" ws name reason;
      }
      :: !violations
  in
  let answers : (string, (int * string) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let record name ws answer =
    let l =
      match Hashtbl.find_opt answers name with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.replace answers name l;
          l
    in
    l := (ws, answer) :: !l
  in
  Array.iteri
    (fun ws (_ : Scenario.workstation) ->
      ignore
        (Scenario.spawn_client t ~ws ~name:(Fmt.str "tree-probe%d" ws)
           (fun self (_ : Runtime.env) ->
             let resolver = Resolver.create ~prefix ~root () in
             List.iter
               (fun name ->
                 match Resolver.resolve resolver self name with
                 | Error e -> fail ws name (Fmt.str "failed: %a" Vio.Verr.pp e)
                 | Ok o ->
                     if o.Resolver.served_stale then
                       fail ws name "served stale post-heal"
                     else begin
                       let spec = o.Resolver.spec in
                       let server = spec.Vnaming.Context.server in
                       if
                         not
                           (Kernel.alive (Kernel.domain_of_self self) server)
                       then fail ws name "resolved to a dead server"
                       else
                         record name ws
                           (Fmt.str "pid %d ctx %a" (Pid.to_int server)
                              Vnaming.Context.pp_id
                              spec.Vnaming.Context.context)
                     end)
               names)))
    Scenario.(t.workstations);
  Scenario.run t;
  (* Cross-workstation agreement over the successful answers. *)
  List.iter
    (fun name ->
      match Hashtbl.find_opt answers name with
      | None -> ()
      | Some l -> (
          match List.sort compare !l with
          | [] -> ()
          | (_, first) :: _ as sorted ->
              List.iter
                (fun (ws, a) ->
                  if a <> first then
                    fail ws name (Fmt.str "resolved to %s, expected %s" a first))
                sorted))
    names;
  List.rev !violations

let convergence (t : Scenario.t) ~names =
  let violations = ref [] in
  let fail ws name reason =
    violations :=
      {
        invariant = "convergence";
        detail = Fmt.str "ws%d: %S %s" ws name reason;
      }
      :: !violations
  in
  Array.iteri
    (fun ws (_ : Scenario.workstation) ->
      ignore
        (Scenario.spawn_client t ~ws ~name:(Fmt.str "probe%d" ws)
           (fun self env ->
             List.iter
               (fun name ->
                 match Runtime.resolve env name with
                 | Error e -> fail ws name (Fmt.str "failed: %a" Vio.Verr.pp e)
                 | Ok spec ->
                     if not (Kernel.alive (Kernel.domain_of_self self)
                               spec.Vnaming.Context.server)
                     then fail ws name "resolved to a dead server")
               names)))
    Scenario.(t.workstations);
  Scenario.run t;
  List.rev !violations
