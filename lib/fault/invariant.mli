(** Post-run invariant checks for faulty executions: at-most-once side
    effects, no orphan instances on live file servers, and post-heal
    convergence of names to live servers. Checks return violations
    rather than raising, so a benchmark can report all of them in one
    artifact. *)

type violation = { invariant : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit
val to_json : violation list -> Vobs.Json.t

(** [at_most_once ~tokens content]: for each [(token, op_succeeded)]
    from the marker client, a successful append must appear in
    [content] exactly once and a failed one at most once. *)
val at_most_once : tokens:(string * bool) list -> string -> violation list

(** Every live file server has 0 open instances once clients are
    done. *)
val no_orphan_instances : Vservices.File_server.t list -> violation list

(** Spawn a probe on every workstation resolving each name, run the
    simulation until the probes finish, and require each resolution to
    land on a live server process. Call after the plan has fully
    healed. *)
val convergence : Vworkload.Scenario.t -> names:string list -> violation list

(** The domain-tree analogue of {!convergence}: after every fault has
    healed, a cold resolver (empty cache, stale-serving disabled) on
    every workstation must walk the federated tree from [root] and
    resolve each name to a live server with no stale answers, and all
    workstations must agree on the (server, context) each name maps
    to. An un-restitched delegation to a dead incarnation, or a
    partitioned view of the tree, surfaces here. *)
val tree_convergence :
  Vworkload.Scenario.t ->
  root:Vnaming.Context.spec ->
  prefix:string ->
  names:string list ->
  violation list

(** Probe every replica member directly with a MapContext for each name
    and require identical answers — same reply code and, on success,
    same (inode-derived) context id; member pids are ignored. Call after
    the plan has healed and revived members have caught up. Vacuous for
    fewer than two members. *)
val replica_divergence :
  Vworkload.Scenario.t ->
  members:Vservices.File_server.t list ->
  names:string list ->
  violation list
