(* A fault plan: the pure data describing what breaks when.

   A plan is a time-sorted list of fault actions — host crash/restart,
   pairwise partition/heal, loss bursts, slow-host latency inflation —
   and is a pure function of its inputs: [generate] draws from its own
   PRNG seeded by [seed] and never touches an engine or clock, so the
   same seed replays the identical plan. Applying a plan to a live
   scenario is {!Injector}'s job. *)

module Ethernet = Vnet.Ethernet
module Topology = Vnet.Topology

type link = Topology.node * Topology.node

type action =
  | Crash of Ethernet.addr
  | Restart of Ethernet.addr
  | Partition of Ethernet.addr * Ethernet.addr
  | Heal of Ethernet.addr * Ethernet.addr
  | Loss of float  (* set the network loss probability *)
  | Slow of Ethernet.addr * float  (* extra receive latency, ms; 0 restores *)
  | Link_cut of link  (* cut one directed link of a switched fabric *)
  | Link_heal of link
  | Link_slow of link * float  (* extra per-hop latency, ms; 0 restores *)

type event = { at : float; action : action }

type t = { seed : int; events : event list }  (* sorted by [at], stable *)

let pp_action ppf = function
  | Crash a -> Fmt.pf ppf "crash host%d" a
  | Restart a -> Fmt.pf ppf "restart host%d" a
  | Partition (a, b) -> Fmt.pf ppf "partition host%d/host%d" a b
  | Heal (a, b) -> Fmt.pf ppf "heal host%d/host%d" a b
  | Loss p -> Fmt.pf ppf "loss %.3f" p
  | Slow (a, ms) -> Fmt.pf ppf "slow host%d +%.1fms" a ms
  | Link_cut l -> Fmt.pf ppf "cut link %a" Topology.pp_link l
  | Link_heal l -> Fmt.pf ppf "heal link %a" Topology.pp_link l
  | Link_slow (l, ms) -> Fmt.pf ppf "slow link %a +%.1fms" Topology.pp_link l ms

let pp_event ppf e = Fmt.pf ppf "@[t=%.0f %a@]" e.at pp_action e.action

let pp ppf t =
  Fmt.pf ppf "@[<v>plan seed %d (%d events)@,%a@]" t.seed
    (List.length t.events)
    Fmt.(list ~sep:cut pp_event)
    t.events

let to_string t = Fmt.str "%a" pp t

let action_to_json = function
  | Crash a -> Vobs.Json.Obj [ ("kind", Vobs.Json.String "crash"); ("host", Vobs.Json.Int a) ]
  | Restart a ->
      Vobs.Json.Obj [ ("kind", Vobs.Json.String "restart"); ("host", Vobs.Json.Int a) ]
  | Partition (a, b) ->
      Vobs.Json.Obj
        [
          ("kind", Vobs.Json.String "partition");
          ("a", Vobs.Json.Int a);
          ("b", Vobs.Json.Int b);
        ]
  | Heal (a, b) ->
      Vobs.Json.Obj
        [
          ("kind", Vobs.Json.String "heal");
          ("a", Vobs.Json.Int a);
          ("b", Vobs.Json.Int b);
        ]
  | Loss p ->
      Vobs.Json.Obj [ ("kind", Vobs.Json.String "loss"); ("p", Vobs.Json.Float p) ]
  | Slow (a, ms) ->
      Vobs.Json.Obj
        [
          ("kind", Vobs.Json.String "slow");
          ("host", Vobs.Json.Int a);
          ("ms", Vobs.Json.Float ms);
        ]
  | Link_cut (a, b) ->
      Vobs.Json.Obj
        [
          ("kind", Vobs.Json.String "link-cut");
          ("a", Vobs.Json.String (Topology.node_to_string a));
          ("b", Vobs.Json.String (Topology.node_to_string b));
        ]
  | Link_heal (a, b) ->
      Vobs.Json.Obj
        [
          ("kind", Vobs.Json.String "link-heal");
          ("a", Vobs.Json.String (Topology.node_to_string a));
          ("b", Vobs.Json.String (Topology.node_to_string b));
        ]
  | Link_slow ((a, b), ms) ->
      Vobs.Json.Obj
        [
          ("kind", Vobs.Json.String "link-slow");
          ("a", Vobs.Json.String (Topology.node_to_string a));
          ("b", Vobs.Json.String (Topology.node_to_string b));
          ("ms", Vobs.Json.Float ms);
        ]

let to_json t =
  Vobs.Json.Obj
    [
      ("seed", Vobs.Json.Int t.seed);
      ( "events",
        Vobs.Json.List
          (List.map
             (fun e ->
               Vobs.Json.Obj
                 [
                   ("at_ms", Vobs.Json.Float e.at);
                   ("action", action_to_json e.action);
                 ])
             t.events) );
    ]

(* Stable sort by time: simultaneous events keep construction order, so
   a plan renders (and applies) identically on every run. *)
let sorted events = List.stable_sort (fun a b -> compare a.at b.at) events

let of_events ?(seed = 0) events = { seed; events = sorted events }

(* --- episode combinators (each returns its events; compose freely) --- *)

let crash_restart ~addr ~at ~downtime_ms =
  [ { at; action = Crash addr }; { at = at +. downtime_ms; action = Restart addr } ]

let partition_heal ~a ~b ~at ~duration_ms =
  [
    { at; action = Partition (a, b) };
    { at = at +. duration_ms; action = Heal (a, b) };
  ]

let loss_burst ~at ~duration_ms ~p =
  [ { at; action = Loss p }; { at = at +. duration_ms; action = Loss 0.0 } ]

let slow_host ~addr ~at ~duration_ms ~ms =
  [
    { at; action = Slow (addr, ms) };
    { at = at +. duration_ms; action = Slow (addr, 0.0) };
  ]

let link_cut_heal ~link ~at ~duration_ms =
  [
    { at; action = Link_cut link };
    { at = at +. duration_ms; action = Link_heal link };
  ]

let slow_link ~link ~at ~duration_ms ~ms =
  [
    { at; action = Link_slow (link, ms) };
    { at = at +. duration_ms; action = Link_slow (link, 0.0) };
  ]

(* --- seeded generation --- *)

(* Draw a randomized day of trouble: episodes spaced by exponential
   gaps, each picking one fault kind among those the host lists allow.
   Every fault is paired with its recovery, and every episode completes
   before [duration_ms] (recoveries are clamped), so a generated plan
   always converges: by the horizon all hosts are up, partitions
   healed, loss zero and no host slowed. *)
let generate ~seed ~duration_ms ?(warmup_ms = 5_000.0)
    ?(mean_gap_ms = 8_000.0) ?(crashable = []) ?(partitionable = [])
    ?(slowable = []) ?(loss_levels = [ 0.05; 0.2 ]) ?(cuttable_links = [])
    ?(slowable_links = []) () =
  let prng = Vsim.Prng.create ~seed in
  let pick xs = List.nth xs (Vsim.Prng.int prng (List.length xs)) in
  (* The link kinds append after the host kinds: with the default empty
     link lists the kind list — and therefore every PRNG draw — is
     unchanged, so pre-fabric plans replay byte-identically. *)
  let kinds =
    List.concat
      [
        (if crashable <> [] then [ `Crash ] else []);
        (if List.length partitionable >= 2 then [ `Partition ] else []);
        (if loss_levels <> [] then [ `Loss ] else []);
        (if slowable <> [] then [ `Slow ] else []);
        (if cuttable_links <> [] then [ `Link_cut ] else []);
        (if slowable_links <> [] then [ `Link_slow ] else []);
      ]
  in
  if kinds = [] then { seed; events = [] }
  else begin
    let events = ref [] in
    let horizon = duration_ms *. 0.9 in
    let clamp at d = Float.min (at +. d) horizon in
    let t = ref (warmup_ms +. Vsim.Prng.exponential prng ~mean:mean_gap_ms) in
    while !t < horizon -. 1_000.0 do
      let at = !t in
      let ep =
        match pick kinds with
        | `Crash ->
            let addr = pick crashable in
            let downtime = 1_000.0 +. Vsim.Prng.exponential prng ~mean:2_000.0 in
            crash_restart ~addr ~at ~downtime_ms:(clamp at downtime -. at)
        | `Partition ->
            let a = pick partitionable in
            let b = pick (List.filter (fun x -> x <> a) partitionable) in
            let d = 500.0 +. Vsim.Prng.exponential prng ~mean:1_500.0 in
            partition_heal ~a ~b ~at ~duration_ms:(clamp at d -. at)
        | `Loss ->
            let p = pick loss_levels in
            let d = 500.0 +. Vsim.Prng.exponential prng ~mean:2_000.0 in
            loss_burst ~at ~duration_ms:(clamp at d -. at) ~p
        | `Slow ->
            let addr = pick slowable in
            let ms = 1.0 +. Vsim.Prng.float prng *. 4.0 in
            let d = 1_000.0 +. Vsim.Prng.exponential prng ~mean:3_000.0 in
            slow_host ~addr ~at ~duration_ms:(clamp at d -. at) ~ms
        | `Link_cut ->
            let link = pick cuttable_links in
            let d = 500.0 +. Vsim.Prng.exponential prng ~mean:1_500.0 in
            link_cut_heal ~link ~at ~duration_ms:(clamp at d -. at)
        | `Link_slow ->
            let link = pick slowable_links in
            let ms = 0.5 +. Vsim.Prng.float prng *. 2.0 in
            let d = 1_000.0 +. Vsim.Prng.exponential prng ~mean:3_000.0 in
            slow_link ~link ~at ~duration_ms:(clamp at d -. at) ~ms
      in
      events := ep @ !events;
      t := !t +. Vsim.Prng.exponential prng ~mean:mean_gap_ms
    done;
    { seed; events = sorted !events }
  end
