(* Apply a fault plan to a live scenario.

   [install] schedules every plan event on the scenario's engine. The
   applied actions are recorded (simulated time + rendering) in an
   ordered timeline — the replay-identity artifact E9 compares across
   runs — and counted under ("fault", "injector", kind) when metrics
   are attached. Events that no longer make sense when their time
   arrives (crash of an already-down host, restart of an up one) are
   recorded as skipped rather than applied, so overlapping episodes
   from a generated plan compose safely. *)

module Kernel = Vkernel.Kernel
module Ethernet = Vnet.Ethernet
module Scenario = Vworkload.Scenario

type t = {
  scenario : Scenario.t;
  plan : Plan.t;
  on_restart : Ethernet.addr -> unit;
  on_heal : Ethernet.addr -> Ethernet.addr -> unit;
  mutable applied : (float * string) list;  (* newest first *)
  mutable skipped : int;
}

let timeline t = List.rev t.applied
let skipped t = t.skipped
let plan t = t.plan

let record inj label =
  let now = Vsim.Engine.now (Scenario.(inj.scenario.engine)) in
  inj.applied <- (now, label) :: inj.applied

let metric inj kind =
  Vobs.Metrics.incr
    (Vobs.Hub.metrics Scenario.(inj.scenario.obs))
    ~host:"fault" ~server:"injector" ~op:kind

let skip inj (e : Plan.event) reason =
  inj.skipped <- inj.skipped + 1;
  record inj (Fmt.str "skip (%s): %a" reason Plan.pp_action e.Plan.action)

let apply inj (e : Plan.event) =
  let s = inj.scenario in
  let host addr = Kernel.host_of_addr Scenario.(s.domain) addr in
  match e.Plan.action with
  | Plan.Crash addr -> (
      match host addr with
      | Some h when Kernel.host_is_up h ->
          Kernel.crash_host h;
          metric inj "crash";
          record inj (Fmt.str "%a" Plan.pp_action e.Plan.action)
      | Some _ -> skip inj e "already down"
      | None -> skip inj e "unknown host")
  | Plan.Restart addr -> (
      match host addr with
      | Some h when not (Kernel.host_is_up h) ->
          Kernel.restart_host h;
          metric inj "restart";
          record inj (Fmt.str "%a" Plan.pp_action e.Plan.action);
          (* Revive services: the host is up but empty; the hook reboots
             whatever should live there (e.g. File_server.restart_from),
             which re-registers services for logical re-resolution. *)
          inj.on_restart addr
      | Some _ -> skip inj e "already up"
      | None -> skip inj e "unknown host")
  | Plan.Partition (a, b) ->
      Ethernet.partition Scenario.(s.net) a b;
      metric inj "partition";
      record inj (Fmt.str "%a" Plan.pp_action e.Plan.action)
  | Plan.Heal (a, b) ->
      Ethernet.heal Scenario.(s.net) a b;
      metric inj "heal";
      record inj (Fmt.str "%a" Plan.pp_action e.Plan.action);
      (* Reconverge replicated state: a member partitioned from its
         write coordinator missed fan-outs; the hook replays the group
         write log (e.g. Replica.sync) now that frames flow again. *)
      inj.on_heal a b
  | Plan.Loss p ->
      Ethernet.set_loss_probability Scenario.(s.net) p;
      metric inj "loss";
      record inj (Fmt.str "%a" Plan.pp_action e.Plan.action)
  | Plan.Slow (addr, ms) ->
      Ethernet.set_extra_latency Scenario.(s.net) addr ms;
      metric inj "slow";
      record inj (Fmt.str "%a" Plan.pp_action e.Plan.action)

let install ?(on_restart = fun (_ : Ethernet.addr) -> ())
    ?(on_heal = fun (_ : Ethernet.addr) (_ : Ethernet.addr) -> ()) scenario plan
    =
  let inj =
    { scenario; plan; on_restart; on_heal; applied = []; skipped = 0 }
  in
  List.iter
    (fun (e : Plan.event) ->
      Vsim.Engine.schedule_at
        Scenario.(scenario.engine)
        e.Plan.at
        (fun () -> apply inj e))
    plan.Plan.events;
  inj

let pp ppf t =
  Fmt.pf ppf "@[<v>injector: %d applied, %d skipped (plan seed %d)@,%a@]"
    (List.length t.applied - t.skipped)
    t.skipped t.plan.Plan.seed
    Fmt.(
      list ~sep:cut (fun ppf (at, label) -> pf ppf "t=%.0f %s" at label))
    (timeline t)
