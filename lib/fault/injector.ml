(* Apply a fault plan to a live scenario.

   [install] schedules every plan event on the scenario's engine. The
   applied actions are recorded (simulated time + rendering) in an
   ordered timeline — the replay-identity artifact E9 compares across
   runs — and counted under ("fault", "injector", kind) when metrics
   are attached. Events that no longer make sense when their time
   arrives (crash of an already-down host, restart of an up one) are
   recorded as skipped rather than applied, so overlapping episodes
   from a generated plan compose safely. *)

module Kernel = Vkernel.Kernel
module Ethernet = Vnet.Ethernet
module Scenario = Vworkload.Scenario

type t = {
  scenario : Scenario.t;
  plan : Plan.t;
  on_restart : Ethernet.addr -> unit;
  on_heal : Ethernet.addr -> Ethernet.addr -> unit;
  mutable applied : (float * string) list;  (* newest first *)
  mutable applied_actions : (float * Plan.action) list;  (* newest first *)
  mutable skipped : int;
}

let timeline t = List.rev t.applied
let skipped t = t.skipped
let plan t = t.plan

(* Every timeline entry — applied or skipped — also lands in the
   scenario hub's flight recorder (one boolean test when the recorder
   is off), so a dump shows the injected faults inline with the kernel
   and network events they caused. *)
let record inj label =
  let now = Vsim.Engine.now (Scenario.(inj.scenario.engine)) in
  inj.applied <- (now, label) :: inj.applied;
  Vobs.Hub.event
    Scenario.(inj.scenario.obs)
    ~at:now ~cat:Vobs.Eventlog.Fault ~host:"injector" label

(* An applied (not skipped) action, kept structured for attribution. *)
let applied inj (e : Plan.event) =
  let now = Vsim.Engine.now (Scenario.(inj.scenario.engine)) in
  inj.applied_actions <- (now, e.Plan.action) :: inj.applied_actions;
  record inj (Fmt.str "%a" Plan.pp_action e.Plan.action)

let metric inj kind =
  Vobs.Metrics.incr
    (Vobs.Hub.metrics Scenario.(inj.scenario.obs))
    ~host:"fault" ~server:"injector" ~op:kind

let skip inj (e : Plan.event) reason =
  inj.skipped <- inj.skipped + 1;
  record inj (Fmt.str "skip (%s): %a" reason Plan.pp_action e.Plan.action)

let apply inj (e : Plan.event) =
  let s = inj.scenario in
  let host addr = Kernel.host_of_addr Scenario.(s.domain) addr in
  match e.Plan.action with
  | Plan.Crash addr -> (
      match host addr with
      | Some h when Kernel.host_is_up h ->
          Kernel.crash_host h;
          metric inj "crash";
          applied inj e
      | Some _ -> skip inj e "already down"
      | None -> skip inj e "unknown host")
  | Plan.Restart addr -> (
      match host addr with
      | Some h when not (Kernel.host_is_up h) ->
          Kernel.restart_host h;
          metric inj "restart";
          applied inj e;
          (* Revive services: the host is up but empty; the hook reboots
             whatever should live there (e.g. File_server.restart_from),
             which re-registers services for logical re-resolution. *)
          inj.on_restart addr
      | Some _ -> skip inj e "already up"
      | None -> skip inj e "unknown host")
  | Plan.Partition (a, b) ->
      Ethernet.partition Scenario.(s.net) a b;
      metric inj "partition";
      applied inj e
  | Plan.Heal (a, b) ->
      Ethernet.heal Scenario.(s.net) a b;
      metric inj "heal";
      applied inj e;
      (* Reconverge replicated state: a member partitioned from its
         write coordinator missed fan-outs; the hook replays the group
         write log (e.g. Replica.sync) now that frames flow again. *)
      inj.on_heal a b
  | Plan.Loss p ->
      Ethernet.set_loss_probability Scenario.(s.net) p;
      metric inj "loss";
      applied inj e
  | Plan.Slow (addr, ms) ->
      Ethernet.set_extra_latency Scenario.(s.net) addr ms;
      metric inj "slow";
      applied inj e
  (* Link actions only make sense on a switched fabric; a plan carrying
     them against a shared medium records skips instead of raising. *)
  | Plan.Link_cut (a, b) -> (
      let net = Scenario.(s.net) in
      let topo = Ethernet.topology net in
      match topo with
      | Vnet.Topology.Shared_medium -> skip inj e "shared medium"
      | Vnet.Topology.Switched _ when not (Vnet.Topology.is_link topo (a, b))
        ->
          skip inj e "not a link"
      | Vnet.Topology.Switched _ when not (Ethernet.link_up net a b) ->
          skip inj e "already cut"
      | Vnet.Topology.Switched _ ->
          Ethernet.set_link_up net a b false;
          metric inj "link-cut";
          applied inj e)
  | Plan.Link_heal (a, b) -> (
      let net = Scenario.(s.net) in
      let topo = Ethernet.topology net in
      match topo with
      | Vnet.Topology.Shared_medium -> skip inj e "shared medium"
      | Vnet.Topology.Switched _ when not (Vnet.Topology.is_link topo (a, b))
        ->
          skip inj e "not a link"
      | Vnet.Topology.Switched _ when Ethernet.link_up net a b ->
          skip inj e "already up"
      | Vnet.Topology.Switched _ ->
          Ethernet.set_link_up net a b true;
          metric inj "link-heal";
          applied inj e)
  | Plan.Link_slow ((a, b), ms) -> (
      let net = Scenario.(s.net) in
      let topo = Ethernet.topology net in
      match topo with
      | Vnet.Topology.Shared_medium -> skip inj e "shared medium"
      | Vnet.Topology.Switched _ when not (Vnet.Topology.is_link topo (a, b))
        ->
          skip inj e "not a link"
      | Vnet.Topology.Switched _ ->
          Ethernet.set_link_extra_latency net a b ms;
          metric inj "link-slow";
          applied inj e)

let install ?(on_restart = fun (_ : Ethernet.addr) -> ())
    ?(on_heal = fun (_ : Ethernet.addr) (_ : Ethernet.addr) -> ()) scenario plan
    =
  let inj =
    {
      scenario;
      plan;
      on_restart;
      on_heal;
      applied = [];
      applied_actions = [];
      skipped = 0;
    }
  in
  List.iter
    (fun (e : Plan.event) ->
      Vsim.Engine.schedule_at
        Scenario.(scenario.engine)
        e.Plan.at
        (fun () -> apply inj e))
    plan.Plan.events;
  inj

(* Render the applied actions down to attribution fault windows: each
   applied fault runs until the applied action that recovers it — the
   restart of the crashed host, the heal of the same (unordered)
   partition pair, the next loss-rate change, the next latency change
   on the same host — or until [horizon_ms] for a fault never
   recovered. Skipped events injected nothing and so attribute
   nothing. *)
let attribution_faults inj ~horizon_ms =
  let applied = List.rev inj.applied_actions in
  let norm (a, b) = if a < b then (a, b) else (b, a) in
  let kind_of = function
    | Plan.Crash _ -> Some "crash"
    | Plan.Partition _ -> Some "partition"
    | Plan.Loss p when p > 0.0 -> Some "loss"
    | Plan.Slow (_, ms) when ms > 0.0 -> Some "slow"
    | Plan.Link_cut _ -> Some "link-cut"
    | Plan.Link_slow (_, ms) when ms > 0.0 -> Some "link-slow"
    | Plan.Restart _ | Plan.Heal _ | Plan.Loss _ | Plan.Slow _
    | Plan.Link_heal _ | Plan.Link_slow _ ->
        None
  in
  let recovers fault cand =
    match (fault, cand) with
    | Plan.Crash x, Plan.Restart y -> x = y
    | Plan.Partition (a, b), Plan.Heal (c, d) -> norm (a, b) = norm (c, d)
    | Plan.Loss _, Plan.Loss _ -> true
    | Plan.Slow (x, _), Plan.Slow (y, _) -> x = y
    | Plan.Link_cut l, Plan.Link_heal l' -> l = l'
    | Plan.Link_slow (l, _), Plan.Link_slow (l', _) -> l = l'
    | _ -> false
  in
  List.filter_map
    (fun (at, action) ->
      match kind_of action with
      | None -> None
      | Some kind ->
          let until =
            List.fold_left
              (fun acc (t, a) ->
                match acc with
                | Some _ -> acc
                | None when t > at && recovers action a -> Some t
                | None -> None)
              None applied
            |> Option.value ~default:horizon_ms
          in
          Some
            {
              Vobs.Attribution.at;
              until;
              kind;
              label = Fmt.str "%a" Plan.pp_action action;
            })
    applied

let pp ppf t =
  Fmt.pf ppf "@[<v>injector: %d applied, %d skipped (plan seed %d)@,%a@]"
    (List.length t.applied - t.skipped)
    t.skipped t.plan.Plan.seed
    Fmt.(
      list ~sep:cut (fun ppf (at, label) -> pf ppf "t=%.0f %s" at label))
    (timeline t)
