(** A name-domain server: one node of the hierarchical federated name
    tree.

    A CSNH server whose objects are naming entries — local sub-contexts,
    delegations to child domain servers, and leaf bindings into object
    servers. Ordinary CSname requests walk and forward per §5.4, so the
    tree is transparent to resolver-less clients; a MapContext request
    carrying the {!P_resolve_step} marker is answered instead of
    forwarded — a {!P_referral} (delegation record on the standard
    {!Vnaming.Vmsg.binding} stamp) when the walk crossed into a child
    domain, a terminal [P_context_spec] when it crossed the
    domain/object boundary or ended here. The caching {!Resolver}
    follows referrals root-to-leaf itself. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
open Vnaming

(** The iterative-resolution wire extensions: the request marker asking
    a domain server to answer rather than forward, and the referral
    reply payload whose delegation record rides the binding stamp. *)
type Vmsg.payload += P_resolve_step | P_referral

(** What a component names inside a domain context. *)
type entry =
  | Subcontext of Context.id  (** a context on this same server *)
  | Child of Context.spec  (** delegation to a child domain server *)
  | Bound of Context.spec  (** leaf binding into an object server *)

type t

(** The apex context a domain server answers in ([Well_known.default]). *)
val apex : Context.id

(** [start host ~name ()] boots a domain server process on [host]. *)
val start : Vmsg.t Kernel.host -> name:string -> unit -> t

(** Boot a fresh process (new pid) over the surviving delegation tables
    of a crashed incarnation — the tables are configuration, durable
    like a disk. Parents must re-stitch their delegation records to the
    new pid via {!set_entry}/{!delegate}. *)
val restart_from : t -> Vmsg.t Kernel.host -> unit -> t

val name : t -> string

(** The serving process; raises if the server was never started. *)
val pid : t -> Pid.t

val spec : t -> ?context:Context.id -> unit -> Context.spec
val stats : t -> Csnh.server_stats

(** {1 Overload protection}

    Off by default; enabling stores the policy on the record and
    installs it on the live process. Like the delegation tables, the
    policy survives {!restart_from}. Default config:
    {!Vservices.Admission.name_server}. *)

val enable_admission :
  t ->
  Vmsg.t Kernel.domain ->
  ?config:Vservices.Admission.config ->
  unit ->
  unit

val disable_admission : t -> Vmsg.t Kernel.domain -> unit
val admission_config : t -> Vservices.Admission.config option

(** {1 Building the tree (configuration, not protocol)} *)

(** Create a local sub-context named [component] under [ctx]
    (default: the apex). *)
val add_subcontext :
  t -> ?ctx:Context.id -> string -> (Context.id, Reply.code) result

(** Add or replace an entry — replacement is how a parent re-stitches a
    delegation to a revived child's new pid. *)
val set_entry :
  t -> ?ctx:Context.id -> string -> entry -> (unit, Reply.code) result

(** [delegate t component child] points [component] at a child domain
    server. *)
val delegate :
  t -> ?ctx:Context.id -> string -> Context.spec -> (unit, Reply.code) result

(** [bind t component target] makes [component] a leaf binding into an
    object server's context. *)
val bind :
  t -> ?ctx:Context.id -> string -> Context.spec -> (unit, Reply.code) result

val remove_entry : t -> ?ctx:Context.id -> string -> (unit, Reply.code) result

(** The entries of a context, sorted by component name. *)
val entries : t -> ?ctx:Context.id -> unit -> (string * entry) list
