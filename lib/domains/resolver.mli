(** The per-host caching resolver role.

    Walks the federated domain tree iteratively — root to leaf,
    following the delegation records domain servers stamp into
    {!Domain_server.P_referral} replies — with a TTL cache of referrals
    and terminal bindings, negative caching of authoritative
    [Not_found]/[Bad_context] answers, stale-serving of expired
    bindings while the tree is unreachable (bounded by the stale
    window), and a delegation-cycle guard.

    A resolver is a per-host role, not a process: clients share its
    cache and run walks on their own fibers, so IPC costs land on the
    operation that needed the resolution. *)

module Kernel = Vkernel.Kernel
open Vnaming

type t

(** A successful resolution: where the client continues interpreting
    the name, and how it was obtained. *)
type outcome = {
  spec : Context.spec;  (** continue interpretation here... *)
  index : int;  (** ...at this index into the name *)
  queries : int;  (** authoritative queries this resolution made *)
  served_stale : bool;  (** answered from an expired entry *)
  cache_key : string option;  (** the prefix the answer is cached under *)
}

type stats = {
  walks : int;
  cache_answers : int;  (** resolved with zero queries *)
  neg_answers : int;  (** failed from a fresh negative entry, zero queries *)
  stale_serves : int;
  queries : int;
  referrals : int;
  loops : int;  (** delegation cycles detected *)
  failures : int;
}

val default_ttl_ms : float
val default_neg_ttl_ms : float

(** [create ~prefix ~root ()] — a resolver answering for
    "[[prefix]]..."-absolute names, walking from the [root] domain
    server. [stale_window_ms] is how long past expiry a terminal
    binding may still be served when a refresh cannot reach the tree
    (0, the default, disables stale-serving). [max_steps] bounds a
    single walk. Raises [Invalid_argument] on non-positive TTLs, a
    negative window, or [max_steps < 1]. *)
val create :
  ?capacity:int ->
  ?ttl_ms:float ->
  ?neg_ttl_ms:float ->
  ?stale_window_ms:float ->
  ?max_steps:int ->
  prefix:string ->
  root:Context.spec ->
  unit ->
  t

val prefix : t -> string
val root : t -> Context.spec

(** Point the resolver at a new root incarnation (after a root
    restart). *)
val rebind_root : t -> Context.spec -> unit

(** Does this resolver answer for [name]? Exactly the names opening
    with its '[prefix]'. *)
val handles : t -> string -> bool

(** [resolve t self name] maps [name]'s domain part to the (server,
    context) that interprets what follows. Zero queries on a fresh
    cache answer; otherwise an iterative walk from the deepest cached
    referral (or the root), one marked MapContext per level. [trace]
    parents each per-level ResolveStep span under the client
    operation's root span. *)
val resolve :
  t ->
  Vmsg.t Kernel.self ->
  ?trace:Vobs.Span.ctx ->
  string ->
  (outcome, Vio.Verr.t) result

(** On-use invalidation: an operation routed through a resolved binding
    proved it wrong. Returns whether the key was cached. *)
val invalidate : t -> string -> bool

(** Feed a terminal binding learned out-of-band (the stamp on an object
    server's successful reply) into the cache under the resolver's
    TTL. *)
val learn : t -> now:float -> string -> Context.spec -> unit

val cache : t -> Name_cache.t
val cache_stats : t -> Name_cache.stats
val stats : t -> stats
