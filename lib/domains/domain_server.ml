(* A name-domain server: one node of the hierarchical federated name
   tree.

   A domain server is a CSNH server whose only objects are naming
   entries: each context is a table mapping component names to local
   sub-contexts, to child domain servers (delegations), or to leaf
   bindings into object servers (the domain/object boundary). Under the
   ordinary protocol it behaves exactly like any §5.4 server — crossing
   into a child delegation or a leaf binding becomes request forwarding,
   so a client without a resolver walks the whole tree transparently,
   one Forward per level.

   The iterative mode is what a caching {!Resolver} speaks: a
   MapContext request carrying the [P_resolve_step] marker asks the
   server to interpret as far as it can and then *answer* instead of
   forwarding. Crossing into a child domain yields a [P_referral] reply
   whose delegation record rides the standard {!Vmsg.binding} stamp —
   (how far interpretation reached, which (server, context) continues
   it) — the same zero-wire-byte path caching clients already learn
   bindings from. Crossing into a leaf binding, or ending on this
   server, yields a terminal [P_context_spec] reply, also stamped. The
   resolver follows referrals root-to-leaf itself, caching each one
   with a TTL.

   The delegation tables are configuration, durable across a crash the
   way a file server's disk is: [restart_from] boots a fresh process
   (new pid) over the surviving tables. Parents holding delegation
   records to the old incarnation re-stitch via [set_entry] — the
   revive hook's job, mirroring how logical prefix bindings re-resolve
   restarted object servers. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Calibration = Vnet.Calibration
open Vnaming

type Vmsg.payload += P_resolve_step | P_referral

type entry =
  | Subcontext of Context.id  (** a context on this same server *)
  | Child of Context.spec  (** delegation to a child domain server *)
  | Bound of Context.spec  (** leaf binding into an object server *)

type t = {
  ds_name : string;
  contexts : (Context.id, (string, entry) Hashtbl.t) Hashtbl.t;
  mutable next_ctx : Context.id;
  stats : Csnh.server_stats;
  mutable pid : Pid.t option;
  (* Overload-protection policy; [None] = admission off. Like the
     delegation tables, it survives [restart_from]: a protected domain
     server comes back protected. *)
  mutable admission_cfg : Vservices.Admission.config option;
}

let apex = Context.Well_known.default

let name t = t.ds_name

let pid t =
  match t.pid with
  | Some p -> p
  | None -> failwith (Fmt.str "domain server %s not started" t.ds_name)

let spec t ?(context = apex) () = Context.spec ~server:(pid t) ~context
let stats t = t.stats

(* Overload protection: stored on the record, installed at every
   (re)spawn — the same adoption pattern as {!Vservices.File_server}. *)
let enable_admission t domain
    ?(config = Vservices.Admission.name_server ()) () =
  t.admission_cfg <- Some config;
  match t.pid with
  | Some p -> Vservices.Admission.install domain p config
  | None -> ()

let disable_admission t domain =
  t.admission_cfg <- None;
  match t.pid with
  | Some p -> Vservices.Admission.uninstall domain p
  | None -> ()

let admission_config t = t.admission_cfg
let table t ctx = Hashtbl.find_opt t.contexts ctx

(* --- building the tree (configuration, not protocol) --- *)

let add_subcontext t ?(ctx = apex) component =
  match table t ctx with
  | None -> Error Reply.Bad_context
  | Some tbl ->
      if Hashtbl.mem tbl component then Error Reply.Duplicate_name
      else begin
        let id = t.next_ctx in
        t.next_ctx <- id + 1;
        Hashtbl.replace t.contexts id (Hashtbl.create 8);
        Hashtbl.replace tbl component (Subcontext id);
        Ok id
      end

(* Add or replace — replacement is how a parent re-stitches a
   delegation to a revived child's new pid. *)
let set_entry t ?(ctx = apex) component entry =
  match table t ctx with
  | None -> Error Reply.Bad_context
  | Some tbl ->
      Hashtbl.replace tbl component entry;
      Ok ()

let delegate t ?ctx component child = set_entry t ?ctx component (Child child)
let bind t ?ctx component target = set_entry t ?ctx component (Bound target)

let remove_entry t ?(ctx = apex) component =
  match table t ctx with
  | None -> Error Reply.Bad_context
  | Some tbl ->
      if Hashtbl.mem tbl component then begin
        Hashtbl.remove tbl component;
        Ok ()
      end
      else Error Reply.Not_found

let entries t ?(ctx = apex) () =
  match table t ctx with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- the CSNH view --- *)

let valid_context t ctx = Hashtbl.mem t.contexts ctx

let lookup t ctx component =
  match table t ctx with
  | None -> Csnh.Stop
  | Some tbl -> (
      match Hashtbl.find_opt tbl component with
      | Some (Subcontext id) -> Csnh.Descend id
      | Some (Child spec) | Some (Bound spec) -> Csnh.Cross spec
      | None -> Csnh.Stop)

let describe_entry t component = function
  | Subcontext id ->
      Descriptor.make ~obj_type:Descriptor.Directory
        ~size:(match table t id with Some tbl -> Hashtbl.length tbl | None -> 0)
        ~owner:t.ds_name component
  | Child _ | Bound _ ->
      Descriptor.make ~obj_type:Descriptor.Directory ~size:0 ~owner:t.ds_name
        component

(* Requests whose interpretation ended on this server under the
   ordinary (recursive) protocol. *)
let handle_csname t (msg : Vmsg.t) ctx remaining =
  let open Vmsg in
  if msg.code = Op.map_context then
    match remaining with
    | [] ->
        ok
          ~payload:
            (P_context_spec (Context.spec ~server:(pid t) ~context:ctx))
          ()
    | _ :: _ -> reply Reply.Not_found
  else if msg.code = Op.query_name then
    match remaining with
    | [] ->
        ok
          ~payload:
            (P_descriptor
               (Descriptor.make ~obj_type:Descriptor.Directory
                  ~size:
                    (match table t ctx with
                    | Some tbl -> Hashtbl.length tbl
                    | None -> 0)
                  ~owner:t.ds_name
                  (Fmt.str "domain:%s" t.ds_name)))
          ()
    | [ component ] -> (
        match table t ctx with
        | None -> reply Reply.Bad_context
        | Some tbl -> (
            match Hashtbl.find_opt tbl component with
            | Some e -> ok ~payload:(P_descriptor (describe_entry t component e)) ()
            | None -> reply Reply.Not_found))
    | _ :: _ -> reply Reply.Not_found
  else if msg.code = Op.add_context_name then
    match (remaining, msg.payload) with
    | [ component ], P_context_spec target -> (
        match table t ctx with
        | None -> reply Reply.Bad_context
        | Some tbl ->
            if Hashtbl.mem tbl component then reply Reply.Duplicate_name
            else begin
              Hashtbl.replace tbl component (Bound target);
              ok ()
            end)
    | _ -> reply Reply.Bad_operation
  else if msg.code = Op.delete_context_name then
    match remaining with
    | [ component ] -> (
        match table t ctx with
        | None -> reply Reply.Bad_context
        | Some tbl -> (
            match Hashtbl.find_opt tbl component with
            | Some (Child _ | Bound _) ->
                Hashtbl.remove tbl component;
                ok ()
            | Some (Subcontext _) -> reply Reply.No_permission
            | None -> reply Reply.Not_found))
    | _ -> reply Reply.Not_found
  else reply Reply.Bad_operation

(* --- the iterative step ---

   Interpret as far as this server can, then answer: a referral (the
   walk crossed into a child domain), a terminal binding (it crossed
   the domain/object boundary, or ended on a context here), or the
   failure code. Costs are charged exactly like the generic loop's, so
   an iterative walk of the tree prices each level identically to a
   recursive hop. *)
let handle_step t self ~sender (req : Csname.req) =
  let domain = Kernel.domain_of_self self in
  let engine = Kernel.engine_of_domain domain in
  let now () = Vsim.Engine.now engine in
  let charge ms = if ms > 0.0 then Vsim.Proc.delay engine ms in
  let hub = Kernel.obs domain in
  let metric op =
    match hub with
    | None -> ()
    | Some h ->
        Vobs.Metrics.incr (Vobs.Hub.metrics h)
          ~host:(Kernel.self_host_name self)
          ~server:(Kernel.self_name self) ~op
  in
  Vsim.Stats.Counter.incr t.stats.requests;
  metric "ResolveStep";
  let t0 = now () in
  let span =
    match hub with
    | None -> None
    | Some h ->
        Vobs.Hub.start_span h ~ctx:req.Csname.trace ~now:t0 ~op:"ResolveStep"
          ~host:(Kernel.self_host_name self)
          ~server:(Kernel.self_name self)
          ~pid:(Pid.to_int (Kernel.self_pid self))
          ~context:req.Csname.context ~index_from:req.Csname.index
  in
  let finish ?index_to outcome =
    match (hub, span) with
    | Some h, Some s -> Vobs.Hub.finish h s ~now:(now ()) ?index_to ~outcome ()
    | _ -> ()
  in
  charge Calibration.csname_common_cpu;
  (* Record which entry kind caused a Cross, to tell a referral from a
     terminal leaf binding. *)
  let crossed_child = ref false in
  let lookup ctx component =
    metric "lookup";
    charge Calibration.component_lookup_cpu;
    let r = lookup t ctx component in
    (match (r, table t ctx) with
    | Csnh.Cross _, Some tbl -> (
        match Hashtbl.find_opt tbl component with
        | Some (Child _) -> crossed_child := true
        | Some _ | None -> crossed_child := false)
    | _ -> ());
    r
  in
  let reply_with m = ignore (Kernel.reply self ~to_:sender m) in
  match Csnh.walk ~valid_context:(valid_context t) ~lookup req with
  | Csnh.Fail code ->
      finish (Reply.to_string code);
      reply_with (Vmsg.reply code)
  | Csnh.Forward (spec, req') ->
      let upto = req'.Csname.index in
      if !crossed_child then begin
        metric "referral";
        finish ~index_to:upto "referral";
        reply_with
          (Vmsg.with_binding
             (Vmsg.ok ~payload:P_referral ())
             { Vmsg.upto; spec })
      end
      else begin
        metric "terminal";
        finish ~index_to:upto "terminal";
        reply_with
          (Vmsg.with_binding
             (Vmsg.ok ~payload:(Vmsg.P_context_spec spec) ())
             { Vmsg.upto; spec })
      end
  | Csnh.Local (ctx, []) ->
      let s = Context.spec ~server:(Kernel.self_pid self) ~context:ctx in
      let upto = String.length req.Csname.name in
      metric "terminal";
      finish ~index_to:upto "terminal";
      reply_with
        (Vmsg.with_binding
           (Vmsg.ok ~payload:(Vmsg.P_context_spec s) ())
           { Vmsg.upto; spec = s })
  | Csnh.Local (_, _ :: _) ->
      (* Components remain but none of them names a domain entry. *)
      finish (Reply.to_string Reply.Not_found);
      reply_with (Vmsg.reply Reply.Not_found)

let is_resolve_step (msg : Vmsg.t) =
  (not msg.Vmsg.is_reply)
  && msg.Vmsg.code = Vmsg.Op.map_context
  && (match msg.Vmsg.payload with P_resolve_step -> true | _ -> false)

(* --- the serving process --- *)

let spawn_server host t =
  let handlers =
    {
      Csnh.valid_context = valid_context t;
      lookup = lookup t;
      handle_csname =
        (fun ~sender:_ msg _req ctx remaining -> handle_csname t msg ctx remaining);
      handle_other = (fun ~sender:_ _ -> None);
    }
  in
  let server_pid =
    Kernel.spawn host ~name:t.ds_name (fun self ->
        let rec loop () =
          let msg, sender = Kernel.receive self in
          (if is_resolve_step msg then
             match msg.Vmsg.name with
             | Some req -> handle_step t self ~sender req
             | None ->
                 ignore (Kernel.reply self ~to_:sender (Vmsg.reply Reply.Illegal_name))
           else Csnh.handle_request self handlers t.stats ~sender msg);
          loop ()
        in
        loop ())
  in
  t.pid <- Some server_pid;
  match t.admission_cfg with
  | Some cfg ->
      Vservices.Admission.install (Kernel.domain_of_host host) server_pid cfg
  | None -> ()

let start host ~name () =
  let t =
    {
      ds_name = name;
      contexts = Hashtbl.create 8;
      next_ctx = Context.Well_known.first_ordinary;
      stats = Csnh.make_stats name;
      pid = None;
      admission_cfg = None;
    }
  in
  Hashtbl.replace t.contexts apex (Hashtbl.create 8);
  spawn_server host t;
  t

(* Boot a fresh process over the surviving delegation tables of a
   crashed incarnation: new pid, same configuration. Parents holding
   delegation records to the old pid re-stitch via [set_entry]. *)
let restart_from old host () =
  let t = { old with pid = None } in
  spawn_server host t;
  t
