(* The per-host caching resolver role.

   Where the ordinary client run-time hands a '[prefix]'-absolute name
   to the workstation's context prefix server (one level of delegation,
   resolved recursively by request forwarding), a resolver walks the
   federated domain tree *iteratively*: it queries the root domain
   server with a marked MapContext ({!Domain_server.P_resolve_step}),
   follows each referral it gets back — delegation records riding the
   standard {!Vmsg.binding} stamp — and stops at the terminal binding
   that crosses the domain/object boundary. Every referral and every
   terminal answer is cached under its name prefix with a TTL, so a
   warm resolver answers without touching the network and a lukewarm
   one resumes its walk at the deepest cached referral rather than at
   the root.

   Authoritative failures ([Not_found]/[Bad_context]) are cached too
   (negative caching, under the full queried name with a shorter TTL):
   left-to-right interpretation means a missing prefix dooms its whole
   subtree, so repeated misses collapse to one authoritative query per
   negative TTL. And when a refresh walk cannot reach the tree — the
   authoritative server crashed or is partitioned away — an expired
   terminal binding within the stale window is served anyway, tagged
   [stale-serve] in the observability stream: availability over
   freshness, bounded by the window.

   A walk keeps the set of (server, index) steps it has visited; a
   delegation cycle (a misconfigured tree whose referrals loop without
   consuming name components) is detected on the first repeat and
   surfaced as a protocol error rather than an infinite walk. The
   [max_steps] bound backstops even index-advancing pathologies.

   The resolver is a per-host role, not a process: clients on the host
   share its cache and run walks on their own fibers, so IPC is charged
   to the operation that needed the resolution. All cache bookkeeping
   is off the simulated clock. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
open Vnaming

type outcome = {
  spec : Context.spec;  (** continue interpretation here... *)
  index : int;  (** ...at this index into the name *)
  queries : int;  (** authoritative queries this resolution made *)
  served_stale : bool;  (** answered from an expired entry *)
  cache_key : string option;  (** the prefix the answer is cached under *)
}

type stats = {
  walks : int;
  cache_answers : int;  (** resolved with zero queries *)
  neg_answers : int;  (** failed from a fresh negative entry, zero queries *)
  stale_serves : int;
  queries : int;
  referrals : int;
  loops : int;  (** delegation cycles detected *)
  failures : int;
}

type t = {
  prefix : string;  (** the '[prefix]' this resolver is authoritative for *)
  mutable root : Context.spec;  (** the root domain server of the tree *)
  cache : Name_cache.t;
  ttl_ms : float;
  neg_ttl_ms : float;
  stale_window_ms : float;  (** 0 disables stale-serving *)
  max_steps : int;
  mutable s_walks : int;
  mutable s_cache_answers : int;
  mutable s_neg_answers : int;
  mutable s_stale_serves : int;
  mutable s_queries : int;
  mutable s_referrals : int;
  mutable s_loops : int;
  mutable s_failures : int;
}

let default_ttl_ms = 5_000.0
let default_neg_ttl_ms = 1_000.0

let create ?(capacity = Name_cache.default_capacity) ?(ttl_ms = default_ttl_ms)
    ?(neg_ttl_ms = default_neg_ttl_ms) ?(stale_window_ms = 0.0) ?(max_steps = 32)
    ~prefix ~root () =
  if ttl_ms <= 0.0 then invalid_arg "Resolver.create: ttl_ms <= 0";
  if neg_ttl_ms <= 0.0 then invalid_arg "Resolver.create: neg_ttl_ms <= 0";
  if stale_window_ms < 0.0 then invalid_arg "Resolver.create: stale_window_ms < 0";
  if max_steps < 1 then invalid_arg "Resolver.create: max_steps < 1";
  {
    prefix;
    root;
    cache = Name_cache.create ~capacity ();
    ttl_ms;
    neg_ttl_ms;
    stale_window_ms;
    max_steps;
    s_walks = 0;
    s_cache_answers = 0;
    s_neg_answers = 0;
    s_stale_serves = 0;
    s_queries = 0;
    s_referrals = 0;
    s_loops = 0;
    s_failures = 0;
  }

let prefix t = t.prefix
let root t = t.root

(* Point the resolver at a new root incarnation (after a root restart). *)
let rebind_root t spec = t.root <- spec

let cache t = t.cache
let cache_stats t = Name_cache.stats t.cache

let stats t =
  {
    walks = t.s_walks;
    cache_answers = t.s_cache_answers;
    neg_answers = t.s_neg_answers;
    stale_serves = t.s_stale_serves;
    queries = t.s_queries;
    referrals = t.s_referrals;
    loops = t.s_loops;
    failures = t.s_failures;
  }

(* Does this resolver answer for [name]? Exactly the names opening with
   its '[prefix]'. *)
let handles t name =
  let p = String.length t.prefix in
  String.length name >= p + 2
  && name.[0] = Csname.prefix_open
  && name.[p + 1] = Csname.prefix_close
  && String.sub name 1 p = t.prefix

let invalidate t key = Name_cache.invalidate t.cache key

(* Feed a terminal binding learned out-of-band (a reply stamp from the
   object server itself) into the cache, under the resolver's TTL. *)
let learn t ~now key spec =
  ignore (Name_cache.learn_at t.cache ~now ~ttl_ms:t.ttl_ms key (Name_cache.Bound spec))

let skip_separators name i =
  let rec loop i =
    if i < String.length name && name.[i] = Csname.separator then loop (i + 1)
    else i
  in
  loop i

(* --- observability: metrics under (host, "resolver", op); delegation
   records on the flight recorder; all off the simulated clock. --- *)

let metric self op =
  match Kernel.obs (Kernel.domain_of_self self) with
  | None -> ()
  | Some hub ->
      Vobs.Metrics.incr (Vobs.Hub.metrics hub)
        ~host:(Kernel.self_host_name self)
        ~server:"resolver" ~op

let obs_event self ~now ~trace fmt =
  match Kernel.obs (Kernel.domain_of_self self) with
  | Some hub when Vobs.Eventlog.enabled (Vobs.Hub.events hub) ->
      Format.kasprintf
        (fun label ->
          Vobs.Hub.event hub ~at:now ~cat:Vobs.Eventlog.Client
            ~host:(Kernel.self_host_name self)
            ~trace label)
        fmt
  | Some _ | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

(* --- the iterative walk --- *)

let negative_code = function
  | Reply.Not_found | Reply.Bad_context -> true
  | _ -> false

(* [resolve t self name] maps [name]'s domain part to the (server,
   context) that interprets what follows it. [trace] parents each
   per-level ResolveStep span under the client operation's root. *)
let resolve t self ?(trace = Vobs.Span.no_ctx) name =
  let engine = Kernel.engine_of_domain (Kernel.domain_of_self self) in
  let now () = Vsim.Engine.now engine in
  t.s_walks <- t.s_walks + 1;
  metric self "walk";
  if not (handles t name) then begin
    t.s_failures <- t.s_failures + 1;
    Error (Vio.Verr.Denied Reply.Illegal_name)
  end
  else begin
    (* The stale-serving candidate: the deepest expired terminal
       binding, usable if the authoritative walk cannot be refreshed
       and the entry is still inside the stale window. *)
    let stale_candidate = ref None in
    let outcome_of_hit ~queries ~served_stale (h : Name_cache.hit) spec =
      {
        spec;
        index = skip_separators name (String.length h.Name_cache.hkey);
        queries;
        served_stale;
        cache_key = Some h.Name_cache.hkey;
      }
    in
    let serve_stale ~queries e =
      match !stale_candidate with
      | Some ((h : Name_cache.hit), spec)
        when t.stale_window_ms > 0.0
             && (match h.Name_cache.hexpires_at with
                | Some at -> now () <= at +. t.stale_window_ms
                | None -> false) ->
          t.s_stale_serves <- t.s_stale_serves + 1;
          metric self "stale-serve";
          obs_event self ~now:(now ()) ~trace:trace.Vobs.Span.trace
            "resolver: serving stale %S (refresh failed: %a)"
            h.Name_cache.hkey Vio.Verr.pp e;
          Ok (outcome_of_hit ~queries ~served_stale:true h spec)
      | _ ->
          t.s_failures <- t.s_failures + 1;
          Error e
    in
    (* One authoritative step: ask [cur] to interpret from [index]. *)
    let rec walk cur index visited queries =
      if queries >= t.max_steps then begin
        t.s_loops <- t.s_loops + 1;
        metric self "loop";
        serve_stale ~queries
          (Vio.Verr.Protocol
             (Fmt.str "resolver: %d steps without an answer (delegation loop?)"
                t.max_steps))
      end
      else if List.mem (cur.Context.server, index) visited then begin
        t.s_loops <- t.s_loops + 1;
        metric self "loop";
        obs_event self ~now:(now ()) ~trace:trace.Vobs.Span.trace
          "resolver: delegation cycle at pid %d index %d"
          (Pid.to_int cur.Context.server)
          index;
        serve_stale ~queries (Vio.Verr.Protocol "resolver: delegation cycle")
      end
      else begin
        let visited = (cur.Context.server, index) :: visited in
        t.s_queries <- t.s_queries + 1;
        metric self "query";
        let req =
          Csname.make_req ~index ~context:cur.Context.context ~trace name
        in
        let msg =
          Vmsg.request ~name:req ~payload:Domain_server.P_resolve_step
            Vmsg.Op.map_context
        in
        match Kernel.send self cur.Context.server msg with
        | Error e -> serve_stale ~queries:(queries + 1) (Vio.Verr.Ipc e)
        | Ok (reply, _) -> (
            match Vmsg.reply_code reply with
            | Some Reply.Ok -> (
                match (reply.Vmsg.payload, reply.Vmsg.binding) with
                | Domain_server.P_referral, Some { Vmsg.upto; spec = child } ->
                    t.s_referrals <- t.s_referrals + 1;
                    metric self "referral";
                    obs_event self ~now:(now ()) ~trace:trace.Vobs.Span.trace
                      "resolver: delegation %S -> pid %d"
                      (String.sub name 0 upto)
                      (Pid.to_int child.Context.server);
                    ignore
                      (Name_cache.learn_at t.cache ~now:(now ()) ~ttl_ms:t.ttl_ms
                         (String.sub name 0 upto)
                         (Name_cache.Delegation child));
                    walk child upto visited (queries + 1)
                | Vmsg.P_context_spec spec, binding ->
                    let upto =
                      match binding with
                      | Some b -> b.Vmsg.upto
                      | None -> String.length name
                    in
                    let key = String.sub name 0 upto in
                    ignore
                      (Name_cache.learn_at t.cache ~now:(now ()) ~ttl_ms:t.ttl_ms
                         key (Name_cache.Bound spec));
                    Ok
                      {
                        spec;
                        index = skip_separators name upto;
                        queries = queries + 1;
                        served_stale = false;
                        cache_key = Some key;
                      }
                | _ ->
                    t.s_failures <- t.s_failures + 1;
                    Error (Vio.Verr.Protocol "resolver: malformed step reply"))
            | Some code ->
                if negative_code code then begin
                  metric self "neg-learn";
                  ignore
                    (Name_cache.learn_at t.cache ~now:(now ())
                       ~ttl_ms:t.neg_ttl_ms name (Name_cache.Negative code))
                end;
                t.s_failures <- t.s_failures + 1;
                Error (Vio.Verr.Denied code)
            | None ->
                t.s_failures <- t.s_failures + 1;
                Error (Vio.Verr.Protocol "resolver: expected a reply"))
      end
    in
    (* Consult the cache: a fresh terminal answers outright; a fresh
       negative fails outright; a fresh referral resumes the walk below
       the root; an expired terminal becomes the stale candidate for a
       walk from the root. *)
    match Name_cache.find_at t.cache ~now:(now ()) name with
    | Some ({ Name_cache.hvalue = Bound spec; hfresh = true; _ } as h) ->
        t.s_cache_answers <- t.s_cache_answers + 1;
        metric self "hit";
        Ok (outcome_of_hit ~queries:0 ~served_stale:false h spec)
    | Some { Name_cache.hvalue = Negative code; hfresh = true; _ } ->
        t.s_neg_answers <- t.s_neg_answers + 1;
        metric self "neg-hit";
        Error (Vio.Verr.Denied code)
    | Some ({ Name_cache.hvalue = Delegation spec; hfresh = true; hkey; _ }) ->
        metric self "resume";
        walk spec (skip_separators name (String.length hkey)) [] 0
    | Some ({ Name_cache.hvalue = Bound spec; hfresh = false; _ } as h) ->
        stale_candidate := Some (h, spec);
        metric self "refresh";
        walk t.root (skip_separators name (String.length t.prefix + 2)) [] 0
    | Some _ | None ->
        metric self "miss";
        walk t.root (skip_separators name (String.length t.prefix + 2)) [] 0
  end
