(* CSNH protocol conformance checks.

   The paper's uniformity claim is that ANY server implementing name
   spaces presents the same client interface: the standard CSname
   request fields, the standard operations, the standard reply codes,
   typed descriptions, and context directories readable through the I/O
   protocol. This kit runs a protocol-level battery against an arbitrary
   server and reports which behaviours hold — the compliance suite an
   open-source release of the protocol would ship. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
open Vnaming

type verdict = Pass | Fail of string | Skip of string

let pp_verdict ppf = function
  | Pass -> Fmt.string ppf "pass"
  | Fail why -> Fmt.pf ppf "FAIL: %s" why
  | Skip why -> Fmt.pf ppf "skip (%s)" why

type check = { check_name : string; verdict : verdict }

type report = { server : Pid.t; label : string; checks : check list }

let passed report =
  List.for_all
    (fun c -> match c.verdict with Fail _ -> false | Pass | Skip _ -> true)
    report.checks

let pp_report ppf report =
  Fmt.pf ppf "%s (%a): %s@." report.label Pid.pp report.server
    (if passed report then "conformant" else "NOT conformant");
  List.iter
    (fun c -> Fmt.pf ppf "  %-38s %a@." c.check_name pp_verdict c.verdict)
    report.checks

(* One transaction against the server; returns the reply. *)
let transact self server msg =
  match Kernel.send self server msg with
  | Ok (reply, replier) -> Ok (reply, replier)
  | Error e -> Error (Fmt.str "transaction failed: %a" Kernel.pp_error e)

let named_request ?payload ?(context = Context.Well_known.default) code name =
  Vmsg.request ~name:(Csname.make_req ~context name) ?payload code

(* --- individual checks --- *)

(* Every reply must carry a decodable standard reply code. *)
let check_reply_code_well_formed self server =
  match transact self server (named_request Vmsg.Op.query_name "") with
  | Error why -> Fail why
  | Ok (reply, _) -> (
      if not reply.Vmsg.is_reply then Fail "response is not a reply message"
      else
        match Reply.of_int reply.Vmsg.code with
        | Some _ -> Pass
        | None -> Fail (Fmt.str "undecodable reply code %d" reply.Vmsg.code))

(* MapContext on the empty name in the default context must return the
   server's own (pid, context) pair. *)
let check_map_context self server =
  match transact self server (named_request Vmsg.Op.map_context "") with
  | Error why -> Fail why
  | Ok (reply, replier) -> (
      match (Vmsg.reply_code reply, reply.Vmsg.payload) with
      | Some Reply.Ok, Vmsg.P_context_spec spec ->
          if Pid.equal spec.Context.server replier then Pass
          else Fail "returned a context on a different server without forwarding"
      | Some Reply.Ok, _ -> Fail "MapContext reply carried no context spec"
      | Some code, _ -> Fail (Fmt.str "MapContext refused: %s" (Reply.to_string code))
      | None, _ -> Fail "not a reply")

(* An unknown operation code must be answered Bad_operation, not break
   the server (the skeleton requirement of §5.3: servers can process
   requests they do not understand). *)
let check_unknown_operation self server =
  let unknown = 9999 in
  match transact self server (Vmsg.request unknown) with
  | Error why -> Fail why
  | Ok (reply, _) -> (
      match Vmsg.reply_code reply with
      | Some Reply.Bad_operation -> Pass
      | Some code ->
          Fail (Fmt.str "unknown op answered %s, not bad operation"
                  (Reply.to_string code))
      | None -> Fail "not a reply")

(* ...and the server must still answer afterwards. *)
let check_alive_after_unknown self server =
  match transact self server (named_request Vmsg.Op.map_context "") with
  | Error why -> Fail (Fmt.str "server unresponsive after unknown op: %s" why)
  | Ok _ -> Pass

(* Names with NUL bytes are illegal everywhere. *)
let check_illegal_name self server =
  match transact self server (named_request Vmsg.Op.query_name "bad\000name") with
  | Error why -> Fail why
  | Ok (reply, _) -> (
      match Vmsg.reply_code reply with
      | Some (Reply.Illegal_name | Reply.Not_found) -> Pass
      | Some Reply.Ok -> Fail "accepted a name containing NUL"
      | Some code -> Fail (Fmt.str "unexpected code %s" (Reply.to_string code))
      | None -> Fail "not a reply")

(* A bad context identifier must be rejected as such. *)
let check_bad_context self server =
  match
    transact self server (named_request ~context:31999 Vmsg.Op.query_name "x")
  with
  | Error why -> Fail why
  | Ok (reply, _) -> (
      match Vmsg.reply_code reply with
      | Some (Reply.Bad_context | Reply.Not_found) -> Pass
      | Some Reply.Ok -> Fail "accepted an invalid context id"
      | Some code -> Fail (Fmt.str "unexpected code %s" (Reply.to_string code))
      | None -> Fail "not a reply")

(* The default context must be readable as a context directory through
   the I/O protocol, yielding decodable typed records (§5.6). *)
let check_context_directory self server =
  let open_msg =
    named_request ~payload:(Vmsg.P_open { mode = Vmsg.Directory_listing })
      Vmsg.Op.open_instance ""
  in
  match transact self server open_msg with
  | Error why -> Fail why
  | Ok (reply, replier) -> (
      match (Vmsg.reply_code reply, reply.Vmsg.payload) with
      | Some Reply.Ok, Vmsg.P_instance info -> (
          let instance = { Vio.Client.server = replier; info } in
          match Vio.Client.read_directory self instance with
          | Ok (_ : Descriptor.t list) -> (
              match Vio.Client.release self instance with
              | Ok () -> Pass
              | Error e -> Fail (Fmt.str "release failed: %a" Vio.Verr.pp e))
          | Error e -> Fail (Fmt.str "directory not decodable: %a" Vio.Verr.pp e))
      | Some Reply.Ok, _ -> Fail "Open reply carried no instance"
      | Some code, _ ->
          Fail (Fmt.str "cannot open context directory: %s" (Reply.to_string code))
      | None, _ -> Fail "not a reply")

(* Directory records must agree with per-object queries — the §5.6
   identity. Servers whose objects are unnameable individually skip. *)
let check_directory_matches_queries self server =
  let open_msg =
    named_request ~payload:(Vmsg.P_open { mode = Vmsg.Directory_listing })
      Vmsg.Op.open_instance ""
  in
  match transact self server open_msg with
  | Error why -> Fail why
  | Ok (reply, replier) -> (
      match (Vmsg.reply_code reply, reply.Vmsg.payload) with
      | Some Reply.Ok, Vmsg.P_instance info -> (
          let instance = { Vio.Client.server = replier; info } in
          let records = Vio.Client.read_directory self instance in
          ignore (Vio.Client.release self instance);
          match records with
          | Error e -> Fail (Fmt.str "unreadable directory: %a" Vio.Verr.pp e)
          | Ok [] -> Skip "empty context"
          | Ok records -> (
              let mismatches =
                List.filter_map
                  (fun (d : Descriptor.t) ->
                    match
                      transact self server
                        (named_request Vmsg.Op.query_name d.Descriptor.name)
                    with
                    | Ok (q, _) -> (
                        match (Vmsg.reply_code q, q.Vmsg.payload) with
                        | Some Reply.Ok, Vmsg.P_descriptor qd ->
                            if qd.Descriptor.obj_type = d.Descriptor.obj_type
                            then None
                            else Some d.Descriptor.name
                        | _ -> Some d.Descriptor.name)
                    | Error _ -> Some d.Descriptor.name)
                  records
              in
              match mismatches with
              | [] -> Pass
              | names ->
                  Fail
                    (Fmt.str "records disagree with queries: %s"
                       (String.concat ", " names))))
      | _ -> Fail "cannot open context directory")

(* Released instances must be invalid. *)
let check_instance_lifecycle self server =
  let open_msg =
    named_request ~payload:(Vmsg.P_open { mode = Vmsg.Directory_listing })
      Vmsg.Op.open_instance ""
  in
  match transact self server open_msg with
  | Error why -> Fail why
  | Ok (reply, replier) -> (
      match (Vmsg.reply_code reply, reply.Vmsg.payload) with
      | Some Reply.Ok, Vmsg.P_instance info -> (
          let instance = { Vio.Client.server = replier; info } in
          match Vio.Client.release self instance with
          | Error e -> Fail (Fmt.str "release failed: %a" Vio.Verr.pp e)
          | Ok () -> (
              match Vio.Client.read_block self instance ~block:0 with
              | Error (Vio.Verr.Denied Reply.Invalid_instance) -> Pass
              | Ok _ -> Fail "read succeeded on a released instance"
              | Error e ->
                  Fail (Fmt.str "unexpected error on released instance: %a"
                          Vio.Verr.pp e)))
      | _ -> Fail "cannot open an instance to test")

let all_checks =
  [
    ("reply codes well-formed", check_reply_code_well_formed);
    ("MapContext on default context", check_map_context);
    ("unknown operation rejected", check_unknown_operation);
    ("alive after unknown operation", check_alive_after_unknown);
    ("illegal names rejected", check_illegal_name);
    ("bad context rejected", check_bad_context);
    ("context directory readable (§5.6)", check_context_directory);
    ("directory = queries (§5.6)", check_directory_matches_queries);
    ("instance lifecycle", check_instance_lifecycle);
  ]

(* Run the battery against one server. Must be called from a fiber. *)
let check self ~label server =
  {
    server;
    label;
    checks =
      List.map
        (fun (check_name, run) -> { check_name; verdict = run self server })
        all_checks;
  }
