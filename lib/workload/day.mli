(** A composite "working day" workload: several users editing, reading,
    listing, loading programs, printing, mailing and writing terminal
    lines over simulated time — a deterministic soak of the whole
    installation. *)

type totals = {
  mutable edits : int;
  mutable reads : int;
  mutable lists : int;
  mutable loads : int;
  mutable prints : int;
  mutable mails : int;
  mutable terminal_lines : int;
  mutable failures : int;  (** = [ipc_failures + denied] *)
  mutable ipc_failures : int;
      (** transport-flavoured: [Ipc] errors and resilience give-ups
          ([Unavailable]) *)
  mutable denied : int;  (** the server refused ([Denied]/[Protocol]) *)
  mutable retried_ok : int;
      (** operations the resilience policy saved: succeeded after at
          least one retry (0 without [?resilience]) *)
  latency : Vsim.Stats.Series.t;  (** per-operation latency (ms) *)
}

val pp_totals : Format.formatter -> totals -> unit

(** Run [users] workstations for [duration_ms] of simulated time;
    returns the aggregate totals and the scenario.

    [resilience] arms every user's runtime with the retry policy
    (jitter seeds fixed per workstation, so the schedule replays);
    [configure] runs on the built scenario before the simulation starts
    — E9 schedules its fault plan here; [on_op] observes every timed
    operation as [~t0 ~t1 outcome] (simulated ms), the raw timeline
    unavailability windows and recovery latency are computed from. *)
val run :
  ?users:int ->
  ?duration_ms:float ->
  ?seed:int ->
  ?resilience:Vio.Resilience.policy ->
  ?configure:(Scenario.t -> unit) ->
  ?on_op:(t0:float -> t1:float -> (unit, Vio.Verr.t) result -> unit) ->
  unit ->
  totals * Scenario.t
