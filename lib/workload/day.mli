(** A composite "working day" workload: several users editing, reading,
    listing, loading programs, printing, mailing and writing terminal
    lines over simulated time — a deterministic soak of the whole
    installation. *)

type totals = {
  mutable edits : int;
  mutable reads : int;
  mutable lists : int;
  mutable loads : int;
  mutable prints : int;
  mutable mails : int;
  mutable terminal_lines : int;
  mutable failures : int;
  latency : Vsim.Stats.Series.t;  (** per-operation latency (ms) *)
}

val pp_totals : Format.formatter -> totals -> unit

(** Run [users] workstations for [duration_ms] of simulated time;
    returns the aggregate totals and the scenario. *)
val run : ?users:int -> ?duration_ms:float -> ?seed:int -> unit -> totals * Scenario.t
