(** Scenario builder: the paper's standard installation (§6) — diskless
    workstations each running a context prefix server, virtual terminal
    server, program manager and exception server; shared file servers; a
    printer; a mail server; an internet gateway; a time server. Standard
    per-user prefixes ([storage], [home], [bin], [printer], [mail],
    [internet], [terminals], [fsN]) are installed on every
    workstation. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Ethernet = Vnet.Ethernet
open Vnaming
open Vservices

type workstation = {
  ws_index : int;
  ws_name : string;
  ws_host : Vmsg.t Kernel.host;
  ws_prefix : Prefix_server.t;
  ws_terminal : Terminal_server.t;
  ws_vgts : Vgts.t;
  ws_programs : Program_manager.t;
  ws_exceptions : Exception_server.t;
}

type t = {
  engine : Vsim.Engine.t;
  net : Vmsg.t Kernel.packet Ethernet.t;
  domain : Vmsg.t Kernel.domain;
  workstations : workstation array;
  file_servers : File_server.t array;
  printer : Printer_server.t;
  mail : Mail_server.t;
  internet : Internet_server.t;
  time_pid : Pid.t;
  local_fs : File_server.t option;
      (** a file server co-resident with one workstation (§6's
          local-vs-remote measurements), when requested *)
  prng : Vsim.Prng.t;
  obs : Vobs.Hub.t;
      (** the installation's observability hub: metrics always, spans
          when built with [~tracing:true] *)
}

(** Network address plan (exposed for fault injection in tests and
    benchmarks). *)
val ws_addr : int -> Ethernet.addr

val fs_addr : int -> Ethernet.addr
val printer_addr : Ethernet.addr
val mail_addr : Ethernet.addr
val internet_addr : Ethernet.addr

(** Build the installation; nothing runs until the engine does.
    [local_file_server_on] additionally runs a Local-scope file server
    process on that workstation, bound to the "[localfs]" prefix.
    [tracing] turns on distributed tracing in the installation's
    observability hub (simulated timings are unaffected). [topology]
    selects the network fabric (default the paper's shared wire). *)
val build :
  ?config:Vnet.Calibration.network ->
  ?topology:Vnet.Topology.t ->
  ?workstations:int ->
  ?file_servers:int ->
  ?local_file_server_on:int ->
  ?seed:int ->
  ?tracing:bool ->
  unit ->
  t

val workstation : t -> int -> workstation
val file_server : t -> int -> File_server.t

(** The current context a fresh program is handed: the first file
    server's root. *)
val default_context : t -> Context.spec

(** Run [body] as a client process on workstation [ws] with a standard
    run-time environment. *)
val spawn_client :
  t ->
  ws:int ->
  ?name:string ->
  ?current:Context.spec ->
  (Vmsg.t Kernel.self -> Vruntime.Runtime.env -> unit) ->
  Pid.t

(** Run the simulation to quiescence (or a time horizon, ms). *)
val run : ?until:float -> t -> unit
