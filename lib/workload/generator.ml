(* Workload generation: file populations and name/operation streams for
   the comparison experiments. *)

module Fs = Vservices.Fs
module File_server = Vservices.File_server

let word prng =
  let len = 3 + Vsim.Prng.int prng 8 in
  String.init len (fun _ -> Char.chr (Char.code 'a' + Vsim.Prng.int prng 26))

(* Populate a file server with a directory tree; returns the absolute
   paths of all created files. Runs at setup time (write-behind). *)
let populate prng fs_server ~directories ~files_per_directory =
  let fs = File_server.fs fs_server in
  let dirs = ref [ (Fs.root_ino, "") ] in
  for _ = 1 to directories do
    let parent_ino, parent_path = Vsim.Prng.pick prng !dirs in
    let name = word prng in
    match Fs.mkdir fs ~dir:parent_ino ~owner:"workload" name with
    | Ok ino -> dirs := (ino, parent_path ^ "/" ^ name) :: !dirs
    | Error _ -> () (* duplicate name: skip *)
  done;
  let paths = ref [] in
  List.iter
    (fun (dir_ino, dir_path) ->
      for _ = 1 to files_per_directory do
        let name = word prng ^ ".dat" in
        match Fs.create_file fs ~dir:dir_ino ~owner:"workload" name with
        | Ok ino ->
            let content =
              Bytes.of_string (Fmt.str "contents of %s/%s" dir_path name)
            in
            (match Fs.write_file fs ~ino content with Ok () | Error _ -> ());
            paths := (dir_path ^ "/" ^ name) :: !paths
        | Error _ -> ()
      done)
    !dirs;
  List.rev !paths

(* Strip the leading slash: protocol names are interpreted relative to
   the starting context (the root context here). *)
let relative path =
  if String.length path > 0 && path.[0] = '/' then
    String.sub path 1 (String.length path - 1)
  else path

(* An operation mix for the comparison workload. *)
type op = Open_read of string | Query of string | Delete of string

(* Zipf name popularity: rank i (0-based) drawn with probability
   proportional to (i+1)^-s. The cumulative distribution is
   precomputed once; each sample is then one PRNG float draw and a
   binary search — the same single-draw budget as a uniform pick. *)
let zipf_cumulative ?(s = 1.0) n =
  if n < 1 then invalid_arg "Generator.zipf_cumulative: n < 1";
  let w = Array.init n (fun i -> Float.pow (float_of_int (i + 1)) (-.s)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      acc := !acc +. x;
      cum.(i) <- !acc /. total)
    w;
  (* Close the distribution exactly, against rounding. *)
  cum.(n - 1) <- 1.0;
  cum

let zipf_pick prng cum =
  let u = Vsim.Prng.float prng in
  (* The smallest rank whose cumulative weight exceeds the draw. *)
  let lo = ref 0 and hi = ref (Array.length cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if u < cum.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

(* --- cohort clients --- *)

(* A cohort stands in for [size] statistically identical open-loop
   clients, each submitting operations as a Poisson process with mean
   inter-arrival [mean_gap_ms]. The superposition of [size] independent
   Poisson streams at rate 1/gap is one Poisson stream at rate
   size/gap, so one cohort process driven by one PRNG stream produces
   an arrival sequence distributionally identical to [size] separate
   client processes — without [size] fibers, queues, or PRNG states.
   This is what lets a soak simulate a million clients with thousands
   of processes (e12). *)
type cohort = {
  c_prng : Vsim.Prng.t;
  c_size : int;
  c_mean_gap_ms : float;
  mutable c_issued : int;
}

let cohort ~size ~mean_gap_ms prng =
  if size < 1 then invalid_arg "Generator.cohort: size < 1";
  if mean_gap_ms <= 0.0 then invalid_arg "Generator.cohort: mean_gap_ms <= 0";
  { c_prng = prng; c_size = size; c_mean_gap_ms = mean_gap_ms; c_issued = 0 }

let cohort_size c = c.c_size
let cohort_issued c = c.c_issued

(* Next inter-arrival gap of the aggregated stream: exponential with
   the per-client mean divided by the cohort size. *)
let cohort_next_gap c =
  c.c_issued <- c.c_issued + 1;
  Vsim.Prng.exponential c.c_prng
    ~mean:(c.c_mean_gap_ms /. float_of_int c.c_size)

(* [locality] is the probability an operation targets the small hot set
   (the first [hot_set] paths) instead of drawing uniformly. [zipf], when
   positive, is the exponent of a Zipf popularity distribution over the
   paths (rank = position in [paths]) replacing the uniform draw. At the
   defaults (0.0) no extra PRNG draw is made and the uniform path is
   taken, so streams generated before either knob existed are reproduced
   bit-for-bit. *)
let operation_stream ?(locality = 0.0) ?(hot_set = 8) ?(zipf = 0.0) prng paths
    ~n ~delete_fraction =
  let paths = Array.of_list paths in
  if Array.length paths = 0 then []
  else
    let hot = min hot_set (Array.length paths) in
    let zipf_cum =
      if zipf > 0.0 then Some (zipf_cumulative ~s:zipf (Array.length paths))
      else None
    in
    List.init n (fun _ ->
        let path =
          if locality > 0.0 && hot > 0 && Vsim.Prng.float prng < locality then
            paths.(Vsim.Prng.int prng hot)
          else
            match zipf_cum with
            | Some cum -> paths.(zipf_pick prng cum)
            | None -> paths.(Vsim.Prng.int prng (Array.length paths))
        in
        let roll = Vsim.Prng.float prng in
        if roll < delete_fraction then Delete path
        else if roll < 0.5 then Query path
        else Open_read path)
