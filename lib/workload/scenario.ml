(* Scenario builder: the paper's standard installation (§6) — diskless
   workstations each running a context prefix server, virtual terminal
   server, program manager and exception server; shared file servers;
   a printer server; a mail server; a time server. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
module Service = Vkernel.Service
module Calibration = Vnet.Calibration
module Ethernet = Vnet.Ethernet
open Vnaming
open Vservices

type workstation = {
  ws_index : int;
  ws_name : string;
  ws_host : Vmsg.t Kernel.host;
  ws_prefix : Prefix_server.t;
  ws_terminal : Terminal_server.t;
  ws_vgts : Vgts.t;
  ws_programs : Program_manager.t;
  ws_exceptions : Exception_server.t;
}

type t = {
  engine : Vsim.Engine.t;
  net : Vmsg.t Kernel.packet Ethernet.t;
  domain : Vmsg.t Kernel.domain;
  workstations : workstation array;
  file_servers : File_server.t array;
  printer : Printer_server.t;
  mail : Mail_server.t;
  internet : Internet_server.t;
  time_pid : Pid.t;
  local_fs : File_server.t option;
      (* a file server co-resident with one workstation, for the
         local-vs-remote measurements of §6 *)
  prng : Vsim.Prng.t;
  obs : Vobs.Hub.t;
}

(* Network address plan: workstations from 1, servers from 100. *)
let ws_addr i = 1 + i
let fs_addr i = 100 + i
let printer_addr = 200
let mail_addr = 201
let internet_addr = 202

let standard_prefixes t ws =
  let logical service context = `Logical (service, context) in
  [
    ("storage", logical Service.Id.storage Context.Well_known.default);
    ("home", logical Service.Id.storage Context.Well_known.home);
    ("bin", logical Service.Id.storage Context.Well_known.programs);
    ("printer", logical Service.Id.printer Context.Well_known.default);
    ("mail", logical Service.Id.mail Context.Well_known.default);
    ("internet", logical Service.Id.internet Context.Well_known.default);
    ( "terminals",
      `Static
        (Context.spec
           ~server:(Terminal_server.pid ws.ws_terminal)
           ~context:Context.Well_known.default) );
    ( "programs",
      `Static
        (Context.spec
           ~server:(Program_manager.pid ws.ws_programs)
           ~context:Context.Well_known.default) );
    ( "windows",
      `Static
        (Context.spec
           ~server:(Vgts.pid ws.ws_vgts)
           ~context:Context.Well_known.default) );
  ]
  @ List.mapi
      (fun i fs ->
        ( Fmt.str "fs%d" i,
          `Static (File_server.spec fs ~context:Context.Well_known.default) ))
      (Array.to_list t.file_servers)

let to_prefix_target = function
  | `Static spec -> Prefix_server.Static spec
  | `Logical (service, context) -> Prefix_server.Logical { service; context }

(* Build the installation; nothing runs until the engine does.
   [local_file_server_on] additionally runs a file server process on
   that workstation (Local scope), bound to the "[localfs]" prefix. *)
let build ?(config = Calibration.ethernet_3mbit)
    ?(topology = Vnet.Topology.Shared_medium) ?(workstations = 3)
    ?(file_servers = 2) ?local_file_server_on ?(seed = 42) ?(tracing = false)
    () =
  let engine = Vsim.Engine.create () in
  let net = Ethernet.create ~seed ~topology ~config engine in
  let domain = Kernel.create_domain ~seed ~cost:Vmsg.cost_model engine net in
  (* Attach observability before any host boots so every layer sees it.
     Pure bookkeeping: simulated timings are identical with [tracing]
     on or off. *)
  let obs = Vobs.Hub.create ~tracing () in
  Kernel.set_obs domain obs;
  Ethernet.set_obs net obs;
  (* The kernel is parametric in the message type and cannot read the
     trace context a request carries; teach it where Vmsg keeps it so
     flight-recorder events are stamped with the active trace id. *)
  Kernel.set_trace_of domain (fun (m : Vmsg.t) ->
      match m.Vmsg.name with
      | Some req -> req.Csname.trace.Vobs.Span.trace
      | None -> 0);
  let fss =
    Array.init file_servers (fun i ->
        let host = Kernel.boot_host domain ~name:(Fmt.str "fs%d" i) (fs_addr i) in
        File_server.start host ~name:(Fmt.str "fs%d" i) ~owner:"system" ())
  in
  let printer_host = Kernel.boot_host domain ~name:"printer" printer_addr in
  let printer = Printer_server.start printer_host in
  let mail_host = Kernel.boot_host domain ~name:"mailhost" mail_addr in
  let mail = Mail_server.start mail_host in
  let internet_host = Kernel.boot_host domain ~name:"gateway" internet_addr in
  let internet = Internet_server.start internet_host in
  let time_pid = Time_server.start mail_host in
  let wss =
    Array.init workstations (fun i ->
        let name = Fmt.str "ws%d" i in
        let host = Kernel.boot_host domain ~name (ws_addr i) in
        let ws_terminal = Terminal_server.start host in
        let ws_vgts = Vgts.start host in
        let ws_programs = Program_manager.start host in
        let ws_exceptions = Exception_server.start host in
        let ws_prefix = Prefix_server.start host ~owner:name () in
        {
          ws_index = i;
          ws_name = name;
          ws_host = host;
          ws_prefix;
          ws_terminal;
          ws_vgts;
          ws_programs;
          ws_exceptions;
        })
  in
  let local_fs =
    Option.map
      (fun i ->
        File_server.start wss.(i).ws_host
          ~name:(Fmt.str "localfs%d" i)
          ~owner:"system" ~scope:Service.Local ())
      local_file_server_on
  in
  let t =
    {
      engine;
      net;
      domain;
      workstations = wss;
      file_servers = fss;
      printer;
      mail;
      internet;
      time_pid;
      local_fs;
      prng = Vsim.Prng.create ~seed;
      obs;
    }
  in
  (* Install the standard per-user prefixes. *)
  Array.iter
    (fun ws ->
      List.iter
        (fun (name, target) ->
          match
            Prefix_server.add_binding ws.ws_prefix name (to_prefix_target target)
          with
          | Ok () -> ()
          | Error code ->
              invalid_arg (Fmt.str "standard prefix %S: %a" name Reply.pp code))
        (standard_prefixes t ws))
    t.workstations;
  (match (local_fs, local_file_server_on) with
  | Some fs, Some i ->
      let ws = wss.(i) in
      (match
         Prefix_server.add_binding ws.ws_prefix "localfs"
           (Prefix_server.Static
              (File_server.spec fs ~context:Context.Well_known.default))
       with
      | Ok () -> ()
      | Error code -> invalid_arg (Fmt.str "localfs prefix: %a" Reply.pp code))
  | _ -> ());
  t

let workstation t i = t.workstations.(i)
let file_server t i = t.file_servers.(i)

(* The default current context a fresh program is handed: the first
   file server's root. *)
let default_context t =
  File_server.spec t.file_servers.(0) ~context:Context.Well_known.default

(* [spawn_client t ~ws ~name body] runs [body] as a process on
   workstation [ws] with a standard run-time environment. *)
let spawn_client t ~ws ?(name = "client") ?current body =
  let w = t.workstations.(ws) in
  Kernel.spawn w.ws_host ~name (fun self ->
      let current = Option.value ~default:(default_context t) current in
      match Vruntime.Runtime.make self ~current with
      | Ok env -> body self env
      | Error e -> failwith (Fmt.str "client %s: no runtime: %a" name Vio.Verr.pp e))

(* Run the whole simulation to quiescence (or a horizon). *)
let run ?until t = Vsim.Engine.run ?until t.engine
