(** CSNH protocol conformance checks.

    The paper's uniformity claim: any server implementing name spaces
    presents the same client interface. This kit runs a protocol-level
    battery — standard reply codes, MapContext, graceful rejection of
    unknown operations, illegal names and bad contexts, context
    directories readable through the I/O protocol and agreeing with
    per-object queries, instance lifecycles — against an arbitrary
    server. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid

type verdict = Pass | Fail of string | Skip of string

val pp_verdict : Format.formatter -> verdict -> unit

type check = { check_name : string; verdict : verdict }
type report = { server : Pid.t; label : string; checks : check list }

(** No check failed (skips allowed). *)
val passed : report -> bool

val pp_report : Format.formatter -> report -> unit

(** Run the battery against a server. Must run inside a fiber. *)
val check :
  Vnaming.Vmsg.t Kernel.self -> label:string -> Pid.t -> report
