(** Workload generation: file populations and operation streams for the
    comparison experiments. *)

(** A random lowercase word. *)
val word : Vsim.Prng.t -> string

(** Populate a file server with a random directory tree (at setup time,
    write-behind); returns the absolute paths of the created files. *)
val populate :
  Vsim.Prng.t ->
  Vservices.File_server.t ->
  directories:int ->
  files_per_directory:int ->
  string list

(** Strip the leading slash: protocol names are interpreted relative to
    the starting (root) context. *)
val relative : string -> string

type op = Open_read of string | Query of string | Delete of string

(** The cumulative Zipf distribution over [n] ranks with exponent [s]
    (default 1.0): rank i (0-based) has weight proportional to
    [(i+1)^-s]. Raises [Invalid_argument] when [n < 1]. *)
val zipf_cumulative : ?s:float -> int -> float array

(** Draw a rank from a precomputed {!zipf_cumulative} — exactly one
    PRNG float draw per sample. *)
val zipf_pick : Vsim.Prng.t -> float array -> int

(** {1 Cohort clients}

    A cohort aggregates [size] statistically identical open-loop
    clients into one process: the superposition of [size] Poisson
    arrival streams with mean gap [mean_gap_ms] is one Poisson stream
    with mean gap [mean_gap_ms/size], so one PRNG stream and one fiber
    reproduce the arrival process of [size] separate clients. Used by
    the e12 soak to simulate 1M clients without 1M processes. *)

type cohort

val cohort : size:int -> mean_gap_ms:float -> Vsim.Prng.t -> cohort
val cohort_size : cohort -> int

(** Operations issued so far (one per {!cohort_next_gap} draw). *)
val cohort_issued : cohort -> int

(** Draw the next inter-arrival gap (ms) of the aggregated stream. *)
val cohort_next_gap : cohort -> float

(** [n] operations drawn over the given paths with the given fraction of
    deletes (the rest split between queries and opens). [locality] is
    the probability an operation targets the hot set (the first
    [hot_set] paths, default 8) instead of drawing uniformly. [zipf],
    when positive, is the exponent of a Zipf popularity distribution
    over the paths (rank = list position) replacing the uniform draw.
    At the defaults (0.0) neither knob makes an extra PRNG draw, so
    pre-existing streams are reproduced bit-for-bit. *)
val operation_stream :
  ?locality:float ->
  ?hot_set:int ->
  ?zipf:float ->
  Vsim.Prng.t ->
  string list ->
  n:int ->
  delete_fraction:float ->
  op list
