(** Workload generation: file populations and operation streams for the
    comparison experiments. *)

(** A random lowercase word. *)
val word : Vsim.Prng.t -> string

(** Populate a file server with a random directory tree (at setup time,
    write-behind); returns the absolute paths of the created files. *)
val populate :
  Vsim.Prng.t ->
  Vservices.File_server.t ->
  directories:int ->
  files_per_directory:int ->
  string list

(** Strip the leading slash: protocol names are interpreted relative to
    the starting (root) context. *)
val relative : string -> string

type op = Open_read of string | Query of string | Delete of string

(** [n] operations drawn over the given paths with the given fraction of
    deletes (the rest split between queries and opens). [locality] is
    the probability an operation targets the hot set (the first
    [hot_set] paths, default 8) instead of drawing uniformly; at the
    default 0.0 no extra PRNG draw is made, so pre-existing streams are
    reproduced bit-for-bit. *)
val operation_stream :
  ?locality:float ->
  ?hot_set:int ->
  Vsim.Prng.t ->
  string list ->
  n:int ->
  delete_fraction:float ->
  op list
