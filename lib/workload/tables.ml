(* Plain-text table rendering for the benchmark harness. *)

let print_title title =
  let bar = String.make (String.length title) '=' in
  Fmt.pr "@.%s@.%s@." title bar

let print_section title =
  let bar = String.make (String.length title) '-' in
  Fmt.pr "@.%s@.%s@." title bar

(* Render rows with left-aligned first column and right-aligned rest. *)
let print_table ~header rows =
  let all = header :: rows in
  let columns = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init columns width in
  let render_row row =
    row
    |> List.mapi (fun c cell ->
           let w = List.nth widths c in
           if c = 0 then Fmt.str "%-*s" w cell else Fmt.str "%*s" w cell)
    |> String.concat "  "
  in
  Fmt.pr "%s@." (render_row header);
  Fmt.pr "%s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Fmt.pr "%s@." (render_row row)) rows

type comparison = {
  label : string;
  paper : float option;  (** the figure the paper reports, if any *)
  measured : float;
  unit_ : string;
}

(* Paper-vs-measured with the relative deviation, the core output format
   of EXPERIMENTS.md. *)
let print_comparison rows =
  let render { label; paper; measured; unit_ } =
    match paper with
    | Some p ->
        [
          label;
          Fmt.str "%.2f %s" p unit_;
          Fmt.str "%.2f %s" measured unit_;
          Fmt.str "%+.1f%%" ((measured -. p) /. p *. 100.0);
        ]
    | None -> [ label; "-"; Fmt.str "%.2f %s" measured unit_; "-" ]
  in
  print_table ~header:[ "quantity"; "paper"; "measured"; "deviation" ]
    (List.map render rows)

let ms v = Fmt.str "%.2f ms" v
let count v = string_of_int v
