(* Plain-text table rendering for the benchmark harness.

   Every table printed is also recorded as JSON, grouped under the most
   recent title, so the harness can dump a machine-readable summary of
   a run (bench --json FILE) with no per-experiment code. *)

module Json = Vobs.Json

let json_store : (string * Json.t list ref) list ref = ref []
let current_title = ref "(untitled)"

let record json =
  let entries =
    match List.assoc_opt !current_title !json_store with
    | Some entries -> entries
    | None ->
        let entries = ref [] in
        json_store := !json_store @ [ (!current_title, entries) ];
        entries
  in
  entries := !entries @ [ json ]

(* Run metadata, prepended to the dump as "_meta" so a baseline is
   self-describing: which tool and version wrote it, which experiments
   ran, and each one's seed and sim horizon. The harness opens an entry
   per experiment (begin_experiment); the experiment fills in what it
   knows (note_meta) — an experiment that runs to quiescence has no
   horizon, one that never draws randomness reports its scenario
   seed. *)
let tool = "vsystem-bench"
let tool_version = "0.5"

type meta_cell = {
  mutable m_seed : int option;
  mutable m_horizon : float option;
  (* Engine throughput accounting, filled by the harness after the
     experiment returns: simulator events executed and host wall-clock
     seconds. [m_wall_s] is the one non-deterministic field of a dump;
     regression gating must ignore it (bench/compare.ml does). *)
  mutable m_events : int option;
  mutable m_wall_s : float option;
}

let run_meta : (string * meta_cell) list ref = ref []
let current_meta : meta_cell option ref = ref None

(* Short names of experiments deliberately retired from the suite. The
   bench-regression gate fails when a baseline metric disappears from a
   fresh run unless its experiment is listed here ("_meta"."removed") —
   a retirement must be declared, not inferred from absence. *)
let removed_experiments : string list ref = ref []

let note_removed name =
  if not (List.mem name !removed_experiments) then
    removed_experiments := !removed_experiments @ [ name ]

let begin_experiment name =
  let cell =
    { m_seed = None; m_horizon = None; m_events = None; m_wall_s = None }
  in
  run_meta := !run_meta @ [ (name, cell) ];
  current_meta := Some cell

let note_meta ?seed ?horizon_ms ?events_executed ?wall_s () =
  match !current_meta with
  | None -> ()
  | Some cell ->
      (match seed with Some v -> cell.m_seed <- Some v | None -> ());
      (match horizon_ms with Some v -> cell.m_horizon <- Some v | None -> ());
      (match events_executed with
      | Some v -> cell.m_events <- Some v
      | None -> ());
      (match wall_s with Some v -> cell.m_wall_s <- Some v | None -> ())

let meta_json () =
  let experiments =
    List.map
      (fun (name, cell) ->
        ( name,
          Json.Obj
            [
              ( "seed",
                match cell.m_seed with Some v -> Json.Int v | None -> Json.Null
              );
              ( "horizon_ms",
                match cell.m_horizon with
                | Some v -> Json.Float v
                | None -> Json.Null );
              ( "events_executed",
                match cell.m_events with
                | Some v -> Json.Int v
                | None -> Json.Null );
              ( "wall_s",
                match cell.m_wall_s with
                | Some v -> Json.Float v
                | None -> Json.Null );
            ] ))
      !run_meta
  in
  Json.Obj
    ([
       ("tool", Json.String tool);
       ("version", Json.String tool_version);
       ("experiments", Json.Obj experiments);
     ]
    @
    match !removed_experiments with
    | [] -> []
    | names ->
        [ ("removed", Json.List (List.map (fun n -> Json.String n) names)) ])

let results_json () =
  let fields =
    List.map (fun (title, entries) -> (title, Json.List !entries)) !json_store
  in
  (* Callers that never opened an experiment (unit tests exercising the
     tables directly) keep the bare document shape. *)
  match !run_meta with
  | [] -> Json.Obj fields
  | _ -> Json.Obj (("_meta", meta_json ()) :: fields)

let reset_results () =
  json_store := [];
  current_title := "(untitled)";
  run_meta := [];
  current_meta := None;
  removed_experiments := []

let print_title title =
  current_title := title;
  let bar = String.make (String.length title) '=' in
  Fmt.pr "@.%s@.%s@." title bar

let print_section title =
  let bar = String.make (String.length title) '-' in
  Fmt.pr "@.%s@.%s@." title bar

(* Render rows with left-aligned first column and right-aligned rest. *)
let print_table_text ~header rows =
  let all = header :: rows in
  let columns = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init columns width in
  let render_row row =
    row
    |> List.mapi (fun c cell ->
           let w = List.nth widths c in
           if c = 0 then Fmt.str "%-*s" w cell else Fmt.str "%*s" w cell)
    |> String.concat "  "
  in
  Fmt.pr "%s@." (render_row header);
  Fmt.pr "%s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Fmt.pr "%s@." (render_row row)) rows

let print_table ~header rows =
  print_table_text ~header rows;
  List.iter
    (fun row ->
      record (Json.Obj (List.map2 (fun k v -> (k, Json.String v)) header row)))
    rows

type comparison = {
  label : string;
  paper : float option;  (** the figure the paper reports, if any *)
  measured : float;
  unit_ : string;
}

(* Paper-vs-measured with the relative deviation, the core output format
   of EXPERIMENTS.md. *)
let print_comparison rows =
  List.iter
    (fun { label; paper; measured; unit_ } ->
      record
        (Json.Obj
           [
             ("label", Json.String label);
             ( "paper",
               match paper with Some p -> Json.Float p | None -> Json.Null );
             ("measured", Json.Float measured);
             ("unit", Json.String unit_);
           ]))
    rows;
  let render { label; paper; measured; unit_ } =
    match paper with
    | Some p ->
        [
          label;
          Fmt.str "%.2f %s" p unit_;
          Fmt.str "%.2f %s" measured unit_;
          Fmt.str "%+.1f%%" ((measured -. p) /. p *. 100.0);
        ]
    | None -> [ label; "-"; Fmt.str "%.2f %s" measured unit_; "-" ]
  in
  print_table_text ~header:[ "quantity"; "paper"; "measured"; "deviation" ]
    (List.map render rows)

let ms v = Fmt.str "%.2f ms" v
let count v = string_of_int v
