(** Plain-text table rendering for the benchmark harness. *)

val print_title : string -> unit
val print_section : string -> unit

(** Aligned columns; the first column is left-aligned. *)
val print_table : header:string list -> string list list -> unit

type comparison = {
  label : string;
  paper : float option;  (** the figure the paper reports, if any *)
  measured : float;
  unit_ : string;
}

(** Paper-vs-measured with relative deviation. *)
val print_comparison : comparison list -> unit

val ms : float -> string
val count : int -> string

(** {1 JSON recording}

    Every comparison and table printed is also recorded, grouped under
    the most recent {!print_title}, so the harness can dump a
    machine-readable summary of a run. *)

(** Record an extra JSON entry under the current title. *)
val record : Vobs.Json.t -> unit

(** Everything recorded so far: an object mapping each title to its
    entries, in print order. *)
val results_json : unit -> Vobs.Json.t

val reset_results : unit -> unit
