(** Plain-text table rendering for the benchmark harness. *)

val print_title : string -> unit
val print_section : string -> unit

(** Aligned columns; the first column is left-aligned. *)
val print_table : header:string list -> string list list -> unit

type comparison = {
  label : string;
  paper : float option;  (** the figure the paper reports, if any *)
  measured : float;
  unit_ : string;
}

(** Paper-vs-measured with relative deviation. *)
val print_comparison : comparison list -> unit

val ms : float -> string
val count : int -> string

(** {1 JSON recording}

    Every comparison and table printed is also recorded, grouped under
    the most recent {!print_title}, so the harness can dump a
    machine-readable summary of a run. *)

(** Record an extra JSON entry under the current title. *)
val record : Vobs.Json.t -> unit

(** {1 Run metadata}

    The harness opens a ["_meta"] entry per experiment it runs; the
    experiment fills in what it knows. The dump then starts with a
    self-describing ["_meta"] object (tool, version, per-experiment
    seed and sim horizon) that {!results_json} prepends. *)

(** [begin_experiment name] opens the metadata entry subsequent
    {!note_meta} calls fill. Called by the harness before each
    experiment. *)
val begin_experiment : string -> unit

(** [note_meta ?seed ?horizon_ms ?events_executed ?wall_s ()] records
    the current experiment's seed, simulated horizon, simulator events
    executed, and/or host wall-clock seconds. [wall_s] is the one
    non-deterministic field of a dump — regression gating ignores it.
    A no-op outside a harness run. *)
val note_meta :
  ?seed:int ->
  ?horizon_ms:float ->
  ?events_executed:int ->
  ?wall_s:float ->
  unit ->
  unit

(** [note_removed name] declares experiment [name] (short name, e.g.
    ["e5"]) deliberately retired: it is listed under
    ["_meta"."removed"], which downgrades the bench-regression gate's
    missing-baseline-metric failure to a warning for that experiment.
    Regenerating the baseline is the permanent fix. *)
val note_removed : string -> unit

(** Everything recorded so far: an object mapping each title to its
    entries, in print order, preceded by ["_meta"] when the harness
    opened experiment entries. *)
val results_json : unit -> Vobs.Json.t

val reset_results : unit -> unit
