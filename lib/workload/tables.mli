(** Plain-text table rendering for the benchmark harness. *)

val print_title : string -> unit
val print_section : string -> unit

(** Aligned columns; the first column is left-aligned. *)
val print_table : header:string list -> string list list -> unit

type comparison = {
  label : string;
  paper : float option;  (** the figure the paper reports, if any *)
  measured : float;
  unit_ : string;
}

(** Paper-vs-measured with relative deviation. *)
val print_comparison : comparison list -> unit

val ms : float -> string
val count : int -> string
