(* A composite "working day" workload: several users on their
   workstations editing files, loading programs, printing, sending mail
   and writing to terminals over a stretch of simulated time — the mixed
   load the paper's installation carried ("in use ... for several
   months"). Deterministic for a given seed; used as a soak test and as
   the `day` benchmark. *)

module Kernel = Vkernel.Kernel
module Runtime = Vruntime.Runtime
module File_server = Vservices.File_server
module Program_manager = Vservices.Program_manager
open Vnaming

type totals = {
  mutable edits : int;
  mutable reads : int;
  mutable lists : int;
  mutable loads : int;
  mutable prints : int;
  mutable mails : int;
  mutable terminal_lines : int;
  mutable failures : int;
  (* Failure attribution (failures = ipc_failures + denied), plus the
     operations the resilience policy saved — the split E9 uses to
     attribute degradation to the transport vs. the servers. *)
  mutable ipc_failures : int;
  mutable denied : int;
  mutable retried_ok : int;
  latency : Vsim.Stats.Series.t;
}

let make_totals () =
  {
    edits = 0;
    reads = 0;
    lists = 0;
    loads = 0;
    prints = 0;
    mails = 0;
    terminal_lines = 0;
    failures = 0;
    ipc_failures = 0;
    denied = 0;
    retried_ok = 0;
    latency = Vsim.Stats.Series.create "op-latency";
  }

let pp_totals ppf t =
  Fmt.pf ppf
    "edits %d, reads %d, listings %d, program loads %d, print jobs %d,@ \
     mails %d, terminal lines %d, failures %d (ipc %d, denied %d; retried \
     ok %d);@ op latency %a"
    t.edits t.reads t.lists t.loads t.prints t.mails t.terminal_lines
    t.failures t.ipc_failures t.denied t.retried_ok
    Vsim.Stats.Series.pp_summary
    (Vsim.Stats.Series.summarize t.latency)

(* One user's behaviour: a loop of weighted random activities with
   exponential think time. *)
let user_day ?resilience ?(on_op = fun ~t0:_ ~t1:_ (_ : (unit, Vio.Verr.t) result) -> ())
    (t : Scenario.t) totals ~ws ~until prng =
  ignore
    (Scenario.spawn_client t ~ws ~name:(Fmt.str "user%d" ws) (fun self env ->
         let eng = Runtime.engine env in
         (match resilience with
         | None -> ()
         | Some policy ->
             (* Jitter seed fixed per workstation: the retry schedule
                replays exactly for a given day seed. *)
             Runtime.set_resilience env ~policy ~seed:(1000 + ws) ());
         (* Pin the home context once at login: the logical [home]
            binding re-resolves per use and, with several storage
            servers, may land on any of them — for stateful document
            editing a user binds once and works relatively (§4.2's
            bind-at-open pattern). *)
         (match Runtime.change_context env "[home]" with
         | Ok (_ : Context.spec) -> ()
         | Error e -> failwith (Fmt.str "Day: no home: %a" Vio.Verr.pp e));
         let my_doc i = Fmt.str "doc%d.txt" (i mod 4) in
         (* Seed the working set so day-one reads find their documents. *)
         for d = 0 to 3 do
           match Runtime.write_file env (my_doc d) (Bytes.of_string "initial") with
           | Ok () -> ()
           | Error e -> failwith (Fmt.str "Day: seed doc: %a" Vio.Verr.pp e)
         done;
         let timed f =
           let t0 = Vsim.Engine.now eng in
           let saved_before = (Runtime.resilience_stats env).Runtime.retried_ok in
           let outcome = f () in
           let t1 = Vsim.Engine.now eng in
           Vsim.Stats.Series.add totals.latency (t1 -. t0);
           totals.retried_ok <-
             totals.retried_ok
             + (Runtime.resilience_stats env).Runtime.retried_ok
             - saved_before;
           on_op ~t0 ~t1 outcome;
           match outcome with
           | Ok () -> ()
           | Error e -> (
               totals.failures <- totals.failures + 1;
               (* Attribute: transport-flavoured failures (including a
                  resilience give-up) vs. the server refusing. *)
               match e with
               | Vio.Verr.Ipc _ | Vio.Verr.Unavailable _ ->
                   totals.ipc_failures <- totals.ipc_failures + 1
               | Vio.Verr.Denied _ | Vio.Verr.Busy _ | Vio.Verr.Protocol _ ->
                   totals.denied <- totals.denied + 1)
         in
         let iteration i =
           match Vsim.Prng.int prng 100 with
           | r when r < 30 ->
               totals.edits <- totals.edits + 1;
               timed (fun () ->
                   Runtime.write_file env (my_doc i)
                     (Bytes.make (64 + Vsim.Prng.int prng 1024) 'e'))
           | r when r < 60 ->
               totals.reads <- totals.reads + 1;
               timed (fun () ->
                   Result.map (fun (_ : bytes) -> ()) (Runtime.read_file env (my_doc i)))
           | r when r < 72 ->
               totals.lists <- totals.lists + 1;
               timed (fun () ->
                   Result.map
                     (fun (_ : Descriptor.t list) -> ())
                     (Runtime.list_directory env ""))
           | r when r < 82 ->
               totals.loads <- totals.loads + 1;
               timed (fun () ->
                   Result.map
                     (fun (_ : bytes) -> ())
                     (Program_manager.load self
                        ~storage:(File_server.pid (Scenario.file_server t 0))
                        ~context:Context.Well_known.programs ~name:"editor"
                        ~size:16384))
           | r when r < 88 ->
               totals.prints <- totals.prints + 1;
               timed (fun () ->
                   Runtime.write_file env
                     (Fmt.str "[printer]u%d-job%d.ps" ws i)
                     (Bytes.make 600 'p'))
           | r when r < 94 ->
               totals.mails <- totals.mails + 1;
               timed (fun () ->
                   Runtime.append_file env "[mail]everyone@v.stanford"
                     (Bytes.of_string (Fmt.str "From: user%d\nstatus %d" ws i)))
           | _ ->
               totals.terminal_lines <- totals.terminal_lines + 1;
               timed (fun () ->
                   Runtime.append_file env "[terminals]console"
                     (Bytes.of_string (Fmt.str "user%d: step %d" ws i)))
         in
         let rec loop i =
           if Vsim.Engine.now eng < until then begin
             iteration i;
             Vsim.Proc.delay eng (Vsim.Prng.exponential prng ~mean:120.0);
             loop (i + 1)
           end
         in
         loop 0))

(* Run a day: [users] workstations for [duration_ms] of simulated time.
   Returns the totals and the scenario (for further inspection).
   [resilience] arms every user's runtime with the retry policy;
   [configure] runs on the built scenario before the clock starts (E9
   schedules its fault plan here); [on_op] sees every timed operation's
   (start, end, outcome). *)
let run ?(users = 3) ?(duration_ms = 60_000.0) ?(seed = 11) ?resilience
    ?configure ?on_op () =
  let t = Scenario.build ~workstations:users ~file_servers:2 ~seed () in
  (match
     Program_manager.install_image (Scenario.file_server t 0) ~name:"editor"
       ~image:(Bytes.make 16384 'E')
   with
  | Ok () -> ()
  | Error code -> invalid_arg (Fmt.str "Day.run: install: %a" Reply.pp code));
  let totals = make_totals () in
  let prng = Vsim.Prng.create ~seed in
  for ws = 0 to users - 1 do
    user_day ?resilience ?on_op t totals ~ws ~until:duration_ms
      (Vsim.Prng.split prng)
  done;
  (match configure with None -> () | Some f -> f t);
  Scenario.run t;
  (totals, t)
