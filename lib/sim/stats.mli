(** Counters and exact sample series for the measurement harness. *)

module Counter : sig
  type t

  val create : string -> t
  val incr : ?by:int -> t -> unit
  val value : t -> int
  val name : t -> string
  val reset : t -> unit
end

module Series : sig
  type t

  val create : string -> t
  val name : t -> string
  val add : t -> float -> unit
  val count : t -> int
  val to_array : t -> float array
  val sum : t -> float
  val mean : t -> float
  val min_ : t -> float
  val max_ : t -> float

  (** Sample standard deviation. *)
  val stddev : t -> float

  (** Quantile in [\[0, 1\]] by linear interpolation. *)
  val quantile : t -> float -> float

  val median : t -> float

  type summary = {
    n : int;
    mean : float;
    min : float;
    max : float;
    stddev : float;
    p50 : float;
    p95 : float;
    p99 : float;
  }

  val summarize : t -> summary
  val pp_summary : Format.formatter -> summary -> unit

  (** Equal-width histogram: [(bucket_lo, bucket_hi, count)] rows. *)
  val histogram : ?buckets:int -> t -> (float * float * int) list

  (** Render the histogram with '#' bars scaled to the fullest bucket. *)
  val pp_histogram : ?buckets:int -> ?bar_width:int -> Format.formatter -> t -> unit
end
