(** Cooperative simulated processes.

    A process is an OCaml fiber running inside the event loop. Blocking
    operations suspend the fiber and resume it through the event queue,
    so all interleaving is deterministic. Every blocking operation below
    must be called from within a fiber started by [spawn]. *)

(** A one-shot callback that resumes a suspended fiber with a value or
    an exception. Calling it twice raises [Invalid_argument]. *)
type 'a resumer = ('a, exn) result -> unit

(** Raised inside a fiber that is being torn down (host crash). *)
exception Killed of string

(** Hook invoked when a fiber dies with an uncaught exception. The
    default prints and re-raises (failing the run) except for [Killed],
    which is normal termination. *)
val on_uncaught : (name:string -> exn -> unit) ref

(** [spawn ?name engine body] schedules a new fiber to start now. *)
val spawn : ?name:string -> Engine.t -> (unit -> unit) -> unit

(** Suspend the current fiber; [register] receives the resumer and must
    arrange for it to be called exactly once (possibly immediately). *)
val suspend : ('a resumer -> unit) -> 'a

(** Block the current fiber for [duration] simulated ms. *)
val delay : Engine.t -> float -> unit

(** Let other events at the current instant run first. *)
val yield : Engine.t -> unit

(** Single-use synchronization cell (request/reply rendezvous). *)
module Ivar : sig
  type 'a t

  val create : unit -> 'a t

  (** Fill the cell, waking the reader if one is blocked. Raises
      [Invalid_argument] if already filled. *)
  val fill : 'a t -> ('a, exn) result -> unit

  val is_full : 'a t -> bool

  (** Block until filled; re-raises if filled with an error. At most one
      reader is allowed. *)
  val read : 'a t -> 'a
end

(** Unbounded FIFO with blocking receive. *)
module Mailbox : sig
  type 'a t

  val create : unit -> 'a t
  val send : 'a t -> 'a -> unit

  (** Block until an item is available. *)
  val receive : 'a t -> 'a

  (** Items currently queued. *)
  val length : 'a t -> int

  (** Fibers currently blocked in [receive]. *)
  val waiters : 'a t -> int

  (** Resume every blocked receiver with [exn]. *)
  val abort_waiters : 'a t -> exn -> unit
end
