(* Measurement helpers for the benchmark harness: counters and sample
   collections with summary statistics. Samples are stored exactly (the
   reproduction's runs are small enough) so quantiles are precise. *)

module Counter = struct
  type t = { name : string; mutable value : int }

  let create name = { name; value = 0 }
  let incr ?(by = 1) t = t.value <- t.value + by
  let value t = t.value
  let name t = t.name
  let reset t = t.value <- 0
end

module Series = struct
  type t = {
    name : string;
    mutable data : float array;
    mutable size : int;
  }

  let create name = { name; data = [||]; size = 0 }

  let name t = t.name

  let add t x =
    if t.size = Array.length t.data then begin
      let capacity = max 64 (2 * Array.length t.data) in
      let data = Array.make capacity 0.0 in
      Array.blit t.data 0 data 0 t.size;
      t.data <- data
    end;
    t.data.(t.size) <- x;
    t.size <- t.size + 1

  let count t = t.size

  let to_array t = Array.sub t.data 0 t.size

  let sum t =
    let acc = ref 0.0 in
    for i = 0 to t.size - 1 do
      acc := !acc +. t.data.(i)
    done;
    !acc

  let mean t = if t.size = 0 then nan else sum t /. float_of_int t.size

  let min_ t =
    if t.size = 0 then nan
    else Array.fold_left Float.min t.data.(0) (to_array t)

  let max_ t =
    if t.size = 0 then nan
    else Array.fold_left Float.max t.data.(0) (to_array t)

  let stddev t =
    if t.size < 2 then 0.0
    else begin
      let m = mean t in
      let acc = ref 0.0 in
      for i = 0 to t.size - 1 do
        let d = t.data.(i) -. m in
        acc := !acc +. (d *. d)
      done;
      sqrt (!acc /. float_of_int (t.size - 1))
    end

  (* Quantile by linear interpolation between order statistics. *)
  let quantile t q =
    if t.size = 0 then nan
    else if q < 0.0 || q > 1.0 then invalid_arg "Series.quantile"
    else begin
      let sorted = to_array t in
      Array.sort Float.compare sorted;
      let pos = q *. float_of_int (t.size - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = int_of_float (Float.ceil pos) in
      if lo = hi then sorted.(lo)
      else begin
        let frac = pos -. float_of_int lo in
        (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
      end
    end

  let median t = quantile t 0.5

  type summary = {
    n : int;
    mean : float;
    min : float;
    max : float;
    stddev : float;
    p50 : float;
    p95 : float;
    p99 : float;
  }

  let summarize t =
    {
      n = count t;
      mean = mean t;
      min = min_ t;
      max = max_ t;
      stddev = stddev t;
      p50 = quantile t 0.5;
      p95 = quantile t 0.95;
      p99 = quantile t 0.99;
    }

  let pp_summary ppf s =
    Fmt.pf ppf "n=%d mean=%.3f min=%.3f max=%.3f sd=%.3f p50=%.3f p95=%.3f p99=%.3f"
      s.n s.mean s.min s.max s.stddev s.p50 s.p95 s.p99

  (* Equal-width histogram of the samples; each bucket rendered as a bar
     scaled to the fullest bucket. *)
  let histogram ?(buckets = 10) t =
    if buckets <= 0 then invalid_arg "Series.histogram";
    if t.size = 0 then []
    else begin
      let lo = min_ t and hi = max_ t in
      let width = if hi > lo then (hi -. lo) /. float_of_int buckets else 1.0 in
      let counts = Array.make buckets 0 in
      for i = 0 to t.size - 1 do
        let b =
          int_of_float ((t.data.(i) -. lo) /. width)
          |> Int.min (buckets - 1)
          |> Int.max 0
        in
        counts.(b) <- counts.(b) + 1
      done;
      List.init buckets (fun b ->
          (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width),
           counts.(b)))
    end

  let pp_histogram ?(buckets = 10) ?(bar_width = 40) ppf t =
    let rows = histogram ~buckets t in
    let peak = List.fold_left (fun acc (_, _, c) -> max acc c) 1 rows in
    List.iter
      (fun (lo, hi, count) ->
        let bar = count * bar_width / peak in
        Fmt.pf ppf "%10.2f-%-10.2f %5d %s@." lo hi count (String.make bar '#'))
      rows
end
