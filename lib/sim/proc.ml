(* Cooperative simulated processes built on OCaml effects.

   Each process is a fiber whose blocking operations ([delay], [suspend])
   perform an effect; the handler installed by [spawn] captures the
   continuation and arranges for it to be resumed through the event
   queue. Resuming through the queue (rather than calling the
   continuation directly) keeps simulated time consistent and event
   ordering deterministic, and bounds stack depth. *)

type 'a resumer = ('a, exn) result -> unit

type _ Effect.t += Suspend : ('a resumer -> unit) -> 'a Effect.t

exception Killed of string

(* Diagnostics for a fiber that dies with an uncaught exception. By
   default we re-raise out of the engine loop so tests fail loudly; a
   scenario can install a softer handler. *)
let on_uncaught : (name:string -> exn -> unit) ref =
  ref (fun ~name e ->
      match e with
      | Killed _ -> () (* normal termination of a killed process *)
      | e ->
          Fmt.epr "vsim: process %S died: %s@." name (Printexc.to_string e);
          raise e)

let spawn ?(name = "proc") engine body =
  let handler (type a) (eff : a Effect.t) :
      ((a, unit) Effect.Deep.continuation -> unit) option =
    match eff with
    | Suspend register ->
        Some
          (fun k ->
            let resumed = ref false in
            let resume result =
              if !resumed then invalid_arg "Proc: continuation resumed twice";
              resumed := true;
              Engine.schedule engine (fun () ->
                  match result with
                  | Ok v -> Effect.Deep.continue k v
                  | Error e -> Effect.Deep.discontinue k e)
            in
            register resume)
    | _ -> None
  in
  Engine.schedule engine (fun () ->
      Effect.Deep.match_with body ()
        {
          retc = (fun () -> ());
          exnc = (fun e -> !on_uncaught ~name e);
          effc = handler;
        })

let suspend register = Effect.perform (Suspend register)

let delay engine duration =
  if duration < 0.0 then invalid_arg "Proc.delay: negative duration";
  suspend (fun resume -> Engine.schedule ~delay:duration engine (fun () -> resume (Ok ())))

let yield engine = delay engine 0.0

(* A single-use synchronization cell: one waiter, one fulfiller. Used for
   request/reply rendezvous in the kernel. *)
module Ivar = struct
  type 'a state =
    | Empty
    | Waiting of 'a resumer
    | Full of ('a, exn) result

  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty }

  let fill t result =
    match t.state with
    | Empty -> t.state <- Full result
    | Waiting resume ->
        t.state <- Full result;
        resume result
    | Full _ -> invalid_arg "Ivar.fill: already filled"

  let is_full t = match t.state with Full _ -> true | _ -> false

  (* Block the current fiber until the ivar is filled. *)
  let read t =
    match t.state with
    | Full (Ok v) -> v
    | Full (Error e) -> raise e
    | Waiting _ -> invalid_arg "Ivar.read: already has a waiter"
    | Empty ->
        suspend (fun resume ->
            match t.state with
            | Empty -> t.state <- Waiting resume
            | Full result -> resume result
            | Waiting _ -> assert false)
end

(* An unbounded FIFO mailbox with blocking receive; the building block
   for per-process kernel message queues. *)
module Mailbox = struct
  type 'a t = {
    items : 'a Queue.t;
    waiters : 'a resumer Queue.t;
  }

  let create () = { items = Queue.create (); waiters = Queue.create () }

  let send t x =
    match Queue.take_opt t.waiters with
    | Some resume -> resume (Ok x)
    | None -> Queue.add x t.items

  let receive t =
    match Queue.take_opt t.items with
    | Some x -> x
    | None -> suspend (fun resume -> Queue.add resume t.waiters)

  let length t = Queue.length t.items

  let waiters t = Queue.length t.waiters

  (* Fail every blocked receiver; used when a host crashes. *)
  let abort_waiters t exn =
    let rec loop () =
      match Queue.take_opt t.waiters with
      | None -> ()
      | Some resume ->
          resume (Error exn);
          loop ()
    in
    loop ()
end
