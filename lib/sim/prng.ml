(* Deterministic splittable PRNG (splitmix64). Every source of
   randomness in a scenario draws from a stream derived from the
   scenario seed, so runs are exactly reproducible and independent
   subsystems (e.g. per-host identifier generators) do not perturb each
   other's sequences. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* Derive an independent stream; the child's sequence does not overlap
   the parent's for any practical draw count. *)
let split t = { state = mix (next_int64 t) }

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  bits t mod bound

(* Uniform float in [0, 1). *)
let float t =
  let x = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float x /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Exponential variate with the given mean; used for request
   inter-arrival times in workloads. *)
let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Prng.exponential: mean must be positive";
  let u = float t in
  -.mean *. log (1.0 -. u)

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
