(* Array-based binary min-heap, used as the simulator's event queue.
   Elements are ordered by a user-supplied comparison on the element type;
   ties must be broken by the caller (the engine uses sequence numbers) so
   that the heap never has to guarantee stability itself. *)

type 'a t = {
  compare : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~compare = { compare; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t witness =
  let capacity = max 16 (2 * Array.length t.data) in
  let data = Array.make capacity witness in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.compare t.data.(i) t.data.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && t.compare t.data.(left) t.data.(!smallest) < 0 then
    smallest := left;
  if right < t.size && t.compare t.data.(right) t.data.(!smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  if t.size = Array.length t.data then grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* The vacated slot must not keep the popped element (and whatever
         its closures capture) reachable; duplicating a live element is
         the cheapest way to clear it that works for every element type
         (no dummy value exists for an arbitrary ['a]). *)
      t.data.(t.size) <- t.data.(0);
      sift_down t 0
    end
    else t.data <- [||];
    Some top
  end

let clear t =
  t.data <- [||];
  t.size <- 0

(* Drain the heap into an ordered list; used by tests. *)
let pop_all t =
  let rec loop acc =
    match pop t with None -> List.rev acc | Some x -> loop (x :: acc)
  in
  loop []
