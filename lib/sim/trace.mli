(** Timestamped event tracing for timelines and debugging. *)

type record = { time : float; category : string; message : string }

type t

val create : Engine.t -> t
val enable : t -> unit
val disable : t -> unit

(** Keep only records whose category is in the list. *)
val set_categories : t -> string list -> unit

(** [emit t ~category fmt ...] records a formatted message at the
    current simulated time. *)
val emit : t -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** Records in emission order. *)
val records : t -> record list

val clear : t -> unit
val pp_record : Format.formatter -> record -> unit
val pp : Format.formatter -> t -> unit

(** Like [pp] but with times relative to the first record. *)
val pp_relative : Format.formatter -> t -> unit
