(** Deterministic splittable PRNG (splitmix64).

    All randomness in a scenario derives from one seed, keeping runs
    exactly reproducible. [split] yields an independent stream so
    subsystems cannot perturb each other's draws. *)

type t

val create : seed:int -> t

(** An independent child stream. *)
val split : t -> t

(** 62 uniformly random bits as a non-negative [int]. *)
val bits : t -> int

(** Uniform integer in [\[0, bound)]. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

val bool : t -> bool

(** Exponential variate with the given [mean]. *)
val exponential : t -> mean:float -> float

(** Uniform choice from a non-empty list. *)
val pick : t -> 'a list -> 'a

(** Fisher-Yates shuffle. *)
val shuffle : t -> 'a list -> 'a list
