(* Event tracing. Subsystems emit timestamped records into a trace when
   one is attached; the bench harness uses this to print the
   Send-Receive-Reply timeline of Figure 1 and forwarding chains. *)

type record = { time : float; category : string; message : string }

type t = {
  engine : Engine.t;
  mutable records : record list; (* newest first *)
  mutable enabled : bool;
  mutable filter : string -> bool;
}

let create engine =
  { engine; records = []; enabled = true; filter = (fun _ -> true) }

let enable t = t.enabled <- true
let disable t = t.enabled <- false

(* Restrict recording to the given categories. *)
let set_categories t categories =
  t.filter <- (fun c -> List.mem c categories)

let emit t ~category fmt =
  Format.kasprintf
    (fun message ->
      if t.enabled && t.filter category then
        t.records <-
          { time = Engine.now t.engine; category; message } :: t.records)
    fmt

let records t = List.rev t.records

let clear t = t.records <- []

let pp_record ppf r =
  Fmt.pf ppf "%8.3f ms  %-10s %s" r.time r.category r.message

let pp ppf t =
  List.iter (fun r -> Fmt.pf ppf "%a@." pp_record r) (records t)

(* Render relative to the first record; used for per-transaction
   timelines where absolute simulation time is noise. *)
let pp_relative ppf t =
  match records t with
  | [] -> ()
  | first :: _ as rs ->
      let base = first.time in
      List.iter
        (fun r ->
          Fmt.pf ppf "%+8.3f ms  %-10s %s@." (r.time -. base) r.category
            r.message)
        rs
