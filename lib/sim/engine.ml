(* The discrete-event core: a virtual clock and an ordered queue of
   pending actions. All simulated concurrency in the V-System
   reproduction (kernels, network, servers) bottoms out in [schedule].

   Determinism: events at equal times run in scheduling order (sequence
   numbers break ties), and nothing in the engine consults wall-clock
   time or ambient randomness, so a run is a pure function of the
   initial scenario and PRNG seed. *)

type event = { time : float; seq : int; action : unit -> unit }

let compare_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

type t = {
  mutable now : float;
  mutable next_seq : int;
  mutable executed : int;
  mutable running : bool;
  queue : event Heap.t;
}

exception Time_went_backwards of { now : float; requested : float }

let create () =
  {
    now = 0.0;
    next_seq = 0;
    executed = 0;
    running = false;
    queue = Heap.create ~compare:compare_event;
  }

let now t = t.now

let pending t = Heap.length t.queue

let executed t = t.executed

let schedule_at t time action =
  if time < t.now then raise (Time_went_backwards { now = t.now; requested = time });
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.queue { time; seq; action }

let schedule ?(delay = 0.0) t action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (t.now +. delay) action

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
      t.now <- ev.time;
      t.executed <- t.executed + 1;
      ev.action ();
      true

let run ?until ?max_events t =
  if t.running then invalid_arg "Engine.run: already running";
  t.running <- true;
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue () =
    !budget > 0
    &&
    match Heap.peek t.queue with
    | None -> false
    | Some ev -> ( match until with None -> true | Some limit -> ev.time <= limit)
  in
  let finally () = t.running <- false in
  (try
     while continue () do
       decr budget;
       ignore (step t : bool)
     done
   with e ->
     finally ();
     raise e);
  finally ();
  (* If we stopped on a time horizon, advance the clock to it so that a
     subsequent [run ~until:later] resumes from the horizon. *)
  match until with
  | Some limit when t.now < limit && not (Heap.is_empty t.queue) -> ()
  | Some limit when t.now < limit -> t.now <- limit
  | _ -> ()
