(* The discrete-event core: a virtual clock and an ordered queue of
   pending actions. All simulated concurrency in the V-System
   reproduction (kernels, network, servers) bottoms out in [schedule].

   Determinism: events at equal times run in scheduling order (sequence
   numbers break ties), and nothing that affects the simulation
   consults wall-clock time or ambient randomness, so a run is a pure
   function of the initial scenario and PRNG seed. (The engine does
   read the process clock around [run], but only to report events/sec;
   no simulated behaviour depends on it.)

   Two interchangeable queue backends implement the same (time, seq)
   total order: the hierarchical timer wheel (default — O(1) push and
   cancel, tuned for the kernel's cancel-heavy retransmission timers)
   and the original binary heap, kept as the oracle the wheel is
   property-tested against and as the baseline the engine-throughput
   bench (e12) measures speedup over. *)

type backend = Wheel_queue | Heap_queue

(* A cancellable handle on a scheduled event. *)
type timer = (unit -> unit) Wheel.node

type t = {
  mutable now : float;
  mutable next_seq : int;
  mutable executed : int;
  mutable running : bool;
  backend : backend;
  wheel : (unit -> unit) Wheel.t;
  heap : (unit -> unit) Wheel.node Heap.t;
  (* The heap backend tracks liveness itself; the wheel keeps its own. *)
  mutable heap_live : int;
  mutable heap_cancelled : int;
  (* Last-run throughput, for `vsh engine stats` and the bench harness:
     events executed by the most recent [run] and the CPU seconds it
     took. *)
  mutable run_start_events : int;
  mutable run_start_cpu : float;
  mutable last_run_events : int;
  mutable last_run_cpu_s : float;
}

(* Events executed across every engine in the process — lets the bench
   harness report per-experiment event counts without threading each
   experiment's private engine out. *)
let global_executed_events = ref 0
let global_executed () = !global_executed_events

exception Time_went_backwards of { now : float; requested : float }

let create ?(backend = Wheel_queue) () =
  {
    now = 0.0;
    next_seq = 0;
    executed = 0;
    running = false;
    backend;
    wheel = Wheel.create ();
    heap = Heap.create ~compare:Wheel.compare_node;
    heap_live = 0;
    heap_cancelled = 0;
    run_start_events = 0;
    run_start_cpu = 0.0;
    last_run_events = 0;
    last_run_cpu_s = 0.0;
  }

let backend t = t.backend
let now t = t.now

let pending t =
  match t.backend with
  | Wheel_queue -> Wheel.length t.wheel
  | Heap_queue -> t.heap_live

let executed t = t.executed

let cancelled_timers t =
  match t.backend with
  | Wheel_queue -> Wheel.cancelled t.wheel
  | Heap_queue -> t.heap_cancelled

let timer_at t time action =
  if time < t.now then raise (Time_went_backwards { now = t.now; requested = time });
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  match t.backend with
  | Wheel_queue -> Wheel.push t.wheel ~time ~seq action
  | Heap_queue ->
      let node = Wheel.make ~time ~seq action in
      Heap.push t.heap node;
      t.heap_live <- t.heap_live + 1;
      node

let timer ?(delay = 0.0) t action =
  if delay < 0.0 then invalid_arg "Engine.timer: negative delay";
  timer_at t (t.now +. delay) action

let cancel t handle =
  match t.backend with
  | Wheel_queue -> ignore (Wheel.cancel t.wheel handle : bool)
  | Heap_queue ->
      if Wheel.consume handle then begin
        t.heap_live <- t.heap_live - 1;
        t.heap_cancelled <- t.heap_cancelled + 1
      end

let schedule_at t time action = ignore (timer_at t time action : timer)

let schedule ?(delay = 0.0) t action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (t.now +. delay) action

(* Next live event, dead ones (cancelled timers) skipped. The heap
   drops its dead nodes here, one pop each; the wheel drops them in
   bulk as its cursor moves. *)
let rec peek_node t =
  match t.backend with
  | Wheel_queue -> Wheel.peek t.wheel
  | Heap_queue -> (
      match Heap.peek t.heap with
      | None -> None
      | Some node when Wheel.live node -> Some node
      | Some _ ->
          ignore (Heap.pop t.heap : timer option);
          peek_node t)

let pop_node t =
  match t.backend with
  | Wheel_queue -> Wheel.pop t.wheel
  | Heap_queue -> (
      match peek_node t with
      | None -> None
      | Some node ->
          ignore (Heap.pop t.heap : timer option);
          ignore (Wheel.consume node : bool);
          t.heap_live <- t.heap_live - 1;
          Some node)

let step t =
  match pop_node t with
  | None -> false
  | Some node ->
      t.now <- Wheel.time node;
      t.executed <- t.executed + 1;
      incr global_executed_events;
      (Wheel.value node) ();
      true

let run ?until ?max_events t =
  if t.running then invalid_arg "Engine.run: already running";
  t.running <- true;
  t.run_start_events <- t.executed;
  t.run_start_cpu <- Sys.time ();
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue () =
    !budget > 0
    &&
    match peek_node t with
    | None -> false
    | Some node -> (
        match until with
        | None -> true
        | Some limit -> Wheel.time node <= limit)
  in
  let finally () =
    t.running <- false;
    t.last_run_events <- t.executed - t.run_start_events;
    t.last_run_cpu_s <- Sys.time () -. t.run_start_cpu
  in
  (try
     while continue () do
       decr budget;
       ignore (step t : bool)
     done
   with e ->
     finally ();
     raise e);
  finally ();
  (* If we stopped on a time horizon, advance the clock to it so that a
     subsequent [run ~until:later] resumes from the horizon. *)
  match until with
  | Some limit when t.now < limit && pending t > 0 -> ()
  | Some limit when t.now < limit -> t.now <- limit
  | _ -> ()

let last_run_events t = t.last_run_events
let last_run_cpu_s t = t.last_run_cpu_s

let events_per_sec t =
  if t.running then begin
    let dt = Sys.time () -. t.run_start_cpu in
    if dt <= 0.0 then 0.0
    else float_of_int (t.executed - t.run_start_events) /. dt
  end
  else if t.last_run_cpu_s > 0.0 then
    float_of_int t.last_run_events /. t.last_run_cpu_s
  else 0.0
