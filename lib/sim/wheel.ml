(* Hierarchical timer wheel: the simulator's event queue, tuned for the
   timer-heavy load of the kernel's retransmission machinery (most
   scheduled events are probe timers that are cancelled a few simulated
   milliseconds after being armed, hundreds of milliseconds before they
   would fire).

   Five levels of 32 slots bucket events by the tick distance from the
   cursor: level 0 holds events due within 32 ticks, level 1 within
   32^2, up to 32^5; anything farther sits in an overflow list that is
   re-seated when the wheels drain. A per-level occupancy bitmap (one
   int; 32 slots so every bit fits OCaml's 63-bit int — 64 slots would
   need bit 63, and [1 lsl 63] is 0) lets the cursor skip empty regions
   without visiting every tick, so an idle stretch costs O(boundaries
   crossed), not O(ticks).

   Ordering and determinism: ticks only bucket. When the cursor reaches
   a slot, its events move into a small binary [ready] heap ordered by
   the exact (time, seq) key — the same total order the engine's binary
   heap used — so events executing out of one tick preserve scheduling
   order, and E1-E11 replay bit-identically on either queue. Events
   scheduled at or before the cursor's tick (the cursor may sit ahead
   of simulated now after a peek) go straight to the ready heap, which
   keeps the global order exact in that case too.

   Cancellation is O(1): a node is marked dead and merely skipped (and
   dropped) when the cursor would otherwise move it, so a satisfied
   retransmit timer costs one store instead of a heap percolation now
   and a dead pop later.

   Slot-collision argument (why one list per slot suffices): a level-l
   node is placed with delta in [32^l, 32^(l+1)), so its level-l digit
   (tick >> 5l, mod 32) differs from the cursor's and is reached within
   one level-l wrap; two ticks sharing a slot would have to differ by a
   multiple of 32^(l+1), which contradicts the delta bound. Hence every
   slot holds exactly one tick-value's events at any moment, and
   cascading a slot re-places events whose remaining delta is now
   strictly smaller. *)

type 'a node = {
  n_time : float;
  n_seq : int;
  n_value : 'a;
  mutable n_live : bool;
}

let make ~time ~seq v = { n_time = time; n_seq = seq; n_value = v; n_live = true }
let time n = n.n_time
let seq n = n.n_seq
let value n = n.n_value
let live n = n.n_live

(* Mark a node dead; true if it was live. Used both for cancellation
   and for consuming a popped node (so cancelling an already-fired
   timer is naturally a no-op). *)
let consume n =
  if n.n_live then begin
    n.n_live <- false;
    true
  end
  else false

let compare_node a b =
  let c = Float.compare a.n_time b.n_time in
  if c <> 0 then c else Int.compare a.n_seq b.n_seq

let default_tick_ms = 0.25

type 'a t = {
  tick_ms : float;
  mutable cur : int;  (* cursor tick: slots at or before it are drained *)
  slots : 'a node list array;  (* 5 levels x 32 slots, flattened *)
  occ : int array;  (* per-level occupancy bitmap over its 32 slots *)
  ready : 'a node Heap.t;  (* due nodes, exact (time, seq) order *)
  mutable ovf : 'a node list;  (* beyond level 4's span *)
  mutable ovf_min : int;  (* smallest tick in [ovf]; -1 when empty *)
  mutable live_count : int;
  mutable total_count : int;  (* live + dead still inside the structure *)
  mutable cancelled_count : int;
}

let create ?(tick_ms = default_tick_ms) () =
  if tick_ms <= 0.0 then invalid_arg "Wheel.create: tick_ms must be positive";
  {
    tick_ms;
    cur = 0;
    slots = Array.make 160 [];
    occ = Array.make 5 0;
    ready = Heap.create ~compare:compare_node;
    ovf = [];
    ovf_min = -1;
    live_count = 0;
    total_count = 0;
    cancelled_count = 0;
  }

let length t = t.live_count
let is_empty t = t.live_count = 0
let cancelled t = t.cancelled_count

let tick_of t time = int_of_float (time /. t.tick_ms)

let add t level slot node =
  let i = (level lsl 5) + slot in
  t.slots.(i) <- node :: t.slots.(i);
  t.occ.(level) <- t.occ.(level) lor (1 lsl slot)

let place t node =
  let tick = tick_of t node.n_time in
  let delta = tick - t.cur in
  if delta <= 0 then Heap.push t.ready node
  else if delta < 32 then add t 0 (tick land 31) node
  else if delta < 1024 then add t 1 ((tick lsr 5) land 31) node
  else if delta < 32768 then add t 2 ((tick lsr 10) land 31) node
  else if delta < 1048576 then add t 3 ((tick lsr 15) land 31) node
  else if delta < 33554432 then add t 4 ((tick lsr 20) land 31) node
  else begin
    t.ovf <- node :: t.ovf;
    if t.ovf_min < 0 || tick < t.ovf_min then t.ovf_min <- tick
  end

let push t ~time ~seq v =
  let node = make ~time ~seq v in
  place t node;
  t.live_count <- t.live_count + 1;
  t.total_count <- t.total_count + 1;
  node

let cancel t node =
  if consume node then begin
    t.live_count <- t.live_count - 1;
    t.cancelled_count <- t.cancelled_count + 1;
    true
  end
  else false

(* Move a slot's events down: live ones re-place (into the ready heap
   once due), dead ones are dropped here — cancellation's deferred
   cleanup. *)
let drain_slot t level slot =
  let i = (level lsl 5) + slot in
  match t.slots.(i) with
  | [] -> t.occ.(level) <- t.occ.(level) land lnot (1 lsl slot)
  | nodes ->
      t.slots.(i) <- [];
      t.occ.(level) <- t.occ.(level) land lnot (1 lsl slot);
      List.iter
        (fun n ->
          if n.n_live then place t n else t.total_count <- t.total_count - 1)
        nodes

(* Index of the lowest set bit; [x] must be non-zero. Cold path (runs
   once per cursor hop), so a loop beats a de Bruijn table in clarity. *)
let ctz x =
  let rec go x i = if x land 1 = 1 then i else go (x lsr 1) (i + 1) in
  go x 0

(* The tick of the next occupied level-0 slot strictly after the
   cursor. Slot s holds the unique tick = s (mod 32) within
   (cur, cur + 32). *)
let next_l0_tick t =
  let base = t.cur land lnot 31 in
  let curslot = t.cur land 31 in
  let above = t.occ.(0) land lnot ((1 lsl (curslot + 1)) - 1) in
  if above <> 0 then base + ctz above else base + 32 + ctz t.occ.(0)

(* Re-place the overflow list against the current cursor: nodes now
   within level 4's span enter the wheel, the rest return to [ovf].
   Called whenever the cursor crosses a level-4 span boundary — every
   hop target is at most the next 32-aligned boundary, so the cursor
   provably stops at each 2^25-aligned tick it crosses and an overflow
   node (whose span boundary is strictly ahead at placement) can never
   be sailed past while it still sits in [ovf]. *)
let refill t =
  match t.ovf with
  | [] -> ()
  | nodes ->
      t.ovf <- [];
      t.ovf_min <- -1;
      List.iter
        (fun n ->
          if n.n_live then place t n else t.total_count <- t.total_count - 1)
        nodes

(* Advance the cursor to [target], performing the level cascades its
   boundary crossings require. Hops never skip an unprocessed boundary
   of an occupied level, so cascading only at the destination is
   sound. *)
let goto t target =
  t.cur <- target;
  if target land 33554431 = 0 then refill t;
  if target land 31 = 0 then begin
    if target land 1023 = 0 then begin
      if target land 32767 = 0 then begin
        if target land 1048575 = 0 then drain_slot t 4 ((target lsr 20) land 31);
        drain_slot t 3 ((target lsr 15) land 31)
      end;
      drain_slot t 2 ((target lsr 10) land 31)
    end;
    drain_slot t 1 ((target lsr 5) land 31)
  end;
  drain_slot t 0 (target land 31)

(* Everything left is dead: drop it all so cancelled actions (and their
   captures) become collectable without walking the cursor over them. *)
let purge t =
  Array.fill t.slots 0 160 [];
  Array.fill t.occ 0 5 0;
  Heap.clear t.ready;
  t.ovf <- [];
  t.ovf_min <- -1;
  t.total_count <- 0

(* All wheel levels drained: restart the hierarchy at the overflow
   list's earliest tick. Each overflow node is re-examined once per
   level-4 span, not per tick. *)
let reseat t =
  t.cur <- t.ovf_min;
  refill t

(* One cursor hop towards the next occupied tick. Precondition: the
   ready heap is empty and a live node exists somewhere. *)
let hop t =
  let next32 = ((t.cur lsr 5) + 1) lsl 5 in
  if t.occ.(0) <> 0 then goto t (min (next_l0_tick t) next32)
  else if t.occ.(1) <> 0 then goto t next32
  else if t.occ.(2) <> 0 then goto t (((t.cur lsr 10) + 1) lsl 10)
  else if t.occ.(3) <> 0 then goto t (((t.cur lsr 15) + 1) lsl 15)
  else if t.occ.(4) <> 0 then goto t (((t.cur lsr 20) + 1) lsl 20)
  else reseat t

(* Advance until the ready heap's top is a live node; None if no live
   node exists anywhere. *)
let rec settle t =
  match Heap.peek t.ready with
  | Some n when not n.n_live ->
      ignore (Heap.pop t.ready : 'a node option);
      t.total_count <- t.total_count - 1;
      settle t
  | Some n -> Some n
  | None ->
      if t.live_count = 0 then begin
        if t.total_count > 0 then purge t;
        None
      end
      else begin
        hop t;
        settle t
      end

let peek t = settle t

let pop t =
  match settle t with
  | None -> None
  | Some node ->
      ignore (Heap.pop t.ready : 'a node option);
      ignore (consume node : bool);
      t.live_count <- t.live_count - 1;
      t.total_count <- t.total_count - 1;
      Some node
