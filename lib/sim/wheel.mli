(** Hierarchical timer wheel with O(1) cancellation.

    The engine's default event queue: five levels of 32 slots bucket
    events by tick distance from a cursor, an overflow list catches
    events beyond the top level's span, and a small binary heap orders
    the currently-due bucket by the exact (time, seq) key — so the
    execution order is identical to a single binary heap over the same
    keys, while push and cancel are O(1) and an idle stretch costs one
    hop per occupied boundary rather than one pop per event.

    Cancelled nodes are dropped lazily (when the cursor would otherwise
    move them), so a timer armed 500 ms out and cancelled 2 ms later
    never pays a heap percolation. *)

type 'a t

(** A scheduled entry: an immutable (time, seq, value) plus a liveness
    mark. The node is the cancellation handle. *)
type 'a node

(** [create ~tick_ms ()] is an empty wheel whose buckets are
    [tick_ms] wide (default 0.25 ms). Ordering is exact regardless of
    the tick width; the width only tunes bucketing efficiency. *)
val create : ?tick_ms:float -> unit -> 'a t

(** Live (scheduled, not cancelled, not fired) nodes. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** Total nodes cancelled over the wheel's lifetime. *)
val cancelled : 'a t -> int

(** [push t ~time ~seq v] schedules [v] and returns its handle. [seq]
    must make (time, seq) unique; ties in [time] execute in [seq]
    order. *)
val push : 'a t -> time:float -> seq:int -> 'a -> 'a node

(** O(1) cancel: [true] if the node was live (it will never be
    returned by [pop]); [false] if it already fired or was already
    cancelled. *)
val cancel : 'a t -> 'a node -> bool

(** Earliest live node, without consuming it. May advance the internal
    cursor; ordering of later pushes is unaffected. *)
val peek : 'a t -> 'a node option

(** Remove and return the earliest live node, marking it fired (a
    later [cancel] of it is a no-op). *)
val pop : 'a t -> 'a node option

(** {1 Nodes}

    [make]/[consume] exist so an alternative queue (the binary-heap
    test oracle) can store the same nodes and share cancellation
    semantics. *)

val time : 'a node -> float
val seq : 'a node -> int
val value : 'a node -> 'a
val live : 'a node -> bool
val compare_node : 'a node -> 'a node -> int

(** A live node not yet in any wheel. *)
val make : time:float -> seq:int -> 'a -> 'a node

(** Mark a node dead; [true] if it was live. *)
val consume : 'a node -> bool
