(** Deterministic discrete-event engine.

    Times are in simulated {b milliseconds} throughout the V-System
    reproduction, matching the units the paper reports. Events scheduled
    for the same instant execute in scheduling order. *)

type t

(** Raised by [schedule_at] when asked to schedule in the past. *)
exception Time_went_backwards of { now : float; requested : float }

val create : unit -> t

(** Current simulated time (ms). *)
val now : t -> float

(** Number of events waiting in the queue. *)
val pending : t -> int

(** Total number of events executed so far. *)
val executed : t -> int

(** [schedule ?delay t f] runs [f] at [now t +. delay] (default: now). *)
val schedule : ?delay:float -> t -> (unit -> unit) -> unit

(** [schedule_at t time f] runs [f] at absolute [time]. *)
val schedule_at : t -> float -> (unit -> unit) -> unit

(** Execute the single earliest event. Returns [false] if the queue was
    empty. *)
val step : t -> bool

(** Run until the queue empties, [until] (inclusive) is reached, or
    [max_events] events have executed. Not reentrant. *)
val run : ?until:float -> ?max_events:int -> t -> unit
