(** Deterministic discrete-event engine.

    Times are in simulated {b milliseconds} throughout the V-System
    reproduction, matching the units the paper reports. Events scheduled
    for the same instant execute in scheduling order.

    The queue behind the engine is one of two backends implementing the
    same (time, seq) total order: the hierarchical timer wheel
    ({!Wheel}, the default — O(1) scheduling and cancellation) or the
    original binary heap, kept as the property-test oracle and the
    throughput-bench baseline. A run's event order is identical on
    either. *)

type t

type backend =
  | Wheel_queue  (** hierarchical timer wheel (default) *)
  | Heap_queue  (** binary heap: the oracle/baseline backend *)

(** Raised by [schedule_at] when asked to schedule in the past. *)
exception Time_went_backwards of { now : float; requested : float }

val create : ?backend:backend -> unit -> t

val backend : t -> backend

(** Current simulated time (ms). *)
val now : t -> float

(** Number of live (scheduled, not cancelled) events waiting. *)
val pending : t -> int

(** Total number of events executed so far. *)
val executed : t -> int

(** Total number of timers cancelled before firing. *)
val cancelled_timers : t -> int

(** [schedule ?delay t f] runs [f] at [now t +. delay] (default: now). *)
val schedule : ?delay:float -> t -> (unit -> unit) -> unit

(** [schedule_at t time f] runs [f] at absolute [time]. *)
val schedule_at : t -> float -> (unit -> unit) -> unit

(** {1 Cancellable timers}

    [timer]/[timer_at] are [schedule]/[schedule_at] returning a handle;
    [cancel] is O(1) and the cancelled action never runs. Cancelling a
    timer that already fired (or was already cancelled) is a no-op —
    including from an event executing at the timer's own timestamp. *)

type timer

val timer : ?delay:float -> t -> (unit -> unit) -> timer
val timer_at : t -> float -> (unit -> unit) -> timer
val cancel : t -> timer -> unit

(** Execute the single earliest event. Returns [false] if the queue was
    empty. *)
val step : t -> bool

(** Run until the queue empties, [until] (inclusive) is reached, or
    [max_events] events have executed. Not reentrant. *)
val run : ?until:float -> ?max_events:int -> t -> unit

(** {1 Throughput introspection}

    Bookkeeping for `vsh engine stats` and the bench harness; reads the
    process clock but never influences the simulation. *)

(** Events executed by the most recent [run]. *)
val last_run_events : t -> int

(** CPU seconds the most recent [run] took. *)
val last_run_cpu_s : t -> float

(** Events/sec of the current run if one is in progress, else of the
    last completed run (0 before any run). *)
val events_per_sec : t -> float

(** Events executed across every engine in the process — the bench
    harness's per-experiment trajectory counter. *)
val global_executed : unit -> int
