(** Array-based binary min-heap.

    The simulator's event queue: [O(log n)] push/pop ordered by a
    user-supplied comparison. The heap is not stable; callers that need
    FIFO ordering among equal keys must fold a tie-breaker (e.g. a
    sequence number) into [compare]. *)

type 'a t

(** [create ~compare] is an empty heap ordered by [compare]. *)
val create : compare:('a -> 'a -> int) -> 'a t

(** Number of elements currently in the heap. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push t x] inserts [x]. *)
val push : 'a t -> 'a -> unit

(** Smallest element, without removing it. *)
val peek : 'a t -> 'a option

(** Remove and return the smallest element. Popped elements are not
    kept reachable by the backing array. *)
val pop : 'a t -> 'a option

(** Drop every element and release the backing array. *)
val clear : 'a t -> unit

(** Drain the heap in ascending order. *)
val pop_all : 'a t -> 'a list
