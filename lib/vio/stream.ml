(* Byte-stream adapters over instances: buffered sequential readers and
   writers, the client-side convenience V programs use for file-like
   access to any server speaking the I/O protocol. *)

type reader = {
  r_instance : Client.remote_instance;
  mutable r_block : int;
  mutable r_buf : bytes;
  mutable r_pos : int;
  mutable r_eof : bool;
}

let reader instance =
  { r_instance = instance; r_block = 0; r_buf = Bytes.empty; r_pos = 0; r_eof = false }

let refill self r =
  if r.r_eof then Ok false
  else
    match Client.read_block self r.r_instance ~block:r.r_block with
    | Ok data ->
        r.r_block <- r.r_block + 1;
        r.r_buf <- data;
        r.r_pos <- 0;
        if Bytes.length data < Client.block_size r.r_instance then r.r_eof <- true;
        Ok (Bytes.length data > 0)
    | Error (Verr.Denied Vnaming.Reply.End_of_file) ->
        r.r_eof <- true;
        r.r_buf <- Bytes.empty;
        r.r_pos <- 0;
        Ok false
    | Error e -> Error e

(* Read up to [len] bytes; [Ok Bytes.empty] signals end of stream. *)
let read self r len =
  if len < 0 then invalid_arg "Stream.read: negative length";
  let out = Buffer.create len in
  let rec loop remaining =
    if remaining = 0 then Ok (Buffer.to_bytes out)
    else begin
      let available = Bytes.length r.r_buf - r.r_pos in
      if available > 0 then begin
        let take = min available remaining in
        Buffer.add_subbytes out r.r_buf r.r_pos take;
        r.r_pos <- r.r_pos + take;
        loop (remaining - take)
      end
      else
        match refill self r with
        | Ok true -> loop remaining
        | Ok false -> Ok (Buffer.to_bytes out)
        | Error e -> Error e
    end
  in
  loop len

(* Read one '\n'-terminated line (newline stripped); [Ok None] at end of
   stream. *)
let read_line self r =
  let out = Buffer.create 32 in
  let rec loop () =
    if r.r_pos < Bytes.length r.r_buf then begin
      let c = Bytes.get r.r_buf r.r_pos in
      r.r_pos <- r.r_pos + 1;
      if c = '\n' then Ok (Some (Buffer.contents out))
      else begin
        Buffer.add_char out c;
        loop ()
      end
    end
    else
      match refill self r with
      | Ok true -> loop ()
      | Ok false ->
          if Buffer.length out = 0 then Ok None else Ok (Some (Buffer.contents out))
      | Error e -> Error e
  in
  loop ()

type writer = {
  w_instance : Client.remote_instance;
  mutable w_block : int;
  w_buf : Buffer.t;
}

let writer instance = { w_instance = instance; w_block = 0; w_buf = Buffer.create 512 }

let flush_full_blocks self w ~final =
  let bs = Client.block_size w.w_instance in
  let rec loop () =
    let pending = Buffer.length w.w_buf in
    if pending >= bs || (final && pending > 0) then begin
      let take = min bs pending in
      let chunk = Bytes.sub (Buffer.to_bytes w.w_buf) 0 take in
      let rest = Buffer.sub w.w_buf take (pending - take) in
      Buffer.clear w.w_buf;
      Buffer.add_string w.w_buf rest;
      match Client.write_block self w.w_instance ~block:w.w_block chunk with
      | Ok _ ->
          w.w_block <- w.w_block + 1;
          loop ()
      | Error e -> Error e
    end
    else Ok ()
  in
  loop ()

let write self w data =
  Buffer.add_bytes w.w_buf data;
  flush_full_blocks self w ~final:false

let write_string self w s = write self w (Bytes.of_string s)

(* Flush remaining bytes and release the instance. *)
let close self w =
  match flush_full_blocks self w ~final:true with
  | Error e -> Error e
  | Ok () -> Client.release self w.w_instance
