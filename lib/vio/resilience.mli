(** The client-side resilience policy (pure part): what is retryable,
    how long to back off, when to give up. The retry loop itself lives
    in [Vruntime.Runtime], which owns the simulation handles; jitter is
    drawn from a caller-supplied PRNG so seeded runs replay the exact
    backoff schedule. *)

type policy = {
  max_retries : int;  (** re-issues after the first attempt *)
  base_backoff_ms : float;
  max_backoff_ms : float;
  deadline_ms : float;  (** per-operation budget across all attempts *)
}

(** 4 retries, 25ms..2s backoff, 10s deadline. *)
val default : policy

val pp_policy : Format.formatter -> policy -> unit

(** Transient failures worth re-issuing: [Ipc Timeout],
    [Ipc Nonexistent_process] (stale pid — re-resolution may find a
    successor), [Ipc No_reply], [Denied Retry], [Denied No_server]
    (the implementer is down or its GetPid reply was lost), and [Busy]
    (the server shed under overload and will recover). Other denials,
    protocol errors and [Unavailable] are permanent. *)
val retryable : Verr.t -> bool

(** Transport-level failures whose retry should first re-resolve its
    route (the server may be gone); server denials are not, and neither
    is [Busy] — the server is alive and said when to come back. *)
val rebind_worthy : Verr.t -> bool

(** [backoff_ms p prng ~attempt] for 1-based failure count [attempt]:
    exponential with equal jitter, capped at [max_backoff_ms]. *)
val backoff_ms : policy -> Vsim.Prng.t -> attempt:int -> float

type verdict = Retry_after of float | Give_up

(** The least deadline budget a retry must have left {e after} its
    backoff to be worth firing:
    [max 1.0 (min base_backoff_ms (deadline_ms / 100))]. *)
val min_residual_ms : policy -> float

(** Decide what follows the [attempt]-th failure, [elapsed_ms] into the
    operation: a jittered backoff that still fits the deadline (with
    {!min_residual_ms} budget to spare), or give up. A {!Verr.Busy}
    failure carrying a positive retry-after hint waits the hint instead
    of the computed backoff — jittered up to +50%, not clamped by
    [max_backoff_ms], still deadline-checked. *)
val next_step :
  policy -> Vsim.Prng.t -> attempt:int -> elapsed_ms:float -> Verr.t -> verdict

(** The terminal error after [attempts] tries: retryable failures become
    {!Verr.Unavailable} (bounded, never a hang); permanent ones pass
    through. *)
val give_up : attempts:int -> Verr.t -> Verr.t
