(** Errors visible to client stubs: the transport failed, the server
    refused, or the reply was malformed for the request. *)

type t =
  | Ipc of Vkernel.Kernel.error  (** the message transaction failed *)
  | Denied of Vnaming.Reply.code  (** the server's failure reply code *)
  | Protocol of string  (** reply malformed for the request sent *)
  | Unavailable of { attempts : int; last : string }
      (** the resilience policy gave up ({!Resilience}): bounded retries
          or the per-operation deadline were exhausted; [last] renders
          the final underlying error *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Collapse a reply message into [Ok reply] or the failure it encodes. *)
val of_reply : Vnaming.Vmsg.t -> (Vnaming.Vmsg.t, t) result
