(** Errors visible to client stubs: the transport failed, the server
    refused, or the reply was malformed for the request. *)

type t =
  | Ipc of Vkernel.Kernel.error  (** the message transaction failed *)
  | Denied of Vnaming.Reply.code  (** the server's failure reply code *)
  | Busy of { retry_after_ms : float }
      (** the server shed the request under overload ([Reply.Busy]); the
          hint is the server's own estimate (ms) of when capacity frees,
          0 when it supplied none. {!Resilience.next_step} lets the hint
          override its computed backoff. *)
  | Protocol of string  (** reply malformed for the request sent *)
  | Unavailable of { attempts : int; last : string }
      (** the resilience policy gave up ({!Resilience}): bounded retries
          or the per-operation deadline were exhausted; [last] renders
          the final underlying error *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Collapse a reply message into [Ok reply] or the failure it encodes. *)
val of_reply : Vnaming.Vmsg.t -> (Vnaming.Vmsg.t, t) result
