(* Client side of the V I/O protocol (§3.2).

   These stubs operate on an instance that has already been created
   (opened); creating one from a CSname is the naming layer's job
   ([Vruntime]), which routes the Open through the current context or a
   context prefix. The pid of the server that actually implements the
   instance is learned from the Open reply — after forwarding it may not
   be the process the request was first sent to. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid
open Vnaming

(* An open instance: the implementing server plus the instance info its
   Open reply carried. *)
type remote_instance = { server : Pid.t; info : Vmsg.instance_info }

let instance_id ri = ri.info.Vmsg.instance
let size ri = ri.info.Vmsg.file_size
let block_size ri = ri.info.Vmsg.block_size

let charge_stub self =
  Vsim.Proc.delay
    (Kernel.engine_of_domain (Kernel.domain_of_self self))
    Vnet.Calibration.client_stub_cpu

(* Send a request and run the common reply checks. *)
let transact self ~server msg =
  match Kernel.send self server msg with
  | Error e -> Error (Verr.Ipc e)
  | Ok (reply, replier) -> (
      match Verr.of_reply reply with
      | Ok m -> Ok (m, replier)
      | Error e -> Error e)

(* [open_at self ~server ~req ~mode] sends CreateInstance directly to a
   server (no prefix routing), returning the instance and the
   implementing server. [?learn] receives the resolution binding the
   replying server stamped into a successful reply, so the naming layer
   can feed its cache without this module knowing about caching.
   [?deadline] stamps the client's absolute operation deadline for
   admission control at a loaded server. *)
let open_at self ?learn ?deadline ~server ~req ~mode () =
  charge_stub self;
  let msg =
    Vmsg.request ~name:req ~payload:(Vmsg.P_open { mode }) Vmsg.Op.open_instance
  in
  let msg =
    match deadline with Some d -> Vmsg.with_deadline msg d | None -> msg
  in
  match transact self ~server msg with
  | Error e -> Error e
  | Ok (reply, replier) -> (
      match reply.Vmsg.payload with
      | Vmsg.P_instance info ->
          (match (learn, reply.Vmsg.binding) with
          | Some f, Some b -> f b
          | _ -> ());
          Ok { server = replier; info }
      | _ -> Error (Verr.Protocol "Open reply carried no instance"))

let read_block self ri ~block =
  charge_stub self;
  let msg =
    Vmsg.request
      ~payload:(Vmsg.P_read { instance = instance_id ri; block })
      Vmsg.Op.read_instance
  in
  match transact self ~server:ri.server msg with
  | Error e -> Error e
  | Ok (reply, _) -> (
      match reply.Vmsg.payload with
      | Vmsg.P_data data -> Ok data
      | _ -> Error (Verr.Protocol "Read reply carried no data"))

let write_block self ri ~block data =
  charge_stub self;
  let msg =
    Vmsg.request
      ~extra_bytes:(Bytes.length data)
      ~payload:(Vmsg.P_write { instance = instance_id ri; block; data })
      Vmsg.Op.write_instance
  in
  match transact self ~server:ri.server msg with
  | Error e -> Error e
  | Ok (reply, _) -> (
      match reply.Vmsg.payload with
      | Vmsg.P_count n -> Ok n
      | _ -> Error (Verr.Protocol "Write reply carried no count"))

let query self ri =
  charge_stub self;
  let msg =
    Vmsg.request
      ~payload:(Vmsg.P_instance_arg (instance_id ri))
      Vmsg.Op.query_instance
  in
  match transact self ~server:ri.server msg with
  | Error e -> Error e
  | Ok (reply, _) -> (
      match reply.Vmsg.payload with
      | Vmsg.P_descriptor d -> Ok d
      | _ -> Error (Verr.Protocol "QueryInstance reply carried no descriptor"))

(* Change the instance's (file's) size. *)
let set_size self ri size =
  charge_stub self;
  let msg =
    Vmsg.request
      ~payload:(Vmsg.P_set_size { instance = instance_id ri; size })
      Vmsg.Op.set_instance_size
  in
  match transact self ~server:ri.server msg with
  | Error e -> Error e
  | Ok (_, _) -> Ok ()

let release self ri =
  charge_stub self;
  let msg =
    Vmsg.request
      ~payload:(Vmsg.P_instance_arg (instance_id ri))
      Vmsg.Op.release_instance
  in
  match transact self ~server:ri.server msg with
  | Error e -> Error e
  | Ok (_, _) -> Ok ()

(* Read the whole instance sequentially. *)
let read_all self ri =
  let buf = Buffer.create (max 64 (size ri)) in
  let rec loop block =
    match read_block self ri ~block with
    | Ok data ->
        Buffer.add_bytes buf data;
        if Bytes.length data < block_size ri then Ok (Buffer.to_bytes buf)
        else loop (block + 1)
    | Error (Verr.Denied Reply.End_of_file) -> Ok (Buffer.to_bytes buf)
    | Error e -> Error e
  in
  loop 0

(* Write a byte image sequentially from block 0. *)
let write_all self ri data =
  let bs = block_size ri in
  let len = Bytes.length data in
  let blocks = if len = 0 then 1 else (len + bs - 1) / bs in
  let rec loop block =
    if block >= blocks then Ok ()
    else begin
      let off = block * bs in
      let chunk_len = min bs (len - off) in
      let chunk = if chunk_len <= 0 then Bytes.empty else Bytes.sub data off chunk_len in
      match write_block self ri ~block chunk with
      | Ok _ -> loop (block + 1)
      | Error e -> Error e
    end
  in
  loop 0

(* Read an instance that is a context directory (§5.6) and decode its
   description records. *)
let read_directory self ri =
  match read_all self ri with
  | Error e -> Error e
  | Ok image -> (
      match Descriptor.all_of_bytes image with
      | records -> Ok records
      | exception Descriptor.Malformed what ->
          Error (Verr.Protocol ("malformed directory record: " ^ what)))
