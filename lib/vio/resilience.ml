(* The client-side resilience policy: the pure part.

   What is retryable, how long to back off, and when to give up are
   decided here; actually sleeping and re-issuing is the runtime's job
   ([Vruntime.Runtime]), which owns the simulation handles. Keeping the
   policy pure makes it unit-testable and keeps this library free of any
   scheduling dependency.

   Jitter is deterministic: it is drawn from a caller-supplied PRNG, so
   a seeded run replays the exact same backoff schedule. *)

type policy = {
  max_retries : int;  (* re-issues after the first attempt *)
  base_backoff_ms : float;
  max_backoff_ms : float;
  deadline_ms : float;  (* per-operation budget across all attempts *)
}

let default =
  {
    max_retries = 4;
    base_backoff_ms = 25.0;
    max_backoff_ms = 2_000.0;
    deadline_ms = 10_000.0;
  }

let pp_policy ppf p =
  Fmt.pf ppf "retries %d, backoff %.0f..%.0fms, deadline %.0fms" p.max_retries
    p.base_backoff_ms p.max_backoff_ms p.deadline_ms

(* A transient failure the paper's model expects recovery from: the
   transaction timed out (crash, partition, loss burst), the pid went
   stale (server restarted — re-resolution may find a successor), the
   server died before replying, it explicitly answered Retry, or no
   server answered a GetPid query (the implementer is down or its reply
   was lost — re-resolution may find a restarted successor).
   Everything else — denials, protocol errors, and [Unavailable] itself
   (retrying an exhausted retry loop would multiply budgets) — is
   permanent. *)
let retryable = function
  | Verr.Ipc Vkernel.Kernel.Timeout
  | Verr.Ipc Vkernel.Kernel.Nonexistent_process
  | Verr.Ipc Vkernel.Kernel.No_reply
  | Verr.Denied Vnaming.Reply.Retry
  | Verr.Denied Vnaming.Reply.No_server
  | Verr.Busy _ ->
      true
  | Verr.Ipc _ | Verr.Denied _ | Verr.Protocol _ | Verr.Unavailable _ -> false

(* Transport-level failures, where the retry should first re-resolve
   its route (GetPid / rebind) because the server itself may be gone —
   as opposed to server denials, which came from a live server and
   would be answered identically by any replica. Busy is emphatically
   not rebind-worthy: the server is alive and told us when to come
   back; re-resolving would stampede its replicas. *)
let rebind_worthy = function
  | Verr.Ipc _ -> true
  | Verr.Denied _ | Verr.Busy _ | Verr.Protocol _ | Verr.Unavailable _ ->
      false

(* Exponential backoff with equal jitter: attempt [n] (1-based count of
   failures so far) waits cap/2 + U[0, cap/2) where cap doubles per
   attempt from [base_backoff_ms] up to [max_backoff_ms]. The random
   draw comes from [prng], so the schedule is a pure function of the
   seed. *)
let backoff_ms policy prng ~attempt =
  let doubled = policy.base_backoff_ms *. Float.of_int (1 lsl min (attempt - 1) 20) in
  let cap = Float.min policy.max_backoff_ms doubled in
  (cap /. 2.0) +. (Vsim.Prng.float prng *. cap /. 2.0)

(* Decide what to do after a failed attempt. [elapsed_ms] is time spent
   in the operation so far; the next backoff must also fit the
   deadline. *)
type verdict = Retry_after of float | Give_up

(* The least budget a retry needs left after its backoff to be worth
   firing: an attempt that would wake with (almost) no deadline
   remaining is doomed — give up now rather than burn a send on it.
   Scaled to the policy so short-deadline policies keep their edge. *)
let min_residual_ms policy =
  Float.max 1.0
    (Float.min policy.base_backoff_ms (0.01 *. policy.deadline_ms))

let next_step policy prng ~attempt ~elapsed_ms err =
  if (not (retryable err)) || attempt > policy.max_retries then Give_up
  else
    let wait =
      match err with
      | Verr.Busy { retry_after_ms } when retry_after_ms > 0.0 ->
          (* The server said when capacity frees; trust it over the
             computed schedule (no max_backoff clamp — the server knows
             its queue). Jitter up to +50% so synchronised victims of
             one shed wave do not return as one wave. *)
          retry_after_ms +. (Vsim.Prng.float prng *. (retry_after_ms /. 2.0))
      | _ -> backoff_ms policy prng ~attempt
    in
    if elapsed_ms +. wait +. min_residual_ms policy >= policy.deadline_ms then
      Give_up
    else Retry_after wait

(* The error surfaced when the loop gives up on a retryable failure:
   callers see a bounded [Unavailable], never a hang. Non-retryable
   errors pass through untouched. *)
let give_up ~attempts last =
  if retryable last then
    Verr.Unavailable { attempts; last = Verr.to_string last }
  else last
