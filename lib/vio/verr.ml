(* Errors a client stub can see: the transport failed, or the server
   answered with a failure reply code. *)

type t =
  | Ipc of Vkernel.Kernel.error  (** the message transaction itself failed *)
  | Denied of Vnaming.Reply.code  (** the server's reply code *)
  | Busy of { retry_after_ms : float }
      (** the server shed the request under overload; the hint is its
          own estimate of when capacity frees *)
  | Protocol of string  (** reply malformed for the request sent *)
  | Unavailable of { attempts : int; last : string }
      (** the resilience policy gave up: retries or the per-operation
          deadline were exhausted; [last] renders the final error *)

let pp ppf = function
  | Ipc e -> Fmt.pf ppf "ipc: %a" Vkernel.Kernel.pp_error e
  | Denied c -> Fmt.pf ppf "%a" Vnaming.Reply.pp c
  | Busy { retry_after_ms } ->
      Fmt.pf ppf "busy (retry after %.0fms)" retry_after_ms
  | Protocol s -> Fmt.pf ppf "protocol: %s" s
  | Unavailable { attempts; last } ->
      Fmt.pf ppf "unavailable after %d attempts (last: %s)" attempts last

let to_string e = Fmt.str "%a" pp e

(* Collapse a reply message into [Ok payload] or the failure it encodes.
   A Busy reply surfaces as [Busy] carrying the server's retry-after
   hint (0 when the server supplied none), never as a plain [Denied],
   so retry policies can tell overload from refusal. *)
let of_reply (m : Vnaming.Vmsg.t) =
  match Vnaming.Vmsg.reply_code m with
  | Some Vnaming.Reply.Ok -> Ok m
  | Some Vnaming.Reply.Busy ->
      let retry_after_ms =
        match m.Vnaming.Vmsg.retry_after with Some h -> h | None -> 0.0
      in
      Error (Busy { retry_after_ms })
  | Some code -> Error (Denied code)
  | None -> Error (Protocol "expected a reply message")
