(** Buffered byte-stream adapters over instances: the client-side
    convenience V programs use for sequential file-like access to any
    server speaking the I/O protocol. *)

type reader

val reader : Client.remote_instance -> reader

(** Read up to [len] bytes; a shorter (possibly empty) result signals
    end of stream. *)
val read :
  Vnaming.Vmsg.t Vkernel.Kernel.self -> reader -> int -> (bytes, Verr.t) result

(** Read one newline-terminated line (newline stripped); [Ok None] at
    end of stream. *)
val read_line :
  Vnaming.Vmsg.t Vkernel.Kernel.self -> reader -> (string option, Verr.t) result

type writer

val writer : Client.remote_instance -> writer

(** Append bytes; full blocks are flushed to the server as they fill. *)
val write :
  Vnaming.Vmsg.t Vkernel.Kernel.self -> writer -> bytes -> (unit, Verr.t) result

val write_string :
  Vnaming.Vmsg.t Vkernel.Kernel.self -> writer -> string -> (unit, Verr.t) result

(** Flush remaining bytes and release the instance. *)
val close :
  Vnaming.Vmsg.t Vkernel.Kernel.self -> writer -> (unit, Verr.t) result
