(** Client side of the V I/O protocol (paper §3.2).

    These stubs operate on an already created (opened) instance;
    creating one from a CSname is the naming layer's job
    ([Vruntime.Runtime]). The pid of the server that actually implements
    the instance is learned from the Open reply — after forwarding it
    may differ from the process the request was first sent to. *)

module Kernel = Vkernel.Kernel
module Pid = Vkernel.Pid

(** An open instance: the implementing server plus the instance info the
    Open reply carried. *)
type remote_instance = { server : Pid.t; info : Vnaming.Vmsg.instance_info }

val instance_id : remote_instance -> int
val size : remote_instance -> int
val block_size : remote_instance -> int

(** Send CreateInstance directly to [server] (no prefix routing).
    [?learn] receives the resolution binding a successful reply was
    stamped with, letting the naming layer feed its cache. [?deadline]
    stamps the client's absolute operation deadline (sim ms) for
    admission control at a loaded server. *)
val open_at :
  Vnaming.Vmsg.t Kernel.self ->
  ?learn:(Vnaming.Vmsg.binding -> unit) ->
  ?deadline:float ->
  server:Pid.t ->
  req:Vnaming.Csname.req ->
  mode:Vnaming.Vmsg.open_mode ->
  unit ->
  (remote_instance, Verr.t) result

val read_block :
  Vnaming.Vmsg.t Kernel.self -> remote_instance -> block:int -> (bytes, Verr.t) result

(** Returns the byte count the server accepted. *)
val write_block :
  Vnaming.Vmsg.t Kernel.self ->
  remote_instance ->
  block:int ->
  bytes ->
  (int, Verr.t) result

val query :
  Vnaming.Vmsg.t Kernel.self -> remote_instance -> (Vnaming.Descriptor.t, Verr.t) result

(** Change the instance's size (truncate or sparse-extend). *)
val set_size :
  Vnaming.Vmsg.t Kernel.self -> remote_instance -> int -> (unit, Verr.t) result

val release : Vnaming.Vmsg.t Kernel.self -> remote_instance -> (unit, Verr.t) result

(** Read the whole instance sequentially from block 0. *)
val read_all : Vnaming.Vmsg.t Kernel.self -> remote_instance -> (bytes, Verr.t) result

(** Write a byte image sequentially from block 0. *)
val write_all :
  Vnaming.Vmsg.t Kernel.self -> remote_instance -> bytes -> (unit, Verr.t) result

(** Read a context directory (§5.6) and decode its records. *)
val read_directory :
  Vnaming.Vmsg.t Kernel.self ->
  remote_instance ->
  (Vnaming.Descriptor.t list, Verr.t) result
