(* Model-based testing of distributed name interpretation.

   Generate a random naming forest — directories, files and cross-server
   context pointers over three file servers — plus random names, and
   check that protocol-level resolution (the §5.4 walk with kernel
   forwarding) agrees with a pure reference resolver over the same
   structure. *)

module K = Vkernel.Kernel
module Scenario = Vworkload.Scenario
module Runtime = Vruntime.Runtime
module File_server = Vservices.File_server
module Fs = Vservices.Fs
open Vnaming

(* --- the reference model --- *)

type mentry = M_file | M_dir of mdir | M_link of int * string list
(* link target: (server index, absolute dir path components) *)

and mdir = (string, mentry) Hashtbl.t

type model = mdir array (* one root per server *)

let model_resolve (model : model) ~server components =
  (* Returns [`File of server * path], [`Dir], or [`Missing]. *)
  let rec walk server (dir : mdir) consumed = function
    | [] -> `Dir
    | c :: rest -> (
        match Hashtbl.find_opt dir c with
        | Some M_file -> if rest = [] then `File (server, List.rev (c :: consumed)) else `Missing
        | Some (M_dir sub) -> walk server sub (c :: consumed) rest
        | Some (M_link (target_server, target_path)) -> (
            match dir_of_path model.(target_server) target_path with
            | Some target_dir -> walk target_server target_dir [] rest
            | None -> `Missing)
        | None -> `Missing)
  and dir_of_path dir = function
    | [] -> Some dir
    | c :: rest -> (
        match Hashtbl.find_opt dir c with
        | Some (M_dir sub) -> dir_of_path sub rest
        | _ -> None)
  in
  walk server model.(server) [] components

(* --- generation --- *)

let gen_forest prng =
  let model : model = Array.init 3 (fun _ -> Hashtbl.create 8) in
  let dirs = ref (List.init 3 (fun s -> (s, [], model.(s)))) in
  (* (server, path, table) *)
  let fresh_name used =
    let rec loop () =
      let n = Vworkload.Generator.word prng in
      if Hashtbl.mem used n then loop () else n
    in
    loop ()
  in
  (* Directories. *)
  for _ = 1 to 12 do
    let server, path, table = Vsim.Prng.pick prng !dirs in
    let name = fresh_name table in
    let sub = Hashtbl.create 4 in
    Hashtbl.replace table name (M_dir sub);
    dirs := (server, path @ [ name ], sub) :: !dirs
  done;
  (* Files. *)
  let files = ref [] in
  for _ = 1 to 15 do
    let server, path, table = Vsim.Prng.pick prng !dirs in
    let name = fresh_name table in
    Hashtbl.replace table name M_file;
    files := (server, path @ [ name ]) :: !files
  done;
  (* Cross-server links (possibly cyclic; walking always terminates
     because every hop consumes a component). *)
  for _ = 1 to 6 do
    let server, _, table = Vsim.Prng.pick prng !dirs in
    let target_server, target_path, _ = Vsim.Prng.pick prng !dirs in
    if target_server <> server then begin
      let name = fresh_name table in
      Hashtbl.replace table name (M_link (target_server, target_path))
    end
  done;
  (model, !files, !dirs)

(* Materialize the model in the real servers. *)
let build_real (t : Scenario.t) (model : model) =
  let fs_of s = File_server.fs (Scenario.file_server t s) in
  (* First pass: directories and files; remember dir inos by path. *)
  let ino_of : (int * string list, int) Hashtbl.t = Hashtbl.create 32 in
  let rec build server path (table : mdir) dir_ino =
    Hashtbl.replace ino_of (server, path) dir_ino;
    Hashtbl.iter
      (fun name entry ->
        match entry with
        | M_file -> (
            match Fs.create_file (fs_of server) ~dir:dir_ino ~owner:"gen" name with
            | Ok ino ->
                ignore
                  (Fs.write_file (fs_of server) ~ino
                     (Bytes.of_string (String.concat "/" (path @ [ name ]))))
            | Error _ -> failwith "gen create")
        | M_dir sub -> (
            match Fs.mkdir (fs_of server) ~dir:dir_ino ~owner:"gen" name with
            | Ok ino -> build server (path @ [ name ]) sub ino
            | Error _ -> failwith "gen mkdir")
        | M_link _ -> ())
      table
  in
  Array.iteri (fun s table -> build s [] table Fs.root_ino) model;
  (* Second pass: links (targets now exist). *)
  let rec link server path (table : mdir) =
    Hashtbl.iter
      (fun name entry ->
        match entry with
        | M_link (target_server, target_path) ->
            let target_ino = Hashtbl.find ino_of (target_server, target_path) in
            let spec =
              File_server.spec
                (Scenario.file_server t target_server)
                ~context:
                  (if target_ino = Fs.root_ino then Context.Well_known.default
                   else target_ino + Context.Well_known.first_ordinary)
            in
            let dir_ino = Hashtbl.find ino_of (server, path) in
            ignore (Fs.add_remote_link (fs_of server) ~dir:dir_ino name spec)
        | M_dir sub -> link server (path @ [ name ]) sub
        | M_file -> ())
      table
  in
  Array.iteri (fun s table -> link s [] table) model

(* Random name generation: mostly valid walks through the model, with
   occasional corruption. *)
let gen_names prng (model : model) files =
  let from_files =
    List.filteri (fun i _ -> i mod 2 = 0) files
    |> List.map (fun (s, path) -> (s, path))
  in
  let corrupted =
    List.filteri (fun i _ -> i mod 3 = 0) files
    |> List.map (fun (s, path) ->
           let path =
             List.mapi
               (fun i c ->
                 if i = List.length path - 1 && Vsim.Prng.bool prng then
                   c ^ "zz"
                 else c)
               path
           in
           (s, path))
  in
  ignore model;
  from_files @ corrupted

let run_one seed =
  let prng = Vsim.Prng.create ~seed in
  let model, files, _dirs = gen_forest prng in
  let t = Scenario.build ~workstations:1 ~file_servers:3 ~seed () in
  build_real t model;
  let names = gen_names prng model files in
  let disagreements = ref [] in
  ignore
    (Scenario.spawn_client t ~ws:0 (fun self env ->
         List.iter
           (fun (server, components) ->
             let name = String.concat "/" components in
             let expected = model_resolve model ~server components in
             let actual =
               Vio.Client.open_at self
                 ~server:(File_server.pid (Scenario.file_server t server))
                 ~req:(Csname.make_req name) ~mode:Vmsg.Read ()
             in
             let verdict_matches =
               match (expected, actual) with
               | `File (owner, path), Ok instance ->
                   (* Content encodes the owning server's path: checks
                      that forwarding landed on the right object. *)
                   let content =
                     match Vio.Client.read_all self instance with
                     | Ok b -> Bytes.to_string b
                     | Error _ -> "<unreadable>"
                   in
                   ignore (Vio.Client.release self instance);
                   ignore owner;
                   content = String.concat "/" path
               | (`Missing | `Dir), Error _ -> true
               | `Dir, Ok instance ->
                   (* Opening a directory name in Read mode is allowed to
                      fail or to return the context directory; either is
                      protocol-conforming. *)
                   ignore (Vio.Client.release self instance);
                   true
               | `File _, Error _ -> false
               | `Missing, Ok _ -> false
             in
             if not verdict_matches then
               disagreements := (server, name, expected) :: !disagreements)
           names;
         ignore env));
  Scenario.run t;
  !disagreements

let prop_forest_matches_model =
  QCheck.Test.make ~name:"protocol resolution matches the reference model"
    ~count:15
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      match run_one seed with
      | [] -> true
      | (server, name, _) :: _ ->
          QCheck.Test.fail_reportf "disagreement on fs%d:%S" server name)

let suite =
  [ ("forest", [ QCheck_alcotest.to_alcotest prop_forest_matches_model ]) ]
