(* Run the CSNH conformance battery against every server in the
   standard installation: the uniformity claim, checked mechanically. *)

module K = Vkernel.Kernel
module Scenario = Vworkload.Scenario
module Conformance = Vworkload.Conformance
module File_server = Vservices.File_server
module Prefix_server = Vnaming.Prefix_server

let servers_of (t : Scenario.t) =
  let ws = Scenario.workstation t 0 in
  [
    ("file server", File_server.pid (Scenario.file_server t 0));
    ("prefix server", Prefix_server.pid ws.Scenario.ws_prefix);
    ("terminal server", Vservices.Terminal_server.pid ws.Scenario.ws_terminal);
    ("printer server", Vservices.Printer_server.pid t.Scenario.printer);
    ("mail server", Vservices.Mail_server.pid t.Scenario.mail);
    ("internet server", Vservices.Internet_server.pid t.Scenario.internet);
  ]

let run_battery () =
  let t = Scenario.build ~workstations:1 ~file_servers:1 () in
  let reports = ref [] in
  let completed = ref false in
  ignore
    (Scenario.spawn_client t ~ws:0 ~name:"conformance" (fun self _env ->
         List.iter
           (fun (label, server) ->
             reports := Conformance.check self ~label server :: !reports)
           (servers_of t);
         completed := true));
  Scenario.run t;
  Alcotest.(check bool) "battery completed" true !completed;
  List.rev !reports

let reports = lazy (run_battery ())

let test_server label () =
  let report =
    List.find (fun r -> r.Conformance.label = label) (Lazy.force reports)
  in
  if not (Conformance.passed report) then
    Alcotest.failf "%a" Conformance.pp_report report

(* The mail server interprets names with its own syntax, so two checks
   legitimately behave differently; it must still pass the battery
   (NUL names rejected via its own Illegal_name, etc.). *)
let suite =
  [
    ( "conformance",
      List.map
        (fun (label, _) -> Alcotest.test_case label `Quick (test_server label))
        [
          ("file server", ());
          ("prefix server", ());
          ("terminal server", ());
          ("printer server", ());
          ("mail server", ());
          ("internet server", ());
        ] );
  ]
