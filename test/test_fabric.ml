(* Tests for the switched multi-segment fabric: topology arithmetic,
   the shared-medium oracle (the fabric's Shared_medium path must
   reproduce the single-wire model bit for bit), per-link faults,
   bounded-port drop accounting, and multi-hop latency composition. *)

module E = Vnet.Ethernet
module T = Vnet.Topology
module C = Vnet.Calibration

let check_float = Alcotest.(check (float 1e-9))

let tx = C.transmission_ms C.ethernet_3mbit ~payload_bytes:32
let prop = C.ethernet_3mbit.C.propagation_ms

(* --- topology arithmetic --- *)

let test_topology_paths () =
  let t = T.switched ~fan_in:4 in
  Alcotest.(check int) "edge of host 0" 0 (T.edge_of ~fan_in:4 0);
  Alcotest.(check int) "edge of host 7" 1 (T.edge_of ~fan_in:4 7);
  Alcotest.(check int) "same edge: 2 hops" 2 (T.hop_count t ~src:0 ~dst:3);
  Alcotest.(check int) "cross edge: 4 hops" 4 (T.hop_count t ~src:0 ~dst:7);
  Alcotest.(check int) "shared wire: 1 hop" 1
    (T.hop_count T.Shared_medium ~src:0 ~dst:7);
  (match T.path t ~src:1 ~dst:6 with
  | [ T.Host 1; T.Edge 0; T.Spine; T.Edge 1; T.Host 6 ] -> ()
  | p -> Alcotest.failf "unexpected path: %d nodes" (List.length p));
  Alcotest.(check bool) "uplink is a link" true (T.is_link t (T.Host 2, T.Edge 0));
  Alcotest.(check bool) "wrong edge is not" false
    (T.is_link t (T.Host 2, T.Edge 1));
  Alcotest.(check bool) "host-host is not" false
    (T.is_link t (T.Host 2, T.Host 3));
  Alcotest.(check bool) "shared medium has no links" false
    (T.is_link T.Shared_medium (T.Host 0, T.Host 1))

let test_node_string_round_trip () =
  List.iter
    (fun n ->
      match T.node_of_string (T.node_to_string n) with
      | Some n' when T.equal_node n n' -> ()
      | _ -> Alcotest.failf "round trip failed for %s" (T.node_to_string n))
    [ T.Host 0; T.Host 17; T.Edge 3; T.Spine ];
  Alcotest.(check bool) "garbage rejected" true
    (T.node_of_string "switch9" = None)

(* --- the shared-medium oracle --- *)

(* Reference single-wire model: frames serialize behind one
   wire-free-at cursor, then arrive after transmission + propagation.
   The fabric's Shared_medium path must produce exactly these arrival
   times in exactly this order — this is the bit-identity contract the
   E1-E13 baselines rest on. *)
let single_wire_reference sends =
  let wire_free = ref 0.0 in
  List.map
    (fun (at, src, dst, bytes) ->
      let start = Float.max at !wire_free in
      let duration = C.transmission_ms C.ethernet_3mbit ~payload_bytes:bytes in
      wire_free := start +. duration;
      (start +. duration +. prop, src, dst))
    sends

let prop_shared_matches_single_wire =
  QCheck.Test.make ~name:"Shared_medium reproduces the single-wire model"
    ~count:200
    QCheck.(
      small_list (triple (int_range 0 50) (pair (int_range 0 3) (int_range 0 3))
          (int_range 1 600)))
    (fun raw ->
      (* Sends at integer-ms marks, in list order at equal times —
         matching the engine's FIFO tie-break. *)
      let sends =
        List.filter_map
          (fun (at, (src, dst), bytes) ->
            if src = dst then None
            else Some (float_of_int at, src, dst, bytes))
          raw
        (* The engine executes in time order with FIFO tie-break, so the
           reference must walk the sends the same way. *)
        |> List.stable_sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)
      in
      let eng = Vsim.Engine.create () in
      let net = E.create ~config:C.ethernet_3mbit eng in
      for a = 0 to 3 do
        E.attach net a (fun _ -> ())
      done;
      let deliveries = ref [] in
      for a = 0 to 3 do
        E.set_handler net a (fun frame ->
            deliveries := (Vsim.Engine.now eng, frame.E.src, a) :: !deliveries)
      done;
      List.iter
        (fun (at, src, dst, bytes) ->
          Vsim.Engine.schedule_at eng at (fun () ->
              E.transmit net
                { E.src; dst = E.Unicast dst; payload = (); payload_bytes = bytes }))
        sends;
      Vsim.Engine.run eng;
      let got = List.rev !deliveries in
      let expected = single_wire_reference sends in
      if List.length got <> List.length expected then
        QCheck.Test.fail_reportf "delivered %d frames, expected %d"
          (List.length got) (List.length expected)
      else begin
        List.iter2
          (fun (gt, gs, gd) (et, es, ed) ->
            if gs <> es || gd <> ed || Float.abs (gt -. et) > 1e-9 then
              QCheck.Test.fail_reportf
                "delivery diverged: got %d->%d at %.6f, expected %d->%d at %.6f"
                gs gd gt es ed et)
          got expected;
        true
      end)

(* --- per-link faults --- *)

let make_switched ?(queue_cap = 256) ?(fan_in = 2) ?(hosts = 4) () =
  let eng = Vsim.Engine.create () in
  let net =
    E.create ~config:C.ethernet_3mbit ~topology:(T.switched ~fan_in) ~queue_cap
      eng
  in
  let hits = Array.make hosts 0 in
  for a = 0 to hosts - 1 do
    E.attach net a (fun _ -> hits.(a) <- hits.(a) + 1)
  done;
  (eng, net, hits)

let send net src dst =
  E.transmit net
    { E.src; dst = E.Unicast dst; payload = (); payload_bytes = 32 }

let test_link_cut () =
  let eng, net, hits = make_switched () in
  (* fan_in 2: hosts 0,1 on edge0; hosts 2,3 on edge1. *)
  E.set_link_up net (T.Edge 0) T.Spine false;
  Alcotest.(check bool) "cross-edge unreachable" false (E.reachable net 0 2);
  Alcotest.(check bool) "same edge still reachable" true (E.reachable net 0 1);
  Alcotest.(check bool) "reverse direction unaffected" true (E.reachable net 2 0);
  send net 0 2 (* dies at the cut uplink *);
  send net 0 1 (* same edge, unaffected *);
  send net 2 0 (* reverse path uses edge1->spine, up *);
  Vsim.Engine.run eng;
  Alcotest.(check int) "cross-edge frame dropped" 0 hits.(2);
  Alcotest.(check int) "same-edge delivered" 1 hits.(1);
  Alcotest.(check int) "reverse delivered" 1 hits.(0);
  Alcotest.(check int) "drop counted" 1 (E.counters net).E.frames_dropped;
  let cut =
    List.find
      (fun s -> s.E.ls_label = T.link_label (T.Edge 0, T.Spine))
      (E.link_stats net)
  in
  Alcotest.(check bool) "link reported down" false cut.E.ls_up;
  Alcotest.(check int) "per-link drop counted" 1 cut.E.ls_drops;
  E.set_link_up net (T.Edge 0) T.Spine true;
  Alcotest.(check bool) "healed" true (E.reachable net 0 2);
  send net 0 2;
  Vsim.Engine.run eng;
  Alcotest.(check int) "flows after heal" 1 hits.(2)

let test_queue_full_drops () =
  let eng, net, hits = make_switched ~queue_cap:2 () in
  (* Six same-instant frames against a 2-deep port: 2 admitted, 4
     tail-dropped before anything drains. *)
  for _ = 1 to 6 do
    send net 0 1
  done;
  Vsim.Engine.run eng;
  Alcotest.(check int) "two delivered" 2 hits.(1);
  Alcotest.(check int) "four dropped globally" 4
    (E.counters net).E.frames_dropped;
  let uplink =
    List.find
      (fun s -> s.E.ls_label = T.link_label (T.Host 0, T.Edge 0))
      (E.link_stats net)
  in
  Alcotest.(check int) "four dropped at the port" 4 uplink.E.ls_drops;
  Alcotest.(check int) "peak occupancy is the cap" 2 uplink.E.ls_queue_peak;
  Alcotest.(check int) "port drained" 0 uplink.E.ls_queued

let test_multi_hop_latency () =
  let eng, net, _ = make_switched () in
  let arrival = ref nan in
  E.set_handler net 2 (fun _ -> arrival := Vsim.Engine.now eng);
  send net 0 2;
  Vsim.Engine.run eng;
  (* Four store-and-forward hops, each serializing and propagating, plus
     a forwarding charge at each of the three switches on the path. *)
  check_float "cross-edge latency composes per hop"
    ((4.0 *. (tx +. prop)) +. (3.0 *. C.switch_forward_ms))
    !arrival;
  let eng, net, _ = make_switched () in
  let arrival = ref nan in
  E.set_handler net 1 (fun _ -> arrival := Vsim.Engine.now eng);
  send net 0 1;
  Vsim.Engine.run eng;
  check_float "same-edge latency: two hops, one switch"
    ((2.0 *. (tx +. prop)) +. C.switch_forward_ms)
    !arrival

let test_slow_link () =
  let eng, net, _ = make_switched () in
  E.set_link_extra_latency net (T.Edge 0) T.Spine 5.0;
  let arrival = ref nan in
  E.set_handler net 2 (fun _ -> arrival := Vsim.Engine.now eng);
  send net 0 2;
  Vsim.Engine.run eng;
  check_float "slow link adds its latency to the one hop"
    ((4.0 *. (tx +. prop)) +. (3.0 *. C.switch_forward_ms) +. 5.0)
    !arrival

let test_shared_medium_has_no_links () =
  let eng = Vsim.Engine.create () in
  let net = E.create ~config:C.ethernet_3mbit eng in
  Alcotest.(check bool) "no queue bound" true (E.queue_capacity net = None);
  Alcotest.(check (list reject)) "no link stats" [] (E.link_stats net);
  Alcotest.check_raises "set_link_up raises"
    (Invalid_argument "Ethernet.set_link_up: the shared medium has no links")
    (fun () -> E.set_link_up net (T.Host 0) (T.Edge 0) false)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "net.fabric",
      [
        Alcotest.test_case "topology paths" `Quick test_topology_paths;
        Alcotest.test_case "node strings" `Quick test_node_string_round_trip;
        qcheck prop_shared_matches_single_wire;
        Alcotest.test_case "link cut and heal" `Quick test_link_cut;
        Alcotest.test_case "queue-full drops" `Quick test_queue_full_drops;
        Alcotest.test_case "multi-hop latency" `Quick test_multi_hop_latency;
        Alcotest.test_case "slow link" `Quick test_slow_link;
        Alcotest.test_case "shared medium has no links" `Quick
          test_shared_medium_has_no_links;
      ] );
  ]
