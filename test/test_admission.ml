(* Tests for server overload protection: the kernel's bounded-queue
   admission mechanism (priority lanes, shed replies sent on the
   server's behalf, counter conservation) and the Vservices.Admission
   policy (lane classification, caps, wseq bypass, deadline-aware drop,
   retry-after hints), plus the end-to-end path: a protected file
   server sheds, the client surfaces Verr.Busy, and the resilience
   loop waits the server's hint instead of its computed backoff. *)

module K = Vkernel.Kernel
module Pid = Vkernel.Pid
module E = Vnet.Ethernet
module C = Vnet.Calibration
module Admission = Vservices.Admission
module File_server = Vservices.File_server
module Scenario = Vworkload.Scenario
module Runtime = Vruntime.Runtime
module Resilience = Vio.Resilience
module Verr = Vio.Verr
open Vnaming

(* Messages are strings; payload bytes beyond the 32-byte message equal
   the string length, none of it treated as a copied segment. *)
let cost = { K.payload_bytes = String.length; K.segment_bytes = (fun _ -> 0) }

type rig = { eng : Vsim.Engine.t; domain : string K.domain }

let make_rig () =
  let eng = Vsim.Engine.create () in
  let net = E.create ~config:C.ethernet_3mbit eng in
  let domain = K.create_domain ~cost eng net in
  { eng; domain }

(* A server that takes [service_ms] per request and logs service
   order. *)
let slow_server rig host ~service_ms served =
  K.spawn host ~name:"slow" (fun self ->
      let rec loop () =
        let msg, sender = K.receive self in
        Vsim.Proc.delay rig.eng service_ms;
        served := !served @ [ msg ];
        (match K.reply self ~to_:sender ("ok:" ^ msg) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "reply failed: %a" K.pp_error e);
        loop ()
      in
      loop ())

(* One client per request name, staggered a millisecond apart so the
   arrival order (and therefore each request's observed queue depth) is
   deterministic. Records every reply. *)
let send_staggered rig host server names replies =
  List.iteri
    (fun i name ->
      ignore
        (K.spawn host ~name (fun self ->
             Vsim.Proc.delay rig.eng (float_of_int i);
             match K.send self server name with
             | Ok (reply, _) -> replies := !replies @ [ (name, reply) ]
             | Error e -> Alcotest.failf "%s: send failed: %a" name K.pp_error e)))
    names

(* --- kernel mechanism: the bounded queue --- *)

(* Five requests against a cap-2 queue on a 100ms/request server: the
   first is in service when the rest arrive, two queue, two shed. The
   hook's [depth] argument never exceeds the cap, the shed clients get
   the hook's rejection message as a normal reply (sent by the kernel,
   not the server), and the counters account for all five. *)
let test_queue_bound () =
  let rig = make_rig () in
  let h = K.boot_host rig.domain ~name:"ws" 1 in
  let served = ref [] and replies = ref [] in
  let server = slow_server rig h ~service_ms:100.0 served in
  let max_depth_seen = ref 0 in
  K.set_admission rig.domain server (fun ~now:_ ~depth _msg ->
      max_depth_seen := max !max_depth_seen depth;
      if depth >= 2 then K.Shed "busy" else K.Admit);
  send_staggered rig h server [ "r1"; "r2"; "r3"; "r4"; "r5" ] replies;
  Vsim.Engine.run rig.eng;
  Alcotest.(check (list string))
    "only the in-service and queued requests are served" [ "r1"; "r2"; "r3" ]
    !served;
  List.iter
    (fun (name, reply) ->
      let expected =
        if name = "r4" || name = "r5" then "busy" else "ok:" ^ name
      in
      Alcotest.(check string) (name ^ " reply") expected reply)
    !replies;
  Alcotest.(check (pair int int))
    "admitted + shed = offered" (3, 2)
    (K.admission_counters rig.domain server);
  Alcotest.(check int) "queue depth never exceeds the cap" 2 !max_depth_seen;
  Alcotest.(check int) "queue drains" 0 (K.queue_depth rig.domain server)

(* --- kernel mechanism: priority lanes --- *)

(* While the server works on an occupier, two bulk requests arrive
   before an interactive one; the interactive lane is served first
   regardless, and clearing the hook mid-run drains the bulk lane back
   unharmed. *)
let test_priority_lane_order () =
  let rig = make_rig () in
  let h = K.boot_host rig.domain ~name:"ws" 1 in
  let served = ref [] and replies = ref [] in
  let server = slow_server rig h ~service_ms:100.0 served in
  K.set_admission rig.domain server (fun ~now:_ ~depth:_ msg ->
      if String.length msg >= 4 && String.sub msg 0 4 = "bulk" then K.Admit_bulk
      else K.Admit);
  send_staggered rig h server [ "occ"; "bulkA"; "bulkB"; "int" ] replies;
  (* Clear the hook after the queues are built but before they drain:
     the parked bulk work must transfer back, not vanish. *)
  ignore
    (K.spawn h ~name:"clearer" (fun _self ->
         Vsim.Proc.delay rig.eng 50.0;
         K.clear_admission rig.domain server));
  Vsim.Engine.run rig.eng;
  Alcotest.(check (list string))
    "interactive overtakes earlier bulk"
    [ "occ"; "int"; "bulkA"; "bulkB" ]
    !served;
  Alcotest.(check int) "every request replied" 4 (List.length !replies);
  Alcotest.(check (pair int int))
    "counters survive until cleared, nothing shed" (0, 0)
    (K.admission_counters rig.domain server)

(* --- kernel mechanism: conservation property --- *)

(* Under random offered load, lane mix, arrival spread and cap, every
   offered request is accounted for exactly once:
   admitted + shed = offered, served = admitted, and both reply kinds
   (service reply, kernel shed reply) partition the clients. *)
let prop_conservation =
  QCheck.Test.make ~name:"shed + admitted + completed accounts for every offer"
    ~count:60
    QCheck.(triple (int_range 1 1_000_000) (int_range 1 40) (int_range 0 6))
    (fun (seed, offered, cap) ->
      let rig = make_rig () in
      let prng = Vsim.Prng.create ~seed in
      let h = K.boot_host rig.domain ~name:"ws" 1 in
      let served = ref [] in
      let server = slow_server rig h ~service_ms:5.0 served in
      K.set_admission rig.domain server (fun ~now:_ ~depth msg ->
          if depth >= cap then K.Shed "busy"
          else if String.length msg > 0 && msg.[0] = 'b' then K.Admit_bulk
          else K.Admit);
      let ok_replies = ref 0 and busy_replies = ref 0 in
      for i = 1 to offered do
        let lane = if Vsim.Prng.bool prng then "b" else "i" in
        let name = Fmt.str "%s%d" lane i in
        let jitter = Vsim.Prng.float prng *. 40.0 in
        ignore
          (K.spawn h (fun self ->
               Vsim.Proc.delay rig.eng jitter;
               match K.send self server name with
               | Ok ("busy", _) -> incr busy_replies
               | Ok _ -> incr ok_replies
               | Error e ->
                   QCheck.Test.fail_reportf "%s: send failed: %a" name
                     K.pp_error e))
      done;
      Vsim.Engine.run rig.eng;
      let admitted, shed = K.admission_counters rig.domain server in
      admitted + shed = offered
      && List.length !served = admitted
      && !ok_replies = admitted && !busy_replies = shed
      && K.queue_depth rig.domain server = 0)

(* --- policy: classification --- *)

let test_classify () =
  let lane = Alcotest.testable (Fmt.of_to_string Admission.lane_to_string) ( = ) in
  let check op expected =
    Alcotest.check lane
      (Vmsg.Op.to_string op)
      expected
      (Admission.classify (Vmsg.request op))
  in
  check Vmsg.Op.query_name Admission.Interactive;
  check Vmsg.Op.map_context Admission.Interactive;
  check Vmsg.Op.open_instance Admission.Interactive;
  check Vmsg.Op.read_instance Admission.Interactive;
  check Vmsg.Op.query_instance Admission.Interactive;
  check Vmsg.Op.create_object Admission.Bulk;
  check Vmsg.Op.remove_object Admission.Bulk;
  check Vmsg.Op.write_instance Admission.Bulk;
  check Vmsg.Op.set_instance_size Admission.Bulk;
  check Vmsg.Op.load_file Admission.Bulk

(* --- policy: the decision function --- *)

let busy_hint = function
  | K.Shed m -> (
      match m.Vmsg.retry_after with
      | Some h -> h
      | None -> Alcotest.fail "shed reply carries no retry-after hint")
  | K.Admit -> Alcotest.fail "expected Shed, got Admit"
  | K.Admit_bulk -> Alcotest.fail "expected Shed, got Admit_bulk"

let test_decide_caps_and_hints () =
  let cfg =
    Admission.make ~queue_cap:4 ~bulk_cap:2 ~retry_floor_ms:5.0 ~service_ms:10.0
      ()
  in
  let interactive = Vmsg.request Vmsg.Op.query_name in
  let bulk = Vmsg.request Vmsg.Op.write_instance in
  (* Lane caps: bulk sheds first, interactive holds to the full cap. *)
  (match Admission.decide cfg ~now:0.0 ~depth:3 interactive with
  | K.Admit -> ()
  | _ -> Alcotest.fail "interactive under cap must be admitted");
  (match Admission.decide cfg ~now:0.0 ~depth:1 bulk with
  | K.Admit_bulk -> ()
  | _ -> Alcotest.fail "bulk under cap must ride the bulk lane");
  (match Admission.decide cfg ~now:0.0 ~depth:3 bulk with
  | K.Shed _ -> ()
  | _ -> Alcotest.fail "bulk over bulk_cap must be shed");
  (* The hint is the drain-time estimate, floored. *)
  Alcotest.(check (float 1e-9))
    "hint is the drain estimate" 40.0
    (busy_hint (Admission.decide cfg ~now:0.0 ~depth:4 interactive));
  Alcotest.(check (float 1e-9))
    "hint formula" 70.0
    (Admission.retry_after_ms cfg ~depth:7);
  Alcotest.(check (float 1e-9))
    "empty queue hints the floor" 5.0
    (Admission.retry_after_ms cfg ~depth:0);
  (* Coordinator-stamped replicated writes bypass every cap: shedding
     one at a member would open a permanent sequence gap. *)
  let stamped = Vmsg.with_wseq bulk { Vmsg.origin = 9; seq = 3 } in
  match Admission.decide cfg ~now:0.0 ~depth:100 stamped with
  | K.Admit -> ()
  | _ -> Alcotest.fail "wseq-stamped write must always be admitted"

(* Deadline-aware drop: a request whose queue wait alone already blows
   its stamped deadline is shed below the caps; the same inputs always
   produce the same verdict. *)
let test_decide_deadline_drop_deterministic () =
  let cfg = Admission.make ~queue_cap:8 ~bulk_cap:8 ~service_ms:10.0 () in
  let doomed =
    Vmsg.with_deadline (Vmsg.request Vmsg.Op.query_name) 115.0
    (* now 100, depth 1: wait estimate (1+1)*10 = 20ms > 15ms budget *)
  in
  let viable = Vmsg.with_deadline (Vmsg.request Vmsg.Op.query_name) 200.0 in
  (match Admission.decide cfg ~now:100.0 ~depth:1 doomed with
  | K.Shed _ -> ()
  | _ -> Alcotest.fail "doomed request must be shed below the caps");
  (match Admission.decide cfg ~now:100.0 ~depth:1 viable with
  | K.Admit -> ()
  | _ -> Alcotest.fail "viable deadline must be admitted");
  (* Determinism: decide is pure — the verdict and its hint depend only
     on (config, now, depth, message). *)
  let run () = Admission.decide cfg ~now:100.0 ~depth:1 doomed in
  Alcotest.(check (float 1e-9))
    "same inputs, same hint"
    (busy_hint (run ()))
    (busy_hint (run ()))

(* --- policy: retry-after hint trusted by the resilience loop --- *)

(* A Busy failure carrying a positive hint waits the hint (jittered up
   to +50%, not clamped by max_backoff_ms); a zero hint falls back to
   the computed backoff schedule. *)
let test_next_step_honors_hint () =
  let p = { Resilience.default with Resilience.deadline_ms = 60_000.0 } in
  let prng = Vsim.Prng.create ~seed:3 in
  for _ = 1 to 50 do
    match
      Resilience.next_step p prng ~attempt:1 ~elapsed_ms:0.0
        (Verr.Busy { retry_after_ms = 400.0 })
    with
    | Resilience.Retry_after w ->
        Alcotest.(check bool)
          "wait in [hint, 1.5*hint)" true
          (w >= 400.0 && w < 600.0)
    | Resilience.Give_up -> Alcotest.fail "hinted Busy must retry"
  done;
  (* Above the backoff cap: the server knows its queue, the hint is not
     clamped. *)
  (match
     Resilience.next_step p prng ~attempt:1 ~elapsed_ms:0.0
       (Verr.Busy { retry_after_ms = 3.0 *. p.Resilience.max_backoff_ms })
   with
  | Resilience.Retry_after w ->
      Alcotest.(check bool)
        "hint exceeds max_backoff_ms" true
        (w >= 3.0 *. p.Resilience.max_backoff_ms)
  | Resilience.Give_up -> Alcotest.fail "large hint within deadline must retry");
  (* No hint: the ordinary schedule, capped by attempt-1 backoff. *)
  match
    Resilience.next_step p prng ~attempt:1 ~elapsed_ms:0.0
      (Verr.Busy { retry_after_ms = 0.0 })
  with
  | Resilience.Retry_after w ->
      Alcotest.(check bool)
        "zero hint falls back to backoff" true
        (w >= p.Resilience.base_backoff_ms /. 2.0
        && w < p.Resilience.base_backoff_ms)
  | Resilience.Give_up -> Alcotest.fail "retryable Busy must retry"

(* --- end to end: shed at the file server, hint honored at the client --- *)

(* A zero-capacity admission config on the file server sheds every
   request. Without resilience the client surfaces Verr.Busy with the
   floor hint; with resilience the loop burns its whole retry budget
   waiting the (short) hints — far faster than the computed backoff
   schedule would — and surfaces the bounded Unavailable. Disabling
   admission heals the path. *)
let test_busy_end_to_end () =
  let t = Scenario.build ~workstations:1 ~file_servers:1 () in
  let fs = Scenario.file_server t 0 in
  let cfg =
    Admission.make ~queue_cap:0 ~bulk_cap:0 ~retry_floor_ms:5.0 ~service_ms:15.0
      ()
  in
  let checked = ref false in
  ignore
    (Scenario.spawn_client t ~ws:0 (fun _self env ->
         (* Warm up first so installation setup is out of the pipeline. *)
         (match
            Runtime.write_file env "[storage]tmp/adm.txt" (Bytes.of_string "v")
          with
         | Ok () -> ()
         | Error e -> Alcotest.failf "warm-up write failed: %a" Verr.pp e);
         File_server.enable_admission fs t.Scenario.domain ~config:cfg ();
         (* No resilience: the shed surfaces directly, hint attached. *)
         (match Runtime.read_file env "[storage]tmp/adm.txt" with
         | Error (Verr.Busy { retry_after_ms }) ->
             Alcotest.(check (float 1e-9))
               "floor hint at empty queue" 5.0 retry_after_ms
         | Ok _ -> Alcotest.fail "zero-capacity server must shed"
         | Error e -> Alcotest.failf "expected Busy, got %a" Verr.pp e);
         (* With resilience: every retry waits the hint, not the
            backoff schedule. 4 retries x [5, 7.5)ms of hint waiting is
            well under the >= 187.5ms the exponential schedule needs. *)
         Runtime.set_resilience env ~seed:7 ();
         let t0 = Vsim.Engine.now t.Scenario.engine in
         (match Runtime.read_file env "[storage]tmp/adm.txt" with
         | Error (Verr.Unavailable { attempts; _ }) ->
             Alcotest.(check int)
               "whole retry budget burned"
               (Resilience.default.Resilience.max_retries + 1)
               attempts
         | Ok _ -> Alcotest.fail "shedding never stops; must give up"
         | Error e -> Alcotest.failf "expected Unavailable, got %a" Verr.pp e);
         let elapsed = Vsim.Engine.now t.Scenario.engine -. t0 in
         Alcotest.(check bool)
           "retries waited the hints, not the backoff schedule" true
           (elapsed >= 20.0 && elapsed < 150.0);
         let stats = Runtime.resilience_stats env in
         Alcotest.(check int)
           "every attempt after the first was a retry"
           Resilience.default.Resilience.max_retries stats.Runtime.retries;
         (* Disable: the same read succeeds — queued state and counters
            drain back unharmed. *)
         File_server.disable_admission fs t.Scenario.domain;
         (match Runtime.read_file env "[storage]tmp/adm.txt" with
         | Ok data ->
             Alcotest.(check string) "healed after disable" "v"
               (Bytes.to_string data)
         | Error e -> Alcotest.failf "read after disable failed: %a" Verr.pp e);
         checked := true));
  Scenario.run t;
  Alcotest.(check bool) "client completed" true !checked

let suite =
  [
    ( "admission",
      [
        Alcotest.test_case "kernel queue bound enforced" `Quick test_queue_bound;
        Alcotest.test_case "interactive lane overtakes bulk" `Quick
          test_priority_lane_order;
        QCheck_alcotest.to_alcotest prop_conservation;
        Alcotest.test_case "lane classification" `Quick test_classify;
        Alcotest.test_case "caps, hints and wseq bypass" `Quick
          test_decide_caps_and_hints;
        Alcotest.test_case "deadline-aware drop is deterministic" `Quick
          test_decide_deadline_drop_deterministic;
        Alcotest.test_case "next_step honors the retry-after hint" `Quick
          test_next_step_honors_hint;
        Alcotest.test_case "busy propagates end to end" `Quick
          test_busy_end_to_end;
      ] );
  ]
