(* Tests for the non-storage services: terminals, printer, mail, time,
   exception server and program loading — each reached through the same
   uniform naming and I/O machinery. *)

module K = Vkernel.Kernel
module Pid = Vkernel.Pid
module Service = Vkernel.Service
module Scenario = Vworkload.Scenario
module Runtime = Vruntime.Runtime
module File_server = Vservices.File_server
module Program_manager = Vservices.Program_manager
module Printer_server = Vservices.Printer_server
module Terminal_server = Vservices.Terminal_server
module Mail_server = Vservices.Mail_server
module Time_server = Vservices.Time_server
module Exception_server = Vservices.Exception_server
open Vnaming

(* Substring search (no dependency on astring). *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  n = 0 || loop 0

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s failed: %a" what Vio.Verr.pp e

let run_client ?build body =
  let t = match build with Some b -> b () | None -> Scenario.build () in
  let completed = ref false in
  ignore
    (Scenario.spawn_client t ~ws:0 (fun self env ->
         body t self env;
         completed := true));
  Scenario.run t;
  Alcotest.(check bool) "client completed" true !completed;
  t

(* --- terminals --- *)

let test_terminal_write_read () =
  let t =
    run_client (fun _t _self env ->
        ok_exn "line 1" (Runtime.append_file env "[terminals]console"
             (Bytes.of_string "first line"));
        ok_exn "line 2" (Runtime.append_file env "[terminals]console"
             (Bytes.of_string "second line")))
  in
  let ws = Scenario.workstation t 0 in
  Alcotest.(check (list string)) "lines accumulated"
    [ "first line"; "second line" ]
    (Terminal_server.lines ws.Scenario.ws_terminal "console")

let test_terminal_listing_and_query () =
  ignore
    (run_client (fun _t _self env ->
         ok_exn "t1" (Runtime.append_file env "[terminals]tty1" (Bytes.of_string "a"));
         ok_exn "t2" (Runtime.append_file env "[terminals]tty2" (Bytes.of_string "b"));
         let records = ok_exn "list" (Runtime.list_directory env "[terminals]") in
         let names = List.map (fun d -> d.Descriptor.name) records in
         Alcotest.(check (list string)) "terminals listed" [ "tty1"; "tty2" ]
           (List.sort compare names);
         List.iter
           (fun (d : Descriptor.t) ->
             Alcotest.(check bool) "typed as terminal" true
               (d.Descriptor.obj_type = Descriptor.Terminal);
             (* Temporary objects carry instance identifiers (§4.3). *)
             Alcotest.(check bool) "has instance id" true
               (d.Descriptor.instance <> None))
           records;
         let q = ok_exn "query" (Runtime.query env "[terminals]tty1") in
         Alcotest.(check int) "one line" 1 q.Descriptor.size))

let test_terminal_read_back () =
  ignore
    (run_client (fun _t _self env ->
         ok_exn "w" (Runtime.append_file env "[terminals]log" (Bytes.of_string "hello"));
         let back = ok_exn "read" (Runtime.read_file env "[terminals]log") in
         Alcotest.(check string) "readable as a file" "hello\n" (Bytes.to_string back)))

(* --- printer --- *)

let test_printer_job_lifecycle () =
  let t =
    run_client (fun _t _self env ->
        ok_exn "spool" (Runtime.write_file env "[printer]report.ps"
             (Bytes.make 1024 'p')))
  in
  (* The run continued past spooling: the job must have printed. *)
  Alcotest.(check bool) "job done" true
    (Printer_server.job_state t.Scenario.printer "report.ps"
    = Some Printer_server.Done)

let test_printer_queue_listing () =
  ignore
    (run_client (fun t _self env ->
         ok_exn "spool" (Runtime.write_file env "[printer]thesis.ps"
              (Bytes.make 4096 'q'));
         ignore t;
         let records = ok_exn "list queue" (Runtime.list_directory env "[printer]") in
         match records with
         | [ d ] ->
             Alcotest.(check string) "job name" "thesis.ps" d.Descriptor.name;
             Alcotest.(check bool) "typed as printer job" true
               (d.Descriptor.obj_type = Descriptor.Printer_job);
             Alcotest.(check bool) "state attr present" true
               (List.mem_assoc "state" d.Descriptor.attrs)
         | l -> Alcotest.failf "expected one job, got %d" (List.length l)))

let test_printer_duplicate_job_rejected () =
  ignore
    (run_client (fun _t _self env ->
         ok_exn "spool" (Runtime.write_file env "[printer]dup.ps" (Bytes.of_string "x"));
         match Runtime.write_file env "[printer]dup.ps" (Bytes.of_string "y") with
         | Error (Vio.Verr.Denied Reply.Duplicate_name) -> ()
         | _ -> Alcotest.fail "duplicate job name must be rejected"))

(* --- mail --- *)

let test_mail_deliver_and_fetch () =
  ignore
    (run_client (fun _t _self env ->
         ok_exn "deliver"
           (Runtime.append_file env "[mail]cheriton@su-score.ARPA"
              (Bytes.of_string "From: mann\nnaming draft attached"));
         ok_exn "deliver 2"
           (Runtime.append_file env "[mail]cheriton@su-score.ARPA"
              (Bytes.of_string "From: lantz\ngraphics paper"));
         let box = ok_exn "fetch" (Runtime.read_file env "[mail]cheriton@su-score.ARPA") in
         let text = Bytes.to_string box in
         Alcotest.(check bool) "first message present" true
           (contains text "naming draft attached");
         Alcotest.(check bool) "second message present" true
           (contains text "From: lantz")))

let test_mail_name_syntax () =
  ignore
    (run_client (fun _t _self env ->
         (* The mail server imposes the external user@host convention. *)
         match Runtime.append_file env "[mail]not-an-address" (Bytes.of_string "x") with
         | Error (Vio.Verr.Denied Reply.Illegal_name) -> ()
         | _ -> Alcotest.fail "mail names must contain user@host"))

let test_mail_directory () =
  ignore
    (run_client (fun _t _self env ->
         ok_exn "d1" (Runtime.append_file env "[mail]a@x" (Bytes.of_string "m"));
         ok_exn "d2" (Runtime.append_file env "[mail]b@y" (Bytes.of_string "m"));
         let records = ok_exn "list" (Runtime.list_directory env "[mail]") in
         let names = List.map (fun d -> d.Descriptor.name) records in
         Alcotest.(check (list string)) "mailboxes" [ "a@x"; "b@y" ]
           (List.sort compare names);
         List.iter
           (fun (d : Descriptor.t) ->
             Alcotest.(check bool) "typed as mailbox" true
               (d.Descriptor.obj_type = Descriptor.Mailbox))
           records))

(* --- VGTS: windows as named objects --- *)

module Vgts = Vservices.Vgts

let test_vgts_window_lifecycle () =
  let t =
    run_client (fun _t _self env ->
        ok_exn "create" (Runtime.create env "[windows]editor");
        ok_exn "write line 1"
          (Runtime.append_file env "[windows]editor" (Bytes.of_string "To be, or")); 
        ok_exn "write line 2"
          (Runtime.append_file env "[windows]editor" (Bytes.of_string "not to be"));
        let d = ok_exn "query" (Runtime.query env "[windows]editor") in
        Alcotest.(check bool) "typed as device" true
          (d.Descriptor.obj_type = Descriptor.Device);
        Alcotest.(check bool) "geometry attrs present" true
          (List.mem_assoc "x" d.Descriptor.attrs
          && List.mem_assoc "w" d.Descriptor.attrs);
        (* Window management through the uniform modify operation. *)
        let moved =
          {
            d with
            Descriptor.attrs =
              [ ("x", "10"); ("y", "2"); ("w", "30"); ("h", "6") ];
          }
        in
        ok_exn "move/resize" (Runtime.modify env "[windows]editor" moved);
        let back = ok_exn "read back" (Runtime.read_file env "[windows]editor") in
        Alcotest.(check string) "content readable" "To be, or\nnot to be\n"
          (Bytes.to_string back))
  in
  let ws = Scenario.workstation t 0 in
  (match Vgts.geometry ws.Scenario.ws_vgts "editor" with
  | Some g ->
      Alcotest.(check int) "moved x" 10 g.Vgts.x;
      Alcotest.(check int) "resized w" 30 g.Vgts.w
  | None -> Alcotest.fail "window missing");
  Alcotest.(check (list string)) "content stored"
    [ "To be, or"; "not to be" ]
    (Vgts.window_lines ws.Scenario.ws_vgts "editor")

let test_vgts_listing_and_removal () =
  ignore
    (run_client (fun _t _self env ->
         ok_exn "w1" (Runtime.append_file env "[windows]clock" (Bytes.of_string "12:00"));
         ok_exn "w2" (Runtime.append_file env "[windows]shell" (Bytes.of_string "% "));
         let records = ok_exn "list" (Runtime.list_directory env "[windows]") in
         Alcotest.(check (list string)) "windows listed" [ "clock"; "shell" ]
           (List.sort compare (List.map (fun d -> d.Descriptor.name) records));
         ok_exn "close" (Runtime.remove env "[windows]clock");
         let records = ok_exn "list again" (Runtime.list_directory env "[windows]") in
         Alcotest.(check (list string)) "window closed" [ "shell" ]
           (List.map (fun d -> d.Descriptor.name) records)))

let test_vgts_render () =
  let t =
    run_client (fun _t _self env ->
        ok_exn "create" (Runtime.create env "[windows]console");
        ok_exn "line" (Runtime.append_file env "[windows]console" (Bytes.of_string "hello")))
  in
  let ws = Scenario.workstation t 0 in
  let screen = Vgts.render ws.Scenario.ws_vgts ~width:50 ~height:12 in
  Alcotest.(check bool) "title painted" true
    (let n = String.length "console" in
     let h = String.length screen in
     let rec has i = i + n <= h && (String.sub screen i n = "console" || has (i + 1)) in
     has 0);
  Alcotest.(check bool) "content painted" true
    (let n = String.length "hello" in
     let h = String.length screen in
     let rec has i = i + n <= h && (String.sub screen i n = "hello" || has (i + 1)) in
     has 0)

(* --- internet server: TCP connections as named objects --- *)

module Internet_server = Vservices.Internet_server

let test_tcp_connection_lifecycle () =
  ignore
    (run_client (fun t _self env ->
         (* Opening a host:port name for writing creates a connection. *)
         ok_exn "connect"
           (Runtime.append_file env "[internet]su-score.arpa:25"
              (Bytes.of_string "HELO stanford")); 
         Alcotest.(check bool) "connection exists" true
           (Internet_server.connection_state t.Scenario.internet
              "su-score.arpa:25"
           <> None);
         (* Give the WAN echo time to arrive, then read it back. *)
         Vsim.Proc.delay (Runtime.engine env) 200.0;
         let echoed = ok_exn "read" (Runtime.read_file env "[internet]su-score.arpa:25") in
         Alcotest.(check string) "far end echoed" "HELO stanford"
           (Bytes.to_string echoed);
         (* Close it via the uniform remove operation. *)
         ok_exn "close" (Runtime.remove env "[internet]su-score.arpa:25");
         match Runtime.query env "[internet]su-score.arpa:25" with
         | Error (Vio.Verr.Denied Reply.Not_found) -> ()
         | _ -> Alcotest.fail "closed connection still named"))

let test_tcp_name_syntax () =
  ignore
    (run_client (fun _t _self env ->
         List.iter
           (fun name ->
             match Runtime.append_file env ("[internet]" ^ name) (Bytes.of_string "x") with
             | Error (Vio.Verr.Denied Reply.Illegal_name) -> ()
             | _ -> Alcotest.failf "connection name %S must be illegal" name)
           [ "nocolon"; ":80"; "host:"; "host:notaport"; "host:99999" ]))

let test_tcp_directory () =
  ignore
    (run_client (fun _t _self env ->
         ok_exn "c1" (Runtime.append_file env "[internet]a.arpa:21" (Bytes.of_string "x"));
         ok_exn "c2" (Runtime.append_file env "[internet]b.arpa:23" (Bytes.of_string "y"));
         Vsim.Proc.delay (Runtime.engine env) 200.0;
         let records = ok_exn "list" (Runtime.list_directory env "[internet]") in
         let names = List.map (fun d -> d.Descriptor.name) records in
         Alcotest.(check (list string)) "connections listed"
           [ "a.arpa:21"; "b.arpa:23" ] (List.sort compare names);
         List.iter
           (fun (d : Descriptor.t) ->
             Alcotest.(check bool) "typed as tcp connection" true
               (d.Descriptor.obj_type = Descriptor.Tcp_connection);
             Alcotest.(check (option string)) "established"
               (Some "established")
               (List.assoc_opt "state" d.Descriptor.attrs))
           records))

(* --- time --- *)

let test_time_service () =
  ignore
    (run_client (fun _t self env ->
         ignore env;
         Vsim.Proc.delay (Runtime.engine env) 123.0;
         let t1 = ok_exn "get time" (Time_server.get_time self) in
         Alcotest.(check bool) "time advanced past the delay" true (t1 >= 123.0)))

(* --- program loading (the §3.1 diskless-workstation path) --- *)

let test_program_load_roundtrip () =
  let image = Bytes.init 65536 (fun i -> Char.chr ((i * 13) mod 256)) in
  let build () =
    let t = Scenario.build ~workstations:1 ~file_servers:1 () in
    (match
       Program_manager.install_image (Scenario.file_server t 0) ~name:"editor"
         ~image
     with
    | Ok () -> ()
    | Error code -> Alcotest.failf "install: %s" (Reply.to_string code));
    t
  in
  let elapsed = ref nan in
  ignore
    (run_client ~build (fun t _self env ->
         ignore env;
         let eng = t.Scenario.engine in
         let storage = File_server.pid (Scenario.file_server t 0) in
         let t0 = Vsim.Engine.now eng in
         let loaded =
           ok_exn "load"
             (Program_manager.load
                (Runtime.self env)
                ~storage ~context:Context.Well_known.programs ~name:"editor"
                ~size:65536)
         in
         elapsed := Vsim.Engine.now eng -. t0;
         Alcotest.(check bool) "image intact" true (Bytes.equal loaded image)));
  (* Paper: 338 ms for 64 KB on 3 Mbit Ethernet (buffered in server). *)
  Alcotest.(check bool)
    (Fmt.str "64KB load took %.1f ms (paper: 338)" !elapsed)
    true
    (!elapsed > 325.0 && !elapsed < 355.0)

let test_run_program () =
  let build () =
    let t = Scenario.build ~workstations:1 ~file_servers:1 () in
    (match
       Program_manager.install_image (Scenario.file_server t 0) ~name:"hello"
         ~image:(Bytes.make 4096 'h')
     with
    | Ok () -> ()
    | Error code -> Alcotest.failf "install: %s" (Reply.to_string code));
    t
  in
  let ran = ref false in
  ignore
    (run_client ~build (fun t _self env ->
         ignore env;
         let ws = Scenario.workstation t 0 in
         Program_manager.register ws.Scenario.ws_programs "hello"
           (fun _self ~argument ->
             ran := true;
             String.length argument);
         let status =
           ok_exn "run"
             (Program_manager.run_program ws.Scenario.ws_programs
                (Runtime.self env) ~program:"hello" ~argument:"abc")
         in
         Alcotest.(check int) "exit status" 3 status));
  Alcotest.(check bool) "program body ran" true !ran

let test_programs_in_execution_context () =
  let build () =
    let t = Scenario.build ~workstations:1 ~file_servers:1 () in
    (match
       Program_manager.install_image (Scenario.file_server t 0) ~name:"lister"
         ~image:(Bytes.make 1024 'l')
     with
    | Ok () -> ()
    | Error code -> Alcotest.failf "install: %s" (Reply.to_string code));
    t
  in
  ignore
    (run_client ~build (fun t _self env ->
         let ws = Scenario.workstation t 0 in
         Program_manager.register ws.Scenario.ws_programs "lister"
           (fun _self ~argument:_ -> 7);
         ignore
           (ok_exn "run"
              (Program_manager.run_program ws.Scenario.ws_programs
                 (Runtime.self env) ~program:"lister" ~argument:"-v"));
         (* The execution is listed in the [programs] context with the
            other object types — §6's list-directory claim. *)
         let records = ok_exn "list" (Runtime.list_directory env "[programs]") in
         match records with
         | [ d ] ->
             Alcotest.(check string) "program name" "lister" d.Descriptor.name;
             Alcotest.(check bool) "typed as process" true
               (d.Descriptor.obj_type = Descriptor.Process);
             Alcotest.(check (option string)) "exit status recorded"
               (Some "exited 7")
               (List.assoc_opt "status" d.Descriptor.attrs);
             let q = ok_exn "query" (Runtime.query env "[programs]lister") in
             Alcotest.(check string) "query agrees" d.Descriptor.name
               q.Descriptor.name
         | l -> Alcotest.failf "expected one execution, got %d" (List.length l)))

(* --- exception server --- *)

let test_exception_reports () =
  let t =
    run_client (fun _t self env ->
        ignore env;
        Exception_server.report self ~culprit:(K.self_pid self) "bus error";
        Exception_server.report self ~culprit:(K.self_pid self) "divide by zero")
  in
  let ws = Scenario.workstation t 0 in
  let whats =
    List.map
      (fun r -> r.Exception_server.what)
      (Exception_server.reports ws.Scenario.ws_exceptions)
  in
  Alcotest.(check (list string)) "reports stored"
    [ "bus error"; "divide by zero" ] whats

let suite =
  [
    ( "services.terminal",
      [
        Alcotest.test_case "write/read" `Quick test_terminal_write_read;
        Alcotest.test_case "listing and query" `Quick test_terminal_listing_and_query;
        Alcotest.test_case "read back" `Quick test_terminal_read_back;
      ] );
    ( "services.printer",
      [
        Alcotest.test_case "job lifecycle" `Quick test_printer_job_lifecycle;
        Alcotest.test_case "queue listing" `Quick test_printer_queue_listing;
        Alcotest.test_case "duplicate job" `Quick test_printer_duplicate_job_rejected;
      ] );
    ( "services.mail",
      [
        Alcotest.test_case "deliver and fetch" `Quick test_mail_deliver_and_fetch;
        Alcotest.test_case "name syntax" `Quick test_mail_name_syntax;
        Alcotest.test_case "directory" `Quick test_mail_directory;
      ] );
    ( "services.vgts",
      [
        Alcotest.test_case "window lifecycle" `Quick test_vgts_window_lifecycle;
        Alcotest.test_case "listing and removal" `Quick
          test_vgts_listing_and_removal;
        Alcotest.test_case "render" `Quick test_vgts_render;
      ] );
    ( "services.internet",
      [
        Alcotest.test_case "connection lifecycle" `Quick
          test_tcp_connection_lifecycle;
        Alcotest.test_case "name syntax" `Quick test_tcp_name_syntax;
        Alcotest.test_case "directory" `Quick test_tcp_directory;
      ] );
    ("services.time", [ Alcotest.test_case "get time" `Quick test_time_service ]);
    ( "services.programs",
      [
        Alcotest.test_case "64KB load (paper 338ms)" `Quick
          test_program_load_roundtrip;
        Alcotest.test_case "run program" `Quick test_run_program;
        Alcotest.test_case "programs-in-execution context" `Quick
          test_programs_in_execution_context;
      ] );
    ( "services.exceptions",
      [ Alcotest.test_case "reports" `Quick test_exception_reports ] );
  ]
