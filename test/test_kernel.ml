(* Tests for the distributed V kernel: pid structure, message
   transactions and their calibrated timings, Forward, MoveTo/MoveFrom,
   SetPid/GetPid, process groups, and crash/restart behaviour. *)

module K = Vkernel.Kernel
module Pid = Vkernel.Pid
module Service = Vkernel.Service
module E = Vnet.Ethernet
module C = Vnet.Calibration

let check_float = Alcotest.(check (float 1e-6))

(* Messages are strings; payload bytes beyond the 32-byte message equal
   the string length, none of it treated as a copied segment. *)
let cost = { K.payload_bytes = String.length; K.segment_bytes = (fun _ -> 0) }

type rig = {
  eng : Vsim.Engine.t;
  net : string K.packet E.t;
  domain : string K.domain;
}

let make_rig ?(config = C.ethernet_3mbit) () =
  let eng = Vsim.Engine.create () in
  let net = E.create ~config eng in
  let domain = K.create_domain ~cost eng net in
  { eng; net; domain }

(* An echo server that replies [prefix ^ msg] forever. *)
let echo_server ?(prefix = "") host =
  K.spawn host ~name:"echo" (fun self ->
      let rec loop () =
        let msg, sender = K.receive self in
        (match K.reply self ~to_:sender (prefix ^ msg) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "echo reply failed: %a" K.pp_error e);
        loop ()
      in
      loop ())

(* --- Pid --- *)

let test_pid_fields () =
  let pid = Pid.make ~logical_host:300 ~local_pid:77 in
  Alcotest.(check int) "logical host" 300 (Pid.logical_host pid);
  Alcotest.(check int) "local pid" 77 (Pid.local_pid pid);
  Alcotest.(check string) "printed" "300.77" (Pid.to_string pid)

let test_pid_invalid () =
  Alcotest.check_raises "zero logical host" (Pid.Invalid_field "logical_host")
    (fun () -> ignore (Pid.make ~logical_host:0 ~local_pid:1));
  Alcotest.check_raises "oversized local pid" (Pid.Invalid_field "local_pid")
    (fun () -> ignore (Pid.make ~logical_host:1 ~local_pid:70000))

let prop_pid_roundtrip =
  QCheck.Test.make ~name:"pid subfields round-trip through 32-bit encoding"
    ~count:500
    QCheck.(pair (int_range 1 65535) (int_range 1 65535))
    (fun (lh, lp) ->
      let pid = Pid.make ~logical_host:lh ~local_pid:lp in
      let pid' = Pid.of_int (Pid.to_int pid) in
      Pid.logical_host pid' = lh && Pid.local_pid pid' = lp)

(* --- message transactions --- *)

let test_local_srr () =
  let rig = make_rig () in
  let h = K.boot_host rig.domain ~name:"ws" 1 in
  let server = echo_server ~prefix:"re:" h in
  let elapsed = ref nan and got = ref "" in
  ignore
    (K.spawn h ~name:"client" (fun self ->
         let t0 = Vsim.Engine.now rig.eng in
         (match K.send self server "" with
         | Ok (reply, _) -> got := reply
         | Error e -> Alcotest.failf "send failed: %a" K.pp_error e);
         elapsed := Vsim.Engine.now rig.eng -. t0));
  Vsim.Engine.run rig.eng;
  Alcotest.(check string) "reply content" "re:" !got;
  (* Paper (SOSP'83): local message transaction = 0.77 ms. *)
  check_float "local SRR = 0.77 ms" 0.77 !elapsed

let test_remote_srr_32b () =
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"ws1" 1 in
  let h2 = K.boot_host rig.domain ~name:"ws2" 2 in
  let server = echo_server h2 in
  let elapsed = ref nan in
  ignore
    (K.spawn h1 ~name:"client" (fun self ->
         let t0 = Vsim.Engine.now rig.eng in
         (match K.send self server "" with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "send failed: %a" K.pp_error e);
         elapsed := Vsim.Engine.now rig.eng -. t0));
  Vsim.Engine.run rig.eng;
  (* Paper §3.1: 2.56 ms for 32-byte messages on 3 Mbit Ethernet. *)
  check_float "remote SRR = 2.56 ms" 2.56 !elapsed

let test_remote_payload_integrity () =
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"ws1" 1 in
  let h2 = K.boot_host rig.domain ~name:"ws2" 2 in
  let server = echo_server ~prefix:"srv-" h2 in
  let got = ref "" in
  ignore
    (K.spawn h1 (fun self ->
         match K.send self server "payload" with
         | Ok (reply, _) -> got := reply
         | Error e -> Alcotest.failf "send failed: %a" K.pp_error e));
  Vsim.Engine.run rig.eng;
  Alcotest.(check string) "payload round-trip" "srv-payload" !got

let test_send_to_nonexistent () =
  let rig = make_rig () in
  let h = K.boot_host rig.domain ~name:"ws" 1 in
  let bogus = Pid.make ~logical_host:77 ~local_pid:42 in
  let result = ref (Ok ("", Pid.make ~logical_host:1 ~local_pid:1)) in
  ignore (K.spawn h (fun self -> result := K.send self bogus "hi"));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "nonexistent process error"
    (Error K.Nonexistent_process = !result)
    true

let test_send_to_dying_process_nacks () =
  (* Target dies while the request is in flight: sender gets an error
     back from the remote kernel, not a hang. *)
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"ws1" 1 in
  let h2 = K.boot_host rig.domain ~name:"ws2" 2 in
  let target =
    K.spawn h2 ~name:"shortlived" (fun self ->
        ignore (K.self_pid self);
        Vsim.Proc.delay rig.eng 0.3)
  in
  let result = ref (Ok ("", Pid.make ~logical_host:1 ~local_pid:1)) in
  ignore
    (K.spawn h1 (fun self ->
         Vsim.Proc.delay rig.eng 0.2;
         (* dispatched before death, arrives after *)
         result := K.send self target "hi"));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "nacked" (Error K.Nonexistent_process = !result) true

let test_reply_without_receive () =
  let rig = make_rig () in
  let h = K.boot_host rig.domain ~name:"ws" 1 in
  let other = K.spawn h (fun _ -> ()) in
  let result = ref (Ok ()) in
  ignore (K.spawn h (fun self -> result := K.reply self ~to_:other "hi"));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "not awaiting reply" (Error K.Not_awaiting_reply = !result)
    true

let test_receive_where () =
  let rig = make_rig () in
  let h = K.boot_host rig.domain ~name:"ws" 1 in
  let log = ref [] in
  let server =
    K.spawn h ~name:"selective" (fun self ->
        (* Wait specifically for the second client's message first. *)
        let msg1, s1 = K.receive_where self ~from:(fun _ -> true) in
        ignore (K.reply self ~to_:s1 msg1);
        let msg2, s2 = K.receive self in
        ignore (K.reply self ~to_:s2 msg2))
  in
  ignore
    (K.spawn h ~name:"c1" (fun self ->
         match K.send self server "first" with
         | Ok (r, _) -> log := r :: !log
         | Error _ -> ()));
  ignore
    (K.spawn h ~name:"c2" (fun self ->
         Vsim.Proc.delay rig.eng 1.0;
         match K.send self server "second" with
         | Ok (r, _) -> log := r :: !log
         | Error _ -> ()));
  Vsim.Engine.run rig.eng;
  Alcotest.(check (list string)) "both served" [ "second"; "first" ] !log

(* --- Forward --- *)

let test_forward_local_chain () =
  let rig = make_rig () in
  let h = K.boot_host rig.domain ~name:"ws" 1 in
  let final = echo_server ~prefix:"final-" h in
  let middle =
    K.spawn h ~name:"middle" (fun self ->
        let msg, sender = K.receive self in
        match K.forward self ~from_:sender ~to_:final (msg ^ "+fwd") with
        | Ok () -> ()
        | Error e -> Alcotest.failf "forward failed: %a" K.pp_error e)
  in
  let got = ref "" in
  ignore
    (K.spawn h ~name:"client" (fun self ->
         match K.send self middle "msg" with
         | Ok (reply, _) -> got := reply
         | Error e -> Alcotest.failf "send failed: %a" K.pp_error e));
  Vsim.Engine.run rig.eng;
  Alcotest.(check string) "reply comes from final server" "final-msg+fwd" !got

let test_forward_remote_reply_is_direct () =
  (* A on host1 sends to B on host2; B forwards to C on host3; C replies
     directly to A. The forwarding host must not see more frames after
     its forward: 3 message-bearing frames total (A->B, B->C, C->A). *)
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"h1" 1 in
  let h2 = K.boot_host rig.domain ~name:"h2" 2 in
  let h3 = K.boot_host rig.domain ~name:"h3" 3 in
  let c = echo_server ~prefix:"c-" h3 in
  let b =
    K.spawn h2 ~name:"b" (fun self ->
        let msg, sender = K.receive self in
        ignore (K.forward self ~from_:sender ~to_:c msg))
  in
  let got = ref "" in
  ignore
    (K.spawn h1 ~name:"a" (fun self ->
         match K.send self b "x" with
         | Ok (reply, replier) ->
             got := reply;
             Alcotest.(check bool) "replier is C, not B" true (replier = c)
         | Error e -> Alcotest.failf "send failed: %a" K.pp_error e));
  Vsim.Engine.run rig.eng;
  Alcotest.(check string) "reply from C via forward" "c-x" !got;
  Alcotest.(check int) "exactly 3 frames on the wire" 3
    (E.counters rig.net).E.frames_sent

let test_forward_consumes_serving () =
  let rig = make_rig () in
  let h = K.boot_host rig.domain ~name:"ws" 1 in
  let final = echo_server h in
  let result = ref (Ok ()) in
  let middle =
    K.spawn h ~name:"middle" (fun self ->
        let msg, sender = K.receive self in
        ignore (K.forward self ~from_:sender ~to_:final msg);
        (* Second reply attempt to the same sender must fail. *)
        result := K.reply self ~to_:sender "again")
  in
  ignore (K.spawn h (fun self -> ignore (K.send self middle "x")));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "serving slot consumed" (Error K.Not_awaiting_reply = !result)
    true

(* --- MoveTo / MoveFrom --- *)

let test_move_from_local () =
  let rig = make_rig () in
  let h = K.boot_host rig.domain ~name:"ws" 1 in
  let got = ref Bytes.empty in
  let server =
    K.spawn h ~name:"reader" (fun self ->
        let _msg, sender = K.receive self in
        (match K.move_from self ~sender ~len:5 with
        | Ok data -> got := data
        | Error e -> Alcotest.failf "move_from failed: %a" K.pp_error e);
        ignore (K.reply self ~to_:sender "done"))
  in
  ignore
    (K.spawn h (fun self ->
         ignore (K.send self ~buffer:(Bytes.of_string "hello world") server "read")));
  Vsim.Engine.run rig.eng;
  Alcotest.(check string) "local move_from" "hello" (Bytes.to_string !got)

let test_move_from_remote () =
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"ws1" 1 in
  let h2 = K.boot_host rig.domain ~name:"ws2" 2 in
  let payload = String.init 2000 (fun i -> Char.chr (i mod 256)) in
  let got = ref Bytes.empty in
  let server =
    K.spawn h2 ~name:"reader" (fun self ->
        let _msg, sender = K.receive self in
        (match K.move_from self ~sender ~len:2000 with
        | Ok data -> got := data
        | Error e -> Alcotest.failf "move_from failed: %a" K.pp_error e);
        ignore (K.reply self ~to_:sender "done"))
  in
  ignore
    (K.spawn h1 (fun self ->
         ignore (K.send self ~buffer:(Bytes.of_string payload) server "read")));
  Vsim.Engine.run rig.eng;
  Alcotest.(check string) "remote move_from data intact" payload
    (Bytes.to_string !got)

let test_move_to_remote () =
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"ws1" 1 in
  let h2 = K.boot_host rig.domain ~name:"ws2" 2 in
  let payload = String.init 1500 (fun i -> Char.chr ((i * 7) mod 256)) in
  let buffer = Bytes.create 1500 in
  let server =
    K.spawn h2 ~name:"writer" (fun self ->
        let _msg, sender = K.receive self in
        (match K.move_to self ~sender (Bytes.of_string payload) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "move_to failed: %a" K.pp_error e);
        ignore (K.reply self ~to_:sender "done"))
  in
  let finished = ref false in
  ignore
    (K.spawn h1 (fun self ->
         (match K.send self ~buffer server "write" with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "send failed: %a" K.pp_error e);
         finished := true));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "transaction completed" true !finished;
  Alcotest.(check string) "remote move_to wrote the buffer" payload
    (Bytes.to_string buffer)

let test_move_to_64k_timing () =
  (* Paper §3.1: loading a 64 KB program via MoveTo takes 338 ms on
     3 Mbit Ethernet (host-limited). The model should land within a few
     per cent. *)
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"ws" 1 in
  let h2 = K.boot_host rig.domain ~name:"fs" 2 in
  let buffer = Bytes.create 65536 in
  let elapsed = ref nan in
  let server =
    K.spawn h2 ~name:"loader" (fun self ->
        let _msg, sender = K.receive self in
        let t0 = Vsim.Engine.now rig.eng in
        (match K.move_to self ~sender (Bytes.create 65536) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "move_to failed: %a" K.pp_error e);
        elapsed := Vsim.Engine.now rig.eng -. t0;
        ignore (K.reply self ~to_:sender "loaded"))
  in
  ignore (K.spawn h1 (fun self -> ignore (K.send self ~buffer server "load")));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool)
    (Fmt.str "64KB MoveTo took %.1f ms (paper: 338)" !elapsed)
    true
    (!elapsed > 325.0 && !elapsed < 355.0)

let test_move_bad_buffer () =
  let rig = make_rig () in
  let h = K.boot_host rig.domain ~name:"ws" 1 in
  let result = ref (Ok Bytes.empty) in
  let server =
    K.spawn h (fun self ->
        let _msg, sender = K.receive self in
        result := K.move_from self ~sender ~len:100;
        ignore (K.reply self ~to_:sender "done"))
  in
  ignore
    (K.spawn h (fun self ->
         ignore (K.send self ~buffer:(Bytes.create 10) server "read")));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "overrun rejected" (Error K.Bad_buffer = !result) true

(* --- service naming --- *)

let test_getpid_local () =
  let rig = make_rig () in
  let h = K.boot_host rig.domain ~name:"ws" 1 in
  let server = echo_server h in
  K.set_pid h ~service:Service.Id.time server Service.Local;
  let found = ref None in
  ignore
    (K.spawn h (fun self -> found := K.get_pid self ~service:Service.Id.time Service.Local));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "found local registration" true (!found = Some server)

let test_getpid_broadcast () =
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"ws" 1 in
  let h2 = K.boot_host rig.domain ~name:"fs" 2 in
  let server = echo_server h2 in
  K.set_pid h2 ~service:Service.Id.storage server Service.Both;
  let found = ref None in
  ignore
    (K.spawn h1 (fun self ->
         found := K.get_pid self ~service:Service.Id.storage Service.Both));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "found via broadcast" true (!found = Some server)

let test_getpid_local_scope_invisible_remotely () =
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"ws" 1 in
  let h2 = K.boot_host rig.domain ~name:"fs" 2 in
  let server = echo_server h2 in
  K.set_pid h2 ~service:Service.Id.storage server Service.Local;
  let found = ref (Some server) in
  ignore
    (K.spawn h1 (fun self ->
         found := K.get_pid self ~service:Service.Id.storage Service.Both));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "local-scope server hidden from the network" true
    (!found = None)

let test_getpid_dead_server_not_returned () =
  let rig = make_rig () in
  let h = K.boot_host rig.domain ~name:"ws" 1 in
  let server = K.spawn h (fun _ -> ()) in
  K.set_pid h ~service:Service.Id.time server Service.Local;
  let found = ref (Some server) in
  ignore
    (K.spawn h (fun self ->
         Vsim.Proc.delay rig.eng 1.0;
         (* server has exited *)
         found := K.get_pid self ~service:Service.Id.time Service.Local));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "stale registration filtered" true (!found = None)

let test_getpid_unknown_times_out () =
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"ws" 1 in
  let _h2 = K.boot_host rig.domain ~name:"other" 2 in
  let found = ref (Some (Pid.make ~logical_host:1 ~local_pid:1)) in
  let finished_at = ref nan in
  ignore
    (K.spawn h1 (fun self ->
         found := K.get_pid self ~service:999 Service.Both;
         finished_at := Vsim.Engine.now rig.eng));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "no answer" true (!found = None);
  Alcotest.(check bool) "gave up after the query timeout" true
    (!finished_at >= C.getpid_timeout_ms)

let test_local_and_remote_registrations_coexist () =
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"ws" 1 in
  let h2 = K.boot_host rig.domain ~name:"fs" 2 in
  let local_server = echo_server h1 in
  let public_server = echo_server h2 in
  (* §4.2: a machine may have a Local registration while a different,
     public server serves the network. *)
  K.set_pid h1 ~service:Service.Id.storage local_server Service.Local;
  K.set_pid h2 ~service:Service.Id.storage public_server Service.Remote;
  let local_found = ref None and h2_found = ref None in
  ignore
    (K.spawn h1 (fun self ->
         local_found := K.get_pid self ~service:Service.Id.storage Service.Both));
  ignore
    (K.spawn h2 (fun self ->
         (* h2's own registration is Remote-scope: not visible to a
            local query, so the broadcast cannot answer from h2 either
            (frames do not loop back); h1 has no remote registration. *)
         h2_found := K.get_pid self ~service:Service.Id.storage Service.Local));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "workstation prefers its local server" true
    (!local_found = Some local_server);
  Alcotest.(check bool) "remote-scope not visible to local query" true
    (!h2_found = None)

(* --- groups --- *)

let test_group_send_first_reply () =
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"h1" 1 in
  let h2 = K.boot_host rig.domain ~name:"h2" 2 in
  let h3 = K.boot_host rig.domain ~name:"h3" 3 in
  let group = K.create_group rig.domain in
  (* Member on h3 answers slowly; member on h2 answers fast. *)
  let fast =
    K.spawn h2 ~name:"fast" (fun self ->
        let _msg, sender = K.receive self in
        ignore (K.reply self ~to_:sender "fast"))
  in
  let slow =
    K.spawn h3 ~name:"slow" (fun self ->
        let _msg, sender = K.receive self in
        Vsim.Proc.delay rig.eng 50.0;
        ignore (K.reply self ~to_:sender "slow"))
  in
  K.join_group h2 ~group fast;
  K.join_group h3 ~group slow;
  let got = ref ("", fast) in
  ignore
    (K.spawn h1 (fun self ->
         match K.send_group self ~group "query" with
         | Ok (msg, replier) -> got := (msg, replier)
         | Error e -> Alcotest.failf "group send failed: %a" K.pp_error e));
  Vsim.Engine.run rig.eng;
  Alcotest.(check string) "first reply wins" "fast" (fst !got);
  Alcotest.(check bool) "replier pid reported" true (snd !got = fast)

let test_group_send_no_members () =
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"h1" 1 in
  let _h2 = K.boot_host rig.domain ~name:"h2" 2 in
  let group = K.create_group rig.domain in
  let result = ref (Ok ("", Pid.make ~logical_host:1 ~local_pid:1)) in
  ignore (K.spawn h1 (fun self -> result := K.send_group self ~group "query"));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "no members -> no reply" true (Error K.No_reply = !result)

let test_group_local_member () =
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"h1" 1 in
  let group = K.create_group rig.domain in
  let member =
    K.spawn h1 ~name:"member" (fun self ->
        let msg, sender = K.receive self in
        ignore (K.reply self ~to_:sender ("local:" ^ msg)))
  in
  K.join_group h1 ~group member;
  let got = ref "" in
  ignore
    (K.spawn h1 (fun self ->
         match K.send_group self ~group "q" with
         | Ok (msg, _) -> got := msg
         | Error e -> Alcotest.failf "group send failed: %a" K.pp_error e));
  Vsim.Engine.run rig.eng;
  Alcotest.(check string) "same-host member reachable" "local:q" !got

(* --- crash / restart --- *)

let test_crash_unblocks_remote_sender () =
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"ws" 1 in
  let h2 = K.boot_host rig.domain ~name:"fs" 2 in
  let server =
    K.spawn h2 ~name:"sink" (fun self ->
        let _msg, _sender = K.receive self in
        (* never replies *)
        Vsim.Proc.delay rig.eng 10_000.0)
  in
  let result = ref (Ok ("", Pid.make ~logical_host:1 ~local_pid:1)) in
  ignore (K.spawn h1 (fun self -> result := K.send self server "hi"));
  Vsim.Engine.schedule ~delay:10.0 rig.eng (fun () ->
      K.crash_host (Option.get (K.host_of_addr rig.domain 2)));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "sender times out after crash" true
    (Error K.Timeout = !result)

let test_crash_kills_blocked_processes () =
  let rig = make_rig () in
  let h = K.boot_host rig.domain ~name:"ws" 1 in
  let died = ref false in
  ignore
    (K.spawn h (fun self ->
         match K.receive self with
         | _ -> ()
         | exception Vsim.Proc.Killed _ -> died := true));
  Vsim.Engine.schedule ~delay:1.0 rig.eng (fun () -> K.crash_host h);
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "blocked process killed" true !died

let test_restart_invalidates_old_pids () =
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"ws" 1 in
  let h2 = K.boot_host rig.domain ~name:"fs" 2 in
  let old_server = echo_server h2 in
  let old_logical = K.host_logical h2 in
  K.crash_host h2;
  K.restart_host h2;
  Alcotest.(check bool) "fresh logical host id" true
    (K.host_logical h2 <> old_logical);
  let new_server = echo_server ~prefix:"new-" h2 in
  let stale = ref None and fresh = ref "" in
  ignore
    (K.spawn h1 (fun self ->
         (match K.send self old_server "x" with
         | Ok _ -> ()
         | Error e -> stale := Some e);
         match K.send self new_server "x" with
         | Ok (reply, _) -> fresh := reply
         | Error _ -> ()));
  Vsim.Engine.run rig.eng;
  (* The stale send goes over the wire; the restarted incarnation knows
     nothing of the old one's pids and nacks Timeout — the message is
     never delivered to the new incarnation's processes. *)
  Alcotest.(check bool) "stale pid times out" true (!stale = Some K.Timeout);
  Alcotest.(check string) "new server reachable" "new-x" !fresh

let test_restart_service_reregistration () =
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"ws" 1 in
  let h2 = K.boot_host rig.domain ~name:"fs" 2 in
  let server = echo_server h2 in
  K.set_pid h2 ~service:Service.Id.storage server Service.Both;
  K.crash_host h2;
  K.restart_host h2;
  (* Before re-registration the service is gone; after, it resolves to
     the new pid — the behaviour logical prefix bindings rely on. *)
  let before = ref (Some server) and after = ref None in
  ignore
    (K.spawn h1 (fun self ->
         before := K.get_pid self ~service:Service.Id.storage Service.Both;
         Vsim.Proc.delay rig.eng 100.0;
         after := K.get_pid self ~service:Service.Id.storage Service.Both));
  Vsim.Engine.schedule ~delay:50.0 rig.eng (fun () ->
      let new_server = echo_server h2 in
      K.set_pid h2 ~service:Service.Id.storage new_server Service.Both);
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "unresolvable while down" true (!before = None);
  Alcotest.(check bool) "resolves to restarted server" true (!after <> None)

let test_loss_retransmission () =
  (* Under heavy frame loss, remote transactions still complete (the
     kernel retransmits) and each request is executed exactly once
     (duplicates are suppressed). *)
  let rig = make_rig () in
  E.set_loss_probability rig.net 0.3;
  let h1 = K.boot_host rig.domain ~name:"ws" 1 in
  let h2 = K.boot_host rig.domain ~name:"fs" 2 in
  let executions = ref 0 in
  let server =
    K.spawn h2 ~name:"counting" (fun self ->
        let rec loop () =
          let msg, sender = K.receive self in
          incr executions;
          ignore (K.reply self ~to_:sender ("ack:" ^ msg));
          loop ()
        in
        loop ())
  in
  let completed = ref 0 and failed = ref 0 in
  let n = 40 in
  for i = 1 to n do
    ignore
      (K.spawn h1 (fun self ->
           Vsim.Proc.delay rig.eng (float_of_int i);
           match K.send self server (Fmt.str "req%d" i) with
           | Ok (reply, _) ->
               Alcotest.(check string) "reply matches request"
                 (Fmt.str "ack:req%d" i) reply;
               incr completed
           | Error _ -> incr failed))
  done;
  Vsim.Engine.run rig.eng;
  Alcotest.(check int) "all transactions completed" n !completed;
  Alcotest.(check int) "no failures" 0 !failed;
  Alcotest.(check int) "each executed exactly once" n !executions

let test_lossless_sends_no_retransmit_executions () =
  (* Sanity: without loss the duplicate-suppression path never fires and
     executions still match sends. *)
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"ws" 1 in
  let h2 = K.boot_host rig.domain ~name:"fs" 2 in
  let executions = ref 0 in
  let server =
    K.spawn h2 (fun self ->
        let rec loop () =
          let _msg, sender = K.receive self in
          incr executions;
          ignore (K.reply self ~to_:sender "ok");
          loop ()
        in
        loop ())
  in
  for i = 1 to 10 do
    ignore
      (K.spawn h1 (fun self ->
           Vsim.Proc.delay rig.eng (float_of_int i);
           ignore (K.send self server "x")))
  done;
  Vsim.Engine.run rig.eng;
  Alcotest.(check int) "one execution per send" 10 !executions

let test_partition_times_out () =
  (* A partition (not a crash) makes the destination unreachable: the
     probe machinery gives up instead of retransmitting forever. *)
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"ws" 1 in
  let h2 = K.boot_host rig.domain ~name:"fs" 2 in
  let server = echo_server h2 in
  E.partition rig.net 1 2;
  let result = ref (Ok ("", Pid.make ~logical_host:1 ~local_pid:1)) in
  ignore (K.spawn h1 (fun self -> result := K.send self server "hi"));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "partitioned send times out" true
    (Error K.Timeout = !result)

let test_forward_group () =
  (* B forwards A's transaction to a whole group; the first member to
     reply completes it, directly to A. *)
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"h1" 1 in
  let h2 = K.boot_host rig.domain ~name:"h2" 2 in
  let h3 = K.boot_host rig.domain ~name:"h3" 3 in
  let h4 = K.boot_host rig.domain ~name:"h4" 4 in
  let group = K.create_group rig.domain in
  let member host tag delay_ms =
    let pid =
      K.spawn host ~name:tag (fun self ->
          let msg, sender = K.receive self in
          Vsim.Proc.delay rig.eng delay_ms;
          ignore (K.reply self ~to_:sender (tag ^ ":" ^ msg)))
    in
    K.join_group host ~group pid;
    pid
  in
  let fast = member h3 "fast" 0.0 in
  let _slow = member h4 "slow" 30.0 in
  let middle =
    K.spawn h2 ~name:"middle" (fun self ->
        let msg, sender = K.receive self in
        match K.forward_group self ~from_:sender ~group msg with
        | Ok () -> ()
        | Error e -> Alcotest.failf "forward_group: %a" K.pp_error e)
  in
  let got = ref ("", fast) in
  ignore
    (K.spawn h1 ~name:"client" (fun self ->
         match K.send self middle "q" with
         | Ok (reply, replier) -> got := (reply, replier)
         | Error e -> Alcotest.failf "send: %a" K.pp_error e));
  Vsim.Engine.run rig.eng;
  Alcotest.(check string) "fastest member answered" "fast:q" (fst !got);
  Alcotest.(check bool) "replier is the member, not the forwarder" true
    (Pid.equal (snd !got) fast)

(* Liveness/safety property: under random topologies, delays and loss,
   every Send completes exactly once — with a reply or an error, never
   both, never neither. *)
let prop_every_send_completes =
  QCheck.Test.make ~name:"every send completes exactly once" ~count:25
    QCheck.(triple (int_range 1 1000000) (int_range 2 5) (int_range 0 25))
    (fun (seed, n_hosts, loss_pct) ->
      let rig = make_rig () in
      E.set_loss_probability rig.net (float_of_int loss_pct /. 100.0);
      let prng = Vsim.Prng.create ~seed in
      let hosts =
        List.init n_hosts (fun i ->
            K.boot_host rig.domain ~name:(Fmt.str "h%d" i) (i + 1))
      in
      let servers =
        List.map
          (fun h ->
            K.spawn h (fun self ->
                let rec loop () =
                  let msg, sender = K.receive self in
                  if Vsim.Prng.bool prng then Vsim.Proc.delay rig.eng 3.0;
                  ignore (K.reply self ~to_:sender msg);
                  loop ()
                in
                loop ()))
          hosts
      in
      let n_sends = 20 in
      let completions = ref 0 in
      for i = 1 to n_sends do
        let client_host = Vsim.Prng.pick prng hosts in
        let target = Vsim.Prng.pick prng servers in
        ignore
          (K.spawn client_host (fun self ->
               Vsim.Proc.delay rig.eng (float_of_int (i * 3));
               match K.send self target "m" with
               | Ok _ | Error _ -> incr completions))
      done;
      Vsim.Engine.run rig.eng;
      !completions = n_sends)

let test_destroy_process () =
  let rig = make_rig () in
  let h = K.boot_host rig.domain ~name:"ws" 1 in
  let victim_died = ref false in
  let victim =
    K.spawn h ~name:"victim" (fun self ->
        match K.receive self with
        | _ -> ()
        | exception Vsim.Proc.Killed _ -> victim_died := true)
  in
  let send_result = ref (Ok ("", Pid.make ~logical_host:1 ~local_pid:1)) in
  ignore
    (K.spawn h (fun self ->
         Vsim.Proc.delay rig.eng 1.0;
         Alcotest.(check bool) "destroy returns true" true
           (K.destroy_process rig.domain victim);
         Alcotest.(check bool) "second destroy is false" false
           (K.destroy_process rig.domain victim);
         (* The pid is now invalid. *)
         send_result := K.send self victim "hello"));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "victim unwound" true !victim_died;
  Alcotest.(check bool) "dead pid rejected" true
    (Error K.Nonexistent_process = !send_result)

let test_destroy_unblocks_client () =
  (* Destroying a server mid-transaction fails its blocked client
     (probe timeout sees the process gone and nacks via retransmit). *)
  let rig = make_rig () in
  let h1 = K.boot_host rig.domain ~name:"ws" 1 in
  let h2 = K.boot_host rig.domain ~name:"fs" 2 in
  let server =
    K.spawn h2 ~name:"sink" (fun self ->
        let _ = K.receive self in
        Vsim.Proc.delay rig.eng 10_000.0)
  in
  let result = ref (Ok ("", Pid.make ~logical_host:1 ~local_pid:1)) in
  ignore (K.spawn h1 (fun self -> result := K.send self server "hi"));
  Vsim.Engine.schedule ~delay:5.0 rig.eng (fun () ->
      ignore (K.destroy_process rig.domain server));
  Vsim.Engine.run rig.eng;
  Alcotest.(check bool) "client unblocked with an error" true
    (match !result with Error _ -> true | Ok _ -> false)

let test_trace_timeline () =
  (* The Figure-1 timeline: trace records appear in transaction order at
     the calibrated instants. *)
  let rig = make_rig () in
  let trace = Vsim.Trace.create rig.eng in
  K.set_trace rig.domain trace;
  let h1 = K.boot_host rig.domain ~name:"a" 1 in
  let h2 = K.boot_host rig.domain ~name:"b" 2 in
  let server =
    K.spawn h2 (fun self ->
        let msg, sender = K.receive self in
        ignore (K.reply self ~to_:sender msg))
  in
  ignore (K.spawn h1 (fun self -> ignore (K.send self server "")));
  Vsim.Engine.run rig.eng;
  let events =
    List.map
      (fun r ->
        ( (match String.index_opt r.Vsim.Trace.message ' ' with
          | Some i -> String.sub r.Vsim.Trace.message 0 i
          | None -> r.Vsim.Trace.message),
          r.Vsim.Trace.time ))
      (Vsim.Trace.records trace)
  in
  let kind k = List.assoc_opt k events in
  Alcotest.(check (option (float 1e-6))) "Send at t=0" (Some 0.0) (kind "Send");
  Alcotest.(check (option (float 1e-6))) "Receive at 1.28" (Some 1.28)
    (kind "Receive");
  Alcotest.(check (option (float 1e-6))) "Reply right after" (Some 1.28)
    (kind "Reply")

let test_determinism () =
  (* The same scenario run twice produces identical event counts and
     final clocks. *)
  let run_once () =
    let rig = make_rig () in
    let h1 = K.boot_host rig.domain ~name:"h1" 1 in
    let h2 = K.boot_host rig.domain ~name:"h2" 2 in
    let server = echo_server h2 in
    for i = 1 to 5 do
      ignore
        (K.spawn h1 (fun self ->
             Vsim.Proc.delay rig.eng (float_of_int i);
             ignore (K.send self server (String.make i 'x'))))
    done;
    Vsim.Engine.run rig.eng;
    (Vsim.Engine.executed rig.eng, Vsim.Engine.now rig.eng)
  in
  let a = run_once () and b = run_once () in
  Alcotest.(check bool) "identical runs" true (a = b)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "kernel.pid",
      [
        Alcotest.test_case "fields" `Quick test_pid_fields;
        Alcotest.test_case "invalid" `Quick test_pid_invalid;
        qcheck prop_pid_roundtrip;
      ] );
    ( "kernel.ipc",
      [
        Alcotest.test_case "local SRR timing" `Quick test_local_srr;
        Alcotest.test_case "remote SRR timing (paper 2.56ms)" `Quick
          test_remote_srr_32b;
        Alcotest.test_case "payload integrity" `Quick test_remote_payload_integrity;
        Alcotest.test_case "send to nonexistent" `Quick test_send_to_nonexistent;
        Alcotest.test_case "nack for dying target" `Quick
          test_send_to_dying_process_nacks;
        Alcotest.test_case "reply without receive" `Quick test_reply_without_receive;
        Alcotest.test_case "receive_where" `Quick test_receive_where;
      ] );
    ( "kernel.forward",
      [
        Alcotest.test_case "local chain" `Quick test_forward_local_chain;
        Alcotest.test_case "remote reply is direct" `Quick
          test_forward_remote_reply_is_direct;
        Alcotest.test_case "consumes serving slot" `Quick
          test_forward_consumes_serving;
      ] );
    ( "kernel.move",
      [
        Alcotest.test_case "move_from local" `Quick test_move_from_local;
        Alcotest.test_case "move_from remote" `Quick test_move_from_remote;
        Alcotest.test_case "move_to remote" `Quick test_move_to_remote;
        Alcotest.test_case "64KB timing (paper 338ms)" `Quick test_move_to_64k_timing;
        Alcotest.test_case "bad buffer" `Quick test_move_bad_buffer;
      ] );
    ( "kernel.service",
      [
        Alcotest.test_case "getpid local" `Quick test_getpid_local;
        Alcotest.test_case "getpid broadcast" `Quick test_getpid_broadcast;
        Alcotest.test_case "local scope invisible remotely" `Quick
          test_getpid_local_scope_invisible_remotely;
        Alcotest.test_case "dead server filtered" `Quick
          test_getpid_dead_server_not_returned;
        Alcotest.test_case "unknown service times out" `Quick
          test_getpid_unknown_times_out;
        Alcotest.test_case "local+remote coexist" `Quick
          test_local_and_remote_registrations_coexist;
      ] );
    ( "kernel.group",
      [
        Alcotest.test_case "first reply wins" `Quick test_group_send_first_reply;
        Alcotest.test_case "no members" `Quick test_group_send_no_members;
        Alcotest.test_case "local member" `Quick test_group_local_member;
        Alcotest.test_case "forward_group" `Quick test_forward_group;
      ] );
    ( "kernel.failure",
      [
        Alcotest.test_case "crash unblocks sender" `Quick
          test_crash_unblocks_remote_sender;
        Alcotest.test_case "crash kills blocked" `Quick
          test_crash_kills_blocked_processes;
        Alcotest.test_case "restart invalidates pids" `Quick
          test_restart_invalidates_old_pids;
        Alcotest.test_case "service re-registration" `Quick
          test_restart_service_reregistration;
        Alcotest.test_case "destroy process" `Quick test_destroy_process;
        Alcotest.test_case "destroy unblocks client" `Quick
          test_destroy_unblocks_client;
        Alcotest.test_case "loss + retransmission" `Quick test_loss_retransmission;
        Alcotest.test_case "no spurious duplicates" `Quick
          test_lossless_sends_no_retransmit_executions;
        Alcotest.test_case "partition times out" `Quick test_partition_times_out;
        Alcotest.test_case "figure-1 timeline" `Quick test_trace_timeline;
        Alcotest.test_case "determinism" `Quick test_determinism;
        qcheck prop_every_send_completes;
      ] );
  ]
