let () =
  Alcotest.run "vsystem"
    (List.concat
       [
         Test_sim.suite;
         Test_net.suite;
         Test_fabric.suite;
         Test_kernel.suite;
         Test_naming.suite;
         Test_fs.suite;
         Test_vio.suite;
         Test_system.suite;
         Test_services.suite;
         Test_baseline.suite;
         Test_conformance.suite;
         Test_forest.suite;
         Test_day.suite;
         Test_edges.suite;
         Test_obs.suite;
         Test_telemetry.suite;
         Test_recorder.suite;
         Test_cache.suite;
         Test_fault.suite;
         Test_admission.suite;
         Test_replication.suite;
         Test_domains.suite;
       ])
