(* Edge cases and documented limits across the stack. *)

module K = Vkernel.Kernel
module Pid = Vkernel.Pid
module Scenario = Vworkload.Scenario
module Runtime = Vruntime.Runtime
module File_server = Vservices.File_server
open Vnaming

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s failed: %a" what Vio.Verr.pp e

let run_client ?build body =
  let t = match build with Some b -> b () | None -> Scenario.build () in
  let completed = ref false in
  ignore
    (Scenario.spawn_client t ~ws:0 (fun self env ->
         body t self env;
         completed := true));
  Scenario.run t;
  Alcotest.(check bool) "client completed" true !completed;
  t

(* --- kernel edges --- *)

let test_send_to_self_deadlocks () =
  (* A process that Sends to itself can never Receive: the transaction
     never completes (V semantics; the engine simply quiesces). *)
  let eng = Vsim.Engine.create () in
  let net = Vnet.Ethernet.create ~config:Vnet.Calibration.ethernet_3mbit eng in
  let domain =
    K.create_domain
      ~cost:{ K.payload_bytes = String.length; K.segment_bytes = (fun _ -> 0) }
      eng net
  in
  let h = K.boot_host domain ~name:"ws" 1 in
  let completed = ref false in
  ignore
    (K.spawn h (fun self ->
         ignore (K.send self (K.self_pid self) "hello me");
         completed := true));
  Vsim.Engine.run ~until:10_000.0 eng;
  Alcotest.(check bool) "self-send never completes" false !completed

let test_reply_twice () =
  let eng = Vsim.Engine.create () in
  let net = Vnet.Ethernet.create ~config:Vnet.Calibration.ethernet_3mbit eng in
  let domain =
    K.create_domain
      ~cost:{ K.payload_bytes = String.length; K.segment_bytes = (fun _ -> 0) }
      eng net
  in
  let h = K.boot_host domain ~name:"ws" 1 in
  let second = ref (Ok ()) in
  let server =
    K.spawn h (fun self ->
        let msg, sender = K.receive self in
        ignore (K.reply self ~to_:sender msg);
        second := K.reply self ~to_:sender "again")
  in
  ignore (K.spawn h (fun self -> ignore (K.send self server "x")));
  Vsim.Engine.run eng;
  Alcotest.(check bool) "second reply refused" true
    (Error K.Not_awaiting_reply = !second)

let test_move_zero_bytes () =
  let eng = Vsim.Engine.create () in
  let net = Vnet.Ethernet.create ~config:Vnet.Calibration.ethernet_3mbit eng in
  let domain =
    K.create_domain
      ~cost:{ K.payload_bytes = String.length; K.segment_bytes = (fun _ -> 0) }
      eng net
  in
  let h1 = K.boot_host domain ~name:"a" 1 in
  let h2 = K.boot_host domain ~name:"b" 2 in
  let got = ref None in
  let server =
    K.spawn h2 (fun self ->
        let _msg, sender = K.receive self in
        (match K.move_from self ~sender ~len:0 with
        | Ok data -> got := Some (Bytes.length data)
        | Error e -> Alcotest.failf "zero-length move: %a" K.pp_error e);
        ignore (K.reply self ~to_:sender "done"))
  in
  ignore
    (K.spawn h1 (fun self ->
         ignore (K.send self ~buffer:(Bytes.create 4) server "go")));
  Vsim.Engine.run eng;
  Alcotest.(check (option int)) "empty move delivered" (Some 0) !got

(* --- descriptor boundary --- *)

let test_descriptor_instance_sentinel () =
  (* Instance id 0xffff is the on-wire "no instance" sentinel: a
     documented boundary of the record format. *)
  let d =
    Descriptor.make ~obj_type:Descriptor.File ~instance:65535 "edge"
  in
  let decoded, _ = Descriptor.of_bytes (Descriptor.to_bytes d) 0 in
  Alcotest.(check bool) "0xffff decodes as no-instance" true
    (decoded.Descriptor.instance = None)

(* --- naming/runtime edges --- *)

let test_rename_onto_existing () =
  ignore
    (run_client (fun _t _self env ->
         ok_exn "w1" (Runtime.write_file env "[fs0]tmp/a.txt" (Bytes.of_string "a"));
         ok_exn "w2" (Runtime.write_file env "[fs0]tmp/b.txt" (Bytes.of_string "b"));
         (match Runtime.rename env "[fs0]tmp/a.txt" ~new_name:"b.txt" with
         | Error (Vio.Verr.Denied Reply.Duplicate_name) -> ()
         | _ -> Alcotest.fail "rename onto existing must fail");
         (* Nothing was lost. *)
         Alcotest.(check string) "a intact" "a"
           (Bytes.to_string (ok_exn "ra" (Runtime.read_file env "[fs0]tmp/a.txt")));
         Alcotest.(check string) "b intact" "b"
           (Bytes.to_string (ok_exn "rb" (Runtime.read_file env "[fs0]tmp/b.txt")))))

let test_create_duplicate_directory () =
  ignore
    (run_client (fun _t _self env ->
         ok_exn "mk" (Runtime.create env ~directory:true "[fs0]tmp/d");
         match Runtime.create env ~directory:true "[fs0]tmp/d" with
         | Error (Vio.Verr.Denied Reply.Duplicate_name) -> ()
         | _ -> Alcotest.fail "duplicate mkdir must fail"))

let test_remove_nonempty_directory () =
  ignore
    (run_client (fun _t _self env ->
         ok_exn "mk" (Runtime.create env ~directory:true "[fs0]tmp/full");
         ok_exn "w" (Runtime.write_file env "[fs0]tmp/full/x" (Bytes.of_string "x"));
         match Runtime.remove env "[fs0]tmp/full" with
         | Error (Vio.Verr.Denied Reply.No_permission) -> ()
         | _ -> Alcotest.fail "non-empty directory removal must fail"))

let test_per_user_prefix_isolation () =
  (* Prefix servers are per user: a binding added on one workstation is
     invisible on another (§6: "the top-level context prefixes can be
     user-specified and different for each user"). *)
  let t = Scenario.build ~workstations:2 ~file_servers:2 () in
  let ws0_done = ref false and ws1_result = ref (Ok Bytes.empty) in
  ignore
    (Scenario.spawn_client t ~ws:0 (fun _self env ->
         let target =
           File_server.spec (Scenario.file_server t 1)
             ~context:Context.Well_known.default
         in
         ok_exn "bind on ws0" (Runtime.add_prefix env "mine" (`Static target));
         ok_exn "write" (Runtime.write_file env "[mine]tmp/w0.txt" (Bytes.of_string "0"));
         ws0_done := true));
  ignore
    (Scenario.spawn_client t ~ws:1 (fun _self env ->
         Vsim.Proc.delay (Runtime.engine env) 100.0;
         ws1_result := Runtime.read_file env "[mine]tmp/w0.txt"));
  Scenario.run t;
  Alcotest.(check bool) "ws0 worked" true !ws0_done;
  Alcotest.(check bool) "ws1 does not see ws0's binding" true
    (match !ws1_result with
    | Error (Vio.Verr.Denied Reply.Not_found) -> true
    | _ -> false)

let test_mail_remove_and_requery () =
  ignore
    (run_client (fun _t _self env ->
         ok_exn "deliver" (Runtime.append_file env "[mail]x@y" (Bytes.of_string "m"));
         ok_exn "remove" (Runtime.remove env "[mail]x@y");
         match Runtime.query env "[mail]x@y" with
         | Error (Vio.Verr.Denied Reply.Not_found) -> ()
         | _ -> Alcotest.fail "removed mailbox still named"))

let test_printer_job_readback () =
  (* A spooled job's content can be read back through the same
     instance while it is being written. *)
  ignore
    (run_client (fun _t self env ->
         let w = ok_exn "spool" (Runtime.open_ env ~mode:Vmsg.Write "[printer]rb.ps") in
         ignore (ok_exn "write" (Vio.Client.write_block self w ~block:0 (Bytes.of_string "PS!")));
         let back = ok_exn "read" (Vio.Client.read_block self w ~block:0) in
         Alcotest.(check string) "spool content readable" "PS!"
           (Bytes.to_string back);
         ok_exn "release (submits)" (Vio.Client.release self w)))

let suite =
  [
    ( "edges.kernel",
      [
        Alcotest.test_case "self-send deadlocks" `Quick test_send_to_self_deadlocks;
        Alcotest.test_case "reply twice" `Quick test_reply_twice;
        Alcotest.test_case "zero-byte move" `Quick test_move_zero_bytes;
      ] );
    ( "edges.descriptor",
      [
        Alcotest.test_case "instance sentinel" `Quick
          test_descriptor_instance_sentinel;
      ] );
    ( "edges.naming",
      [
        Alcotest.test_case "rename onto existing" `Quick test_rename_onto_existing;
        Alcotest.test_case "duplicate mkdir" `Quick test_create_duplicate_directory;
        Alcotest.test_case "remove non-empty dir" `Quick
          test_remove_nonempty_directory;
        Alcotest.test_case "per-user prefix isolation" `Quick
          test_per_user_prefix_isolation;
        Alcotest.test_case "mail remove" `Quick test_mail_remove_and_requery;
        Alcotest.test_case "printer spool readback" `Quick
          test_printer_job_readback;
      ] );
  ]
